// The individual experiment drivers.
package main

import (
	"fmt"
	"testing"
	"time"

	"planp.dev/planp/asp"
	"planp.dev/planp/internal/apps/audio"
	"planp.dev/planp/internal/apps/httpd"
	"planp.dev/planp/internal/apps/mpeg"
	"planp.dev/planp/internal/lang/langtest"
	"planp.dev/planp/internal/lang/parser"
	"planp.dev/planp/internal/lang/typecheck"
	"planp.dev/planp/internal/lang/value"
	"planp.dev/planp/internal/planprt"
	"planp.dev/planp/internal/obs"
)

// paperFig3 holds the paper's reported numbers for comparison columns.
var paperFig3 = map[string]struct {
	lines int
	ms    float64
}{
	"audio-router": {68, 11.0},
	"audio-client": {28, 6.2},
	"http-gateway": {91, 15.3},
	"mpeg-monitor": {161, 33.9},
	"mpeg-client":  {53, 6.1},
}

// runFig3 measures code-generation time per program per engine. The
// paper's absolute numbers are 1998 hardware with Tempo's template
// assembly; what must hold is the ordering (more lines, more time) and
// that generation is far below any per-download budget.
func runFig3() error {
	tbl := &obs.Table{
		Title:   "Figure 3: code generation time",
		Headers: []string{"program", "lines", "paper-lines", "paper-ms", "jit-us", "bytecode-us", "check-us"},
	}
	for _, p := range asp.All() {
		prog, err := parser.Parse(p.Source)
		if err != nil {
			return err
		}
		checkStart := time.Now()
		info, err := typecheck.Check(prog)
		if err != nil {
			return err
		}
		checkTime := time.Since(checkStart)

		median := func(engine planprt.EngineKind) time.Duration {
			const reps = 51
			times := make([]time.Duration, 0, reps)
			for i := 0; i < reps; i++ {
				pl, err := planprt.Load(p.Source, planprt.Config{Engine: engine, Verify: planprt.VerifyPrivileged})
				if err != nil {
					panic(err)
				}
				times = append(times, pl.CodegenTime)
			}
			for i := 1; i < len(times); i++ {
				for j := i; j > 0 && times[j] < times[j-1]; j-- {
					times[j], times[j-1] = times[j-1], times[j]
				}
			}
			return times[len(times)/2]
		}
		_ = info
		ref := paperFig3[p.Name]
		tbl.AddRow(p.Name, lineCount(p.Source), ref.lines, ref.ms,
			float64(median(planprt.EngineJIT).Nanoseconds())/1000,
			float64(median(planprt.EngineBytecode).Nanoseconds())/1000,
			float64(checkTime.Nanoseconds())/1000)
	}
	fmt.Print(tbl)
	fmt.Println("shape check: generation time grows with program size, and all times are")
	fmt.Println("orders of magnitude below a per-download budget (the paper's point).")
	return nil
}

func runFig6() error {
	tb, err := audio.NewTestbed(audio.Options{Adaptation: audio.AdaptASP, Engine: engineKind})
	if err != nil {
		return err
	}
	res := tb.RunFigure6()
	fmt.Println("audio data rate at the client, one sample per 10 s of virtual time:")
	fmt.Print(res.Series.Render(10 * time.Second))
	tbl := &obs.Table{
		Title:   "Figure 6 phases (paper: 176 -> 44 -> oscillating 44-88 -> 88 kb/s)",
		Headers: []string{"phase", "load", "measured kb/s", "paper kb/s"},
	}
	tbl.AddRow("0-100s", "none", res.QuietKbps, 176)
	tbl.AddRow("100-220s", "large", res.LargeKbps, 44)
	tbl.AddRow("220-340s", "medium", res.MediumKbps, "44-88 (oscillates)")
	tbl.AddRow("340-460s", "small", res.SmallKbps, 88)
	fmt.Print(tbl)
	fmt.Printf("medium phase oscillates between 8- and 16-bit mono: %v\n", res.MediumOscillates)
	return nil
}

func runFig7() error {
	tbl := &obs.Table{
		Title:   "Figure 7: silent periods during 60 s of playback",
		Headers: []string{"background load", "adaptation", "silent periods", "lost packets", "stalls", "packets", "segment drops"},
	}
	for _, load := range audio.Figure7Loads {
		for _, mode := range []audio.Adaptation{audio.AdaptNone, audio.AdaptASP} {
			row, err := audio.RunFigure7(load, mode, engineKind, 60*time.Second, 11)
			if err != nil {
				return err
			}
			tbl.AddRow(fmt.Sprintf("%.1f Mb/s", float64(load)/1e6), mode.String(),
				row.SilentPeriods, row.LostPackets, row.Stalls, row.Received, row.SegDrops)
		}
	}
	fmt.Print(tbl)
	fmt.Println("shape check: without adaptation, gaps appear once the segment saturates;")
	fmt.Println("with the ASP the audio shrinks to fit and playback stays continuous.")
	return nil
}

func runFig8() error {
	variants := []httpd.Variant{httpd.VariantSingle, httpd.VariantNativeGW, httpd.VariantASPGW, httpd.VariantDisjoint}
	tbl := &obs.Table{
		Title:   "Figure 8: served throughput (req/s) vs offered load",
		Headers: []string{"offered", "(d) single", "(b) native gw", "(c) ASP gw", "(a) 2 disjoint"},
	}
	results := map[httpd.Variant][]float64{}
	for _, v := range variants {
		for _, offered := range httpd.DefaultSweep {
			pt, err := httpd.RunPoint(httpd.Config{Variant: v, Engine: engineKind}, offered, 12*time.Second, 3*time.Second)
			if err != nil {
				return err
			}
			results[v] = append(results[v], pt.ServedRPS)
		}
	}
	for i, offered := range httpd.DefaultSweep {
		tbl.AddRow(offered, results[httpd.VariantSingle][i], results[httpd.VariantNativeGW][i],
			results[httpd.VariantASPGW][i], results[httpd.VariantDisjoint][i])
	}
	fmt.Print(tbl)

	sat := map[httpd.Variant]float64{}
	for _, v := range variants {
		s, err := httpd.Saturation(httpd.Config{Variant: v, Engine: engineKind}, 20*time.Second)
		if err != nil {
			return err
		}
		sat[v] = s
	}
	fmt.Printf("\nsaturation: single=%.0f  native-gw=%.0f  asp-gw=%.0f  disjoint=%.0f req/s\n",
		sat[httpd.VariantSingle], sat[httpd.VariantNativeGW], sat[httpd.VariantASPGW], sat[httpd.VariantDisjoint])
	fmt.Printf("paper claims:  ASP==native: %.2fx   cluster/single: %.2fx (paper 1.75)   cluster/disjoint: %.2f (paper ~0.85)\n",
		sat[httpd.VariantASPGW]/sat[httpd.VariantNativeGW],
		sat[httpd.VariantASPGW]/sat[httpd.VariantSingle],
		sat[httpd.VariantASPGW]/sat[httpd.VariantDisjoint])
	return nil
}

func runMPEG() error {
	tbl := &obs.Table{
		Title:   "MPEG experiment (§3.3): server load vs viewers on one segment",
		Headers: []string{"viewers", "ASPs", "server connections", "server frames", "min viewer frames"},
	}
	for _, viewers := range []int{1, 2, 4, 8} {
		for _, useASPs := range []bool{false, true} {
			res, err := mpeg.Run(mpeg.Options{Viewers: viewers, UseASPs: useASPs, Engine: engineKind}, 20*time.Second)
			if err != nil {
				return err
			}
			minFrames := res.ViewerFrames[0]
			for _, f := range res.ViewerFrames {
				if f < minFrames {
					minFrames = f
				}
			}
			tbl.AddRow(viewers, useASPs, res.ServerConnections, res.ServerFrames, minFrames)
		}
	}
	fmt.Print(tbl)
	fmt.Println("shape check: with the ASPs, server connections and frames stay flat as")
	fmt.Println("viewers multiply; every viewer still receives the stream.")
	return nil
}

// runEngines microbenchmarks the per-packet cost of one load-balancer
// invocation under each engine plus a native Go handler — the §2.4
// claim: the JIT removes interpretation overhead.
func runEngines() error {
	info, err := loadGatewayInfo()
	if err != nil {
		return err
	}
	pkt := langtest.TCPPacket("10.0.1.1", "10.0.0.100", 4001, 80, []byte("GET /index.html"))

	tbl := &obs.Table{
		Title:   "Per-packet channel invocation cost (load-balancer ASP)",
		Headers: []string{"engine", "ns/op", "vs native", "allocs/op"},
	}
	var nativeNs float64
	native := testing.Benchmark(func(b *testing.B) {
		benchNative(b, pkt)
	})
	nativeNs = float64(native.NsPerOp())
	for _, eng := range []planprt.EngineKind{planprt.EngineInterp, planprt.EngineBytecode, planprt.EngineJIT} {
		r, err := benchEngine(eng, info, pkt)
		if err != nil {
			return err
		}
		tbl.AddRow(string(eng), r.NsPerOp(), float64(r.NsPerOp())/nativeNs, r.AllocsPerOp())
	}
	tbl.AddRow("native-go", native.NsPerOp(), 1.0, native.AllocsPerOp())
	fmt.Print(tbl)
	fmt.Println("note: the gateway's cost is dominated by hash-table primitives shared by")
	fmt.Println("all engines, which compresses the spread. The kernel below isolates pure")
	fmt.Println("language execution, where specialization pays in full:")
	fmt.Println()

	tbl2 := &obs.Table{
		Title:   "Per-packet cost, compute-bound classification kernel",
		Headers: []string{"engine", "ns/op", "vs jit", "allocs/op"},
	}
	pktU := langtest.UDPPacket("10.0.1.1", "10.0.2.9", 4001, 9, []byte("abcdefgh"))
	type res struct {
		eng string
		r   testing.BenchmarkResult
	}
	var rows []res
	for _, eng := range []planprt.EngineKind{planprt.EngineInterp, planprt.EngineBytecode, planprt.EngineJIT} {
		r, err := benchProgram(eng, asp.BenchCompute, pktU)
		if err != nil {
			return err
		}
		rows = append(rows, res{string(eng), r})
	}
	jitNs := float64(rows[2].r.NsPerOp())
	for _, row := range rows {
		tbl2.AddRow(row.eng, row.r.NsPerOp(), float64(row.r.NsPerOp())/jitNs, row.r.AllocsPerOp())
	}
	fmt.Print(tbl2)
	fmt.Println("shape check: interp >> bytecode > jit (the paper: JIT output is as fast")
	fmt.Println("as in-kernel C; here the jit engine approaches the hand-written handler).")
	return nil
}

// benchProgram measures one engine's invoke cost on an arbitrary
// protocol source.
func benchProgram(eng planprt.EngineKind, src string, pkt value.Value) (testing.BenchmarkResult, error) {
	p, err := planprt.Load(src, planprt.Config{Engine: eng, Verify: planprt.VerifyPrivileged})
	if err != nil {
		return testing.BenchmarkResult{}, err
	}
	ctx := langtest.NewCtx()
	inst, err := p.Compiled.NewInstance(ctx)
	if err != nil {
		return testing.BenchmarkResult{}, err
	}
	ci := p.Info.ChannelsByName("network")[0].Index
	return testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ctx.Sent = ctx.Sent[:0]
			if err := inst.Invoke(ci, ctx, pkt); err != nil {
				b.Fatal(err)
			}
		}
	}), nil
}

// loadGatewayInfo type-checks the HTTP gateway for the microbench.
func loadGatewayInfo() (*typecheck.Info, error) {
	prog, err := parser.Parse(asp.HTTPGateway)
	if err != nil {
		return nil, err
	}
	return typecheck.Check(prog)
}

// benchEngine measures one engine's invoke cost.
func benchEngine(eng planprt.EngineKind, info *typecheck.Info, pkt value.Value) (testing.BenchmarkResult, error) {
	p, err := planprt.Load(asp.HTTPGateway, planprt.Config{Engine: eng, Verify: planprt.VerifyPrivileged})
	if err != nil {
		return testing.BenchmarkResult{}, err
	}
	ctx := langtest.NewCtx()
	inst, err := p.Compiled.NewInstance(ctx)
	if err != nil {
		return testing.BenchmarkResult{}, err
	}
	ci := p.Info.ChannelsByName("network")[0].Index
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ctx.Sent = ctx.Sent[:0]
			if err := inst.Invoke(ci, ctx, pkt); err != nil {
				b.Fatal(err)
			}
		}
	})
	return res, nil
}

// benchNative measures the hand-written Go equivalent of the gateway's
// per-packet work.
func benchNative(b *testing.B, pkt value.Value) {
	b.ReportAllocs()
	ctx := langtest.NewCtx()
	conns := map[string]value.Host{}
	count := int64(0)
	serverA := langtest.MustHost("10.0.0.81")
	serverB := langtest.MustHost("10.0.0.109")
	virtual := langtest.MustHost("10.0.0.100")
	for i := 0; i < b.N; i++ {
		ctx.Sent = ctx.Sent[:0]
		iph := pkt.Vs[0].AsIP()
		tcph := pkt.Vs[1].AsTCP()
		if iph.Dst == virtual && tcph.DstPort == 80 {
			key := value.EncodeKey(value.TupleV(value.HostV(iph.Src), value.Int(int64(tcph.SrcPort))))
			srv, ok := conns[key]
			if !ok {
				if count%2 == 0 {
					srv = serverA
				} else {
					srv = serverB
				}
				conns[key] = srv
			}
			if tcph.Flags&value.TCPSyn != 0 {
				count++
			}
			h := *iph
			h.Dst = srv
			ctx.OnRemote("network", value.TupleV(value.IP(&h), pkt.Vs[1], pkt.Vs[2]))
		} else {
			ctx.OnRemote("network", pkt)
		}
	}
}
