// Command aspbench regenerates every table and figure of the paper's
// evaluation (§3) against the simulated testbed, printing the same rows
// and series the paper reports.
//
// Usage:
//
//	aspbench -exp fig3      code-generation time table
//	aspbench -exp fig6      audio bandwidth vs time under stepped load
//	aspbench -exp fig7      silent periods with/without adaptation
//	aspbench -exp fig8      HTTP throughput vs offered load (4 configs)
//	aspbench -exp mpeg      server load vs number of viewers
//	aspbench -exp engines   per-packet cost: interp vs bytecode vs jit vs native
//	aspbench -exp all       everything above
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"planp.dev/planp/internal/planprt"
)

var experiments = []struct {
	name string
	desc string
	run  func() error
}{
	{"fig3", "code-generation time for the five ASPs (paper figure 3)", runFig3},
	{"fig6", "audio bandwidth under stepped load (paper figure 6)", runFig6},
	{"fig7", "silent periods with/without adaptation (paper figure 7)", runFig7},
	{"fig8", "HTTP cluster throughput vs offered load (paper figure 8)", runFig8},
	{"mpeg", "server load vs viewers for the MPEG experiment (§3.3)", runMPEG},
	{"engines", "per-packet engine cost: interp/bytecode/jit/native (§2.4)", runEngines},
	{"ablation-locus", "in-router vs end-to-end feedback adaptation (§3.1 claim)", runAblationLocus},
	{"ablation-policy", "load-balancing policies: modulo/random/least-conn (§5)", runAblationPolicy},
	{"failover", "gateway fault tolerance: server crash + admin removal (§5)", runFailover},
}

func main() {
	exp := flag.String("exp", "", "experiment to run (or 'all')")
	engine := flag.String("engine", "jit", "ASP engine for the experiments")
	flag.Parse()
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "usage: aspbench -exp NAME")
		for _, e := range experiments {
			fmt.Fprintf(os.Stderr, "  %-16s %s\n", e.name, e.desc)
		}
		fmt.Fprintln(os.Stderr, "  all              run everything")
		os.Exit(2)
	}
	engineKind = planprt.EngineKind(*engine)

	start := time.Now()
	ran := false
	for _, e := range experiments {
		if *exp != "all" && *exp != e.name {
			continue
		}
		ran = true
		fmt.Printf("==== %s: %s ====\n", e.name, e.desc)
		if err := e.run(); err != nil {
			fmt.Fprintf(os.Stderr, "aspbench %s: %v\n", e.name, err)
			os.Exit(1)
		}
		fmt.Println()
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "aspbench: unknown experiment %q\n", *exp)
		os.Exit(2)
	}
	fmt.Printf("(total wall time %v — the experiments above cover %s of virtual time)\n",
		time.Since(start).Round(time.Millisecond), virtualTimeNote())
}

// engineKind is the ASP engine experiments run with.
var engineKind = planprt.EngineJIT

func virtualTimeNote() string {
	return "minutes to hours"
}

// lineCount counts non-empty source lines.
func lineCount(src string) int {
	n := 0
	for _, line := range strings.Split(src, "\n") {
		if strings.TrimSpace(line) != "" {
			n++
		}
	}
	return n
}
