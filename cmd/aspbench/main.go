// Command aspbench regenerates every table and figure of the paper's
// evaluation (§3) against the simulated testbed, printing the same rows
// and series the paper reports. The drivers live in
// internal/experiments; this wrapper parses flags.
//
// Usage:
//
//	aspbench -exp fig3      code-generation time table
//	aspbench -exp fig6      audio bandwidth vs time under stepped load
//	aspbench -exp fig7      silent periods with/without adaptation
//	aspbench -exp fig8      HTTP throughput vs offered load (4 configs)
//	aspbench -exp mpeg      server load vs number of viewers
//	aspbench -exp engines   per-packet cost: interp vs bytecode vs jit vs native
//	aspbench -exp all       everything above
//
// Grid experiments run their cells on -parallel worker goroutines
// (default GOMAXPROCS); the output is byte-identical at any width.
// -shards runs each simulation on up to that many parallel event loops
// (only topologies with shard boundaries — the scale experiment's city
// — actually split); the output is byte-identical at any shard count.
// -scale-full switches the scale experiment to the full metropolitan
// city. -cpuprofile/-memprofile write pprof profiles of the run.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"planp.dev/planp/internal/experiments"
	"planp.dev/planp/internal/planprt"
)

func main() {
	exp := flag.String("exp", "", "experiment to run (or 'all')")
	engine := flag.String("engine", "jit", "ASP engine for the experiments")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0), "worker goroutines for grid experiments (1 = sequential)")
	shards := flag.Int("shards", 1, "parallel event loops per simulation (1 = single-threaded engine)")
	scaleFull := flag.Bool("scale-full", false, "run the scale experiment on the full metropolitan city (minutes of CPU)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()
	all := experiments.All()
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "usage: aspbench -exp NAME")
		for _, e := range all {
			fmt.Fprintf(os.Stderr, "  %-16s %s\n", e.Name, e.Desc)
		}
		fmt.Fprintln(os.Stderr, "  all              run everything")
		os.Exit(2)
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "aspbench: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "aspbench: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	opts := experiments.Options{
		Engine:    planprt.EngineKind(*engine),
		Parallel:  *parallel,
		Shards:    *shards,
		ScaleFull: *scaleFull,
	}
	start := time.Now()
	ran := false
	for _, e := range all {
		if *exp != "all" && *exp != e.Name {
			continue
		}
		ran = true
		fmt.Printf("==== %s: %s ====\n", e.Name, e.Desc)
		if err := e.Run(os.Stdout, opts); err != nil {
			fmt.Fprintf(os.Stderr, "aspbench %s: %v\n", e.Name, err)
			os.Exit(1)
		}
		fmt.Println()
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "aspbench: unknown experiment %q; valid names:\n", *exp)
		for _, e := range all {
			fmt.Fprintf(os.Stderr, "  %s\n", e.Name)
		}
		fmt.Fprintln(os.Stderr, "  all")
		os.Exit(2)
	}
	fmt.Printf("(total wall time %v — the experiments above cover %s of virtual time)\n",
		time.Since(start).Round(time.Millisecond), "minutes to hours")

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "aspbench: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "aspbench: %v\n", err)
			os.Exit(1)
		}
	}
}
