// Command benchjson converts `go test -bench` output on stdin into the
// machine-readable BENCH_core.json snapshot that `make bench` commits.
//
// The text the Go test runner prints (and that benchstat consumes) stays
// the primary artifact; this tool just distills ns/op, B/op and
// allocs/op per benchmark — averaged across -count repetitions — so the
// acceptance criteria ("allocs/op strictly below the pre-change value")
// can be checked against a stable JSON file instead of parsing logs.
// Custom units reported via b.ReportMetric (the city benchmarks'
// events/s and pkts/s/core) are carried through under their unit name.
//
// If the output file already exists, its "baseline" object is carried
// over verbatim, so the pre-rewrite reference numbers survive every
// regeneration.
//
// Usage:
//
//	go test -run '^$' -bench ... -benchmem -count=3 . | benchjson -o BENCH_core.json
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

type result struct {
	NsOp     float64 `json:"ns_op"`
	BytesOp  float64 `json:"bytes_op"`
	AllocsOp float64 `json:"allocs_op"`
	// Extra holds b.ReportMetric values keyed by their unit string.
	Extra map[string]float64 `json:"extra,omitempty"`
	count int
}

type snapshot struct {
	Note string `json:"note"`
	// GOMAXPROCS records how many cores the run could actually use, so a
	// snapshot from this single-core container is never mistaken for a
	// parallel-speedup measurement.
	GOMAXPROCS int                `json:"gomaxprocs"`
	Baseline   json.RawMessage    `json:"baseline,omitempty"`
	Benchmarks map[string]*result `json:"benchmarks"`
}

func main() {
	out := flag.String("o", "BENCH_core.json", "output file")
	note := flag.String("note", "Hot-path benchmark snapshot; regenerate with `make bench`. ns/op, B/op and allocs/op are means over -count repetitions.",
		"note field for the snapshot")
	flag.Parse()

	sums := map[string]*result{}
	// The runner only appends a -N name suffix when GOMAXPROCS != 1, so
	// start from this process's value (the Makefile pipes the runner into
	// us on the same machine) and let any suffix override it.
	procs := runtime.GOMAXPROCS(0)
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line) // pass through so the caller still sees the text
		if !strings.HasPrefix(line, "Benchmark") || !strings.Contains(line, "ns/op") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			continue
		}
		name := fields[0]
		// Strip the -GOMAXPROCS suffix the runner appends.
		if i := strings.LastIndex(name, "-"); i > 0 {
			if n, err := strconv.Atoi(name[i+1:]); err == nil && n > 0 {
				procs = n
			}
			name = name[:i]
		}
		r := sums[name]
		if r == nil {
			r = &result{}
			sums[name] = r
		}
		r.count++
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				r.NsOp += v
			case "B/op":
				r.BytesOp += v
			case "allocs/op":
				r.AllocsOp += v
			default:
				if r.Extra == nil {
					r.Extra = map[string]float64{}
				}
				r.Extra[unit] += v
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(sums) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	for _, r := range sums {
		n := float64(r.count)
		r.NsOp /= n
		r.BytesOp /= n
		r.AllocsOp /= n
		for unit := range r.Extra {
			r.Extra[unit] /= n
		}
	}

	snap := snapshot{
		Note:       *note,
		GOMAXPROCS: procs,
		Benchmarks: sums,
	}
	if prev, err := os.ReadFile(*out); err == nil {
		var old struct {
			Baseline json.RawMessage `json:"baseline"`
		}
		if json.Unmarshal(prev, &old) == nil {
			snap.Baseline = old.Baseline
		}
	}

	// Deterministic key order for reviewable diffs.
	names := make([]string, 0, len(sums))
	for n := range sums {
		names = append(names, n)
	}
	sort.Strings(names)
	var buf strings.Builder
	buf.WriteString("{\n")
	fmt.Fprintf(&buf, "  %q: %q,\n", "note", snap.Note)
	fmt.Fprintf(&buf, "  %q: %d,\n", "gomaxprocs", snap.GOMAXPROCS)
	if len(snap.Baseline) > 0 {
		var indented bytes.Buffer
		if err := json.Indent(&indented, snap.Baseline, "  ", "  "); err == nil {
			fmt.Fprintf(&buf, "  %q: %s,\n", "baseline", indented.String())
		}
	}
	buf.WriteString("  \"benchmarks\": {\n")
	for i, n := range names {
		r := sums[n]
		comma := ","
		if i == len(names)-1 {
			comma = ""
		}
		fmt.Fprintf(&buf, "    %q: {\"ns_op\": %.1f, \"bytes_op\": %.0f, \"allocs_op\": %.0f",
			n, r.NsOp, r.BytesOp, r.AllocsOp)
		units := make([]string, 0, len(r.Extra))
		for u := range r.Extra {
			units = append(units, u)
		}
		sort.Strings(units)
		for _, u := range units {
			fmt.Fprintf(&buf, ", %q: %.1f", u, r.Extra[u])
		}
		fmt.Fprintf(&buf, "}%s\n", comma)
	}
	buf.WriteString("  }\n}\n")
	if err := os.WriteFile(*out, []byte(buf.String()), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
