// planpd is the ASP download daemon: it boots the live HTTP cluster
// (client — gateway — two servers) on the real-time backend and serves
// the protocol-management API for the gateway node. Download the
// load-balancing ASP onto the running gateway and watch it spread real
// requests:
//
//	planpd -listen 127.0.0.1:8377 &
//	curl -X POST --data-binary @asp/http_gateway.planp \
//	    'http://127.0.0.1:8377/asp?verify=single'
//	curl -X POST 'http://127.0.0.1:8377/demo/requests?n=200'
//	curl 'http://127.0.0.1:8377/stats'
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strconv"
	"time"

	"planp.dev/planp/internal/planpd"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:8377", "control API listen address")
	udp := flag.Bool("udp", false, "use loopback-UDP socket links instead of in-process channels")
	flag.Parse()

	cluster, err := planpd.NewCluster(*udp)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer cluster.Close()
	cluster.Start()

	ctl := planpd.NewServer(cluster.Gateway, os.Stdout)
	mux := http.NewServeMux()
	mux.Handle("/", ctl.Handler())
	mux.HandleFunc("/demo/requests", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		n, err := strconv.Atoi(r.URL.Query().Get("n"))
		if err != nil || n <= 0 || n > 1<<16 {
			http.Error(w, "n must be in [1, 65536]", http.StatusBadRequest)
			return
		}
		for i := 0; i < n; i++ {
			cluster.SendRequest(uint16(10000 + i))
		}
		// Real-time backend: the burst is still in flight when the
		// sends return. Settle before reading the counters so the
		// response reflects this burst, not the previous one.
		settled := cluster.Net.Quiesce(10 * time.Second)
		s0, s1 := cluster.Served()
		total, fromVirtual := cluster.Responses()
		json.NewEncoder(w).Encode(map[string]any{
			"sent": n, "settled": settled, "server0": s0, "server1": s1,
			"responses": total, "from_virtual": fromVirtual,
		})
	})

	log.Printf("planpd: control API on http://%s (links: %s)", *listen, linkKind(*udp))
	log.Fatal(http.ListenAndServe(*listen, mux))
}

func linkKind(udp bool) string {
	if udp {
		return "loopback-udp"
	}
	return "in-process"
}
