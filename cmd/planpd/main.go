// planpd is the ASP download daemon: it boots the live HTTP cluster
// (client — gateway — two servers) on the real-time backend and serves
// the protocol-management API for every node, plus the fleet rollout
// control plane. Download the load-balancing ASP onto the running
// gateway and watch it spread real requests:
//
//	planpd -listen 127.0.0.1:8377 &
//	curl -X POST --data-binary @asp/http_gateway.planp \
//	    'http://127.0.0.1:8377/asp?verify=single'
//	curl -X POST 'http://127.0.0.1:8377/demo/requests?n=200'
//	curl 'http://127.0.0.1:8377/stats'
//
// Each cluster node's API is also mounted at /node/<name>/ (gateway,
// client, server0, server1), which is what the fleet controller
// targets. Roll a protocol out to several nodes as a unit — two-phase,
// with rollback on partial failure:
//
//	curl -X POST --data-binary @asp/audio_router.planp \
//	    'http://127.0.0.1:8377/deploy?version=v1&nodes=gateway,server0'
//	curl 'http://127.0.0.1:8377/deployments'
//
// The same rollout is available from the command line, against this or
// any other planpd daemon:
//
//	planpd deploy -nodes gw=http://127.0.0.1:8377/node/gateway \
//	    -src asp/audio_router.planp -version v1
//
// The daemon shuts down cleanly on SIGINT/SIGTERM: the HTTP listener
// drains, then the cluster's node goroutines are quiesced and joined.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"planp.dev/planp/internal/adapt"
	"planp.dev/planp/internal/chaos"
	"planp.dev/planp/internal/fleet"
	"planp.dev/planp/internal/lang/diag"
	"planp.dev/planp/internal/planpd"
	"planp.dev/planp/internal/substrate"
	"planp.dev/planp/internal/testbed"
)

func main() {
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "deploy":
			os.Exit(runDeploy(os.Args[2:]))
		case "adapt":
			os.Exit(runAdapt(os.Args[2:]))
		case "up":
			os.Exit(runUp(os.Args[2:]))
		case "chaos":
			os.Exit(runChaos(os.Args[2:]))
		}
	}
	os.Exit(runServe(os.Args[1:]))
}

func runServe(args []string) int {
	fs := flag.NewFlagSet("planpd", flag.ExitOnError)
	listen := fs.String("listen", "127.0.0.1:8377", "control API listen address")
	udp := fs.Bool("udp", false, "use loopback-UDP socket links instead of in-process channels")
	history := fs.String("history", "", "deployment history file (JSON lines); rollout records survive daemon restarts")
	fs.Parse(args)

	cluster, err := planpd.NewCluster(*udp)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	defer cluster.Close()
	cluster.Start()

	mux := http.NewServeMux()

	// Back-compat: the bare API drives the gateway node.
	mux.Handle("/", planpd.NewServer(cluster.Gateway, os.Stdout).Handler())

	// Per-node control APIs — the fleet controller's targets.
	nodes := []substrate.Node{cluster.Gateway, cluster.Client, cluster.Servers[0], cluster.Servers[1]}
	for _, node := range nodes {
		prefix := "/node/" + node.Hostname()
		mux.Handle(prefix+"/", http.StripPrefix(prefix, planpd.NewServer(node, os.Stdout).Handler()))
	}

	// The embedded fleet controller. Rollouts target the daemon's own
	// per-node mounts unless the request names full URLs.
	ctl := fleet.New(fleet.Config{Logf: log.Printf, HistoryPath: *history})
	mux.Handle("/deployments", ctl.Handler())

	// The adaptation controller: POST /adapt starts a self-promoting
	// canary against the same fleet controller (so canary, promote, and
	// rollback records all land in one history); GET /adapt watches it.
	adaptCtl := adapt.New(adapt.Config{Fleet: ctl, Logf: log.Printf})
	mux.Handle("/adapt", adaptCtl.Handler())

	// The remote chaos control plane over the demo cluster: stage and
	// play fault timelines (partitions, per-direction faults, clock
	// skew) against the live links from another host.
	chaosEng := chaos.New(cluster.Net, 1)
	cluster.WireChaos(chaosEng)
	mux.Handle("/chaos/", planpd.NewChaosServer(chaosEng).Handler())
	mux.HandleFunc("/deploy", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		targets, err := parseTargets(r.URL.Query().Get("nodes"), "http://"+*listen)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		src, err := readBody(r)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		spec := fleet.Spec{
			Version:           r.URL.Query().Get("version"),
			Source:            src,
			Engine:            r.URL.Query().Get("engine"),
			Verify:            r.URL.Query().Get("verify"),
			SourceName:        r.URL.Query().Get("src_name"),
			AllowIncompatible: r.URL.Query().Get("allow_incompatible") == "true",
		}
		d, deployErr := ctl.Deploy(r.Context(), spec, targets)
		status := http.StatusOK
		resp := map[string]any{}
		if deployErr != nil {
			status = http.StatusConflict
			resp["error"] = deployErr.Error()
			// Compatibility-gate and stage rejections carry source spans;
			// surface them structurally, like planpd's own 422 bodies.
			if ds := diag.Of(deployErr); len(ds) > 0 {
				status = http.StatusUnprocessableEntity
				resp["diagnostics"] = ds
			}
		}
		if d != nil {
			resp["deployment"] = d.View()
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(status)
		json.NewEncoder(w).Encode(resp)
	})

	mux.HandleFunc("/demo/requests", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		n, err := strconv.Atoi(r.URL.Query().Get("n"))
		if err != nil || n <= 0 || n > 1<<16 {
			http.Error(w, "n must be in [1, 65536]", http.StatusBadRequest)
			return
		}
		for i := 0; i < n; i++ {
			cluster.SendRequest(uint16(10000 + i))
		}
		// Real-time backend: the burst is still in flight when the
		// sends return. Settle before reading the counters so the
		// response reflects this burst, not the previous one.
		settled := cluster.Net.Quiesce(10 * time.Second)
		s0, s1 := cluster.Served()
		total, fromVirtual := cluster.Responses()
		json.NewEncoder(w).Encode(map[string]any{
			"sent": n, "settled": settled, "server0": s0, "server1": s1,
			"responses": total, "from_virtual": fromVirtual,
		})
	})

	srv := &http.Server{Addr: *listen, Handler: mux}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("planpd: control API on http://%s (links: %s)", *listen, linkKind(*udp))

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, err)
		return 1
	case <-ctx.Done():
	}

	// Graceful shutdown: drain in-flight control requests, then let the
	// cluster's traffic settle before the deferred Close joins the node
	// goroutines.
	log.Printf("planpd: shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		log.Printf("planpd: HTTP shutdown: %v", err)
	}
	// In-flight canary runs finish (or are cut short at the deadline and
	// roll back) before the substrate goes away beneath them.
	if !adaptCtl.Drain(shutCtx) {
		log.Printf("planpd: adaptation runs cut short")
	}
	if !cluster.Net.Quiesce(5 * time.Second) {
		log.Printf("planpd: cluster did not quiesce; closing anyway")
	}
	log.Printf("planpd: bye")
	return 0
}

func runDeploy(args []string) int {
	fs := flag.NewFlagSet("planpd deploy", flag.ExitOnError)
	nodesFlag := fs.String("nodes", "", "comma-separated targets: name=url, or bare node names resolved against -daemon")
	daemon := fs.String("daemon", "http://127.0.0.1:8377", "planpd daemon base URL for bare node names")
	srcPath := fs.String("src", "", "PLAN-P protocol source file")
	version := fs.String("version", "", "version label (auto-assigned when empty)")
	engine := fs.String("engine", "", "execution engine: jit, bytecode, interp")
	verify := fs.String("verify", "", "verification policy: network, single, privileged")
	timeout := fs.Duration("timeout", 30*time.Second, "overall rollout deadline")
	allowIncompat := fs.Bool("allow-incompatible", false,
		"proceed past the fleet compatibility gate; its findings are recorded on the deployment instead of rejecting it")
	fs.Parse(args)

	if *srcPath == "" || *nodesFlag == "" {
		fmt.Fprintln(os.Stderr, "planpd deploy: -src and -nodes are required")
		return 2
	}
	src, err := os.ReadFile(*srcPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	targets, err := parseTargets(*nodesFlag, *daemon)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	ctl := fleet.New(fleet.Config{Logf: log.Printf})
	d, deployErr := ctl.Deploy(ctx, fleet.Spec{
		Version: *version, Source: string(src), Engine: *engine, Verify: *verify,
		SourceName: *srcPath, AllowIncompatible: *allowIncompat,
	}, targets)

	if d != nil {
		out, _ := json.MarshalIndent(d.View(), "", "  ")
		fmt.Println(string(out))
	}
	if deployErr != nil {
		fmt.Fprintln(os.Stderr, deployErr)
		// Rejections that carry source spans (the compatibility gate, a
		// node's stage 422) are re-rendered with the offending source
		// lines excerpted and underlined.
		if ds := diag.Of(deployErr); len(ds) > 0 {
			fmt.Fprint(os.Stderr, diag.Render(string(src), *srcPath, ds))
		}
		return 1
	}
	return 0
}

// guardList collects repeatable -guard flags.
type guardList []string

func (g *guardList) String() string     { return strings.Join(*g, ",") }
func (g *guardList) Set(s string) error { *g = append(*g, s); return nil }

// runAdapt drives one self-promoting canary from the command line: the
// candidate is staged on the -canary cohort, guard metrics are watched
// for -windows windows against the -baseline cohort, then the rollout
// promotes fleet-wide or rolls back on its own. Exit status: 0
// promoted, 1 rolled back or failed, 2 usage.
//
//	planpd adapt -canary gateway -baseline server0,server1 \
//	    -src asp/http_gateway_leastconn.planp -verify single \
//	    -guard 'node.{node}.drops<=5' -guard 'asp.{node}.faults<=1x+2' \
//	    -windows 3 -interval 2s
func runAdapt(args []string) int {
	fs := flag.NewFlagSet("planpd adapt", flag.ExitOnError)
	canaryFlag := fs.String("canary", "", "comma-separated canary cohort: name=url, or bare node names resolved against -daemon")
	baselineFlag := fs.String("baseline", "", "comma-separated baseline cohort (receives the promote rollout)")
	daemon := fs.String("daemon", "http://127.0.0.1:8377", "planpd daemon base URL for bare node names")
	srcPath := fs.String("src", "", "PLAN-P protocol source file")
	version := fs.String("version", "", "version label (auto-assigned when empty)")
	engine := fs.String("engine", "", "execution engine: jit, bytecode, interp")
	verify := fs.String("verify", "", "verification policy: network, single, privileged")
	windows := fs.Int("windows", 3, "observation windows before promotion")
	interval := fs.Duration("interval", 2*time.Second, "observation window length")
	timeout := fs.Duration("timeout", 2*time.Minute, "overall run deadline")
	var guards guardList
	fs.Var(&guards, "guard", "guard metric, metric<=N | metric<=Rx+S (repeatable; {node} expands per node)")
	fs.Parse(args)

	if *srcPath == "" || *canaryFlag == "" {
		fmt.Fprintln(os.Stderr, "planpd adapt: -src and -canary are required")
		return 2
	}
	src, err := os.ReadFile(*srcPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	canary, err := parseTargets(*canaryFlag, *daemon)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	var baseline []fleet.Target
	if *baselineFlag != "" {
		if baseline, err = parseTargets(*baselineFlag, *daemon); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	}
	parsed, err := adapt.ParseGuards(guards)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	ctl := adapt.New(adapt.Config{
		Fleet: fleet.New(fleet.Config{Logf: log.Printf}),
		Logf:  log.Printf,
	})
	out, runErr := ctl.Canary(ctx, adapt.CanaryPlan{
		Spec: fleet.Spec{
			Version: *version, Source: string(src),
			Engine: *engine, Verify: *verify, SourceName: *srcPath,
		},
		Canary: canary, Baseline: baseline,
		Guards: parsed, Windows: *windows, Interval: *interval,
	})
	if out != nil {
		enc, _ := json.MarshalIndent(map[string]any{
			"verdict": out.Verdict, "reason": out.Reason,
		}, "", "  ")
		fmt.Println(string(enc))
	}
	if runErr != nil {
		fmt.Fprintln(os.Stderr, runErr)
		return 1
	}
	if out.Verdict != adapt.VerdictPromoted {
		return 1
	}
	return 0
}

// runUp boots a distributed testbed from a topology file. By default
// every daemon in the file runs in this one process (the
// single-machine stand-in for the multi-host testbed: separate rtnet
// networks, real UDP between them); -daemon selects one daemon for the
// one-process-per-host deployment, where each host runs
//
//	planpd up -topo testbed.json -daemon <its-name>
//
// and the cross-daemon links handshake over the wire.
func runUp(args []string) int {
	fs := flag.NewFlagSet("planpd up", flag.ExitOnError)
	topoPath := fs.String("topo", "", "testbed topology file (JSON)")
	daemonName := fs.String("daemon", "", "run only the named daemon (default: all, in one process)")
	history := fs.String("history", "", "deployment history file prefix; each daemon appends .<name>")
	probe := fs.Duration("probe", 0, "cross-daemon link liveness probe interval (default 500ms)")
	fs.Parse(args)

	if *topoPath == "" {
		fmt.Fprintln(os.Stderr, "planpd up: -topo is required")
		return 2
	}
	topo, err := testbed.LoadTopology(*topoPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	var names []string
	if *daemonName != "" {
		names = []string{*daemonName}
	} else {
		for _, d := range topo.Daemons {
			names = append(names, d.Name)
		}
	}

	var daemons []*testbed.Daemon
	var servers []*http.Server
	errc := make(chan error, len(names))
	for _, name := range names {
		opts := testbed.Options{Out: os.Stdout, Logf: log.Printf, ProbeInterval: *probe}
		if *history != "" {
			opts.HistoryPath = *history + "." + name
		}
		d, err := testbed.NewDaemon(topo, name, opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			for _, prev := range daemons {
				prev.Close()
			}
			return 1
		}
		daemons = append(daemons, d)
		d.Start()
		srv := &http.Server{Addr: d.Spec.Control, Handler: d.Handler()}
		servers = append(servers, srv)
		go func() { errc <- srv.ListenAndServe() }()
		log.Printf("planpd up: daemon %s on http://%s (%d nodes)",
			d.Spec.Name, d.Spec.Control, len(topo.Nodes))
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	ret := 0
	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, err)
		ret = 1
	case <-ctx.Done():
	}

	// Graceful shutdown, same sequence per daemon as the single-cluster
	// server: drain HTTP, drain adaptation runs, close the substrate
	// (remote links BYE their peers on the way out).
	log.Printf("planpd up: shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	for _, srv := range servers {
		srv.Shutdown(shutCtx)
	}
	for _, d := range daemons {
		if !d.Drain(shutCtx) {
			log.Printf("planpd up: daemon %s: adaptation runs cut short", d.Spec.Name)
		}
		d.Close()
	}
	return ret
}

// runChaos drives a daemon's remote chaos control plane from the
// command line:
//
//	planpd chaos stage  -daemon http://host:port -f timeline.json
//	planpd chaos start  -daemon http://host:port [-f timeline.json | -name NAME]
//	planpd chaos stop   -daemon http://host:port [-name NAME] [-clear]
//	planpd chaos status -daemon http://host:port
func runChaos(args []string) int {
	if len(args) < 1 {
		fmt.Fprintln(os.Stderr, "planpd chaos: need a verb: stage, start, stop, status")
		return 2
	}
	verb := args[0]
	fs := flag.NewFlagSet("planpd chaos "+verb, flag.ExitOnError)
	daemon := fs.String("daemon", "http://127.0.0.1:8377", "planpd daemon base URL")
	file := fs.String("f", "", "timeline file (JSON)")
	name := fs.String("name", "", "timeline name (staged timelines, runs)")
	clear := fs.Bool("clear", false, "with stop: also heal every injected fault")
	timeout := fs.Duration("timeout", 10*time.Second, "request deadline")
	fs.Parse(args[1:])

	base := strings.TrimRight(*daemon, "/")
	var method, url string
	var body io.Reader
	switch verb {
	case "stage", "start":
		method, url = http.MethodPost, base+"/chaos/"+verb
		if *file != "" {
			b, err := os.ReadFile(*file)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 1
			}
			body = strings.NewReader(string(b))
		} else if verb == "start" && *name != "" {
			url += "?name=" + *name
		} else {
			fmt.Fprintf(os.Stderr, "planpd chaos %s: -f is required%s\n", verb,
				map[bool]string{true: " (or -name for a staged timeline)", false: ""}[verb == "start"])
			return 2
		}
	case "stop":
		method, url = http.MethodPost, base+"/chaos/stop"
		sep := "?"
		if *name != "" {
			url += sep + "name=" + *name
			sep = "&"
		}
		if *clear {
			url += sep + "clear=1"
		}
	case "status":
		method, url = http.MethodGet, base+"/chaos/status"
	default:
		fmt.Fprintf(os.Stderr, "planpd chaos: unknown verb %q (stage, start, stop, status)\n", verb)
		return 2
	}

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, method, url, body)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	defer resp.Body.Close()
	out, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	// Responses are already JSON; re-indent for the terminal.
	var pretty json.RawMessage
	if json.Unmarshal(out, &pretty) == nil {
		if enc, err := json.MarshalIndent(pretty, "", "  "); err == nil {
			out = append(enc, '\n')
		}
	}
	os.Stdout.Write(out)
	if resp.StatusCode >= 300 {
		fmt.Fprintf(os.Stderr, "planpd chaos %s: HTTP %d\n", verb, resp.StatusCode)
		return 1
	}
	return 0
}

// parseTargets decodes a comma-separated target list. Each entry is
// either name=url or a bare node name, which resolves to the daemon's
// per-node mount (<daemon>/node/<name>).
func parseTargets(spec, daemon string) ([]fleet.Target, error) {
	if spec == "" {
		return nil, errors.New("no target nodes given")
	}
	var targets []fleet.Target
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		if name, url, ok := strings.Cut(entry, "="); ok {
			targets = append(targets, fleet.Target{Name: name, URL: url})
			continue
		}
		if strings.Contains(entry, "://") {
			return nil, fmt.Errorf("target %q: use name=url for explicit URLs", entry)
		}
		targets = append(targets, fleet.Target{
			Name: entry,
			URL:  strings.TrimRight(daemon, "/") + "/node/" + entry,
		})
	}
	return targets, nil
}

func readBody(r *http.Request) (string, error) {
	const maxSrc = 1 << 20
	body, err := io.ReadAll(io.LimitReader(r.Body, maxSrc+1))
	if err != nil {
		return "", err
	}
	if len(body) > maxSrc {
		return "", errors.New("protocol source too large")
	}
	return string(body), nil
}

func linkKind(udp bool) string {
	if udp {
		return "loopback-udp"
	}
	return "in-process"
}
