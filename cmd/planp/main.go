// Command planp is the PLAN-P protocol tool: parse, type-check, verify,
// compile, disassemble, and smoke-run ASP source files.
//
// Usage:
//
//	planp check   file.planp            parse + type-check, print channel signatures
//	planp verify  [-single] file.planp  run the §2.1 safety analyses
//	planp compile [-engine E] file.planp  compile and report code-generation time
//	planp disasm  file.planp            dump register bytecode
//	planp fmt     file.planp            pretty-print the program
//	planp run     [-engine E] file.planp  run the protocol on a demo topology
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	planp "planp.dev/planp"
	"planp.dev/planp/internal/lang/ast"
	"planp.dev/planp/internal/lang/bytecode"
	"planp.dev/planp/internal/lang/parser"
	"planp.dev/planp/internal/lang/typecheck"
	"planp.dev/planp/internal/lang/verify"
	"planp.dev/planp/internal/planprt"
)

func usage() {
	fmt.Fprintln(os.Stderr, "usage: planp {check|verify|compile|disasm|fmt|run} [flags] file.planp")
	os.Exit(2)
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "check":
		err = runCheck(args)
	case "verify":
		err = runVerify(args)
	case "compile":
		err = runCompile(args)
	case "disasm":
		err = runDisasm(args)
	case "fmt":
		err = runFmt(args)
	case "run":
		err = runDemo(args)
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "planp:", err)
		os.Exit(1)
	}
}

func readSource(fs *flag.FlagSet) (string, error) {
	if fs.NArg() != 1 {
		return "", fmt.Errorf("expected exactly one source file")
	}
	data, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return "", err
	}
	return string(data), nil
}

func check(src string) (*typecheck.Info, error) {
	prog, err := parser.Parse(src)
	if err != nil {
		return nil, err
	}
	return typecheck.Check(prog)
}

func runCheck(args []string) error {
	fs := flag.NewFlagSet("check", flag.ExitOnError)
	fs.Parse(args)
	src, err := readSource(fs)
	if err != nil {
		return err
	}
	info, err := check(src)
	if err != nil {
		return err
	}
	fmt.Printf("ok: %d declarations (%d vals, %d funs, %d channels)\n",
		len(info.Prog.Decls), len(info.Globals), len(info.Funs), len(info.Channels))
	fmt.Printf("protocol state: %s\n", info.ProtoState)
	for _, ch := range info.Channels {
		init := ""
		if ch.Decl.InitState != nil {
			init = "  [initstate]"
		}
		fmt.Printf("channel %-12s packet %s%s\n", ch.Decl.Name, ch.Decl.PacketType(), init)
	}
	return nil
}

func runVerify(args []string) error {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	single := fs.Bool("single", false, "verify for single-node deployment")
	fs.Parse(args)
	src, err := readSource(fs)
	if err != nil {
		return err
	}
	info, err := check(src)
	if err != nil {
		return err
	}
	r := verify.VerifyWith(info, verify.Options{SingleNode: *single})
	fmt.Print(r)
	if !r.AllOK() {
		return fmt.Errorf("verification failed (a privileged download would still be possible)")
	}
	return nil
}

func runCompile(args []string) error {
	fs := flag.NewFlagSet("compile", flag.ExitOnError)
	eng := fs.String("engine", "jit", "engine: interp, bytecode, or jit")
	fs.Parse(args)
	src, err := readSource(fs)
	if err != nil {
		return err
	}
	p, err := planprt.Load(src, planprt.Config{
		Engine: planprt.EngineKind(*eng),
		Verify: planprt.VerifyPrivileged,
	})
	if err != nil {
		return err
	}
	fmt.Printf("engine: %s\n", p.Compiled.EngineName())
	fmt.Printf("code generation time: %v\n", p.CodegenTime)
	fmt.Printf("late checking:\n%s", p.Verify)
	return nil
}

func runDisasm(args []string) error {
	fs := flag.NewFlagSet("disasm", flag.ExitOnError)
	fs.Parse(args)
	src, err := readSource(fs)
	if err != nil {
		return err
	}
	info, err := check(src)
	if err != nil {
		return err
	}
	compiled, err := bytecode.Compile(info)
	if err != nil {
		return err
	}
	fmt.Print(compiled.(interface{ DisasmAll() string }).DisasmAll())
	return nil
}

func runFmt(args []string) error {
	fs := flag.NewFlagSet("fmt", flag.ExitOnError)
	fs.Parse(args)
	src, err := readSource(fs)
	if err != nil {
		return err
	}
	prog, err := parser.Parse(src)
	if err != nil {
		return err
	}
	fmt.Print(ast.Print(prog))
	return nil
}

// runDemo drives the protocol on a 4-node demo topology with synthetic
// TCP and UDP traffic, printing what the protocol does.
func runDemo(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	eng := fs.String("engine", "jit", "engine: interp, bytecode, or jit")
	packets := fs.Int("packets", 10, "packets to inject")
	fs.Parse(args)
	src, err := readSource(fs)
	if err != nil {
		return err
	}
	proto, err := planp.Compile(src,
		planp.WithEngine(planp.Engine(*eng)),
		planp.WithVerification(planp.VerifyPrivileged))
	if err != nil {
		return err
	}

	net := planp.NewNetwork(planp.WithSeed(time.Now().UnixNano()%1000 + 1))
	a := net.NewHost("a", "10.0.1.1")
	r := net.NewRouter("r", "10.0.0.254")
	b := net.NewHost("b", "10.0.2.1")
	c := net.NewHost("c", "10.0.2.2")
	net.Wire(a, r, planp.LinkConfig{Bandwidth: 10_000_000})
	net.Wire(r, b, planp.LinkConfig{Bandwidth: 10_000_000})
	net.Wire(r, c, planp.LinkConfig{Bandwidth: 10_000_000})
	a.SetDefaultRoute(a.Ifaces()[0])

	rt, err := proto.DownloadTo(r, os.Stdout)
	if err != nil {
		return err
	}
	for _, n := range []*planp.Node{a, b, c} {
		node := n
		node.BindRaw(func(p *planp.Packet) {
			fmt.Printf("[%s] delivered: %v\n", node.Name, p)
		})
	}

	for i := 0; i < *packets; i++ {
		if i%2 == 0 {
			a.Send(planp.NewTCP(a.Addr, b.Addr, uint16(30000+i), 80, uint32(i), 0,
				[]byte(fmt.Sprintf("GET /doc%d", i))))
		} else {
			a.Send(planp.NewUDP(a.Addr, b.Addr, uint16(30000+i), 5004,
				[]byte(fmt.Sprintf("datagram %d", i))))
		}
	}
	net.Run()
	st := rt.Stats()
	fmt.Printf("\nrouter: processed=%d unmatched=%d errors=%d sent=%d delivered=%d\n",
		st.Processed, st.Unmatched, st.Errors,
		st.SentRemote, st.Delivered)
	fmt.Printf("protocol state: %s\n", rt.Instance().Proto)
	return nil
}
