// Network construction: a thin façade over the discrete-event simulator
// so examples and downstream users can build topologies without touching
// internal packages.
package planp

import (
	"io"
	"time"

	"planp.dev/planp/internal/netsim"
	"planp.dev/planp/internal/obs"
)

// Re-exported simulator types. The simulator is deterministic: all
// timing is virtual and all randomness flows from the seed.
type (
	// Node is a host or router in the simulated network.
	Node = netsim.Node
	// Packet is one datagram.
	Packet = netsim.Packet
	// Iface attaches a node to a link or segment.
	Iface = netsim.Iface
	// Link is a duplex point-to-point link.
	Link = netsim.Link
	// Segment is a shared Ethernet broadcast domain.
	Segment = netsim.Segment
	// LinkConfig sets bandwidth, delay, and queue limits.
	LinkConfig = netsim.LinkConfig
	// Addr is an IPv4-style address.
	Addr = netsim.Addr
)

// Packet constructors and address parsing.
var (
	// NewUDP builds a UDP packet.
	NewUDP = netsim.NewUDP
	// NewTCP builds a TCP packet.
	NewTCP = netsim.NewTCP
	// ParseAddr parses a dotted quad.
	ParseAddr = netsim.ParseAddr
	// MustAddr parses a dotted quad or panics.
	MustAddr = netsim.MustAddr
)

// Network owns a simulation: virtual clock, nodes, and media.
type Network struct {
	sim *netsim.Simulator
}

// networkConfig collects NewNetwork options.
type networkConfig struct {
	seed      int64
	shards    int
	observers []Observer
	traceW    io.Writer
}

// NetworkOption configures NewNetwork.
type NetworkOption func(*networkConfig)

// WithSeed sets the RNG seed all simulation randomness flows from
// (default 1). Runs with the same seed and workload are identical.
func WithSeed(seed int64) NetworkOption {
	return func(c *networkConfig) { c.seed = seed }
}

// WithShards lets the simulation run on up to n parallel event loops
// (default 1). The topology is partitioned into islands separated by
// links marked LinkConfig.ShardBoundary; each island group runs its own
// event heap on its own goroutine, and shards synchronize at horizons
// equal to the minimum cross-shard link delay (conservative parallel
// discrete-event simulation).
//
// Determinism contract: output is a function of the seed and workload,
// never of the shard count or goroutine scheduling. Concretely:
//
//   - One shard is the plain single-threaded engine, bit-for-bit.
//   - The effective shard count is capped at the number of islands. A
//     topology that declares no boundary links always runs
//     single-threaded, whatever n says — the engine refuses to cut
//     where it cannot preserve determinism.
//   - Event streams (Events), metrics, and clocks are byte-identical at
//     any shard count provided node code takes time, timers, and
//     randomness from Node.Env() (so they resolve to the executing
//     shard) and no cross-boundary packet arrival shares an exact
//     virtual-time tick with an unrelated event at the same island —
//     stagger phases and boundary delays, as the built-in scenarios do.
//
// See docs/PERFORMANCE.md for the horizon math and when sharding helps.
func WithShards(n int) NetworkOption {
	return func(c *networkConfig) { c.shards = n }
}

// WithObserver subscribes an observer to the network's event bus before
// any traffic flows. May be given multiple times; observers fire in
// subscription order. With no observers the per-packet publish sites
// cost nothing.
func WithObserver(o Observer) NetworkOption {
	return func(c *networkConfig) { c.observers = append(c.observers, o) }
}

// WithTraceWriter attaches a pcap-style text event log writing one line
// per packet event to w (a convenience wrapper over WithObserver).
func WithTraceWriter(w io.Writer) NetworkOption {
	return func(c *networkConfig) { c.traceW = w }
}

// NewNetwork creates an empty network. By default the simulation is
// seeded with 1 and unobserved; see WithSeed, WithObserver, and
// WithTraceWriter.
func NewNetwork(opts ...NetworkOption) *Network {
	cfg := networkConfig{seed: 1, shards: 1}
	for _, opt := range opts {
		opt(&cfg)
	}
	n := &Network{sim: netsim.New(netsim.WithSeed(cfg.seed), netsim.WithShards(cfg.shards))}
	for _, o := range cfg.observers {
		n.sim.Events().Subscribe(o)
	}
	if cfg.traceW != nil {
		n.sim.Events().Subscribe(obs.NewTextLog(cfg.traceW))
	}
	return n
}

// Sim exposes the underlying simulator (scheduling, time, RNG).
func (n *Network) Sim() *netsim.Simulator { return n.sim }

// Metrics returns the network's metrics registry — the single source
// all node and protocol statistics are recorded in ("node.<name>.*",
// "asp.<name>.*", plus any series experiments register).
func (n *Network) Metrics() *Metrics { return n.sim.Metrics() }

// Events returns the network's event bus for subscribing observers
// mid-run (Ring flight recorders, counting sinks, text logs).
func (n *Network) Events() *EventBus { return n.sim.Events() }

// Now returns the current virtual time.
func (n *Network) Now() time.Duration { return n.sim.Now() }

// At schedules fn at absolute virtual time t.
func (n *Network) At(t time.Duration, fn func()) { n.sim.At(t, fn) }

// After schedules fn after delay d.
func (n *Network) After(d time.Duration, fn func()) { n.sim.After(d, fn) }

// runConfig collects Run options.
type runConfig struct {
	deadline    time.Duration
	hasDeadline bool
	duration    time.Duration
	hasDuration bool
	maxEvents   int
}

// RunOption bounds a Run call.
type RunOption func(*runConfig)

// WithDeadline stops the run once the next event would fire after
// absolute virtual time t, then advances the clock to t.
func WithDeadline(t time.Duration) RunOption {
	return func(c *runConfig) { c.deadline, c.hasDeadline = t, true }
}

// WithDuration is WithDeadline relative to the virtual time when Run is
// called: the run covers the next d of virtual time.
func WithDuration(d time.Duration) RunOption {
	return func(c *runConfig) { c.duration, c.hasDuration = d, true }
}

// WithMaxEvents additionally stops the run after n simulator events — a
// budget guard for workloads that may never drain. When the budget is
// hit the clock is NOT advanced to any deadline, so the run can resume.
func WithMaxEvents(n int) RunOption {
	return func(c *runConfig) { c.maxEvents = n }
}

// Run processes pending simulator events and returns how many ran.
//
// Event-count semantics: the returned int counts SIMULATOR events — one
// per scheduled callback (a packet arrival, a timer, an application
// send), not one per packet. A packet crossing two links contributes at
// least two events. The count is deterministic for a fixed seed and
// workload, which makes it a cheap progress assertion in tests.
//
// With no options, Run drains the queue completely (workloads with
// naturally finite traffic). WithDeadline/WithDuration bound the run in
// virtual time: events at or before the deadline run, then the clock
// advances to exactly the deadline even if the queue drained early.
// WithMaxEvents bounds the run in event count.
func (n *Network) Run(opts ...RunOption) int {
	var cfg runConfig
	for _, opt := range opts {
		opt(&cfg)
	}
	if cfg.hasDuration {
		// Resolve the relative bound against the clock at Run time, so
		// options can be built ahead of the calls that use them. An
		// explicit WithDeadline wins over WithDuration.
		if !cfg.hasDeadline {
			cfg.deadline, cfg.hasDeadline = n.sim.Now()+cfg.duration, true
		}
	}
	if !cfg.hasDeadline {
		return n.sim.RunMax(cfg.maxEvents)
	}
	return n.sim.RunBounded(cfg.deadline, cfg.maxEvents)
}

// RunFor advances the simulation by d. It is shorthand for
// Run(WithDuration(d)).
func (n *Network) RunFor(d time.Duration) int { return n.Run(WithDuration(d)) }

// RunUntil advances the simulation to absolute time t. It is shorthand
// for Run(WithDeadline(t)).
func (n *Network) RunUntil(t time.Duration) int { return n.Run(WithDeadline(t)) }

// NewHost adds a host node.
func (n *Network) NewHost(name, addr string) *Node {
	return netsim.NewNode(n.sim, name, netsim.MustAddr(addr))
}

// NewRouter adds a forwarding node.
func (n *Network) NewRouter(name, addr string) *Node {
	r := netsim.NewNode(n.sim, name, netsim.MustAddr(addr))
	r.Forwarding = true
	return r
}

// Wire connects two nodes with a duplex link and installs default/host
// routes so traffic between them flows without further configuration:
// each endpoint gets a host route to the other; endpoints without a
// default route adopt this link.
func (n *Network) Wire(a, b *Node, cfg LinkConfig) *Link {
	l := netsim.Connect(n.sim, a, b, cfg)
	ifs := l.Ifaces()
	a.AddRoute(b.Addr, ifs[0])
	b.AddRoute(a.Addr, ifs[1])
	if a.RouteTo(0) == nil {
		a.SetDefaultRoute(ifs[0])
	}
	if b.RouteTo(0) == nil {
		b.SetDefaultRoute(ifs[1])
	}
	return l
}

// NewSegment creates a shared broadcast segment.
func (n *Network) NewSegment(name string, cfg LinkConfig) *Segment {
	return netsim.NewSegment(n.sim, name, cfg)
}

// Attach connects a node to a segment, defaulting its route onto the
// segment if it has none.
func (n *Network) Attach(seg *Segment, node *Node) *Iface {
	ifc := seg.Attach(node)
	if node.RouteTo(0) == nil {
		node.SetDefaultRoute(ifc)
	}
	return ifc
}
