// Network construction: a thin façade over the discrete-event simulator
// so examples and downstream users can build topologies without touching
// internal packages.
package planp

import (
	"time"

	"planp.dev/planp/internal/netsim"
)

// Re-exported simulator types. The simulator is deterministic: all
// timing is virtual and all randomness flows from the seed.
type (
	// Node is a host or router in the simulated network.
	Node = netsim.Node
	// Packet is one datagram.
	Packet = netsim.Packet
	// Iface attaches a node to a link or segment.
	Iface = netsim.Iface
	// Link is a duplex point-to-point link.
	Link = netsim.Link
	// Segment is a shared Ethernet broadcast domain.
	Segment = netsim.Segment
	// LinkConfig sets bandwidth, delay, and queue limits.
	LinkConfig = netsim.LinkConfig
	// Addr is an IPv4-style address.
	Addr = netsim.Addr
)

// Packet constructors and address parsing.
var (
	// NewUDP builds a UDP packet.
	NewUDP = netsim.NewUDP
	// NewTCP builds a TCP packet.
	NewTCP = netsim.NewTCP
	// ParseAddr parses a dotted quad.
	ParseAddr = netsim.ParseAddr
	// MustAddr parses a dotted quad or panics.
	MustAddr = netsim.MustAddr
)

// Network owns a simulation: virtual clock, nodes, and media.
type Network struct {
	sim *netsim.Simulator
}

// NewNetwork creates an empty network; seed drives all randomness.
func NewNetwork(seed int64) *Network {
	return &Network{sim: netsim.NewSimulator(seed)}
}

// Sim exposes the underlying simulator (scheduling, time, RNG).
func (n *Network) Sim() *netsim.Simulator { return n.sim }

// Now returns the current virtual time.
func (n *Network) Now() time.Duration { return n.sim.Now() }

// At schedules fn at absolute virtual time t.
func (n *Network) At(t time.Duration, fn func()) { n.sim.At(t, fn) }

// After schedules fn after delay d.
func (n *Network) After(d time.Duration, fn func()) { n.sim.After(d, fn) }

// Run processes all pending events and returns the count.
func (n *Network) Run() int { return n.sim.Run() }

// RunFor advances the simulation by d.
func (n *Network) RunFor(d time.Duration) int { return n.sim.RunUntil(n.sim.Now() + d) }

// RunUntil advances the simulation to absolute time t.
func (n *Network) RunUntil(t time.Duration) int { return n.sim.RunUntil(t) }

// NewHost adds a host node.
func (n *Network) NewHost(name, addr string) *Node {
	return netsim.NewNode(n.sim, name, netsim.MustAddr(addr))
}

// NewRouter adds a forwarding node.
func (n *Network) NewRouter(name, addr string) *Node {
	r := netsim.NewNode(n.sim, name, netsim.MustAddr(addr))
	r.Forwarding = true
	return r
}

// Wire connects two nodes with a duplex link and installs default/host
// routes so traffic between them flows without further configuration:
// each endpoint gets a host route to the other; endpoints without a
// default route adopt this link.
func (n *Network) Wire(a, b *Node, cfg LinkConfig) *Link {
	l := netsim.Connect(n.sim, a, b, cfg)
	ifs := l.Ifaces()
	a.AddRoute(b.Addr, ifs[0])
	b.AddRoute(a.Addr, ifs[1])
	if a.RouteTo(0) == nil {
		a.SetDefaultRoute(ifs[0])
	}
	if b.RouteTo(0) == nil {
		b.SetDefaultRoute(ifs[1])
	}
	return l
}

// NewSegment creates a shared broadcast segment.
func (n *Network) NewSegment(name string, cfg LinkConfig) *Segment {
	return netsim.NewSegment(n.sim, name, cfg)
}

// Attach connects a node to a segment, defaulting its route onto the
// segment if it has none.
func (n *Network) Attach(seg *Segment, node *Node) *Iface {
	ifc := seg.Attach(node)
	if node.RouteTo(0) == nil {
		node.SetDefaultRoute(ifc)
	}
	return ifc
}
