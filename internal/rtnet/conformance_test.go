package rtnet_test

import (
	"testing"
	"time"

	"planp.dev/planp/internal/rtnet"
	"planp.dev/planp/internal/substrate"
	"planp.dev/planp/internal/substrate/subtest"
)

// rtHarness adapts the real-time backend to the substrate conformance
// suite. udp selects loopback-UDP links instead of in-process channels,
// so the same behavioral suite also exercises the wire codec and real
// kernel datagram delivery.
type rtHarness struct {
	nw  *rtnet.Net
	udp bool
}

func (h *rtHarness) Build(t *testing.T, hosts []subtest.HostSpec) []substrate.Node {
	h.nw = rtnet.New(42)
	t.Cleanup(h.nw.Close)
	ns := make([]*rtnet.Node, len(hosts))
	for i, hs := range hosts {
		ns[i] = rtnet.NewNode(h.nw, hs.Name, hs.Addr)
		ns[i].Forwarding = hs.Forwarding
	}
	left := make([]substrate.Iface, len(ns))
	right := make([]substrate.Iface, len(ns))
	for i := 0; i+1 < len(ns); i++ {
		if h.udp {
			ab, ba, err := rtnet.NewUDPLink(h.nw, ns[i], ns[i+1], 1_000_000_000)
			if err != nil {
				t.Fatalf("udp link: %v", err)
			}
			right[i], left[i+1] = ab, ba
		} else {
			ab, ba := rtnet.NewLink(h.nw, ns[i], ns[i+1], 1_000_000_000)
			right[i], left[i+1] = ab, ba
		}
	}
	out := make([]substrate.Node, len(ns))
	for i, n := range ns {
		for j := range ns {
			switch {
			case j < i:
				n.AddRoute(ns[j].Address(), left[i])
			case j > i:
				n.AddRoute(ns[j].Address(), right[i])
			}
		}
		if i == 0 {
			n.SetDefaultRoute(right[i])
		} else if i == len(ns)-1 {
			n.SetDefaultRoute(left[i])
		}
		out[i] = n
	}
	return out
}

func (h *rtHarness) Start() { h.nw.Start() }

func (h *rtHarness) Settle(t *testing.T) {
	if !h.nw.Quiesce(10 * time.Second) {
		t.Fatalf("rtnet did not quiesce")
	}
}

func (h *rtHarness) Env() substrate.Env { return h.nw }

// TestSubstrateConformance runs the shared backend conformance suite
// against the real-time backend with in-process channel links.
func TestSubstrateConformance(t *testing.T) {
	subtest.Run(t, func() subtest.Harness { return &rtHarness{} })
}

// TestSubstrateConformanceUDP runs the same suite over loopback-UDP
// socket links (wire codec + real kernel delivery).
func TestSubstrateConformanceUDP(t *testing.T) {
	subtest.Run(t, func() subtest.Harness { return &rtHarness{udp: true} })
}
