package rtnet_test

import (
	"testing"
	"time"

	"planp.dev/planp/internal/rtnet"
	"planp.dev/planp/internal/substrate"
	"planp.dev/planp/internal/substrate/subtest"
)

// rtHarness adapts the real-time backend to the substrate conformance
// suite. udp selects loopback-UDP links instead of in-process channels,
// so the same behavioral suite also exercises the wire codec and real
// kernel datagram delivery.
type rtHarness struct {
	nw  *rtnet.Net
	udp bool
}

func (h *rtHarness) Build(t *testing.T, hosts []subtest.HostSpec) []substrate.Node {
	h.nw = rtnet.New(42)
	t.Cleanup(h.nw.Close)
	specs := make([]rtnet.LineHost, len(hosts))
	for i, hs := range hosts {
		specs[i] = rtnet.LineHost{Name: hs.Name, Addr: hs.Addr, Forwarding: hs.Forwarding}
	}
	ns, err := rtnet.Line(h.nw, specs, 1_000_000_000, h.udp)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]substrate.Node, len(ns))
	for i, n := range ns {
		out[i] = n
	}
	return out
}

func (h *rtHarness) Start() { h.nw.Start() }

func (h *rtHarness) Settle(t *testing.T) {
	if !h.nw.Quiesce(10 * time.Second) {
		t.Fatalf("rtnet did not quiesce")
	}
}

func (h *rtHarness) Env() substrate.Env { return h.nw }

// TestSubstrateConformance runs the shared backend conformance suite
// against the real-time backend with in-process channel links.
func TestSubstrateConformance(t *testing.T) {
	subtest.Run(t, func() subtest.Harness { return &rtHarness{} })
}

// TestSubstrateConformanceUDP runs the same suite over loopback-UDP
// socket links (wire codec + real kernel delivery).
func TestSubstrateConformanceUDP(t *testing.T) {
	subtest.Run(t, func() subtest.Harness { return &rtHarness{udp: true} })
}
