// In-process links: a duplex point-to-point link is a pair of
// interfaces whose Send hands the packet straight to the peer node's
// inbox. The channel send is the ownership transfer — after it, the
// packet belongs to the receiving node's goroutine.
package rtnet

import (
	"sync"
	"sync/atomic"

	"planp.dev/planp/internal/obs"
	"planp.dev/planp/internal/substrate"
)

// queueCap is the per-interface drop-tail queue bound: at most this
// many packets from one interface may sit unprocessed in the peer's
// inbox before further sends drop.
const queueCap = 512

// Iface is one direction of an in-process duplex link.
type Iface struct {
	node *Node // owning node
	peer *Node
	rev  *Iface // reverse-direction endpoint (the "in" iface at peer)
	bw   int64  // nominal bandwidth, bits/s (reported, not enforced)

	queued atomic.Int32

	mu    sync.Mutex // guards meter (RateMeter is not internally synchronized)
	meter *substrate.RateMeter

	drops *obs.Counter
}

// NewLink connects a and b with a duplex link of the given nominal
// bandwidth (bits per second — reported by Bandwidth for the ASP
// adaptation primitives, not enforced as a rate limit) and returns the
// two endpoints (a's, b's).
func NewLink(nw *Net, a, b *Node, bandwidthBps int64) (*Iface, *Iface) {
	ab := &Iface{
		node: a, peer: b, bw: bandwidthBps,
		meter: substrate.NewRateMeter(0),
		drops: nw.reg.Counter("link." + a.name + ":" + b.name + ".dropped_pkts"),
	}
	ba := &Iface{
		node: b, peer: a, bw: bandwidthBps,
		meter: substrate.NewRateMeter(0),
		drops: nw.reg.Counter("link." + b.name + ":" + a.name + ".dropped_pkts"),
	}
	ab.rev, ba.rev = ba, ab
	a.addIface(ab)
	b.addIface(ba)
	return ab, ba
}

// Send transmits pkt toward the peer node (substrate.Iface). Unowned
// packets are cloned so the two nodes never share a mutable packet; an
// owned packet's single reference moves to the peer's goroutine with
// the channel send. Drop-tail: if this interface already has queueCap
// packets waiting at the peer, the packet is dropped.
func (i *Iface) Send(pkt *substrate.Packet) {
	if !pkt.Owned() {
		pkt = pkt.Clone().Own()
	}
	sz := int64(pkt.Size())
	now := i.node.net.Now()
	i.mu.Lock()
	i.meter.Add(now, sz)
	i.mu.Unlock()
	if i.queued.Load() >= queueCap {
		i.dropQueue(pkt)
		return
	}
	i.queued.Add(1)
	if !i.peer.enqueue(pkt, i.rev, &i.queued) {
		i.queued.Add(-1)
		i.dropQueue(pkt)
	}
}

func (i *Iface) dropQueue(pkt *substrate.Packet) {
	i.drops.Inc()
	if i.node.net.bus.Active() {
		i.node.net.bus.Publish(obs.Event{
			Kind: obs.KindDrop, At: i.node.net.Now(),
			Node: i.node.name + ":" + i.peer.name,
			Src:  uint32(pkt.IP.Src), Dst: uint32(pkt.IP.Dst),
			Size: pkt.Size(), Detail: "queue",
		})
	}
}

// Load returns the measured outbound utilization as a percentage of the
// link's nominal bandwidth, clamped to [0, 100] (substrate.Iface) —
// the same contract netsim honors, so load-adaptive ASPs (the §3.1
// audio router's 50/80% thresholds) behave identically on both
// backends.
func (i *Iface) Load() int64 {
	now := i.node.net.Now()
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.meter.Utilization(now, i.bw)
}

// Bandwidth returns the link's nominal capacity in bits per second
// (substrate.Iface).
func (i *Iface) Bandwidth() int64 { return i.bw }

// Peer returns the node at the other end (topology helpers).
func (i *Iface) Peer() *Node { return i.peer }

// Interface satisfaction.
var _ substrate.Iface = (*Iface)(nil)
