// In-process links: a duplex point-to-point link is a pair of
// interfaces whose Send hands the packet straight to the peer node's
// inbox. The channel send is the ownership transfer — after it, the
// packet belongs to the receiving node's goroutine.
package rtnet

import (
	"sync"
	"sync/atomic"

	"planp.dev/planp/internal/obs"
	"planp.dev/planp/internal/substrate"
)

// queueCap is the per-interface drop-tail queue bound: at most this
// many packets from one interface may sit unprocessed in the peer's
// inbox before further sends drop.
const queueCap = 512

// Iface is one direction of an in-process duplex link.
type Iface struct {
	node *Node // owning node
	peer *Node
	rev  *Iface // reverse-direction endpoint (the "in" iface at peer)
	bw   int64  // nominal bandwidth, bits/s (reported, not enforced)

	queued atomic.Int32

	mu    sync.Mutex // guards meter (RateMeter is not internally synchronized) and fault
	meter *substrate.RateMeter
	fault substrate.FaultFunc

	drops      *obs.Counter
	faultDrops *obs.Counter
}

// NewLink connects a and b with a duplex link of the given nominal
// bandwidth (bits per second — reported by Bandwidth for the ASP
// adaptation primitives, not enforced as a rate limit) and returns the
// two endpoints (a's, b's).
func NewLink(nw *Net, a, b *Node, bandwidthBps int64) (*Iface, *Iface) {
	ab := &Iface{
		node: a, peer: b, bw: bandwidthBps,
		meter:      substrate.NewRateMeter(0),
		drops:      nw.reg.Counter("link." + a.name + ":" + b.name + ".dropped_pkts"),
		faultDrops: nw.reg.Counter("link." + a.name + ":" + b.name + ".fault_dropped_pkts"),
	}
	ba := &Iface{
		node: b, peer: a, bw: bandwidthBps,
		meter:      substrate.NewRateMeter(0),
		drops:      nw.reg.Counter("link." + b.name + ":" + a.name + ".dropped_pkts"),
		faultDrops: nw.reg.Counter("link." + b.name + ":" + a.name + ".fault_dropped_pkts"),
	}
	ab.rev, ba.rev = ba, ab
	a.addIface(ab)
	b.addIface(ba)
	return ab, ba
}

// SetFault installs (or, with nil, removes) the interface's fault layer
// (substrate.FaultPort). Safe while traffic flows.
func (i *Iface) SetFault(f substrate.FaultFunc) {
	i.mu.Lock()
	i.fault = f
	i.mu.Unlock()
}

// Send transmits pkt toward the peer node (substrate.Iface). Unowned
// packets are cloned so the two nodes never share a mutable packet; an
// owned packet's single reference moves to the peer's goroutine with
// the channel send. Drop-tail: if this interface already has queueCap
// packets waiting at the peer, the packet is dropped.
func (i *Iface) Send(pkt *substrate.Packet) {
	if !pkt.Owned() {
		pkt = pkt.Clone().Own()
	}
	i.mu.Lock()
	f := i.fault
	i.mu.Unlock()
	if f == nil {
		i.sendNow(pkt)
		return
	}
	act := f(pkt)
	if act.Drop {
		i.dropEvent(pkt, i.faultDrops, "fault")
		return
	}
	if act.Corrupt {
		pkt = substrate.CorruptPayload(pkt, act.CorruptBit)
	}
	// Duplicates share the one verdict. They are cloned BEFORE the
	// original is transmitted: once an owned packet is enqueued it
	// belongs to the peer's goroutine, which may mutate it in place.
	// Clones share only the immutable payload, so sending them first
	// is safe.
	dups := clonePackets(pkt, act.Dup)
	if act.Delay > 0 {
		// All copies wait out the same injected latency on a real timer.
		i.node.net.After(act.Delay, func() {
			for _, d := range dups {
				i.sendNow(d)
			}
			i.sendNow(pkt)
		})
		return
	}
	for _, d := range dups {
		i.sendNow(d)
	}
	i.sendNow(pkt)
}

// clonePackets builds n independent owned clones of pkt (nil for n=0).
func clonePackets(pkt *substrate.Packet, n int) []*substrate.Packet {
	if n <= 0 {
		return nil
	}
	out := make([]*substrate.Packet, n)
	for k := range out {
		out[k] = pkt.Clone()
	}
	return out
}

// sendNow is the faultless transmission path: meter, drop-tail check,
// enqueue at the peer.
func (i *Iface) sendNow(pkt *substrate.Packet) {
	sz := int64(pkt.Size())
	now := i.node.net.Now()
	i.mu.Lock()
	i.meter.Add(now, sz)
	i.mu.Unlock()
	if i.queued.Load() >= queueCap {
		i.dropQueue(pkt)
		return
	}
	i.queued.Add(1)
	if !i.peer.enqueue(pkt, i.rev, &i.queued) {
		i.queued.Add(-1)
		i.dropQueue(pkt)
	}
}

func (i *Iface) dropQueue(pkt *substrate.Packet) {
	i.dropEvent(pkt, i.drops, "queue")
}

func (i *Iface) dropEvent(pkt *substrate.Packet, ct *obs.Counter, reason string) {
	ct.Inc()
	if i.node.net.bus.Active() {
		i.node.net.bus.Publish(obs.Event{
			Kind: obs.KindDrop, At: i.node.net.Now(),
			Node: i.node.name + ":" + i.peer.name,
			Src:  uint32(pkt.IP.Src), Dst: uint32(pkt.IP.Dst),
			Size: pkt.Size(), Detail: reason,
		})
	}
}

// Load returns the measured outbound utilization as a percentage of the
// link's nominal bandwidth, clamped to [0, 100] (substrate.Iface) —
// the same contract netsim honors, so load-adaptive ASPs (the §3.1
// audio router's 50/80% thresholds) behave identically on both
// backends.
func (i *Iface) Load() int64 {
	now := i.node.net.Now()
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.meter.Utilization(now, i.bw)
}

// Bandwidth returns the link's nominal capacity in bits per second
// (substrate.Iface).
func (i *Iface) Bandwidth() int64 { return i.bw }

// Peer returns the node at the other end (topology helpers).
func (i *Iface) Peer() *Node { return i.peer }

// Interface satisfaction.
var (
	_ substrate.Iface     = (*Iface)(nil)
	_ substrate.FaultPort = (*Iface)(nil)
)
