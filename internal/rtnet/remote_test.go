package rtnet

import (
	"encoding/binary"
	"net"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"planp.dev/planp/internal/substrate"
)

// reservePorts grabs n distinct loopback UDP ports and releases them,
// returning addresses a test can hand to RemoteSpec. The usual tiny
// rebind race is acceptable in tests.
func reservePorts(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, 0, n)
	conns := make([]*net.UDPConn, 0, n)
	for len(addrs) < n {
		c, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
		if err != nil {
			t.Fatalf("reserve port: %v", err)
		}
		conns = append(conns, c)
		addrs = append(addrs, c.LocalAddr().String())
	}
	for _, c := range conns {
		c.Close()
	}
	return addrs
}

// remotePair builds two single-node networks joined by a cross-host
// link and returns both endpoints. Mutate specs via adjust before the
// links are created (nil for the happy path).
func remotePair(t *testing.T, adjust func(a, b *RemoteSpec)) (na, nb *Net, ia, ib *RemoteIface) {
	t.Helper()
	ports := reservePorts(t, 2)
	na, nb = New(1), New(2)
	left := NewNode(na, "left", 1)
	right := NewNode(nb, "right", 2)
	sa := RemoteSpec{
		LinkName: "left-right", Listen: ports[0], Peer: ports[1],
		PeerNode: "right", PeerAddr: 2, BandwidthBps: 10e6,
		ProbeInterval: 20 * time.Millisecond,
	}
	sb := RemoteSpec{
		LinkName: "left-right", Listen: ports[1], Peer: ports[0],
		PeerNode: "left", PeerAddr: 1, BandwidthBps: 10e6,
		ProbeInterval: 20 * time.Millisecond,
	}
	if adjust != nil {
		adjust(&sa, &sb)
	}
	var err error
	if ia, err = NewRemoteLink(na, left, sa); err != nil {
		t.Fatalf("link a: %v", err)
	}
	if ib, err = NewRemoteLink(nb, right, sb); err != nil {
		t.Fatalf("link b: %v", err)
	}
	left.AddRoute(2, ia)
	right.AddRoute(1, ib)
	t.Cleanup(na.Close)
	t.Cleanup(nb.Close)
	return na, nb, ia, ib
}

func waitState(t *testing.T, i *RemoteIface, want string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if i.State() == want {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("link %s: state %q, want %q", i.Label(), i.State(), want)
}

func TestRemoteLinkHandshakeAndData(t *testing.T) {
	na, nb, ia, ib := remotePair(t, nil)
	var got atomic.Int64
	nb.NodeByName("right").BindUDP(7, func(pkt *substrate.Packet) {
		got.Add(1)
	})
	na.Start()
	nb.Start()
	waitState(t, ia, LinkUp)
	waitState(t, ib, LinkUp)
	if na.Metrics().Snapshot()["link.left:right.up"] != 1 {
		t.Fatalf("link.left:right.up gauge not set")
	}

	for k := 0; k < 10; k++ {
		na.NodeByName("left").Send(substrate.NewUDP(1, 2, 9, 7, []byte("ping")))
	}
	deadline := time.Now().Add(5 * time.Second)
	for got.Load() < 10 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got.Load() != 10 {
		t.Fatalf("delivered %d/10 packets across the remote link", got.Load())
	}

	// Garbage data frames from the legitimate peer endpoint are counted
	// as codec rejections, not silently dropped.
	before := na.Metrics().Snapshot()["rtnet.codec_rejected"]
	ib.writeFrame([]byte{frameData, 0xde, 0xad, 0xbe, 0xef})
	waitCounter(t, func() int64 { return na.Metrics().Snapshot()["rtnet.codec_rejected"] }, before+1)
}

func waitCounter(t *testing.T, get func() int64, want int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if get() >= want {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("counter stuck at %d, want >= %d", get(), want)
}

// TestRemoteHandshakeMismatchMatrix drives each misconfiguration
// through two real endpoints and asserts neither comes up and the
// refused side records the structured rejection.
func TestRemoteHandshakeMismatchMatrix(t *testing.T) {
	cases := []struct {
		name   string
		adjust func(a, b *RemoteSpec)
		code   byte
	}{
		{"peer-node", func(a, b *RemoteSpec) { a.PeerNode = "middle" }, RejectIdentity},
		{"peer-addr", func(a, b *RemoteSpec) { a.PeerAddr = 42 }, RejectIdentity},
		{"link-name", func(a, b *RemoteSpec) { a.LinkName = "left-middle" }, RejectLink},
		{"bandwidth", func(a, b *RemoteSpec) { a.BandwidthBps = 20e6 }, RejectParams},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			na, _, ia, ib := remotePair(t, tc.adjust)
			na.Start()
			// b's HELLO is refused by a's stricter expectations; b must
			// surface the structured rejection.
			deadline := time.Now().Add(5 * time.Second)
			for ib.LastReject() == nil && time.Now().Before(deadline) {
				time.Sleep(5 * time.Millisecond)
			}
			rej := ib.LastReject()
			if rej == nil {
				t.Fatalf("peer never received a structured rejection")
			}
			if rej.Code != tc.code {
				t.Fatalf("reject code %d, want %d (%s)", rej.Code, tc.code, rej.Msg)
			}
			if rej.PeerVersion != RemoteProtoVersion {
				t.Fatalf("reject peer version %d, want %d", rej.PeerVersion, RemoteProtoVersion)
			}
			if ia.Up() || ib.Up() {
				t.Fatalf("mismatched link came up (a=%s b=%s)", ia.State(), ib.State())
			}
		})
	}
}

// rawPeer is a hand-rolled UDP endpoint standing in for a foreign (or
// version-skewed) daemon in handshake tests.
type rawPeer struct {
	t    *testing.T
	conn *net.UDPConn
	to   *net.UDPAddr
}

func newRawPeer(t *testing.T, listen, to string) *rawPeer {
	t.Helper()
	laddr, err := net.ResolveUDPAddr("udp", listen)
	if err != nil {
		t.Fatalf("raw peer listen: %v", err)
	}
	taddr, err := net.ResolveUDPAddr("udp", to)
	if err != nil {
		t.Fatalf("raw peer target: %v", err)
	}
	conn, err := net.ListenUDP("udp", laddr)
	if err != nil {
		t.Fatalf("raw peer bind: %v", err)
	}
	t.Cleanup(func() { conn.Close() })
	return &rawPeer{t: t, conn: conn, to: taddr}
}

func (p *rawPeer) send(frame []byte) {
	if _, err := p.conn.WriteToUDP(frame, p.to); err != nil {
		p.t.Fatalf("raw peer send: %v", err)
	}
}

// recvReject reads frames until a REJECT arrives (HELLO probes from
// the endpoint under test are skipped).
func (p *rawPeer) recvReject() RejectError {
	p.t.Helper()
	buf := make([]byte, 2048)
	p.conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	for {
		n, _, err := p.conn.ReadFromUDP(buf)
		if err != nil {
			p.t.Fatalf("raw peer read: %v", err)
		}
		f, err := parseRemoteFrame(append([]byte(nil), buf[:n]...))
		if err != nil {
			p.t.Fatalf("raw peer got unparseable frame: %v", err)
		}
		if f.typ == frameReject {
			return f.reject
		}
	}
}

// helloFrame builds a HELLO with an arbitrary protocol version.
func helloFrame(version uint16, session uint64, node string, addr substrate.Addr, link string, bw int64) []byte {
	b := appendPeerFrame(nil, frameHello, session, node, addr, link, bw)
	binary.BigEndian.PutUint16(b[1:3], version)
	return b
}

// TestRemoteHandshakeVersionMismatch plays a future-versioned daemon
// against a current endpoint: the endpoint must answer with a
// structured REJECT naming both versions, and must not come up.
func TestRemoteHandshakeVersionMismatch(t *testing.T) {
	ports := reservePorts(t, 2)
	nw := New(1)
	node := NewNode(nw, "left", 1)
	ifc, err := NewRemoteLink(nw, node, RemoteSpec{
		LinkName: "left-right", Listen: ports[0], Peer: ports[1],
		PeerNode: "right", PeerAddr: 2, BandwidthBps: 10e6,
		ProbeInterval: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(nw.Close)

	peer := newRawPeer(t, ports[1], ports[0])
	peer.send(helloFrame(RemoteProtoVersion+1, 99, "right", 2, "left-right", 10e6))
	rej := peer.recvReject()
	if rej.Code != RejectVersion {
		t.Fatalf("reject code %d, want %d (%s)", rej.Code, RejectVersion, rej.Msg)
	}
	if !strings.Contains(rej.Msg, "version") {
		t.Fatalf("reject message %q does not name the version conflict", rej.Msg)
	}
	if ifc.Up() {
		t.Fatalf("link came up despite version mismatch")
	}
	if nw.Metrics().Snapshot()["rtnet.handshake_rejected"] == 0 {
		t.Fatalf("rtnet.handshake_rejected not counted")
	}
}

// TestRemoteHandshakeDuplicateIdentity plays a peer claiming the
// endpoint's OWN node identity; it must be refused as an identity
// conflict, never welcomed.
func TestRemoteHandshakeDuplicateIdentity(t *testing.T) {
	ports := reservePorts(t, 2)
	nw := New(1)
	node := NewNode(nw, "left", 1)
	ifc, err := NewRemoteLink(nw, node, RemoteSpec{
		LinkName: "left-right", Listen: ports[0], Peer: ports[1],
		PeerNode: "right", PeerAddr: 2, BandwidthBps: 10e6,
		ProbeInterval: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(nw.Close)

	peer := newRawPeer(t, ports[1], ports[0])
	peer.send(helloFrame(RemoteProtoVersion, 99, "left", 1, "left-right", 10e6))
	rej := peer.recvReject()
	if rej.Code != RejectIdentity {
		t.Fatalf("reject code %d, want %d (%s)", rej.Code, RejectIdentity, rej.Msg)
	}
	if !strings.Contains(rej.Msg, "duplicate") {
		t.Fatalf("reject message %q does not flag the duplicate identity", rej.Msg)
	}
	if ifc.Up() {
		t.Fatalf("link came up despite duplicate identity")
	}
}

// TestRemoteHandshakeUnknownEndpoint sends a HELLO from an endpoint
// the link is not configured to talk to; it must be refused with a
// structured REJECT rather than ignored.
func TestRemoteHandshakeUnknownEndpoint(t *testing.T) {
	ports := reservePorts(t, 3)
	nw := New(1)
	node := NewNode(nw, "left", 1)
	_, err := NewRemoteLink(nw, node, RemoteSpec{
		LinkName: "left-right", Listen: ports[0], Peer: ports[1],
		PeerNode: "right", PeerAddr: 2, BandwidthBps: 10e6,
		ProbeInterval: time.Hour, // quiet: no HELLO probes at the stranger
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(nw.Close)

	stranger := newRawPeer(t, ports[2], ports[0])
	stranger.send(helloFrame(RemoteProtoVersion, 7, "right", 2, "left-right", 10e6))
	rej := stranger.recvReject()
	if rej.Code != RejectIdentity {
		t.Fatalf("reject code %d, want %d (%s)", rej.Code, RejectIdentity, rej.Msg)
	}
}

// TestRemoteGoodbyeAndReconnect closes one side's network (graceful
// shutdown) and asserts the peer logs the goodbye instead of waiting
// out a probe timeout, then brings a NEW incarnation up on the same
// endpoint and asserts the link recovers with a reconnect marker.
func TestRemoteGoodbyeAndReconnect(t *testing.T) {
	_, nb, ia, _ := remotePair(t, nil)
	waitState(t, ia, LinkUp)

	reg := ia.node.net.reg
	nb.Close() // sends BYE
	waitState(t, ia, LinkDown)
	if reg.Snapshot()["rtnet.goodbyes"] == 0 {
		t.Fatalf("peer shutdown not observed as a goodbye")
	}

	// A new daemon incarnation takes over the same identity and
	// endpoint: fresh Net, fresh session nonce, same node/addr/port.
	nb2 := New(3)
	right := NewNode(nb2, "right", 2)
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, err := NewRemoteLink(nb2, right, RemoteSpec{
			LinkName: "left-right", Listen: ia.spec.Peer, Peer: ia.spec.Listen,
			PeerNode: "left", PeerAddr: 1, BandwidthBps: 10e6,
			ProbeInterval: 20 * time.Millisecond,
		})
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("rebind after restart: %v", err)
		}
		time.Sleep(10 * time.Millisecond) // old socket may still be closing
	}
	t.Cleanup(nb2.Close)

	waitState(t, ia, LinkUp)
	if reg.Snapshot()["rtnet.reconnects"] == 0 {
		t.Fatalf("peer restart not observed as a reconnect")
	}
}

// TestRemoteProbeTimeout kills the peer ungracefully (socket closed
// without BYE — the raw peer just stops answering) and asserts the
// liveness prober marks the link down.
func TestRemoteProbeTimeout(t *testing.T) {
	ports := reservePorts(t, 2)
	nw := New(1)
	node := NewNode(nw, "left", 1)
	ifc, err := NewRemoteLink(nw, node, RemoteSpec{
		LinkName: "left-right", Listen: ports[0], Peer: ports[1],
		PeerNode: "right", PeerAddr: 2, BandwidthBps: 10e6,
		ProbeInterval: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(nw.Close)

	// One valid WELCOME brings the link up; then silence.
	peer := newRawPeer(t, ports[1], ports[0])
	peer.send(appendPeerFrame(nil, frameWelcome, 99, "right", 2, "left-right", 10e6))
	waitState(t, ifc, LinkUp)
	waitState(t, ifc, LinkDown) // probe timeout: 4 × 20ms of silence
}
