// Loopback-UDP links: the same duplex link shape as NewLink, but each
// direction crosses a real UDP socket pair on 127.0.0.1, exercising the
// substrate wire codec and real kernel datagram delivery. This is the
// transport cmd/planpd demos live ASP downloads over when in-process
// channels would be cheating.
package rtnet

import (
	"fmt"
	"net"
	"sync"

	"planp.dev/planp/internal/obs"
	"planp.dev/planp/internal/substrate"
)

// maxDatagram bounds one wire-encoded packet to what a single UDP
// datagram can carry; larger packets are dropped (rtnet does not
// fragment).
const maxDatagram = 65000

// UDPIface is one direction of a loopback-UDP duplex link: Send
// marshals the packet with the substrate wire codec and writes it to
// the peer's socket; a reader goroutine on each end parses and enqueues
// onto its node.
type UDPIface struct {
	node     *Node
	peer     *Node
	conn     *net.UDPConn // local endpoint (reads arrive here)
	peerAddr *net.UDPAddr // where Send writes
	bw       int64

	mu    sync.Mutex // guards meter, buf, and fault
	meter *substrate.RateMeter
	buf   []byte
	fault substrate.FaultFunc

	drops        *obs.Counter
	faultDrops   *obs.Counter
	codecRejects *obs.Counter
}

// NewUDPLink connects a and b with a duplex link over a pair of
// loopback UDP sockets. The sockets are owned by the network and closed
// by Close. Kernel-level datagram loss (socket buffer overflow) shows
// up as ordinary packet loss, which is the point: this link is real.
func NewUDPLink(nw *Net, a, b *Node, bandwidthBps int64) (*UDPIface, *UDPIface, error) {
	connA, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		return nil, nil, fmt.Errorf("rtnet: udp link endpoint: %w", err)
	}
	connB, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		connA.Close()
		return nil, nil, fmt.Errorf("rtnet: udp link endpoint: %w", err)
	}
	ab := &UDPIface{
		node: a, peer: b, conn: connA, peerAddr: connB.LocalAddr().(*net.UDPAddr),
		bw: bandwidthBps, meter: substrate.NewRateMeter(0),
		drops:        nw.reg.Counter("link." + a.name + ":" + b.name + ".dropped_pkts"),
		faultDrops:   nw.reg.Counter("link." + a.name + ":" + b.name + ".fault_dropped_pkts"),
		codecRejects: nw.reg.Counter("rtnet.codec_rejected"),
	}
	ba := &UDPIface{
		node: b, peer: a, conn: connB, peerAddr: connA.LocalAddr().(*net.UDPAddr),
		bw: bandwidthBps, meter: substrate.NewRateMeter(0),
		drops:        nw.reg.Counter("link." + b.name + ":" + a.name + ".dropped_pkts"),
		faultDrops:   nw.reg.Counter("link." + b.name + ":" + a.name + ".fault_dropped_pkts"),
		codecRejects: nw.reg.Counter("rtnet.codec_rejected"),
	}
	a.addIface(ab)
	b.addIface(ba)
	nw.register(connA)
	nw.register(connB)
	nw.wg.Add(2)
	go ab.read(nw)
	go ba.read(nw)
	return ab, ba, nil
}

// read is the endpoint's receive loop: parse wire packets off the
// socket and enqueue them on the owning node. It exits when the socket
// is closed (network Close).
func (i *UDPIface) read(nw *Net) {
	defer nw.wg.Done()
	buf := make([]byte, maxDatagram+1)
	for {
		n, _, err := i.conn.ReadFromUDP(buf)
		if err != nil {
			return // socket closed
		}
		if n > maxDatagram {
			// Larger than anything we transmit: garbage, not ours.
			i.codecRejects.Inc()
			i.drop(nil, "codec-reject")
			continue
		}
		pkt, err := substrate.ParseWire(buf[:n])
		if err != nil {
			// Truncated or garbage frame: counted under its own metric
			// (rtnet.codec_rejected) so wire-format trouble is
			// distinguishable from congestion drops.
			i.codecRejects.Inc()
			i.drop(nil, "codec-reject")
			continue
		}
		// The parse built a fresh private packet: this goroutine holds
		// the only reference, so the node may mutate it in place.
		pkt.Own()
		if !i.node.enqueue(pkt, i, nil) {
			i.drop(pkt, "queue")
		}
	}
}

// SetFault installs (or, with nil, removes) the interface's fault layer
// (substrate.FaultPort). Safe while traffic flows.
func (i *UDPIface) SetFault(f substrate.FaultFunc) {
	i.mu.Lock()
	i.fault = f
	i.mu.Unlock()
}

// Send transmits pkt toward the peer over the socket (substrate.Iface).
// The packet is fully serialized before the write returns, so the
// caller keeps ownership of the original; the receiving side always
// reparses a private copy.
func (i *UDPIface) Send(pkt *substrate.Packet) {
	i.mu.Lock()
	f := i.fault
	i.mu.Unlock()
	if f == nil {
		i.sendNow(pkt)
		return
	}
	act := f(pkt)
	if act.Drop {
		i.faultDrops.Inc()
		i.dropEvent(pkt, "fault")
		return
	}
	if act.Corrupt {
		pkt = substrate.CorruptPayload(pkt, act.CorruptBit)
	}
	if act.Delay > 0 {
		// The caller keeps ownership and may reuse pkt once Send
		// returns, so the delayed copies must be serialized NOW; only
		// the socket writes wait. A fresh buffer, not i.buf — the
		// bytes outlive this call.
		wire, err := substrate.AppendWire(nil, pkt)
		if err != nil || len(wire) > maxDatagram {
			i.drop(pkt, "oversize")
			return
		}
		sz, copies := int64(len(wire)), 1+act.Dup
		i.node.net.After(act.Delay, func() {
			for k := 0; k < copies; k++ {
				i.writeWire(wire, sz)
			}
		})
		return
	}
	i.sendNow(pkt)
	for k := 0; k < act.Dup; k++ {
		i.sendNow(pkt)
	}
}

// sendNow is the faultless transmission path: serialize under the lock
// (reusing the scratch buffer) and write the datagram.
func (i *UDPIface) sendNow(pkt *substrate.Packet) {
	sz := int64(pkt.Size())
	now := i.node.net.Now()
	i.mu.Lock()
	i.meter.Add(now, sz)
	wire, err := substrate.AppendWire(i.buf[:0], pkt)
	if err == nil {
		i.buf = wire[:0]
	}
	if err != nil || len(wire) > maxDatagram {
		i.mu.Unlock()
		i.drop(pkt, "oversize")
		return
	}
	_, werr := i.conn.WriteToUDP(wire, i.peerAddr)
	i.mu.Unlock()
	if werr != nil {
		i.drop(pkt, "socket")
	}
}

// writeWire sends one pre-serialized datagram (the delayed-fault path;
// socket errors count as drops without an event — the packet fields are
// gone by the time the timer fires).
func (i *UDPIface) writeWire(wire []byte, sz int64) {
	now := i.node.net.Now()
	i.mu.Lock()
	i.meter.Add(now, sz)
	_, werr := i.conn.WriteToUDP(wire, i.peerAddr)
	i.mu.Unlock()
	if werr != nil {
		i.drops.Inc()
	}
}

func (i *UDPIface) drop(pkt *substrate.Packet, reason string) {
	i.drops.Inc()
	i.dropEvent(pkt, reason)
}

func (i *UDPIface) dropEvent(pkt *substrate.Packet, reason string) {
	if pkt != nil && i.node.net.bus.Active() {
		i.node.net.bus.Publish(obs.Event{
			Kind: obs.KindDrop, At: i.node.net.Now(),
			Node: i.node.name + ":" + i.peer.name,
			Src:  uint32(pkt.IP.Src), Dst: uint32(pkt.IP.Dst),
			Size: pkt.Size(), Detail: reason,
		})
	}
}

// Load returns the measured outbound utilization as a percentage of the
// link's nominal bandwidth, clamped to [0, 100] (substrate.Iface) —
// see (*Iface).Load for the contract.
func (i *UDPIface) Load() int64 {
	now := i.node.net.Now()
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.meter.Utilization(now, i.bw)
}

// Bandwidth returns the link's nominal capacity in bits per second
// (substrate.Iface).
func (i *UDPIface) Bandwidth() int64 { return i.bw }

// Peer returns the node at the other end (topology helpers).
func (i *UDPIface) Peer() *Node { return i.peer }

// Interface satisfaction.
var (
	_ substrate.Iface     = (*UDPIface)(nil)
	_ substrate.FaultPort = (*UDPIface)(nil)
)
