package rtnet

import (
	"bytes"
	"testing"

	"planp.dev/planp/internal/substrate"
)

// FuzzParseRemoteFrame hammers the cross-host frame decoder with
// hostile datagrams. The decoder's contract: never panic, never accept
// a frame with trailing garbage, and round-trip every frame our own
// encoders produce.
func FuzzParseRemoteFrame(f *testing.F) {
	// Seed corpus: one of each frame our encoders emit, plus wire-coded
	// data and classic truncations.
	f.Add(appendPeerFrame(nil, frameHello, 12345, "gateway", 42, "gateway-server0", 10_000_000))
	f.Add(appendPeerFrame(nil, frameWelcome, 1, "a", 1, "a-b", 0))
	f.Add(appendRejectFrame(nil, RejectVersion, "protocol version 2, this endpoint speaks 1"))
	f.Add([]byte{framePing, 0, 0, 0, 0, 0, 0, 0, 1})
	f.Add([]byte{framePong, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})
	f.Add([]byte{frameBye})
	wire, err := substrate.AppendWire([]byte{frameData}, substrate.NewUDP(1, 2, 9, 7, []byte("payload")))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(wire)
	f.Add([]byte{})
	f.Add([]byte{frameHello})
	f.Add([]byte{frameHello, 0, 1})
	f.Add([]byte{frameReject, RejectIdentity})
	f.Add([]byte{0x00, 0x01, 0x02})

	f.Fuzz(func(t *testing.T, b []byte) {
		fr, err := parseRemoteFrame(b)
		if err != nil {
			return
		}
		switch fr.typ {
		case frameData:
			if len(fr.data) == 0 {
				t.Fatalf("accepted a data frame with no packet bytes")
			}
		case frameHello, frameWelcome:
			// Accepted handshake frames must re-encode byte-identically
			// when they claim our protocol version — the codec has no
			// room for two encodings of one frame.
			if fr.hello.version == RemoteProtoVersion {
				enc := appendPeerFrame(nil, fr.typ, fr.hello.session,
					fr.hello.node, fr.hello.addr, fr.hello.link, fr.hello.bw)
				if !bytes.Equal(enc, b) {
					t.Fatalf("handshake frame did not round-trip:\n in  %x\n out %x", b, enc)
				}
			}
			if len(fr.hello.node) > 255 || len(fr.hello.link) > 255 {
				t.Fatalf("accepted oversized handshake strings")
			}
			if fr.hello.bw < 0 {
				t.Fatalf("accepted negative bandwidth")
			}
		case frameReject:
			if fr.reject.PeerVersion == RemoteProtoVersion {
				enc := appendRejectFrame(nil, fr.reject.Code, fr.reject.Msg)
				if !bytes.Equal(enc, b) {
					t.Fatalf("reject frame did not round-trip:\n in  %x\n out %x", b, enc)
				}
			}
		case framePing, framePong, frameBye:
			// Session payloads have no further invariants.
		default:
			t.Fatalf("decoder accepted unknown frame type %#x", fr.typ)
		}
	})
}

// FuzzParseWireDatagram drives the substrate wire decoder exactly as
// the UDP link receive paths do (satellite: codec hardening) — any
// input must yield a parsed packet or an error, never a panic, and a
// parsed packet must re-encode.
func FuzzParseWireDatagram(f *testing.F) {
	good, err := substrate.AppendWire(nil, substrate.NewUDP(0x0A000001, 0x0A000002, 9, 7, []byte("x")))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add(good[:len(good)-1])
	f.Add([]byte{})
	f.Add([]byte{0xff})
	f.Fuzz(func(t *testing.T, b []byte) {
		if len(b) > maxDatagram {
			return // the receive loops reject these before parsing
		}
		pkt, err := substrate.ParseWire(b)
		if err != nil {
			return
		}
		if _, err := substrate.AppendWire(nil, pkt); err != nil {
			t.Fatalf("parsed packet failed to re-encode: %v", err)
		}
	})
}
