// Package rtnet is the real-time execution substrate: the same
// substrate.Node/Iface/Env surface as the deterministic simulator
// (internal/netsim), but backed by goroutines, wall-clock time, and
// real in-process (or loopback-UDP) packet transport. An ASP verified
// and compiled once runs unchanged on either backend — this package is
// what makes the "download onto a live node" half of the paper's story
// (§4, the Solaris kernel module) concrete in this reproduction.
//
// Concurrency model: every node runs a single goroutine that drains its
// inbox, so all packet processing on a node — including an installed
// PLAN-P runtime and its interpreter state — is single-threaded, just
// as on the simulator. Nodes run concurrently with each other; packets
// cross between them over channels (NewLink) or loopback UDP sockets
// (NewUDPLink). The packet ownership protocol doubles as the memory
// model: an owned packet has a single live reference, and handing it to
// a link (channel send or socket write+reparse) is the happens-before
// edge that transfers it to the receiving node's goroutine. Unowned
// (shared) packets are cloned at the link boundary so no two goroutines
// ever touch the same mutable packet.
//
// Determinism contract: rtnet is race-clean but NOT reproducible —
// timing, interleaving, and drop behavior vary run to run. Experiments
// that must replay byte-identically belong on netsim; rtnet exists to
// serve live traffic (cmd/planpd).
//
// Observability: the event bus is shared by all node goroutines and
// obs.Bus is not internally synchronized, so subscribers must be
// attached BEFORE Start and must themselves be safe for concurrent
// OnEvent calls (obs counters are; plain slices are not). The metrics
// registry is fully concurrent.
//
// Limitations relative to netsim: no shared segments, no multicast
// trees, no modeled CPU cost — rtnet nodes are real concurrent hosts,
// not simulation stand-ins, and multicast remains simulator-only.
package rtnet

import (
	"io"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"planp.dev/planp/internal/obs"
	"planp.dev/planp/internal/substrate"
)

// Net owns a real-time network: its nodes, links, wall clock, RNG,
// timers, and observability substrate. Build the topology, then Start,
// then send traffic, then Close.
type Net struct {
	start time.Time
	bus   *obs.Bus
	reg   *obs.Registry

	// skew shifts Now() by a signed offset (nanoseconds) — the chaos
	// clock-skew primitive. One network is one host's clock, so the
	// skew is network-wide; see substrate.ClockSkewer.
	skew atomic.Int64

	rngMu sync.Mutex
	rng   *rand.Rand

	mu      sync.Mutex
	byAddr  map[substrate.Addr]*Node
	byName  map[string]*Node
	nodes   []*Node
	timers  map[*time.Timer]struct{}
	closers []io.Closer
	started bool
	closed  bool

	quit chan struct{}
	wg   sync.WaitGroup

	// inflight counts packets enqueued on some node's inbox but not yet
	// fully processed; Quiesce polls it. Traffic chains (receive →
	// forward → receive ...) keep it nonzero continuously because a
	// response is enqueued before its trigger is counted done.
	inflight atomic.Int64
}

// New returns an empty network. The seed feeds the Env RNG — unlike the
// simulator's, it does not make runs reproducible (goroutine
// interleaving does not replay), it only makes the randomness source
// explicit.
func New(seed int64) *Net {
	return &Net{
		start:  time.Now(),
		bus:    &obs.Bus{},
		reg:    obs.NewRegistry(),
		byAddr: map[substrate.Addr]*Node{},
		byName: map[string]*Node{},
		timers: map[*time.Timer]struct{}{},
		quit:   make(chan struct{}),
	}
}

// Now returns the wall-clock time elapsed since the network was
// created, shifted by the injected clock skew (substrate.Env).
// Monotonic by construction while the skew holds still; a skew change
// steps the clock, which is the point of the fault.
func (n *Net) Now() time.Duration {
	return time.Since(n.start) + time.Duration(n.skew.Load())
}

// SetClockSkew shifts every Now reading by d — the chaos clock-skew
// primitive (substrate.ClockSkewer, reached through any of the
// network's nodes). Timers are unaffected: only observations drift,
// not scheduling.
func (n *Net) SetClockSkew(d time.Duration) { n.skew.Store(int64(d)) }

// ClockSkew returns the injected clock skew.
func (n *Net) ClockSkew() time.Duration { return time.Duration(n.skew.Load()) }

// After schedules fn on a real timer (substrate.Env). The callback runs
// on the timer goroutine — PLAN-P runtimes do not use timers, and other
// callers must synchronize anything fn touches. Timers are tracked and
// stopped by Close; fn is suppressed after Close.
func (n *Net) After(d time.Duration, fn func()) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return
	}
	var t *time.Timer
	t = time.AfterFunc(d, func() {
		// Taking n.mu orders this callback after the registration below
		// (t is assigned before the registrar unlocks) and after any
		// Close that should suppress it.
		n.mu.Lock()
		delete(n.timers, t)
		closed := n.closed
		n.mu.Unlock()
		if !closed {
			fn()
		}
	})
	n.timers[t] = struct{}{}
}

// Int63n returns a pseudo-random integer in [0, v) (substrate.Env).
// Safe for concurrent use.
func (n *Net) Int63n(v int64) int64 {
	n.rngMu.Lock()
	defer n.rngMu.Unlock()
	if n.rng == nil {
		n.rng = rand.New(rand.NewSource(1))
	}
	return n.rng.Int63n(v)
}

// Events returns the network's event bus (substrate.Env). Subscribe
// before Start; subscribers are invoked concurrently from node
// goroutines.
func (n *Net) Events() *obs.Bus { return n.bus }

// Metrics returns the network's metrics registry (substrate.Env).
func (n *Net) Metrics() *obs.Registry { return n.reg }

// Node returns the node with the given address, or nil.
func (n *Net) Node(a substrate.Addr) *Node {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.byAddr[a]
}

// NodeByName returns the node with the given name, or nil.
func (n *Net) NodeByName(name string) *Node {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.byName[name]
}

// Start launches every node's processing goroutine. The topology
// (nodes, links, routes, bindings, event subscribers) must be complete;
// anything added afterwards races with live traffic.
func (n *Net) Start() {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.started || n.closed {
		return
	}
	n.started = true
	for _, node := range n.nodes {
		n.wg.Add(1)
		go node.run()
	}
}

// Close stops timers, node goroutines, and socket links, then waits for
// them to exit. Idempotent. In-flight packets are discarded.
func (n *Net) Close() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed = true
	for t := range n.timers {
		t.Stop()
	}
	n.timers = map[*time.Timer]struct{}{}
	closers := n.closers
	n.closers = nil
	n.mu.Unlock()

	close(n.quit)
	for _, c := range closers {
		c.Close()
	}
	n.wg.Wait()
}

// Quiesce blocks until no packet has been in flight for a short
// continuous window, or timeout elapses; it reports whether the network
// went quiet. This is the real-time analogue of the simulator's Run():
// tests inject traffic, Quiesce, then assert on counters. The idle
// window (25 ms) comfortably covers loopback-UDP latency, during which
// a wire-borne packet is briefly invisible to the inflight count.
func (n *Net) Quiesce(timeout time.Duration) bool {
	const idle = 25 * time.Millisecond
	deadline := time.Now().Add(timeout)
	var quietSince time.Time
	for time.Now().Before(deadline) {
		if n.inflight.Load() == 0 {
			if quietSince.IsZero() {
				quietSince = time.Now()
			} else if time.Since(quietSince) >= idle {
				return true
			}
		} else {
			quietSince = time.Time{}
		}
		time.Sleep(time.Millisecond)
	}
	return false
}

// register adds a closer to shut down with the network (socket links).
func (n *Net) register(c io.Closer) {
	n.mu.Lock()
	n.closers = append(n.closers, c)
	n.mu.Unlock()
}

// Interface satisfaction.
var _ substrate.Env = (*Net)(nil)
