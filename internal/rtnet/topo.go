// Topology helpers: the line builder behind the substrate conformance
// harness (internal/substrate/subtest describes topologies as host
// specs; the rtnet adapter converts them here), reused by the audio
// rtnet smoke test and the fleet rollout e2e so every multi-node rtnet
// test wires routes the same way.
package rtnet

import (
	"fmt"

	"planp.dev/planp/internal/substrate"
)

// LineHost describes one host of a line topology. It mirrors
// subtest.HostSpec field-for-field (rtnet cannot import subtest — the
// conformance package links "testing" — so the adapter converts).
type LineHost struct {
	Name       string
	Addr       substrate.Addr
	Forwarding bool
}

// Line builds a line topology on nw: consecutive hosts joined by duplex
// links of the given bandwidth (loopback-UDP sockets when udp is set),
// with static routes installed so every host reaches every other
// through the line. The two ends also get default routes pointing
// inward. Returns the nodes in spec order.
func Line(nw *Net, hosts []LineHost, bandwidthBps int64, udp bool) ([]*Node, error) {
	ns := make([]*Node, len(hosts))
	for i, h := range hosts {
		ns[i] = NewNode(nw, h.Name, h.Addr)
		ns[i].Forwarding = h.Forwarding
	}
	left := make([]substrate.Iface, len(ns))
	right := make([]substrate.Iface, len(ns))
	for i := 0; i+1 < len(ns); i++ {
		if udp {
			ab, ba, err := NewUDPLink(nw, ns[i], ns[i+1], bandwidthBps)
			if err != nil {
				return nil, fmt.Errorf("rtnet: line link %s-%s: %w", hosts[i].Name, hosts[i+1].Name, err)
			}
			right[i], left[i+1] = ab, ba
		} else {
			ab, ba := NewLink(nw, ns[i], ns[i+1], bandwidthBps)
			right[i], left[i+1] = ab, ba
		}
	}
	for i, n := range ns {
		for j := range ns {
			switch {
			case j < i:
				n.AddRoute(ns[j].Address(), left[i])
			case j > i:
				n.AddRoute(ns[j].Address(), right[i])
			}
		}
		if i == 0 && len(ns) > 1 {
			n.SetDefaultRoute(right[i])
		} else if i == len(ns)-1 && len(ns) > 1 {
			n.SetDefaultRoute(left[i])
		}
	}
	return ns, nil
}
