// Nodes: real concurrent hosts and routers. A node owns interfaces, a
// static routing table, local application bindings, and an optional
// PLAN-P processing hook — the same surface as netsim.Node, minus the
// simulation-only machinery (segments, multicast trees, modeled CPU).
package rtnet

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"planp.dev/planp/internal/obs"
	"planp.dev/planp/internal/substrate"
)

// appKey identifies a local transport binding.
type appKey struct {
	proto uint8
	port  uint16
}

// nodeCounters holds the node's registry-backed instruments under the
// same "node.<name>.*" names netsim uses, resolved once at construction.
type nodeCounters struct {
	rxPkts, rxBytes *obs.Counter
	txPkts, txBytes *obs.Counter
	fwdPkts         *obs.Counter
	dlvPkts         *obs.Counter
	dropPkts        *obs.Counter
}

func newNodeCounters(reg *obs.Registry, name string) nodeCounters {
	pre := "node." + name + "."
	return nodeCounters{
		rxPkts:   reg.Counter(pre + "received_pkts"),
		rxBytes:  reg.Counter(pre + "received_bytes"),
		txPkts:   reg.Counter(pre + "sent_pkts"),
		txBytes:  reg.Counter(pre + "sent_bytes"),
		fwdPkts:  reg.Counter(pre + "forwarded_pkts"),
		dlvPkts:  reg.Counter(pre + "delivered_pkts"),
		dropPkts: reg.Counter(pre + "dropped_pkts"),
	}
}

// inbound is one packet awaiting processing on a node's inbox. q, when
// non-nil, is the sending interface's queue-depth counter, decremented
// when the packet leaves the inbox (drop-tail accounting).
type inbound struct {
	pkt *substrate.Packet
	in  substrate.Iface
	q   *atomic.Int32
}

// inboxCap bounds a node's inbox. Per-interface drop-tail caps are
// tighter (see queueCap), so the inbox itself overflows only under
// pathological fan-in.
const inboxCap = 4096

// Node is a host or router.
type Node struct {
	net  *Net
	name string
	addr substrate.Addr

	// Forwarding enables router behavior: packets addressed elsewhere
	// are forwarded (TTL decrement) instead of dropped. Set before
	// Start.
	Forwarding bool

	mu        sync.RWMutex // guards the tables below
	ifaces    []substrate.Iface
	routes    map[substrate.Addr]substrate.Iface
	defaultIf substrate.Iface
	apps      map[appKey]substrate.AppFunc
	rawApps   []substrate.AppFunc

	procMu sync.RWMutex
	proc   substrate.Processor

	// down marks a crashed node (see Crash/Restart): all traffic
	// through it is discarded until restart.
	down atomic.Bool

	inbox chan inbound
	ipID  atomic.Uint32
	ct    nodeCounters
}

// NewNode registers a node with the network. Names and addresses must
// be unique.
func NewNode(nw *Net, name string, addr substrate.Addr) *Node {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	if nw.byAddr[addr] != nil {
		panic(fmt.Sprintf("rtnet: duplicate node address %s", addr))
	}
	if nw.byName[name] != nil {
		panic(fmt.Sprintf("rtnet: duplicate node name %q", name))
	}
	n := &Node{
		net: nw, name: name, addr: addr,
		routes: map[substrate.Addr]substrate.Iface{},
		apps:   map[appKey]substrate.AppFunc{},
		inbox:  make(chan inbound, inboxCap),
		ct:     newNodeCounters(nw.reg, name),
	}
	nw.byAddr[addr] = n
	nw.byName[name] = n
	nw.nodes = append(nw.nodes, n)
	return n
}

// AddRoute installs a host route: traffic to dst leaves via ifc.
func (n *Node) AddRoute(dst substrate.Addr, ifc substrate.Iface) {
	n.mu.Lock()
	n.routes[dst] = ifc
	n.mu.Unlock()
}

// SetDefaultRoute installs the default route.
func (n *Node) SetDefaultRoute(ifc substrate.Iface) {
	n.mu.Lock()
	n.defaultIf = ifc
	n.mu.Unlock()
}

// addIface appends a link endpoint (called by the link constructors).
func (n *Node) addIface(ifc substrate.Iface) {
	n.mu.Lock()
	n.ifaces = append(n.ifaces, ifc)
	n.mu.Unlock()
}

// run is the node's processing goroutine: drain the inbox until the
// network shuts down. All per-node state (processor, interpreter
// instance, bindings) is only touched from here, which is what makes an
// installed ASP single-threaded exactly as on the simulator.
func (n *Node) run() {
	defer n.net.wg.Done()
	for {
		select {
		case <-n.net.quit:
			return
		case m := <-n.inbox:
			n.receive(m.pkt, m.in)
			if m.q != nil {
				m.q.Add(-1)
			}
			n.net.inflight.Add(-1)
		}
	}
}

// enqueue places pkt on the inbox without blocking; it reports false
// (drop-tail) when the inbox is full.
func (n *Node) enqueue(pkt *substrate.Packet, in substrate.Iface, q *atomic.Int32) bool {
	n.net.inflight.Add(1)
	select {
	case n.inbox <- inbound{pkt: pkt, in: in, q: q}:
		return true
	default:
		n.net.inflight.Add(-1)
		return false
	}
}

// Crash takes the node down (substrate.Crasher): until Restart, every
// packet it receives or originates is discarded (counted as drops with
// Detail "crashed") and the installed PLAN-P processor is removed — the
// state loss of a killed daemon. Routes and bindings survive; they are
// configuration, not downloaded state. Safe while traffic flows.
func (n *Node) Crash() {
	n.down.Store(true)
	n.SetProcessor(nil)
}

// Restart brings a crashed node back up, bare: no processor is
// installed until something (a fleet redeploy) downloads one.
func (n *Node) Restart() { n.down.Store(false) }

// Down reports whether the node is crashed.
func (n *Node) Down() bool { return n.down.Load() }

func (n *Node) receive(pkt *substrate.Packet, in substrate.Iface) {
	if n.down.Load() {
		n.drop(pkt, "crashed")
		return
	}
	n.ct.rxPkts.Inc()
	n.ct.rxBytes.Add(int64(pkt.Size()))
	n.procMu.RLock()
	proc := n.proc
	n.procMu.RUnlock()
	if proc != nil && proc.Process(pkt, in) {
		return
	}
	n.defaultProcess(pkt, in)
}

// defaultProcess is standard IP behavior: deliver locally, forward if a
// router, drop otherwise.
func (n *Node) defaultProcess(pkt *substrate.Packet, in substrate.Iface) {
	dst := pkt.IP.Dst
	switch {
	case dst == n.addr || dst == 0xFFFFFFFF:
		n.deliverLocal(pkt)
	case n.Forwarding:
		n.forward(pkt, in)
	default:
		n.drop(pkt, "no-route")
	}
}

func (n *Node) forward(pkt *substrate.Packet, in substrate.Iface) {
	if pkt.IP.TTL <= 1 {
		n.drop(pkt, "ttl")
		return
	}
	// An owned packet's only live reference is this goroutine, so the
	// hop copy is elided exactly as on the simulator.
	fwd := pkt
	if !pkt.Owned() {
		fwd = pkt.Clone()
	}
	fwd.IP.TTL--
	if n.transmit(fwd, in) {
		n.ct.fwdPkts.Inc()
		if n.net.bus.Active() {
			n.emit(obs.KindForward, fwd, "")
		}
	} else {
		n.drop(fwd, "no-route")
	}
}

// transmit routes pkt out any interface except in and reports whether
// it was sent (split horizon: never back out the incoming interface).
func (n *Node) transmit(pkt *substrate.Packet, in substrate.Iface) bool {
	ifc := n.Route(pkt.IP.Dst)
	if ifc == nil || ifc == in {
		return false
	}
	ifc.Send(pkt)
	return true
}

func (n *Node) deliverLocal(pkt *substrate.Packet) {
	// Applications may retain delivered packets; the pointer leaves the
	// delivery chain here.
	pkt.Disown()
	n.ct.dlvPkts.Inc()
	if n.net.bus.Active() {
		n.emit(obs.KindDeliver, pkt, "")
	}
	n.mu.RLock()
	var fn substrate.AppFunc
	switch {
	case pkt.TCP != nil:
		fn = n.apps[appKey{substrate.ProtoTCP, pkt.TCP.DstPort}]
	case pkt.UDP != nil:
		fn = n.apps[appKey{substrate.ProtoUDP, pkt.UDP.DstPort}]
	}
	raw := n.rawApps
	n.mu.RUnlock()
	if fn != nil {
		fn(pkt)
		return
	}
	if len(raw) > 0 {
		for _, r := range raw {
			r(pkt)
		}
		return
	}
	n.drop(pkt, "no-binding")
}

func (n *Node) drop(pkt *substrate.Packet, reason string) {
	n.ct.dropPkts.Inc()
	if n.net.bus.Active() {
		n.emit(obs.KindDrop, pkt, reason)
	}
}

func (n *Node) emit(kind obs.Kind, pkt *substrate.Packet, detail string) {
	n.net.bus.Publish(obs.Event{
		Kind: kind, At: n.net.Now(), Node: n.name,
		Src: uint32(pkt.IP.Src), Dst: uint32(pkt.IP.Dst),
		Size: pkt.Size(), Detail: detail,
	})
}

// BindRaw receives every packet delivered locally regardless of port
// (after specific bindings).
func (n *Node) BindRaw(fn substrate.AppFunc) {
	n.mu.Lock()
	n.rawApps = append(n.rawApps, fn)
	n.mu.Unlock()
}

// ---------------------------------------------------------------------------
// substrate.Node

// Hostname returns the node's unique name (substrate.Node).
func (n *Node) Hostname() string { return n.name }

// Address returns the node's address (substrate.Node).
func (n *Node) Address() substrate.Addr { return n.addr }

// Interfaces returns the node's attachment points (substrate.Node).
// The returned slice must not be mutated; it is stable once the
// topology is built.
func (n *Node) Interfaces() []substrate.Iface {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.ifaces
}

// Route resolves the outgoing interface for dst, or nil (substrate.Node).
func (n *Node) Route(dst substrate.Addr) substrate.Iface {
	n.mu.RLock()
	defer n.mu.RUnlock()
	if ifc, ok := n.routes[dst]; ok {
		return ifc
	}
	return n.defaultIf
}

// Send originates pkt from this node (substrate.Node): local
// destinations deliver directly, everything else routes out an
// interface. Safe to call from any goroutine — the packet crosses onto
// the destination node's goroutine at the link; only local delivery of
// a self-addressed packet runs on the caller's goroutine.
func (n *Node) Send(pkt *substrate.Packet) {
	// A crashed node originates nothing; application timers that fire
	// while it is down lose their packets.
	if n.down.Load() {
		n.drop(pkt, "crashed")
		return
	}
	if pkt.IP.ID == 0 {
		pkt.IP.ID = n.NextIPID()
	}
	n.ct.txPkts.Inc()
	n.ct.txBytes.Add(int64(pkt.Size()))
	if pkt.IP.Dst == n.addr {
		n.deliverLocal(pkt)
		return
	}
	if !n.transmit(pkt, nil) {
		n.drop(pkt, "no-route")
	}
}

// TransmitFrom routes pkt out of any interface except in, reporting
// whether it was sent (substrate.Node). This is the PLAN-P layer's
// OnRemote transmission path: no TTL handling, the program has already
// decided the packet's fate.
func (n *Node) TransmitFrom(pkt *substrate.Packet, in substrate.Iface) bool {
	return n.transmit(pkt, in)
}

// DeliverLocal passes pkt up to local applications (substrate.Node);
// the PLAN-P deliver primitive lands here.
func (n *Node) DeliverLocal(pkt *substrate.Packet) { n.deliverLocal(pkt) }

// BindUDP delivers local UDP traffic for port to fn (substrate.Node).
// fn runs on the node's goroutine.
func (n *Node) BindUDP(port uint16, fn substrate.AppFunc) {
	n.mu.Lock()
	n.apps[appKey{substrate.ProtoUDP, port}] = fn
	n.mu.Unlock()
}

// BindTCP delivers local TCP traffic for port to fn (substrate.Node).
func (n *Node) BindTCP(port uint16, fn substrate.AppFunc) {
	n.mu.Lock()
	n.apps[appKey{substrate.ProtoTCP, port}] = fn
	n.mu.Unlock()
}

// NextIPID returns a fresh IP identification value (substrate.Node).
func (n *Node) NextIPID() uint32 { return n.ipID.Add(1) }

// SetProcessor installs (or, with nil, removes) the PLAN-P layer
// (substrate.Node). Safe while traffic flows: the run loop snapshots
// the processor per packet.
func (n *Node) SetProcessor(p substrate.Processor) {
	n.procMu.Lock()
	n.proc = p
	n.procMu.Unlock()
}

// CurrentProcessor returns the installed PLAN-P layer, or nil
// (substrate.Node).
func (n *Node) CurrentProcessor() substrate.Processor {
	n.procMu.RLock()
	defer n.procMu.RUnlock()
	return n.proc
}

// Env returns the owning network (substrate.Node).
func (n *Node) Env() substrate.Env { return n.net }

// SetClockSkew shifts the node's clock (substrate.ClockSkewer). On
// rtnet a node's clock IS its network's clock — one daemon, one host,
// one drifting oscillator — so the skew applies network-wide.
func (n *Node) SetClockSkew(d time.Duration) { n.net.SetClockSkew(d) }

// ClockSkew returns the injected clock skew (substrate.ClockSkewer).
func (n *Node) ClockSkew() time.Duration { return n.net.ClockSkew() }

// Interface satisfaction.
var (
	_ substrate.Node        = (*Node)(nil)
	_ substrate.Crasher     = (*Node)(nil)
	_ substrate.ClockSkewer = (*Node)(nil)
)
