// Cross-host links: one direction of a duplex rtnet link whose peer
// lives in ANOTHER process — usually another machine. This is what
// turns a set of planpd daemons into the paper's extensible network
// for real: each daemon owns its local nodes and the outbound halves
// of its links; packets cross hosts as UDP datagrams carrying the
// substrate wire codec, fronted by a handshake.
//
// # Framing
//
// Every datagram starts with a one-byte frame type. Data frames carry
// one wire-encoded packet (substrate.AppendWire); control frames carry
// the handshake and liveness machinery:
//
//	HELLO/WELCOME  version(2) session(8) addr(4) bandwidth(8)
//	               node(len-str) link(len-str)
//	REJECT         code(1) version(2) msg(len-str)
//	PING/PONG      session(8)
//	BYE            (empty)
//
// A frame that does not parse is counted under rtnet.codec_rejected —
// never silently dropped.
//
// # Handshake
//
// Both endpoints send HELLO until they hear the peer. A HELLO (or
// WELCOME) is validated against the local endpoint's expectations:
// protocol version, peer node identity (name and address), link name,
// and link parameters. A mismatch answers with a structured REJECT
// frame — the rejected side surfaces it via LastReject and the
// "rejected:<reason>" link event, so a version-skewed daemon fails
// loudly instead of blackholing. A valid HELLO is answered with
// WELCOME and brings the link up.
//
// Each endpoint owns a random session nonce, minted at construction.
// A HELLO carrying a NEW session from an already-known peer is a peer
// restart: the link comes back up as "up:reconnect" and the stale
// session's liveness state is discarded.
//
// # Liveness
//
// While up, each endpoint PINGs every ProbeInterval and expects to
// hear SOMETHING (pong, data, ping) within ProbeTimeout; silence marks
// the link down ("down:probe-timeout") and falls back to HELLO
// probing, which is also how the link heals. A gracefully shutting
// down daemon sends BYE first, so its peers log "down:goodbye"
// immediately instead of waiting out a probe timeout.
package rtnet

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"planp.dev/planp/internal/obs"
	"planp.dev/planp/internal/substrate"
)

// RemoteProtoVersion is the cross-host link protocol version carried
// in every HELLO/WELCOME. Endpoints reject peers speaking any other
// version — the wire codec has no compatibility story across versions,
// so refusing loudly beats corrupting silently.
const RemoteProtoVersion = 1

// Frame types (first byte of every remote-link datagram).
const (
	frameData    byte = 0x01
	frameHello   byte = 0x02
	frameWelcome byte = 0x03
	frameReject  byte = 0x04
	framePing    byte = 0x05
	framePong    byte = 0x06
	frameBye     byte = 0x07
)

// Structured rejection codes (RejectError.Code).
const (
	// RejectVersion: the peer speaks a different RemoteProtoVersion.
	RejectVersion byte = 1
	// RejectIdentity: the peer's claimed node name/address is not the
	// one this endpoint is configured to link with — including the
	// duplicate-identity case (a peer claiming OUR name).
	RejectIdentity byte = 2
	// RejectLink: the peer addresses a different link name.
	RejectLink byte = 3
	// RejectParams: link parameters (bandwidth) disagree between the
	// two ends' configurations.
	RejectParams byte = 4
)

// RejectError is the structured handshake rejection one endpoint sent
// the other. The rejected side retains the most recent one (LastReject)
// and emits it as a "rejected:<reason>" link event.
type RejectError struct {
	Code        byte   `json:"code"`
	PeerVersion uint16 `json:"peer_version"`
	Msg         string `json:"msg"`
}

// Error renders the rejection.
func (e *RejectError) Error() string {
	return fmt.Sprintf("rtnet: handshake rejected by peer (code %d, peer version %d): %s",
		e.Code, e.PeerVersion, e.Msg)
}

// RemoteSpec configures one endpoint of a cross-host link. The two
// ends must agree on LinkName and BandwidthBps and each must name the
// other in PeerNode/PeerAddr; Listen/Peer mirror each other.
type RemoteSpec struct {
	// LinkName is the link's topology-wide name ("gateway-server0"),
	// identical on both ends; the handshake enforces it.
	LinkName string
	// Listen is the local UDP endpoint ("127.0.0.1:9701", ":9701").
	Listen string
	// Peer is the remote endpoint's UDP address ("198.51.100.7:9701").
	Peer string
	// PeerNode and PeerAddr identify the node expected at the far end;
	// a HELLO claiming anything else is rejected.
	PeerNode string
	PeerAddr substrate.Addr
	// BandwidthBps is the link's nominal capacity; both ends must
	// configure the same value (the handshake enforces it).
	BandwidthBps int64
	// ProbeInterval is the liveness cadence (default 500ms);
	// ProbeTimeout the silence that marks the link down (default 4×
	// interval).
	ProbeInterval time.Duration
	ProbeTimeout  time.Duration
}

func (s *RemoteSpec) defaults() {
	if s.ProbeInterval <= 0 {
		s.ProbeInterval = 500 * time.Millisecond
	}
	if s.ProbeTimeout <= 0 {
		s.ProbeTimeout = 4 * s.ProbeInterval
	}
}

// Link states (RemoteIface.State).
const (
	// LinkConnecting: no valid handshake yet — HELLOs are going out.
	LinkConnecting = "connecting"
	// LinkUp: handshake complete, liveness healthy, data flows.
	LinkUp = "up"
	// LinkDown: the peer said goodbye, went silent, or rejected us;
	// HELLO probing continues, so the state can recover to up.
	LinkDown = "down"
)

// RemoteIface is the local endpoint of a cross-host link: the outbound
// direction of the local node's attachment. It implements
// substrate.Iface (Send marshals onto the socket) and
// substrate.FaultPort (chaos degrades the outbound direction — per-
// direction faults are the natural grain of a link whose other half
// lives in another process).
type RemoteIface struct {
	node    *Node
	spec    RemoteSpec
	label   string // "<local>:<peer>" event/metric key
	conn    *net.UDPConn
	peerUDP *net.UDPAddr
	session uint64
	done    chan struct{}

	mu          sync.Mutex
	meter       *substrate.RateMeter
	buf         []byte
	fault       substrate.FaultFunc
	state       string
	peerSession uint64
	lastHeard   time.Time
	lastReject  *RejectError
	closed      bool

	upGauge      *obs.Gauge
	drops        *obs.Counter
	faultDrops   *obs.Counter
	codecRejects *obs.Counter
	rejectsSent  *obs.Counter
	rejectsRecv  *obs.Counter
	reconnects   *obs.Counter
	goodbyes     *obs.Counter
}

// NewRemoteLink attaches local to a cross-host link endpoint described
// by spec. The socket binds immediately and the handshake begins; the
// returned interface reports LinkConnecting until the peer answers.
// The endpoint is owned by the network and shut down (with a BYE) by
// its Close.
func NewRemoteLink(nw *Net, local *Node, spec RemoteSpec) (*RemoteIface, error) {
	spec.defaults()
	switch {
	case spec.LinkName == "" || len(spec.LinkName) > 255:
		return nil, fmt.Errorf("rtnet: remote link needs a LinkName of 1..255 bytes")
	case spec.PeerNode == "" || len(spec.PeerNode) > 255:
		return nil, fmt.Errorf("rtnet: remote link %s needs a PeerNode of 1..255 bytes", spec.LinkName)
	case len(local.name) > 255:
		return nil, fmt.Errorf("rtnet: node name %q too long for the link handshake", local.name)
	case spec.PeerAddr == 0:
		return nil, fmt.Errorf("rtnet: remote link %s needs the peer's node address", spec.LinkName)
	}
	laddr, err := net.ResolveUDPAddr("udp", spec.Listen)
	if err != nil {
		return nil, fmt.Errorf("rtnet: remote link %s listen %q: %w", spec.LinkName, spec.Listen, err)
	}
	paddr, err := net.ResolveUDPAddr("udp", spec.Peer)
	if err != nil {
		return nil, fmt.Errorf("rtnet: remote link %s peer %q: %w", spec.LinkName, spec.Peer, err)
	}
	conn, err := net.ListenUDP("udp", laddr)
	if err != nil {
		return nil, fmt.Errorf("rtnet: remote link %s: %w", spec.LinkName, err)
	}

	label := local.name + ":" + spec.PeerNode
	reg := nw.reg
	i := &RemoteIface{
		node: local, spec: spec, label: label,
		conn: conn, peerUDP: paddr,
		session: rand.Uint64(),
		done:    make(chan struct{}),
		meter:   substrate.NewRateMeter(0),
		state:   LinkConnecting,

		upGauge:      reg.Gauge("link." + label + ".up"),
		drops:        reg.Counter("link." + label + ".dropped_pkts"),
		faultDrops:   reg.Counter("link." + label + ".fault_dropped_pkts"),
		codecRejects: reg.Counter("rtnet.codec_rejected"),
		rejectsSent:  reg.Counter("rtnet.handshake_rejected"),
		rejectsRecv:  reg.Counter("rtnet.rejected_by_peer"),
		reconnects:   reg.Counter("rtnet.reconnects"),
		goodbyes:     reg.Counter("rtnet.goodbyes"),
	}
	local.addIface(i)
	nw.register(i)
	nw.wg.Add(2)
	go i.read(nw)
	go i.maintain(nw)
	return i, nil
}

// LocalAddr returns the bound UDP endpoint (useful when Listen used
// port 0).
func (i *RemoteIface) LocalAddr() *net.UDPAddr { return i.conn.LocalAddr().(*net.UDPAddr) }

// LinkName returns the link's topology-wide name.
func (i *RemoteIface) LinkName() string { return i.spec.LinkName }

// PeerNode returns the configured peer node name.
func (i *RemoteIface) PeerNode() string { return i.spec.PeerNode }

// Label returns the endpoint's "<local>:<peer>" metric/event key.
func (i *RemoteIface) Label() string { return i.label }

// State returns the link state: LinkConnecting, LinkUp, or LinkDown.
func (i *RemoteIface) State() string {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.state
}

// Up reports whether the handshake is complete and liveness healthy.
func (i *RemoteIface) Up() bool { return i.State() == LinkUp }

// LastReject returns the most recent structured rejection the peer
// sent us, or nil.
func (i *RemoteIface) LastReject() *RejectError {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.lastReject
}

// ---------------------------------------------------------------------------
// Frame codec

// appendPeerFrame appends a HELLO or WELCOME frame.
func appendPeerFrame(dst []byte, typ byte, session uint64, node string, addr substrate.Addr, link string, bw int64) []byte {
	dst = append(dst, typ)
	dst = binary.BigEndian.AppendUint16(dst, RemoteProtoVersion)
	dst = binary.BigEndian.AppendUint64(dst, session)
	dst = binary.BigEndian.AppendUint32(dst, uint32(addr))
	dst = binary.BigEndian.AppendUint64(dst, uint64(bw))
	dst = append(dst, byte(len(node)))
	dst = append(dst, node...)
	dst = append(dst, byte(len(link)))
	dst = append(dst, link...)
	return dst
}

func appendRejectFrame(dst []byte, code byte, msg string) []byte {
	if len(msg) > 255 {
		msg = msg[:255]
	}
	dst = append(dst, frameReject, code)
	dst = binary.BigEndian.AppendUint16(dst, RemoteProtoVersion)
	dst = append(dst, byte(len(msg)))
	dst = append(dst, msg...)
	return dst
}

// remoteHello is a decoded HELLO/WELCOME payload.
type remoteHello struct {
	version uint16
	session uint64
	addr    substrate.Addr
	bw      int64
	node    string
	link    string
}

// remoteFrame is one decoded datagram. Exactly one of hello/reject/
// data is meaningful, keyed by typ; data aliases the receive buffer
// and must be parsed (ParseWire copies) before the next read.
type remoteFrame struct {
	typ     byte
	hello   remoteHello // frameHello, frameWelcome
	reject  RejectError // frameReject
	session uint64      // framePing, framePong
	data    []byte      // frameData
}

// errFrame distinguishes framing rejections (counted under
// rtnet.codec_rejected) in one place.
func errFrame(format string, args ...any) error {
	return fmt.Errorf("rtnet: remote frame: "+format, args...)
}

// parseRemoteFrame decodes one remote-link datagram. It never panics
// on hostile input (fuzzed) and rejects trailing garbage.
func parseRemoteFrame(b []byte) (remoteFrame, error) {
	var f remoteFrame
	if len(b) == 0 {
		return f, errFrame("empty datagram")
	}
	if len(b) > maxDatagram {
		return f, errFrame("oversized datagram (%d bytes)", len(b))
	}
	f.typ = b[0]
	b = b[1:]
	switch f.typ {
	case frameData:
		if len(b) == 0 {
			return f, errFrame("data frame with no packet")
		}
		f.data = b
		return f, nil
	case frameHello, frameWelcome:
		if len(b) < 2+8+4+8+1 {
			return f, errFrame("truncated handshake frame (%d bytes)", len(b))
		}
		f.hello.version = binary.BigEndian.Uint16(b[0:2])
		f.hello.session = binary.BigEndian.Uint64(b[2:10])
		f.hello.addr = substrate.Addr(binary.BigEndian.Uint32(b[10:14]))
		f.hello.bw = int64(binary.BigEndian.Uint64(b[14:22]))
		b = b[22:]
		var ok bool
		if f.hello.node, b, ok = takeString(b); !ok {
			return f, errFrame("truncated node name")
		}
		if f.hello.link, b, ok = takeString(b); !ok {
			return f, errFrame("truncated link name")
		}
		if len(b) != 0 {
			return f, errFrame("%d trailing bytes after handshake frame", len(b))
		}
		if f.hello.bw < 0 {
			return f, errFrame("negative bandwidth")
		}
		return f, nil
	case frameReject:
		if len(b) < 1+2+1 {
			return f, errFrame("truncated reject frame (%d bytes)", len(b))
		}
		f.reject.Code = b[0]
		f.reject.PeerVersion = binary.BigEndian.Uint16(b[1:3])
		var ok bool
		if f.reject.Msg, b, ok = takeString(b[3:]); !ok {
			return f, errFrame("truncated reject message")
		}
		if len(b) != 0 {
			return f, errFrame("%d trailing bytes after reject frame", len(b))
		}
		return f, nil
	case framePing, framePong:
		if len(b) != 8 {
			return f, errFrame("ping/pong frame must carry an 8-byte session, got %d bytes", len(b))
		}
		f.session = binary.BigEndian.Uint64(b)
		return f, nil
	case frameBye:
		if len(b) != 0 {
			return f, errFrame("%d trailing bytes after bye frame", len(b))
		}
		return f, nil
	default:
		return f, errFrame("unknown frame type %#x", f.typ)
	}
}

// takeString pops a length-prefixed string.
func takeString(b []byte) (s string, rest []byte, ok bool) {
	if len(b) < 1 {
		return "", b, false
	}
	n := int(b[0])
	if len(b) < 1+n {
		return "", b, false
	}
	return string(b[1 : 1+n]), b[1+n:], true
}

// ---------------------------------------------------------------------------
// Control plane: handshake, liveness, shutdown

// writeFrame sends one control frame to the peer endpoint; write
// errors are unreported (the liveness machinery is what notices a dead
// peer).
func (i *RemoteIface) writeFrame(frame []byte) {
	i.conn.WriteToUDP(frame, i.peerUDP)
}

func (i *RemoteIface) sendHello(typ byte) {
	i.writeFrame(appendPeerFrame(nil, typ, i.session,
		i.node.name, i.node.addr, i.spec.LinkName, i.spec.BandwidthBps))
}

// maintain is the endpoint's liveness loop: HELLO while the link is
// forming (or broken), PING while it is up, probe-timeout detection.
func (i *RemoteIface) maintain(nw *Net) {
	defer nw.wg.Done()
	tick := time.NewTicker(i.spec.ProbeInterval)
	defer tick.Stop()
	i.sendHello(frameHello)
	for {
		select {
		case <-i.done:
			return
		case <-nw.quit:
			return
		case <-tick.C:
		}
		i.mu.Lock()
		state, lastHeard := i.state, i.lastHeard
		if state == LinkUp && time.Since(lastHeard) > i.spec.ProbeTimeout {
			i.setStateLocked(LinkDown, "down:probe-timeout")
			state = LinkDown
		}
		i.mu.Unlock()
		if state == LinkUp {
			var buf [9]byte
			buf[0] = framePing
			binary.BigEndian.PutUint64(buf[1:], i.session)
			i.writeFrame(buf[:])
		} else {
			i.sendHello(frameHello)
		}
	}
}

// read drains the socket: control frames drive the link state machine,
// data frames parse and enqueue on the owning node.
func (i *RemoteIface) read(nw *Net) {
	defer nw.wg.Done()
	buf := make([]byte, maxDatagram+1)
	for {
		n, from, err := i.conn.ReadFromUDP(buf)
		if err != nil {
			return // socket closed
		}
		f, err := parseRemoteFrame(buf[:n])
		if err != nil {
			i.codecRejects.Inc()
			i.dropEvent(nil, "codec-reject")
			continue
		}
		if !udpAddrEqual(from, i.peerUDP) {
			// A frame from an endpoint this link is not configured to
			// talk to. HELLOs get a structured refusal (the sender is
			// probably a misconfigured daemon that deserves to know);
			// everything else is counted and ignored.
			if f.typ == frameHello {
				i.rejectsSent.Inc()
				i.conn.WriteToUDP(appendRejectFrame(nil, RejectIdentity,
					fmt.Sprintf("link %s: unexpected peer endpoint %s", i.spec.LinkName, from)), from)
			} else {
				i.nodeReg().Counter("rtnet.unknown_peer").Inc()
			}
			continue
		}
		switch f.typ {
		case frameHello:
			i.onHello(f.hello, true)
		case frameWelcome:
			i.onHello(f.hello, false)
		case frameReject:
			rej := f.reject
			i.rejectsRecv.Inc()
			i.mu.Lock()
			i.lastReject = &rej
			i.setStateLocked(LinkDown, "rejected:"+rej.Msg)
			i.mu.Unlock()
		case framePing:
			i.touch()
			var out [9]byte
			out[0] = framePong
			binary.BigEndian.PutUint64(out[1:], i.session)
			i.writeFrame(out[:])
		case framePong:
			i.touch()
		case frameBye:
			i.goodbyes.Inc()
			i.mu.Lock()
			if i.state != LinkDown {
				i.setStateLocked(LinkDown, "down:goodbye")
			}
			i.mu.Unlock()
		case frameData:
			i.onData(f.data)
		}
	}
}

func (i *RemoteIface) nodeReg() *obs.Registry { return i.node.net.reg }

// touch records proof of life from the peer.
func (i *RemoteIface) touch() {
	i.mu.Lock()
	i.lastHeard = time.Now()
	i.mu.Unlock()
}

// validateHello checks a HELLO/WELCOME against this endpoint's
// configuration, returning a structured rejection or nil.
func (i *RemoteIface) validateHello(h remoteHello) *RejectError {
	switch {
	case h.version != RemoteProtoVersion:
		return &RejectError{Code: RejectVersion, PeerVersion: h.version,
			Msg: fmt.Sprintf("protocol version %d, this endpoint speaks %d", h.version, RemoteProtoVersion)}
	case h.node == i.node.name:
		return &RejectError{Code: RejectIdentity, PeerVersion: h.version,
			Msg: fmt.Sprintf("duplicate node identity %q (the peer claims this endpoint's own name)", h.node)}
	case h.node != i.spec.PeerNode || h.addr != i.spec.PeerAddr:
		return &RejectError{Code: RejectIdentity, PeerVersion: h.version,
			Msg: fmt.Sprintf("peer identity %s/%s, this endpoint links with %s/%s",
				h.node, h.addr, i.spec.PeerNode, i.spec.PeerAddr)}
	case h.link != i.spec.LinkName:
		return &RejectError{Code: RejectLink, PeerVersion: h.version,
			Msg: fmt.Sprintf("link name %q, this endpoint is %q", h.link, i.spec.LinkName)}
	case h.bw != i.spec.BandwidthBps:
		return &RejectError{Code: RejectParams, PeerVersion: h.version,
			Msg: fmt.Sprintf("bandwidth %d bps, this endpoint is configured for %d", h.bw, i.spec.BandwidthBps)}
	}
	return nil
}

// onHello handles a HELLO (answer expected) or WELCOME (no answer)
// from the configured peer endpoint.
func (i *RemoteIface) onHello(h remoteHello, answer bool) {
	if rej := i.validateHello(h); rej != nil {
		i.rejectsSent.Inc()
		i.emit(obs.KindLink, "rejected-peer:"+rej.Msg)
		i.writeFrame(appendRejectFrame(nil, rej.Code, rej.Msg))
		return
	}
	i.mu.Lock()
	prev := i.peerSession
	i.peerSession = h.session
	i.lastHeard = time.Now()
	i.lastReject = nil
	reconnect := prev != 0 && prev != h.session
	if i.state != LinkUp {
		detail := "up"
		if reconnect {
			detail = "up:reconnect"
		}
		i.setStateLocked(LinkUp, detail)
	} else if reconnect {
		// The peer restarted between our probes: a new daemon
		// incarnation took the session over without us ever seeing the
		// link down.
		i.setStateLocked(LinkUp, "up:reconnect")
	}
	i.mu.Unlock()
	if reconnect {
		i.reconnects.Inc()
	}
	if answer {
		i.sendHello(frameWelcome)
	}
}

// setStateLocked transitions the link state, keeping the gauge and the
// event stream in step. Callers hold i.mu; the event publish is
// deferred out of the lock by obs contract (bus subscribers must be
// concurrency-safe on rtnet anyway, and Publish itself does not block
// on i.mu).
func (i *RemoteIface) setStateLocked(state, detail string) {
	i.state = state
	if state == LinkUp {
		i.upGauge.Set(1)
	} else {
		i.upGauge.Set(0)
	}
	i.emit(obs.KindLink, detail)
}

func (i *RemoteIface) emit(kind obs.Kind, detail string) {
	if bus := i.node.net.bus; bus.Active() {
		bus.Publish(obs.Event{
			Kind: kind, At: i.node.net.Now(), Node: i.label, Detail: detail,
		})
	}
}

// onData parses and enqueues one wire packet from the peer. Data from
// a peer we have no live handshake with is dropped (counted): after a
// local restart the peer must re-HELLO before its packets are trusted.
func (i *RemoteIface) onData(wire []byte) {
	i.mu.Lock()
	up := i.state == LinkUp
	if up {
		i.lastHeard = time.Now()
	}
	i.mu.Unlock()
	if !up {
		i.drop(nil, "no-handshake")
		return
	}
	pkt, err := substrate.ParseWire(wire)
	if err != nil {
		i.codecRejects.Inc()
		i.drop(nil, "codec-reject")
		return
	}
	// The parse built a fresh private packet; the node may mutate it.
	pkt.Own()
	if !i.node.enqueue(pkt, i, nil) {
		i.drop(pkt, "queue")
	}
}

// Close sends the goodbye frame and shuts the endpoint down (io.Closer,
// called by the owning network's Close). Idempotent.
func (i *RemoteIface) Close() error {
	i.mu.Lock()
	if i.closed {
		i.mu.Unlock()
		return nil
	}
	i.closed = true
	if i.state == LinkUp {
		i.setStateLocked(LinkDown, "down:closed")
	}
	i.mu.Unlock()
	close(i.done)
	i.writeFrame([]byte{frameBye})
	return i.conn.Close()
}

// ---------------------------------------------------------------------------
// Data plane: substrate.Iface / substrate.FaultPort

// SetFault installs (or, with nil, removes) the endpoint's fault layer
// (substrate.FaultPort). A remote link endpoint is inherently one
// direction, so chaos wired here degrades only local-outbound traffic —
// the asymmetric-fault grain.
func (i *RemoteIface) SetFault(f substrate.FaultFunc) {
	i.mu.Lock()
	i.fault = f
	i.mu.Unlock()
}

// Send transmits pkt toward the remote peer (substrate.Iface). The
// packet is fully serialized before Send returns; the caller keeps
// ownership. Packets offered while the link is not up are dropped and
// counted ("link-down") — the handshake is the admission control.
func (i *RemoteIface) Send(pkt *substrate.Packet) {
	i.mu.Lock()
	f := i.fault
	i.mu.Unlock()
	if f == nil {
		i.sendNow(pkt)
		return
	}
	act := f(pkt)
	if act.Drop {
		i.faultDrops.Inc()
		i.dropEvent(pkt, "fault")
		return
	}
	if act.Corrupt {
		pkt = substrate.CorruptPayload(pkt, act.CorruptBit)
	}
	if act.Delay > 0 {
		// Serialize now — the caller may reuse pkt the moment Send
		// returns; only the socket writes wait out the delay.
		wire, err := substrate.AppendWire([]byte{frameData}, pkt)
		if err != nil || len(wire) > maxDatagram {
			i.drop(pkt, "oversize")
			return
		}
		sz, copies := int64(len(wire)), 1+act.Dup
		i.node.net.After(act.Delay, func() {
			for k := 0; k < copies; k++ {
				i.writeWire(wire, sz)
			}
		})
		return
	}
	i.sendNow(pkt)
	for k := 0; k < act.Dup; k++ {
		i.sendNow(pkt)
	}
}

// sendNow is the faultless transmission path: frame + wire-encode
// under the lock (reusing the scratch buffer) and write the datagram.
func (i *RemoteIface) sendNow(pkt *substrate.Packet) {
	sz := int64(pkt.Size())
	now := i.node.net.Now()
	i.mu.Lock()
	if i.state != LinkUp {
		i.mu.Unlock()
		i.drop(pkt, "link-down")
		return
	}
	i.meter.Add(now, sz)
	wire, err := substrate.AppendWire(append(i.buf[:0], frameData), pkt)
	if err == nil {
		i.buf = wire[:0]
	}
	if err != nil || len(wire) > maxDatagram {
		i.mu.Unlock()
		i.drop(pkt, "oversize")
		return
	}
	_, werr := i.conn.WriteToUDP(wire, i.peerUDP)
	i.mu.Unlock()
	if werr != nil {
		i.drop(pkt, "socket")
	}
}

// writeWire sends one pre-serialized data frame (the delayed-fault
// path).
func (i *RemoteIface) writeWire(wire []byte, sz int64) {
	now := i.node.net.Now()
	i.mu.Lock()
	up := i.state == LinkUp
	if up {
		i.meter.Add(now, sz)
		i.conn.WriteToUDP(wire, i.peerUDP)
	}
	i.mu.Unlock()
	if !up {
		i.drops.Inc()
	}
}

func (i *RemoteIface) drop(pkt *substrate.Packet, reason string) {
	i.drops.Inc()
	i.dropEvent(pkt, reason)
}

func (i *RemoteIface) dropEvent(pkt *substrate.Packet, reason string) {
	if bus := i.node.net.bus; bus.Active() {
		ev := obs.Event{
			Kind: obs.KindDrop, At: i.node.net.Now(),
			Node: i.label, Detail: reason,
		}
		if pkt != nil {
			ev.Src, ev.Dst, ev.Size = uint32(pkt.IP.Src), uint32(pkt.IP.Dst), pkt.Size()
		}
		bus.Publish(ev)
	}
}

// Load returns the measured outbound utilization as a percentage of
// the link's nominal bandwidth (substrate.Iface).
func (i *RemoteIface) Load() int64 {
	now := i.node.net.Now()
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.meter.Utilization(now, i.spec.BandwidthBps)
}

// Bandwidth returns the link's nominal capacity in bits per second
// (substrate.Iface).
func (i *RemoteIface) Bandwidth() int64 { return i.spec.BandwidthBps }

func udpAddrEqual(a, b *net.UDPAddr) bool {
	return a.Port == b.Port && a.IP.Equal(b.IP)
}

// Interface satisfaction.
var (
	_ substrate.Iface     = (*RemoteIface)(nil)
	_ substrate.FaultPort = (*RemoteIface)(nil)
)
