// Package trace collects experiment measurements: time series (figure 6
// bandwidth curves), counters, playback-gap detection (figure 7), and
// fixed-width table rendering for the benchmark harness's paper-style
// output.
package trace

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Point is one sample of a time series.
type Point struct {
	At    time.Duration
	Value float64
}

// Series is a named time series.
type Series struct {
	Name   string
	Points []Point
}

// Add appends a sample.
func (s *Series) Add(at time.Duration, v float64) {
	s.Points = append(s.Points, Point{At: at, Value: v})
}

// At returns the last sample value at or before t (0 if none).
func (s *Series) At(t time.Duration) float64 {
	idx := sort.Search(len(s.Points), func(i int) bool { return s.Points[i].At > t })
	if idx == 0 {
		return 0
	}
	return s.Points[idx-1].Value
}

// Mean returns the mean value of samples in [from, to).
func (s *Series) Mean(from, to time.Duration) float64 {
	var sum float64
	var n int
	for _, p := range s.Points {
		if p.At >= from && p.At < to {
			sum += p.Value
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Max returns the maximum sample value in [from, to).
func (s *Series) Max(from, to time.Duration) float64 {
	var m float64
	for _, p := range s.Points {
		if p.At >= from && p.At < to && p.Value > m {
			m = p.Value
		}
	}
	return m
}

// Render prints the series as "t value" rows with the given sample
// stride, the same shape as the paper's figures.
func (s *Series) Render(stride time.Duration) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "# %s\n", s.Name)
	if len(s.Points) == 0 {
		return sb.String()
	}
	end := s.Points[len(s.Points)-1].At
	for t := time.Duration(0); t <= end; t += stride {
		fmt.Fprintf(&sb, "%8.1f  %10.1f\n", t.Seconds(), s.At(t))
	}
	return sb.String()
}

// GapDetector counts playback gaps ("silent periods", figure 7): spans
// where the inter-arrival time of audio packets exceeds the playout
// budget, or packets are lost.
type GapDetector struct {
	// Budget is the playout slack: a gap is declared when the time
	// since the previous packet exceeds Budget.
	Budget time.Duration

	last     time.Duration
	started  bool
	gaps     int
	gapTime  time.Duration
	received int
}

// NewGapDetector returns a detector with the given playout budget.
func NewGapDetector(budget time.Duration) *GapDetector {
	return &GapDetector{Budget: budget}
}

// Packet records an audio packet arrival at virtual time now.
func (g *GapDetector) Packet(now time.Duration) {
	g.received++
	if g.started && now-g.last > g.Budget {
		g.gaps++
		g.gapTime += now - g.last - g.Budget
	}
	g.last = now
	g.started = true
}

// Finish closes the stream at virtual time end, accounting a trailing
// gap if the stream went silent early.
func (g *GapDetector) Finish(end time.Duration) {
	if g.started && end-g.last > g.Budget {
		g.gaps++
		g.gapTime += end - g.last - g.Budget
	}
}

// Gaps returns the number of silent periods detected.
func (g *GapDetector) Gaps() int { return g.gaps }

// GapTime returns the total silent time.
func (g *GapDetector) GapTime() time.Duration { return g.gapTime }

// Received returns the number of packets seen.
func (g *GapDetector) Received() int { return g.received }

// Table renders fixed-width result tables in the style of the paper.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends a row of cells (stringified with %v).
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch c := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", c)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var sb strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&sb, "== %s ==\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], cell)
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Headers)
	for i, w := range widths {
		if i > 0 {
			sb.WriteString("  ")
		}
		sb.WriteString(strings.Repeat("-", w))
	}
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	return sb.String()
}
