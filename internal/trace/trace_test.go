package trace

import (
	"strings"
	"testing"
	"time"
)

func TestSeriesAtAndMean(t *testing.T) {
	s := &Series{Name: "x"}
	s.Add(1*time.Second, 10)
	s.Add(2*time.Second, 20)
	s.Add(4*time.Second, 40)
	if got := s.At(0); got != 0 {
		t.Errorf("At(0) = %v", got)
	}
	if got := s.At(1 * time.Second); got != 10 {
		t.Errorf("At(1s) = %v", got)
	}
	if got := s.At(3 * time.Second); got != 20 {
		t.Errorf("At(3s) = %v (step function holds last value)", got)
	}
	if got := s.At(10 * time.Second); got != 40 {
		t.Errorf("At(10s) = %v", got)
	}
	if got := s.Mean(1*time.Second, 3*time.Second); got != 15 {
		t.Errorf("Mean = %v, want 15", got)
	}
	if got := s.Mean(10*time.Second, 20*time.Second); got != 0 {
		t.Errorf("Mean of empty window = %v", got)
	}
	if got := s.Max(0, 5*time.Second); got != 40 {
		t.Errorf("Max = %v", got)
	}
}

func TestSeriesRender(t *testing.T) {
	s := &Series{Name: "bw"}
	s.Add(1*time.Second, 100)
	s.Add(2*time.Second, 200)
	out := s.Render(time.Second)
	if !strings.Contains(out, "# bw") {
		t.Error("missing header")
	}
	if lines := strings.Count(out, "\n"); lines != 4 { // header + t=0,1,2
		t.Errorf("render lines = %d:\n%s", lines, out)
	}
	empty := &Series{Name: "e"}
	if out := empty.Render(time.Second); !strings.Contains(out, "# e") {
		t.Error("empty render")
	}
}

func TestGapDetector(t *testing.T) {
	g := NewGapDetector(100 * time.Millisecond)
	// Regular arrivals at 50ms: no gaps.
	for i := 1; i <= 5; i++ {
		g.Packet(time.Duration(i) * 50 * time.Millisecond)
	}
	if g.Gaps() != 0 {
		t.Errorf("gaps = %d", g.Gaps())
	}
	// A 300ms silence: one gap of 200ms over budget.
	g.Packet(550 * time.Millisecond)
	if g.Gaps() != 1 {
		t.Errorf("gaps = %d, want 1", g.Gaps())
	}
	if g.GapTime() != 200*time.Millisecond {
		t.Errorf("gap time = %v", g.GapTime())
	}
	// Trailing silence counted by Finish.
	g.Finish(time.Second)
	if g.Gaps() != 2 {
		t.Errorf("gaps after finish = %d, want 2", g.Gaps())
	}
	if g.Received() != 6 {
		t.Errorf("received = %d", g.Received())
	}
	// Finish on an empty stream is a no-op.
	g2 := NewGapDetector(time.Millisecond)
	g2.Finish(time.Hour)
	if g2.Gaps() != 0 {
		t.Error("empty stream should have no gaps")
	}
}

func TestTableRendering(t *testing.T) {
	tbl := &Table{
		Title:   "demo",
		Headers: []string{"name", "value"},
	}
	tbl.AddRow("alpha", 1)
	tbl.AddRow("b", 2.5)
	out := tbl.String()
	if !strings.Contains(out, "== demo ==") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "2.50") {
		t.Errorf("missing cells:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Title, header, separator, two rows.
	if len(lines) != 5 {
		t.Errorf("line count %d:\n%s", len(lines), out)
	}
	// Columns align: header and rows share the separator width.
	if len(lines[1]) > len(lines[2])+2 {
		t.Errorf("alignment off:\n%s", out)
	}
}
