package engine_test

import (
	"testing"

	"planp.dev/planp/internal/lang/ast"
	"planp.dev/planp/internal/lang/engine"
	"planp.dev/planp/internal/lang/langtest"
	"planp.dev/planp/internal/lang/value"
)

// gateway is a condensed version of the paper's figure-2 load-balancing
// fragment: HTTP requests are redirected to one of two physical servers,
// all other traffic is passed through.
const gateway = `
val serverA : host = 10.0.0.2
val serverB : host = 10.0.0.3

fun pick(n : int) : host =
  if n mod 2 = 0 then serverA else serverB

channel network(ps : int, ss : (host) hash_table, p : ip*tcp*blob)
initstate mkTable(256) is
  let
    val iph : ip = #1 p
    val tcph : tcp = #2 p
  in
    if tcpDst(tcph) = 80 then
      let
        val key : host*int = (ipSrc(iph), tcpSrc(tcph))
        val srv : host =
          if tmem(ss, key) then tget(ss, key)
          else pick(ps)
      in
        (tput(ss, key, srv);
         OnRemote(network, (ipDestSet(iph, srv), tcph, #3 p));
         (ps+1, ss))
      end
    else
      (OnRemote(network, p); (ps, ss))
  end
`

func TestGatewayAcrossEngines(t *testing.T) {
	compiled := langtest.CompileAll(t, gateway)
	for name, c := range compiled {
		t.Run(name, func(t *testing.T) {
			ctx := langtest.NewCtx()
			inst, err := c.NewInstance(ctx)
			if err != nil {
				t.Fatalf("NewInstance: %v", err)
			}
			ci := langtest.FindChannel(t, c.Info(), "network")

			// First HTTP request from client 1: even counter -> serverA.
			pkt := langtest.TCPPacket("10.0.1.1", "10.0.0.100", 4001, 80, []byte("GET /"))
			if err := inst.Invoke(ci, ctx, pkt); err != nil {
				t.Fatalf("invoke: %v", err)
			}
			if got := inst.Proto.AsInt(); got != 1 {
				t.Errorf("protocol state after 1 request = %d, want 1", got)
			}
			if len(ctx.Sent) != 1 {
				t.Fatalf("sent %d packets, want 1", len(ctx.Sent))
			}
			dst := ctx.Sent[0].Pkt.Vs[0].AsIP().Dst
			if want := langtest.MustHost("10.0.0.2"); dst != want {
				t.Errorf("first request routed to %s, want %s", dst, want)
			}

			// Second request from a different client: odd counter -> serverB.
			pkt2 := langtest.TCPPacket("10.0.1.2", "10.0.0.100", 4002, 80, []byte("GET /"))
			if err := inst.Invoke(ci, ctx, pkt2); err != nil {
				t.Fatalf("invoke: %v", err)
			}
			dst2 := ctx.Sent[1].Pkt.Vs[0].AsIP().Dst
			if want := langtest.MustHost("10.0.0.3"); dst2 != want {
				t.Errorf("second request routed to %s, want %s", dst2, want)
			}

			// Follow-up packet on connection 1 sticks to serverA via the table.
			pkt3 := langtest.TCPPacket("10.0.1.1", "10.0.0.100", 4001, 80, []byte("more"))
			if err := inst.Invoke(ci, ctx, pkt3); err != nil {
				t.Fatalf("invoke: %v", err)
			}
			dst3 := ctx.Sent[2].Pkt.Vs[0].AsIP().Dst
			if want := langtest.MustHost("10.0.0.2"); dst3 != want {
				t.Errorf("follow-up packet routed to %s, want %s (sticky connection)", dst3, want)
			}

			// Non-HTTP traffic passes through unmodified.
			pkt4 := langtest.TCPPacket("10.0.1.1", "10.0.0.100", 4001, 22, []byte("ssh"))
			if err := inst.Invoke(ci, ctx, pkt4); err != nil {
				t.Fatalf("invoke: %v", err)
			}
			dst4 := ctx.Sent[3].Pkt.Vs[0].AsIP().Dst
			if want := langtest.MustHost("10.0.0.100"); dst4 != want {
				t.Errorf("ssh packet routed to %s, want %s (pass-through)", dst4, want)
			}
			if got := inst.Proto.AsInt(); got != 3 {
				t.Errorf("protocol state counts HTTP requests: got %d, want 3", got)
			}
		})
	}
}

// TestEnginesAgree replays a packet sequence through every engine and
// requires identical protocol state, sends, and output.
func TestEnginesAgree(t *testing.T) {
	const src = `
val greeting : string = "hi " ^ "there"

channel network(ps : string, ss : int, p : ip*udp*blob)
is
  let
    val n : int = blobLen(#3 p)
    val tag : string = if n > 4 then "big" else "small"
  in
    (println(greeting ^ ":" ^ tag ^ ":" ^ itos(n + ss));
     OnRemote(network, p);
     (tag, ss + n))
  end
`
	type result struct {
		proto string
		out   string
		sent  int
	}
	results := map[string]result{}
	for name, c := range langtest.CompileAll(t, src) {
		ctx := langtest.NewCtx()
		inst, err := c.NewInstance(ctx)
		if err != nil {
			t.Fatalf("%s: NewInstance: %v", name, err)
		}
		ci := langtest.FindChannel(t, c.Info(), "network")
		for _, payload := range []string{"abc", "abcdefgh", "x"} {
			pkt := langtest.UDPPacket("10.0.1.1", "10.0.1.2", 100, 200, []byte(payload))
			if err := inst.Invoke(ci, ctx, pkt); err != nil {
				t.Fatalf("%s: invoke: %v", name, err)
			}
		}
		results[name] = result{proto: inst.Proto.AsStr(), out: ctx.Out.String(), sent: len(ctx.Sent)}
	}
	ref := results["interp"]
	for name, r := range results {
		if r != ref {
			t.Errorf("%s diverges from interp:\n  %+v\nvs\n  %+v", name, r, ref)
		}
	}
	if ref.proto != "small" || ref.sent != 3 {
		t.Errorf("unexpected reference result: %+v", ref)
	}
}

// TestExceptionSemantics checks try/handle, raise, and the invoke
// boundary across engines.
func TestExceptionSemantics(t *testing.T) {
	const src = `
channel network(ps : int, ss : int, p : ip*udp*blob)
is
  let
    val safe : int = try blobByte(#3 p, 100) handle 0 - 1 end
  in
    if safe = 0 - 1 then
      (ps + 1, ss)
    else
      raise "unexpected in-range byte"
  end
`
	for name, c := range langtest.CompileAll(t, src) {
		t.Run(name, func(t *testing.T) {
			ctx := langtest.NewCtx()
			inst, err := c.NewInstance(ctx)
			if err != nil {
				t.Fatalf("NewInstance: %v", err)
			}
			ci := langtest.FindChannel(t, c.Info(), "network")

			// Short payload: blobByte raises, handler yields -1.
			pkt := langtest.UDPPacket("10.0.1.1", "10.0.1.2", 1, 2, []byte("ab"))
			if err := inst.Invoke(ci, ctx, pkt); err != nil {
				t.Fatalf("invoke: %v", err)
			}
			if got := inst.Proto.AsInt(); got != 1 {
				t.Errorf("proto state = %d, want 1", got)
			}

			// Long payload: byte 100 exists, the raise escapes and the
			// state must not change.
			big := make([]byte, 200)
			pkt2 := langtest.UDPPacket("10.0.1.1", "10.0.1.2", 1, 2, big)
			err = inst.Invoke(ci, ctx, pkt2)
			if err == nil {
				t.Fatal("expected unhandled exception error")
			}
			if _, ok := err.(value.Exception); !ok {
				t.Errorf("error type %T, want value.Exception", err)
			}
			if got := inst.Proto.AsInt(); got != 1 {
				t.Errorf("proto state after failed invoke = %d, want unchanged 1", got)
			}
		})
	}
}

func TestZeroValue(t *testing.T) {
	cases := []struct {
		typ  ast.Type
		want string
	}{
		{ast.IntT, "0"},
		{ast.BoolT, "false"},
		{ast.StringT, ""},
		{ast.UnitT, "()"},
		{ast.HostT, "0.0.0.0"},
		{ast.Tuple{Elems: []ast.Type{ast.IntT, ast.BoolT}}, "(0,false)"},
		{ast.List{Elem: ast.IntT}, "[]"},
	}
	for _, tc := range cases {
		v, err := engine.ZeroValue(tc.typ)
		if err != nil {
			t.Errorf("ZeroValue(%s): %v", tc.typ, err)
			continue
		}
		if v.String() != tc.want {
			t.Errorf("ZeroValue(%s) = %s, want %s", tc.typ, v, tc.want)
		}
	}
	if _, err := engine.ZeroValue(ast.Table{Elem: ast.IntT}); err == nil {
		t.Error("ZeroValue(hash_table) should fail")
	}
}

// TestOverloadedChannels exercises the figure-4 style dispatch: two
// network channels with different payload signatures.
func TestOverloadedChannels(t *testing.T) {
	const src = `
val CmdA : int = 65

channel network(ps : unit, ss : unit, p : ip*tcp*char*int)
is
  if charPos(#3 p) = CmdA then
    (print("CmdA: "); println(#4 p); (ps, ss))
  else
    (ps, ss)

channel network(ps : unit, ss : unit, p : ip*tcp*char*bool)
is
  (print("CmdB: "); println(#4 p); (ps, ss))
`
	for name, c := range langtest.CompileAll(t, src) {
		t.Run(name, func(t *testing.T) {
			ctx := langtest.NewCtx()
			inst, err := c.NewInstance(ctx)
			if err != nil {
				t.Fatalf("NewInstance: %v", err)
			}
			chans := c.Info().ChannelsByName("network")
			if len(chans) != 2 {
				t.Fatalf("expected 2 overloaded channels, got %d", len(chans))
			}
			ip := &value.IPHeader{Src: langtest.MustHost("10.0.0.1"), Dst: langtest.MustHost("10.0.0.2"), Proto: 6, TTL: 64}
			tcp := &value.TCPHeader{SrcPort: 1, DstPort: 2}
			pktInt := value.TupleV(value.IP(ip), value.TCP(tcp), value.Char('A'), value.Int(42))
			if err := inst.Invoke(chans[0].Index, ctx, pktInt); err != nil {
				t.Fatalf("invoke int variant: %v", err)
			}
			pktBool := value.TupleV(value.IP(ip), value.TCP(tcp), value.Char('B'), value.Bool(true))
			if err := inst.Invoke(chans[1].Index, ctx, pktBool); err != nil {
				t.Fatalf("invoke bool variant: %v", err)
			}
			want := "CmdA: 42\nCmdB: true\n"
			if got := ctx.Out.String(); got != want {
				t.Errorf("output %q, want %q", got, want)
			}
		})
	}
}
