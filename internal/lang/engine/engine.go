// Package engine defines the common execution interface implemented by
// the three PLAN-P execution engines — the portable tree-walking
// interpreter (internal/lang/interp), the register bytecode VM
// (internal/lang/bytecode), and the closure-specializing JIT
// (internal/lang/jit) — and the shared state model for downloaded
// protocols.
//
// The paper's run-time system pairs a portable interpreter with a JIT
// generated from it by partial evaluation (§2.2); keeping all engines
// behind one interface is what lets the benchmarks swap them under an
// unchanged runtime, and lets new primitives be debugged in the
// interpreter before "regenerating the specializer" (here: keeping the
// JIT's closure compiler in sync).
package engine

import (
	"fmt"

	"planp.dev/planp/internal/lang/ast"
	"planp.dev/planp/internal/lang/prims"
	"planp.dev/planp/internal/lang/typecheck"
	"planp.dev/planp/internal/lang/value"
)

// InvokeFunc executes channel index ci on the given protocol state,
// channel state, and decoded packet, returning the new states. A PLAN-P
// exception that escapes the channel body is returned as an error of
// type value.Exception.
type InvokeFunc func(ci int, ctx prims.Context, ps, ss, pkt value.Value) (value.Value, value.Value, error)

// Compiled is a protocol prepared for execution by some engine.
type Compiled interface {
	// EngineName identifies the engine ("interp", "bytecode", "jit").
	EngineName() string
	// Info returns the checked program this was compiled from.
	Info() *typecheck.Info
	// NewInstance evaluates the top-level vals and every channel's
	// initstate, returning the mutable per-download state. Each
	// download of a protocol onto a node gets its own instance.
	NewInstance(ctx prims.Context) (*Instance, error)
	// Shareable reports whether instances of this artifact may run on
	// DIFFERENT simulators concurrently. An artifact whose generated
	// code keeps any mutable state outside the Instance (the JIT's
	// per-call-site argument buffers) must return false; the program
	// cache then recompiles per load instead of sharing the artifact.
	// Instances within one simulator are always fine either way — a
	// simulation is single-threaded.
	Shareable() bool
}

// Instance is a downloaded protocol's mutable state: the shared protocol
// state plus one channel state per channel definition. Instances are not
// safe for concurrent use; the runtime serializes packet processing per
// node.
type Instance struct {
	compiled Compiled
	invoke   InvokeFunc

	// Proto is the protocol state shared by all channels (§2).
	Proto value.Value
	// Chans holds one channel state per channel, indexed like
	// Info().Channels.
	Chans []value.Value
}

// NewInstance assembles an instance; used by engine implementations.
func NewInstance(c Compiled, proto value.Value, chans []value.Value, invoke InvokeFunc) *Instance {
	return &Instance{compiled: c, invoke: invoke, Proto: proto, Chans: chans}
}

// Compiled returns the program this instance was created from.
func (in *Instance) Compiled() Compiled { return in.compiled }

// Invoke runs channel ci on pkt. On success the protocol and channel
// states are replaced by the channel's result; on an unhandled PLAN-P
// exception the states are left unchanged and the error is returned
// (matching the paper's model where the verifier, not the runtime,
// guards against state corruption).
func (in *Instance) Invoke(ci int, ctx prims.Context, pkt value.Value) error {
	if ci < 0 || ci >= len(in.Chans) {
		return fmt.Errorf("planp/engine: channel index %d out of range", ci)
	}
	ps, ss, err := in.invoke(ci, ctx, in.Proto, in.Chans[ci], pkt)
	if err != nil {
		return err
	}
	in.Proto, in.Chans[ci] = ps, ss
	return nil
}

// ZeroValue returns the canonical initial value of a PLAN-P type: the
// value a protocol state starts from before the first packet. Tables
// have no zero value — channel states of table type must declare an
// initstate (enforced by the checker); table-typed protocol states are
// rejected here.
func ZeroValue(t ast.Type) (value.Value, error) {
	switch t := t.(type) {
	case ast.Base:
		switch t.Kind {
		case ast.TInt:
			return value.Int(0), nil
		case ast.TBool:
			return value.Bool(false), nil
		case ast.TString:
			return value.Str(""), nil
		case ast.TChar:
			return value.Char(0), nil
		case ast.TUnit:
			return value.Unit, nil
		case ast.THost:
			return value.HostV(0), nil
		case ast.TBlob:
			return value.Blob(nil), nil
		case ast.TIP:
			return value.IP(&value.IPHeader{TTL: 64}), nil
		case ast.TTCP:
			return value.TCP(&value.TCPHeader{}), nil
		case ast.TUDP:
			return value.UDP(&value.UDPHeader{}), nil
		}
	case ast.Tuple:
		elems := make([]value.Value, len(t.Elems))
		for i, et := range t.Elems {
			v, err := ZeroValue(et)
			if err != nil {
				return value.Unit, err
			}
			elems[i] = v
		}
		return value.TupleV(elems...), nil
	case ast.List:
		return value.ListV(nil), nil
	case ast.Table:
		return value.Unit, fmt.Errorf("type %s has no zero value; use an initstate clause", t)
	}
	return value.Unit, fmt.Errorf("type %s has no zero value", t)
}

// DefaultProtoState returns the initial protocol state for a type.
// Unlike channel states (which use initstate clauses), the protocol
// state has no initializer syntax, so table-typed protocol states start
// as empty tables — which is what lets channels of one protocol share a
// table (the MPEG monitor's connection registry, §3.3).
func DefaultProtoState(t ast.Type) (value.Value, error) {
	switch t := t.(type) {
	case ast.Table:
		return value.TableV(value.NewTable(64)), nil
	case ast.Tuple:
		elems := make([]value.Value, len(t.Elems))
		for i, et := range t.Elems {
			v, err := DefaultProtoState(et)
			if err != nil {
				return value.Unit, err
			}
			elems[i] = v
		}
		return value.TupleV(elems...), nil
	default:
		return ZeroValue(t)
	}
}

// InitStates computes the initial protocol state and channel states for
// a checked program, evaluating initstate expressions with evalInit
// (which receives the frame size of the owning channel). Engine
// implementations share this in their NewInstance.
func InitStates(info *typecheck.Info, evalInit func(e ast.Expr, frameSize int) (value.Value, error)) (value.Value, []value.Value, error) {
	proto, err := DefaultProtoState(info.ProtoState)
	if err != nil {
		return value.Unit, nil, fmt.Errorf("protocol state: %w", err)
	}
	chans := make([]value.Value, len(info.Channels))
	for i, ch := range info.Channels {
		if ch.Decl.InitState != nil {
			v, err := evalInit(ch.Decl.InitState, ch.FrameSize)
			if err != nil {
				return value.Unit, nil, fmt.Errorf("channel %s initstate: %w", ch.Decl.Name, err)
			}
			chans[i] = v
			continue
		}
		v, err := ZeroValue(ch.Decl.ChanState())
		if err != nil {
			return value.Unit, nil, fmt.Errorf("channel %s state: %w", ch.Decl.Name, err)
		}
		chans[i] = v
	}
	return proto, chans, nil
}
