package engine_test

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"planp.dev/planp/internal/lang/langtest"
	"planp.dev/planp/internal/lang/value"
)

// exprGen generates random well-typed PLAN-P expressions. The generated
// programs may raise (division by zero, out-of-range accesses) — engines
// must agree on that too.
type exprGen struct {
	rng    *rand.Rand
	nextID int
	scope  []string // int-typed let-bound names currently in scope
}

func (g *exprGen) fresh() string {
	g.nextID++
	return fmt.Sprintf("x%d", g.nextID)
}

// intExpr emits an int-typed expression of bounded depth.
func (g *exprGen) intExpr(depth int) string {
	if depth <= 0 {
		switch g.rng.Intn(4) {
		case 0:
			return fmt.Sprintf("%d", g.rng.Intn(21)-10)
		case 1:
			return "ps"
		case 2:
			if len(g.scope) > 0 {
				return g.scope[g.rng.Intn(len(g.scope))]
			}
			return "ps"
		default:
			return "ps"
		}
	}
	switch g.rng.Intn(10) {
	case 0, 1, 2:
		ops := []string{"+", "-", "*", "/", "mod"}
		op := ops[g.rng.Intn(len(ops))]
		return fmt.Sprintf("(%s %s %s)", g.intExpr(depth-1), op, g.intExpr(depth-1))
	case 3:
		return fmt.Sprintf("(if %s then %s else %s)",
			g.boolExpr(depth-1), g.intExpr(depth-1), g.intExpr(depth-1))
	case 4:
		name := g.fresh()
		g.scope = append(g.scope, name)
		body := g.intExpr(depth - 1)
		g.scope = g.scope[:len(g.scope)-1]
		return fmt.Sprintf("(let val %s : int = %s in %s end)", name, g.intExpr(depth-1), body)
	case 5:
		return fmt.Sprintf("min(%s, %s)", g.intExpr(depth-1), g.intExpr(depth-1))
	case 6:
		return fmt.Sprintf("abs(%s)", g.intExpr(depth-1))
	case 7:
		return fmt.Sprintf("(try %s handle %s end)", g.intExpr(depth-1), g.intExpr(depth-1))
	case 8:
		return fmt.Sprintf("strLen(%s)", g.strExpr(depth-1))
	default:
		return "blobLen(#3 p) + udpDst(#2 p)"
	}
}

func (g *exprGen) boolExpr(depth int) string {
	if depth <= 0 {
		if g.rng.Intn(2) == 0 {
			return "true"
		}
		return "false"
	}
	switch g.rng.Intn(5) {
	case 0:
		ops := []string{"=", "<>", "<", "<=", ">", ">="}
		return fmt.Sprintf("(%s %s %s)", g.intExpr(depth-1), ops[g.rng.Intn(6)], g.intExpr(depth-1))
	case 1:
		return fmt.Sprintf("(%s andalso %s)", g.boolExpr(depth-1), g.boolExpr(depth-1))
	case 2:
		return fmt.Sprintf("(%s orelse %s)", g.boolExpr(depth-1), g.boolExpr(depth-1))
	case 3:
		return fmt.Sprintf("(not %s)", g.boolExpr(depth-1))
	default:
		return fmt.Sprintf("(%s = %s)", g.strExpr(depth-1), g.strExpr(depth-1))
	}
}

func (g *exprGen) strExpr(depth int) string {
	if depth <= 0 {
		return fmt.Sprintf("%q", strings.Repeat("ab", g.rng.Intn(3)))
	}
	switch g.rng.Intn(3) {
	case 0:
		return fmt.Sprintf("(%s ^ %s)", g.strExpr(depth-1), g.strExpr(depth-1))
	case 1:
		return fmt.Sprintf("itos(%s)", g.intExpr(depth-1))
	default:
		return fmt.Sprintf("subStr(%s, 0, 1)", g.strExpr(depth-1)) // may raise on ""
	}
}

// TestEnginesAgreeOnRandomPrograms is the differential test: 200 random
// programs, one packet each, identical outcome (state or exception)
// required across interp, bytecode, and jit.
func TestEnginesAgreeOnRandomPrograms(t *testing.T) {
	rng := rand.New(rand.NewSource(0xC0FFEE))
	for i := 0; i < 200; i++ {
		g := &exprGen{rng: rng}
		src := fmt.Sprintf(`
channel network(ps : int, ss : int, p : ip*udp*blob) is
  (deliver(p); (%s, ss + 1))
`, g.intExpr(4))

		type outcome struct {
			errText string
			proto   int64
		}
		results := map[string]outcome{}
		compiled := langtest.CompileAll(t, src)
		for name, c := range compiled {
			ctx := langtest.NewCtx()
			inst, err := c.NewInstance(ctx)
			if err != nil {
				t.Fatalf("program %d (%s): NewInstance: %v\n%s", i, name, err, src)
			}
			pkt := langtest.UDPPacket("10.0.0.1", "10.0.0.2", 7, 9, []byte("abcd"))
			var o outcome
			if err := inst.Invoke(0, ctx, pkt); err != nil {
				o.errText = err.Error()
			} else {
				o.proto = inst.Proto.AsInt()
			}
			results[name] = o
		}
		ref := results["interp"]
		for name, o := range results {
			if o != ref {
				t.Fatalf("program %d: %s=%+v interp=%+v\nsource:\n%s", i, name, o, ref, src)
			}
		}
	}
}

// TestEnginesAgreeOnRandomTablePrograms exercises tables and packet
// rewriting under randomness.
func TestEnginesAgreeOnRandomTablePrograms(t *testing.T) {
	rng := rand.New(rand.NewSource(0xBEEF))
	for i := 0; i < 60; i++ {
		g := &exprGen{rng: rng}
		src := fmt.Sprintf(`
channel network(ps : int, ss : (int) hash_table, p : ip*udp*blob)
initstate mkTable(8) is
  let
    val k : int = %s
    val v : int = if tmem(ss, k) then tget(ss, k) else 0
  in
    (tput(ss, k, v + 1);
     OnRemote(network, (ipDestSet(#1 p, ipSrc(#1 p)), #2 p, #3 p));
     (ps + v, ss))
  end
`, g.intExpr(3))
		type outcome struct {
			errs  int
			proto int64
			sent  int
		}
		results := map[string]outcome{}
		for name, c := range langtest.CompileAll(t, src) {
			ctx := langtest.NewCtx()
			inst, err := c.NewInstance(ctx)
			if err != nil {
				t.Fatalf("program %d (%s): %v", i, name, err)
			}
			var o outcome
			for j := 0; j < 5; j++ {
				pkt := langtest.UDPPacket("10.0.0.1", "10.0.0.2", uint16(j), 9, []byte("xy"))
				if err := inst.Invoke(0, ctx, pkt); err != nil {
					o.errs++
				}
			}
			o.proto = inst.Proto.AsInt()
			o.sent = len(ctx.Sent)
			results[name] = o
		}
		ref := results["interp"]
		for name, o := range results {
			if o != ref {
				t.Fatalf("program %d: %s=%+v interp=%+v\nsource:\n%s", i, name, o, ref, src)
			}
		}
	}
}

// TestDeepNesting guards stack/register handling at depth.
func TestDeepNesting(t *testing.T) {
	expr := "1"
	for i := 0; i < 120; i++ {
		expr = fmt.Sprintf("(%s + %d)", expr, i%7)
	}
	src := fmt.Sprintf(`
channel network(ps : int, ss : int, p : ip*udp*blob) is
  (deliver(p); (%s, ss))
`, expr)
	var want int64 = -1
	for name, c := range langtest.CompileAll(t, src) {
		ctx := langtest.NewCtx()
		inst, err := c.NewInstance(ctx)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := inst.Invoke(0, ctx, langtest.UDPPacket("1.1.1.1", "2.2.2.2", 1, 2, nil)); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got := inst.Proto.AsInt()
		if want == -1 {
			want = got
		} else if got != want {
			t.Errorf("%s: %d, others %d", name, got, want)
		}
	}
	if want <= 0 {
		t.Errorf("deep sum = %d", want)
	}
}

// TestNestedTryAcrossEngines checks handler nesting depth behavior.
func TestNestedTryAcrossEngines(t *testing.T) {
	src := `
channel network(ps : int, ss : int, p : ip*udp*blob) is
  let
    val a : int =
      try
        try 1 / 0 handle (try blobByte(#3 p, 99) handle 7 end) end
      handle 100 end
    val b : int = try raise "boom" handle a + 1 end
  in
    (deliver(p); (a * 1000 + b, ss))
  end
`
	for name, c := range langtest.CompileAll(t, src) {
		ctx := langtest.NewCtx()
		inst, err := c.NewInstance(ctx)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := inst.Invoke(0, ctx, langtest.UDPPacket("1.1.1.1", "2.2.2.2", 1, 2, []byte("x"))); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		// Inner: 1/0 raises -> handler: blobByte(1-byte blob, 99) raises
		// -> its handler yields 7; so a = 7. b = a+1 = 8.
		if got := inst.Proto.AsInt(); got != 7008 {
			t.Errorf("%s: state = %d, want 7008", name, got)
		}
	}
}

// TestGlobalsAndInitstateAcrossEngines pins evaluation order: globals in
// declaration order, then initstates.
func TestGlobalsAndInitstateAcrossEngines(t *testing.T) {
	src := `
val base : int = 10
val derived : int = base * base
val msg : string = "v" ^ itos(derived)

channel network(ps : int, ss : (string) hash_table, p : ip*udp*blob)
initstate mkTable(base) is
  (tput(ss, derived, msg);
   deliver(p);
   (ps + tsize(ss), ss))
`
	for name, c := range langtest.CompileAll(t, src) {
		ctx := langtest.NewCtx()
		inst, err := c.NewInstance(ctx)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := inst.Invoke(0, ctx, langtest.UDPPacket("1.1.1.1", "2.2.2.2", 1, 2, nil)); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got := inst.Proto.AsInt(); got != 1 {
			t.Errorf("%s: state = %d, want 1", name, got)
		}
		tbl := inst.Chans[0].AsTable()
		v, ok := tbl.Get(value.Int(100))
		if !ok || v.AsStr() != "v100" {
			t.Errorf("%s: table content wrong: %v %v", name, v, ok)
		}
	}
}

// TestFailingInitstateReportsError pins the error path of NewInstance.
func TestFailingInitstateReportsError(t *testing.T) {
	src := `
channel network(ps : int, ss : (int) hash_table, p : ip*udp*blob)
initstate (println(1 / 0); mkTable(4)) is
  (deliver(p); (ps, ss))
`
	// 1/0 raises during initstate evaluation.
	for name, c := range langtest.CompileAll(t, src) {
		ctx := langtest.NewCtx()
		if _, err := c.NewInstance(ctx); err == nil {
			t.Errorf("%s: initstate division by zero should fail NewInstance", name)
		}
	}
}
