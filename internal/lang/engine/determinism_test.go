package engine_test

import (
	"testing"

	"planp.dev/planp/asp"
	"planp.dev/planp/internal/lang/langtest"
	"planp.dev/planp/internal/lang/value"
)

// TestEngineDeterminism replays the same packet sequence twice through
// fresh instances of each engine and requires bit-identical protocol
// state and effect logs — hidden map-iteration order or allocation
// timing must never leak into semantics.
func TestEngineDeterminism(t *testing.T) {
	packets := make([]value.Value, 0, 30)
	for i := 0; i < 30; i++ {
		packets = append(packets,
			langtest.TCPPacket("10.0.1.1", "10.0.0.100", uint16(4000+i%7), 80,
				[]byte("GET /doc"+string(rune('a'+i%5)))))
	}
	for name, c := range langtest.CompileAll(t, asp.HTTPGateway) {
		t.Run(name, func(t *testing.T) {
			type outcome struct {
				proto string
				sends string
			}
			run := func() outcome {
				ctx := langtest.NewCtx()
				inst, err := c.NewInstance(ctx)
				if err != nil {
					t.Fatal(err)
				}
				ci := langtest.FindChannel(t, c.Info(), "network")
				for _, pkt := range packets {
					if err := inst.Invoke(ci, ctx, pkt); err != nil {
						t.Fatal(err)
					}
				}
				var sends string
				for _, s := range ctx.Sent {
					sends += s.Pkt.Vs[0].AsIP().Dst.String() + ";"
				}
				return outcome{proto: inst.Proto.String(), sends: sends}
			}
			a, b := run(), run()
			if a != b {
				t.Errorf("nondeterministic execution:\n%+v\nvs\n%+v", a, b)
			}
		})
	}
}

// TestStateIsolationBetweenInstances: two downloads of one compiled
// program never share protocol or channel state (each node's download is
// independent, §2.4).
func TestStateIsolationBetweenInstances(t *testing.T) {
	for name, c := range langtest.CompileAll(t, asp.HTTPGateway) {
		ctx := langtest.NewCtx()
		i1, err := c.NewInstance(ctx)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		i2, err := c.NewInstance(ctx)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		ci := langtest.FindChannel(t, c.Info(), "network")
		pkt := langtest.TCPPacket("10.0.1.1", "10.0.0.100", 4001, 80, []byte("GET /"))
		for j := 0; j < 5; j++ {
			if err := i1.Invoke(ci, ctx, pkt); err != nil {
				t.Fatal(err)
			}
		}
		if value.Equal(i1.Chans[ci], i2.Chans[ci]) && i1.Chans[ci].Kind == value.KindTable {
			// Equal would be true only if i2's table gained i1's entries
			// (tables compare by reference-held contents; fresh i2 must
			// stay empty).
			if i2.Chans[ci].AsTable().Len() != 0 {
				t.Errorf("%s: instance state leaked", name)
			}
		}
		if i2.Chans[ci].AsTable().Len() != 0 {
			t.Errorf("%s: second instance's table has %d entries", name, i2.Chans[ci].AsTable().Len())
		}
	}
}
