// Media primitives: the audio-degradation operations the paper cites as
// its motivating example ("PLAN-P provides primitives that can be used to
// degrade a 16 bit stereo audio signal into an 8 bit stereo/monaural
// signal", §1), plus the MPEG payload accessors used by the multipoint
// video experiment (§3.3).
//
// Audio payload layout (produced by internal/apps/audio):
//
//	byte 0      format tag: 1 = 16-bit stereo, 2 = 16-bit mono, 3 = 8-bit mono
//	bytes 1-4   big-endian sequence number
//	bytes 5-    samples; 16-bit samples are big-endian two's complement,
//	            stereo samples interleaved L,R
//
// MPEG payload layout (produced by internal/apps/mpeg):
//
//	byte 0      message tag: 'S' setup, 'D' data, 'Q' query, 'A' answer
//	bytes 1-4   big-endian stream id
//	data only:  byte 5 frame type ('I','P','B'), bytes 6-9 sequence number
package prims

import (
	"planp.dev/planp/internal/lang/ast"
	"planp.dev/planp/internal/lang/value"
)

// Audio format tags.
const (
	AudioStereo16 = 1
	AudioMono16   = 2
	AudioMono8    = 3
)

// AudioHeaderLen is the number of payload bytes before sample data.
const AudioHeaderLen = 5

func audioHdr(prim string, b []byte) (format int, seq uint32) {
	if len(b) < AudioHeaderLen {
		value.Raise("%s: payload too short for audio header (%d bytes)", prim, len(b))
	}
	f := int(b[0])
	if f != AudioStereo16 && f != AudioMono16 && f != AudioMono8 {
		value.Raise("%s: unknown audio format tag %d", prim, f)
	}
	return f, uint32(b[1])<<24 | uint32(b[2])<<16 | uint32(b[3])<<8 | uint32(b[4])
}

func putAudioHdr(out []byte, format int, seq uint32) {
	out[0] = byte(format)
	out[1], out[2], out[3], out[4] = byte(seq>>24), byte(seq>>16), byte(seq>>8), byte(seq)
}

func sample16(b []byte, i int) int16 { return int16(uint16(b[i])<<8 | uint16(b[i+1])) }

func putSample16(b []byte, i int, s int16) { b[i], b[i+1] = byte(uint16(s)>>8), byte(uint16(s)) }

// AudioFrames returns the number of sample frames in an audio payload.
func AudioFrames(format int, b []byte) int {
	data := len(b) - AudioHeaderLen
	switch format {
	case AudioStereo16:
		return data / 4
	case AudioMono16:
		return data / 2
	default: // AudioMono8
		return data
	}
}

// DegradeToMono16 mixes a stereo 16-bit payload down to mono 16-bit.
// Non-stereo payloads are returned unchanged (already at or below the
// target quality).
func DegradeToMono16(b []byte) []byte {
	format, seq := audioHdr("audioToMono16", b)
	if format != AudioStereo16 {
		return b
	}
	frames := AudioFrames(format, b)
	out := make([]byte, AudioHeaderLen+frames*2)
	putAudioHdr(out, AudioMono16, seq)
	for f := 0; f < frames; f++ {
		l := int32(sample16(b, AudioHeaderLen+f*4))
		r := int32(sample16(b, AudioHeaderLen+f*4+2))
		putSample16(out, AudioHeaderLen+f*2, int16((l+r)/2))
	}
	return out
}

// DegradeToMono8 reduces any audio payload to 8-bit mono (the paper's
// lowest quality level). 8-bit samples are stored as unsigned bytes with
// a 128 bias, the classic telephony convention.
func DegradeToMono8(b []byte) []byte {
	format, seq := audioHdr("audioToMono8", b)
	if format == AudioMono8 {
		return b
	}
	frames := AudioFrames(format, b)
	out := make([]byte, AudioHeaderLen+frames)
	putAudioHdr(out, AudioMono8, seq)
	for f := 0; f < frames; f++ {
		var s int32
		if format == AudioStereo16 {
			l := int32(sample16(b, AudioHeaderLen+f*4))
			r := int32(sample16(b, AudioHeaderLen+f*4+2))
			s = (l + r) / 2
		} else {
			s = int32(sample16(b, AudioHeaderLen+f*2))
		}
		out[AudioHeaderLen+f] = byte((s >> 8) + 128)
	}
	return out
}

// RestoreStereo16 re-expands a (possibly degraded) payload into the
// 16-bit stereo container the unmodified audio client expects. The
// reconstruction is lossy exactly as in the paper: quality was shed in
// the network and cannot be recovered, but the client keeps playing.
func RestoreStereo16(b []byte) []byte {
	format, seq := audioHdr("audioRestore", b)
	if format == AudioStereo16 {
		return b
	}
	frames := AudioFrames(format, b)
	out := make([]byte, AudioHeaderLen+frames*4)
	putAudioHdr(out, AudioStereo16, seq)
	for f := 0; f < frames; f++ {
		var s int16
		if format == AudioMono16 {
			s = sample16(b, AudioHeaderLen+f*2)
		} else {
			s = int16(int32(b[AudioHeaderLen+f])-128) << 8
		}
		putSample16(out, AudioHeaderLen+f*4, s)
		putSample16(out, AudioHeaderLen+f*4+2, s)
	}
	return out
}

// MPEG message tags.
const (
	MPEGSetup = 'S'
	MPEGData  = 'D'
	MPEGQuery = 'Q'
	MPEGReply = 'A'
)

func mpegHdr(prim string, b []byte) byte {
	if len(b) < 5 {
		value.Raise("%s: payload too short for MPEG header (%d bytes)", prim, len(b))
	}
	return b[0]
}

func init() {
	// ---- Audio ----
	mono("audioFormat", types(ast.BlobT), ast.IntT, false, func(_ Context, a []value.Value) value.Value {
		f, _ := audioHdr("audioFormat", a[0].AsBlob())
		return value.Int(int64(f))
	})
	mono("audioSeq", types(ast.BlobT), ast.IntT, false, func(_ Context, a []value.Value) value.Value {
		_, seq := audioHdr("audioSeq", a[0].AsBlob())
		return value.Int(int64(seq))
	})
	mono("audioFrames", types(ast.BlobT), ast.IntT, false, func(_ Context, a []value.Value) value.Value {
		f, _ := audioHdr("audioFrames", a[0].AsBlob())
		return value.Int(int64(AudioFrames(f, a[0].AsBlob())))
	})
	mono("audioToMono16", types(ast.BlobT), ast.BlobT, false, func(_ Context, a []value.Value) value.Value {
		return value.Blob(DegradeToMono16(a[0].AsBlob()))
	})
	mono("audioToMono8", types(ast.BlobT), ast.BlobT, false, func(_ Context, a []value.Value) value.Value {
		return value.Blob(DegradeToMono8(a[0].AsBlob()))
	})
	mono("audioRestore", types(ast.BlobT), ast.BlobT, false, func(_ Context, a []value.Value) value.Value {
		return value.Blob(RestoreStereo16(a[0].AsBlob()))
	})

	// ---- MPEG ----
	mono("mpegType", types(ast.BlobT), ast.CharT, false, func(_ Context, a []value.Value) value.Value {
		return value.Char(mpegHdr("mpegType", a[0].AsBlob()))
	})
	mono("mpegStream", types(ast.BlobT), ast.IntT, false, func(_ Context, a []value.Value) value.Value {
		b := a[0].AsBlob()
		mpegHdr("mpegStream", b)
		return value.Int(int64(uint32(b[1])<<24 | uint32(b[2])<<16 | uint32(b[3])<<8 | uint32(b[4])))
	})
	mono("mpegFrameType", types(ast.BlobT), ast.CharT, false, func(_ Context, a []value.Value) value.Value {
		b := a[0].AsBlob()
		if mpegHdr("mpegFrameType", b) != MPEGData || len(b) < 10 {
			value.Raise("mpegFrameType: not an MPEG data payload")
		}
		return value.Char(b[5])
	})
	mono("mpegSeq", types(ast.BlobT), ast.IntT, false, func(_ Context, a []value.Value) value.Value {
		b := a[0].AsBlob()
		if mpegHdr("mpegSeq", b) != MPEGData || len(b) < 10 {
			value.Raise("mpegSeq: not an MPEG data payload")
		}
		return value.Int(int64(uint32(b[6])<<24 | uint32(b[7])<<16 | uint32(b[8])<<8 | uint32(b[9])))
	})
}
