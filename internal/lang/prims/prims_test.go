package prims

import (
	"strings"
	"testing"

	"planp.dev/planp/internal/lang/ast"
	"planp.dev/planp/internal/lang/value"
)

// nullCtx is a minimal context for pure primitives.
type nullCtx struct{ out strings.Builder }

func (c *nullCtx) OnRemote(string, value.Value)     {}
func (c *nullCtx) OnNeighbor(string, value.Value)   {}
func (c *nullCtx) Deliver(value.Value)              {}
func (c *nullCtx) Print(s string)                   { c.out.WriteString(s) }
func (c *nullCtx) ThisHost() value.Host             { return 0x0A000001 }
func (c *nullCtx) Now() int64                       { return 12345 }
func (c *nullCtx) Rand(n int64) int64               { return n - 1 }
func (c *nullCtx) LinkLoadTo(value.Host) int64      { return 42 }
func (c *nullCtx) LinkBandwidthTo(value.Host) int64 { return 10_000_000 }

// call invokes a primitive by name.
func call(t *testing.T, name string, args ...value.Value) value.Value {
	t.Helper()
	i := Lookup(name)
	if i < 0 {
		t.Fatalf("unknown primitive %s", name)
	}
	return Get(i).Fn(&nullCtx{}, args)
}

// raises reports whether invoking the primitive with args raises.
func raises(name string, args ...value.Value) (raised bool) {
	i := Lookup(name)
	if i < 0 {
		return false
	}
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(value.Exception); ok {
				raised = true
				return
			}
			panic(r)
		}
	}()
	Get(i).Fn(&nullCtx{}, args)
	return false
}

func TestRegistryBasics(t *testing.T) {
	if Count() < 60 {
		t.Errorf("registry has only %d primitives", Count())
	}
	if Lookup("nosuch") != -1 {
		t.Error("Lookup on missing name")
	}
	names := Names()
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n] {
			t.Errorf("duplicate primitive %s", n)
		}
		seen[n] = true
	}
	for _, must := range []string{"ipSrc", "ipDestSet", "tcpDst", "udpDst", "mkTable",
		"tget", "tput", "tmem", "audioToMono8", "audioRestore", "mpegStream",
		"deliver", "print", "println", "linkLoadTo", "thisHost"} {
		if !seen[must] {
			t.Errorf("missing primitive %s", must)
		}
	}
}

func TestHeaderAccessors(t *testing.T) {
	ip := value.IP(&value.IPHeader{Src: 0x01020304, Dst: 0x05060708, Proto: 6, TTL: 64, Len: 100, ID: 9})
	if call(t, "ipSrc", ip).AsHost() != 0x01020304 {
		t.Error("ipSrc")
	}
	if call(t, "ipDst", ip).AsHost() != 0x05060708 {
		t.Error("ipDst")
	}
	if call(t, "ipProto", ip).AsInt() != 6 || call(t, "ipTTL", ip).AsInt() != 64 ||
		call(t, "ipLen", ip).AsInt() != 100 || call(t, "ipID", ip).AsInt() != 9 {
		t.Error("ip scalar accessors")
	}
	// Setters are functional: the original header is untouched.
	rewritten := call(t, "ipDestSet", ip, value.HostV(0x0A0A0A0A))
	if rewritten.AsIP().Dst != 0x0A0A0A0A {
		t.Error("ipDestSet result")
	}
	if ip.AsIP().Dst != 0x05060708 {
		t.Error("ipDestSet mutated its input")
	}
	if call(t, "ipSrcSet", ip, value.HostV(1)).AsIP().Src != 1 {
		t.Error("ipSrcSet")
	}
	tcp := value.TCP(&value.TCPHeader{SrcPort: 4000, DstPort: 80, Seq: 7, Ack: 8, Flags: value.TCPSyn | value.TCPFin, Window: 500})
	if call(t, "tcpSrc", tcp).AsInt() != 4000 || call(t, "tcpDst", tcp).AsInt() != 80 {
		t.Error("tcp ports")
	}
	if !call(t, "tcpSynFlag", tcp).AsBool() || !call(t, "tcpFinFlag", tcp).AsBool() {
		t.Error("tcp flags true")
	}
	if call(t, "tcpAckFlag", tcp).AsBool() || call(t, "tcpRstFlag", tcp).AsBool() {
		t.Error("tcp flags false")
	}
	if call(t, "tcpSeq", tcp).AsInt() != 7 || call(t, "tcpAck", tcp).AsInt() != 8 ||
		call(t, "tcpWindow", tcp).AsInt() != 500 {
		t.Error("tcp scalars")
	}
	udp := value.UDP(&value.UDPHeader{SrcPort: 1, DstPort: 2, Len: 30})
	if call(t, "udpSrc", udp).AsInt() != 1 || call(t, "udpDst", udp).AsInt() != 2 ||
		call(t, "udpLen", udp).AsInt() != 30 {
		t.Error("udp accessors")
	}
	if call(t, "udpDstSet", udp, value.Int(99)).AsUDP().DstPort != 99 {
		t.Error("udpDstSet")
	}
}

func TestHeaderRangeChecks(t *testing.T) {
	ip := value.IP(&value.IPHeader{})
	tcp := value.TCP(&value.TCPHeader{})
	udp := value.UDP(&value.UDPHeader{})
	if !raises("ipTTLSet", ip, value.Int(300)) || raises("ipTTLSet", ip, value.Int(255)) {
		t.Error("ipTTLSet range")
	}
	if !raises("ipLenSet", ip, value.Int(-1)) {
		t.Error("ipLenSet range")
	}
	if !raises("tcpDstSet", tcp, value.Int(70000)) || !raises("tcpSrcSet", tcp, value.Int(-1)) {
		t.Error("tcp port range")
	}
	if !raises("udpSrcSet", udp, value.Int(65536)) {
		t.Error("udp port range")
	}
	if !raises("mkIP", value.HostV(1), value.HostV(2), value.Int(256)) {
		t.Error("mkIP proto range")
	}
	if !raises("intToHost", value.Int(-1)) || !raises("intToHost", value.Int(1<<33)) {
		t.Error("intToHost range")
	}
	if !raises("mkUDP", value.Int(0), value.Int(65536)) {
		t.Error("mkUDP range")
	}
}

func TestTablePrimitives(t *testing.T) {
	tbl := call(t, "mkTable", value.Int(16))
	key := value.TupleV(value.HostV(1), value.Int(80))
	if call(t, "tmem", tbl, key).AsBool() {
		t.Error("tmem on empty")
	}
	call(t, "tput", tbl, key, value.Str("srv"))
	if !call(t, "tmem", tbl, key).AsBool() {
		t.Error("tmem after tput")
	}
	if call(t, "tget", tbl, key).AsStr() != "srv" {
		t.Error("tget")
	}
	if call(t, "tsize", tbl).AsInt() != 1 {
		t.Error("tsize")
	}
	call(t, "tdel", tbl, key)
	if call(t, "tmem", tbl, key).AsBool() {
		t.Error("tdel")
	}
	if !raises("tget", tbl, key) {
		t.Error("tget on missing key must raise")
	}
	if !raises("mkTable", value.Int(-1)) {
		t.Error("mkTable negative")
	}
}

func TestListPrimitives(t *testing.T) {
	empty := call(t, "listNew")
	if !call(t, "isEmpty", empty).AsBool() {
		t.Error("isEmpty")
	}
	l1 := call(t, "cons", value.Int(2), empty)
	l2 := call(t, "cons", value.Int(1), l1)
	if call(t, "listLen", l2).AsInt() != 2 {
		t.Error("listLen")
	}
	if call(t, "hd", l2).AsInt() != 1 {
		t.Error("hd")
	}
	if call(t, "hd", call(t, "tl", l2)).AsInt() != 2 {
		t.Error("tl/hd")
	}
	if call(t, "listNth", l2, value.Int(1)).AsInt() != 2 {
		t.Error("listNth")
	}
	if !call(t, "member", value.Int(2), l2).AsBool() || call(t, "member", value.Int(9), l2).AsBool() {
		t.Error("member")
	}
	// cons must not mutate the shared tail.
	l3 := call(t, "cons", value.Int(9), l1)
	if call(t, "hd", l1).AsInt() != 2 || call(t, "listLen", l3).AsInt() != 2 {
		t.Error("cons aliasing")
	}
	if !raises("hd", empty) || !raises("tl", empty) || !raises("listNth", l2, value.Int(5)) {
		t.Error("list bounds")
	}
}

func TestStringAndConversionPrimitives(t *testing.T) {
	if call(t, "strLen", value.Str("abc")).AsInt() != 3 {
		t.Error("strLen")
	}
	if call(t, "subStr", value.Str("hello"), value.Int(1), value.Int(3)).AsStr() != "ell" {
		t.Error("subStr")
	}
	if call(t, "charAt", value.Str("xyz"), value.Int(2)).AsChar() != 'z' {
		t.Error("charAt")
	}
	if call(t, "strFind", value.Str("hello"), value.Str("ll")).AsInt() != 2 {
		t.Error("strFind")
	}
	if call(t, "strFind", value.Str("hello"), value.Str("q")).AsInt() != -1 {
		t.Error("strFind miss")
	}
	if !call(t, "startsWith", value.Str("GET /x"), value.Str("GET")).AsBool() {
		t.Error("startsWith")
	}
	if !call(t, "contains", value.Str("abc"), value.Str("b")).AsBool() {
		t.Error("contains")
	}
	if call(t, "itos", value.Int(-42)).AsStr() != "-42" {
		t.Error("itos")
	}
	if call(t, "stoi", value.Str(" 17 ")).AsInt() != 17 {
		t.Error("stoi")
	}
	if call(t, "ctoi", value.Char('A')).AsInt() != 65 || call(t, "charPos", value.Char('A')).AsInt() != 65 {
		t.Error("ctoi/charPos")
	}
	if call(t, "itoc", value.Int(66)).AsChar() != 'B' {
		t.Error("itoc")
	}
	if call(t, "min", value.Int(3), value.Int(5)).AsInt() != 3 ||
		call(t, "max", value.Int(3), value.Int(5)).AsInt() != 5 ||
		call(t, "abs", value.Int(-9)).AsInt() != 9 {
		t.Error("min/max/abs")
	}
	if !raises("stoi", value.Str("abc")) || !raises("subStr", value.Str("ab"), value.Int(0), value.Int(5)) ||
		!raises("charAt", value.Str(""), value.Int(0)) || !raises("itoc", value.Int(999)) {
		t.Error("raising cases")
	}
}

func TestBlobPrimitives(t *testing.T) {
	b := value.Blob([]byte{1, 2, 3, 4, 5})
	if call(t, "blobLen", b).AsInt() != 5 {
		t.Error("blobLen")
	}
	if call(t, "blobByte", b, value.Int(2)).AsInt() != 3 {
		t.Error("blobByte")
	}
	sub := call(t, "blobSub", b, value.Int(1), value.Int(3))
	if string(sub.AsBlob()) != string([]byte{2, 3, 4}) {
		t.Error("blobSub")
	}
	// blobSub copies: mutating the copy leaves the original alone.
	sub.AsBlob()[0] = 99
	if b.AsBlob()[1] != 2 {
		t.Error("blobSub aliased its input")
	}
	cat := call(t, "blobCat", b, sub)
	if call(t, "blobLen", cat).AsInt() != 8 {
		t.Error("blobCat")
	}
	set := call(t, "blobSetByte", b, value.Int(0), value.Int(200))
	if set.AsBlob()[0] != 200 || b.AsBlob()[0] != 1 {
		t.Error("blobSetByte must copy")
	}
	i32 := call(t, "blobPutInt32", value.Blob(make([]byte, 8)), value.Int(2), value.Int(-5))
	if call(t, "blobInt32", i32, value.Int(2)).AsInt() != -5 {
		t.Error("blobInt32 round trip")
	}
	if call(t, "blobToString", call(t, "blobFromString", value.Str("hi"))).AsStr() != "hi" {
		t.Error("blob/string round trip")
	}
	if !raises("blobByte", b, value.Int(5)) || !raises("blobSub", b, value.Int(4), value.Int(4)) ||
		!raises("blobInt32", b, value.Int(3)) || !raises("blobSetByte", b, value.Int(0), value.Int(256)) {
		t.Error("blob bounds")
	}
}

func TestEnvironmentPrimitives(t *testing.T) {
	ctx := &nullCtx{}
	run := func(name string, args ...value.Value) value.Value {
		return Get(Lookup(name)).Fn(ctx, args)
	}
	if run("thisHost").AsHost() != 0x0A000001 {
		t.Error("thisHost")
	}
	if run("time").AsInt() != 12345 {
		t.Error("time")
	}
	if run("rand", value.Int(10)).AsInt() != 9 {
		t.Error("rand")
	}
	if run("linkLoadTo", value.HostV(1)).AsInt() != 42 {
		t.Error("linkLoadTo")
	}
	if run("linkBandwidthTo", value.HostV(1)).AsInt() != 10_000_000 {
		t.Error("linkBandwidthTo")
	}
	run("print", value.Str("a"))
	run("println", value.Int(3))
	if ctx.out.String() != "a3\n" {
		t.Errorf("print output %q", ctx.out.String())
	}
	if !raises("rand", value.Int(0)) {
		t.Error("rand(0) must raise")
	}
}

func TestHostConversions(t *testing.T) {
	h := call(t, "intToHost", value.Int(0x0A000002))
	if h.AsHost().String() != "10.0.0.2" {
		t.Error("intToHost")
	}
	if call(t, "hostToInt", h).AsInt() != 0x0A000002 {
		t.Error("hostToInt")
	}
	if call(t, "hostToString", h).AsStr() != "10.0.0.2" {
		t.Error("hostToString")
	}
}

// TestRaisesSetComplete probes every primitive with adversarial inputs
// and asserts the `raising` metadata covers each primitive observed to
// raise — the guard against the verifier silently under-approximating.
func TestRaisesSetComplete(t *testing.T) {
	adversarial := map[string][]value.Value{
		"mkTable":       {value.Int(-1)},
		"tget":          {value.TableV(value.NewTable(1)), value.Int(1)},
		"hd":            {value.ListV(nil)},
		"tl":            {value.ListV(nil)},
		"listNth":       {value.ListV(nil), value.Int(0)},
		"subStr":        {value.Str("a"), value.Int(0), value.Int(5)},
		"charAt":        {value.Str(""), value.Int(0)},
		"stoi":          {value.Str("x")},
		"itoc":          {value.Int(-1)},
		"blobByte":      {value.Blob(nil), value.Int(0)},
		"blobSub":       {value.Blob(nil), value.Int(0), value.Int(1)},
		"blobSetByte":   {value.Blob([]byte{1}), value.Int(0), value.Int(999)},
		"blobInt32":     {value.Blob(nil), value.Int(0)},
		"blobPutInt32":  {value.Blob(nil), value.Int(0), value.Int(1)},
		"ipTTLSet":      {value.IP(&value.IPHeader{}), value.Int(-1)},
		"ipLenSet":      {value.IP(&value.IPHeader{}), value.Int(-1)},
		"mkIP":          {value.HostV(0), value.HostV(0), value.Int(999)},
		"tcpSrcSet":     {value.TCP(&value.TCPHeader{}), value.Int(-1)},
		"tcpDstSet":     {value.TCP(&value.TCPHeader{}), value.Int(-1)},
		"udpSrcSet":     {value.UDP(&value.UDPHeader{}), value.Int(-1)},
		"udpDstSet":     {value.UDP(&value.UDPHeader{}), value.Int(-1)},
		"mkUDP":         {value.Int(-1), value.Int(0)},
		"intToHost":     {value.Int(-1)},
		"rand":          {value.Int(0)},
		"audioFormat":   {value.Blob(nil)},
		"audioSeq":      {value.Blob(nil)},
		"audioFrames":   {value.Blob(nil)},
		"audioToMono16": {value.Blob(nil)},
		"audioToMono8":  {value.Blob(nil)},
		"audioRestore":  {value.Blob(nil)},
		"mpegType":      {value.Blob(nil)},
		"mpegStream":    {value.Blob(nil)},
		"mpegFrameType": {value.Blob(nil)},
		"mpegSeq":       {value.Blob(nil)},
	}
	for name, args := range adversarial {
		i := Lookup(name)
		if i < 0 {
			t.Errorf("adversarial table names unknown primitive %s", name)
			continue
		}
		if !raises(name, args...) {
			t.Errorf("%s did not raise on adversarial input; drop it from the table or fix the input", name)
			continue
		}
		if !CanRaise(i) {
			t.Errorf("%s raises but is missing from the raising set (verifier unsound!)", name)
		}
	}
	// The reverse direction: everything in the raising set has an
	// adversarial witness here, so the set cannot rot silently.
	for name := range raising {
		if _, ok := adversarial[name]; !ok {
			t.Errorf("raising set entry %s has no adversarial witness in this test", name)
		}
	}
}

func TestTypeOfMonomorphic(t *testing.T) {
	i := Lookup("subStr")
	ret, err := TypeOf(i, []ast.Type{ast.StringT, ast.IntT, ast.IntT}, nil)
	if err != nil || !ast.Equal(ret, ast.StringT) {
		t.Errorf("subStr type: %v %v", ret, err)
	}
	if _, err := TypeOf(i, []ast.Type{ast.StringT}, nil); err == nil {
		t.Error("arity error expected")
	}
	if _, err := TypeOf(i, []ast.Type{ast.IntT, ast.IntT, ast.IntT}, nil); err == nil {
		t.Error("argument type error expected")
	}
}

func TestAudioPrimitiveChain(t *testing.T) {
	// Synthesize a 4-frame stereo payload with a known pattern.
	b := make([]byte, AudioHeaderLen+4*4)
	b[0] = AudioStereo16
	b[4] = 9 // seq
	for f := 0; f < 4; f++ {
		// L = 1000*(f+1), R = -1000*(f+1)
		l := int16(1000 * (f + 1))
		r := -l
		o := AudioHeaderLen + f*4
		b[o], b[o+1] = byte(uint16(l)>>8), byte(uint16(l))
		b[o+2], b[o+3] = byte(uint16(r)>>8), byte(uint16(r))
	}
	v := value.Blob(b)
	if call(t, "audioFormat", v).AsInt() != AudioStereo16 {
		t.Error("audioFormat")
	}
	if call(t, "audioSeq", v).AsInt() != 9 {
		t.Error("audioSeq")
	}
	if call(t, "audioFrames", v).AsInt() != 4 {
		t.Error("audioFrames")
	}
	mono := call(t, "audioToMono16", v)
	// L and R cancel: all mono samples 0.
	mb := mono.AsBlob()
	if mb[0] != AudioMono16 || len(mb) != AudioHeaderLen+4*2 {
		t.Fatalf("mono16 shape: tag=%d len=%d", mb[0], len(mb))
	}
	for f := 0; f < 4; f++ {
		if mb[AudioHeaderLen+f*2] != 0 || mb[AudioHeaderLen+f*2+1] != 0 {
			t.Errorf("frame %d not cancelled", f)
		}
	}
	low := call(t, "audioToMono8", v)
	if low.AsBlob()[0] != AudioMono8 || len(low.AsBlob()) != AudioHeaderLen+4 {
		t.Error("mono8 shape")
	}
	back := call(t, "audioRestore", low)
	bb := back.AsBlob()
	if bb[0] != AudioStereo16 || len(bb) != len(b) || bb[4] != 9 {
		t.Error("restore shape/seq")
	}
}

func TestMPEGPrimitives(t *testing.T) {
	data := []byte{MPEGData, 0, 0, 0, 7, 'I', 0, 0, 0, 3, 0xAA}
	v := value.Blob(data)
	if call(t, "mpegType", v).AsChar() != MPEGData {
		t.Error("mpegType")
	}
	if call(t, "mpegStream", v).AsInt() != 7 {
		t.Error("mpegStream")
	}
	if call(t, "mpegFrameType", v).AsChar() != 'I' {
		t.Error("mpegFrameType")
	}
	if call(t, "mpegSeq", v).AsInt() != 3 {
		t.Error("mpegSeq")
	}
	setup := []byte{MPEGSetup, 0, 0, 0, 7}
	if !raises("mpegFrameType", value.Blob(setup)) {
		t.Error("mpegFrameType on non-data must raise")
	}
}

// TestAudioDegradeLeavesInputIntact pins the copy-on-write contract the
// packet layer relies on: every degrade/restore primitive builds a
// fresh output slice and never writes through its input. (netsim's
// Packet.Clone shares payload bytes between clones, so an in-place
// rewrite here would corrupt other packets holding the same slice.)
func TestAudioDegradeLeavesInputIntact(t *testing.T) {
	b := make([]byte, AudioHeaderLen+4*4)
	b[0] = AudioStereo16
	b[4] = 3
	for i := AudioHeaderLen; i < len(b); i++ {
		b[i] = byte(i * 7)
	}
	orig := append([]byte(nil), b...)
	for _, fn := range []func([]byte) []byte{DegradeToMono16, DegradeToMono8, RestoreStereo16} {
		out := fn(b)
		if string(b) != string(orig) {
			t.Fatalf("degrade primitive mutated its input")
		}
		if len(out) > 0 && len(b) > 0 && &out[0] == &b[0] && out[0] != b[0] {
			t.Fatalf("degrade returned an aliasing slice with different content")
		}
	}
	// A format already at target quality may return the input unchanged
	// (that is sharing, not mutation) — but converting formats must not.
	mono := DegradeToMono16(b)
	if &mono[0] == &b[0] {
		t.Fatal("stereo->mono conversion must return a fresh slice")
	}
}
