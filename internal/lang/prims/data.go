// Data-manipulation primitives: hash tables, lists, strings, blobs,
// scalar conversions, and output. These are the §2.3 extensions that
// turned PLAN-P from a routing language into an ASP language.
package prims

import (
	"fmt"
	"strconv"
	"strings"

	"planp.dev/planp/internal/lang/ast"
	"planp.dev/planp/internal/lang/value"
)

// keyOK reports whether a type may be used as a hash-table key or list
// member test (equality types only).
func keyOK(t ast.Type) bool { return ast.IsEquality(t) }

func init() {
	// ---- Hash tables ----
	poly("mkTable", func(args []ast.Type, expected ast.Type) (ast.Type, error) {
		if len(args) != 1 || !ast.Equal(args[0], ast.IntT) {
			return nil, fmt.Errorf("mkTable expects one int argument")
		}
		tbl, ok := expected.(ast.Table)
		if !ok {
			return nil, fmt.Errorf("cannot infer hash_table element type here; bind mkTable where a hash_table type is expected")
		}
		return tbl, nil
	}, false, func(_ Context, a []value.Value) value.Value {
		n := a[0].AsInt()
		if n < 0 {
			value.Raise("mkTable: negative capacity %d", n)
		}
		return value.TableV(value.NewTable(int(n)))
	})

	poly("tput", func(args []ast.Type, _ ast.Type) (ast.Type, error) {
		if len(args) != 3 {
			return nil, fmt.Errorf("tput expects (table, key, value)")
		}
		tbl, ok := args[0].(ast.Table)
		if !ok {
			return nil, fmt.Errorf("tput: first argument must be a hash_table, got %s", args[0])
		}
		if !keyOK(args[1]) {
			return nil, fmt.Errorf("tput: key type %s is not an equality type", args[1])
		}
		if !ast.Equal(args[2], tbl.Elem) {
			return nil, fmt.Errorf("tput: value type %s does not match table element type %s", args[2], tbl.Elem)
		}
		return ast.UnitT, nil
	}, false, func(_ Context, a []value.Value) value.Value {
		a[0].AsTable().Put(a[1], a[2])
		return value.Unit
	})

	poly("tget", func(args []ast.Type, _ ast.Type) (ast.Type, error) {
		if len(args) != 2 {
			return nil, fmt.Errorf("tget expects (table, key)")
		}
		tbl, ok := args[0].(ast.Table)
		if !ok {
			return nil, fmt.Errorf("tget: first argument must be a hash_table, got %s", args[0])
		}
		if !keyOK(args[1]) {
			return nil, fmt.Errorf("tget: key type %s is not an equality type", args[1])
		}
		return tbl.Elem, nil
	}, false, func(_ Context, a []value.Value) value.Value {
		v, ok := a[0].AsTable().Get(a[1])
		if !ok {
			value.Raise("tget: key %s not found", a[1])
		}
		return v
	})

	poly("tmem", func(args []ast.Type, _ ast.Type) (ast.Type, error) {
		if len(args) != 2 {
			return nil, fmt.Errorf("tmem expects (table, key)")
		}
		if _, ok := args[0].(ast.Table); !ok {
			return nil, fmt.Errorf("tmem: first argument must be a hash_table, got %s", args[0])
		}
		if !keyOK(args[1]) {
			return nil, fmt.Errorf("tmem: key type %s is not an equality type", args[1])
		}
		return ast.BoolT, nil
	}, false, func(_ Context, a []value.Value) value.Value {
		_, ok := a[0].AsTable().Get(a[1])
		return value.Bool(ok)
	})

	poly("tdel", func(args []ast.Type, _ ast.Type) (ast.Type, error) {
		if len(args) != 2 {
			return nil, fmt.Errorf("tdel expects (table, key)")
		}
		if _, ok := args[0].(ast.Table); !ok {
			return nil, fmt.Errorf("tdel: first argument must be a hash_table, got %s", args[0])
		}
		if !keyOK(args[1]) {
			return nil, fmt.Errorf("tdel: key type %s is not an equality type", args[1])
		}
		return ast.UnitT, nil
	}, false, func(_ Context, a []value.Value) value.Value {
		a[0].AsTable().Delete(a[1])
		return value.Unit
	})

	poly("tsize", func(args []ast.Type, _ ast.Type) (ast.Type, error) {
		if len(args) != 1 {
			return nil, fmt.Errorf("tsize expects (table)")
		}
		if _, ok := args[0].(ast.Table); !ok {
			return nil, fmt.Errorf("tsize: argument must be a hash_table, got %s", args[0])
		}
		return ast.IntT, nil
	}, false, func(_ Context, a []value.Value) value.Value {
		return value.Int(int64(a[0].AsTable().Len()))
	})

	// ---- Lists ----
	poly("listNew", func(args []ast.Type, expected ast.Type) (ast.Type, error) {
		if len(args) != 0 {
			return nil, fmt.Errorf("listNew expects no arguments")
		}
		lst, ok := expected.(ast.List)
		if !ok {
			return nil, fmt.Errorf("cannot infer list element type here; bind listNew where a list type is expected")
		}
		return lst, nil
	}, false, func(_ Context, _ []value.Value) value.Value {
		return value.ListV(nil)
	})

	poly("cons", func(args []ast.Type, _ ast.Type) (ast.Type, error) {
		if len(args) != 2 {
			return nil, fmt.Errorf("cons expects (elem, list)")
		}
		lst, ok := args[1].(ast.List)
		if !ok {
			return nil, fmt.Errorf("cons: second argument must be a list, got %s", args[1])
		}
		if !ast.Equal(args[0], lst.Elem) {
			return nil, fmt.Errorf("cons: element type %s does not match list element type %s", args[0], lst.Elem)
		}
		return lst, nil
	}, false, func(_ Context, a []value.Value) value.Value {
		old := a[1].Vs
		elems := make([]value.Value, 0, len(old)+1)
		elems = append(elems, a[0])
		elems = append(elems, old...)
		return value.ListV(elems)
	})

	poly("hd", func(args []ast.Type, _ ast.Type) (ast.Type, error) {
		if len(args) != 1 {
			return nil, fmt.Errorf("hd expects (list)")
		}
		lst, ok := args[0].(ast.List)
		if !ok {
			return nil, fmt.Errorf("hd: argument must be a list, got %s", args[0])
		}
		return lst.Elem, nil
	}, false, func(_ Context, a []value.Value) value.Value {
		if len(a[0].Vs) == 0 {
			value.Raise("hd: empty list")
		}
		return a[0].Vs[0]
	})

	poly("tl", func(args []ast.Type, _ ast.Type) (ast.Type, error) {
		if len(args) != 1 {
			return nil, fmt.Errorf("tl expects (list)")
		}
		lst, ok := args[0].(ast.List)
		if !ok {
			return nil, fmt.Errorf("tl: argument must be a list, got %s", args[0])
		}
		return lst, nil
	}, false, func(_ Context, a []value.Value) value.Value {
		if len(a[0].Vs) == 0 {
			value.Raise("tl: empty list")
		}
		return value.ListV(a[0].Vs[1:])
	})

	poly("listLen", func(args []ast.Type, _ ast.Type) (ast.Type, error) {
		if len(args) != 1 {
			return nil, fmt.Errorf("listLen expects (list)")
		}
		if _, ok := args[0].(ast.List); !ok {
			return nil, fmt.Errorf("listLen: argument must be a list, got %s", args[0])
		}
		return ast.IntT, nil
	}, false, func(_ Context, a []value.Value) value.Value {
		return value.Int(int64(len(a[0].Vs)))
	})

	poly("listNth", func(args []ast.Type, _ ast.Type) (ast.Type, error) {
		if len(args) != 2 {
			return nil, fmt.Errorf("listNth expects (list, int)")
		}
		lst, ok := args[0].(ast.List)
		if !ok {
			return nil, fmt.Errorf("listNth: first argument must be a list, got %s", args[0])
		}
		if !ast.Equal(args[1], ast.IntT) {
			return nil, fmt.Errorf("listNth: index must be int, got %s", args[1])
		}
		return lst.Elem, nil
	}, false, func(_ Context, a []value.Value) value.Value {
		i := a[1].AsInt()
		if i < 0 || i >= int64(len(a[0].Vs)) {
			value.Raise("listNth: index %d out of range (list has %d elements)", i, len(a[0].Vs))
		}
		return a[0].Vs[i]
	})

	poly("isEmpty", func(args []ast.Type, _ ast.Type) (ast.Type, error) {
		if len(args) != 1 {
			return nil, fmt.Errorf("isEmpty expects (list)")
		}
		if _, ok := args[0].(ast.List); !ok {
			return nil, fmt.Errorf("isEmpty: argument must be a list, got %s", args[0])
		}
		return ast.BoolT, nil
	}, false, func(_ Context, a []value.Value) value.Value {
		return value.Bool(len(a[0].Vs) == 0)
	})

	poly("member", func(args []ast.Type, _ ast.Type) (ast.Type, error) {
		if len(args) != 2 {
			return nil, fmt.Errorf("member expects (elem, list)")
		}
		lst, ok := args[1].(ast.List)
		if !ok {
			return nil, fmt.Errorf("member: second argument must be a list, got %s", args[1])
		}
		if !ast.Equal(args[0], lst.Elem) {
			return nil, fmt.Errorf("member: element type %s does not match list element type %s", args[0], lst.Elem)
		}
		if !keyOK(args[0]) {
			return nil, fmt.Errorf("member: %s is not an equality type", args[0])
		}
		return ast.BoolT, nil
	}, false, func(_ Context, a []value.Value) value.Value {
		for _, e := range a[1].Vs {
			if value.Equal(a[0], e) {
				return value.Bool(true)
			}
		}
		return value.Bool(false)
	})

	// ---- Strings ----
	mono("strLen", types(ast.StringT), ast.IntT, false, func(_ Context, a []value.Value) value.Value {
		return value.Int(int64(len(a[0].AsStr())))
	})
	mono("subStr", types(ast.StringT, ast.IntT, ast.IntT), ast.StringT, false, func(_ Context, a []value.Value) value.Value {
		s := a[0].AsStr()
		from, n := a[1].AsInt(), a[2].AsInt()
		if from < 0 || n < 0 || from+n > int64(len(s)) {
			value.Raise("subStr: range [%d,%d) out of bounds for string of length %d", from, from+n, len(s))
		}
		return value.Str(s[from : from+n])
	})
	mono("charAt", types(ast.StringT, ast.IntT), ast.CharT, false, func(_ Context, a []value.Value) value.Value {
		s, i := a[0].AsStr(), a[1].AsInt()
		if i < 0 || i >= int64(len(s)) {
			value.Raise("charAt: index %d out of range for string of length %d", i, len(s))
		}
		return value.Char(s[i])
	})
	mono("strFind", types(ast.StringT, ast.StringT), ast.IntT, false, func(_ Context, a []value.Value) value.Value {
		return value.Int(int64(strings.Index(a[0].AsStr(), a[1].AsStr())))
	})
	mono("startsWith", types(ast.StringT, ast.StringT), ast.BoolT, false, func(_ Context, a []value.Value) value.Value {
		return value.Bool(strings.HasPrefix(a[0].AsStr(), a[1].AsStr()))
	})
	mono("contains", types(ast.StringT, ast.StringT), ast.BoolT, false, func(_ Context, a []value.Value) value.Value {
		return value.Bool(strings.Contains(a[0].AsStr(), a[1].AsStr()))
	})

	// ---- Scalar conversions ----
	mono("itos", types(ast.IntT), ast.StringT, false, func(_ Context, a []value.Value) value.Value {
		return value.Str(strconv.FormatInt(a[0].AsInt(), 10))
	})
	mono("stoi", types(ast.StringT), ast.IntT, false, func(_ Context, a []value.Value) value.Value {
		n, err := strconv.ParseInt(strings.TrimSpace(a[0].AsStr()), 10, 64)
		if err != nil {
			value.Raise("stoi: %q is not an integer", a[0].AsStr())
		}
		return value.Int(n)
	})
	mono("ctoi", types(ast.CharT), ast.IntT, false, func(_ Context, a []value.Value) value.Value {
		return value.Int(int64(a[0].AsChar()))
	})
	// charPos is the paper's name (figure 4) for the char → int code
	// conversion used to dispatch on command bytes.
	mono("charPos", types(ast.CharT), ast.IntT, false, func(_ Context, a []value.Value) value.Value {
		return value.Int(int64(a[0].AsChar()))
	})
	mono("itoc", types(ast.IntT), ast.CharT, false, func(_ Context, a []value.Value) value.Value {
		n := a[0].AsInt()
		if n < 0 || n > 255 {
			value.Raise("itoc: %d out of char range", n)
		}
		return value.Char(byte(n))
	})
	mono("min", types(ast.IntT, ast.IntT), ast.IntT, false, func(_ Context, a []value.Value) value.Value {
		x, y := a[0].AsInt(), a[1].AsInt()
		if x < y {
			return value.Int(x)
		}
		return value.Int(y)
	})
	mono("max", types(ast.IntT, ast.IntT), ast.IntT, false, func(_ Context, a []value.Value) value.Value {
		x, y := a[0].AsInt(), a[1].AsInt()
		if x > y {
			return value.Int(x)
		}
		return value.Int(y)
	})
	mono("abs", types(ast.IntT), ast.IntT, false, func(_ Context, a []value.Value) value.Value {
		x := a[0].AsInt()
		if x < 0 {
			return value.Int(-x)
		}
		return value.Int(x)
	})

	// ---- Blobs ----
	mono("blobLen", types(ast.BlobT), ast.IntT, false, func(_ Context, a []value.Value) value.Value {
		return value.Int(int64(len(a[0].AsBlob())))
	})
	mono("blobByte", types(ast.BlobT, ast.IntT), ast.IntT, false, func(_ Context, a []value.Value) value.Value {
		b, i := a[0].AsBlob(), a[1].AsInt()
		if i < 0 || i >= int64(len(b)) {
			value.Raise("blobByte: index %d out of range for blob of %d bytes", i, len(b))
		}
		return value.Int(int64(b[i]))
	})
	mono("blobSub", types(ast.BlobT, ast.IntT, ast.IntT), ast.BlobT, false, func(_ Context, a []value.Value) value.Value {
		b := a[0].AsBlob()
		from, n := a[1].AsInt(), a[2].AsInt()
		if from < 0 || n < 0 || from+n > int64(len(b)) {
			value.Raise("blobSub: range [%d,%d) out of bounds for blob of %d bytes", from, from+n, len(b))
		}
		out := make([]byte, n)
		copy(out, b[from:from+n])
		return value.Blob(out)
	})
	mono("blobCat", types(ast.BlobT, ast.BlobT), ast.BlobT, false, func(_ Context, a []value.Value) value.Value {
		x, y := a[0].AsBlob(), a[1].AsBlob()
		out := make([]byte, 0, len(x)+len(y))
		out = append(out, x...)
		out = append(out, y...)
		return value.Blob(out)
	})
	mono("blobSetByte", types(ast.BlobT, ast.IntT, ast.IntT), ast.BlobT, false, func(_ Context, a []value.Value) value.Value {
		b, i, v := a[0].AsBlob(), a[1].AsInt(), a[2].AsInt()
		if i < 0 || i >= int64(len(b)) {
			value.Raise("blobSetByte: index %d out of range for blob of %d bytes", i, len(b))
		}
		if v < 0 || v > 255 {
			value.Raise("blobSetByte: value %d out of byte range", v)
		}
		out := make([]byte, len(b))
		copy(out, b)
		out[i] = byte(v)
		return value.Blob(out)
	})
	mono("blobInt32", types(ast.BlobT, ast.IntT), ast.IntT, false, func(_ Context, a []value.Value) value.Value {
		b, i := a[0].AsBlob(), a[1].AsInt()
		if i < 0 || i+4 > int64(len(b)) {
			value.Raise("blobInt32: offset %d out of range for blob of %d bytes", i, len(b))
		}
		v := int64(b[i])<<24 | int64(b[i+1])<<16 | int64(b[i+2])<<8 | int64(b[i+3])
		return value.Int(int64(int32(v)))
	})
	mono("blobPutInt32", types(ast.BlobT, ast.IntT, ast.IntT), ast.BlobT, false, func(_ Context, a []value.Value) value.Value {
		b, i, v := a[0].AsBlob(), a[1].AsInt(), a[2].AsInt()
		if i < 0 || i+4 > int64(len(b)) {
			value.Raise("blobPutInt32: offset %d out of range for blob of %d bytes", i, len(b))
		}
		out := make([]byte, len(b))
		copy(out, b)
		u := uint32(int32(v))
		out[i], out[i+1], out[i+2], out[i+3] = byte(u>>24), byte(u>>16), byte(u>>8), byte(u)
		return value.Blob(out)
	})
	mono("blobFromString", types(ast.StringT), ast.BlobT, false, func(_ Context, a []value.Value) value.Value {
		return value.Blob([]byte(a[0].AsStr()))
	})
	mono("blobToString", types(ast.BlobT), ast.StringT, false, func(_ Context, a []value.Value) value.Value {
		return value.Str(string(a[0].AsBlob()))
	})

	// ---- Output and delivery ----
	printable := func(name string) func(args []ast.Type, _ ast.Type) (ast.Type, error) {
		return func(args []ast.Type, _ ast.Type) (ast.Type, error) {
			if len(args) != 1 {
				return nil, fmt.Errorf("%s expects one argument", name)
			}
			if _, isTable := args[0].(ast.Table); isTable {
				return nil, fmt.Errorf("%s: hash tables are not printable", name)
			}
			return ast.UnitT, nil
		}
	}
	poly("print", printable("print"), true, func(ctx Context, a []value.Value) value.Value {
		ctx.Print(a[0].String())
		return value.Unit
	})
	poly("println", printable("println"), true, func(ctx Context, a []value.Value) value.Value {
		ctx.Print(a[0].String() + "\n")
		return value.Unit
	})
	poly("deliver", func(args []ast.Type, _ ast.Type) (ast.Type, error) {
		if len(args) != 1 {
			return nil, fmt.Errorf("deliver expects one packet argument")
		}
		return ast.UnitT, nil
	}, true, func(ctx Context, a []value.Value) value.Value {
		ctx.Deliver(a[0])
		return value.Unit
	})
}
