// Package prims defines the PLAN-P primitive library: the built-in
// functions available to protocols. The paper extends the original
// routing-oriented primitive set with data-manipulation primitives
// (audio degradation, payload access, hash tables) that make ASPs
// possible (§2.3); this package contains both generations.
//
// Primitives are registered in a global, immutable registry built at
// package init. The type checker resolves calls to registry indices;
// engines invoke primitives through those indices, so adding a primitive
// is exactly the two-step process the paper describes: one function for
// the computation, one for the result type.
package prims

import (
	"fmt"

	"planp.dev/planp/internal/lang/ast"
	"planp.dev/planp/internal/lang/value"
)

// Context is the runtime environment a primitive executes in. The ASP
// runtime (internal/planprt) provides the real implementation; tests use
// lightweight fakes.
type Context interface {
	// OnRemote enqueues pkt for transmission, routed by the IP
	// destination in its header tuple, to be processed by channel
	// chanName at the next PLAN-P hop.
	OnRemote(chanName string, pkt value.Value)
	// OnNeighbor transmits pkt one hop to every directly connected
	// neighbor (link-local flooding), processed by chanName there.
	OnNeighbor(chanName string, pkt value.Value)
	// Deliver passes pkt up to the local application, terminating
	// PLAN-P processing for it.
	Deliver(pkt value.Value)
	// Print emits program output (the print/println primitives).
	Print(s string)
	// ThisHost is the address of the executing node.
	ThisHost() value.Host
	// Now is the current virtual time in milliseconds.
	Now() int64
	// Rand returns a deterministic pseudo-random integer in [0, n).
	Rand(n int64) int64
	// LinkLoadTo returns the utilization (percent, 0-100) of the
	// outgoing link toward dst, averaged over the monitor window.
	LinkLoadTo(dst value.Host) int64
	// LinkBandwidthTo returns the capacity in bits/s of the outgoing
	// link toward dst.
	LinkBandwidthTo(dst value.Host) int64
}

// Prim is one primitive: its signature and implementation.
type Prim struct {
	Name string

	// Params/Ret describe a monomorphic signature. For primitives whose
	// type depends on arguments or on the expected type (mkTable, tget,
	// print, ...), TypeFn is set instead and Params is nil.
	Params []ast.Type
	Ret    ast.Type

	// TypeFn computes the result type from argument types and the
	// expected type at the call site (nil when unconstrained). It
	// returns an error for ill-typed calls.
	TypeFn func(args []ast.Type, expected ast.Type) (ast.Type, error)

	// Fn executes the primitive. It may raise a PLAN-P exception via
	// value.Raise.
	Fn func(ctx Context, args []value.Value) value.Value

	// Effectful primitives may not be considered pure by analyses.
	Effectful bool
}

var (
	registry []Prim
	byName   = map[string]int{}
)

// register appends a primitive at package init. Duplicate names are a
// programming error and panic immediately.
func register(p Prim) {
	if _, dup := byName[p.Name]; dup {
		panic("planp/prims: duplicate primitive " + p.Name)
	}
	byName[p.Name] = len(registry)
	registry = append(registry, p)
}

// Lookup returns the registry index for name, or -1.
func Lookup(name string) int {
	if i, ok := byName[name]; ok {
		return i
	}
	return -1
}

// Get returns the primitive at index i.
func Get(i int) *Prim { return &registry[i] }

// Count returns the number of registered primitives.
func Count() int { return len(registry) }

// Names returns all primitive names (for documentation and tooling).
func Names() []string {
	out := make([]string, len(registry))
	for i, p := range registry {
		out[i] = p.Name
	}
	return out
}

// TypeOf computes the result type of calling primitive i with the given
// argument types under the given expected type.
func TypeOf(i int, args []ast.Type, expected ast.Type) (ast.Type, error) {
	p := &registry[i]
	if p.TypeFn != nil {
		return p.TypeFn(args, expected)
	}
	if len(args) != len(p.Params) {
		return nil, fmt.Errorf("%s expects %d argument(s), got %d", p.Name, len(p.Params), len(args))
	}
	for j, want := range p.Params {
		if !ast.Equal(args[j], want) {
			return nil, fmt.Errorf("%s argument %d: expected %s, got %s", p.Name, j+1, want, args[j])
		}
	}
	return p.Ret, nil
}

// mono registers a primitive with a fixed signature.
func mono(name string, params []ast.Type, ret ast.Type, effectful bool,
	fn func(ctx Context, args []value.Value) value.Value) {
	register(Prim{Name: name, Params: params, Ret: ret, Fn: fn, Effectful: effectful})
}

// poly registers a primitive whose typing needs a TypeFn.
func poly(name string, typeFn func(args []ast.Type, expected ast.Type) (ast.Type, error),
	effectful bool, fn func(ctx Context, args []value.Value) value.Value) {
	register(Prim{Name: name, TypeFn: typeFn, Fn: fn, Effectful: effectful})
}

func types(ts ...ast.Type) []ast.Type { return ts }
