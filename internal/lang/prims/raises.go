// Exception metadata used by the guaranteed-delivery analysis
// (internal/lang/verify): which primitives can raise a PLAN-P exception.
// A channel body that might raise outside a try/handle cannot be proven
// to deliver every packet (§2.1).
package prims

// raising lists every primitive whose Fn may call value.Raise. The
// TestRaisesSetComplete test in this package guards against drift by
// probing each primitive with adversarial inputs.
var raising = map[string]bool{
	// tables and lists
	"mkTable": true, "tget": true,
	"hd": true, "tl": true, "listNth": true,
	// strings and conversions
	"subStr": true, "charAt": true, "stoi": true, "itoc": true,
	// blobs
	"blobByte": true, "blobSub": true, "blobSetByte": true,
	"blobInt32": true, "blobPutInt32": true,
	// headers
	"ipTTLSet": true, "ipLenSet": true, "mkIP": true,
	"tcpSrcSet": true, "tcpDstSet": true,
	"udpSrcSet": true, "udpDstSet": true, "mkUDP": true,
	"intToHost": true,
	// environment
	"rand": true,
	// media
	"audioFormat": true, "audioSeq": true, "audioFrames": true,
	"audioToMono16": true, "audioToMono8": true, "audioRestore": true,
	"mpegType": true, "mpegStream": true, "mpegFrameType": true, "mpegSeq": true,
}

// CanRaise reports whether primitive i may raise a PLAN-P exception.
func CanRaise(i int) bool { return raising[registry[i].Name] }
