// Header-access primitives: the packet-inspection and rewriting layer of
// PLAN-P. Headers are immutable values, so every *Set primitive returns a
// fresh header; this mirrors the functional packet treatment in the
// paper's listings (ipDestSet in figure 2).
package prims

import (
	"planp.dev/planp/internal/lang/ast"
	"planp.dev/planp/internal/lang/value"
)

func init() {
	// ---- IP header ----
	mono("ipSrc", types(ast.IPT), ast.HostT, false, func(_ Context, a []value.Value) value.Value {
		return value.HostV(a[0].AsIP().Src)
	})
	mono("ipDst", types(ast.IPT), ast.HostT, false, func(_ Context, a []value.Value) value.Value {
		return value.HostV(a[0].AsIP().Dst)
	})
	mono("ipProto", types(ast.IPT), ast.IntT, false, func(_ Context, a []value.Value) value.Value {
		return value.Int(int64(a[0].AsIP().Proto))
	})
	mono("ipTTL", types(ast.IPT), ast.IntT, false, func(_ Context, a []value.Value) value.Value {
		return value.Int(int64(a[0].AsIP().TTL))
	})
	mono("ipLen", types(ast.IPT), ast.IntT, false, func(_ Context, a []value.Value) value.Value {
		return value.Int(int64(a[0].AsIP().Len))
	})
	mono("ipID", types(ast.IPT), ast.IntT, false, func(_ Context, a []value.Value) value.Value {
		return value.Int(int64(a[0].AsIP().ID))
	})
	mono("ipSrcSet", types(ast.IPT, ast.HostT), ast.IPT, false, func(_ Context, a []value.Value) value.Value {
		h := *a[0].AsIP()
		h.Src = a[1].AsHost()
		return value.IP(&h)
	})
	mono("ipDestSet", types(ast.IPT, ast.HostT), ast.IPT, false, func(_ Context, a []value.Value) value.Value {
		h := *a[0].AsIP()
		h.Dst = a[1].AsHost()
		return value.IP(&h)
	})
	mono("ipTTLSet", types(ast.IPT, ast.IntT), ast.IPT, false, func(_ Context, a []value.Value) value.Value {
		h := *a[0].AsIP()
		ttl := a[1].AsInt()
		if ttl < 0 || ttl > 255 {
			value.Raise("ipTTLSet: TTL %d out of range", ttl)
		}
		h.TTL = uint8(ttl)
		return value.IP(&h)
	})
	mono("ipLenSet", types(ast.IPT, ast.IntT), ast.IPT, false, func(_ Context, a []value.Value) value.Value {
		h := *a[0].AsIP()
		n := a[1].AsInt()
		if n < 0 {
			value.Raise("ipLenSet: negative length %d", n)
		}
		h.Len = int(n)
		return value.IP(&h)
	})
	mono("mkIP", types(ast.HostT, ast.HostT, ast.IntT), ast.IPT, false, func(_ Context, a []value.Value) value.Value {
		proto := a[2].AsInt()
		if proto < 0 || proto > 255 {
			value.Raise("mkIP: protocol %d out of range", proto)
		}
		return value.IP(&value.IPHeader{Src: a[0].AsHost(), Dst: a[1].AsHost(), Proto: uint8(proto), TTL: 64})
	})

	// ---- TCP header ----
	mono("tcpSrc", types(ast.TCPT), ast.IntT, false, func(_ Context, a []value.Value) value.Value {
		return value.Int(int64(a[0].AsTCP().SrcPort))
	})
	mono("tcpDst", types(ast.TCPT), ast.IntT, false, func(_ Context, a []value.Value) value.Value {
		return value.Int(int64(a[0].AsTCP().DstPort))
	})
	mono("tcpSeq", types(ast.TCPT), ast.IntT, false, func(_ Context, a []value.Value) value.Value {
		return value.Int(int64(a[0].AsTCP().Seq))
	})
	mono("tcpAck", types(ast.TCPT), ast.IntT, false, func(_ Context, a []value.Value) value.Value {
		return value.Int(int64(a[0].AsTCP().Ack))
	})
	mono("tcpWindow", types(ast.TCPT), ast.IntT, false, func(_ Context, a []value.Value) value.Value {
		return value.Int(int64(a[0].AsTCP().Window))
	})
	mono("tcpSynFlag", types(ast.TCPT), ast.BoolT, false, func(_ Context, a []value.Value) value.Value {
		return value.Bool(a[0].AsTCP().Flags&value.TCPSyn != 0)
	})
	mono("tcpAckFlag", types(ast.TCPT), ast.BoolT, false, func(_ Context, a []value.Value) value.Value {
		return value.Bool(a[0].AsTCP().Flags&value.TCPAck != 0)
	})
	mono("tcpFinFlag", types(ast.TCPT), ast.BoolT, false, func(_ Context, a []value.Value) value.Value {
		return value.Bool(a[0].AsTCP().Flags&value.TCPFin != 0)
	})
	mono("tcpRstFlag", types(ast.TCPT), ast.BoolT, false, func(_ Context, a []value.Value) value.Value {
		return value.Bool(a[0].AsTCP().Flags&value.TCPRst != 0)
	})
	mono("tcpSrcSet", types(ast.TCPT, ast.IntT), ast.TCPT, false, func(_ Context, a []value.Value) value.Value {
		h := *a[0].AsTCP()
		h.SrcPort = checkPort("tcpSrcSet", a[1].AsInt())
		return value.TCP(&h)
	})
	mono("tcpDstSet", types(ast.TCPT, ast.IntT), ast.TCPT, false, func(_ Context, a []value.Value) value.Value {
		h := *a[0].AsTCP()
		h.DstPort = checkPort("tcpDstSet", a[1].AsInt())
		return value.TCP(&h)
	})

	// ---- UDP header ----
	mono("udpSrc", types(ast.UDPT), ast.IntT, false, func(_ Context, a []value.Value) value.Value {
		return value.Int(int64(a[0].AsUDP().SrcPort))
	})
	mono("udpDst", types(ast.UDPT), ast.IntT, false, func(_ Context, a []value.Value) value.Value {
		return value.Int(int64(a[0].AsUDP().DstPort))
	})
	mono("udpLen", types(ast.UDPT), ast.IntT, false, func(_ Context, a []value.Value) value.Value {
		return value.Int(int64(a[0].AsUDP().Len))
	})
	mono("udpSrcSet", types(ast.UDPT, ast.IntT), ast.UDPT, false, func(_ Context, a []value.Value) value.Value {
		h := *a[0].AsUDP()
		h.SrcPort = checkPort("udpSrcSet", a[1].AsInt())
		return value.UDP(&h)
	})
	mono("udpDstSet", types(ast.UDPT, ast.IntT), ast.UDPT, false, func(_ Context, a []value.Value) value.Value {
		h := *a[0].AsUDP()
		h.DstPort = checkPort("udpDstSet", a[1].AsInt())
		return value.UDP(&h)
	})
	mono("mkUDP", types(ast.IntT, ast.IntT), ast.UDPT, false, func(_ Context, a []value.Value) value.Value {
		return value.UDP(&value.UDPHeader{
			SrcPort: checkPort("mkUDP", a[0].AsInt()),
			DstPort: checkPort("mkUDP", a[1].AsInt()),
		})
	})

	// ---- Host conversions ----
	mono("hostToInt", types(ast.HostT), ast.IntT, false, func(_ Context, a []value.Value) value.Value {
		return value.Int(int64(a[0].AsHost()))
	})
	mono("intToHost", types(ast.IntT), ast.HostT, false, func(_ Context, a []value.Value) value.Value {
		n := a[0].AsInt()
		if n < 0 || n > 0xFFFFFFFF {
			value.Raise("intToHost: %d out of range", n)
		}
		return value.HostV(value.Host(n))
	})
	mono("hostToString", types(ast.HostT), ast.StringT, false, func(_ Context, a []value.Value) value.Value {
		return value.Str(a[0].AsHost().String())
	})

	// ---- Network environment (effectful / runtime-dependent) ----
	mono("thisHost", nil, ast.HostT, false, func(ctx Context, _ []value.Value) value.Value {
		return value.HostV(ctx.ThisHost())
	})
	mono("time", nil, ast.IntT, false, func(ctx Context, _ []value.Value) value.Value {
		return value.Int(ctx.Now())
	})
	mono("rand", types(ast.IntT), ast.IntT, false, func(ctx Context, a []value.Value) value.Value {
		n := a[0].AsInt()
		if n <= 0 {
			value.Raise("rand: bound must be positive, got %d", n)
		}
		return value.Int(ctx.Rand(n))
	})
	mono("linkLoadTo", types(ast.HostT), ast.IntT, false, func(ctx Context, a []value.Value) value.Value {
		return value.Int(ctx.LinkLoadTo(a[0].AsHost()))
	})
	mono("linkBandwidthTo", types(ast.HostT), ast.IntT, false, func(ctx Context, a []value.Value) value.Value {
		return value.Int(ctx.LinkBandwidthTo(a[0].AsHost()))
	})
}

func checkPort(prim string, p int64) uint16 {
	if p < 0 || p > 65535 {
		value.Raise("%s: port %d out of range", prim, p)
	}
	return uint16(p)
}
