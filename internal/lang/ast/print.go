// AST pretty-printer: renders programs back to parseable PLAN-P source.
// Used by the planp CLI's fmt mode and by the parser's round-trip
// property tests (parse ∘ print ∘ parse is the identity up to
// positions).
package ast

import (
	"fmt"
	"strconv"
	"strings"
)

// Print renders a program as formatted PLAN-P source.
func Print(p *Program) string {
	var sb strings.Builder
	for i, d := range p.Decls {
		if i > 0 {
			sb.WriteByte('\n')
		}
		printDecl(&sb, d)
	}
	return sb.String()
}

func printDecl(sb *strings.Builder, d Decl) {
	switch d := d.(type) {
	case *ValDecl:
		fmt.Fprintf(sb, "val %s : %s = %s\n", d.Name, d.Type, ExprString(d.Init))
	case *FunDecl:
		fmt.Fprintf(sb, "fun %s(%s) : %s =\n  %s\n", d.Name, params(d.Params), d.Ret,
			indent(ExprString(d.Body), 2))
	case *ChannelDecl:
		fmt.Fprintf(sb, "channel %s(%s)", d.Name, params(d.Params))
		if d.InitState != nil {
			fmt.Fprintf(sb, "\ninitstate %s", ExprString(d.InitState))
		}
		fmt.Fprintf(sb, " is\n  %s\n", indent(ExprString(d.Body), 2))
	}
}

func params(ps []Param) string {
	parts := make([]string, len(ps))
	for i, p := range ps {
		parts[i] = fmt.Sprintf("%s : %s", p.Name, p.Type)
	}
	return strings.Join(parts, ", ")
}

// indent shifts continuation lines of s by n spaces.
func indent(s string, n int) string {
	pad := strings.Repeat(" ", n)
	return strings.ReplaceAll(s, "\n", "\n"+pad)
}

// ExprString renders one expression as source text. Output is fully
// parenthesized where precedence could be ambiguous, so it re-parses to
// the same tree.
func ExprString(e Expr) string {
	var sb strings.Builder
	printExpr(&sb, e)
	return sb.String()
}

func printExpr(sb *strings.Builder, e Expr) {
	switch e := e.(type) {
	case *IntLit:
		// Negative literals re-parse via the parser's unary-minus fold.
		sb.WriteString(strconv.FormatInt(e.Value, 10))
	case *BoolLit:
		sb.WriteString(strconv.FormatBool(e.Value))
	case *StringLit:
		sb.WriteString(quote(e.Value))
	case *CharLit:
		sb.WriteString(quoteChar(e.Value))
	case *UnitLit:
		sb.WriteString("()")
	case *HostLit:
		sb.WriteString(e.Text)
	case *Var:
		sb.WriteString(e.Name)
	case *ChanRef:
		sb.WriteString(e.Name)
	case *Proj:
		fmt.Fprintf(sb, "#%d ", e.Index)
		printAtom(sb, e.Tuple)
	case *Call:
		sb.WriteString(e.Name)
		sb.WriteByte('(')
		for i, a := range e.Args {
			if i > 0 {
				sb.WriteString(", ")
			}
			printExpr(sb, a)
		}
		sb.WriteByte(')')
	case *Let:
		sb.WriteString("let\n")
		for _, b := range e.Binds {
			fmt.Fprintf(sb, "  val %s : %s = %s\n", b.Name, b.Type, ExprString(b.Init))
		}
		fmt.Fprintf(sb, "in\n  %s\nend", indent(ExprString(e.Body), 2))
	case *If:
		fmt.Fprintf(sb, "if %s then\n  %s\nelse\n  %s",
			ExprString(e.Cond), indent(ExprString(e.Then), 2), indent(ExprString(e.Else), 2))
	case *Seq:
		sb.WriteByte('(')
		for i, sub := range e.Exprs {
			if i > 0 {
				sb.WriteString(";\n ")
			}
			sb.WriteString(indent(ExprString(sub), 1))
		}
		sb.WriteByte(')')
	case *TupleExpr:
		sb.WriteByte('(')
		for i, sub := range e.Elems {
			if i > 0 {
				sb.WriteString(", ")
			}
			printExpr(sb, sub)
		}
		sb.WriteByte(')')
	case *Unary:
		if e.Op == "not" {
			sb.WriteString("not ")
		} else {
			sb.WriteString("- ")
		}
		printAtom(sb, e.X)
	case *Binary:
		printAtom(sb, e.L)
		fmt.Fprintf(sb, " %s ", e.Op)
		printAtom(sb, e.R)
	case *Try:
		fmt.Fprintf(sb, "try %s handle %s end", ExprString(e.Body), ExprString(e.Handler))
	case *Raise:
		sb.WriteString("raise ")
		printAtom(sb, e.Msg)
	default:
		fmt.Fprintf(sb, "/*?%T*/", e)
	}
}

// printAtom parenthesizes anything that is not syntactically atomic.
func printAtom(sb *strings.Builder, e Expr) {
	switch e.(type) {
	case *IntLit, *BoolLit, *StringLit, *CharLit, *UnitLit, *HostLit,
		*Var, *ChanRef, *Call, *TupleExpr, *Seq, *Proj:
		printExpr(sb, e)
	default:
		sb.WriteByte('(')
		printExpr(sb, e)
		sb.WriteByte(')')
	}
}

func quote(s string) string {
	var sb strings.Builder
	sb.WriteByte('"')
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '\n':
			sb.WriteString(`\n`)
		case '\t':
			sb.WriteString(`\t`)
		case '\r':
			sb.WriteString(`\r`)
		case '\\':
			sb.WriteString(`\\`)
		case '"':
			sb.WriteString(`\"`)
		case 0:
			sb.WriteString(`\0`)
		default:
			sb.WriteByte(c)
		}
	}
	sb.WriteByte('"')
	return sb.String()
}

func quoteChar(c byte) string {
	switch c {
	case '\n':
		return `'\n'`
	case '\t':
		return `'\t'`
	case '\r':
		return `'\r'`
	case '\\':
		return `'\\'`
	case '\'':
		return `'\''`
	case 0:
		return `'\0'`
	default:
		return "'" + string(c) + "'"
	}
}
