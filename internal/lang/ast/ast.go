// Package ast defines the abstract syntax tree for PLAN-P programs and
// the syntax of PLAN-P types.
//
// A program is a sequence of declarations: top-level value bindings,
// (non-recursive) function definitions, and channel definitions. Channel
// functions receive the protocol state, the channel state, and the packet,
// and must evaluate to the pair of new states (the paper's execution
// model, §2).
package ast

import (
	"fmt"
	"strings"

	"planp.dev/planp/internal/lang/token"
)

// ---------------------------------------------------------------------------
// Types

// Type is the syntax of a PLAN-P type. Types are structural: two types are
// the same iff Equal reports true.
type Type interface {
	fmt.Stringer
	typ()
}

// BaseKind enumerates the built-in scalar and header types.
type BaseKind int

// Base type kinds.
const (
	TInt BaseKind = iota + 1
	TBool
	TString
	TChar
	TUnit
	THost
	TBlob // uninterpreted packet payload
	TIP   // IP header
	TTCP  // TCP header
	TUDP  // UDP header
)

var baseNames = map[BaseKind]string{
	TInt:    "int",
	TBool:   "bool",
	TString: "string",
	TChar:   "char",
	TUnit:   "unit",
	THost:   "host",
	TBlob:   "blob",
	TIP:     "ip",
	TTCP:    "tcp",
	TUDP:    "udp",
}

// BaseTypes maps type names as written in source to their kind.
var BaseTypes = map[string]BaseKind{
	"int": TInt, "bool": TBool, "string": TString, "char": TChar,
	"unit": TUnit, "host": THost, "blob": TBlob,
	"ip": TIP, "tcp": TTCP, "udp": TUDP,
}

// Base is a built-in type such as int or ip.
type Base struct{ Kind BaseKind }

func (Base) typ() {}

func (b Base) String() string { return baseNames[b.Kind] }

// Tuple is a product type t1*t2*...*tn with n >= 2.
type Tuple struct{ Elems []Type }

func (Tuple) typ() {}

func (t Tuple) String() string {
	parts := make([]string, len(t.Elems))
	for i, e := range t.Elems {
		if _, ok := e.(Tuple); ok {
			parts[i] = "(" + e.String() + ")"
		} else {
			parts[i] = e.String()
		}
	}
	return strings.Join(parts, "*")
}

// Table is a hash table type "(elem) hash_table". Keys are any equality
// type; the element type is the type of stored values.
type Table struct{ Elem Type }

func (Table) typ() {}

func (t Table) String() string { return "(" + t.Elem.String() + ") hash_table" }

// List is a homogeneous list type "(elem) list".
type List struct{ Elem Type }

func (List) typ() {}

func (t List) String() string { return "(" + t.Elem.String() + ") list" }

// Convenience singletons for the base types.
var (
	IntT    = Base{Kind: TInt}
	BoolT   = Base{Kind: TBool}
	StringT = Base{Kind: TString}
	CharT   = Base{Kind: TChar}
	UnitT   = Base{Kind: TUnit}
	HostT   = Base{Kind: THost}
	BlobT   = Base{Kind: TBlob}
	IPT     = Base{Kind: TIP}
	TCPT    = Base{Kind: TTCP}
	UDPT    = Base{Kind: TUDP}
)

// Equal reports whether two types are structurally identical.
func Equal(a, b Type) bool {
	switch a := a.(type) {
	case Base:
		b, ok := b.(Base)
		return ok && a.Kind == b.Kind
	case Tuple:
		b, ok := b.(Tuple)
		if !ok || len(a.Elems) != len(b.Elems) {
			return false
		}
		for i := range a.Elems {
			if !Equal(a.Elems[i], b.Elems[i]) {
				return false
			}
		}
		return true
	case Table:
		b, ok := b.(Table)
		return ok && Equal(a.Elem, b.Elem)
	case List:
		b, ok := b.(List)
		return ok && Equal(a.Elem, b.Elem)
	default:
		return false
	}
}

// IsEquality reports whether values of type t may be compared with = / <>
// and used as hash-table keys. Tables are mutable references and are not
// equality types; blobs and headers are compared by content.
func IsEquality(t Type) bool {
	switch t := t.(type) {
	case Base:
		return true // all base types (including headers and blobs) support equality
	case Tuple:
		for _, e := range t.Elems {
			if !IsEquality(e) {
				return false
			}
		}
		return true
	case List:
		return IsEquality(t.Elem)
	case Table:
		return false
	default:
		return false
	}
}

// ---------------------------------------------------------------------------
// Expressions

// Expr is a PLAN-P expression node. Pos is the position of its first
// token; End is one column past its last token (the parser fills both,
// and End falls back to Pos on hand-built nodes with no span).
type Expr interface {
	Pos() token.Pos
	End() token.Pos
	expr()
}

// endOr returns end when the parser recorded one, else the start
// position, so diagnostics on synthesized nodes still point somewhere.
func endOr(end, at token.Pos) token.Pos {
	if end.IsValid() {
		return end
	}
	return at
}

// IntLit is an integer literal.
type IntLit struct {
	Value int64
	At    token.Pos
	EndAt token.Pos
}

// BoolLit is true or false.
type BoolLit struct {
	Value bool
	At    token.Pos
	EndAt token.Pos
}

// StringLit is a double-quoted string literal.
type StringLit struct {
	Value string
	At    token.Pos
	EndAt token.Pos
}

// CharLit is a character literal.
type CharLit struct {
	Value byte
	At    token.Pos
	EndAt token.Pos
}

// UnitLit is the value (), written as an empty parenthesis pair.
type UnitLit struct {
	At    token.Pos
	EndAt token.Pos
}

// HostLit is a dotted-quad IP address literal such as 131.254.60.81.
type HostLit struct {
	Addr  uint32 // big-endian packed IPv4 address
	Text  string
	At    token.Pos
	EndAt token.Pos
}

// Var is an identifier reference.
type Var struct {
	Name  string
	At    token.Pos
	EndAt token.Pos

	// Slot is filled by the type checker: the resolved lexical slot in
	// the flat frame layout, used by the compiled engines. -1 for
	// top-level bindings (resolved through Global).
	Slot   int
	Global int // index into program globals when Slot == -1
}

// Proj is tuple projection "#n e" (1-based, per ML convention).
type Proj struct {
	Index int // 1-based
	Tuple Expr
	At    token.Pos
	EndAt token.Pos
}

// Call is a call to a primitive, a user fun, or a channel-valued argument
// position (OnRemote's first argument is a channel name and is treated
// specially by the checker).
type Call struct {
	Name  string
	Args  []Expr
	At    token.Pos
	EndAt token.Pos

	// Resolution, filled by the type checker.
	PrimIndex int // >= 0 when calling a primitive
	FunIndex  int // >= 0 when calling a user fun

	// SendPacket is filled by the type checker on OnRemote/OnNeighbor
	// calls: the resolved packet type of the send. Signature extraction
	// (typecheck.Signature) and the verifier's duplication analysis read
	// it instead of re-deriving the type.
	SendPacket Type
}

// ChanRef is a channel name used as an argument to OnRemote/OnNeighbor.
type ChanRef struct {
	Name  string
	At    token.Pos
	EndAt token.Pos
}

// Let is "let val x1 : t1 = e1 ... in body end".
type Let struct {
	Binds []LetBind
	Body  Expr
	At    token.Pos
	EndAt token.Pos
}

// LetBind is one "val x : t = e" binding inside a let.
type LetBind struct {
	Name string
	Type Type
	Init Expr
	Slot int // filled by the checker
}

// If is "if cond then a else b". Both arms are mandatory (expressions,
// not statements).
type If struct {
	Cond  Expr
	Then  Expr
	Else  Expr
	At    token.Pos
	EndAt token.Pos
}

// Seq is "(e1; e2; ...; en)" — evaluates all, yields the last.
type Seq struct {
	Exprs []Expr
	At    token.Pos
	EndAt token.Pos
}

// TupleExpr is "(e1, e2, ..., en)" with n >= 2.
type TupleExpr struct {
	Elems []Expr
	At    token.Pos
	EndAt token.Pos
}

// Unary is "not e" or unary minus.
type Unary struct {
	Op    string // "not" | "-"
	X     Expr
	At    token.Pos
	EndAt token.Pos
}

// Binary is a binary operation. Op is the source operator: one of
// = <> < <= > >= + - * / mod ^ andalso orelse.
type Binary struct {
	Op    string
	L, R  Expr
	At    token.Pos
	EndAt token.Pos

	// OperandType is filled by the checker for = and <> so the engines
	// can pick a comparison routine.
	OperandType Type
}

// Try is "try e handle h end": evaluates e; if any PLAN-P exception is
// raised, evaluates h instead. Both must have the same type.
type Try struct {
	Body    Expr
	Handler Expr
	At      token.Pos
	EndAt   token.Pos
}

// Raise is "raise s": raises a PLAN-P exception carrying message s.
// A raise expression has any type required by context.
type Raise struct {
	Msg   Expr // must be string
	At    token.Pos
	EndAt token.Pos
}

func (e *IntLit) Pos() token.Pos    { return e.At }
func (e *BoolLit) Pos() token.Pos   { return e.At }
func (e *StringLit) Pos() token.Pos { return e.At }
func (e *CharLit) Pos() token.Pos   { return e.At }
func (e *UnitLit) Pos() token.Pos   { return e.At }
func (e *HostLit) Pos() token.Pos   { return e.At }
func (e *Var) Pos() token.Pos       { return e.At }
func (e *Proj) Pos() token.Pos      { return e.At }
func (e *Call) Pos() token.Pos      { return e.At }
func (e *ChanRef) Pos() token.Pos   { return e.At }
func (e *Let) Pos() token.Pos       { return e.At }
func (e *If) Pos() token.Pos        { return e.At }
func (e *Seq) Pos() token.Pos       { return e.At }
func (e *TupleExpr) Pos() token.Pos { return e.At }
func (e *Unary) Pos() token.Pos     { return e.At }
func (e *Binary) Pos() token.Pos    { return e.At }
func (e *Try) Pos() token.Pos       { return e.At }
func (e *Raise) Pos() token.Pos     { return e.At }

func (e *IntLit) End() token.Pos    { return endOr(e.EndAt, e.At) }
func (e *BoolLit) End() token.Pos   { return endOr(e.EndAt, e.At) }
func (e *StringLit) End() token.Pos { return endOr(e.EndAt, e.At) }
func (e *CharLit) End() token.Pos   { return endOr(e.EndAt, e.At) }
func (e *UnitLit) End() token.Pos   { return endOr(e.EndAt, e.At) }
func (e *HostLit) End() token.Pos   { return endOr(e.EndAt, e.At) }
func (e *Var) End() token.Pos       { return endOr(e.EndAt, e.At) }
func (e *Proj) End() token.Pos      { return endOr(e.EndAt, e.At) }
func (e *Call) End() token.Pos      { return endOr(e.EndAt, e.At) }
func (e *ChanRef) End() token.Pos   { return endOr(e.EndAt, e.At) }
func (e *Let) End() token.Pos       { return endOr(e.EndAt, e.At) }
func (e *If) End() token.Pos        { return endOr(e.EndAt, e.At) }
func (e *Seq) End() token.Pos       { return endOr(e.EndAt, e.At) }
func (e *TupleExpr) End() token.Pos { return endOr(e.EndAt, e.At) }
func (e *Unary) End() token.Pos     { return endOr(e.EndAt, e.At) }
func (e *Binary) End() token.Pos    { return endOr(e.EndAt, e.At) }
func (e *Try) End() token.Pos       { return endOr(e.EndAt, e.At) }
func (e *Raise) End() token.Pos     { return endOr(e.EndAt, e.At) }

func (*IntLit) expr()    {}
func (*BoolLit) expr()   {}
func (*StringLit) expr() {}
func (*CharLit) expr()   {}
func (*UnitLit) expr()   {}
func (*HostLit) expr()   {}
func (*Var) expr()       {}
func (*Proj) expr()      {}
func (*Call) expr()      {}
func (*ChanRef) expr()   {}
func (*Let) expr()       {}
func (*If) expr()        {}
func (*Seq) expr()       {}
func (*TupleExpr) expr() {}
func (*Unary) expr()     {}
func (*Binary) expr()    {}
func (*Try) expr()       {}
func (*Raise) expr()     {}

// ---------------------------------------------------------------------------
// Declarations

// Param is a named, typed parameter.
type Param struct {
	Name string
	Type Type
}

// ValDecl is a top-level "val name : type = expr".
type ValDecl struct {
	Name  string
	Type  Type
	Init  Expr
	At    token.Pos
	EndAt token.Pos
}

// FunDecl is "fun name(p1 : t1, ...) : ret = body". Functions are not
// recursive: the body may reference only primitives, previously declared
// vals/funs, and the parameters. This restriction gives PLAN-P local
// termination by construction (§2.1).
type FunDecl struct {
	Name   string
	Params []Param
	Ret    Type
	Body   Expr
	At     token.Pos
	EndAt  token.Pos
}

// ChannelDecl is a channel function:
//
//	channel name(ps : PT, ss : ST, p : PKT) initstate e is body
//
// Channels named "network" apply to all packets whose decoded form matches
// PKT (overloaded channels are multiple network declarations with distinct
// PKT). The body must have type PT*ST.
type ChannelDecl struct {
	Name      string
	Params    []Param // exactly: protocol state, channel state, packet
	InitState Expr    // optional; nil means zero value of ST
	Body      Expr
	At        token.Pos
	EndAt     token.Pos

	// HeaderEnd is one column past the parameter list's closing paren:
	// the span At..HeaderEnd covers the channel's declared interface,
	// which is what signature-compatibility diagnostics point at.
	HeaderEnd token.Pos
}

// ProtoState returns the declared protocol-state type.
func (c *ChannelDecl) ProtoState() Type { return c.Params[0].Type }

// ChanState returns the declared channel-state type.
func (c *ChannelDecl) ChanState() Type { return c.Params[1].Type }

// PacketType returns the declared packet type.
func (c *ChannelDecl) PacketType() Type { return c.Params[2].Type }

// Decl is any top-level declaration.
type Decl interface {
	DeclName() string
	DeclPos() token.Pos
	DeclEnd() token.Pos
}

func (d *ValDecl) DeclName() string     { return d.Name }
func (d *FunDecl) DeclName() string     { return d.Name }
func (d *ChannelDecl) DeclName() string { return d.Name }

func (d *ValDecl) DeclPos() token.Pos     { return d.At }
func (d *FunDecl) DeclPos() token.Pos     { return d.At }
func (d *ChannelDecl) DeclPos() token.Pos { return d.At }

func (d *ValDecl) DeclEnd() token.Pos     { return endOr(d.EndAt, d.At) }
func (d *FunDecl) DeclEnd() token.Pos     { return endOr(d.EndAt, d.At) }
func (d *ChannelDecl) DeclEnd() token.Pos { return endOr(d.EndAt, d.At) }

// Program is a parsed PLAN-P protocol: an ordered list of declarations.
type Program struct {
	Decls []Decl
}

// Channels returns the channel declarations in order.
func (p *Program) Channels() []*ChannelDecl {
	var out []*ChannelDecl
	for _, d := range p.Decls {
		if c, ok := d.(*ChannelDecl); ok {
			out = append(out, c)
		}
	}
	return out
}

// Funs returns the function declarations in order.
func (p *Program) Funs() []*FunDecl {
	var out []*FunDecl
	for _, d := range p.Decls {
		if f, ok := d.(*FunDecl); ok {
			out = append(out, f)
		}
	}
	return out
}

// Vals returns the top-level value declarations in order.
func (p *Program) Vals() []*ValDecl {
	var out []*ValDecl
	for _, d := range p.Decls {
		if v, ok := d.(*ValDecl); ok {
			out = append(out, v)
		}
	}
	return out
}
