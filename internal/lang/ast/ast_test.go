package ast

import (
	"strings"
	"testing"
)

func TestTypeStrings(t *testing.T) {
	cases := map[string]Type{
		"int":                     IntT,
		"ip*tcp*blob":             Tuple{Elems: []Type{IPT, TCPT, BlobT}},
		"(host) hash_table":       Table{Elem: HostT},
		"(int) list":              List{Elem: IntT},
		"(int*host) hash_table":   Table{Elem: Tuple{Elems: []Type{IntT, HostT}}},
		"((int) list) hash_table": Table{Elem: List{Elem: IntT}},
		"int*(bool*char)*string":  Tuple{Elems: []Type{IntT, Tuple{Elems: []Type{BoolT, CharT}}, StringT}},
		"((int) hash_table) list": List{Elem: Table{Elem: IntT}},
	}
	for want, typ := range cases {
		if got := typ.String(); got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
}

func TestTypeEqual(t *testing.T) {
	cases := []struct {
		a, b Type
		want bool
	}{
		{IntT, IntT, true},
		{IntT, BoolT, false},
		{Tuple{Elems: []Type{IntT, HostT}}, Tuple{Elems: []Type{IntT, HostT}}, true},
		{Tuple{Elems: []Type{IntT}}, Tuple{Elems: []Type{IntT, IntT}}, false},
		{Tuple{Elems: []Type{IntT}}, IntT, false},
		{Table{Elem: IntT}, Table{Elem: IntT}, true},
		{Table{Elem: IntT}, Table{Elem: BoolT}, false},
		{Table{Elem: IntT}, List{Elem: IntT}, false},
		{List{Elem: StringT}, List{Elem: StringT}, true},
		{nil, IntT, false},
	}
	for i, tc := range cases {
		if got := Equal(tc.a, tc.b); got != tc.want {
			t.Errorf("case %d: Equal(%v, %v) = %v", i, tc.a, tc.b, got)
		}
	}
}

func TestIsEquality(t *testing.T) {
	if !IsEquality(IntT) || !IsEquality(BlobT) || !IsEquality(IPT) {
		t.Error("base types are equality types")
	}
	if !IsEquality(Tuple{Elems: []Type{IntT, HostT}}) {
		t.Error("tuples of equality types are equality types")
	}
	if IsEquality(Table{Elem: IntT}) {
		t.Error("tables are not equality types")
	}
	if IsEquality(Tuple{Elems: []Type{IntT, Table{Elem: IntT}}}) {
		t.Error("tuples containing tables are not equality types")
	}
	if !IsEquality(List{Elem: IntT}) || IsEquality(List{Elem: Table{Elem: IntT}}) {
		t.Error("list equality follows the element type")
	}
}

func TestProgramAccessors(t *testing.T) {
	prog := &Program{Decls: []Decl{
		&ValDecl{Name: "v", Type: IntT},
		&FunDecl{Name: "f", Ret: IntT},
		&ChannelDecl{Name: "c", Params: []Param{
			{Name: "ps", Type: IntT},
			{Name: "ss", Type: UnitT},
			{Name: "p", Type: Tuple{Elems: []Type{IPT, BlobT}}},
		}},
	}}
	if len(prog.Vals()) != 1 || len(prog.Funs()) != 1 || len(prog.Channels()) != 1 {
		t.Error("accessors miscount")
	}
	ch := prog.Channels()[0]
	if !Equal(ch.ProtoState(), IntT) || !Equal(ch.ChanState(), UnitT) {
		t.Error("state accessors")
	}
	if !Equal(ch.PacketType(), Tuple{Elems: []Type{IPT, BlobT}}) {
		t.Error("packet accessor")
	}
	for _, d := range prog.Decls {
		if d.DeclName() == "" {
			t.Error("empty decl name")
		}
	}
}

func TestExprStringQuoting(t *testing.T) {
	e := &StringLit{Value: "a\n\"b\"\\"}
	got := ExprString(e)
	if got != `"a\n\"b\"\\"` {
		t.Errorf("quoted = %s", got)
	}
	c := &CharLit{Value: '\n'}
	if got := ExprString(c); got != `'\n'` {
		t.Errorf("char = %s", got)
	}
}

func TestPrintParenthesizesAmbiguity(t *testing.T) {
	// (1+2)*3 must not print as 1+2*3.
	e := &Binary{Op: "*",
		L: &Binary{Op: "+", L: &IntLit{Value: 1}, R: &IntLit{Value: 2}},
		R: &IntLit{Value: 3}}
	got := ExprString(e)
	if !strings.Contains(got, "(1 + 2)") {
		t.Errorf("printed %q", got)
	}
}
