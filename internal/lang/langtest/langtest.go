// Package langtest provides shared test fixtures for the language
// packages: a fake primitive context that records effects, and helpers
// to compile one source text under every engine so behavioral
// equivalence can be asserted across the interpreter, the bytecode VM,
// and the JIT.
package langtest

import (
	"fmt"
	"strings"
	"testing"

	"planp.dev/planp/internal/lang/bytecode"
	"planp.dev/planp/internal/lang/engine"
	"planp.dev/planp/internal/lang/interp"
	"planp.dev/planp/internal/lang/jit"
	"planp.dev/planp/internal/lang/parser"
	"planp.dev/planp/internal/lang/prims"
	"planp.dev/planp/internal/lang/typecheck"
	"planp.dev/planp/internal/lang/value"
)

// Sent records one OnRemote/OnNeighbor effect.
type Sent struct {
	Chan     string
	Pkt      value.Value
	Neighbor bool
}

// Ctx is a recording fake of prims.Context.
type Ctx struct {
	Host      value.Host
	TimeMS    int64
	Loads     map[value.Host]int64 // LinkLoadTo answers; default 0
	Bandwidth map[value.Host]int64 // LinkBandwidthTo answers; default 10_000_000

	Sent      []Sent
	Delivered []value.Value
	Out       strings.Builder

	randState uint64
}

var _ prims.Context = (*Ctx)(nil)

// NewCtx returns a fake context for host 10.0.0.1.
func NewCtx() *Ctx {
	return &Ctx{Host: MustHost("10.0.0.1"), randState: 0x9E3779B97F4A7C15}
}

// MustHost parses a dotted quad or panics (test fixture).
func MustHost(s string) value.Host {
	h, err := parser.ParseHost(s)
	if err != nil {
		panic(err)
	}
	return value.Host(h)
}

// OnRemote implements prims.Context.
func (c *Ctx) OnRemote(chanName string, pkt value.Value) {
	c.Sent = append(c.Sent, Sent{Chan: chanName, Pkt: pkt})
}

// OnNeighbor implements prims.Context.
func (c *Ctx) OnNeighbor(chanName string, pkt value.Value) {
	c.Sent = append(c.Sent, Sent{Chan: chanName, Pkt: pkt, Neighbor: true})
}

// Deliver implements prims.Context.
func (c *Ctx) Deliver(pkt value.Value) { c.Delivered = append(c.Delivered, pkt) }

// Print implements prims.Context.
func (c *Ctx) Print(s string) { c.Out.WriteString(s) }

// ThisHost implements prims.Context.
func (c *Ctx) ThisHost() value.Host { return c.Host }

// Now implements prims.Context.
func (c *Ctx) Now() int64 { return c.TimeMS }

// Rand implements prims.Context with a deterministic xorshift.
func (c *Ctx) Rand(n int64) int64 {
	c.randState ^= c.randState << 13
	c.randState ^= c.randState >> 7
	c.randState ^= c.randState << 17
	return int64(c.randState % uint64(n))
}

// LinkLoadTo implements prims.Context.
func (c *Ctx) LinkLoadTo(dst value.Host) int64 { return c.Loads[dst] }

// LinkBandwidthTo implements prims.Context.
func (c *Ctx) LinkBandwidthTo(dst value.Host) int64 {
	if bw, ok := c.Bandwidth[dst]; ok {
		return bw
	}
	return 10_000_000
}

// CheckSrc parses and type-checks src, failing the test on error.
func CheckSrc(t *testing.T, src string) *typecheck.Info {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, err := typecheck.Check(prog)
	if err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	return info
}

// Engines lists every engine's compile entry point.
func Engines() map[string]func(*typecheck.Info) (engine.Compiled, error) {
	return map[string]func(*typecheck.Info) (engine.Compiled, error){
		"interp":   interp.Compile,
		"bytecode": bytecode.Compile,
		"jit":      jit.Compile,
	}
}

// CompileAll compiles src under every engine.
func CompileAll(t *testing.T, src string) map[string]engine.Compiled {
	t.Helper()
	info := CheckSrc(t, src)
	out := map[string]engine.Compiled{}
	for name, compile := range Engines() {
		// Each engine gets its own checked copy? The AST is annotated
		// in place by the checker but engines only read it, so sharing
		// is safe.
		c, err := compile(info)
		if err != nil {
			t.Fatalf("%s compile: %v", name, err)
		}
		out[name] = c
	}
	return out
}

// TCPPacket builds an ip*tcp*blob packet value.
func TCPPacket(src, dst string, srcPort, dstPort uint16, payload []byte) value.Value {
	ip := &value.IPHeader{Src: MustHost(src), Dst: MustHost(dst), Proto: 6, TTL: 64, Len: 40 + len(payload), ID: 1}
	tcp := &value.TCPHeader{SrcPort: srcPort, DstPort: dstPort}
	return value.TupleV(value.IP(ip), value.TCP(tcp), value.Blob(payload))
}

// UDPPacket builds an ip*udp*blob packet value.
func UDPPacket(src, dst string, srcPort, dstPort uint16, payload []byte) value.Value {
	ip := &value.IPHeader{Src: MustHost(src), Dst: MustHost(dst), Proto: 17, TTL: 64, Len: 28 + len(payload), ID: 1}
	udp := &value.UDPHeader{SrcPort: srcPort, DstPort: dstPort, Len: 8 + len(payload)}
	return value.TupleV(value.IP(ip), value.UDP(udp), value.Blob(payload))
}

// FindChannel returns the index of the first channel matching name, or
// an error-formatted failure.
func FindChannel(t *testing.T, info *typecheck.Info, name string) int {
	t.Helper()
	chans := info.ChannelsByName(name)
	if len(chans) == 0 {
		t.Fatalf("no channel named %s", name)
	}
	return chans[0].Index
}

// Fmt renders a value compactly for test diffs.
func Fmt(v value.Value) string { return fmt.Sprintf("%s:%s", v.Kind, v) }
