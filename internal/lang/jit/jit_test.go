package jit

import (
	"testing"

	"planp.dev/planp/internal/lang/ast"
	"planp.dev/planp/internal/lang/parser"
	"planp.dev/planp/internal/lang/prims"
	"planp.dev/planp/internal/lang/typecheck"
	"planp.dev/planp/internal/lang/value"
)

type ctx struct{ sent int }

func (c *ctx) OnRemote(string, value.Value)     { c.sent++ }
func (c *ctx) OnNeighbor(string, value.Value)   { c.sent++ }
func (c *ctx) Deliver(value.Value)              {}
func (c *ctx) Print(string)                     {}
func (c *ctx) ThisHost() value.Host             { return 1 }
func (c *ctx) Now() int64                       { return 0 }
func (c *ctx) Rand(int64) int64                 { return 0 }
func (c *ctx) LinkLoadTo(value.Host) int64      { return 0 }
func (c *ctx) LinkBandwidthTo(value.Host) int64 { return 0 }

var _ prims.Context = (*ctx)(nil)

func compileSrc(t *testing.T, src string) *compiled {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	info, err := typecheck.Check(prog)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compile(info)
	if err != nil {
		t.Fatal(err)
	}
	return c.(*compiled)
}

func pkt(payload string) value.Value {
	return value.TupleV(
		value.IP(&value.IPHeader{Src: 0x0A000001, Dst: 0x0A000002, Proto: 17, TTL: 64}),
		value.UDP(&value.UDPHeader{SrcPort: 5, DstPort: 9}),
		value.Blob([]byte(payload)),
	)
}

func TestUnboxedArithmeticCorrect(t *testing.T) {
	c := compileSrc(t, `
channel network(ps : int, ss : int, p : ip*udp*blob) is
  let
    val n : int = blobLen(#3 p)
    val mixed : int = (ps * 31 + n) mod 97
    val branchy : int = if mixed > 50 then mixed - 50 else mixed + ss
  in
    (deliver(p); (branchy, mixed))
  end
`)
	cx := &ctx{}
	inst, err := c.NewInstance(cx)
	if err != nil {
		t.Fatal(err)
	}
	// Drive several rounds and model the arithmetic in Go.
	var ps, ss int64
	for i := 0; i < 20; i++ {
		if err := inst.Invoke(0, cx, pkt("abcdefg")); err != nil {
			t.Fatal(err)
		}
		n := int64(7)
		mixed := (ps*31 + n) % 97
		var branchy int64
		if mixed > 50 {
			branchy = mixed - 50
		} else {
			branchy = mixed + ss
		}
		ps, ss = branchy, mixed
		if inst.Proto.AsInt() != ps || inst.Chans[0].AsInt() != ss {
			t.Fatalf("round %d: state (%d,%d), want (%d,%d)",
				i, inst.Proto.AsInt(), inst.Chans[0].AsInt(), ps, ss)
		}
	}
}

func TestFrameReuseDoesNotLeakAcrossInvocations(t *testing.T) {
	// The channel writes a let slot only on one branch; on the other
	// branch the slot must not resurrect the previous packet's value.
	// (Definite assignment means slots are always written before read,
	// so this also documents why reuse is safe.)
	c := compileSrc(t, `
channel network(ps : int, ss : int, p : ip*udp*blob) is
  if blobLen(#3 p) > 3 then
    let val big : int = blobLen(#3 p) * 100
    in (deliver(p); (big, ss)) end
  else
    (deliver(p); (blobLen(#3 p), ss))
`)
	cx := &ctx{}
	inst, err := c.NewInstance(cx)
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.Invoke(0, cx, pkt("abcdef")); err != nil {
		t.Fatal(err)
	}
	if inst.Proto.AsInt() != 600 {
		t.Fatalf("first invoke = %d", inst.Proto.AsInt())
	}
	if err := inst.Invoke(0, cx, pkt("xy")); err != nil {
		t.Fatal(err)
	}
	if inst.Proto.AsInt() != 2 {
		t.Errorf("second invoke = %d (leaked state?)", inst.Proto.AsInt())
	}
}

func TestExceptionLeavesInstanceUsable(t *testing.T) {
	c := compileSrc(t, `
channel network(ps : int, ss : int, p : ip*udp*blob) is
  (deliver(p); (ps + 100 / blobLen(#3 p), ss))
`)
	cx := &ctx{}
	inst, err := c.NewInstance(cx)
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.Invoke(0, cx, pkt("")); err == nil {
		t.Fatal("empty blob should divide by zero")
	}
	if inst.Proto.AsInt() != 0 {
		t.Errorf("state after exception = %d, want unchanged", inst.Proto.AsInt())
	}
	if err := inst.Invoke(0, cx, pkt("abcd")); err != nil {
		t.Fatalf("instance unusable after exception: %v", err)
	}
	if inst.Proto.AsInt() != 25 {
		t.Errorf("state = %d, want 25", inst.Proto.AsInt())
	}
}

func TestTypeReconstruction(t *testing.T) {
	prog, err := parser.Parse(`
val g : string = "hi"
fun f(x : int) : bool = x > 0
channel network(ps : int, ss : (int) hash_table, p : ip*udp*blob)
initstate mkTable(4) is
  let
    val a : int = 1 + 2
    val b : bool = f(a)
    val s : string = g ^ "x"
    val tup : int*string = (a, s)
  in
    (deliver(p); (if b then #1 tup else 0, ss))
  end
`)
	if err != nil {
		t.Fatal(err)
	}
	info, err := typecheck.Check(prog)
	if err != nil {
		t.Fatal(err)
	}
	ch := info.Channels[0]
	cc := &compiler{info: info}
	cc.enterFrame(ch.FrameSize, paramTypes(ch.Decl.Params))

	// Probe typeOf on representative subexpressions.
	let := ch.Decl.Body.(*ast.Let)
	if got := cc.typeOf(let); !ast.Equal(got, ast.Tuple{Elems: []ast.Type{ast.IntT, ast.Table{Elem: ast.IntT}}}) {
		t.Errorf("typeOf(body) = %v", got)
	}
	for _, b := range let.Binds {
		if got := cc.typeOf(b.Init); !ast.Equal(got, b.Type) {
			t.Errorf("typeOf(%s init) = %v, want %v", b.Name, got, b.Type)
		}
	}
}

func TestInstancesShareCompiledCodeButNotState(t *testing.T) {
	c := compileSrc(t, `
channel network(ps : int, ss : int, p : ip*udp*blob) is
  (deliver(p); (ps + 1, ss))
`)
	cx := &ctx{}
	i1, err := c.NewInstance(cx)
	if err != nil {
		t.Fatal(err)
	}
	i2, err := c.NewInstance(cx)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 3; j++ {
		if err := i1.Invoke(0, cx, pkt("a")); err != nil {
			t.Fatal(err)
		}
	}
	if err := i2.Invoke(0, cx, pkt("a")); err != nil {
		t.Fatal(err)
	}
	if i1.Proto.AsInt() != 3 || i2.Proto.AsInt() != 1 {
		t.Errorf("instance states %d/%d, want 3/1", i1.Proto.AsInt(), i2.Proto.AsInt())
	}
}
