// Package jit is the PLAN-P specializing compiler: the Go analogue of
// the paper's Tempo-generated JIT (§2.2).
//
// The paper derives a run-time code generator from the portable C
// interpreter by partial evaluation: specializing the interpreter with
// respect to a program removes AST dispatch, environment lookup, and
// repeated type tests, leaving straight-line machine code assembled from
// templates. Go cannot portably emit machine code at run time, so this
// package performs the same transformation at the closure level — each
// AST node is compiled ONCE into a Go closure with every decision that
// depends only on the program text (node kind, operator, slot index,
// primitive identity, operand types) resolved at compile time. What runs
// per packet is a tree of direct closure calls, exactly the residue
// partial evaluation would leave.
//
// The structural correspondence with internal/lang/interp is deliberate
// and load-bearing: every eval case there has a compile case here, so
// extending the language is the paper's two-step process — add the
// interpreter case, then mirror it here ("regenerate the specializer").
package jit

import (
	"fmt"

	"planp.dev/planp/internal/lang/ast"
	"planp.dev/planp/internal/lang/engine"
	"planp.dev/planp/internal/lang/prims"
	"planp.dev/planp/internal/lang/typecheck"
	"planp.dev/planp/internal/lang/value"
)

// machine is the per-invocation execution context threaded through
// compiled code.
type machine struct {
	ctx     prims.Context
	globals []value.Value
}

// code is a compiled expression: the specialization residue.
type code func(m *machine, frame []value.Value) value.Value

// compiled implements engine.Compiled.
type compiled struct {
	info *typecheck.Info

	globalInit []code // compiled top-level val initializers
	globalFS   []int
	initStates []code // compiled channel initstates (nil entries allowed)
	bodies     []code // compiled channel bodies
	frameSizes []int
	funBodies  []code // compiled fun bodies, indexed like info.Funs
}

var _ engine.Compiled = (*compiled)(nil)

// Compile specializes a checked program into closure code. This is the
// operation Figure 3 of the paper times ("code generation time").
func Compile(info *typecheck.Info) (engine.Compiled, error) {
	c := &compiled{info: info}
	cc := &compiler{info: info, funs: make([]code, len(info.Funs))}
	// Funs compile first: calls reference earlier funs only (the
	// checker enforces declaration order), so each slot is filled
	// before any caller is compiled.
	for i := range info.Funs {
		f := &info.Funs[i]
		cc.enterFrame(f.FrameSize, paramTypes(f.Decl.Params))
		cc.funs[i] = cc.compile(f.Decl.Body)
	}
	c.funBodies = cc.funs
	for _, g := range info.Globals {
		cc.enterFrame(g.FrameSize, nil)
		c.globalInit = append(c.globalInit, cc.compile(g.Decl.Init))
		c.globalFS = append(c.globalFS, g.FrameSize)
	}
	for i := range info.Channels {
		ch := &info.Channels[i]
		var init code
		if ch.Decl.InitState != nil {
			cc.enterFrame(ch.FrameSize, nil)
			init = cc.compile(ch.Decl.InitState)
		}
		c.initStates = append(c.initStates, init)
		cc.enterFrame(ch.FrameSize, paramTypes(ch.Decl.Params))
		c.bodies = append(c.bodies, cc.compile(ch.Decl.Body))
		c.frameSizes = append(c.frameSizes, ch.FrameSize)
	}
	return c, nil
}

func paramTypes(params []ast.Param) []ast.Type {
	out := make([]ast.Type, len(params))
	for i, p := range params {
		out[i] = p.Type
	}
	return out
}

func (c *compiled) EngineName() string    { return "jit" }
func (c *compiled) Info() *typecheck.Info { return c.info }

// Shareable: NO — specialized closures reuse per-call-site argument and
// callee-frame buffers (see compileCall), so all instances of one
// artifact must stay on a single simulator thread.
func (c *compiled) Shareable() bool { return false }

func (c *compiled) NewInstance(ctx prims.Context) (inst *engine.Instance, err error) {
	defer func() {
		if r := recover(); r != nil {
			if ex, ok := r.(value.Exception); ok {
				inst, err = nil, ex
				return
			}
			panic(r)
		}
	}()
	m := &machine{ctx: ctx}
	for i, g := range c.globalInit {
		frame := make([]value.Value, c.globalFS[i])
		m.globals = append(m.globals, g(m, frame))
	}
	initIdx := 0
	proto, chans, err := engine.InitStates(c.info, func(_ ast.Expr, frameSize int) (value.Value, error) {
		// InitStates walks channels in order; consume our compiled
		// initstates in the same order.
		for c.initStates[initIdx] == nil {
			initIdx++
		}
		g := c.initStates[initIdx]
		initIdx++
		frame := make([]value.Value, frameSize)
		return g(m, frame), nil
	})
	if err != nil {
		return nil, err
	}
	// Per-instance scratch state, reused across invocations: frames are
	// safe to reuse because the checker guarantees definite assignment
	// (every slot is written before it is read), and instances are
	// serialized by the runtime. This is part of the specialization
	// story — the interpreter allocates afresh on every packet, the
	// compiled code does not.
	rm := &machine{globals: m.globals}
	frames := make([][]value.Value, len(c.frameSizes))
	for i, fs := range c.frameSizes {
		frames[i] = make([]value.Value, fs)
	}
	invoke := func(ci int, ctx prims.Context, ps, ss, pkt value.Value) (psOut, ssOut value.Value, ierr error) {
		defer func() {
			if r := recover(); r != nil {
				if ex, ok := r.(value.Exception); ok {
					ierr = ex
					return
				}
				panic(r)
			}
		}()
		frame := frames[ci]
		frame[0], frame[1], frame[2] = ps, ss, pkt
		rm.ctx = ctx
		res := c.bodies[ci](rm, frame)
		return res.Vs[0], res.Vs[1], nil
	}
	return engine.NewInstance(c, proto, chans, invoke), nil
}

// compiler holds compile-time state. slots tracks the static type of
// each frame slot in the compilation context, which drives the unboxed
// specialization layer (unbox.go).
type compiler struct {
	info  *typecheck.Info
	funs  []code
	slots []ast.Type
}

// compile specializes one expression: int- and bool-typed compound
// expressions take the unboxed fast path (boxing once at the boundary),
// everything else the generic node compiler. This split is the deepest
// part of the Tempo analogy — types known at compile time erase runtime
// representation work.
func (cc *compiler) compile(e ast.Expr) code {
	if ic, ok := cc.tryCompileInt(e); ok {
		return func(m *machine, frame []value.Value) value.Value {
			return value.Int(ic(m, frame))
		}
	}
	if bc, ok := cc.tryCompileBool(e); ok {
		return func(m *machine, frame []value.Value) value.Value {
			return value.Bool(bc(m, frame))
		}
	}
	return cc.compileNode(e)
}

// compileNode is the generic (boxed) per-node compiler.
func (cc *compiler) compileNode(e ast.Expr) code {
	switch e := e.(type) {
	case *ast.IntLit:
		v := value.Int(e.Value)
		return func(*machine, []value.Value) value.Value { return v }
	case *ast.BoolLit:
		v := value.Bool(e.Value)
		return func(*machine, []value.Value) value.Value { return v }
	case *ast.StringLit:
		v := value.Str(e.Value)
		return func(*machine, []value.Value) value.Value { return v }
	case *ast.CharLit:
		v := value.Char(e.Value)
		return func(*machine, []value.Value) value.Value { return v }
	case *ast.UnitLit:
		return func(*machine, []value.Value) value.Value { return value.Unit }
	case *ast.HostLit:
		v := value.HostV(value.Host(e.Addr))
		return func(*machine, []value.Value) value.Value { return v }

	case *ast.Var:
		if e.Slot >= 0 {
			slot := e.Slot
			return func(_ *machine, frame []value.Value) value.Value { return frame[slot] }
		}
		gi := e.Global
		return func(m *machine, _ []value.Value) value.Value { return m.globals[gi] }

	case *ast.Proj:
		tuple := cc.compile(e.Tuple)
		idx := e.Index - 1
		// Specialize the common #n-of-variable case to skip a call.
		if v, ok := e.Tuple.(*ast.Var); ok && v.Slot >= 0 {
			slot := v.Slot
			return func(_ *machine, frame []value.Value) value.Value { return frame[slot].Vs[idx] }
		}
		return func(m *machine, frame []value.Value) value.Value { return tuple(m, frame).Vs[idx] }

	case *ast.Let:
		type bind struct {
			slot int
			init code
		}
		binds := make([]bind, len(e.Binds))
		for i, b := range e.Binds {
			binds[i] = bind{slot: b.Slot, init: cc.compile(b.Init)}
			cc.setSlot(b.Slot, b.Type)
		}
		body := cc.compile(e.Body)
		if len(binds) == 1 {
			b := binds[0]
			return func(m *machine, frame []value.Value) value.Value {
				frame[b.slot] = b.init(m, frame)
				return body(m, frame)
			}
		}
		return func(m *machine, frame []value.Value) value.Value {
			for _, b := range binds {
				frame[b.slot] = b.init(m, frame)
			}
			return body(m, frame)
		}

	case *ast.If:
		// Conditions are always bool; compile them unboxed so the test
		// never materializes a value.Value (mirrors compileInt/Bool's If
		// cases, which the boxed result type of this node can't reach).
		// A bare #n-of-variable condition — a protocol flag test — is
		// not "beneficial" by the general gate but profits here, where
		// the alternative copies a Value just to test its I field.
		bc, ok := cc.tryCompileBool(e.Cond)
		if !ok {
			if p, isProj := e.Cond.(*ast.Proj); isProj {
				if v, isVar := p.Tuple.(*ast.Var); isVar && v.Slot >= 0 && ast.Equal(cc.typeOf(e.Cond), ast.BoolT) {
					bc, ok = cc.compileBool(e.Cond), true
				}
			}
		}
		if ok {
			thenC := cc.compile(e.Then)
			elseC := cc.compile(e.Else)
			return func(m *machine, frame []value.Value) value.Value {
				if bc(m, frame) {
					return thenC(m, frame)
				}
				return elseC(m, frame)
			}
		}
		cond := cc.compile(e.Cond)
		thenC := cc.compile(e.Then)
		elseC := cc.compile(e.Else)
		return func(m *machine, frame []value.Value) value.Value {
			if cond(m, frame).I != 0 {
				return thenC(m, frame)
			}
			return elseC(m, frame)
		}

	case *ast.Seq:
		codes := make([]code, len(e.Exprs))
		for i, sub := range e.Exprs {
			codes[i] = cc.compile(sub)
		}
		last := codes[len(codes)-1]
		head := codes[:len(codes)-1]
		if len(head) == 1 {
			h := head[0]
			return func(m *machine, frame []value.Value) value.Value {
				h(m, frame)
				return last(m, frame)
			}
		}
		return func(m *machine, frame []value.Value) value.Value {
			for _, h := range head {
				h(m, frame)
			}
			return last(m, frame)
		}

	case *ast.TupleExpr:
		codes := make([]code, len(e.Elems))
		for i, sub := range e.Elems {
			codes[i] = cc.compile(sub)
		}
		if len(codes) == 2 { // the (ps, ss) result pair — hot path
			a, b := codes[0], codes[1]
			return func(m *machine, frame []value.Value) value.Value {
				x := a(m, frame)
				y := b(m, frame)
				return value.TupleV(x, y)
			}
		}
		return func(m *machine, frame []value.Value) value.Value {
			elems := make([]value.Value, len(codes))
			for i, sub := range codes {
				elems[i] = sub(m, frame)
			}
			return value.TupleV(elems...)
		}

	case *ast.Unary:
		x := cc.compile(e.X)
		if e.Op == "not" {
			return func(m *machine, frame []value.Value) value.Value {
				return value.Bool(x(m, frame).I == 0)
			}
		}
		return func(m *machine, frame []value.Value) value.Value {
			return value.Int(-x(m, frame).I)
		}

	case *ast.Binary:
		return cc.compileBinary(e)

	case *ast.Try:
		body := cc.compile(e.Body)
		handler := cc.compile(e.Handler)
		return func(m *machine, frame []value.Value) (res value.Value) {
			defer func() {
				if r := recover(); r != nil {
					if _, ok := r.(value.Exception); ok {
						res = handler(m, frame)
						return
					}
					panic(r)
				}
			}()
			return body(m, frame)
		}

	case *ast.Raise:
		msg := cc.compile(e.Msg)
		return func(m *machine, frame []value.Value) value.Value {
			panic(value.Exception{Msg: msg(m, frame).S})
		}

	case *ast.Call:
		return cc.compileCall(e)

	default:
		panic(fmt.Sprintf("planp/jit: unhandled expression %T", e))
	}
}

// compileBinary specializes each operator — and for = / <> the operand
// type — into a dedicated closure. This is the specialization the paper
// highlights: the interpreter's per-evaluation operator dispatch becomes
// a compile-time decision.
func (cc *compiler) compileBinary(e *ast.Binary) code {
	l := cc.compile(e.L)
	r := cc.compile(e.R)
	switch e.Op {
	case "andalso":
		return func(m *machine, frame []value.Value) value.Value {
			if l(m, frame).I == 0 {
				return value.Bool(false)
			}
			return r(m, frame)
		}
	case "orelse":
		return func(m *machine, frame []value.Value) value.Value {
			if l(m, frame).I != 0 {
				return value.Bool(true)
			}
			return r(m, frame)
		}
	case "+":
		return func(m *machine, frame []value.Value) value.Value {
			return value.Int(l(m, frame).I + r(m, frame).I)
		}
	case "-":
		return func(m *machine, frame []value.Value) value.Value {
			return value.Int(l(m, frame).I - r(m, frame).I)
		}
	case "*":
		return func(m *machine, frame []value.Value) value.Value {
			return value.Int(l(m, frame).I * r(m, frame).I)
		}
	case "/":
		return func(m *machine, frame []value.Value) value.Value {
			// Operands evaluate left to right (the differential fuzz
			// test pins exception order across engines).
			n := l(m, frame).I
			d := r(m, frame).I
			if d == 0 {
				value.Raise("division by zero")
			}
			return value.Int(n / d)
		}
	case "mod":
		return func(m *machine, frame []value.Value) value.Value {
			n := l(m, frame).I
			d := r(m, frame).I
			if d == 0 {
				value.Raise("mod by zero")
			}
			return value.Int(n % d)
		}
	case "^":
		return func(m *machine, frame []value.Value) value.Value {
			return value.Str(l(m, frame).S + r(m, frame).S)
		}
	case "=", "<>":
		neg := e.Op == "<>"
		// Specialize on the statically known operand type.
		switch t := e.OperandType.(type) {
		case ast.Base:
			switch t.Kind {
			case ast.TInt, ast.TBool, ast.TChar, ast.THost:
				return func(m *machine, frame []value.Value) value.Value {
					return value.Bool((l(m, frame).I == r(m, frame).I) != neg)
				}
			case ast.TString:
				return func(m *machine, frame []value.Value) value.Value {
					return value.Bool((l(m, frame).S == r(m, frame).S) != neg)
				}
			}
		}
		return func(m *machine, frame []value.Value) value.Value {
			return value.Bool(value.Equal(l(m, frame), r(m, frame)) != neg)
		}
	case "<", "<=", ">", ">=":
		return cc.compileOrd(e, l, r)
	default:
		panic(fmt.Sprintf("planp/jit: unhandled operator %s", e.Op))
	}
}

func (cc *compiler) compileOrd(e *ast.Binary, l, r code) code {
	isString := ast.Equal(e.OperandType, ast.StringT)
	switch e.Op {
	case "<":
		if isString {
			return func(m *machine, frame []value.Value) value.Value {
				return value.Bool(l(m, frame).S < r(m, frame).S)
			}
		}
		return func(m *machine, frame []value.Value) value.Value {
			return value.Bool(l(m, frame).I < r(m, frame).I)
		}
	case "<=":
		if isString {
			return func(m *machine, frame []value.Value) value.Value {
				return value.Bool(l(m, frame).S <= r(m, frame).S)
			}
		}
		return func(m *machine, frame []value.Value) value.Value {
			return value.Bool(l(m, frame).I <= r(m, frame).I)
		}
	case ">":
		if isString {
			return func(m *machine, frame []value.Value) value.Value {
				return value.Bool(l(m, frame).S > r(m, frame).S)
			}
		}
		return func(m *machine, frame []value.Value) value.Value {
			return value.Bool(l(m, frame).I > r(m, frame).I)
		}
	default:
		if isString {
			return func(m *machine, frame []value.Value) value.Value {
				return value.Bool(l(m, frame).S >= r(m, frame).S)
			}
		}
		return func(m *machine, frame []value.Value) value.Value {
			return value.Bool(l(m, frame).I >= r(m, frame).I)
		}
	}
}

func (cc *compiler) compileCall(e *ast.Call) code {
	// Network sends.
	if e.Name == "OnRemote" || e.Name == "OnNeighbor" {
		cref := e.Args[0].(*ast.ChanRef)
		name := cref.Name
		pkt := cc.compile(e.Args[1])
		if e.Name == "OnRemote" {
			return func(m *machine, frame []value.Value) value.Value {
				m.ctx.OnRemote(name, pkt(m, frame))
				return value.Unit
			}
		}
		return func(m *machine, frame []value.Value) value.Value {
			m.ctx.OnNeighbor(name, pkt(m, frame))
			return value.Unit
		}
	}

	args := make([]code, len(e.Args))
	for i, a := range e.Args {
		args[i] = cc.compile(a)
	}

	// User fun: the callee is already compiled (declaration order), and
	// its frame is a per-call-site buffer — safe for the same reason as
	// the argument buffers below (no recursion means a site is never
	// active twice).
	if e.FunIndex >= 0 {
		body := cc.funs[e.FunIndex]
		callee := make([]value.Value, cc.info.Funs[e.FunIndex].FrameSize)
		return func(m *machine, frame []value.Value) value.Value {
			for i, a := range args {
				callee[i] = a(m, frame)
			}
			return body(m, callee)
		}
	}

	// Primitive: the implementation pointer is captured at compile
	// time; arity-specialized paths reuse a per-call-site argument
	// buffer. Reuse is safe because the language has no recursion (a
	// call site can never be active twice on one stack) and primitives
	// do not retain their argument slice. The cost is that compiled
	// programs are single-threaded, which the runtime guarantees.
	fn := prims.Get(e.PrimIndex).Fn
	switch len(args) {
	case 0:
		return func(m *machine, frame []value.Value) value.Value {
			return fn(m.ctx, nil)
		}
	case 1:
		a0 := args[0]
		buf := make([]value.Value, 1)
		return func(m *machine, frame []value.Value) value.Value {
			buf[0] = a0(m, frame)
			return fn(m.ctx, buf)
		}
	case 2:
		a0, a1 := args[0], args[1]
		buf := make([]value.Value, 2)
		return func(m *machine, frame []value.Value) value.Value {
			x := a0(m, frame)
			buf[1] = a1(m, frame)
			buf[0] = x
			return fn(m.ctx, buf)
		}
	default:
		buf := make([]value.Value, len(args))
		return func(m *machine, frame []value.Value) value.Value {
			for i, a := range args {
				buf[i] = a(m, frame)
			}
			return fn(m.ctx, buf)
		}
	}
}
