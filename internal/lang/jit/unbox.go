// Unboxed specialization: int- and bool-typed compound expressions
// compile to closures over raw machine values (int64 / bool) instead of
// boxed value.Value, with a single box at the boundary to the generic
// layer. This is the type-driven half of the partial-evaluation analogy:
// the paper's specializer erased the C interpreter's value tagging the
// same way, because the program's types are fully known at generation
// time.
//
// The compiler reconstructs static types locally (the checker guarantees
// the program is well typed, so reconstruction cannot fail where it
// matters; anywhere the type comes back unknown we fall back to the
// boxed path, which is always correct).
package jit

import (
	"planp.dev/planp/internal/lang/ast"
	"planp.dev/planp/internal/lang/prims"
	"planp.dev/planp/internal/lang/value"
)

// icode and bcode are unboxed compiled expressions.
type (
	icode func(m *machine, frame []value.Value) int64
	bcode func(m *machine, frame []value.Value) bool
)

// enterFrame resets slot-type tracking for a new compilation context.
func (cc *compiler) enterFrame(size int, params []ast.Type) {
	cc.slots = make([]ast.Type, size)
	copy(cc.slots, params)
}

// setSlot records a let binding's declared type.
func (cc *compiler) setSlot(slot int, t ast.Type) {
	if slot >= 0 && slot < len(cc.slots) {
		cc.slots[slot] = t
	}
}

// typeOf reconstructs e's static type; nil means "unknown, use the boxed
// path".
func (cc *compiler) typeOf(e ast.Expr) ast.Type {
	switch e := e.(type) {
	case *ast.IntLit:
		return ast.IntT
	case *ast.BoolLit:
		return ast.BoolT
	case *ast.StringLit:
		return ast.StringT
	case *ast.CharLit:
		return ast.CharT
	case *ast.UnitLit:
		return ast.UnitT
	case *ast.HostLit:
		return ast.HostT
	case *ast.Var:
		if e.Slot >= 0 {
			if e.Slot < len(cc.slots) {
				return cc.slots[e.Slot]
			}
			return nil
		}
		if e.Global >= 0 && e.Global < len(cc.info.Globals) {
			return cc.info.Globals[e.Global].Decl.Type
		}
		return nil
	case *ast.Proj:
		if tup, ok := cc.typeOf(e.Tuple).(ast.Tuple); ok && e.Index-1 < len(tup.Elems) {
			return tup.Elems[e.Index-1]
		}
		return nil
	case *ast.Let:
		// Binding types are declared; record them so the body sees them
		// even when typeOf runs before compilation touches the Let.
		for _, b := range e.Binds {
			cc.setSlot(b.Slot, b.Type)
		}
		return cc.typeOf(e.Body)
	case *ast.If:
		return cc.typeOf(e.Then)
	case *ast.Seq:
		return cc.typeOf(e.Exprs[len(e.Exprs)-1])
	case *ast.TupleExpr:
		elems := make([]ast.Type, len(e.Elems))
		for i, sub := range e.Elems {
			elems[i] = cc.typeOf(sub)
			if elems[i] == nil {
				return nil
			}
		}
		return ast.Tuple{Elems: elems}
	case *ast.Unary:
		if e.Op == "not" {
			return ast.BoolT
		}
		return ast.IntT
	case *ast.Binary:
		switch e.Op {
		case "+", "-", "*", "/", "mod":
			return ast.IntT
		case "^":
			return ast.StringT
		default:
			return ast.BoolT
		}
	case *ast.Try:
		return cc.typeOf(e.Body)
	case *ast.Call:
		if e.FunIndex >= 0 {
			return cc.info.Funs[e.FunIndex].Decl.Ret
		}
		if e.PrimIndex >= 0 {
			p := prims.Get(e.PrimIndex)
			if p.TypeFn == nil {
				return p.Ret
			}
			args := make([]ast.Type, len(e.Args))
			for i, a := range e.Args {
				args[i] = cc.typeOf(a)
				if args[i] == nil {
					return nil
				}
			}
			ret, err := prims.TypeOf(e.PrimIndex, args, nil)
			if err != nil {
				return nil
			}
			return ret
		}
		return ast.UnitT // OnRemote / OnNeighbor
	default:
		return nil
	}
}

// beneficial reports whether the unboxed path actually saves interior
// boxing for this node kind (a bare atom gains nothing).
func beneficial(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.Binary:
		return true
	case *ast.Unary:
		return true
	case *ast.If:
		return true
	case *ast.Let:
		return true
	case *ast.Seq:
		return true
	case *ast.Call:
		_ = e
		return false
	default:
		return false
	}
}

// tryCompileInt compiles e unboxed when it is a compound int expression.
func (cc *compiler) tryCompileInt(e ast.Expr) (icode, bool) {
	if !beneficial(e) || !ast.Equal(cc.typeOf(e), ast.IntT) {
		return nil, false
	}
	return cc.compileInt(e), true
}

// tryCompileBool mirrors tryCompileInt for booleans.
func (cc *compiler) tryCompileBool(e ast.Expr) (bcode, bool) {
	if !beneficial(e) || !ast.Equal(cc.typeOf(e), ast.BoolT) {
		return nil, false
	}
	return cc.compileBool(e), true
}

// compileInt compiles an int-typed expression to unboxed code. Any node
// it does not specialize falls back to the boxed compiler with one
// unwrap at the seam.
func (cc *compiler) compileInt(e ast.Expr) icode {
	switch e := e.(type) {
	case *ast.IntLit:
		v := e.Value
		return func(*machine, []value.Value) int64 { return v }

	case *ast.Var:
		if e.Slot >= 0 {
			slot := e.Slot
			return func(_ *machine, frame []value.Value) int64 { return frame[slot].I }
		}
		gi := e.Global
		return func(m *machine, _ []value.Value) int64 { return m.globals[gi].I }

	case *ast.Proj:
		if v, ok := e.Tuple.(*ast.Var); ok && v.Slot >= 0 {
			slot, idx := v.Slot, e.Index-1
			return func(_ *machine, frame []value.Value) int64 { return frame[slot].Vs[idx].I }
		}

	case *ast.Unary: // "-"
		x := cc.compileInt(e.X)
		return func(m *machine, frame []value.Value) int64 { return -x(m, frame) }

	case *ast.Binary:
		l := cc.compileInt(e.L)
		r := cc.compileInt(e.R)
		switch e.Op {
		case "+":
			return func(m *machine, frame []value.Value) int64 { return l(m, frame) + r(m, frame) }
		case "-":
			return func(m *machine, frame []value.Value) int64 { return l(m, frame) - r(m, frame) }
		case "*":
			return func(m *machine, frame []value.Value) int64 { return l(m, frame) * r(m, frame) }
		case "/":
			return func(m *machine, frame []value.Value) int64 {
				n := l(m, frame)
				d := r(m, frame)
				if d == 0 {
					value.Raise("division by zero")
				}
				return n / d
			}
		case "mod":
			return func(m *machine, frame []value.Value) int64 {
				n := l(m, frame)
				d := r(m, frame)
				if d == 0 {
					value.Raise("mod by zero")
				}
				return n % d
			}
		}

	case *ast.If:
		cond := cc.compileBool(e.Cond)
		thenI := cc.compileInt(e.Then)
		elseI := cc.compileInt(e.Else)
		return func(m *machine, frame []value.Value) int64 {
			if cond(m, frame) {
				return thenI(m, frame)
			}
			return elseI(m, frame)
		}

	case *ast.Let:
		type bind struct {
			slot int
			init code
		}
		binds := make([]bind, len(e.Binds))
		for i, b := range e.Binds {
			binds[i] = bind{slot: b.Slot, init: cc.compile(b.Init)}
			cc.setSlot(b.Slot, b.Type)
		}
		body := cc.compileInt(e.Body)
		return func(m *machine, frame []value.Value) int64 {
			for _, b := range binds {
				frame[b.slot] = b.init(m, frame)
			}
			return body(m, frame)
		}

	case *ast.Seq:
		head := make([]code, len(e.Exprs)-1)
		for i, sub := range e.Exprs[:len(e.Exprs)-1] {
			head[i] = cc.compile(sub)
		}
		last := cc.compileInt(e.Exprs[len(e.Exprs)-1])
		return func(m *machine, frame []value.Value) int64 {
			for _, h := range head {
				h(m, frame)
			}
			return last(m, frame)
		}
	}

	// Seam to the boxed world (calls, try/handle, raises, projections of
	// computed tuples, ...).
	boxed := cc.compileNode(e)
	return func(m *machine, frame []value.Value) int64 { return boxed(m, frame).I }
}

// compileBool compiles a bool-typed expression to unboxed code.
func (cc *compiler) compileBool(e ast.Expr) bcode {
	switch e := e.(type) {
	case *ast.BoolLit:
		v := e.Value
		return func(*machine, []value.Value) bool { return v }

	case *ast.Var:
		if e.Slot >= 0 {
			slot := e.Slot
			return func(_ *machine, frame []value.Value) bool { return frame[slot].I != 0 }
		}
		gi := e.Global
		return func(m *machine, _ []value.Value) bool { return m.globals[gi].I != 0 }

	case *ast.Proj:
		// Mirrors compileInt's #n-of-variable fast path: bool tuple
		// fields (flags in protocol state) test without boxing.
		if v, ok := e.Tuple.(*ast.Var); ok && v.Slot >= 0 {
			slot, idx := v.Slot, e.Index-1
			return func(_ *machine, frame []value.Value) bool { return frame[slot].Vs[idx].I != 0 }
		}

	case *ast.Unary: // "not"
		x := cc.compileBool(e.X)
		return func(m *machine, frame []value.Value) bool { return !x(m, frame) }

	case *ast.Binary:
		switch e.Op {
		case "andalso":
			l := cc.compileBool(e.L)
			r := cc.compileBool(e.R)
			return func(m *machine, frame []value.Value) bool { return l(m, frame) && r(m, frame) }
		case "orelse":
			l := cc.compileBool(e.L)
			r := cc.compileBool(e.R)
			return func(m *machine, frame []value.Value) bool { return l(m, frame) || r(m, frame) }
		case "<", "<=", ">", ">=":
			if ast.Equal(e.OperandType, ast.IntT) || ast.Equal(e.OperandType, ast.CharT) {
				l := cc.compileInt(e.L)
				r := cc.compileInt(e.R)
				switch e.Op {
				case "<":
					return func(m *machine, frame []value.Value) bool { return l(m, frame) < r(m, frame) }
				case "<=":
					return func(m *machine, frame []value.Value) bool { return l(m, frame) <= r(m, frame) }
				case ">":
					return func(m *machine, frame []value.Value) bool { return l(m, frame) > r(m, frame) }
				default:
					return func(m *machine, frame []value.Value) bool { return l(m, frame) >= r(m, frame) }
				}
			}
		case "=", "<>":
			if t, ok := e.OperandType.(ast.Base); ok {
				switch t.Kind {
				case ast.TInt, ast.TBool, ast.TChar, ast.THost:
					l := cc.compileInt(e.L)
					r := cc.compileInt(e.R)
					neg := e.Op == "<>"
					return func(m *machine, frame []value.Value) bool {
						return (l(m, frame) == r(m, frame)) != neg
					}
				}
			}
		}

	case *ast.If:
		cond := cc.compileBool(e.Cond)
		thenB := cc.compileBool(e.Then)
		elseB := cc.compileBool(e.Else)
		return func(m *machine, frame []value.Value) bool {
			if cond(m, frame) {
				return thenB(m, frame)
			}
			return elseB(m, frame)
		}
	}

	boxed := cc.compileNode(e)
	return func(m *machine, frame []value.Value) bool { return boxed(m, frame).I != 0 }
}
