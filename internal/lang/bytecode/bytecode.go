// Package bytecode compiles checked PLAN-P programs to a register-based
// bytecode and executes them on a compact VM.
//
// The VM is the middle point of the engine ablation: it removes the AST
// walk (like the JIT) but keeps a per-instruction dispatch loop (like the
// interpreter). The paper contrasts its Tempo JIT with bytecode systems
// such as HiPEC's interpreter (§4); this engine makes that comparison
// measurable inside one codebase.
package bytecode

import (
	"fmt"

	"planp.dev/planp/internal/lang/ast"
	"planp.dev/planp/internal/lang/value"
)

// Op is a bytecode opcode.
type Op uint8

// Opcodes. Instructions use up to three register/immediate operands.
const (
	OpNop Op = iota

	OpConst  // R[A] = consts[B]
	OpMove   // R[A] = R[B]
	OpGlobal // R[A] = globals[B]

	OpProj  // R[A] = R[B].Vs[C]
	OpTuple // R[A] = tuple(R[B] .. R[B+C-1])

	OpJump    // pc = A
	OpJumpIfF // if !R[A] { pc = B }
	OpJumpIfT // if R[A] { pc = B }

	OpAdd // R[A] = R[B] + R[C]
	OpSub
	OpMul
	OpDiv
	OpMod
	OpNeg    // R[A] = -R[B]
	OpNot    // R[A] = !R[B]
	OpConcat // R[A] = R[B] ^ R[C]

	OpEqI // R[A] = R[B].I == R[C].I   (int/bool/char/host)
	OpNeI
	OpEqS // string equality
	OpNeS
	OpEqV // generic deep equality
	OpNeV
	OpLtI // ordering, int/char
	OpLeI
	OpGtI
	OpGeI
	OpLtS // ordering, string
	OpLeS
	OpGtS
	OpGeS

	OpCallPrim // R[A] = prims[B](R[C] .. R[C+nargs-1]); nargs in aux
	OpCallFun  // R[A] = funs[B](R[C] ...)
	OpSend     // send R[B] on channel names[A]; C = 0 remote, 1 neighbor
	OpRaise    // raise R[A].S

	OpTryPush // push handler at pc A
	OpTryPop  // pop handler

	OpReturn // return R[A]

	// Superinstructions: peephole fusions emitted by the compiler when a
	// value is produced and consumed by adjacent instructions (compile.go,
	// fuseConst / fuseBranch). They change dispatch count, never
	// semantics — the VM's differential fuzz tests pin that.

	OpAddK // R[A] = R[B] + C   (C is the literal, not a register)
	OpSubK
	OpMulK

	OpEqIK // R[A] = R[B].I == C
	OpNeIK
	OpLtIK
	OpLeIK
	OpGtIK
	OpGeIK

	// Fused compare-and-branch: jump to A when the comparison of R[B]
	// and R[C] holds. The compiler negates the source comparison when
	// fusing an "if" condition, so branch-false sites need one opcode.
	OpJEqI
	OpJNeI
	OpJLtI
	OpJLeI
	OpJGtI
	OpJGeI

	// Same, with literal C.
	OpJEqIK
	OpJNeIK
	OpJLtIK
	OpJLeIK
	OpJGtIK
	OpJGeIK

	OpJEqS // jump to A when R[B].S == R[C].S
	OpJNeS

	OpJProjF // if !R[B].Vs[C] { pc = A }  (fused Proj + JumpIfF)
)

var opNames = [...]string{
	OpNop: "nop", OpConst: "const", OpMove: "move", OpGlobal: "global",
	OpProj: "proj", OpTuple: "tuple", OpJump: "jump", OpJumpIfF: "jumpf",
	OpJumpIfT: "jumpt", OpAdd: "add", OpSub: "sub", OpMul: "mul",
	OpDiv: "div", OpMod: "mod", OpNeg: "neg", OpNot: "not",
	OpConcat: "concat", OpEqI: "eqi", OpNeI: "nei", OpEqS: "eqs",
	OpNeS: "nes", OpEqV: "eqv", OpNeV: "nev", OpLtI: "lti", OpLeI: "lei",
	OpGtI: "gti", OpGeI: "gei", OpLtS: "lts", OpLeS: "les", OpGtS: "gts",
	OpGeS: "ges", OpCallPrim: "callprim", OpCallFun: "callfun",
	OpSend: "send", OpRaise: "raise", OpTryPush: "trypush",
	OpTryPop: "trypop", OpReturn: "return",
	OpAddK: "addk", OpSubK: "subk", OpMulK: "mulk", OpEqIK: "eqik",
	OpNeIK: "neik", OpLtIK: "ltik", OpLeIK: "leik", OpGtIK: "gtik",
	OpGeIK: "geik", OpJEqI: "jeqi", OpJNeI: "jnei", OpJLtI: "jlti",
	OpJLeI: "jlei", OpJGtI: "jgti", OpJGeI: "jgei", OpJEqIK: "jeqik",
	OpJNeIK: "jneik", OpJLtIK: "jltik", OpJLeIK: "jleik",
	OpJGtIK: "jgtik", OpJGeIK: "jgeik", OpJEqS: "jeqs", OpJNeS: "jnes",
	OpJProjF: "jprojf",
}

// String returns the opcode mnemonic.
func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op%d", uint8(o))
}

// Instr is one instruction. A is usually the destination register.
type Instr struct {
	Op      Op
	A, B, C int
	Aux     int // extra operand (argument counts)
}

// Fn is a compiled code object: a channel body, fun body, global
// initializer, or initstate expression.
type Fn struct {
	Name      string
	Code      []Instr
	Consts    []value.Value
	ChanNames []string // channel names referenced by OpSend
	NumRegs   int
}

// Disasm renders the function's code for debugging and the planp CLI's
// -disasm mode.
func (f *Fn) Disasm() string {
	out := fmt.Sprintf("%s: %d registers, %d consts\n", f.Name, f.NumRegs, len(f.Consts))
	for i, in := range f.Code {
		out += fmt.Sprintf("  %3d  %-9s a=%-3d b=%-3d c=%-3d", i, in.Op, in.A, in.B, in.C)
		if in.Aux != 0 {
			out += fmt.Sprintf(" aux=%d", in.Aux)
		}
		if in.Op == OpConst && in.B < len(f.Consts) {
			out += fmt.Sprintf("   ; %s", f.Consts[in.B])
		}
		if in.Op == OpSend && in.A < len(f.ChanNames) {
			out += fmt.Sprintf("   ; %s", f.ChanNames[in.A])
		}
		out += "\n"
	}
	return out
}

// typeEqOps selects the equality opcodes for a statically known operand
// type (the checker's Binary.OperandType).
func typeEqOps(t ast.Type) (eq, ne Op) {
	if b, ok := t.(ast.Base); ok {
		switch b.Kind {
		case ast.TInt, ast.TBool, ast.TChar, ast.THost:
			return OpEqI, OpNeI
		case ast.TString:
			return OpEqS, OpNeS
		}
	}
	return OpEqV, OpNeV
}
