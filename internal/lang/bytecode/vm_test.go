package bytecode

import (
	"strings"
	"testing"

	"planp.dev/planp/internal/lang/prims"
	"planp.dev/planp/internal/lang/value"
)

// vmCtx records effects for VM execution tests.
type vmCtx struct {
	out   strings.Builder
	sent  []string
	flood int
}

func (c *vmCtx) OnRemote(ch string, _ value.Value)   { c.sent = append(c.sent, ch) }
func (c *vmCtx) OnNeighbor(ch string, _ value.Value) { c.flood++ }
func (c *vmCtx) Deliver(value.Value)                 {}
func (c *vmCtx) Print(s string)                      { c.out.WriteString(s) }
func (c *vmCtx) ThisHost() value.Host                { return 1 }
func (c *vmCtx) Now() int64                          { return 0 }
func (c *vmCtx) Rand(n int64) int64                  { return 0 }
func (c *vmCtx) LinkLoadTo(value.Host) int64         { return 0 }
func (c *vmCtx) LinkBandwidthTo(value.Host) int64    { return 0 }

var _ prims.Context = (*vmCtx)(nil)

// runChannel compiles src, instantiates, and invokes channel 0 on a
// minimal packet, returning the new protocol state.
func runChannel(t *testing.T, src string) (value.Value, *vmCtx, error) {
	t.Helper()
	c := compileSrc(t, src)
	ctx := &vmCtx{}
	inst, err := c.NewInstance(ctx)
	if err != nil {
		t.Fatalf("NewInstance: %v", err)
	}
	pkt := value.TupleV(
		value.IP(&value.IPHeader{Src: 0x0A000001, Dst: 0x0A000002, Proto: 17, TTL: 64, Len: 30}),
		value.UDP(&value.UDPHeader{SrcPort: 5, DstPort: 9, Len: 10}),
		value.Blob([]byte("hello")),
	)
	err = inst.Invoke(0, ctx, pkt)
	return inst.Proto, ctx, err
}

func TestVMStringOps(t *testing.T) {
	proto, ctx, err := runChannel(t, `
channel network(ps : string, ss : int, p : ip*udp*blob) is
  let
    val a : string = "abc"
    val b : string = "abd"
    val cmp : string =
      (if a < b then "lt" else "ge") ^ "/" ^
      (if a <= a then "le" else "x") ^ "/" ^
      (if b > a then "gt" else "x") ^ "/" ^
      (if b >= b then "ge" else "x")
  in
    (println(cmp); deliver(p); (cmp, ss))
  end
`)
	if err != nil {
		t.Fatal(err)
	}
	if proto.AsStr() != "lt/le/gt/ge" {
		t.Errorf("string comparisons = %q", proto.AsStr())
	}
	if ctx.out.String() != "lt/le/gt/ge\n" {
		t.Errorf("output = %q", ctx.out.String())
	}
}

func TestVMGenericEquality(t *testing.T) {
	proto, _, err := runChannel(t, `
channel network(ps : int, ss : int, p : ip*udp*blob) is
  let
    val same : bool = (1, "a") = (1, "a")
    val diff : bool = (1, "a") <> (2, "a")
    val blobs : bool = #3 p = #3 p
  in
    (deliver(p);
     (if same andalso diff andalso blobs then 1 else 0, ss))
  end
`)
	if err != nil {
		t.Fatal(err)
	}
	if proto.AsInt() != 1 {
		t.Error("generic equality failed")
	}
}

func TestVMNegNotChar(t *testing.T) {
	proto, _, err := runChannel(t, `
channel network(ps : int, ss : int, p : ip*udp*blob) is
  let
    val n : int = - (3 + 4)
    val b : bool = not ('a' < 'b')
    val c : bool = 'z' >= 'a'
  in
    (deliver(p); (n + (if b then 100 else 0) + (if c then 10 else 0), ss))
  end
`)
	if err != nil {
		t.Fatal(err)
	}
	if proto.AsInt() != 3 { // -7 + 0 + 10
		t.Errorf("got %d, want 3", proto.AsInt())
	}
}

func TestVMExceptionInFunPropagates(t *testing.T) {
	proto, _, err := runChannel(t, `
fun boom(x : int) : int = x / 0
channel network(ps : int, ss : int, p : ip*udp*blob) is
  (deliver(p); (try boom(3) handle 42 end, ss))
`)
	if err != nil {
		t.Fatal(err)
	}
	if proto.AsInt() != 42 {
		t.Errorf("fun exception not handled: %d", proto.AsInt())
	}
}

func TestVMUnhandledExceptionIsError(t *testing.T) {
	_, _, err := runChannel(t, `
channel network(ps : int, ss : int, p : ip*udp*blob) is
  (deliver(p); (raise "kaboom", ss))
`)
	if err == nil || !strings.Contains(err.Error(), "kaboom") {
		t.Errorf("err = %v", err)
	}
}

func TestVMOnNeighborFlood(t *testing.T) {
	_, ctx, err := runChannel(t, `
channel network(ps : int, ss : int, p : ip*udp*blob) is
  (OnNeighbor(network, p); (ps, ss))
`)
	if err != nil {
		t.Fatal(err)
	}
	if ctx.flood != 1 {
		t.Errorf("flood sends = %d", ctx.flood)
	}
}

func TestVMGlobalsAndHostOps(t *testing.T) {
	proto, ctx, err := runChannel(t, `
val home : host = 10.0.0.1
channel network(ps : int, ss : int, p : ip*udp*blob) is
  (if ipSrc(#1 p) = home then OnRemote(network, p) else deliver(p);
   (ps + hostToInt(home) mod 1000, ss))
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(ctx.sent) != 1 {
		t.Errorf("sends = %d (src is home)", len(ctx.sent))
	}
	if proto.AsInt() != (0x0A000001 % 1000) {
		t.Errorf("proto = %d", proto.AsInt())
	}
}

func TestVMListsAndConcat(t *testing.T) {
	proto, _, err := runChannel(t, `
channel network(ps : string, ss : (string) list, p : ip*udp*blob) is
  let
    val empty : (string) list = listNew()
    val l : (string) list = cons("a", cons("b", empty))
    val joined : string = hd(l) ^ hd(tl(l)) ^ itos(listLen(l))
  in
    (deliver(p); (joined, l))
  end
`)
	if err != nil {
		t.Fatal(err)
	}
	if proto.AsStr() != "ab2" {
		t.Errorf("proto = %q", proto.AsStr())
	}
}

func TestVMRegisterPressure(t *testing.T) {
	// Deeply right-nested arithmetic forces high register indices.
	expr := "ps"
	for i := 1; i <= 40; i++ {
		expr = "(" + expr + " + " + itoa(i) + " * (ss + " + itoa(i) + "))"
	}
	src := `
channel network(ps : int, ss : int, p : ip*udp*blob) is
  (deliver(p); (` + expr + `, ss))
`
	proto, _, err := runChannel(t, src)
	if err != nil {
		t.Fatal(err)
	}
	want := int64(0)
	for i := int64(1); i <= 40; i++ {
		want += i * i
	}
	if proto.AsInt() != want {
		t.Errorf("got %d, want %d", proto.AsInt(), want)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}
