// The bytecode VM: a register machine with an explicit handler stack for
// try/handle. PLAN-P exceptions raised inside primitives arrive as Go
// panics carrying value.Exception; the VM converts them into transfers
// to the innermost handler, or returns them as errors from the invoke
// boundary.
package bytecode

import (
	"fmt"

	"planp.dev/planp/internal/lang/ast"
	"planp.dev/planp/internal/lang/engine"
	"planp.dev/planp/internal/lang/prims"
	"planp.dev/planp/internal/lang/value"
)

// vm executes code objects for one instance. The invoke-path vm is
// persistent: it reuses one register frame per channel body and per
// callee fun across invocations (instances are serialized by the
// runtime, and the language has no recursion, so a fun is never active
// twice on one stack — the same guarantees the JIT's frame reuse leans
// on). The handler stack is shared across nested exec frames with a
// base marker per frame, so try/handle costs no allocation once the
// backing array has grown.
type vm struct {
	c        *compiled
	ctx      prims.Context
	globals  []value.Value
	handlers []int

	// frames[i] is the reusable register file for channel body i;
	// funFrames[i] for fun i. nil on the construction-time vm (globals
	// and initstates run once; fresh frames keep that path simple).
	frames    [][]value.Value
	funFrames [][]value.Value
}

func (c *compiled) NewInstance(ctx prims.Context) (*engine.Instance, error) {
	m := &vm{c: c, ctx: ctx}
	for i, fn := range c.globals {
		v, err := m.exec(fn, make([]value.Value, fn.NumRegs))
		if err != nil {
			return nil, fmt.Errorf("val %s: %w", c.info.Globals[i].Decl.Name, err)
		}
		m.globals = append(m.globals, v)
	}
	initIdx := 0
	proto, chans, err := engine.InitStates(c.info, func(_ ast.Expr, _ int) (value.Value, error) {
		for c.initStates[initIdx] == nil {
			initIdx++
		}
		fn := c.initStates[initIdx]
		initIdx++
		return m.exec(fn, make([]value.Value, fn.NumRegs))
	})
	if err != nil {
		return nil, err
	}
	rm := &vm{
		c:         c,
		globals:   m.globals,
		frames:    make([][]value.Value, len(c.bodies)),
		funFrames: make([][]value.Value, len(c.funs)),
	}
	for i, fn := range c.bodies {
		rm.frames[i] = make([]value.Value, fn.NumRegs)
	}
	for i, fn := range c.funs {
		rm.funFrames[i] = make([]value.Value, fn.NumRegs)
	}
	invoke := func(ci int, ctx prims.Context, ps, ss, pkt value.Value) (value.Value, value.Value, error) {
		fn := c.bodies[ci]
		frame := rm.frames[ci]
		frame[0], frame[1], frame[2] = ps, ss, pkt
		rm.ctx = ctx
		res, err := rm.exec(fn, frame)
		if err != nil {
			return value.Unit, value.Unit, err
		}
		return res.Vs[0], res.Vs[1], nil
	}
	return engine.NewInstance(c, proto, chans, invoke), nil
}

// exec runs fn to completion, converting an unhandled PLAN-P exception
// into an error. Handlers pushed by this frame live above base on the
// shared stack; both exits truncate back to base.
func (m *vm) exec(fn *Fn, regs []value.Value) (value.Value, error) {
	pc := 0
	base := len(m.handlers)
	for {
		res, newPC, err := m.run(fn, regs, pc)
		if err == nil && newPC < 0 {
			m.handlers = m.handlers[:base]
			return res, nil
		}
		if err != nil {
			// Exception: transfer to the innermost handler if any.
			if n := len(m.handlers); n > base {
				pc = m.handlers[n-1]
				m.handlers = m.handlers[:n-1]
				continue
			}
			m.handlers = m.handlers[:base]
			return value.Unit, err
		}
		pc = newPC
	}
}

// run executes instructions from pc until OpReturn (newPC = -1) or a
// PLAN-P exception (err != nil). It recovers panics carrying
// value.Exception; other panics propagate (they are engine bugs).
func (m *vm) run(fn *Fn, r []value.Value, pc int) (res value.Value, newPC int, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			if ex, ok := rec.(value.Exception); ok {
				err = ex
				return
			}
			panic(rec)
		}
	}()
	code := fn.Code
	for {
		in := code[pc]
		pc++
		switch in.Op {
		case OpNop:

		case OpConst:
			r[in.A] = fn.Consts[in.B]
		case OpMove:
			r[in.A] = r[in.B]
		case OpGlobal:
			r[in.A] = m.globals[in.B]

		case OpProj:
			r[in.A] = r[in.B].Vs[in.C]
		case OpTuple:
			elems := make([]value.Value, in.C)
			copy(elems, r[in.B:in.B+in.C])
			r[in.A] = value.TupleV(elems...)

		case OpJump:
			pc = in.A
		case OpJumpIfF:
			if r[in.A].I == 0 {
				pc = in.B
			}
		case OpJumpIfT:
			if r[in.A].I != 0 {
				pc = in.B
			}

		case OpAdd:
			r[in.A] = value.Int(r[in.B].I + r[in.C].I)
		case OpSub:
			r[in.A] = value.Int(r[in.B].I - r[in.C].I)
		case OpMul:
			r[in.A] = value.Int(r[in.B].I * r[in.C].I)
		case OpDiv:
			if r[in.C].I == 0 {
				value.Raise("division by zero")
			}
			r[in.A] = value.Int(r[in.B].I / r[in.C].I)
		case OpMod:
			if r[in.C].I == 0 {
				value.Raise("mod by zero")
			}
			r[in.A] = value.Int(r[in.B].I % r[in.C].I)
		case OpNeg:
			r[in.A] = value.Int(-r[in.B].I)
		case OpNot:
			r[in.A] = value.Bool(r[in.B].I == 0)
		case OpConcat:
			r[in.A] = value.Str(r[in.B].S + r[in.C].S)

		case OpAddK:
			r[in.A] = value.Int(r[in.B].I + int64(in.C))
		case OpSubK:
			r[in.A] = value.Int(r[in.B].I - int64(in.C))
		case OpMulK:
			r[in.A] = value.Int(r[in.B].I * int64(in.C))

		case OpEqI:
			r[in.A] = value.Bool(r[in.B].I == r[in.C].I)
		case OpNeI:
			r[in.A] = value.Bool(r[in.B].I != r[in.C].I)
		case OpEqS:
			r[in.A] = value.Bool(r[in.B].S == r[in.C].S)
		case OpNeS:
			r[in.A] = value.Bool(r[in.B].S != r[in.C].S)
		case OpEqV:
			r[in.A] = value.Bool(value.Equal(r[in.B], r[in.C]))
		case OpNeV:
			r[in.A] = value.Bool(!value.Equal(r[in.B], r[in.C]))
		case OpLtI:
			r[in.A] = value.Bool(r[in.B].I < r[in.C].I)
		case OpLeI:
			r[in.A] = value.Bool(r[in.B].I <= r[in.C].I)
		case OpGtI:
			r[in.A] = value.Bool(r[in.B].I > r[in.C].I)
		case OpGeI:
			r[in.A] = value.Bool(r[in.B].I >= r[in.C].I)
		case OpLtS:
			r[in.A] = value.Bool(r[in.B].S < r[in.C].S)
		case OpLeS:
			r[in.A] = value.Bool(r[in.B].S <= r[in.C].S)
		case OpGtS:
			r[in.A] = value.Bool(r[in.B].S > r[in.C].S)
		case OpGeS:
			r[in.A] = value.Bool(r[in.B].S >= r[in.C].S)

		case OpEqIK:
			r[in.A] = value.Bool(r[in.B].I == int64(in.C))
		case OpNeIK:
			r[in.A] = value.Bool(r[in.B].I != int64(in.C))
		case OpLtIK:
			r[in.A] = value.Bool(r[in.B].I < int64(in.C))
		case OpLeIK:
			r[in.A] = value.Bool(r[in.B].I <= int64(in.C))
		case OpGtIK:
			r[in.A] = value.Bool(r[in.B].I > int64(in.C))
		case OpGeIK:
			r[in.A] = value.Bool(r[in.B].I >= int64(in.C))

		case OpJEqI:
			if r[in.B].I == r[in.C].I {
				pc = in.A
			}
		case OpJNeI:
			if r[in.B].I != r[in.C].I {
				pc = in.A
			}
		case OpJLtI:
			if r[in.B].I < r[in.C].I {
				pc = in.A
			}
		case OpJLeI:
			if r[in.B].I <= r[in.C].I {
				pc = in.A
			}
		case OpJGtI:
			if r[in.B].I > r[in.C].I {
				pc = in.A
			}
		case OpJGeI:
			if r[in.B].I >= r[in.C].I {
				pc = in.A
			}

		case OpJEqIK:
			if r[in.B].I == int64(in.C) {
				pc = in.A
			}
		case OpJNeIK:
			if r[in.B].I != int64(in.C) {
				pc = in.A
			}
		case OpJLtIK:
			if r[in.B].I < int64(in.C) {
				pc = in.A
			}
		case OpJLeIK:
			if r[in.B].I <= int64(in.C) {
				pc = in.A
			}
		case OpJGtIK:
			if r[in.B].I > int64(in.C) {
				pc = in.A
			}
		case OpJGeIK:
			if r[in.B].I >= int64(in.C) {
				pc = in.A
			}

		case OpJEqS:
			if r[in.B].S == r[in.C].S {
				pc = in.A
			}
		case OpJNeS:
			if r[in.B].S != r[in.C].S {
				pc = in.A
			}

		case OpJProjF:
			if r[in.B].Vs[in.C].I == 0 {
				pc = in.A
			}

		case OpCallPrim:
			fnp := m.c.primFns[in.B]
			r[in.A] = fnp(m.ctx, r[in.C:in.C+in.Aux])

		case OpCallFun:
			callee := m.c.funs[in.B]
			var cframe []value.Value
			if m.funFrames != nil {
				cframe = m.funFrames[in.B]
			} else {
				cframe = make([]value.Value, callee.NumRegs)
			}
			copy(cframe, r[in.C:in.C+in.Aux])
			v, cerr := m.exec(callee, cframe)
			if cerr != nil {
				// Re-panic the original exception so the caller's
				// handler stack sees it unchanged.
				if ex, ok := cerr.(value.Exception); ok {
					panic(ex)
				}
				panic(cerr)
			}
			r[in.A] = v

		case OpSend:
			if in.C == 0 {
				m.ctx.OnRemote(fn.ChanNames[in.A], r[in.B])
			} else {
				m.ctx.OnNeighbor(fn.ChanNames[in.A], r[in.B])
			}

		case OpRaise:
			value.Raise("%s", r[in.A].S)

		case OpTryPush:
			m.handlers = append(m.handlers, in.A)
		case OpTryPop:
			m.handlers = m.handlers[:len(m.handlers)-1]

		case OpReturn:
			return r[in.A], -1, nil

		default:
			panic(fmt.Sprintf("planp/bytecode: unknown opcode %s", in.Op))
		}
	}
}
