// Bytecode compilation: a single-pass translator from the checked AST to
// register code. Variable slots from the checker map directly to the low
// registers; expression temporaries are allocated above them with a
// stack discipline so register pressure stays proportional to
// expression depth.
package bytecode

import (
	"fmt"

	"planp.dev/planp/internal/lang/ast"
	"planp.dev/planp/internal/lang/engine"
	"planp.dev/planp/internal/lang/prims"
	"planp.dev/planp/internal/lang/typecheck"
	"planp.dev/planp/internal/lang/value"
)

// compiled implements engine.Compiled for the bytecode VM.
type compiled struct {
	info *typecheck.Info

	globals    []*Fn
	initStates []*Fn // indexed like info.Channels; nil where no initstate
	bodies     []*Fn
	funs       []*Fn

	// primFns caches every primitive's implementation pointer so
	// OpCallPrim dispatch is one slice index instead of a registry
	// lookup per call — the bytecode analogue of the JIT's compile-time
	// primitive capture (a monomorphic inline cache that can never miss,
	// since primitive identity is static in PLAN-P).
	primFns []func(prims.Context, []value.Value) value.Value
}

var _ engine.Compiled = (*compiled)(nil)

// Compile translates a checked program to bytecode.
func Compile(info *typecheck.Info) (engine.Compiled, error) {
	c := &compiled{info: info}
	for i := range info.Funs {
		f := &info.Funs[i]
		fn, err := compileFn("fun "+f.Decl.Name, f.Decl.Body, f.FrameSize)
		if err != nil {
			return nil, err
		}
		c.funs = append(c.funs, fn)
	}
	for _, g := range info.Globals {
		fn, err := compileFn("val "+g.Decl.Name, g.Decl.Init, g.FrameSize)
		if err != nil {
			return nil, err
		}
		c.globals = append(c.globals, fn)
	}
	for i := range info.Channels {
		ch := &info.Channels[i]
		if ch.Decl.InitState != nil {
			fn, err := compileFn(fmt.Sprintf("initstate %s#%d", ch.Decl.Name, i), ch.Decl.InitState, ch.FrameSize)
			if err != nil {
				return nil, err
			}
			c.initStates = append(c.initStates, fn)
		} else {
			c.initStates = append(c.initStates, nil)
		}
		fn, err := compileFn(fmt.Sprintf("channel %s#%d", ch.Decl.Name, i), ch.Decl.Body, ch.FrameSize)
		if err != nil {
			return nil, err
		}
		c.bodies = append(c.bodies, fn)
	}
	c.primFns = make([]func(prims.Context, []value.Value) value.Value, prims.Count())
	for i := range c.primFns {
		c.primFns[i] = prims.Get(i).Fn
	}
	return c, nil
}

func (c *compiled) EngineName() string    { return "bytecode" }
func (c *compiled) Info() *typecheck.Info { return c.info }

// Shareable: code objects are read-only after compilation; the VM
// allocates a fresh register frame per execution.
func (c *compiled) Shareable() bool { return true }

// DisasmAll renders every code object (for cmd/planp -disasm).
func (c *compiled) DisasmAll() string {
	var out string
	for _, f := range c.funs {
		out += f.Disasm()
	}
	for _, f := range c.globals {
		out += f.Disasm()
	}
	for i, f := range c.initStates {
		if f != nil {
			out += f.Disasm()
		}
		out += c.bodies[i].Disasm()
	}
	return out
}

// fnCompiler compiles one expression tree into one Fn.
type fnCompiler struct {
	fn        *Fn
	frameBase int // registers below this are variable slots, not temps
	nextReg   int // next free temporary register
	maxReg    int
	chanIdx   map[string]int
}

func compileFn(name string, body ast.Expr, frameSize int) (*Fn, error) {
	fc := &fnCompiler{
		fn:        &Fn{Name: name},
		frameBase: frameSize,
		nextReg:   frameSize,
		maxReg:    frameSize,
		chanIdx:   map[string]int{},
	}
	res := fc.expr(body)
	fc.emit(Instr{Op: OpReturn, A: res})
	fc.fn.NumRegs = fc.maxReg
	return fc.fn, nil
}

func (fc *fnCompiler) emit(i Instr) int {
	fc.fn.Code = append(fc.fn.Code, i)
	return len(fc.fn.Code) - 1
}

// setJumpTarget patches the jump at index at. OpJumpIfF/T test a
// register in A and carry the target in B; OpJump and every fused
// branch use A for the target (their operands live in B and C).
func (fc *fnCompiler) setJumpTarget(at, target int) {
	switch fc.fn.Code[at].Op {
	case OpJumpIfF, OpJumpIfT:
		fc.fn.Code[at].B = target
	default:
		fc.fn.Code[at].A = target
	}
}

// kOps maps a register-register instruction to its literal-operand
// superinstruction. Division and mod stay register-only so the
// raise-on-zero paths have one shape.
var kOps = map[Op]Op{
	OpAdd: OpAddK, OpSub: OpSubK, OpMul: OpMulK,
	OpEqI: OpEqIK, OpNeI: OpNeIK, OpLtI: OpLtIK,
	OpLeI: OpLeIK, OpGtI: OpGtIK, OpGeI: OpGeIK,
}

// branchNeg maps a comparison to the fused branch that jumps when the
// comparison is FALSE — the fusion site is "if"'s branch-to-else, so
// the source condition is negated.
var branchNeg = map[Op]Op{
	OpEqI: OpJNeI, OpNeI: OpJEqI, OpLtI: OpJGeI,
	OpLeI: OpJGtI, OpGtI: OpJLeI, OpGeI: OpJLtI,
	OpEqIK: OpJNeIK, OpNeIK: OpJEqIK, OpLtIK: OpJGeIK,
	OpLeIK: OpJGtIK, OpGtIK: OpJLeIK, OpGeIK: OpJLtIK,
	OpEqS: OpJNeS, OpNeS: OpJEqS,
}

// emitK fuses "const c; op dst, b, c" into one literal-operand
// instruction when the constant was materialized only to feed op: the
// const must be the instruction just emitted, into a temporary (never a
// variable slot — those outlive the expression). Returns false when the
// shape does not match and the caller should emit the plain form.
func (fc *fnCompiler) emitK(op Op, dst, b, c int) bool {
	kop, ok := kOps[op]
	if !ok {
		return false
	}
	n := len(fc.fn.Code)
	if n == 0 || c < fc.frameBase {
		return false
	}
	in := fc.fn.Code[n-1]
	if in.Op != OpConst || in.A != c {
		return false
	}
	k := fc.fn.Consts[in.B].I
	if int64(int(k)) != k {
		return false
	}
	fc.fn.Code = fc.fn.Code[:n-1]
	if in.B == len(fc.fn.Consts)-1 {
		fc.fn.Consts = fc.fn.Consts[:in.B]
	}
	fc.emit(Instr{Op: kop, A: dst, B: b, C: int(k)})
	return true
}

// branchFalse emits the jump taken when R[cond] is false, fusing the
// instruction that produced cond when it is the one just emitted and
// wrote a dead temporary. Replacing the producer in place is safe even
// when an earlier jump targets its index: execution arriving there runs
// the fused form, which has identical semantics to the producer plus
// the branch. Conditions that flow through a Move (andalso/orelse, if-
// and try-valued conditions) never fuse — Move is not in the tables,
// and their destination register is live. Returns the jump's index for
// setJumpTarget.
func (fc *fnCompiler) branchFalse(cond int) int {
	if n := len(fc.fn.Code); n > 0 && cond >= fc.frameBase {
		in := fc.fn.Code[n-1]
		if in.A == cond {
			if j, ok := branchNeg[in.Op]; ok {
				fc.fn.Code[n-1] = Instr{Op: j, B: in.B, C: in.C}
				return n - 1
			}
			switch in.Op {
			case OpProj:
				fc.fn.Code[n-1] = Instr{Op: OpJProjF, B: in.B, C: in.C}
				return n - 1
			case OpNot:
				// not x; jumpf  ==  jumpt x
				fc.fn.Code[n-1] = Instr{Op: OpJumpIfT, A: in.B}
				return n - 1
			}
		}
	}
	return fc.emit(Instr{Op: OpJumpIfF, A: cond})
}

func (fc *fnCompiler) alloc() int {
	r := fc.nextReg
	fc.nextReg++
	if fc.nextReg > fc.maxReg {
		fc.maxReg = fc.nextReg
	}
	return r
}

// save/restore implement stack-discipline temporary allocation around
// subexpressions.
func (fc *fnCompiler) mark() int        { return fc.nextReg }
func (fc *fnCompiler) release(mark int) { fc.nextReg = mark }

func (fc *fnCompiler) constIdx(v value.Value) int {
	fc.fn.Consts = append(fc.fn.Consts, v)
	return len(fc.fn.Consts) - 1
}

func (fc *fnCompiler) chanName(name string) int {
	if i, ok := fc.chanIdx[name]; ok {
		return i
	}
	fc.fn.ChanNames = append(fc.fn.ChanNames, name)
	i := len(fc.fn.ChanNames) - 1
	fc.chanIdx[name] = i
	return i
}

// expr compiles e and returns the register holding its value.
func (fc *fnCompiler) expr(e ast.Expr) int {
	switch e := e.(type) {
	case *ast.IntLit:
		return fc.loadConst(value.Int(e.Value))
	case *ast.BoolLit:
		return fc.loadConst(value.Bool(e.Value))
	case *ast.StringLit:
		return fc.loadConst(value.Str(e.Value))
	case *ast.CharLit:
		return fc.loadConst(value.Char(e.Value))
	case *ast.UnitLit:
		return fc.loadConst(value.Unit)
	case *ast.HostLit:
		return fc.loadConst(value.HostV(value.Host(e.Addr)))

	case *ast.Var:
		if e.Slot >= 0 {
			return e.Slot
		}
		dst := fc.alloc()
		fc.emit(Instr{Op: OpGlobal, A: dst, B: e.Global})
		return dst

	case *ast.Proj:
		mark := fc.mark()
		src := fc.expr(e.Tuple)
		fc.release(mark)
		dst := fc.alloc()
		fc.emit(Instr{Op: OpProj, A: dst, B: src, C: e.Index - 1})
		return dst

	case *ast.Let:
		for i := range e.Binds {
			b := &e.Binds[i]
			mark := fc.mark()
			src := fc.expr(b.Init)
			fc.release(mark)
			if src != b.Slot {
				fc.emit(Instr{Op: OpMove, A: b.Slot, B: src})
			}
		}
		return fc.expr(e.Body)

	case *ast.If:
		mark := fc.mark()
		cond := fc.expr(e.Cond)
		fc.release(mark)
		dst := fc.alloc()
		jf := fc.branchFalse(cond)
		mark = fc.mark()
		t := fc.expr(e.Then)
		fc.release(mark)
		if t != dst {
			fc.emit(Instr{Op: OpMove, A: dst, B: t})
		}
		jend := fc.emit(Instr{Op: OpJump})
		fc.setJumpTarget(jf, len(fc.fn.Code))
		mark = fc.mark()
		el := fc.expr(e.Else)
		fc.release(mark)
		if el != dst {
			fc.emit(Instr{Op: OpMove, A: dst, B: el})
		}
		fc.fn.Code[jend].A = len(fc.fn.Code)
		return dst

	case *ast.Seq:
		for _, sub := range e.Exprs[:len(e.Exprs)-1] {
			mark := fc.mark()
			fc.expr(sub)
			fc.release(mark)
		}
		return fc.expr(e.Exprs[len(e.Exprs)-1])

	case *ast.TupleExpr:
		// Elements must land in contiguous registers for OpTuple.
		base := fc.nextReg
		for _, sub := range e.Elems {
			slot := fc.alloc()
			mark := fc.mark()
			src := fc.expr(sub)
			fc.release(mark)
			if src != slot {
				fc.emit(Instr{Op: OpMove, A: slot, B: src})
			}
		}
		dst := fc.alloc()
		fc.emit(Instr{Op: OpTuple, A: dst, B: base, C: len(e.Elems)})
		return dst

	case *ast.Unary:
		mark := fc.mark()
		src := fc.expr(e.X)
		fc.release(mark)
		dst := fc.alloc()
		if e.Op == "not" {
			fc.emit(Instr{Op: OpNot, A: dst, B: src})
		} else {
			fc.emit(Instr{Op: OpNeg, A: dst, B: src})
		}
		return dst

	case *ast.Binary:
		return fc.binary(e)

	case *ast.Try:
		dst := fc.alloc()
		tp := fc.emit(Instr{Op: OpTryPush})
		mark := fc.mark()
		b := fc.expr(e.Body)
		fc.release(mark)
		if b != dst {
			fc.emit(Instr{Op: OpMove, A: dst, B: b})
		}
		fc.emit(Instr{Op: OpTryPop})
		jend := fc.emit(Instr{Op: OpJump})
		fc.fn.Code[tp].A = len(fc.fn.Code) // handler entry
		mark = fc.mark()
		h := fc.expr(e.Handler)
		fc.release(mark)
		if h != dst {
			fc.emit(Instr{Op: OpMove, A: dst, B: h})
		}
		fc.fn.Code[jend].A = len(fc.fn.Code)
		return dst

	case *ast.Raise:
		mark := fc.mark()
		msg := fc.expr(e.Msg)
		fc.release(mark)
		fc.emit(Instr{Op: OpRaise, A: msg})
		// Unreachable result; allocate a register to keep invariants.
		return fc.alloc()

	case *ast.Call:
		return fc.call(e)

	default:
		panic(fmt.Sprintf("planp/bytecode: unhandled expression %T", e))
	}
}

func (fc *fnCompiler) loadConst(v value.Value) int {
	dst := fc.alloc()
	fc.emit(Instr{Op: OpConst, A: dst, B: fc.constIdx(v)})
	return dst
}

var arithOps = map[string]Op{
	"+": OpAdd, "-": OpSub, "*": OpMul, "/": OpDiv, "mod": OpMod, "^": OpConcat,
}

var ordOpsInt = map[string]Op{"<": OpLtI, "<=": OpLeI, ">": OpGtI, ">=": OpGeI}
var ordOpsStr = map[string]Op{"<": OpLtS, "<=": OpLeS, ">": OpGtS, ">=": OpGeS}

func (fc *fnCompiler) binary(e *ast.Binary) int {
	switch e.Op {
	case "andalso", "orelse":
		// Short-circuit with jumps.
		dst := fc.alloc()
		mark := fc.mark()
		l := fc.expr(e.L)
		fc.release(mark)
		if l != dst {
			fc.emit(Instr{Op: OpMove, A: dst, B: l})
		}
		var j int
		if e.Op == "andalso" {
			j = fc.emit(Instr{Op: OpJumpIfF, A: dst})
		} else {
			j = fc.emit(Instr{Op: OpJumpIfT, A: dst})
		}
		mark = fc.mark()
		r := fc.expr(e.R)
		fc.release(mark)
		if r != dst {
			fc.emit(Instr{Op: OpMove, A: dst, B: r})
		}
		fc.setJumpTarget(j, len(fc.fn.Code))
		return dst
	}

	mark := fc.mark()
	l := fc.expr(e.L)
	r := fc.expr(e.R)
	fc.release(mark)
	dst := fc.alloc()
	if op, ok := arithOps[e.Op]; ok {
		if !fc.emitK(op, dst, l, r) {
			fc.emit(Instr{Op: op, A: dst, B: l, C: r})
		}
		return dst
	}
	switch e.Op {
	case "=", "<>":
		eq, ne := typeEqOps(e.OperandType)
		op := eq
		if e.Op == "<>" {
			op = ne
		}
		if !fc.emitK(op, dst, l, r) {
			fc.emit(Instr{Op: op, A: dst, B: l, C: r})
		}
		return dst
	case "<", "<=", ">", ">=":
		table := ordOpsInt
		if ast.Equal(e.OperandType, ast.StringT) {
			table = ordOpsStr
		}
		if !fc.emitK(table[e.Op], dst, l, r) {
			fc.emit(Instr{Op: table[e.Op], A: dst, B: l, C: r})
		}
		return dst
	}
	panic(fmt.Sprintf("planp/bytecode: unhandled operator %s", e.Op))
}

func (fc *fnCompiler) call(e *ast.Call) int {
	if e.Name == "OnRemote" || e.Name == "OnNeighbor" {
		cref := e.Args[0].(*ast.ChanRef)
		mark := fc.mark()
		pkt := fc.expr(e.Args[1])
		fc.release(mark)
		mode := 0
		if e.Name == "OnNeighbor" {
			mode = 1
		}
		fc.emit(Instr{Op: OpSend, A: fc.chanName(cref.Name), B: pkt, C: mode})
		return fc.loadConst(value.Unit)
	}

	// Arguments must be contiguous.
	base := fc.nextReg
	for _, arg := range e.Args {
		slot := fc.alloc()
		mark := fc.mark()
		src := fc.expr(arg)
		fc.release(mark)
		if src != slot {
			fc.emit(Instr{Op: OpMove, A: slot, B: src})
		}
	}
	dst := fc.alloc()
	if e.FunIndex >= 0 {
		fc.emit(Instr{Op: OpCallFun, A: dst, B: e.FunIndex, C: base, Aux: len(e.Args)})
	} else {
		fc.emit(Instr{Op: OpCallPrim, A: dst, B: e.PrimIndex, C: base, Aux: len(e.Args)})
	}
	return dst
}

var _ = prims.Count // keep the import for the VM half of the package
