package bytecode

import (
	"strings"
	"testing"

	"planp.dev/planp/internal/lang/parser"
	"planp.dev/planp/internal/lang/typecheck"
)

func compileSrc(t *testing.T, src string) *compiled {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	info, err := typecheck.Check(prog)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compile(info)
	if err != nil {
		t.Fatal(err)
	}
	return c.(*compiled)
}

func TestCompileShapes(t *testing.T) {
	c := compileSrc(t, `
val k : int = 3
fun double(x : int) : int = x * 2
channel network(ps : int, ss : int, p : ip*udp*blob) is
  (deliver(p); (double(ps) + k, ss))
`)
	if len(c.globals) != 1 || len(c.funs) != 1 || len(c.bodies) != 1 {
		t.Fatalf("globals/funs/bodies = %d/%d/%d", len(c.globals), len(c.funs), len(c.bodies))
	}
	if c.initStates[0] != nil {
		t.Error("no initstate expected")
	}
	body := c.bodies[0]
	if body.NumRegs < 4 {
		t.Errorf("body registers = %d", body.NumRegs)
	}
	last := body.Code[len(body.Code)-1]
	if last.Op != OpReturn {
		t.Errorf("last instruction %s, want return", last.Op)
	}
}

func TestDisasm(t *testing.T) {
	c := compileSrc(t, `
channel network(ps : int, ss : int, p : ip*udp*blob) is
  (OnRemote(network, p); (ps + 1, ss))
`)
	out := c.DisasmAll()
	for _, want := range []string{"channel network#0", "send", "add", "tuple", "return", "; network"} {
		if !strings.Contains(out, want) {
			t.Errorf("disasm missing %q:\n%s", want, out)
		}
	}
}

func TestOpcodeNames(t *testing.T) {
	if OpAdd.String() != "add" || OpCallPrim.String() != "callprim" {
		t.Error("opcode names")
	}
	if !strings.Contains(Op(250).String(), "250") {
		t.Error("unknown opcode should render numerically")
	}
}

// TestShortCircuitCompilation ensures andalso/orelse skip their RHS
// (counting instructions executed via a side effect would need hooks;
// instead verify via a division that would raise).
func TestShortCircuitNoRHSEvaluation(t *testing.T) {
	c := compileSrc(t, `
channel network(ps : int, ss : int, p : ip*udp*blob) is
  (deliver(p);
   (if false andalso (1 / 0 = 0) then 1
    else if true orelse (1 / 0 = 0) then 2 else 3, ss))
`)
	// Find conditional jumps in the body.
	body := c.bodies[0]
	jumps := 0
	for _, in := range body.Code {
		if in.Op == OpJumpIfF || in.Op == OpJumpIfT {
			jumps++
		}
	}
	if jumps < 3 {
		t.Errorf("expected short-circuit jumps, found %d", jumps)
	}
}

func TestTupleRegisterContiguity(t *testing.T) {
	// Wide tuples force contiguous register blocks; a miscompile here
	// would scramble element order.
	c := compileSrc(t, `
channel network(ps : int*int*int*int*int, ss : int, p : ip*udp*blob) is
  (deliver(p); ((#5 ps, #4 ps, #3 ps, #2 ps, #1 ps + blobLen(#3 p)), ss))
`)
	found := false
	for _, in := range c.bodies[0].Code {
		if in.Op == OpTuple && in.C == 5 {
			found = true
		}
	}
	if !found {
		t.Error("no 5-wide OpTuple emitted")
	}
}
