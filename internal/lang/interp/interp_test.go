package interp

import (
	"strings"
	"testing"

	"planp.dev/planp/internal/lang/parser"
	"planp.dev/planp/internal/lang/prims"
	"planp.dev/planp/internal/lang/typecheck"
	"planp.dev/planp/internal/lang/value"
)

type ctx struct {
	out  strings.Builder
	sent []string
}

func (c *ctx) OnRemote(ch string, _ value.Value)   { c.sent = append(c.sent, ch) }
func (c *ctx) OnNeighbor(ch string, _ value.Value) { c.sent = append(c.sent, "~"+ch) }
func (c *ctx) Deliver(value.Value)                 {}
func (c *ctx) Print(s string)                      { c.out.WriteString(s) }
func (c *ctx) ThisHost() value.Host                { return 7 }
func (c *ctx) Now() int64                          { return 99 }
func (c *ctx) Rand(int64) int64                    { return 0 }
func (c *ctx) LinkLoadTo(value.Host) int64         { return 0 }
func (c *ctx) LinkBandwidthTo(value.Host) int64    { return 0 }

var _ prims.Context = (*ctx)(nil)

func run(t *testing.T, src, payload string) (value.Value, *ctx, error) {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	info, err := typecheck.Check(prog)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compile(info)
	if err != nil {
		t.Fatal(err)
	}
	cx := &ctx{}
	inst, err := c.NewInstance(cx)
	if err != nil {
		t.Fatal(err)
	}
	p := value.TupleV(
		value.IP(&value.IPHeader{Src: 1, Dst: 2, Proto: 17, TTL: 64}),
		value.UDP(&value.UDPHeader{SrcPort: 3, DstPort: 4}),
		value.Blob([]byte(payload)),
	)
	err = inst.Invoke(0, cx, p)
	return inst.Proto, cx, err
}

func TestEvaluatorCore(t *testing.T) {
	proto, cx, err := run(t, `
val base : int = 5
fun square(x : int) : int = x * x
channel network(ps : int, ss : int, p : ip*udp*blob) is
  let
    val a : int = square(base) + blobLen(#3 p)
    val b : string = "n=" ^ itos(a)
  in
    (print(b);
     OnRemote(network, p);
     (if a > 25 then a else 0 - a, ss))
  end
`, "xyz")
	if err != nil {
		t.Fatal(err)
	}
	if proto.AsInt() != 28 {
		t.Errorf("proto = %d, want 28", proto.AsInt())
	}
	if cx.out.String() != "n=28" {
		t.Errorf("out = %q", cx.out.String())
	}
	if len(cx.sent) != 1 || cx.sent[0] != "network" {
		t.Errorf("sent = %v", cx.sent)
	}
}

func TestEvaluatorOrderingAndEquality(t *testing.T) {
	proto, _, err := run(t, `
channel network(ps : int, ss : int, p : ip*udp*blob) is
  let
    val strs : bool = "ab" < "b" andalso "b" <= "b" andalso "c" > "b" andalso "c" >= "c"
    val chars : bool = 'a' < 'z' andalso not ('a' = 'b')
    val tups : bool = (1, 'x') = (1, 'x') andalso (1, 'x') <> (1, 'y')
  in
    (deliver(p);
     ((if strs then 4 else 0) + (if chars then 2 else 0) + (if tups then 1 else 0), ss))
  end
`, "")
	if err != nil {
		t.Fatal(err)
	}
	if proto.AsInt() != 7 {
		t.Errorf("flags = %d, want 7", proto.AsInt())
	}
}

func TestEvaluatorShortCircuit(t *testing.T) {
	// The RHS of andalso/orelse must not run when short-circuited (a
	// division by zero would raise).
	proto, _, err := run(t, `
channel network(ps : int, ss : int, p : ip*udp*blob) is
  let
    val a : bool = false andalso (1 / 0 = 0)
    val b : bool = true orelse (1 / 0 = 0)
  in
    (deliver(p); (if b andalso not a then 1 else 0, ss))
  end
`, "")
	if err != nil {
		t.Fatal(err)
	}
	if proto.AsInt() != 1 {
		t.Error("short circuit broken")
	}
}

func TestEvaluatorTryNesting(t *testing.T) {
	proto, _, err := run(t, `
channel network(ps : int, ss : int, p : ip*udp*blob) is
  (deliver(p);
   (try
      1 / blobLen(#3 p)
    handle
      try raise "inner" handle 77 end
    end, ss))
`, "")
	if err != nil {
		t.Fatal(err)
	}
	if proto.AsInt() != 77 {
		t.Errorf("proto = %d, want 77", proto.AsInt())
	}
}

func TestEvaluatorEnvPrims(t *testing.T) {
	proto, _, err := run(t, `
channel network(ps : int, ss : int, p : ip*udp*blob) is
  (deliver(p); (hostToInt(thisHost()) * 1000 + time(), ss))
`, "")
	if err != nil {
		t.Fatal(err)
	}
	if proto.AsInt() != 7099 {
		t.Errorf("proto = %d", proto.AsInt())
	}
}

func TestGlobalInitFailureSurfacesAsError(t *testing.T) {
	prog, err := parser.Parse(`
val bad : int = 1 / 0
channel network(ps : int, ss : int, p : ip*udp*blob) is (deliver(p); (bad, ss))
`)
	if err != nil {
		t.Fatal(err)
	}
	info, err := typecheck.Check(prog)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compile(info)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.NewInstance(&ctx{}); err == nil {
		t.Error("global initializer exception must fail NewInstance")
	} else if !strings.Contains(err.Error(), "bad") {
		t.Errorf("error should name the val: %v", err)
	}
}

func TestEngineNameAndInfo(t *testing.T) {
	prog, _ := parser.Parse(`channel network(ps : int, ss : int, p : ip*udp*blob) is (deliver(p); (ps, ss))`)
	info, _ := typecheck.Check(prog)
	c, _ := Compile(info)
	if c.EngineName() != "interp" {
		t.Errorf("name %s", c.EngineName())
	}
	if c.Info() != info {
		t.Error("Info should return the checked program")
	}
}
