// Package interp is the portable PLAN-P interpreter: a straightforward
// tree-walking evaluator over the checked AST.
//
// This is the analogue of the paper's ~8000-line C interpreter — the
// reference semantics from which the specialized engines are derived.
// It dispatches on AST node kinds and operator names at every step; the
// JIT (internal/lang/jit) is exactly this evaluator with the dispatch
// partially evaluated away, and the two are kept behaviorally identical
// by the cross-engine test suite.
package interp

import (
	"fmt"

	"planp.dev/planp/internal/lang/ast"
	"planp.dev/planp/internal/lang/engine"
	"planp.dev/planp/internal/lang/prims"
	"planp.dev/planp/internal/lang/typecheck"
	"planp.dev/planp/internal/lang/value"
)

// compiled implements engine.Compiled for the interpreter. "Compilation"
// is the identity: the interpreter executes the checked AST directly,
// which is why its code-generation time is ~0 and its per-packet cost is
// the highest of the three engines.
type compiled struct {
	info *typecheck.Info
}

var _ engine.Compiled = (*compiled)(nil)

// Compile prepares a checked program for interpretation.
func Compile(info *typecheck.Info) (engine.Compiled, error) {
	return &compiled{info: info}, nil
}

func (c *compiled) EngineName() string    { return "interp" }
func (c *compiled) Info() *typecheck.Info { return c.info }

// Shareable: the artifact is just the read-only AST; every invocation
// allocates its own frame and every instance its own globals.
func (c *compiled) Shareable() bool { return true }

func (c *compiled) NewInstance(ctx prims.Context) (*engine.Instance, error) {
	ev := &evaluator{info: c.info, ctx: ctx}
	// Top-level vals evaluate in declaration order; later initializers
	// may reference earlier globals.
	ev.globals = make([]value.Value, 0, len(c.info.Globals))
	for _, g := range c.info.Globals {
		v, err := ev.evalTop(g.Decl.Init, g.FrameSize)
		if err != nil {
			return nil, fmt.Errorf("val %s: %w", g.Decl.Name, err)
		}
		ev.globals = append(ev.globals, v)
	}
	proto, chans, err := engine.InitStates(c.info, ev.evalTop)
	if err != nil {
		return nil, err
	}
	invoke := func(ci int, ctx prims.Context, ps, ss, pkt value.Value) (psOut, ssOut value.Value, err error) {
		defer func() {
			if r := recover(); r != nil {
				if ex, ok := r.(value.Exception); ok {
					err = ex
					return
				}
				panic(r)
			}
		}()
		ch := &c.info.Channels[ci]
		frame := make([]value.Value, ch.FrameSize)
		frame[0], frame[1], frame[2] = ps, ss, pkt
		inner := &evaluator{info: c.info, ctx: ctx, globals: ev.globals}
		res := inner.eval(ch.Decl.Body, frame)
		return res.Vs[0], res.Vs[1], nil
	}
	return engine.NewInstance(c, proto, chans, invoke), nil
}

// evaluator evaluates expressions for one instance.
type evaluator struct {
	info    *typecheck.Info
	ctx     prims.Context
	globals []value.Value
}

// evalTop evaluates a top-level expression (global initializer or channel
// initstate), converting PLAN-P exceptions to errors.
func (ev *evaluator) evalTop(e ast.Expr, frameSize int) (v value.Value, err error) {
	defer func() {
		if r := recover(); r != nil {
			if ex, ok := r.(value.Exception); ok {
				err = ex
				return
			}
			panic(r)
		}
	}()
	frame := make([]value.Value, frameSize)
	return ev.eval(e, frame), nil
}

// eval evaluates e in the given frame. PLAN-P exceptions propagate as
// panics carrying value.Exception; they are caught by try/handle or at
// the invoke boundary.
func (ev *evaluator) eval(e ast.Expr, frame []value.Value) value.Value {
	switch e := e.(type) {
	case *ast.IntLit:
		return value.Int(e.Value)
	case *ast.BoolLit:
		return value.Bool(e.Value)
	case *ast.StringLit:
		return value.Str(e.Value)
	case *ast.CharLit:
		return value.Char(e.Value)
	case *ast.UnitLit:
		return value.Unit
	case *ast.HostLit:
		return value.HostV(value.Host(e.Addr))

	case *ast.Var:
		if e.Slot >= 0 {
			return frame[e.Slot]
		}
		return ev.globals[e.Global]

	case *ast.Proj:
		t := ev.eval(e.Tuple, frame)
		return t.Vs[e.Index-1]

	case *ast.Let:
		for i := range e.Binds {
			b := &e.Binds[i]
			frame[b.Slot] = ev.eval(b.Init, frame)
		}
		return ev.eval(e.Body, frame)

	case *ast.If:
		if ev.eval(e.Cond, frame).AsBool() {
			return ev.eval(e.Then, frame)
		}
		return ev.eval(e.Else, frame)

	case *ast.Seq:
		for _, sub := range e.Exprs[:len(e.Exprs)-1] {
			ev.eval(sub, frame)
		}
		return ev.eval(e.Exprs[len(e.Exprs)-1], frame)

	case *ast.TupleExpr:
		elems := make([]value.Value, len(e.Elems))
		for i, sub := range e.Elems {
			elems[i] = ev.eval(sub, frame)
		}
		return value.TupleV(elems...)

	case *ast.Unary:
		x := ev.eval(e.X, frame)
		if e.Op == "not" {
			return value.Bool(!x.AsBool())
		}
		return value.Int(-x.AsInt())

	case *ast.Binary:
		return ev.evalBinary(e, frame)

	case *ast.Try:
		return ev.evalTry(e, frame)

	case *ast.Raise:
		msg := ev.eval(e.Msg, frame)
		panic(value.Exception{Msg: msg.AsStr()})

	case *ast.Call:
		return ev.evalCall(e, frame)

	default:
		panic(fmt.Sprintf("planp/interp: unhandled expression %T", e))
	}
}

func (ev *evaluator) evalBinary(e *ast.Binary, frame []value.Value) value.Value {
	// Short-circuit operators evaluate lazily.
	switch e.Op {
	case "andalso":
		if !ev.eval(e.L, frame).AsBool() {
			return value.Bool(false)
		}
		return ev.eval(e.R, frame)
	case "orelse":
		if ev.eval(e.L, frame).AsBool() {
			return value.Bool(true)
		}
		return ev.eval(e.R, frame)
	}

	l := ev.eval(e.L, frame)
	r := ev.eval(e.R, frame)
	switch e.Op {
	case "+":
		return value.Int(l.AsInt() + r.AsInt())
	case "-":
		return value.Int(l.AsInt() - r.AsInt())
	case "*":
		return value.Int(l.AsInt() * r.AsInt())
	case "/":
		if r.AsInt() == 0 {
			value.Raise("division by zero")
		}
		return value.Int(l.AsInt() / r.AsInt())
	case "mod":
		if r.AsInt() == 0 {
			value.Raise("mod by zero")
		}
		return value.Int(l.AsInt() % r.AsInt())
	case "^":
		return value.Str(l.AsStr() + r.AsStr())
	case "=":
		return value.Bool(value.Equal(l, r))
	case "<>":
		return value.Bool(!value.Equal(l, r))
	case "<", "<=", ">", ">=":
		return compareOrd(e.Op, l, r)
	default:
		panic(fmt.Sprintf("planp/interp: unhandled operator %s", e.Op))
	}
}

// compareOrd implements the ordering operators on int, string, and char.
func compareOrd(op string, l, r value.Value) value.Value {
	var cmp int
	switch l.Kind {
	case value.KindInt, value.KindChar:
		switch {
		case l.I < r.I:
			cmp = -1
		case l.I > r.I:
			cmp = 1
		}
	case value.KindString:
		switch {
		case l.S < r.S:
			cmp = -1
		case l.S > r.S:
			cmp = 1
		}
	default:
		panic(fmt.Sprintf("planp/interp: ordering on %s", l.Kind))
	}
	switch op {
	case "<":
		return value.Bool(cmp < 0)
	case "<=":
		return value.Bool(cmp <= 0)
	case ">":
		return value.Bool(cmp > 0)
	default:
		return value.Bool(cmp >= 0)
	}
}

func (ev *evaluator) evalTry(e *ast.Try, frame []value.Value) (res value.Value) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(value.Exception); ok {
				res = ev.eval(e.Handler, frame)
				return
			}
			panic(r)
		}
	}()
	return ev.eval(e.Body, frame)
}

func (ev *evaluator) evalCall(e *ast.Call, frame []value.Value) value.Value {
	// Network sends: resolved by the checker to a ChanRef first argument.
	if cref, ok := firstChanRef(e); ok {
		pkt := ev.eval(e.Args[1], frame)
		if e.Name == "OnRemote" {
			ev.ctx.OnRemote(cref.Name, pkt)
		} else {
			ev.ctx.OnNeighbor(cref.Name, pkt)
		}
		return value.Unit
	}

	if e.FunIndex >= 0 {
		f := &ev.info.Funs[e.FunIndex]
		callee := make([]value.Value, f.FrameSize)
		for i, arg := range e.Args {
			callee[i] = ev.eval(arg, frame)
		}
		return ev.eval(f.Decl.Body, callee)
	}

	p := prims.Get(e.PrimIndex)
	args := make([]value.Value, len(e.Args))
	for i, arg := range e.Args {
		args[i] = ev.eval(arg, frame)
	}
	return p.Fn(ev.ctx, args)
}

// firstChanRef reports whether e is an OnRemote/OnNeighbor call and
// returns its channel reference.
func firstChanRef(e *ast.Call) (*ast.ChanRef, bool) {
	if e.Name != "OnRemote" && e.Name != "OnNeighbor" {
		return nil, false
	}
	cref, ok := e.Args[0].(*ast.ChanRef)
	return cref, ok
}
