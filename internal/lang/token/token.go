// Package token defines the lexical tokens of the PLAN-P language and
// source positions used across the front end.
//
// PLAN-P retains the SML-like surface syntax of PLAN (Hicks et al.) with
// the extensions described in the ICDCS'99 paper: channel declarations
// with optional initstate, overloaded channels, tuple projection with #n,
// and dotted-quad host literals so existing IP addresses can be written
// directly in protocol text.
package token

import "fmt"

// Kind identifies the lexical class of a token.
type Kind int

// Token kinds. Keyword kinds start at KwVal.
const (
	Invalid Kind = iota
	EOF

	// Literals and identifiers.
	Ident  // network, getSetS
	Int    // 256
	String // "CmdA: "
	Char   // 'a' (written #"a" in SML; we accept 'a')
	HostLit

	// Punctuation.
	LParen    // (
	RParen    // )
	Comma     // ,
	Semi      // ;
	Colon     // :
	Hash      // #  (tuple projection, followed by Int)
	Star      // *  (also tuple type separator)
	Plus      // +
	Minus     // -
	Slash     // /
	Caret     // ^  (string concatenation)
	Eq        // =
	NotEq     // <>
	Less      // <
	LessEq    // <=
	Greater   // >
	GreaterEq // >=
	Arrow     // =>

	// Keywords.
	KwVal
	KwFun
	KwChannel
	KwInitstate
	KwIs
	KwLet
	KwIn
	KwEnd
	KwIf
	KwThen
	KwElse
	KwTrue
	KwFalse
	KwNot
	KwAndalso
	KwOrelse
	KwMod
	KwTry
	KwHandle
	KwRaise
)

var kindNames = map[Kind]string{
	Invalid:     "invalid",
	EOF:         "EOF",
	Ident:       "identifier",
	Int:         "integer",
	String:      "string",
	Char:        "char",
	HostLit:     "host literal",
	LParen:      "'('",
	RParen:      "')'",
	Comma:       "','",
	Semi:        "';'",
	Colon:       "':'",
	Hash:        "'#'",
	Star:        "'*'",
	Plus:        "'+'",
	Minus:       "'-'",
	Slash:       "'/'",
	Caret:       "'^'",
	Eq:          "'='",
	NotEq:       "'<>'",
	Less:        "'<'",
	LessEq:      "'<='",
	Greater:     "'>'",
	GreaterEq:   "'>='",
	Arrow:       "'=>'",
	KwVal:       "'val'",
	KwFun:       "'fun'",
	KwChannel:   "'channel'",
	KwInitstate: "'initstate'",
	KwIs:        "'is'",
	KwLet:       "'let'",
	KwIn:        "'in'",
	KwEnd:       "'end'",
	KwIf:        "'if'",
	KwThen:      "'then'",
	KwElse:      "'else'",
	KwTrue:      "'true'",
	KwFalse:     "'false'",
	KwNot:       "'not'",
	KwAndalso:   "'andalso'",
	KwOrelse:    "'orelse'",
	KwMod:       "'mod'",
	KwTry:       "'try'",
	KwHandle:    "'handle'",
	KwRaise:     "'raise'",
}

// String returns a human-readable name for the kind, suitable for error
// messages ("expected ';', got 'end'").
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Keywords maps reserved words to their token kinds.
var Keywords = map[string]Kind{
	"val":       KwVal,
	"fun":       KwFun,
	"channel":   KwChannel,
	"initstate": KwInitstate,
	"is":        KwIs,
	"let":       KwLet,
	"in":        KwIn,
	"end":       KwEnd,
	"if":        KwIf,
	"then":      KwThen,
	"else":      KwElse,
	"true":      KwTrue,
	"false":     KwFalse,
	"not":       KwNot,
	"andalso":   KwAndalso,
	"orelse":    KwOrelse,
	"mod":       KwMod,
	"try":       KwTry,
	"handle":    KwHandle,
	"raise":     KwRaise,
}

// Pos is a position within a source file. Line and Col are 1-based;
// a zero Pos means "unknown".
type Pos struct {
	Line int `json:"line"`
	Col  int `json:"col"`
}

// IsValid reports whether p refers to an actual source location.
func (p Pos) IsValid() bool { return p.Line > 0 }

// String renders the position as "line:col".
func (p Pos) String() string {
	if !p.IsValid() {
		return "-"
	}
	return fmt.Sprintf("%d:%d", p.Line, p.Col)
}

// Token is a single lexeme with its source span. Pos is the first
// character; End is one column past the last (tokens never span lines).
type Token struct {
	Kind Kind
	Text string // raw text for Ident/Int/String/Char/HostLit
	Pos  Pos
	End  Pos
}

// String renders the token for diagnostics.
func (t Token) String() string {
	switch t.Kind {
	case Ident, Int, HostLit:
		return fmt.Sprintf("%s %q", t.Kind, t.Text)
	case String:
		return fmt.Sprintf("string %q", t.Text)
	default:
		return t.Kind.String()
	}
}
