package token

import (
	"strings"
	"testing"
)

func TestKindStrings(t *testing.T) {
	if KwVal.String() != "'val'" || Ident.String() != "identifier" {
		t.Error("kind names")
	}
	if !strings.Contains(Kind(999).String(), "999") {
		t.Error("unknown kinds render numerically")
	}
}

func TestKeywordsTableMatchesKinds(t *testing.T) {
	// Every keyword maps to a Kw* kind with a quoted name equal to the
	// source spelling.
	for word, kind := range Keywords {
		if got := kind.String(); got != "'"+word+"'" {
			t.Errorf("keyword %q has kind name %s", word, got)
		}
	}
	if len(Keywords) < 15 {
		t.Errorf("keyword table suspiciously small: %d", len(Keywords))
	}
}

func TestPos(t *testing.T) {
	var zero Pos
	if zero.IsValid() {
		t.Error("zero Pos should be invalid")
	}
	if zero.String() != "-" {
		t.Errorf("zero Pos renders %q", zero.String())
	}
	p := Pos{Line: 3, Col: 14}
	if !p.IsValid() || p.String() != "3:14" {
		t.Errorf("Pos renders %q", p.String())
	}
}

func TestTokenString(t *testing.T) {
	cases := map[string]Token{
		`identifier "getSetS"`: {Kind: Ident, Text: "getSetS"},
		`string "hi"`:          {Kind: String, Text: "hi"},
		`integer "42"`:         {Kind: Int, Text: "42"},
		`'('`:                  {Kind: LParen},
		`'val'`:                {Kind: KwVal, Text: "val"},
	}
	for want, tok := range cases {
		if got := tok.String(); got != want {
			t.Errorf("Token.String() = %q, want %q", got, want)
		}
	}
}
