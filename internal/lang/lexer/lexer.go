// Package lexer tokenizes PLAN-P source text.
//
// Lexical notes:
//   - "--" starts a line comment (as used throughout the paper's listings);
//     "(*" ... "*)" block comments are also accepted (SML heritage) and nest.
//   - Dotted-quad IPv4 addresses such as 131.254.60.81 are scanned as a
//     single host literal so protocols can name concrete machines.
//   - Character literals are written 'a' (with the usual escapes); the SML
//     form #"a" is also accepted.
package lexer

import (
	"fmt"
	"strconv"

	"planp.dev/planp/internal/lang/diag"
	"planp.dev/planp/internal/lang/token"
)

// Error is a lexical error with its source position.
type Error struct {
	Pos token.Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// Diagnostics implements diag.Provider.
func (e *Error) Diagnostics() diag.List { return diag.List{{Pos: e.Pos, Msg: e.Msg}} }

// Lexer scans a source buffer into tokens.
type Lexer struct {
	src  string
	off  int
	line int
	col  int
}

// New returns a lexer over src.
func New(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

// Scan tokenizes the whole input. It returns the token stream, always
// terminated by an EOF token, or the first lexical error.
func Scan(src string) ([]token.Token, error) {
	lx := New(src)
	var toks []token.Token
	for {
		t, err := lx.Next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.Kind == token.EOF {
			return toks, nil
		}
	}
}

func (lx *Lexer) pos() token.Pos { return token.Pos{Line: lx.line, Col: lx.col} }

func (lx *Lexer) peek() byte {
	if lx.off >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off]
}

func (lx *Lexer) peek2() byte {
	if lx.off+1 >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off+1]
}

func (lx *Lexer) advance() byte {
	c := lx.src[lx.off]
	lx.off++
	if c == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return c
}

func (lx *Lexer) errorf(pos token.Pos, format string, args ...any) error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

// skipSpace consumes whitespace and comments. It returns an error only for
// unterminated block comments.
func (lx *Lexer) skipSpace() error {
	for lx.off < len(lx.src) {
		c := lx.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			lx.advance()
		case c == '-' && lx.peek2() == '-':
			for lx.off < len(lx.src) && lx.peek() != '\n' {
				lx.advance()
			}
		case c == '(' && lx.peek2() == '*':
			start := lx.pos()
			lx.advance()
			lx.advance()
			depth := 1
			for depth > 0 {
				if lx.off >= len(lx.src) {
					return lx.errorf(start, "unterminated block comment")
				}
				if lx.peek() == '(' && lx.peek2() == '*' {
					lx.advance()
					lx.advance()
					depth++
				} else if lx.peek() == '*' && lx.peek2() == ')' {
					lx.advance()
					lx.advance()
					depth--
				} else {
					lx.advance()
				}
			}
		default:
			return nil
		}
	}
	return nil
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentCont(c byte) bool { return isIdentStart(c) || isDigit(c) || c == '\'' }

// Next returns the next token, with its End span set to one column past
// its last character.
func (lx *Lexer) Next() (token.Token, error) {
	t, err := lx.scan()
	if err == nil {
		t.End = lx.pos()
	}
	return t, err
}

// scan produces the next token without filling End (Next does that —
// the scanner stops exactly one byte past each token, so the position
// after scanning IS the token's end).
func (lx *Lexer) scan() (token.Token, error) {
	if err := lx.skipSpace(); err != nil {
		return token.Token{}, err
	}
	pos := lx.pos()
	if lx.off >= len(lx.src) {
		return token.Token{Kind: token.EOF, Pos: pos}, nil
	}
	c := lx.peek()
	switch {
	case isDigit(c):
		return lx.scanNumber(pos)
	case isIdentStart(c):
		return lx.scanIdent(pos)
	case c == '"':
		return lx.scanString(pos)
	case c == '\'':
		return lx.scanChar(pos)
	case c == '#':
		lx.advance()
		if lx.peek() == '"' { // SML char literal #"a"
			t, err := lx.scanString(pos)
			if err != nil {
				return token.Token{}, err
			}
			if len(t.Text) != 1 {
				return token.Token{}, lx.errorf(pos, "char literal must contain exactly one character")
			}
			return token.Token{Kind: token.Char, Text: t.Text, Pos: pos}, nil
		}
		return token.Token{Kind: token.Hash, Pos: pos}, nil
	}

	lx.advance()
	simple := func(k token.Kind) (token.Token, error) {
		return token.Token{Kind: k, Pos: pos}, nil
	}
	switch c {
	case '(':
		return simple(token.LParen)
	case ')':
		return simple(token.RParen)
	case ',':
		return simple(token.Comma)
	case ';':
		return simple(token.Semi)
	case ':':
		return simple(token.Colon)
	case '*':
		return simple(token.Star)
	case '+':
		return simple(token.Plus)
	case '-':
		return simple(token.Minus)
	case '/':
		return simple(token.Slash)
	case '^':
		return simple(token.Caret)
	case '=':
		if lx.peek() == '>' {
			lx.advance()
			return simple(token.Arrow)
		}
		return simple(token.Eq)
	case '<':
		if lx.peek() == '>' {
			lx.advance()
			return simple(token.NotEq)
		}
		if lx.peek() == '=' {
			lx.advance()
			return simple(token.LessEq)
		}
		return simple(token.Less)
	case '>':
		if lx.peek() == '=' {
			lx.advance()
			return simple(token.GreaterEq)
		}
		return simple(token.Greater)
	}
	return token.Token{}, lx.errorf(pos, "unexpected character %q", string(rune(c)))
}

// scanNumber scans an integer or a dotted-quad host literal.
func (lx *Lexer) scanNumber(pos token.Pos) (token.Token, error) {
	digits := func() string {
		start := lx.off
		for lx.off < len(lx.src) && isDigit(lx.peek()) {
			lx.advance()
		}
		return lx.src[start:lx.off]
	}
	first := digits()
	// A '.' directly followed by a digit begins a dotted quad.
	if lx.peek() == '.' && isDigit(lx.peek2()) {
		parts := []string{first}
		for lx.peek() == '.' && isDigit(lx.peek2()) {
			lx.advance() // '.'
			parts = append(parts, digits())
		}
		if len(parts) != 4 {
			return token.Token{}, lx.errorf(pos, "malformed host literal: expected 4 octets, got %d", len(parts))
		}
		text := parts[0] + "." + parts[1] + "." + parts[2] + "." + parts[3]
		for _, p := range parts {
			n, err := strconv.Atoi(p)
			if err != nil || n > 255 {
				return token.Token{}, lx.errorf(pos, "malformed host literal %s: octet %q out of range", text, p)
			}
		}
		return token.Token{Kind: token.HostLit, Text: text, Pos: pos}, nil
	}
	if _, err := strconv.ParseInt(first, 10, 64); err != nil {
		return token.Token{}, lx.errorf(pos, "integer literal %s out of range", first)
	}
	return token.Token{Kind: token.Int, Text: first, Pos: pos}, nil
}

func (lx *Lexer) scanIdent(pos token.Pos) (token.Token, error) {
	start := lx.off
	for lx.off < len(lx.src) && isIdentCont(lx.peek()) {
		lx.advance()
	}
	text := lx.src[start:lx.off]
	if kw, ok := token.Keywords[text]; ok {
		return token.Token{Kind: kw, Text: text, Pos: pos}, nil
	}
	return token.Token{Kind: token.Ident, Text: text, Pos: pos}, nil
}

func (lx *Lexer) scanString(pos token.Pos) (token.Token, error) {
	lx.advance() // opening quote
	var out []byte
	for {
		if lx.off >= len(lx.src) {
			return token.Token{}, lx.errorf(pos, "unterminated string literal")
		}
		c := lx.advance()
		switch c {
		case '"':
			return token.Token{Kind: token.String, Text: string(out), Pos: pos}, nil
		case '\n':
			return token.Token{}, lx.errorf(pos, "newline in string literal")
		case '\\':
			if lx.off >= len(lx.src) {
				return token.Token{}, lx.errorf(pos, "unterminated string literal")
			}
			e := lx.advance()
			switch e {
			case 'n':
				out = append(out, '\n')
			case 't':
				out = append(out, '\t')
			case 'r':
				out = append(out, '\r')
			case '\\', '"', '\'':
				out = append(out, e)
			case '0':
				out = append(out, 0)
			default:
				return token.Token{}, lx.errorf(pos, "unknown escape \\%c", e)
			}
		default:
			out = append(out, c)
		}
	}
}

func (lx *Lexer) scanChar(pos token.Pos) (token.Token, error) {
	lx.advance() // opening quote
	if lx.off >= len(lx.src) {
		return token.Token{}, lx.errorf(pos, "unterminated char literal")
	}
	c := lx.advance()
	if c == '\\' {
		if lx.off >= len(lx.src) {
			return token.Token{}, lx.errorf(pos, "unterminated char literal")
		}
		e := lx.advance()
		switch e {
		case 'n':
			c = '\n'
		case 't':
			c = '\t'
		case 'r':
			c = '\r'
		case '\\', '\'', '"':
			c = e
		case '0':
			c = 0
		default:
			return token.Token{}, lx.errorf(pos, "unknown escape \\%c", e)
		}
	}
	if lx.off >= len(lx.src) || lx.advance() != '\'' {
		return token.Token{}, lx.errorf(pos, "char literal must be closed with '")
	}
	return token.Token{Kind: token.Char, Text: string(c), Pos: pos}, nil
}
