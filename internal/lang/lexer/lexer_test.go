package lexer

import (
	"strings"
	"testing"

	"planp.dev/planp/internal/lang/token"
)

func kinds(t *testing.T, src string) []token.Kind {
	t.Helper()
	toks, err := Scan(src)
	if err != nil {
		t.Fatalf("Scan(%q): %v", src, err)
	}
	out := make([]token.Kind, len(toks))
	for i, tok := range toks {
		out[i] = tok.Kind
	}
	return out
}

func TestBasicTokens(t *testing.T) {
	got := kinds(t, `val x : int = 1 + 2 * 3`)
	want := []token.Kind{token.KwVal, token.Ident, token.Colon, token.Ident,
		token.Eq, token.Int, token.Plus, token.Int, token.Star, token.Int, token.EOF}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("token %d = %v, want %v (all: %v)", i, got[i], want[i], got)
		}
	}
}

func TestOperators(t *testing.T) {
	got := kinds(t, `= <> < <= > >= => # ^ / ; , ( )`)
	want := []token.Kind{token.Eq, token.NotEq, token.Less, token.LessEq,
		token.Greater, token.GreaterEq, token.Arrow, token.Hash, token.Caret,
		token.Slash, token.Semi, token.Comma, token.LParen, token.RParen, token.EOF}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("token %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestKeywordsVsIdents(t *testing.T) {
	toks, err := Scan("channel channels initstate valx val")
	if err != nil {
		t.Fatal(err)
	}
	want := []token.Kind{token.KwChannel, token.Ident, token.KwInitstate, token.Ident, token.KwVal, token.EOF}
	for i, k := range want {
		if toks[i].Kind != k {
			t.Errorf("token %d = %v, want %v", i, toks[i], k)
		}
	}
}

func TestHostLiteral(t *testing.T) {
	toks, err := Scan("131.254.60.81")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Kind != token.HostLit || toks[0].Text != "131.254.60.81" {
		t.Errorf("got %v", toks[0])
	}
	// An integer followed by non-dotted content stays an integer.
	toks, err = Scan("42 x")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Kind != token.Int || toks[0].Text != "42" {
		t.Errorf("got %v", toks[0])
	}
}

func TestHostLiteralErrors(t *testing.T) {
	for _, bad := range []string{"1.2.3", "1.2.3.4.5", "300.1.1.1"} {
		if _, err := Scan(bad); err == nil {
			t.Errorf("Scan(%q) should fail", bad)
		}
	}
}

func TestComments(t *testing.T) {
	src := `
-- a line comment with val if then
val x : int = 1 -- trailing
(* a block comment
   spanning lines (* nested *) still comment *)
val y : int = 2
`
	got := kinds(t, src)
	ints := 0
	for _, k := range got {
		if k == token.Int {
			ints++
		}
	}
	if ints != 2 {
		t.Errorf("expected exactly 2 ints after comment stripping, got %d (%v)", ints, got)
	}
}

func TestUnterminatedBlockComment(t *testing.T) {
	if _, err := Scan("val x (* never closed"); err == nil {
		t.Error("unterminated block comment should fail")
	}
	if _, err := Scan("(* outer (* inner *) still open"); err == nil {
		t.Error("unbalanced nested comment should fail")
	}
}

func TestStringLiterals(t *testing.T) {
	toks, err := Scan(`"hello\n\t\"quoted\"\\"`)
	if err != nil {
		t.Fatal(err)
	}
	want := "hello\n\t\"quoted\"\\"
	if toks[0].Kind != token.String || toks[0].Text != want {
		t.Errorf("got %q, want %q", toks[0].Text, want)
	}
}

func TestStringErrors(t *testing.T) {
	for _, bad := range []string{`"unterminated`, "\"newline\nin string\"", `"bad \q escape"`} {
		if _, err := Scan(bad); err == nil {
			t.Errorf("Scan(%q) should fail", bad)
		}
	}
}

func TestCharLiterals(t *testing.T) {
	cases := map[string]byte{
		`'a'`:  'a',
		`'\n'`: '\n',
		`'\''`: '\'',
		`'\\'`: '\\',
		`#"Z"`: 'Z',
		`'\0'`: 0,
	}
	for src, want := range cases {
		toks, err := Scan(src)
		if err != nil {
			t.Errorf("Scan(%s): %v", src, err)
			continue
		}
		if toks[0].Kind != token.Char || toks[0].Text[0] != want {
			t.Errorf("Scan(%s) = %v, want char %q", src, toks[0], want)
		}
	}
	for _, bad := range []string{`'ab'`, `'`, `#"ab"`} {
		if _, err := Scan(bad); err == nil {
			t.Errorf("Scan(%q) should fail", bad)
		}
	}
}

func TestPositions(t *testing.T) {
	toks, err := Scan("val x\n  = 3")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Pos.Line != 1 || toks[0].Pos.Col != 1 {
		t.Errorf("val at %v", toks[0].Pos)
	}
	if toks[2].Pos.Line != 2 || toks[2].Pos.Col != 3 {
		t.Errorf("= at %v, want 2:3", toks[2].Pos)
	}
	if toks[3].Pos.Line != 2 || toks[3].Pos.Col != 5 {
		t.Errorf("3 at %v, want 2:5", toks[3].Pos)
	}
}

func TestUnexpectedCharacter(t *testing.T) {
	_, err := Scan("val x = @")
	if err == nil || !strings.Contains(err.Error(), "@") {
		t.Errorf("expected error naming '@', got %v", err)
	}
}

func TestPrimedIdentifiers(t *testing.T) {
	toks, err := Scan("x' ps2 _tmp")
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []string{"x'", "ps2", "_tmp"} {
		if toks[i].Kind != token.Ident || toks[i].Text != want {
			t.Errorf("token %d = %v, want ident %q", i, toks[i], want)
		}
	}
}

func TestIntOverflow(t *testing.T) {
	if _, err := Scan("99999999999999999999999999"); err == nil {
		t.Error("huge integer literal should fail to scan")
	}
}

func TestEOFIsSticky(t *testing.T) {
	lx := New("x")
	if tok, _ := lx.Next(); tok.Kind != token.Ident {
		t.Fatalf("first token %v", tok)
	}
	for i := 0; i < 3; i++ {
		tok, err := lx.Next()
		if err != nil || tok.Kind != token.EOF {
			t.Fatalf("EOF not sticky: %v %v", tok, err)
		}
	}
}
