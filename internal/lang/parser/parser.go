// Package parser implements a recursive-descent parser for PLAN-P.
//
// The grammar follows the SML-like surface syntax used in the paper's
// listings (figures 2 and 4): top-level val/fun/channel declarations,
// let/in/end blocks, if/then/else expressions, parenthesized sequences
// (e1; e2), tuples (e1, e2), and #n tuple projection. Operator
// precedences follow SML: {* / mod} > {+ - ^} > comparisons >
// andalso > orelse.
package parser

import (
	"fmt"
	"strconv"
	"strings"

	"planp.dev/planp/internal/lang/ast"
	"planp.dev/planp/internal/lang/diag"
	"planp.dev/planp/internal/lang/lexer"
	"planp.dev/planp/internal/lang/token"
)

// Error is a syntax error with position information.
type Error struct {
	Pos token.Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: syntax error: %s", e.Pos, e.Msg) }

// Diagnostics implements diag.Provider.
func (e *Error) Diagnostics() diag.List {
	return diag.List{{Pos: e.Pos, Msg: "syntax error: " + e.Msg}}
}

type parser struct {
	toks []token.Token
	pos  int
}

// Parse scans and parses a complete PLAN-P program.
func Parse(src string) (*ast.Program, error) {
	toks, err := lexer.Scan(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	prog := &ast.Program{}
	for p.peek().Kind != token.EOF {
		d, err := p.parseDecl()
		if err != nil {
			return nil, err
		}
		prog.Decls = append(prog.Decls, d)
	}
	if len(prog.Decls) == 0 {
		return nil, &Error{Pos: token.Pos{Line: 1, Col: 1}, Msg: "empty program"}
	}
	return prog, nil
}

// ParseExpr parses a single expression (used by tests and the REPL-style
// tooling in cmd/planp).
func ParseExpr(src string) (ast.Expr, error) {
	toks, err := lexer.Scan(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if p.peek().Kind != token.EOF {
		return nil, p.errorf(p.peek().Pos, "unexpected %s after expression", p.peek())
	}
	return e, nil
}

func (p *parser) peek() token.Token { return p.toks[p.pos] }
func (p *parser) peekN(n int) token.Token {
	if p.pos+n >= len(p.toks) {
		return p.toks[len(p.toks)-1]
	}
	return p.toks[p.pos+n]
}

func (p *parser) next() token.Token {
	t := p.toks[p.pos]
	if t.Kind != token.EOF {
		p.pos++
	}
	return t
}

func (p *parser) errorf(pos token.Pos, format string, args ...any) error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) expect(k token.Kind) (token.Token, error) {
	t := p.peek()
	if t.Kind != k {
		return t, p.errorf(t.Pos, "expected %s, got %s", k, t)
	}
	return p.next(), nil
}

// ---------------------------------------------------------------------------
// Declarations

func (p *parser) parseDecl() (ast.Decl, error) {
	t := p.peek()
	switch t.Kind {
	case token.KwVal:
		return p.parseValDecl()
	case token.KwFun:
		return p.parseFunDecl()
	case token.KwChannel:
		return p.parseChannelDecl()
	default:
		return nil, p.errorf(t.Pos, "expected declaration (val, fun, or channel), got %s", t)
	}
}

func (p *parser) parseValDecl() (*ast.ValDecl, error) {
	at := p.next().Pos // val
	name, err := p.expect(token.Ident)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(token.Colon); err != nil {
		return nil, err
	}
	ty, err := p.parseType()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(token.Eq); err != nil {
		return nil, err
	}
	init, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	return &ast.ValDecl{Name: name.Text, Type: ty, Init: init, At: at, EndAt: init.End()}, nil
}

func (p *parser) parseFunDecl() (*ast.FunDecl, error) {
	at := p.next().Pos // fun
	name, err := p.expect(token.Ident)
	if err != nil {
		return nil, err
	}
	params, _, err := p.parseParams()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(token.Colon); err != nil {
		return nil, err
	}
	ret, err := p.parseType()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(token.Eq); err != nil {
		return nil, err
	}
	body, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	return &ast.FunDecl{Name: name.Text, Params: params, Ret: ret, Body: body, At: at, EndAt: body.End()}, nil
}

func (p *parser) parseChannelDecl() (*ast.ChannelDecl, error) {
	at := p.next().Pos // channel
	name, err := p.expect(token.Ident)
	if err != nil {
		return nil, err
	}
	params, headerEnd, err := p.parseParams()
	if err != nil {
		return nil, err
	}
	if len(params) != 3 {
		return nil, p.errorf(at, "channel %s must declare exactly 3 parameters (protocol state, channel state, packet); got %d", name.Text, len(params))
	}
	var initState ast.Expr
	if p.peek().Kind == token.KwInitstate {
		p.next()
		initState, err = p.parseExpr()
		if err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(token.KwIs); err != nil {
		return nil, err
	}
	body, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	return &ast.ChannelDecl{Name: name.Text, Params: params, InitState: initState, Body: body,
		At: at, EndAt: body.End(), HeaderEnd: headerEnd}, nil
}

// parseParams parses "(name : type, ...)" and also returns the position
// one past the closing paren (the end of the declared header).
func (p *parser) parseParams() ([]ast.Param, token.Pos, error) {
	if _, err := p.expect(token.LParen); err != nil {
		return nil, token.Pos{}, err
	}
	var params []ast.Param
	if p.peek().Kind == token.RParen {
		rp := p.next()
		return params, rp.End, nil
	}
	for {
		name, err := p.expect(token.Ident)
		if err != nil {
			return nil, token.Pos{}, err
		}
		if _, err := p.expect(token.Colon); err != nil {
			return nil, token.Pos{}, err
		}
		ty, err := p.parseType()
		if err != nil {
			return nil, token.Pos{}, err
		}
		params = append(params, ast.Param{Name: name.Text, Type: ty})
		if p.peek().Kind != token.Comma {
			break
		}
		p.next()
	}
	rp, err := p.expect(token.RParen)
	if err != nil {
		return nil, token.Pos{}, err
	}
	return params, rp.End, nil
}

// ---------------------------------------------------------------------------
// Types

// parseType parses a (possibly tuple) type: atom {"*" atom}.
func (p *parser) parseType() (ast.Type, error) {
	first, err := p.parseTypeAtom()
	if err != nil {
		return nil, err
	}
	if p.peek().Kind != token.Star {
		return first, nil
	}
	elems := []ast.Type{first}
	for p.peek().Kind == token.Star {
		p.next()
		t, err := p.parseTypeAtom()
		if err != nil {
			return nil, err
		}
		elems = append(elems, t)
	}
	return ast.Tuple{Elems: elems}, nil
}

// parseTypeAtom parses a base type name or a parenthesized type, possibly
// followed by postfix constructors "hash_table" / "list".
func (p *parser) parseTypeAtom() (ast.Type, error) {
	var t ast.Type
	switch tk := p.peek(); tk.Kind {
	case token.Ident:
		kind, ok := ast.BaseTypes[tk.Text]
		if !ok {
			return nil, p.errorf(tk.Pos, "unknown type %q", tk.Text)
		}
		p.next()
		t = ast.Base{Kind: kind}
	case token.LParen:
		p.next()
		inner, err := p.parseType()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(token.RParen); err != nil {
			return nil, err
		}
		t = inner
	default:
		return nil, p.errorf(tk.Pos, "expected type, got %s", tk)
	}
	// Postfix type constructors.
	for p.peek().Kind == token.Ident {
		switch p.peek().Text {
		case "hash_table":
			p.next()
			t = ast.Table{Elem: t}
		case "list":
			p.next()
			t = ast.List{Elem: t}
		default:
			return t, nil
		}
	}
	return t, nil
}

// ---------------------------------------------------------------------------
// Expressions

// Binary operator precedence levels, loosest first.
var precLevels = [][]string{
	{"orelse"},
	{"andalso"},
	{"=", "<>", "<", "<=", ">", ">="},
	{"+", "-", "^"},
	{"*", "/", "mod"},
}

// opFor maps the current token to a binary operator string at the given
// precedence level, or "" if it does not participate.
func opFor(t token.Token, level int) string {
	var name string
	switch t.Kind {
	case token.KwOrelse:
		name = "orelse"
	case token.KwAndalso:
		name = "andalso"
	case token.Eq:
		name = "="
	case token.NotEq:
		name = "<>"
	case token.Less:
		name = "<"
	case token.LessEq:
		name = "<="
	case token.Greater:
		name = ">"
	case token.GreaterEq:
		name = ">="
	case token.Plus:
		name = "+"
	case token.Minus:
		name = "-"
	case token.Caret:
		name = "^"
	case token.Star:
		name = "*"
	case token.Slash:
		name = "/"
	case token.KwMod:
		name = "mod"
	default:
		return ""
	}
	for _, op := range precLevels[level] {
		if op == name {
			return name
		}
	}
	return ""
}

func (p *parser) parseExpr() (ast.Expr, error) { return p.parseBinary(0) }

func (p *parser) parseBinary(level int) (ast.Expr, error) {
	if level >= len(precLevels) {
		return p.parseUnary()
	}
	left, err := p.parseBinary(level + 1)
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		op := opFor(t, level)
		if op == "" {
			return left, nil
		}
		p.next()
		right, err := p.parseBinary(level + 1)
		if err != nil {
			return nil, err
		}
		left = &ast.Binary{Op: op, L: left, R: right, At: left.Pos(), EndAt: right.End()}
	}
}

func (p *parser) parseUnary() (ast.Expr, error) {
	t := p.peek()
	switch t.Kind {
	case token.KwNot:
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &ast.Unary{Op: "not", X: x, At: t.Pos, EndAt: x.End()}, nil
	case token.Minus:
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		// Fold -literal immediately for cleaner ASTs.
		if lit, ok := x.(*ast.IntLit); ok {
			return &ast.IntLit{Value: -lit.Value, At: t.Pos, EndAt: lit.End()}, nil
		}
		return &ast.Unary{Op: "-", X: x, At: t.Pos, EndAt: x.End()}, nil
	case token.KwRaise:
		p.next()
		msg, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &ast.Raise{Msg: msg, At: t.Pos, EndAt: msg.End()}, nil
	}
	return p.parseProj()
}

// parseProj handles "#n atom" projection chains.
func (p *parser) parseProj() (ast.Expr, error) {
	t := p.peek()
	if t.Kind == token.Hash {
		p.next()
		idxTok, err := p.expect(token.Int)
		if err != nil {
			return nil, err
		}
		idx, err := strconv.Atoi(idxTok.Text)
		if err != nil || idx < 1 {
			return nil, p.errorf(idxTok.Pos, "projection index must be a positive integer")
		}
		tuple, err := p.parseProj()
		if err != nil {
			return nil, err
		}
		return &ast.Proj{Index: idx, Tuple: tuple, At: t.Pos, EndAt: tuple.End()}, nil
	}
	return p.parseAtom()
}

func (p *parser) parseAtom() (ast.Expr, error) {
	t := p.peek()
	switch t.Kind {
	case token.Int:
		p.next()
		v, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return nil, p.errorf(t.Pos, "integer literal %s out of range", t.Text)
		}
		return &ast.IntLit{Value: v, At: t.Pos, EndAt: t.End}, nil
	case token.String:
		p.next()
		return &ast.StringLit{Value: t.Text, At: t.Pos, EndAt: t.End}, nil
	case token.Char:
		p.next()
		return &ast.CharLit{Value: t.Text[0], At: t.Pos, EndAt: t.End}, nil
	case token.KwTrue:
		p.next()
		return &ast.BoolLit{Value: true, At: t.Pos, EndAt: t.End}, nil
	case token.KwFalse:
		p.next()
		return &ast.BoolLit{Value: false, At: t.Pos, EndAt: t.End}, nil
	case token.HostLit:
		p.next()
		addr, err := ParseHost(t.Text)
		if err != nil {
			return nil, p.errorf(t.Pos, "%v", err)
		}
		return &ast.HostLit{Addr: addr, Text: t.Text, At: t.Pos, EndAt: t.End}, nil
	case token.Ident:
		p.next()
		if p.peek().Kind == token.LParen {
			return p.parseCallArgs(t)
		}
		return &ast.Var{Name: t.Text, At: t.Pos, EndAt: t.End, Slot: -1, Global: -1}, nil
	case token.KwLet:
		return p.parseLet()
	case token.KwIf:
		return p.parseIf()
	case token.KwTry:
		return p.parseTry()
	case token.LParen:
		return p.parseParen()
	default:
		return nil, p.errorf(t.Pos, "expected expression, got %s", t)
	}
}

func (p *parser) parseCallArgs(name token.Token) (ast.Expr, error) {
	p.next() // (
	call := &ast.Call{Name: name.Text, At: name.Pos, PrimIndex: -1, FunIndex: -1}
	if p.peek().Kind == token.RParen {
		call.EndAt = p.next().End
		return call, nil
	}
	for {
		arg, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		call.Args = append(call.Args, arg)
		if p.peek().Kind != token.Comma {
			break
		}
		p.next()
	}
	rp, err := p.expect(token.RParen)
	if err != nil {
		return nil, err
	}
	call.EndAt = rp.End
	return call, nil
}

func (p *parser) parseLet() (ast.Expr, error) {
	at := p.next().Pos // let
	var binds []ast.LetBind
	for p.peek().Kind == token.KwVal {
		p.next()
		name, err := p.expect(token.Ident)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(token.Colon); err != nil {
			return nil, err
		}
		ty, err := p.parseType()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(token.Eq); err != nil {
			return nil, err
		}
		init, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		binds = append(binds, ast.LetBind{Name: name.Text, Type: ty, Init: init, Slot: -1})
	}
	if len(binds) == 0 {
		return nil, p.errorf(at, "let requires at least one val binding")
	}
	if _, err := p.expect(token.KwIn); err != nil {
		return nil, err
	}
	body, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	endTok, err := p.expect(token.KwEnd)
	if err != nil {
		return nil, err
	}
	return &ast.Let{Binds: binds, Body: body, At: at, EndAt: endTok.End}, nil
}

func (p *parser) parseIf() (ast.Expr, error) {
	at := p.next().Pos // if
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(token.KwThen); err != nil {
		return nil, err
	}
	thenE, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(token.KwElse); err != nil {
		return nil, err
	}
	elseE, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	return &ast.If{Cond: cond, Then: thenE, Else: elseE, At: at, EndAt: elseE.End()}, nil
}

func (p *parser) parseTry() (ast.Expr, error) {
	at := p.next().Pos // try
	body, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(token.KwHandle); err != nil {
		return nil, err
	}
	handler, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	endTok, err := p.expect(token.KwEnd)
	if err != nil {
		return nil, err
	}
	return &ast.Try{Body: body, Handler: handler, At: at, EndAt: endTok.End}, nil
}

// parseParen disambiguates between unit (), a parenthesized expression
// (e), a sequence (e1; e2; ...), and a tuple (e1, e2, ...).
func (p *parser) parseParen() (ast.Expr, error) {
	at := p.next().Pos // (
	if p.peek().Kind == token.RParen {
		return &ast.UnitLit{At: at, EndAt: p.next().End}, nil
	}
	first, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	switch p.peek().Kind {
	case token.RParen:
		p.next()
		return first, nil
	case token.Semi:
		exprs := []ast.Expr{first}
		for p.peek().Kind == token.Semi {
			p.next()
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			exprs = append(exprs, e)
		}
		rp, err := p.expect(token.RParen)
		if err != nil {
			return nil, err
		}
		return &ast.Seq{Exprs: exprs, At: at, EndAt: rp.End}, nil
	case token.Comma:
		elems := []ast.Expr{first}
		for p.peek().Kind == token.Comma {
			p.next()
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			elems = append(elems, e)
		}
		rp, err := p.expect(token.RParen)
		if err != nil {
			return nil, err
		}
		return &ast.TupleExpr{Elems: elems, At: at, EndAt: rp.End}, nil
	default:
		return nil, p.errorf(p.peek().Pos, "expected ')', ';' or ',' in parenthesized expression, got %s", p.peek())
	}
}

// ParseHost converts a dotted-quad string to a packed big-endian IPv4
// address. It is exported because host literals also appear in scenario
// configuration files.
func ParseHost(s string) (uint32, error) {
	parts := strings.Split(s, ".")
	if len(parts) != 4 {
		return 0, fmt.Errorf("malformed host %q", s)
	}
	var addr uint32
	for _, part := range parts {
		n, err := strconv.Atoi(part)
		if err != nil || n < 0 || n > 255 {
			return 0, fmt.Errorf("malformed host %q", s)
		}
		addr = addr<<8 | uint32(n)
	}
	return addr, nil
}
