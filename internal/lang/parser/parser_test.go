package parser

import (
	"reflect"
	"strings"
	"testing"

	"planp.dev/planp/asp"
	"planp.dev/planp/internal/lang/ast"
)

func parseOK(t *testing.T, src string) *ast.Program {
	t.Helper()
	p, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return p
}

func exprOK(t *testing.T, src string) ast.Expr {
	t.Helper()
	e, err := ParseExpr(src)
	if err != nil {
		t.Fatalf("ParseExpr(%q): %v", src, err)
	}
	return e
}

func TestDeclarations(t *testing.T) {
	p := parseOK(t, `
val a : int = 3
fun f(x : int, y : bool) : int = if y then x else 0
channel network(ps : unit, ss : unit, p : ip*udp*blob) is (deliver(p); (ps, ss))
channel c2(ps : unit, ss : (int) hash_table, p : ip*tcp*blob)
initstate mkTable(4) is (deliver(p); (ps, ss))
`)
	if len(p.Decls) != 4 {
		t.Fatalf("got %d decls", len(p.Decls))
	}
	if len(p.Vals()) != 1 || len(p.Funs()) != 1 || len(p.Channels()) != 2 {
		t.Errorf("vals/funs/channels = %d/%d/%d", len(p.Vals()), len(p.Funs()), len(p.Channels()))
	}
	ch := p.Channels()[1]
	if ch.InitState == nil {
		t.Error("c2 should have an initstate")
	}
	if ch.PacketType().String() != "ip*tcp*blob" {
		t.Errorf("packet type %s", ch.PacketType())
	}
}

func TestPrecedence(t *testing.T) {
	cases := map[string]string{
		"1 + 2 * 3":            "1 + (2 * 3)",
		"1 * 2 + 3":            "(1 * 2) + 3",
		"1 + 2 = 3":            "(1 + 2) = 3",
		"a andalso b orelse c": "(a andalso b) orelse c",
		"a = b andalso c = d":  "(a = b) andalso (c = d)",
		"1 - 2 - 3":            "(1 - 2) - 3",
		`"a" ^ "b" ^ "c"`:      `("a" ^ "b") ^ "c"`,
		"not a andalso b":      "(not a) andalso b",
		"1 + 2 mod 3":          "1 + (2 mod 3)",
		"#1 p = #2 p":          "(#1 p) = (#2 p)",
	}
	for src, expect := range cases {
		a := exprOK(t, src)
		b := exprOK(t, expect)
		if !equalIgnoringPos(a, b) {
			t.Errorf("%q parsed as %s, want %s", src, ast.ExprString(a), ast.ExprString(b))
		}
	}
}

// equalIgnoringPos compares ASTs structurally, ignoring positions and
// resolution fields.
func equalIgnoringPos(a, b ast.Expr) bool {
	return ast.ExprString(a) == ast.ExprString(b) &&
		reflect.TypeOf(a) == reflect.TypeOf(b)
}

func TestParenDisambiguation(t *testing.T) {
	if _, ok := exprOK(t, "()").(*ast.UnitLit); !ok {
		t.Error("() should be unit")
	}
	if _, ok := exprOK(t, "(1)").(*ast.IntLit); !ok {
		t.Error("(1) should unwrap to the inner expression")
	}
	if e, ok := exprOK(t, "(1, 2, 3)").(*ast.TupleExpr); !ok || len(e.Elems) != 3 {
		t.Error("(1,2,3) should be a 3-tuple")
	}
	if e, ok := exprOK(t, "(f(); g(); 3)").(*ast.Seq); !ok || len(e.Exprs) != 3 {
		t.Error("(a;b;c) should be a 3-sequence")
	}
}

func TestNegativeLiteralFold(t *testing.T) {
	e := exprOK(t, "-42")
	lit, ok := e.(*ast.IntLit)
	if !ok || lit.Value != -42 {
		t.Errorf("got %s", ast.ExprString(e))
	}
	// Unary minus on a non-literal stays unary.
	if _, ok := exprOK(t, "- x").(*ast.Unary); !ok {
		t.Error("- x should be unary")
	}
}

func TestProjChain(t *testing.T) {
	e := exprOK(t, "#1 #2 p")
	outer, ok := e.(*ast.Proj)
	if !ok || outer.Index != 1 {
		t.Fatalf("got %s", ast.ExprString(e))
	}
	inner, ok := outer.Tuple.(*ast.Proj)
	if !ok || inner.Index != 2 {
		t.Fatalf("inner not a projection: %s", ast.ExprString(e))
	}
}

func TestTypeSyntax(t *testing.T) {
	p := parseOK(t, `
channel network(ps : (int*host) hash_table,
                ss : ((int) list) hash_table,
                p : ip*tcp*char*int*blob) is (deliver(p); (ps, ss))
`)
	ch := p.Channels()[0]
	if got := ch.ProtoState().String(); got != "(int*host) hash_table" {
		t.Errorf("proto state %s", got)
	}
	if got := ch.ChanState().String(); got != "((int) list) hash_table" {
		t.Errorf("chan state %s", got)
	}
}

func TestSyntaxErrors(t *testing.T) {
	cases := []string{
		"",                                // empty program
		"val x : int",                     // missing initializer
		"val x = 3",                       // missing type
		"fun f() = 3",                     // missing return type
		"channel c(ps : int) is (ps, ps)", // wrong arity
		"channel c(a : int, b : int, c : int, d : int) is 0", // wrong arity
		"val x : int = let in 3 end",                         // let without binding
		"val x : int = if 1 then 2",                          // missing else
		"val x : int = (1; 2,3)",                             // mixed seq/tuple
		"val x : int = try 1 handle 2",                       // missing end
		"val x : unknowntype = 3",                            // bad type
		"val x : int = #0 p",                                 // zero projection
		"garbage",                                            // not a decl
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestErrorsCarryPositions(t *testing.T) {
	_, err := Parse("val x : int =\n  if true then 1")
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(err.Error(), "2:") {
		t.Errorf("error should point at line 2: %v", err)
	}
}

// TestRoundTrip pins parse ∘ print ∘ parse = parse on every embedded
// ASP program (the pretty printer must emit re-parseable source with
// identical structure).
func TestRoundTrip(t *testing.T) {
	sources := map[string]string{}
	for _, p := range asp.All() {
		sources[p.Name] = p.Source
	}
	sources["random-policy"] = asp.HTTPGatewayRandom
	sources["leastconn-policy"] = asp.HTTPGatewayLeastConn
	sources["bench-compute"] = asp.BenchCompute

	for name, src := range sources {
		t.Run(name, func(t *testing.T) {
			orig, err := Parse(src)
			if err != nil {
				t.Fatalf("parse original: %v", err)
			}
			printed := ast.Print(orig)
			back, err := Parse(printed)
			if err != nil {
				t.Fatalf("re-parse printed source: %v\n--- printed ---\n%s", err, printed)
			}
			if got, want := ast.Print(back), printed; got != want {
				t.Errorf("print is not a fixed point:\n--- first ---\n%s\n--- second ---\n%s", want, got)
			}
			if len(back.Decls) != len(orig.Decls) {
				t.Errorf("declaration count changed: %d -> %d", len(orig.Decls), len(back.Decls))
			}
		})
	}
}

func TestParseExprTrailingGarbage(t *testing.T) {
	if _, err := ParseExpr("1 + 2 extra"); err == nil {
		t.Error("trailing tokens should fail")
	}
}

func TestParseHost(t *testing.T) {
	h, err := ParseHost("10.0.0.1")
	if err != nil || h != 0x0A000001 {
		t.Errorf("ParseHost = %x, %v", h, err)
	}
	for _, bad := range []string{"1.2.3", "a.b.c.d", "1.2.3.256", ""} {
		if _, err := ParseHost(bad); err == nil {
			t.Errorf("ParseHost(%q) should fail", bad)
		}
	}
}
