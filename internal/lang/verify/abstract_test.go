package verify_test

import (
	"testing"

	"planp.dev/planp/internal/lang/langtest"
	"planp.dev/planp/internal/lang/verify"
)

// Edge cases of the global-termination state exploration.

func global(t *testing.T, src string) verify.Check {
	t.Helper()
	return verify.Verify(langtest.CheckSrc(t, src)).GlobalTermination
}

func TestRewriteToSelfIsTerminal(t *testing.T) {
	// dst := thisHost() means local delivery: the journey ends, so even
	// a send loop through this rewrite is safe.
	c := global(t, `
channel network(ps : unit, ss : unit, p : ip*udp*blob) is
  if udpDst(#2 p) = 9 then
    (OnRemote(network, (ipDestSet(#1 p, thisHost()), #2 p, #3 p)); (ps, ss))
  else
    (OnRemote(network, p); (ps, ss))
`)
	if !c.OK {
		t.Errorf("rewrite-to-self should terminate: %s", c.Detail)
	}
}

func TestLiteralFlowsThroughGlobals(t *testing.T) {
	// The abstract evaluator resolves top-level host vals, so a rewrite
	// to a global literal behaves like a rewrite to the literal itself:
	// reaching a fixed point (same literal) is progress, and the
	// program terminates.
	c := global(t, `
val target : host = 10.0.0.9
channel network(ps : unit, ss : unit, p : ip*udp*blob) is
  (OnRemote(network, (ipDestSet(#1 p, target), #2 p, #3 p)); (ps, ss))
`)
	if !c.OK {
		t.Errorf("constant rewrite should terminate: %s", c.Detail)
	}
}

func TestAlternatingLiteralsCycle(t *testing.T) {
	// Bouncing between two literals never converges: rejected.
	c := global(t, `
channel network(ps : unit, ss : unit, p : ip*udp*blob) is
  if ipDst(#1 p) = 10.0.0.1 then
    (OnRemote(network, (ipDestSet(#1 p, 10.0.0.2), #2 p, #3 p)); (ps, ss))
  else
    (OnRemote(network, (ipDestSet(#1 p, 10.0.0.1), #2 p, #3 p)); (ps, ss))
`)
	if c.OK {
		t.Error("alternating literal rewrite must be rejected")
	}
}

func TestHandoffChainTerminates(t *testing.T) {
	// a -> b -> c with unchanged destinations: plain forwarding down a
	// channel chain, accepted.
	c := global(t, `
channel a(ps : unit, ss : unit, p : ip*udp*blob) is
  (OnRemote(b, p); (ps, ss))
channel b(ps : unit, ss : unit, p : ip*udp*blob) is
  (OnRemote(c, p); (ps, ss))
channel c(ps : unit, ss : unit, p : ip*udp*blob) is
  (deliver(p); (ps, ss))
`)
	if !c.OK {
		t.Errorf("forwarding chain should pass: %s", c.Detail)
	}
}

func TestChannelCycleWithUnchangedDstAccepted(t *testing.T) {
	// a -> b -> a with pure forwards: the packet still progresses
	// toward its fixed destination at every hop.
	c := global(t, `
channel a(ps : unit, ss : unit, p : ip*udp*blob) is
  (OnRemote(b, p); (ps, ss))
channel b(ps : unit, ss : unit, p : ip*udp*blob) is
  (OnRemote(a, p); (ps, ss))
`)
	if !c.OK {
		t.Errorf("mutual pure forwarding should pass: %s", c.Detail)
	}
}

func TestSwapThroughFunRejected(t *testing.T) {
	// The reply address flows through a fun: the abstract evaluator
	// inlines funs, so the ping-pong is still caught.
	c := global(t, `
fun replyTo(iph : ip) : ip =
  ipDestSet(ipSrcSet(iph, ipDst(iph)), ipSrc(iph))
channel network(ps : unit, ss : unit, p : ip*udp*blob) is
  (OnRemote(network, (replyTo(#1 p), #2 p, #3 p)); (ps, ss))
`)
	if c.OK {
		t.Error("fun-mediated ping-pong must be rejected")
	}
}

func TestJoinOverBranchesIsConservative(t *testing.T) {
	// One branch forwards, the other swaps: the swap path must still be
	// found even though a join could blur it.
	c := global(t, `
channel network(ps : unit, ss : unit, p : ip*udp*blob) is
  let
    val iph : ip =
      if udpDst(#2 p) = 9 then #1 p
      else ipDestSet(#1 p, ipSrc(#1 p))
  in
    (OnRemote(network, (iph, #2 p, #3 p)); (ps, ss))
  end
`)
	if c.OK {
		t.Error("the swapping branch must be detected through the join")
	}
}

func TestTryJoinInAbstractEval(t *testing.T) {
	// The destination differs between try body and handler; the join
	// must account for both (here: both are pure forwards, so OK).
	c := global(t, `
channel network(ps : unit, ss : (host) hash_table, p : ip*udp*blob)
initstate mkTable(4) is
  let
    val iph : ip = try (if tmem(ss, 1) then #1 p else #1 p) handle #1 p end
  in
    (OnRemote(network, (iph, #2 p, #3 p)); (ps, ss))
  end
`)
	if !c.OK {
		t.Errorf("identical forwards through try should pass: %s", c.Detail)
	}
}

func TestStateCountReported(t *testing.T) {
	c := global(t, `
channel network(ps : unit, ss : unit, p : ip*udp*blob) is
  (OnRemote(network, p); (ps, ss))
`)
	if !c.OK || c.Detail == "" {
		t.Errorf("expected a state-count detail, got %q", c.Detail)
	}
}
