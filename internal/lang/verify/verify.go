// Package verify implements the PLAN-P safety analyses of §2.1:
//
//   - Local termination — guaranteed by construction (no recursion, no
//     loops); the verifier re-validates the construction invariants.
//   - Global termination — packets do not cycle in the network, proven
//     by exhaustive exploration of an abstract transition system over
//     (channel, abstract source, abstract destination) states, under the
//     paper's assumption that IP routing tables are acyclic.
//   - Guaranteed delivery — every packet is delivered: the program does
//     not cycle, handles all exceptions, and forwards or delivers on
//     every execution path.
//   - Safe (linear) duplication — packets are not duplicated
//     exponentially: no channel that copies packets sits on a cycle of
//     the channel send graph (a fix-point computation, as in the paper).
//
// All analyses are conservative: they may reject a correct protocol
// (the paper gives mobile-host forwarding and multicast as examples)
// but never accept one that violates the property.
package verify

import (
	"fmt"
	"strings"

	"planp.dev/planp/internal/lang/ast"
	"planp.dev/planp/internal/lang/diag"
	"planp.dev/planp/internal/lang/prims"
	"planp.dev/planp/internal/lang/token"
	"planp.dev/planp/internal/lang/typecheck"
)

// Check is the outcome of one analysis.
type Check struct {
	Name   string
	OK     bool
	Detail string // reason when !OK; short confirmation when OK

	// Pos..End anchors a failure at the offending construct (usually a
	// channel header); both are zero when the failure has no single
	// source location (e.g. a cycle through several channels).
	Pos token.Pos
	End token.Pos
}

// Error is a failed verification: the subset of checks that did not
// pass, with their source anchors.
type Error struct {
	Fails []Check
}

// Error keeps the historical "verification failed: name: detail; ..."
// rendering.
func (e *Error) Error() string {
	parts := make([]string, len(e.Fails))
	for i, c := range e.Fails {
		parts[i] = fmt.Sprintf("%s: %s", c.Name, c.Detail)
	}
	return "verification failed: " + strings.Join(parts, "; ")
}

// Diagnostics implements diag.Provider.
func (e *Error) Diagnostics() diag.List {
	out := make(diag.List, len(e.Fails))
	for i, c := range e.Fails {
		out[i] = diag.Diagnostic{Pos: c.Pos, End: c.End, Msg: fmt.Sprintf("%s: %s", c.Name, c.Detail)}
	}
	return out
}

// Result bundles the four safety analyses.
type Result struct {
	LocalTermination  Check
	GlobalTermination Check
	Delivery          Check
	Duplication       Check
}

// AllOK reports whether every analysis passed.
func (r *Result) AllOK() bool {
	return r.LocalTermination.OK && r.GlobalTermination.OK && r.Delivery.OK && r.Duplication.OK
}

// Err returns nil if all checks passed, or an error naming the failed
// analyses. Runtimes use this for the paper's late-checking step: a
// downloaded protocol that fails verification is rejected unless the
// download is authenticated as privileged.
func (r *Result) Err() error {
	if r.AllOK() {
		return nil
	}
	var fails []Check
	for _, c := range []Check{r.LocalTermination, r.GlobalTermination, r.Delivery, r.Duplication} {
		if !c.OK {
			fails = append(fails, c)
		}
	}
	return &Error{Fails: fails}
}

// String renders a verification report.
func (r *Result) String() string {
	var sb strings.Builder
	for _, c := range []Check{r.LocalTermination, r.GlobalTermination, r.Delivery, r.Duplication} {
		status := "PASS"
		if !c.OK {
			status = "FAIL"
		}
		fmt.Fprintf(&sb, "%-20s %s  %s\n", c.Name, status, c.Detail)
	}
	return sb.String()
}

// Options configure verification for the intended deployment.
type Options struct {
	// SingleNode declares that the protocol will be downloaded onto a
	// single node (e.g. the HTTP cluster gateway of §3.2) rather than
	// spread across routers. Packets it sends are then never
	// reprocessed by the same program, so global termination holds
	// trivially. The runtime enforces the declaration by refusing to
	// install single-node-verified protocols on more than one node.
	SingleNode bool
}

// Verify runs all four analyses on a checked program under the default
// network-wide deployment assumption.
func Verify(info *typecheck.Info) *Result { return VerifyWith(info, Options{}) }

// VerifyWith runs the analyses under explicit deployment options.
func VerifyWith(info *typecheck.Info, opts Options) *Result {
	r := &Result{}
	r.LocalTermination = localTermination(info)
	if opts.SingleNode {
		r.GlobalTermination = Check{Name: "global-termination", OK: true,
			Detail: "single-node deployment: each packet is processed by this program at most once"}
	} else {
		states, cycleDetail := exploreStates(info)
		if cycleDetail == "" {
			r.GlobalTermination = Check{Name: "global-termination", OK: true,
				Detail: fmt.Sprintf("no cycle in %d abstract states", states)}
		} else {
			r.GlobalTermination = Check{Name: "global-termination", OK: false, Detail: cycleDetail}
		}
	}
	r.Delivery = delivery(info, r.GlobalTermination.OK)
	r.Duplication = duplication(info)
	return r
}

// ---------------------------------------------------------------------------
// Local termination

// localTermination re-validates the construction invariants the checker
// enforces: the fun call graph references strictly earlier funs (no
// recursion) and the AST contains no looping construct (there is none in
// the grammar; this guards against future extensions violating it).
func localTermination(info *typecheck.Info) Check {
	for i := range info.Funs {
		f := &info.Funs[i]
		bad := false
		walk(f.Decl.Body, func(e ast.Expr) {
			if call, ok := e.(*ast.Call); ok && call.FunIndex >= f.Index {
				bad = true
			}
		})
		if bad {
			return Check{Name: "local-termination", OK: false,
				Detail: fmt.Sprintf("fun %s calls itself or a later fun", f.Decl.Name),
				Pos:    f.Decl.At, End: f.Decl.DeclEnd()}
		}
	}
	return Check{Name: "local-termination", OK: true, Detail: "no recursion, no loops (by construction)"}
}

// walk visits every node of an expression tree.
func walk(e ast.Expr, visit func(ast.Expr)) {
	visit(e)
	switch e := e.(type) {
	case *ast.Proj:
		walk(e.Tuple, visit)
	case *ast.Call:
		for _, a := range e.Args {
			walk(a, visit)
		}
	case *ast.Let:
		for _, b := range e.Binds {
			walk(b.Init, visit)
		}
		walk(e.Body, visit)
	case *ast.If:
		walk(e.Cond, visit)
		walk(e.Then, visit)
		walk(e.Else, visit)
	case *ast.Seq:
		for _, sub := range e.Exprs {
			walk(sub, visit)
		}
	case *ast.TupleExpr:
		for _, sub := range e.Elems {
			walk(sub, visit)
		}
	case *ast.Unary:
		walk(e.X, visit)
	case *ast.Binary:
		walk(e.L, visit)
		walk(e.R, visit)
	case *ast.Try:
		walk(e.Body, visit)
		walk(e.Handler, visit)
	case *ast.Raise:
		walk(e.Msg, visit)
	}
}

// ---------------------------------------------------------------------------
// Guaranteed delivery

// delivery checks the three conditions of §2.1: no cycling (from the
// global-termination analysis), all exceptions handled, and a forward or
// deliver on every execution path.
func delivery(info *typecheck.Info, noCycle bool) Check {
	if !noCycle {
		return Check{Name: "delivery", OK: false, Detail: "program may cycle (see global-termination)"}
	}
	for i := range info.Channels {
		ch := &info.Channels[i]
		if mayRaise(info, ch.Decl.Body, nil) {
			return Check{Name: "delivery", OK: false,
				Detail: fmt.Sprintf("channel %s may terminate with an unhandled exception", ch.Decl.Name),
				Pos:    ch.Decl.At, End: ch.Decl.HeaderEnd}
		}
		if !allPathsSend(ch.Decl.Body) {
			return Check{Name: "delivery", OK: false,
				Detail: fmt.Sprintf("channel %s drops the packet on some execution path (no OnRemote/OnNeighbor/deliver)", ch.Decl.Name),
				Pos:    ch.Decl.At, End: ch.Decl.HeaderEnd}
		}
	}
	return Check{Name: "delivery", OK: true, Detail: "all exceptions handled, all paths forward or deliver"}
}

// guard records a membership fact established by an enclosing
// "if tmem(tbl, key) then ..." test: tget(tbl, key) in the then-branch
// cannot raise. This is the one flow-sensitive refinement the analysis
// needs to accept the paper's own table idiom (figure 2's getSetS).
type guard struct{ tbl, key ast.Expr }

// mayRaise conservatively reports whether evaluating e can raise a
// PLAN-P exception that is not handled within e, given membership facts
// from enclosing tmem guards.
func mayRaise(info *typecheck.Info, e ast.Expr, guards []guard) bool {
	switch e := e.(type) {
	case *ast.Raise:
		return true
	case *ast.Try:
		// The body's exceptions are handled; the handler's are not.
		return mayRaise(info, e.Handler, guards)
	case *ast.Binary:
		if e.Op == "/" || e.Op == "mod" {
			// Division raises unless the divisor is a non-zero literal.
			if lit, ok := e.R.(*ast.IntLit); !ok || lit.Value == 0 {
				return true
			}
		}
		return mayRaise(info, e.L, guards) || mayRaise(info, e.R, guards)
	case *ast.Call:
		for _, a := range e.Args {
			if mayRaise(info, a, guards) {
				return true
			}
		}
		if e.PrimIndex >= 0 {
			if !prims.CanRaise(e.PrimIndex) {
				return false
			}
			switch e.Name {
			case "mkTable":
				// A non-negative literal capacity cannot raise.
				if inRange(info, e.Args[0], 0, 1<<62) {
					return false
				}
			case "rand":
				if inRange(info, e.Args[0], 1, 1<<62) {
					return false
				}
			case "tget":
				for _, g := range guards {
					if exprEqual(g.tbl, e.Args[0]) && exprEqual(g.key, e.Args[1]) {
						return false
					}
				}
			case "mkUDP":
				if inRange(info, e.Args[0], 0, 65535) && inRange(info, e.Args[1], 0, 65535) {
					return false
				}
			case "tcpSrcSet", "tcpDstSet", "udpSrcSet", "udpDstSet":
				if inRange(info, e.Args[1], 0, 65535) {
					return false
				}
			case "mkIP":
				if inRange(info, e.Args[2], 0, 255) {
					return false
				}
			case "ipTTLSet", "itoc":
				if inRange(info, e.Args[len(e.Args)-1], 0, 255) {
					return false
				}
			case "intToHost":
				if inRange(info, e.Args[0], 0, 0xFFFFFFFF) {
					return false
				}
			}
			return true
		}
		if e.FunIndex >= 0 {
			return mayRaise(info, info.Funs[e.FunIndex].Decl.Body, nil)
		}
		return false // OnRemote/OnNeighbor
	case *ast.Proj:
		return mayRaise(info, e.Tuple, guards)
	case *ast.Let:
		for _, b := range e.Binds {
			if mayRaise(info, b.Init, guards) {
				return true
			}
		}
		return mayRaise(info, e.Body, guards)
	case *ast.If:
		if mayRaise(info, e.Cond, guards) {
			return true
		}
		thenGuards := guards
		if g, ok := tmemGuard(e.Cond); ok && guardStable(g, e.Then) {
			thenGuards = append(append([]guard{}, guards...), g)
		}
		return mayRaise(info, e.Then, thenGuards) || mayRaise(info, e.Else, guards)
	case *ast.Seq:
		for _, sub := range e.Exprs {
			if mayRaise(info, sub, guards) {
				return true
			}
		}
		return false
	case *ast.TupleExpr:
		for _, sub := range e.Elems {
			if mayRaise(info, sub, guards) {
				return true
			}
		}
		return false
	case *ast.Unary:
		return mayRaise(info, e.X, guards)
	default:
		return false
	}
}

// inRange proves, where syntactically possible, that an int expression
// always evaluates within [lo, hi]: integer literals, top-level vals
// bound to literals, and port accessors (whose results are 16-bit by
// construction). This tiny range analysis is what lets the paper's
// header-building idioms (mkUDP(queryPort, udpSrc(...))) pass the
// guaranteed-delivery check without spurious try wrappers.
func inRange(info *typecheck.Info, e ast.Expr, lo, hi int64) bool {
	switch e := e.(type) {
	case *ast.IntLit:
		return e.Value >= lo && e.Value <= hi
	case *ast.Var:
		if e.Global >= 0 && e.Global < len(info.Globals) {
			if lit, ok := info.Globals[e.Global].Decl.Init.(*ast.IntLit); ok {
				return lit.Value >= lo && lit.Value <= hi
			}
		}
		return false
	case *ast.Call:
		switch e.Name {
		case "tcpSrc", "tcpDst", "udpSrc", "udpDst":
			return lo <= 0 && hi >= 65535
		case "ipTTL", "blobByte", "ctoi", "charPos":
			return lo <= 0 && hi >= 255
		}
		return false
	default:
		return false
	}
}

// tmemGuard extracts the membership fact from an if condition: either a
// bare tmem(tbl, key) call or the left conjunct of an andalso chain.
func tmemGuard(cond ast.Expr) (guard, bool) {
	switch cond := cond.(type) {
	case *ast.Call:
		if cond.Name == "tmem" && len(cond.Args) == 2 {
			return guard{tbl: cond.Args[0], key: cond.Args[1]}, true
		}
	case *ast.Binary:
		if cond.Op == "andalso" {
			if g, ok := tmemGuard(cond.L); ok {
				return g, true
			}
			return tmemGuard(cond.R)
		}
	}
	return guard{}, false
}

// guardStable reports whether the membership fact g remains valid
// throughout branch: the branch must not delete table entries (tdel) and
// must not shadow any variable mentioned by the guard expressions with a
// let binding (which would make syntactic matching unsound).
func guardStable(g guard, branch ast.Expr) bool {
	names := map[string]bool{}
	collectVars(g.tbl, names)
	collectVars(g.key, names)
	stable := true
	walk(branch, func(e ast.Expr) {
		switch e := e.(type) {
		case *ast.Call:
			if e.Name == "tdel" {
				stable = false
			}
		case *ast.Let:
			for _, b := range e.Binds {
				if names[b.Name] {
					stable = false
				}
			}
		}
	})
	return stable
}

func collectVars(e ast.Expr, out map[string]bool) {
	walk(e, func(e ast.Expr) {
		if v, ok := e.(*ast.Var); ok {
			out[v.Name] = true
		}
	})
}

// exprEqual is syntactic expression equality, used to match guarded
// table/key expressions. It is conservative: structurally different
// expressions that denote the same value compare unequal. It is also
// only sound for pure expressions, which table and key positions are
// (the checker confines effects to send/print primitives, all of which
// return unit and so cannot appear as a table or key argument usefully;
// a false positive here would only arise from pathological code and
// errs toward rejecting).
func exprEqual(a, b ast.Expr) bool {
	switch a := a.(type) {
	case *ast.Var:
		b, ok := b.(*ast.Var)
		return ok && a.Name == b.Name
	case *ast.IntLit:
		b, ok := b.(*ast.IntLit)
		return ok && a.Value == b.Value
	case *ast.BoolLit:
		b, ok := b.(*ast.BoolLit)
		return ok && a.Value == b.Value
	case *ast.StringLit:
		b, ok := b.(*ast.StringLit)
		return ok && a.Value == b.Value
	case *ast.CharLit:
		b, ok := b.(*ast.CharLit)
		return ok && a.Value == b.Value
	case *ast.HostLit:
		b, ok := b.(*ast.HostLit)
		return ok && a.Addr == b.Addr
	case *ast.Proj:
		b, ok := b.(*ast.Proj)
		return ok && a.Index == b.Index && exprEqual(a.Tuple, b.Tuple)
	case *ast.TupleExpr:
		b, ok := b.(*ast.TupleExpr)
		if !ok || len(a.Elems) != len(b.Elems) {
			return false
		}
		for i := range a.Elems {
			if !exprEqual(a.Elems[i], b.Elems[i]) {
				return false
			}
		}
		return true
	case *ast.Call:
		b, ok := b.(*ast.Call)
		if !ok || a.Name != b.Name || len(a.Args) != len(b.Args) {
			return false
		}
		for i := range a.Args {
			if !exprEqual(a.Args[i], b.Args[i]) {
				return false
			}
		}
		return true
	case *ast.Unary:
		b, ok := b.(*ast.Unary)
		return ok && a.Op == b.Op && exprEqual(a.X, b.X)
	case *ast.Binary:
		b, ok := b.(*ast.Binary)
		return ok && a.Op == b.Op && exprEqual(a.L, b.L) && exprEqual(a.R, b.R)
	default:
		return false
	}
}

// allPathsSend reports whether every execution path through e performs
// at least one OnRemote, OnNeighbor, or deliver.
func allPathsSend(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.Call:
		if e.Name == "OnRemote" || e.Name == "OnNeighbor" || e.Name == "deliver" {
			return true
		}
		for _, a := range e.Args {
			if allPathsSend(a) {
				return true
			}
		}
		return false
	case *ast.Raise:
		// A raising path never completes; exception coverage is checked
		// separately, so this path is vacuously delivering.
		return true
	case *ast.Try:
		return allPathsSend(e.Body) && allPathsSend(e.Handler)
	case *ast.Proj:
		return allPathsSend(e.Tuple)
	case *ast.Let:
		for _, b := range e.Binds {
			if allPathsSend(b.Init) {
				return true
			}
		}
		return allPathsSend(e.Body)
	case *ast.If:
		if allPathsSend(e.Cond) {
			return true
		}
		return allPathsSend(e.Then) && allPathsSend(e.Else)
	case *ast.Seq:
		for _, sub := range e.Exprs {
			if allPathsSend(sub) {
				return true
			}
		}
		return false
	case *ast.TupleExpr:
		for _, sub := range e.Elems {
			if allPathsSend(sub) {
				return true
			}
		}
		return false
	case *ast.Unary:
		return allPathsSend(e.X)
	case *ast.Binary:
		if e.Op == "andalso" || e.Op == "orelse" {
			return allPathsSend(e.L) // R may be skipped
		}
		return allPathsSend(e.L) || allPathsSend(e.R)
	default:
		return false
	}
}

// ---------------------------------------------------------------------------
// Safe duplication

// duplication runs the fix-point analysis: a program can duplicate
// packets exponentially iff a channel that emits more than one packet on
// some execution path lies on a cycle of the channel send graph.
//
// Both inputs — per-channel send multiplicity and the send graph — come
// from the channel-interface signature the typechecker extracted, so
// the analysis no longer re-walks channel bodies.
func duplication(info *typecheck.Info) Check {
	sig := info.Sig
	if sig == nil {
		sig = typecheck.ExtractSignature(info)
	}
	n := len(info.Channels)
	// copies[i]: maximum sends on any execution path of channel i
	// (saturated at 2). edges[i]: channel indices i can send to.
	copies := make([]int, n)
	edges := make([][]int, n)
	for i, ch := range sig.Channels {
		copies[i] = ch.MaxSendsPerPath
		seen := map[int]bool{}
		for _, snd := range ch.Sends {
			for _, target := range info.ChannelsByName(snd.Channel) {
				if !seen[target.Index] {
					seen[target.Index] = true
					edges[i] = append(edges[i], target.Index)
				}
			}
		}
	}

	// reaches[i][j]: transitive closure of the send graph (fix-point).
	reaches := make([][]bool, n)
	for i := range reaches {
		reaches[i] = make([]bool, n)
		for _, j := range edges[i] {
			reaches[i][j] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if !reaches[i][j] {
					continue
				}
				for k := 0; k < n; k++ {
					if reaches[j][k] && !reaches[i][k] {
						reaches[i][k] = true
						changed = true
					}
				}
			}
		}
	}

	for i := 0; i < n; i++ {
		if copies[i] >= 2 && reaches[i][i] {
			return Check{Name: "duplication", OK: false,
				Detail: fmt.Sprintf("channel %s copies packets (%d+ sends on one path) and lies on a send cycle: duplication may be exponential",
					info.Channels[i].Decl.Name, copies[i]),
				Pos: info.Channels[i].Decl.At, End: info.Channels[i].Decl.HeaderEnd}
		}
	}
	return Check{Name: "duplication", OK: true, Detail: "packet duplication is linear"}
}

