// Global termination: exhaustive exploration of an abstract transition
// system, following §2.1's sketch (state space of order r·d^2d, with r
// the number of sends and d the number of destinations available to the
// program — typically just the packet's source and destination).
//
// Abstract hosts track where an address came from: the original packet's
// source (S0) or destination (D0), a program literal, the executing
// node, or unknown (e.g. a hash-table lookup). A send edge "makes
// progress" when the destination is provably the same concrete address
// as before — a pure forward, or a rewrite to the same literal — because
// under acyclic IP routing a packet heading to a fixed destination
// arrives in finitely many hops. A reachable cycle containing any
// non-progress edge means the program may route packets forever, so it
// is rejected.
package verify

import (
	"fmt"

	"planp.dev/planp/internal/lang/ast"
	"planp.dev/planp/internal/lang/typecheck"
	"planp.dev/planp/internal/lang/value"
)

// ahKind classifies an abstract host.
type ahKind uint8

const (
	ahPSrc    ahKind = iota + 1 // the incoming packet's source
	ahPDst                      // the incoming packet's destination
	ahLit                       // a program literal
	ahThis                      // the executing node's address
	ahUnknown                   // anything (table lookups, arithmetic, ...)
)

// ahost is an abstract host value.
type ahost struct {
	kind ahKind
	lit  value.Host // valid when kind == ahLit
}

func (a ahost) String() string {
	switch a.kind {
	case ahPSrc:
		return "src"
	case ahPDst:
		return "dst"
	case ahLit:
		return a.lit.String()
	case ahThis:
		return "this"
	default:
		return "?"
	}
}

// aIP abstracts an IP header: its source and destination.
type aIP struct{ src, dst ahost }

// aval is the abstract value lattice for expressions. Only hosts, IP
// headers, and tuples containing them are tracked; everything else is
// aOther.
type aval struct {
	kind  uint8 // 0 other, 1 host, 2 ip, 3 tuple
	host  ahost
	ip    aIP
	elems []aval
}

const (
	avOther = iota
	avHost
	avIP
	avTuple
)

var unknownHost = ahost{kind: ahUnknown}

func joinHost(a, b ahost) ahost {
	if a == b {
		return a
	}
	return unknownHost
}

func joinVal(a, b aval) aval {
	if a.kind != b.kind {
		return aval{kind: avOther}
	}
	switch a.kind {
	case avHost:
		return aval{kind: avHost, host: joinHost(a.host, b.host)}
	case avIP:
		return aval{kind: avIP, ip: aIP{src: joinHost(a.ip.src, b.ip.src), dst: joinHost(a.ip.dst, b.ip.dst)}}
	case avTuple:
		if len(a.elems) != len(b.elems) {
			return aval{kind: avOther}
		}
		elems := make([]aval, len(a.elems))
		for i := range elems {
			elems[i] = joinVal(a.elems[i], b.elems[i])
		}
		return aval{kind: avTuple, elems: elems}
	default:
		return aval{kind: avOther}
	}
}

// send records one abstract OnRemote/OnNeighbor site found in a channel.
type send struct {
	targetName string
	ip         aIP // in terms of the incoming packet (pre-substitution)
}

// collectSends abstractly evaluates a channel body and returns its send
// sites. Path-insensitive: sends on both branches of an if are both
// reported (conservative).
func collectSends(info *typecheck.Info, ch *typecheck.Channel) []send {
	ae := &absEval{info: info, frame: make([]aval, ch.FrameSize)}
	// Parameters: protocol state (other), channel state (other), packet.
	ae.frame[2] = abstractPacket(ch.Decl.PacketType())
	ae.eval(ch.Decl.Body)
	return ae.sends
}

// abstractPacket builds the abstract value of an incoming packet: a
// tuple whose ip component carries the S0/D0 markers.
func abstractPacket(t ast.Type) aval {
	tup, ok := t.(ast.Tuple)
	if !ok {
		return aval{kind: avOther}
	}
	elems := make([]aval, len(tup.Elems))
	elems[0] = aval{kind: avIP, ip: aIP{src: ahost{kind: ahPSrc}, dst: ahost{kind: ahPDst}}}
	for i := 1; i < len(elems); i++ {
		elems[i] = aval{kind: avOther}
	}
	return aval{kind: avTuple, elems: elems}
}

type absEval struct {
	info  *typecheck.Info
	frame []aval
	sends []send
}

// eval abstractly evaluates e, recording sends as a side effect.
func (ae *absEval) eval(e ast.Expr) aval {
	switch e := e.(type) {
	case *ast.HostLit:
		return aval{kind: avHost, host: ahost{kind: ahLit, lit: value.Host(e.Addr)}}

	case *ast.Var:
		if e.Slot >= 0 {
			return ae.frame[e.Slot]
		}
		// Top-level host literals flow through globals.
		g := ae.info.Globals[e.Global]
		if hl, ok := g.Decl.Init.(*ast.HostLit); ok {
			return aval{kind: avHost, host: ahost{kind: ahLit, lit: value.Host(hl.Addr)}}
		}
		return aval{kind: avOther}

	case *ast.Proj:
		t := ae.eval(e.Tuple)
		if t.kind == avTuple && e.Index-1 < len(t.elems) {
			return t.elems[e.Index-1]
		}
		return aval{kind: avOther}

	case *ast.Let:
		for i := range e.Binds {
			b := &e.Binds[i]
			ae.frame[b.Slot] = ae.eval(b.Init)
		}
		return ae.eval(e.Body)

	case *ast.If:
		ae.eval(e.Cond)
		// Evaluate both branches on copies of the frame, then join.
		save := make([]aval, len(ae.frame))
		copy(save, ae.frame)
		tv := ae.eval(e.Then)
		thenFrame := ae.frame
		ae.frame = save
		ev := ae.eval(e.Else)
		for i := range ae.frame {
			ae.frame[i] = joinVal(thenFrame[i], ae.frame[i])
		}
		return joinVal(tv, ev)

	case *ast.Seq:
		var last aval
		for _, sub := range e.Exprs {
			last = ae.eval(sub)
		}
		return last

	case *ast.TupleExpr:
		elems := make([]aval, len(e.Elems))
		for i, sub := range e.Elems {
			elems[i] = ae.eval(sub)
		}
		return aval{kind: avTuple, elems: elems}

	case *ast.Unary:
		ae.eval(e.X)
		return aval{kind: avOther}

	case *ast.Binary:
		ae.eval(e.L)
		ae.eval(e.R)
		return aval{kind: avOther}

	case *ast.Try:
		bv := ae.eval(e.Body)
		hv := ae.eval(e.Handler)
		return joinVal(bv, hv)

	case *ast.Raise:
		ae.eval(e.Msg)
		return aval{kind: avOther}

	case *ast.Call:
		return ae.evalCall(e)

	default:
		return aval{kind: avOther}
	}
}

func (ae *absEval) evalCall(e *ast.Call) aval {
	// Sends: record the packet's abstract IP.
	if e.Name == "OnRemote" || e.Name == "OnNeighbor" {
		cref := e.Args[0].(*ast.ChanRef)
		pv := ae.eval(e.Args[1])
		ip := aIP{src: unknownHost, dst: unknownHost}
		if pv.kind == avTuple && len(pv.elems) > 0 && pv.elems[0].kind == avIP {
			ip = pv.elems[0].ip
		}
		if e.Name == "OnNeighbor" {
			// Link-local flood: the destination header is not used for
			// routing, each neighbor processes it once; treat as a
			// rewrite to unknown so cycles through floods are caught.
			ip.dst = unknownHost
		}
		ae.sends = append(ae.sends, send{targetName: cref.Name, ip: ip})
		return aval{kind: avOther}
	}

	args := make([]aval, len(e.Args))
	for i, a := range e.Args {
		args[i] = ae.eval(a)
	}

	// Header-flow primitives.
	switch e.Name {
	case "ipSrc":
		if args[0].kind == avIP {
			return aval{kind: avHost, host: args[0].ip.src}
		}
	case "ipDst":
		if args[0].kind == avIP {
			return aval{kind: avHost, host: args[0].ip.dst}
		}
	case "ipSrcSet":
		if args[0].kind == avIP {
			ip := args[0].ip
			ip.src = hostOf(args[1])
			return aval{kind: avIP, ip: ip}
		}
	case "ipDestSet":
		if args[0].kind == avIP {
			ip := args[0].ip
			ip.dst = hostOf(args[1])
			return aval{kind: avIP, ip: ip}
		}
	case "ipTTLSet", "ipLenSet":
		return args[0] // header otherwise unchanged
	case "mkIP":
		return aval{kind: avIP, ip: aIP{src: hostOf(args[0]), dst: hostOf(args[1])}}
	case "thisHost":
		return aval{kind: avHost, host: ahost{kind: ahThis}}
	}

	// User funs: abstractly inline (non-recursive by construction).
	if e.FunIndex >= 0 {
		f := &ae.info.Funs[e.FunIndex]
		inner := &absEval{info: ae.info, frame: make([]aval, f.FrameSize)}
		copy(inner.frame, args)
		res := inner.eval(f.Decl.Body)
		// Funs cannot send (checker-enforced), so no send merging needed.
		return res
	}

	// Any other primitive: result unknown; an ip-typed result would be
	// fully unknown, which hostOf/ip handling already encode as avOther.
	return aval{kind: avOther}
}

func hostOf(v aval) ahost {
	if v.kind == avHost {
		return v.host
	}
	return unknownHost
}

// ---------------------------------------------------------------------------
// State exploration

// addrTok is a concrete abstract address in the explored state space.
type addrTok struct {
	kind ahKind // ahPSrc = original source, ahPDst = original destination, ahLit, ahUnknown
	lit  value.Host
}

func (t addrTok) String() string {
	switch t.kind {
	case ahPSrc:
		return "S0"
	case ahPDst:
		return "D0"
	case ahLit:
		return t.lit.String()
	default:
		return "?"
	}
}

// state is one node of the abstract transition system.
type state struct {
	chanIdx  int
	src, dst addrTok
}

// substitute resolves an abstract host (in terms of the incoming packet)
// against the current state, returning the concrete addrTok and whether
// the result is a local delivery (dst == this node) rather than a
// transmission.
func substitute(a ahost, st state) (addrTok, bool) {
	switch a.kind {
	case ahPSrc:
		return st.src, false
	case ahPDst:
		return st.dst, false
	case ahLit:
		return addrTok{kind: ahLit, lit: a.lit}, false
	case ahThis:
		// A destination equal to the sending node is delivered locally
		// and never transmitted; as a source it is an address the
		// exploration cannot name.
		return addrTok{kind: ahUnknown}, true
	default:
		return addrTok{kind: ahUnknown}, false
	}
}

// exploreStates builds and explores the transition system. It returns
// the number of states visited and, when a fatal cycle exists, a
// human-readable description (empty string means proven cycle-free).
func exploreStates(info *typecheck.Info) (int, string) {
	// Per-channel abstract send sites.
	sendsOf := make([][]send, len(info.Channels))
	for i := range info.Channels {
		sendsOf[i] = collectSends(info, &info.Channels[i])
	}

	type edge struct {
		to       int
		changing bool
	}
	states := []state{}
	index := map[state]int{}
	adj := [][]edge{}

	intern := func(st state) int {
		if i, ok := index[st]; ok {
			return i
		}
		i := len(states)
		index[st] = i
		states = append(states, st)
		adj = append(adj, nil)
		return i
	}

	// Initial states: every channel can receive a fresh packet whose
	// source and destination are the opaque originals.
	work := []int{}
	for ci := range info.Channels {
		work = append(work, intern(state{chanIdx: ci, src: addrTok{kind: ahPSrc}, dst: addrTok{kind: ahPDst}}))
	}

	for len(work) > 0 {
		si := work[len(work)-1]
		work = work[:len(work)-1]
		st := states[si]
		if adj[si] != nil {
			continue // already expanded
		}
		expanded := []edge{}
		for _, s := range sendsOf[st.chanIdx] {
			dstTok, dstIsLocal := substitute(s.ip.dst, st)
			if dstIsLocal {
				continue // delivered to self, journey ends
			}
			srcTok, _ := substitute(s.ip.src, st)
			// Progress: a pure forward (destination component flows
			// from the incoming destination unchanged), or a rewrite
			// that provably produces the same concrete address.
			progress := s.ip.dst.kind == ahPDst ||
				(dstTok == st.dst && dstTok.kind != ahUnknown)
			for _, target := range info.ChannelsByName(s.targetName) {
				next := state{chanIdx: target.Index, src: srcTok, dst: dstTok}
				ni := intern(next)
				expanded = append(expanded, edge{to: ni, changing: !progress})
				if adj[ni] == nil {
					work = append(work, ni)
				}
			}
		}
		if expanded == nil {
			expanded = []edge{} // mark expanded
		}
		adj[si] = expanded
	}

	// Tarjan SCC; a changing edge inside an SCC (including self-loops)
	// is a potential infinite journey.
	n := len(states)
	sccOf := make([]int, n)
	for i := range sccOf {
		sccOf[i] = -1
	}
	idx := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range idx {
		idx[i] = -1
	}
	var stack []int
	counter := 0
	sccCount := 0
	var strongconnect func(v int)
	strongconnect = func(v int) {
		idx[v] = counter
		low[v] = counter
		counter++
		stack = append(stack, v)
		onStack[v] = true
		for _, e := range adj[v] {
			if idx[e.to] == -1 {
				strongconnect(e.to)
				if low[e.to] < low[v] {
					low[v] = low[e.to]
				}
			} else if onStack[e.to] && idx[e.to] < low[v] {
				low[v] = idx[e.to]
			}
		}
		if low[v] == idx[v] {
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				sccOf[w] = sccCount
				if w == v {
					break
				}
			}
			sccCount++
		}
	}
	for v := 0; v < n; v++ {
		if idx[v] == -1 {
			strongconnect(v)
		}
	}

	for v := 0; v < n; v++ {
		for _, e := range adj[v] {
			if sccOf[v] != sccOf[e.to] || !e.changing {
				continue
			}
			from, to := states[v], states[e.to]
			return n, fmt.Sprintf(
				"packet may cycle: channel %s (dst=%s) re-sends via channel %s with rewritten destination %s inside a loop",
				info.Channels[from.chanIdx].Decl.Name, from.dst,
				info.Channels[to.chanIdx].Decl.Name, to.dst)
		}
	}
	return n, ""
}
