package verify_test

import (
	"testing"

	"planp.dev/planp/internal/lang/langtest"
	"planp.dev/planp/internal/lang/verify"
)

// These tests pin the flow-sensitive refinements of the
// guaranteed-delivery analysis: tmem guards, guard invalidation, and the
// literal/port range analysis.

func deliveryOK(t *testing.T, src string) bool {
	t.Helper()
	return verify.Verify(langtest.CheckSrc(t, src)).Delivery.OK
}

func TestGuardThroughAndalsoChain(t *testing.T) {
	if !deliveryOK(t, `
channel network(ps : unit, ss : (host) hash_table, p : ip*udp*blob)
initstate mkTable(4) is
  if udpDst(#2 p) = 9 andalso tmem(ss, ipSrc(#1 p)) andalso true then
    (deliver((#1 p, #2 p, blobFromString(hostToString(tget(ss, ipSrc(#1 p)))))); (ps, ss))
  else
    (deliver(p); (ps, ss))
`) {
		t.Error("tmem inside an andalso chain should guard tget")
	}
}

func TestGuardInvalidatedByTdel(t *testing.T) {
	if deliveryOK(t, `
channel network(ps : unit, ss : (host) hash_table, p : ip*udp*blob)
initstate mkTable(4) is
  if tmem(ss, ipSrc(#1 p)) then
    (tdel(ss, ipSrc(#1 p));
     deliver((#1 p, #2 p, blobFromString(hostToString(tget(ss, ipSrc(#1 p))))));
     (ps, ss))
  else
    (deliver(p); (ps, ss))
`) {
		t.Error("tdel inside the guarded branch must invalidate the guard")
	}
}

func TestGuardInvalidatedByShadowing(t *testing.T) {
	if deliveryOK(t, `
channel network(ps : unit, ss : (int) hash_table, p : ip*udp*blob)
initstate mkTable(4) is
  let val k : int = udpDst(#2 p)
  in
    if tmem(ss, k) then
      let val k : int = udpSrc(#2 p)
      in (deliver(p); (println(tget(ss, k)); (ps, ss))) end
    else
      (deliver(p); (ps, ss))
  end
`) {
		t.Error("a shadowing let must invalidate the guard (different k)")
	}
}

func TestGuardDoesNotCoverDifferentKey(t *testing.T) {
	if deliveryOK(t, `
channel network(ps : unit, ss : (int) hash_table, p : ip*udp*blob)
initstate mkTable(4) is
  if tmem(ss, udpDst(#2 p)) then
    (println(tget(ss, udpSrc(#2 p))); deliver(p); (ps, ss))
  else
    (deliver(p); (ps, ss))
`) {
		t.Error("a guard on one key must not cover a tget on another")
	}
}

func TestGuardNotInElseBranch(t *testing.T) {
	if deliveryOK(t, `
channel network(ps : unit, ss : (int) hash_table, p : ip*udp*blob)
initstate mkTable(4) is
  if tmem(ss, 1) then
    (deliver(p); (ps, ss))
  else
    (println(tget(ss, 1)); deliver(p); (ps, ss))
`) {
		t.Error("the else branch has no membership fact")
	}
}

func TestRangeAnalysisOnGlobals(t *testing.T) {
	// Global literal port: mkUDP cannot raise.
	if !deliveryOK(t, `
val myPort : int = 7002
channel network(ps : unit, ss : unit, p : ip*udp*blob) is
  let val h : udp = mkUDP(myPort, udpSrc(#2 p))
  in (deliver((#1 p, h, #3 p)); (ps, ss)) end
`) {
		t.Error("literal-global port + port accessor should prove mkUDP safe")
	}
	// A computed port is not provably in range.
	if deliveryOK(t, `
channel network(ps : int, ss : unit, p : ip*udp*blob) is
  let val h : udp = mkUDP(ps, udpSrc(#2 p))
  in (deliver((#1 p, h, #3 p)); (ps, ss)) end
`) {
		t.Error("arbitrary int port must fail the range analysis")
	}
}

func TestRangeAnalysisOnAccessors(t *testing.T) {
	// itoc of a blobByte result (0-255) is safe; of an arbitrary sum it
	// is not.
	if !deliveryOK(t, `
channel network(ps : unit, ss : unit, p : ip*udp*blob) is
  (println(itoc(ipTTL(#1 p))); deliver(p); (ps, ss))
`) {
		t.Error("itoc(ipTTL(...)) is provably in byte range")
	}
	if deliveryOK(t, `
channel network(ps : int, ss : unit, p : ip*udp*blob) is
  (println(itoc(ps)); deliver(p); (ps, ss))
`) {
		t.Error("itoc of arbitrary int must fail")
	}
}

func TestDivisionByLiteralSafe(t *testing.T) {
	if !deliveryOK(t, `
channel network(ps : int, ss : unit, p : ip*udp*blob) is
  (deliver(p); (ps / 2 + ps mod 3, ss))
`) {
		t.Error("division by a non-zero literal cannot raise")
	}
	if deliveryOK(t, `
channel network(ps : int, ss : unit, p : ip*udp*blob) is
  (deliver(p); (ps / blobLen(#3 p), ss))
`) {
		t.Error("division by a computed value may raise")
	}
}

func TestFunBodiesAnalyzedInterprocedurally(t *testing.T) {
	// A fun whose body may raise taints its callers...
	if deliveryOK(t, `
fun risky(t : (int) hash_table) : int = tget(t, 1)
channel network(ps : unit, ss : (int) hash_table, p : ip*udp*blob)
initstate mkTable(4) is
  (println(risky(ss)); deliver(p); (ps, ss))
`) {
		t.Error("raising fun must taint the channel")
	}
	// ...unless the call is wrapped in try.
	if !deliveryOK(t, `
fun risky(t : (int) hash_table) : int = tget(t, 1)
channel network(ps : unit, ss : (int) hash_table, p : ip*udp*blob)
initstate mkTable(4) is
  (println(try risky(ss) handle 0 end); deliver(p); (ps, ss))
`) {
		t.Error("try should absorb the fun's exception")
	}
}
