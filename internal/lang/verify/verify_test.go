package verify_test

import (
	"strings"
	"testing"

	"planp.dev/planp/internal/lang/langtest"
	"planp.dev/planp/internal/lang/verify"
)

func run(t *testing.T, src string) *verify.Result {
	t.Helper()
	return verify.Verify(langtest.CheckSrc(t, src))
}

// plainForward is the simplest well-behaved protocol: forward everything
// unchanged.
const plainForward = `
channel network(ps : unit, ss : unit, p : ip*udp*blob)
is (OnRemote(network, p); (ps, ss))
`

func TestPlainForwardPassesAll(t *testing.T) {
	r := run(t, plainForward)
	if !r.AllOK() {
		t.Fatalf("plain forwarding should verify:\n%s", r)
	}
}

func TestDeliverOnlyPasses(t *testing.T) {
	r := run(t, `
channel network(ps : unit, ss : unit, p : ip*udp*blob)
is (deliver(p); (ps, ss))
`)
	if !r.AllOK() {
		t.Fatalf("deliver-only protocol should verify:\n%s", r)
	}
}

func TestPingPongRejected(t *testing.T) {
	// Reflect every packet back to its sender: a classic network cycle.
	r := run(t, `
channel network(ps : unit, ss : unit, p : ip*udp*blob)
is
  let val iph : ip = #1 p
  in
    (OnRemote(network, (ipDestSet(ipSrcSet(iph, ipDst(iph)), ipSrc(iph)), #2 p, #3 p));
     (ps, ss))
  end
`)
	if r.GlobalTermination.OK {
		t.Errorf("ping-pong must fail global termination:\n%s", r)
	}
	if r.Delivery.OK {
		t.Errorf("ping-pong must fail delivery (it cycles):\n%s", r)
	}
}

func TestRewriteToUnknownLoopRejected(t *testing.T) {
	// Each hop rewrites the destination from a table: no progress
	// argument possible, and the channel can re-receive its own sends.
	r := run(t, `
channel network(ps : unit, ss : (host) hash_table, p : ip*udp*blob)
initstate mkTable(8) is
  if tmem(ss, ipDst(#1 p)) then
    (OnRemote(network, (ipDestSet(#1 p, tget(ss, ipDst(#1 p))), #2 p, #3 p)); (ps, ss))
  else
    (OnRemote(network, p); (ps, ss))
`)
	if r.GlobalTermination.OK {
		t.Errorf("unknown-destination rewriting loop must fail global termination:\n%s", r)
	}
}

func TestMonitorHandoffPasses(t *testing.T) {
	// §3.3 shape: a monitor rewrites the destination once (to a value
	// from its table) and hands off to a channel that only delivers.
	r := run(t, `
channel capture(ps : unit, ss : unit, p : ip*udp*blob)
is (deliver(p); (ps, ss))

channel network(ps : unit, ss : (host) hash_table, p : ip*udp*blob)
initstate mkTable(8) is
  if udpDst(#2 p) = 9000 andalso tmem(ss, ipSrc(#1 p)) then
    (OnRemote(capture, (ipDestSet(#1 p, tget(ss, ipSrc(#1 p))), #2 p, #3 p)); (ps, ss))
  else
    (OnRemote(network, p); (ps, ss))
`)
	if !r.GlobalTermination.OK {
		t.Errorf("single rewrite + deliver handoff should pass global termination:\n%s", r)
	}
	// tget/tmem can raise only on... tmem cannot; tget is guarded but the
	// analysis is conservative, so delivery legitimately fails here.
	if r.Duplication.OK == false {
		t.Errorf("handoff duplicates nothing:\n%s", r)
	}
}

func TestGatewayRejectedNetworkWideButSingleNodeOK(t *testing.T) {
	// The §3.2 load balancer rewrites destinations to alternating
	// literals. Installed on every hop it can ping-pong between the two
	// servers, so the network-wide analysis must reject it; the paper
	// deploys it on one gateway node, where it is safe.
	src := `
channel network(ps : int, ss : unit, p : ip*tcp*blob)
is
  if tcpDst(#2 p) = 80 then
    if ps mod 2 = 0 then
      (OnRemote(network, (ipDestSet(#1 p, 10.0.0.2), #2 p, #3 p)); (ps+1, ss))
    else
      (OnRemote(network, (ipDestSet(#1 p, 10.0.0.3), #2 p, #3 p)); (ps+1, ss))
  else
    (OnRemote(network, p); (ps, ss))
`
	info := langtest.CheckSrc(t, src)
	if r := verify.Verify(info); r.GlobalTermination.OK {
		t.Errorf("alternating rewrite must fail network-wide termination:\n%s", r)
	}
	r := verify.VerifyWith(info, verify.Options{SingleNode: true})
	if !r.AllOK() {
		t.Errorf("gateway should verify for single-node deployment:\n%s", r)
	}
}

func TestUnhandledExceptionFailsDelivery(t *testing.T) {
	r := run(t, `
channel network(ps : unit, ss : (host) hash_table, p : ip*udp*blob)
initstate mkTable(8) is
  (OnRemote(network, (ipDestSet(#1 p, tget(ss, ipSrc(#1 p))), #2 p, #3 p)); (ps, ss))
`)
	if r.Delivery.OK {
		t.Errorf("unguarded tget must fail delivery:\n%s", r)
	}
}

func TestTryRestoresDelivery(t *testing.T) {
	r := run(t, `
channel network(ps : unit, ss : (host) hash_table, p : ip*udp*blob)
initstate mkTable(8) is
  let val dst : host = try tget(ss, ipSrc(#1 p)) handle ipDst(#1 p) end
  in (OnRemote(network, (ipDestSet(#1 p, dst), #2 p, #3 p)); (ps, ss)) end
`)
	// Note: the rewrite target is unknown (table), and the fallback is a
	// pure forward; the join makes the destination unknown, but there is
	// no cycle back into this channel... there is: network -> network.
	// The handler path forwards unchanged (progress) but the table path
	// rewrites to unknown, so termination conservatively fails — which
	// is exactly the paper's "legitimate protocols may be rejected".
	if r.Delivery.OK && !r.GlobalTermination.OK {
		t.Errorf("delivery cannot pass when termination failed:\n%s", r)
	}
	if mayRaiseFailed := strings.Contains(r.Delivery.Detail, "exception"); mayRaiseFailed {
		t.Errorf("try/handle should cover the tget exception:\n%s", r)
	}
}

func TestDropFailsDelivery(t *testing.T) {
	r := run(t, `
channel network(ps : int, ss : unit, p : ip*udp*blob)
is
  if udpDst(#2 p) = 7 then (ps, ss)
  else (OnRemote(network, p); (ps, ss))
`)
	if r.Delivery.OK {
		t.Errorf("intentional drop must fail delivery:\n%s", r)
	}
	if !strings.Contains(r.Delivery.Detail, "drops") {
		t.Errorf("detail should mention the drop, got %q", r.Delivery.Detail)
	}
}

func TestMulticastDuplicationRejected(t *testing.T) {
	// Two sends on one path, and the target channel loops back: the
	// paper's canonical exponential-duplication example.
	r := run(t, `
channel network(ps : unit, ss : unit, p : ip*udp*blob)
is
  (OnRemote(network, (ipDestSet(#1 p, 10.0.0.2), #2 p, #3 p));
   OnRemote(network, (ipDestSet(#1 p, 10.0.0.3), #2 p, #3 p));
   (ps, ss))
`)
	if r.Duplication.OK {
		t.Errorf("2-way copy into own channel must fail duplication:\n%s", r)
	}
}

func TestFanOutWithoutCycleAccepted(t *testing.T) {
	// Copying into a channel that only delivers is linear duplication.
	r := run(t, `
channel sink(ps : unit, ss : unit, p : ip*udp*blob)
is (deliver(p); (ps, ss))

channel network(ps : unit, ss : unit, p : ip*udp*blob)
is
  (OnRemote(sink, (ipDestSet(#1 p, 10.0.0.2), #2 p, #3 p));
   OnRemote(sink, (ipDestSet(#1 p, 10.0.0.3), #2 p, #3 p));
   (ps, ss))
`)
	if !r.Duplication.OK {
		t.Errorf("bounded fan-out into a sink is linear:\n%s", r)
	}
}

func TestOnNeighborFloodRejected(t *testing.T) {
	r := run(t, `
channel network(ps : unit, ss : unit, p : ip*udp*blob)
is (OnNeighbor(network, p); (ps, ss))
`)
	if r.Duplication.OK {
		t.Errorf("self-flooding must fail duplication:\n%s", r)
	}
	if r.GlobalTermination.OK {
		t.Errorf("self-flooding must fail termination:\n%s", r)
	}
}

func TestAudioShapedProtocolPasses(t *testing.T) {
	// §3.1 shape: degrade payload based on link load, forward unchanged
	// destination; client restores and delivers. Must pass everything.
	r := run(t, `
channel audiocast(ps : int, ss : int, p : ip*udp*blob)
is
  let
    val iph : ip = #1 p
    val load : int = linkLoadTo(ipDst(iph))
    val body : blob = try
        (if load > 80 then audioToMono8(#3 p)
         else if load > 50 then audioToMono16(#3 p)
         else #3 p)
      handle #3 p end
  in
    (OnRemote(audiocast, (iph, #2 p, body)); (ps, load))
  end
`)
	if !r.AllOK() {
		t.Fatalf("audio adaptation protocol should verify:\n%s", r)
	}
}

func TestResultErr(t *testing.T) {
	good := run(t, plainForward)
	if err := good.Err(); err != nil {
		t.Errorf("Err on passing result = %v, want nil", err)
	}
	bad := run(t, `
channel network(ps : unit, ss : unit, p : ip*udp*blob)
is (ps, ss)
`)
	err := bad.Err()
	if err == nil {
		t.Fatal("Err on failing result = nil")
	}
	if !strings.Contains(err.Error(), "delivery") {
		t.Errorf("error should name the failing analysis, got %v", err)
	}
}
