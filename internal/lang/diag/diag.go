// Package diag defines span-carrying diagnostics shared by every layer
// of the toolchain: the lexer, parser, typechecker, and verifier all
// report failures as Diagnostics (a position range plus a message), the
// control plane (internal/planpd) serializes them over HTTP, and the
// deploy CLI renders them with source excerpts.
//
// The package sits below the front end (its only dependency is token)
// so that typecheck and verify can construct Diagnostics without import
// cycles, while planprt/planpd/fleet extract them from arbitrary error
// chains through the Provider interface.
package diag

import (
	"errors"
	"fmt"
	"strings"

	"planp.dev/planp/internal/lang/token"
)

// Diagnostic is one failure with its source span. End is the position
// one column past the last character of the offending construct; a zero
// End means the span degenerates to the single position Pos.
type Diagnostic struct {
	Pos token.Pos `json:"pos"`
	End token.Pos `json:"end,omitzero"`
	Msg string    `json:"msg"`
}

// String renders "line:col: msg".
func (d Diagnostic) String() string { return fmt.Sprintf("%s: %s", d.Pos, d.Msg) }

// List is an ordered collection of diagnostics. It implements error so
// a checker can return its full report through a standard error value.
type List []Diagnostic

// Error renders every diagnostic, one per line.
func (l List) Error() string {
	parts := make([]string, len(l))
	for i, d := range l {
		parts[i] = d.String()
	}
	return strings.Join(parts, "\n")
}

// Provider is implemented by error types that carry span diagnostics
// (typecheck.Error, verify.Error, the lexer and parser errors).
type Provider interface {
	Diagnostics() List
}

// Of extracts the diagnostics carried anywhere in err's chain, or nil
// if no link of the chain is a Provider.
func Of(err error) List {
	var p Provider
	if errors.As(err, &p) {
		return p.Diagnostics()
	}
	return nil
}

// Render formats diagnostics with source excerpts:
//
//	prog.planp:4:11: channel gateway: body has type int, want int*unit
//	  channel gateway(ps : int, ss : unit, p : ip*udp*blob) is
//	            ^^^^^^^
//
// name labels the source (a file name or version label); it may be
// empty. Diagnostics whose positions fall outside src render without an
// excerpt.
func Render(src, name string, diags List) string {
	lines := strings.Split(src, "\n")
	var sb strings.Builder
	for _, d := range diags {
		if name != "" {
			fmt.Fprintf(&sb, "%s:%s: %s\n", name, d.Pos, d.Msg)
		} else {
			fmt.Fprintf(&sb, "%s: %s\n", d.Pos, d.Msg)
		}
		if !d.Pos.IsValid() || d.Pos.Line > len(lines) {
			continue
		}
		line := lines[d.Pos.Line-1]
		fmt.Fprintf(&sb, "  %s\n", line)
		width := 1
		if d.End.Line == d.Pos.Line && d.End.Col > d.Pos.Col {
			width = d.End.Col - d.Pos.Col
		}
		if d.Pos.Col-1+width > len(line) {
			width = max(1, len(line)-(d.Pos.Col-1))
		}
		sb.WriteString("  ")
		for i := 0; i < d.Pos.Col-1 && i < len(line); i++ {
			if line[i] == '\t' {
				sb.WriteByte('\t')
			} else {
				sb.WriteByte(' ')
			}
		}
		sb.WriteString(strings.Repeat("^", width))
		sb.WriteByte('\n')
	}
	return sb.String()
}
