package typecheck

import (
	"reflect"
	"testing"
)

func TestDiffNilSides(t *testing.T) {
	if got := Diff(nil, nil); got != nil {
		t.Errorf("Diff(nil, nil) = %v, want nil", got)
	}
	sig := &Signature{
		ProtoState: "int",
		Channels: []ChannelSig{{
			Name: "network", Packet: "ip*udp*blob",
			Sends: []SendSig{{Channel: "network", Packet: "ip*udp*blob"}},
		}},
	}
	// A bare peer gaining the interface: everything is an addition.
	want := []string{
		"protocol state added: int",
		"+ receive network(ip*udp*blob)",
		"+ send network(ip*udp*blob)",
	}
	if got := Diff(nil, sig); !reflect.DeepEqual(got, want) {
		t.Errorf("Diff(nil, sig) = %v, want %v", got, want)
	}
	// And dropping it: everything is a removal.
	want = []string{
		"protocol state dropped (was int)",
		"- receive network(ip*udp*blob)",
		"- send network(ip*udp*blob)",
	}
	if got := Diff(sig, nil); !reflect.DeepEqual(got, want) {
		t.Errorf("Diff(sig, nil) = %v, want %v", got, want)
	}
}

func TestDiffIdenticalIsEmpty(t *testing.T) {
	sig := func() *Signature {
		return &Signature{
			ProtoState: "int*unit",
			Channels: []ChannelSig{
				{Name: "network", Packet: "ip*udp*blob"},
				{Name: "admin", Packet: "ip*udp*int"},
			},
		}
	}
	if got := Diff(sig(), sig()); len(got) != 0 {
		t.Errorf("identical signatures diff = %v, want empty", got)
	}
}

func TestDiffChangesAndOrdering(t *testing.T) {
	running := &Signature{
		ProtoState: "int",
		Channels: []ChannelSig{
			{Name: "network", Packet: "ip*udp*blob",
				Sends: []SendSig{{Channel: "network", Packet: "ip*udp*blob"}}},
			{Name: "legacy", Packet: "ip*udp*int"},
		},
	}
	staged := &Signature{
		ProtoState: "int*int",
		Channels: []ChannelSig{
			{Name: "network", Packet: "ip*udp*blob",
				Sends: []SendSig{
					{Channel: "network", Packet: "ip*udp*blob"},
					{Channel: "probe", Packet: "ip*udp*unit", Flood: true},
				}},
			{Name: "admin", Packet: "ip*udp*int"},
		},
	}
	want := []string{
		"protocol state: int -> int*int",
		"+ receive admin(ip*udp*int)",
		"- receive legacy(ip*udp*int)",
		"+ send probe(ip*udp*unit) [flood]",
	}
	got := Diff(running, staged)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Diff = %v, want %v", got, want)
	}
	// Determinism: the sets behind the diff are maps; replays must not
	// reorder.
	for i := 0; i < 50; i++ {
		if again := Diff(running, staged); !reflect.DeepEqual(got, again) {
			t.Fatalf("replay %d reordered: %v vs %v", i, got, again)
		}
	}
}

// TestDiffSendFloodDistinct: the same send with and without flood is an
// interface change — OnNeighbor reaches every neighbor, OnRemote one.
func TestDiffSendFloodDistinct(t *testing.T) {
	mk := func(flood bool) *Signature {
		return &Signature{Channels: []ChannelSig{{
			Name: "network", Packet: "ip*udp*blob",
			Sends: []SendSig{{Channel: "network", Packet: "ip*udp*blob", Flood: flood}},
		}}}
	}
	want := []string{
		"+ send network(ip*udp*blob) [flood]",
		"- send network(ip*udp*blob)",
	}
	if got := Diff(mk(false), mk(true)); !reflect.DeepEqual(got, want) {
		t.Errorf("Diff = %v, want %v", got, want)
	}
}
