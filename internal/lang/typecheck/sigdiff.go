// Channel-signature diffs.
//
// CompatibleWith (signature.go) answers the yes/no question — can two
// versions coexist during a rollout window. Diff answers the operator's
// question next to it: *what does this upgrade change*, compatible or
// not. The fleet controller records the diff on every deployment so
// GET /deployments shows what each version shift added, dropped, or
// rewired before (and after) it shipped.

package typecheck

import (
	"fmt"
	"sort"
)

// Diff describes how the staged signature differs from the running one,
// as sorted human-readable lines. Receive entries cover channel
// definitions (what the program can accept); send entries cover the
// packets its bodies emit. An empty result means the external interface
// is textually unchanged (bodies may still differ).
func Diff(running, staged *Signature) []string {
	var out []string
	if running == nil && staged == nil {
		return nil
	}
	// A bare peer (no signature) gains or loses the whole interface.
	if running == nil {
		running = &Signature{}
	}
	if staged == nil {
		staged = &Signature{}
	}
	if running.ProtoState != staged.ProtoState {
		switch {
		case running.ProtoState == "":
			out = append(out, fmt.Sprintf("protocol state added: %s", staged.ProtoState))
		case staged.ProtoState == "":
			out = append(out, fmt.Sprintf("protocol state dropped (was %s)", running.ProtoState))
		default:
			out = append(out, fmt.Sprintf("protocol state: %s -> %s", running.ProtoState, staged.ProtoState))
		}
	}

	recvSet := func(sig *Signature) map[string]bool {
		m := map[string]bool{}
		for _, ch := range sig.Channels {
			m[ch.Name+"("+ch.Packet+")"] = true
		}
		return m
	}
	sendSet := func(sig *Signature) map[string]bool {
		m := map[string]bool{}
		for _, ch := range sig.Channels {
			for _, snd := range ch.Sends {
				key := snd.Channel + "(" + snd.Packet + ")"
				if snd.Flood {
					key += " [flood]"
				}
				m[key] = true
			}
		}
		return m
	}

	oldRecv, newRecv := recvSet(running), recvSet(staged)
	oldSend, newSend := sendSet(running), sendSet(staged)
	out = append(out, setDiff("receive", oldRecv, newRecv)...)
	out = append(out, setDiff("send", oldSend, newSend)...)
	return out
}

// setDiff renders the adds and removals between two keyed sets, sorted
// so the diff is deterministic.
func setDiff(kind string, old, new map[string]bool) []string {
	var added, removed []string
	for k := range new {
		if !old[k] {
			added = append(added, k)
		}
	}
	for k := range old {
		if !new[k] {
			removed = append(removed, k)
		}
	}
	sort.Strings(added)
	sort.Strings(removed)
	out := make([]string, 0, len(added)+len(removed))
	for _, k := range added {
		out = append(out, fmt.Sprintf("+ %s %s", kind, k))
	}
	for _, k := range removed {
		out = append(out, fmt.Sprintf("- %s %s", kind, k))
	}
	return out
}
