package typecheck_test

import (
	"strings"
	"testing"

	"planp.dev/planp/internal/lang/ast"
	"planp.dev/planp/internal/lang/parser"
	"planp.dev/planp/internal/lang/typecheck"
)

// wrap embeds an expression into a minimal channel so it checks in
// context; %s is the expression, typed as the channel-state type int.
func wrap(expr string) string {
	return `
channel network(ps : int, ss : int, p : ip*udp*blob) is
  (deliver(p); (ps, ` + expr + `))
`
}

func check(t *testing.T, src string) (*typecheck.Info, error) {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return typecheck.Check(prog)
}

func mustCheck(t *testing.T, src string) *typecheck.Info {
	t.Helper()
	info, err := check(t, src)
	if err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	return info
}

func mustFail(t *testing.T, src, wantSubstr string) {
	t.Helper()
	_, err := check(t, src)
	if err == nil {
		t.Fatalf("expected type error containing %q", wantSubstr)
	}
	if !strings.Contains(err.Error(), wantSubstr) {
		t.Fatalf("error %q does not mention %q", err, wantSubstr)
	}
}

func TestWellTypedExpressions(t *testing.T) {
	goods := []string{
		"1 + 2 * 3 mod 4",
		"if true then 1 else 2",
		"strLen(\"abc\" ^ \"def\")",
		"blobLen(#3 p)",
		"udpDst(#2 p)",
		"hostToInt(ipSrc(#1 p))",
		"(let val x : int = 3 in x + x end)",
		"try 1 / 0 handle 0 end",
		"abs(min(1, max(2, 3)))",
		"charPos('x')",
		"if ipSrc(#1 p) = ipDst(#1 p) then 1 else 0",
	}
	for _, g := range goods {
		if _, err := check(t, wrap(g)); err != nil {
			t.Errorf("%s: unexpected error %v", g, err)
		}
	}
}

func TestTypeErrors(t *testing.T) {
	cases := []struct{ expr, want string }{
		{`1 + true`, "int"},
		{`"a" + "b"`, "int"},
		{`1 ^ 2`, "string"},
		{`if 1 then 2 else 3`, "bool"},
		{`if true then 1 else "x"`, "different types"},
		{`not 3`, "bool"},
		{`#1 3`, "non-tuple"},
		{`#5 (1, 2)`, "out of range"},
		{`undefinedName`, "undefined"},
		{`undefinedFn(3)`, "undefined"},
		{`strLen(3)`, "strLen"},
		{`1 < true`, "same type"},
		{`"a" < 1`, "same type"},
		{`(1,2) < (1,2)`, "not defined"},
		{`try 1 handle "x" end`, "handler"},
		{`raise 42`, "string"},
	}
	for _, tc := range cases {
		mustFail(t, wrap(tc.expr), tc.want)
	}
}

func TestDeclarationErrors(t *testing.T) {
	cases := []struct{ src, want string }{
		{`val x : int = 1
val x : int = 2
channel network(ps : unit, ss : unit, p : ip*udp*blob) is (deliver(p); (ps, ss))`, "redeclares"},
		{`val strLen : int = 1
channel network(ps : unit, ss : unit, p : ip*udp*blob) is (deliver(p); (ps, ss))`, "shadows a primitive"},
		{`fun f(x : int) : int = f(x)
channel network(ps : unit, ss : unit, p : ip*udp*blob) is (deliver(p); (ps, ss))`, "undefined"},
		{`fun f(x : int) : bool = x
channel network(ps : unit, ss : unit, p : ip*udp*blob) is (deliver(p); (ps, ss))`, "return"},
		{`fun f(x : int, x : int) : int = x
channel network(ps : unit, ss : unit, p : ip*udp*blob) is (deliver(p); (ps, ss))`, "duplicate parameter"},
		{`val a : int = 1`, "no channels"},
		{`channel network(ps : int, ss : unit, p : ip*udp*blob) is (deliver(p); (ps, ss))
channel network(ps : bool, ss : unit, p : ip*tcp*blob) is (deliver(p); (ps, ss))`, "shared"},
		{`channel network(ps : int, ss : unit, p : ip*udp*blob) is (deliver(p); (ps, ss))
channel network(ps : int, ss : unit, p : ip*udp*blob) is (deliver(p); (ps, ss))`, "same packet type"},
		{`channel network(ps : int, ss : unit, p : blob) is (deliver(p); (ps, ss))`, "must be a tuple"},
		{`channel network(ps : int, ss : unit, p : ip*blob*int) is (deliver(p); (ps, ss))`, "final payload"},
		{`channel network(ps : int, ss : (int) hash_table, p : ip*udp*blob) is (deliver(p); (ps, ss))`, "initstate"},
		{`channel network(ps : int, ss : unit, p : ip*udp*blob) is (deliver(p); ps)`, "body has type"},
		{`fun network(x : int) : int = x
channel network(ps : int, ss : unit, p : ip*udp*blob) is (deliver(p); (ps, ss))`, "conflicts"},
	}
	for _, tc := range cases {
		mustFail(t, tc.src, tc.want)
	}
}

func TestFunsAreNotFirstClass(t *testing.T) {
	mustFail(t, `
fun f(x : int) : int = x
channel network(ps : int, ss : int, p : ip*udp*blob) is
  (deliver(p); (ps, f))
`, "not first-class")
}

func TestChannelsNotCallable(t *testing.T) {
	mustFail(t, `
channel other(ps : int, ss : int, p : ip*udp*blob) is (deliver(p); (ps, ss))
channel network(ps : int, ss : int, p : ip*udp*blob) is
  (deliver(p); (ps, other(ps, ss, p)))
`, "OnRemote")
}

func TestSendValidation(t *testing.T) {
	// OnRemote outside a channel body.
	mustFail(t, `
fun f(p : ip*udp*blob) : unit = OnRemote(network, p)
channel network(ps : int, ss : int, p : ip*udp*blob) is (deliver(p); (ps, ss))
`, "channel body")
	// Unknown channel.
	mustFail(t, wrap(`(OnRemote(nosuch, p); 1)`), "not a declared channel")
	// Wrong packet type.
	mustFail(t, `
channel network(ps : int, ss : int, p : ip*udp*blob) is
  (OnRemote(network, (#1 p, #3 p)); (ps, ss))
`, "matches no definition")
}

func TestForwardChannelReference(t *testing.T) {
	// A channel may send to a channel declared later (the MPEG monitor
	// forwards to the client channel).
	mustCheck(t, `
channel network(ps : int, ss : int, p : ip*udp*blob) is
  (OnRemote(later, p); (ps, ss))
channel later(ps : int, ss : int, p : ip*udp*blob) is
  (deliver(p); (ps, ss))
`)
}

func TestBidirectionalTableInference(t *testing.T) {
	info := mustCheck(t, `
channel network(ps : int, ss : (int*host) hash_table, p : ip*udp*blob)
initstate mkTable(32) is
  (tput(ss, udpSrc(#2 p), (1, ipSrc(#1 p)));
   deliver(p);
   (ps, ss))
`)
	ch := info.Channels[0]
	want := ast.Table{Elem: ast.Tuple{Elems: []ast.Type{ast.IntT, ast.HostT}}}
	if !ast.Equal(ch.Decl.ChanState(), want) {
		t.Errorf("channel state %s", ch.Decl.ChanState())
	}
	// mkTable without a table context cannot infer its element type.
	mustFail(t, wrap("(mkTable(3); 1)"), "infer")
}

func TestTableTypeRules(t *testing.T) {
	// A table cannot key a table (not an equality type); blobs can.
	mustFail(t, `
channel network(ps : int, ss : (int) hash_table, p : ip*udp*blob)
initstate mkTable(8) is
  (tput(ss, ss, 1); deliver(p); (ps, ss))
`, "not an equality type")
	mustCheck(t, `
channel network(ps : int, ss : (int) hash_table, p : ip*udp*blob)
initstate mkTable(8) is
  (tput(ss, #3 p, 1); deliver(p); (ps, ss))
`)
	mustFail(t, `
channel network(ps : int, ss : (int) hash_table, p : ip*udp*blob)
initstate mkTable(8) is
  (tput(ss, 1, "x"); deliver(p); (ps, ss))
`, "element type")
	mustFail(t, wrap(`(tget(3, 4); 1)`), "hash_table")
}

func TestSlotResolution(t *testing.T) {
	info := mustCheck(t, `
channel network(ps : int, ss : int, p : ip*udp*blob) is
  let
    val a : int = ps + 1
    val b : int = a + ss
  in
    (deliver(p); (b, a))
  end
`)
	ch := info.Channels[0]
	if ch.FrameSize < 5 {
		t.Errorf("frame size %d, want at least 5 (3 params + 2 lets)", ch.FrameSize)
	}
}

func TestGlobalResolution(t *testing.T) {
	info := mustCheck(t, `
val threshold : int = 80
val name : string = "x"
channel network(ps : int, ss : int, p : ip*udp*blob) is
  (deliver(p); (if ps > threshold then 0 else ps, ss))
`)
	if len(info.Globals) != 2 {
		t.Fatalf("globals = %d", len(info.Globals))
	}
	if info.Globals[0].Decl.Name != "threshold" || info.Globals[0].Index != 0 {
		t.Errorf("global 0 = %+v", info.Globals[0])
	}
}

func TestShadowing(t *testing.T) {
	// Inner let shadows outer binding; both resolve to distinct slots.
	mustCheck(t, `
channel network(ps : int, ss : int, p : ip*udp*blob) is
  let val x : int = 1
  in
    let val x : string = "s"
    in (deliver(p); (strLen(x), ss)) end
  end
`)
	// After the inner scope ends, the outer binding is visible again.
	mustCheck(t, `
channel network(ps : int, ss : int, p : ip*udp*blob) is
  let
    val x : int = 1
    val y : int = let val x : string = "s" in strLen(x) end
  in (deliver(p); (x + y, ss)) end
`)
}

func TestEqualityOnBlobAndHeaders(t *testing.T) {
	mustCheck(t, wrap(`(if #3 p = #3 p then 1 else 0)`))
	mustCheck(t, wrap(`(if #1 p = #1 p then 1 else 0)`))
	mustFail(t, `
channel network(ps : int, ss : (int) hash_table, p : ip*udp*blob)
initstate mkTable(2) is
  (deliver(p); (if ss = ss then 1 else 0, ss))
`, "compared")
}

func TestChannelsByName(t *testing.T) {
	info := mustCheck(t, `
channel network(ps : int, ss : int, p : ip*udp*blob) is (deliver(p); (ps, ss))
channel network(ps : int, ss : int, p : ip*tcp*blob) is (deliver(p); (ps, ss))
channel aux(ps : int, ss : int, p : ip*udp*char*int) is (deliver(p); (ps, ss))
`)
	if got := len(info.ChannelsByName("network")); got != 2 {
		t.Errorf("network overloads = %d", got)
	}
	if got := len(info.ChannelsByName("aux")); got != 1 {
		t.Errorf("aux channels = %d", got)
	}
	if got := len(info.ChannelsByName("nosuch")); got != 0 {
		t.Errorf("nosuch channels = %d", got)
	}
	if _, ok := info.FunByName("nosuch"); ok {
		t.Error("FunByName on missing name should report false")
	}
}

func TestValidatePacketType(t *testing.T) {
	goods := []ast.Type{
		ast.Tuple{Elems: []ast.Type{ast.IPT, ast.BlobT}},
		ast.Tuple{Elems: []ast.Type{ast.IPT, ast.TCPT, ast.BlobT}},
		ast.Tuple{Elems: []ast.Type{ast.IPT, ast.UDPT, ast.CharT, ast.IntT}},
		ast.Tuple{Elems: []ast.Type{ast.IPT, ast.UDPT, ast.StringT, ast.BoolT, ast.HostT, ast.BlobT}},
	}
	for _, g := range goods {
		if err := typecheck.ValidatePacketType(g); err != nil {
			t.Errorf("%s: %v", g, err)
		}
	}
	bads := []ast.Type{
		ast.IntT,
		ast.Tuple{Elems: []ast.Type{ast.TCPT, ast.BlobT}},
		ast.Tuple{Elems: []ast.Type{ast.IPT, ast.BlobT, ast.IntT}},
		ast.Tuple{Elems: []ast.Type{ast.IPT, ast.UDPT, ast.Table{Elem: ast.IntT}}},
		ast.Tuple{Elems: []ast.Type{ast.IPT, ast.UDPT, ast.UnitT}},
	}
	for _, b := range bads {
		if err := typecheck.ValidatePacketType(b); err == nil {
			t.Errorf("%s should be invalid", b)
		}
	}
}
