// Channel-interface signatures.
//
// A Signature is the external contract of a PLAN-P program: every
// channel it defines (the message shapes it can receive) and every send
// its bodies perform (the message shapes it emits, with their source
// spans). The constraint pass extracts it once checking succeeds, the
// runtime caches it alongside the compiled program, planpd serves it
// over HTTP, and the fleet controller compares a staged program's
// signature against the signatures running on peer nodes before
// allowing a rollout (PLAN-P channels are first-order, so send/receive
// compatibility is a finite check over packet types).
//
// Packet and state types are recorded as their canonical rendering
// (ast.Type.String), which is injective over the PLAN-P type grammar;
// signatures therefore compare — and serialize — as plain strings.

package typecheck

import (
	"fmt"

	"planp.dev/planp/internal/lang/ast"
	"planp.dev/planp/internal/lang/diag"
	"planp.dev/planp/internal/lang/token"
)

// Signature is a program's channel interface.
type Signature struct {
	// ProtoState is the shared protocol-state type.
	ProtoState string `json:"proto_state"`
	// Channels lists every channel definition (one entry per overload)
	// in declaration order.
	Channels []ChannelSig `json:"channels"`
}

// ChannelSig describes one channel definition: what it receives and
// what its body sends.
type ChannelSig struct {
	Name   string `json:"name"`
	Packet string `json:"packet"`
	// Pos..End spans the channel header (the declared interface).
	Pos token.Pos `json:"pos"`
	End token.Pos `json:"end,omitzero"`
	// MaxSendsPerPath is the maximum number of sends on any execution
	// path of the body, saturated at 2 (OnNeighbor counts as 2). The
	// verifier's duplication analysis consumes it.
	MaxSendsPerPath int       `json:"max_sends_per_path"`
	Sends           []SendSig `json:"sends,omitempty"`
}

// SendSig is one OnRemote/OnNeighbor call in a channel body.
type SendSig struct {
	Channel string `json:"channel"`
	Packet  string `json:"packet"`
	// Flood marks OnNeighbor sends (transmitted to every neighbor).
	Flood bool `json:"flood,omitempty"`
	// Pos..End spans the send call in the source.
	Pos token.Pos `json:"pos"`
	End token.Pos `json:"end,omitzero"`
}

// ChannelsNamed returns the signatures of every overload of name, in
// declaration order.
func (s *Signature) ChannelsNamed(name string) []ChannelSig {
	var out []ChannelSig
	for _, ch := range s.Channels {
		if ch.Name == name {
			out = append(out, ch)
		}
	}
	return out
}

// ExtractSignature derives the channel-interface signature from checked
// info. Check calls it automatically (Info.Sig); it is exported for
// callers holding an Info built elsewhere.
func ExtractSignature(info *Info) *Signature {
	sig := &Signature{Channels: make([]ChannelSig, 0, len(info.Channels))}
	if info.ProtoState != nil {
		sig.ProtoState = info.ProtoState.String()
	}
	for i := range info.Channels {
		d := info.Channels[i].Decl
		cs := ChannelSig{
			Name:            d.Name,
			Packet:          d.PacketType().String(),
			Pos:             d.At,
			End:             d.HeaderEnd,
			MaxSendsPerPath: maxSendsPerPath(d.Body),
		}
		walkExpr(d.Body, func(e ast.Expr) {
			call, ok := e.(*ast.Call)
			if !ok || !sendPrims[call.Name] {
				return
			}
			cref, ok := call.Args[0].(*ast.ChanRef)
			if !ok {
				return
			}
			var pkt string
			if call.SendPacket != nil {
				pkt = call.SendPacket.String()
			}
			cs.Sends = append(cs.Sends, SendSig{
				Channel: cref.Name,
				Packet:  pkt,
				Flood:   call.Name == "OnNeighbor",
				Pos:     call.At,
				End:     call.End(),
			})
		})
		sig.Channels = append(sig.Channels, cs)
	}
	return sig
}

// CompatibleWith checks the staged signature s against the signature
// running on a peer node, in both directions:
//
//   - every send the running peer performs must have a matching channel
//     definition in the staged program (otherwise activating s would
//     make the peer's in-flight packets undeliverable) — reported at
//     the staged channel's header, or without a span if the staged
//     program dropped the channel entirely;
//
//   - every send the staged program performs must have a matching
//     definition on the running peer (otherwise the new program emits
//     packets the peer cannot dispatch) — reported at the send site.
//
// All diagnostics are anchored in the staged program's source. A nil
// return means the two programs can coexist during a rollout.
func (s *Signature) CompatibleWith(running *Signature) diag.List {
	var diags diag.List
	recvOf := func(sig *Signature) map[string]map[string]bool {
		m := map[string]map[string]bool{}
		for _, ch := range sig.Channels {
			if m[ch.Name] == nil {
				m[ch.Name] = map[string]bool{}
			}
			m[ch.Name][ch.Packet] = true
		}
		return m
	}
	stagedRecv, runningRecv := recvOf(s), recvOf(running)

	// Anchor for dropped-variant reports: the first staged overload of
	// the channel the peer still targets.
	header := map[string]ChannelSig{}
	for _, ch := range s.Channels {
		if _, ok := header[ch.Name]; !ok {
			header[ch.Name] = ch
		}
	}

	seen := map[string]bool{}
	for _, ch := range running.Channels {
		for _, snd := range ch.Sends {
			if stagedRecv[snd.Channel][snd.Packet] {
				continue
			}
			key := "recv\x00" + snd.Channel + "\x00" + snd.Packet
			if seen[key] {
				continue
			}
			seen[key] = true
			if hdr, ok := header[snd.Channel]; ok {
				diags = append(diags, diag.Diagnostic{Pos: hdr.Pos, End: hdr.End,
					Msg: fmt.Sprintf("channel %s: a running peer still sends packet %s (from channel %s), which no staged definition of %s receives",
						snd.Channel, snd.Packet, ch.Name, snd.Channel)})
			} else {
				diags = append(diags, diag.Diagnostic{
					Msg: fmt.Sprintf("staged program drops channel %s, but a running peer still sends %s to it (from channel %s)",
						snd.Channel, snd.Packet, ch.Name)})
			}
		}
	}

	for _, ch := range s.Channels {
		for _, snd := range ch.Sends {
			if runningRecv[snd.Channel][snd.Packet] {
				continue
			}
			key := "send\x00" + snd.Channel + "\x00" + snd.Packet
			if seen[key] {
				continue
			}
			seen[key] = true
			diags = append(diags, diag.Diagnostic{Pos: snd.Pos, End: snd.End,
				Msg: fmt.Sprintf("channel %s: send of packet %s matches no definition of channel %s on the running peer",
					ch.Name, snd.Packet, snd.Channel)})
		}
	}
	return diags
}

// walkExpr visits every node of an expression tree.
func walkExpr(e ast.Expr, visit func(ast.Expr)) {
	visit(e)
	switch e := e.(type) {
	case *ast.Proj:
		walkExpr(e.Tuple, visit)
	case *ast.Call:
		for _, a := range e.Args {
			walkExpr(a, visit)
		}
	case *ast.Let:
		for _, b := range e.Binds {
			walkExpr(b.Init, visit)
		}
		walkExpr(e.Body, visit)
	case *ast.If:
		walkExpr(e.Cond, visit)
		walkExpr(e.Then, visit)
		walkExpr(e.Else, visit)
	case *ast.Seq:
		for _, sub := range e.Exprs {
			walkExpr(sub, visit)
		}
	case *ast.TupleExpr:
		for _, sub := range e.Elems {
			walkExpr(sub, visit)
		}
	case *ast.Unary:
		walkExpr(e.X, visit)
	case *ast.Binary:
		walkExpr(e.L, visit)
		walkExpr(e.R, visit)
	case *ast.Try:
		walkExpr(e.Body, visit)
		walkExpr(e.Handler, visit)
	case *ast.Raise:
		walkExpr(e.Msg, visit)
	}
}

// maxSendsPerPath computes the maximum number of OnRemote/OnNeighbor
// calls on any single execution path, saturating at 2. OnNeighbor counts
// as 2 because it transmits to every neighbor.
func maxSendsPerPath(e ast.Expr) int {
	sat := func(n int) int {
		if n > 2 {
			return 2
		}
		return n
	}
	switch e := e.(type) {
	case *ast.Call:
		n := 0
		if e.Name == "OnRemote" {
			n = 1
		} else if e.Name == "OnNeighbor" {
			n = 2
		}
		for _, a := range e.Args {
			n += maxSendsPerPath(a)
		}
		return sat(n)
	case *ast.Proj:
		return maxSendsPerPath(e.Tuple)
	case *ast.Let:
		n := 0
		for _, b := range e.Binds {
			n += maxSendsPerPath(b.Init)
		}
		return sat(n + maxSendsPerPath(e.Body))
	case *ast.If:
		branch := maxSendsPerPath(e.Then)
		if el := maxSendsPerPath(e.Else); el > branch {
			branch = el
		}
		return sat(maxSendsPerPath(e.Cond) + branch)
	case *ast.Seq:
		n := 0
		for _, sub := range e.Exprs {
			n += maxSendsPerPath(sub)
		}
		return sat(n)
	case *ast.TupleExpr:
		n := 0
		for _, sub := range e.Elems {
			n += maxSendsPerPath(sub)
		}
		return sat(n)
	case *ast.Unary:
		return maxSendsPerPath(e.X)
	case *ast.Binary:
		return sat(maxSendsPerPath(e.L) + maxSendsPerPath(e.R))
	case *ast.Try:
		// Body sends may occur before the exception, then the handler
		// sends again: worst case is their sum.
		return sat(maxSendsPerPath(e.Body) + maxSendsPerPath(e.Handler))
	default:
		return 0
	}
}
