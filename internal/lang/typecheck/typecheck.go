// Package typecheck implements the PLAN-P static checker.
//
// Beyond classic monomorphic type checking it performs the structural
// duties the engines rely on: resolving every variable to a frame slot or
// global index, resolving calls to primitive or user-function indices,
// validating packet-type signatures for channel dispatch, and enforcing
// the language restrictions that give PLAN-P its safety properties —
// no recursion, no loops, channels as the only packet-sending context,
// and one shared protocol-state type across all channels (§2, §2.1).
//
// The checker is bidirectional in a limited way: an expected type is
// pushed down through let bindings, if branches, sequence tails, and call
// arguments, which is what lets mkTable(256) and listNew() determine
// their element types exactly as in the paper's listings.
package typecheck

import (
	"fmt"
	"strings"

	"planp.dev/planp/internal/lang/ast"
	"planp.dev/planp/internal/lang/diag"
	"planp.dev/planp/internal/lang/prims"
	"planp.dev/planp/internal/lang/token"
)

// Error is the checker's report: every independent type error found in
// one run, each with its source span. Callers that only care about the
// first failure can use First; callers that render reports extract the
// full list through Diagnostics (or diag.Of on a wrapped chain).
type Error struct {
	Diags diag.List
}

// Error renders every diagnostic, one "line:col: type error: msg" per line.
func (e *Error) Error() string {
	parts := make([]string, len(e.Diags))
	for i, d := range e.Diags {
		parts[i] = fmt.Sprintf("%s: type error: %s", d.Pos, d.Msg)
	}
	return strings.Join(parts, "\n")
}

// Diagnostics implements diag.Provider.
func (e *Error) Diagnostics() diag.List { return e.Diags }

// First returns the first diagnostic (the one a pre-multi-error caller
// would have seen).
func (e *Error) First() diag.Diagnostic {
	if len(e.Diags) == 0 {
		return diag.Diagnostic{}
	}
	return e.Diags[0]
}

// Fun is a checked user function.
type Fun struct {
	Decl      *ast.FunDecl
	Index     int // position in Info.Funs
	FrameSize int // number of local slots (params + lets)
}

// Channel is a checked channel definition.
type Channel struct {
	Decl      *ast.ChannelDecl
	Index     int // position in Info.Channels
	FrameSize int
}

// Global is a checked top-level val binding.
type Global struct {
	Decl      *ast.ValDecl
	Index     int
	FrameSize int // scratch slots needed to evaluate the initializer
}

// Info is the result of checking a program: the typed program plus the
// resolution tables used by every engine and by the verifier.
type Info struct {
	Prog     *ast.Program
	Globals  []Global
	Funs     []Fun
	Channels []Channel

	// ProtoState is the protocol-state type shared by all channels.
	ProtoState ast.Type

	// Sig is the program's channel-interface signature, extracted by the
	// constraint pass once checking succeeds (see signature.go). It is
	// the artifact the runtime caches and the fleet compatibility gate
	// exchanges between nodes.
	Sig *Signature

	globalIdx map[string]int
	funIdx    map[string]int
	// chanIdx maps a channel name to the indices of its (possibly
	// overloaded) definitions, in declaration order.
	chanIdx map[string][]int
}

// FunByName returns the checked function with the given name.
func (in *Info) FunByName(name string) (*Fun, bool) {
	i, ok := in.funIdx[name]
	if !ok {
		return nil, false
	}
	return &in.Funs[i], true
}

// ChannelsByName returns all checked channels sharing name, in
// declaration order (overloaded channels, §2.3).
func (in *Info) ChannelsByName(name string) []*Channel {
	idxs := in.chanIdx[name]
	out := make([]*Channel, len(idxs))
	for i, ix := range idxs {
		out[i] = &in.Channels[ix]
	}
	return out
}

// checker carries the state of one Check run.
type checker struct {
	info *Info

	// diags accumulates every independent error across the staged
	// passes; checking continues past a failed declaration so one run
	// reports as much as possible.
	diags diag.List

	// Current declaration context.
	scope     *scope
	nextSlot  int
	frameMax  int
	inChannel bool // OnRemote/OnNeighbor only legal inside channel bodies
}

// report records a declaration-level failure and lets checking continue
// with the next declaration.
func (c *checker) report(err error) {
	if err == nil {
		return
	}
	if ds := diag.Of(err); ds != nil {
		c.diags = append(c.diags, ds...)
		return
	}
	c.diags = append(c.diags, diag.Diagnostic{Msg: err.Error()})
}

type scope struct {
	parent *scope
	names  map[string]binding
}

type binding struct {
	slot int
	typ  ast.Type
}

func (c *checker) push() { c.scope = &scope{parent: c.scope, names: map[string]binding{}} }
func (c *checker) pop()  { c.scope = c.scope.parent }

func (c *checker) bind(name string, t ast.Type) int {
	slot := c.nextSlot
	c.nextSlot++
	if c.nextSlot > c.frameMax {
		c.frameMax = c.nextSlot
	}
	c.scope.names[name] = binding{slot: slot, typ: t}
	return slot
}

func (c *checker) lookup(name string) (binding, bool) {
	for s := c.scope; s != nil; s = s.parent {
		if b, ok := s.names[name]; ok {
			return b, true
		}
	}
	return binding{}, false
}

func errf(pos token.Pos, format string, args ...any) error {
	return &Error{Diags: diag.List{{Pos: pos, Msg: fmt.Sprintf(format, args...)}}}
}

// errSpan is errf carrying a full source span (pos up to, not
// including, end).
func errSpan(pos, end token.Pos, format string, args ...any) error {
	return &Error{Diags: diag.List{{Pos: pos, End: end, Msg: fmt.Sprintf(format, args...)}}}
}

// Check type-checks a parsed program and returns the resolution info.
// The input AST is annotated in place (slots, indices, operand types).
//
// Checking runs in three staged passes:
//
//  1. Declarations — every channel header is registered (packet type
//     validated, overloads deduplicated, the shared protocol-state type
//     unified) so bodies can send to any channel, including the one
//     being defined (OnRemote is a recursive call on a remote machine,
//     §2.1) and channels declared later (the MPEG monitor forwards to
//     the client channel).
//
//  2. Inference — declarations are checked in order (vals and funs may
//     only reference names declared before them: no recursion — local
//     termination by construction). A failed declaration no longer
//     aborts the run: its error is recorded, its name stays bound at
//     the declared type to suppress cascading "undefined name" noise,
//     and checking proceeds with the next declaration.
//
//  3. Constraints — whole-program requirements (at least one channel)
//     and, on success, extraction of the channel-interface Signature.
//
// On failure the returned error is an *Error carrying every diagnostic
// found, in source order.
func Check(prog *ast.Program) (*Info, error) {
	info := &Info{
		Prog:      prog,
		globalIdx: map[string]int{},
		funIdx:    map[string]int{},
		chanIdx:   map[string][]int{},
	}
	c := &checker{info: info}

	// Pass 1: declarations.
	for _, d := range prog.Decls {
		if ch, ok := d.(*ast.ChannelDecl); ok {
			c.report(c.registerChannel(ch))
		}
	}

	// Pass 2: inference.
	for _, d := range prog.Decls {
		switch d := d.(type) {
		case *ast.ValDecl:
			c.report(c.checkValDecl(d))
		case *ast.FunDecl:
			c.report(c.checkFunDecl(d))
		case *ast.ChannelDecl:
			c.report(c.checkChannelDecl(d))
		default:
			c.report(errf(d.DeclPos(), "unknown declaration kind"))
		}
	}

	// Pass 3: constraints.
	if len(info.Channels) == 0 && len(c.diags) == 0 {
		c.report(errf(prog.Decls[0].DeclPos(), "program defines no channels"))
	}
	if len(c.diags) > 0 {
		return nil, &Error{Diags: c.diags}
	}
	info.Sig = ExtractSignature(info)
	return info, nil
}

func (c *checker) declared(name string, pos token.Pos) error {
	if _, ok := c.info.globalIdx[name]; ok {
		return errf(pos, "%s redeclares a top-level val", name)
	}
	if _, ok := c.info.funIdx[name]; ok {
		return errf(pos, "%s redeclares a fun", name)
	}
	if prims.Lookup(name) >= 0 {
		return errf(pos, "%s shadows a primitive", name)
	}
	if len(c.info.chanIdx[name]) > 0 {
		return errf(pos, "%s conflicts with a channel of the same name", name)
	}
	return nil
}

func (c *checker) checkValDecl(d *ast.ValDecl) error {
	if err := c.declared(d.Name, d.At); err != nil {
		return err
	}
	c.resetFrame()
	got, err := c.checkExpr(d.Init, d.Type)
	if err == nil && !ast.Equal(got, d.Type) {
		err = errSpan(d.Init.Pos(), d.Init.End(), "val %s declared %s but initializer has type %s", d.Name, d.Type, got)
	}
	// Register the name even when the initializer failed: the declared
	// type is still trustworthy, and keeping the binding suppresses
	// cascading "undefined name" errors in later declarations.
	c.info.globalIdx[d.Name] = len(c.info.Globals)
	c.info.Globals = append(c.info.Globals, Global{Decl: d, Index: len(c.info.Globals), FrameSize: c.frameMax})
	return err
}

func (c *checker) checkFunDecl(d *ast.FunDecl) error {
	if err := c.declared(d.Name, d.At); err != nil {
		return err
	}
	if _, ok := c.info.chanIdx[d.Name]; ok {
		return errf(d.At, "fun %s conflicts with a channel of the same name", d.Name)
	}
	c.resetFrame()
	c.push()
	seen := map[string]bool{}
	for _, p := range d.Params {
		if seen[p.Name] {
			c.pop()
			return errf(d.At, "fun %s: duplicate parameter %s", d.Name, p.Name)
		}
		seen[p.Name] = true
		c.bind(p.Name, p.Type)
	}
	got, err := c.checkExpr(d.Body, d.Ret)
	c.pop()
	if err == nil && !ast.Equal(got, d.Ret) {
		err = errSpan(d.Body.Pos(), d.Body.End(), "fun %s declared to return %s but body has type %s", d.Name, d.Ret, got)
	}
	// As with vals, a failed body does not unbind the fun: callers are
	// checked against the declared signature.
	idx := len(c.info.Funs)
	c.info.funIdx[d.Name] = idx
	c.info.Funs = append(c.info.Funs, Fun{Decl: d, Index: idx, FrameSize: c.frameMax})
	return err
}

// registerChannel records a channel's signature (pass 1) so sends can
// resolve it before its body is checked.
func (c *checker) registerChannel(d *ast.ChannelDecl) error {
	if prims.Lookup(d.Name) >= 0 {
		return errf(d.At, "channel %s shadows a primitive", d.Name)
	}
	pktType := d.PacketType()
	if err := ValidatePacketType(pktType); err != nil {
		return errSpan(d.At, d.HeaderEnd, "channel %s: %v", d.Name, err)
	}
	// Overloads of the same channel name must have distinct packet types
	// (otherwise dispatch is ambiguous).
	for _, prev := range c.info.chanIdx[d.Name] {
		if ast.Equal(c.info.Channels[prev].Decl.PacketType(), pktType) {
			return errSpan(d.At, d.HeaderEnd, "channel %s redefined with the same packet type %s", d.Name, pktType)
		}
	}
	// The protocol state is shared between all channels (§2): every
	// channel must declare the identical protocol-state type.
	if c.info.ProtoState == nil {
		c.info.ProtoState = d.ProtoState()
	} else if !ast.Equal(c.info.ProtoState, d.ProtoState()) {
		return errSpan(d.At, d.HeaderEnd, "channel %s declares protocol state %s but earlier channels declared %s (the protocol state is shared)",
			d.Name, d.ProtoState(), c.info.ProtoState)
	}
	idx := len(c.info.Channels)
	c.info.chanIdx[d.Name] = append(c.info.chanIdx[d.Name], idx)
	c.info.Channels = append(c.info.Channels, Channel{Decl: d, Index: idx})
	return nil
}

func (c *checker) checkChannelDecl(d *ast.ChannelDecl) error {
	if _, ok := c.info.funIdx[d.Name]; ok {
		return errf(d.At, "channel %s conflicts with a fun of the same name", d.Name)
	}
	c.resetFrame()
	c.push()
	seen := map[string]bool{}
	for _, p := range d.Params {
		if seen[p.Name] {
			c.pop()
			return errf(d.At, "channel %s: duplicate parameter %s", d.Name, p.Name)
		}
		seen[p.Name] = true
		c.bind(p.Name, p.Type)
	}

	// initstate is evaluated outside the channel frame, but it may use
	// globals; it must produce the channel-state type.
	if d.InitState != nil {
		save := c.scope
		c.scope = nil
		got, err := c.checkExpr(d.InitState, d.ChanState())
		c.scope = save
		if err != nil {
			return err
		}
		if !ast.Equal(got, d.ChanState()) {
			c.pop()
			return errf(d.At, "channel %s: initstate has type %s, want channel state type %s", d.Name, got, d.ChanState())
		}
	} else if _, isTable := d.ChanState().(ast.Table); isTable {
		c.pop()
		return errf(d.At, "channel %s: hash_table channel state requires an initstate clause", d.Name)
	}

	want := ast.Tuple{Elems: []ast.Type{d.ProtoState(), d.ChanState()}}
	c.inChannel = true
	got, err := c.checkExpr(d.Body, want)
	c.inChannel = false
	c.pop()
	if err != nil {
		return err
	}
	if !ast.Equal(got, want) {
		return errSpan(d.At, d.HeaderEnd, "channel %s: body has type %s, want %s (new protocol state, new channel state)", d.Name, got, want)
	}
	// Fill in the frame size on the entry registered in pass 1.
	for i := range c.info.Channels {
		if c.info.Channels[i].Decl == d {
			c.info.Channels[i].FrameSize = c.frameMax
			break
		}
	}
	return nil
}

func (c *checker) resetFrame() {
	c.scope = nil
	c.nextSlot = 0
	c.frameMax = 0
}

// ValidatePacketType checks that t is a legal channel packet type: a
// tuple beginning with an ip header, optionally followed by a tcp or udp
// header, followed by payload components — scalars decodable from bytes,
// with blob allowed only in the final position (it absorbs the rest of
// the payload).
func ValidatePacketType(t ast.Type) error {
	tup, ok := t.(ast.Tuple)
	if !ok {
		return fmt.Errorf("packet type must be a tuple starting with ip, got %s", t)
	}
	if !ast.Equal(tup.Elems[0], ast.IPT) {
		return fmt.Errorf("packet type must start with ip, got %s", t)
	}
	rest := tup.Elems[1:]
	if len(rest) > 0 && (ast.Equal(rest[0], ast.TCPT) || ast.Equal(rest[0], ast.UDPT)) {
		rest = rest[1:]
	}
	for i, e := range rest {
		switch e := e.(type) {
		case ast.Base:
			switch e.Kind {
			case ast.TBlob:
				if i != len(rest)-1 {
					return fmt.Errorf("blob may only appear as the final payload component in %s", t)
				}
			case ast.TChar, ast.TInt, ast.TBool, ast.THost, ast.TString:
				// decodable scalar
			default:
				return fmt.Errorf("%s is not a decodable payload component in packet type %s", e, t)
			}
		default:
			return fmt.Errorf("%s is not a decodable payload component in packet type %s", e, t)
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Expressions

// checkExpr type-checks e, with expected as the (possibly nil) type
// required by context, and returns e's type.
func (c *checker) checkExpr(e ast.Expr, expected ast.Type) (ast.Type, error) {
	switch e := e.(type) {
	case *ast.IntLit:
		return ast.IntT, nil
	case *ast.BoolLit:
		return ast.BoolT, nil
	case *ast.StringLit:
		return ast.StringT, nil
	case *ast.CharLit:
		return ast.CharT, nil
	case *ast.UnitLit:
		return ast.UnitT, nil
	case *ast.HostLit:
		return ast.HostT, nil

	case *ast.Var:
		if b, ok := c.lookup(e.Name); ok {
			e.Slot, e.Global = b.slot, -1
			return b.typ, nil
		}
		if gi, ok := c.info.globalIdx[e.Name]; ok {
			e.Slot, e.Global = -1, gi
			return c.info.Globals[gi].Decl.Type, nil
		}
		if _, ok := c.info.funIdx[e.Name]; ok {
			return nil, errf(e.At, "%s is a fun; funs are not first-class values", e.Name)
		}
		if len(c.info.chanIdx[e.Name]) > 0 {
			return nil, errf(e.At, "%s is a channel; channels may only appear as the first argument of OnRemote/OnNeighbor", e.Name)
		}
		return nil, errSpan(e.At, e.End(), "undefined name %s", e.Name)

	case *ast.Proj:
		tt, err := c.checkExpr(e.Tuple, nil)
		if err != nil {
			return nil, err
		}
		tup, ok := tt.(ast.Tuple)
		if !ok {
			return nil, errf(e.At, "#%d applied to non-tuple type %s", e.Index, tt)
		}
		if e.Index > len(tup.Elems) {
			return nil, errf(e.At, "#%d out of range for %d-tuple %s", e.Index, len(tup.Elems), tup)
		}
		return tup.Elems[e.Index-1], nil

	case *ast.Let:
		c.push()
		defer c.pop()
		for i := range e.Binds {
			b := &e.Binds[i]
			got, err := c.checkExpr(b.Init, b.Type)
			if err != nil {
				return nil, err
			}
			if !ast.Equal(got, b.Type) {
				return nil, errSpan(b.Init.Pos(), b.Init.End(), "val %s declared %s but initializer has type %s", b.Name, b.Type, got)
			}
			b.Slot = c.bind(b.Name, b.Type)
		}
		return c.checkExpr(e.Body, expected)

	case *ast.If:
		ct, err := c.checkExpr(e.Cond, ast.BoolT)
		if err != nil {
			return nil, err
		}
		if !ast.Equal(ct, ast.BoolT) {
			return nil, errf(e.At, "if condition has type %s, want bool", ct)
		}
		tt, err := c.checkExpr(e.Then, expected)
		if err != nil {
			return nil, err
		}
		et, err := c.checkExpr(e.Else, tt)
		if err != nil {
			return nil, err
		}
		if !ast.Equal(tt, et) {
			return nil, errf(e.At, "if branches have different types: %s vs %s", tt, et)
		}
		return tt, nil

	case *ast.Seq:
		for i, sub := range e.Exprs[:len(e.Exprs)-1] {
			if _, err := c.checkExpr(sub, nil); err != nil {
				return nil, err
			}
			_ = i
		}
		return c.checkExpr(e.Exprs[len(e.Exprs)-1], expected)

	case *ast.TupleExpr:
		var expectedElems []ast.Type
		if tup, ok := expected.(ast.Tuple); ok && len(tup.Elems) == len(e.Elems) {
			expectedElems = tup.Elems
		}
		elems := make([]ast.Type, len(e.Elems))
		for i, sub := range e.Elems {
			var exp ast.Type
			if expectedElems != nil {
				exp = expectedElems[i]
			}
			t, err := c.checkExpr(sub, exp)
			if err != nil {
				return nil, err
			}
			elems[i] = t
		}
		return ast.Tuple{Elems: elems}, nil

	case *ast.Unary:
		xt, err := c.checkExpr(e.X, nil)
		if err != nil {
			return nil, err
		}
		switch e.Op {
		case "not":
			if !ast.Equal(xt, ast.BoolT) {
				return nil, errf(e.At, "not applied to %s, want bool", xt)
			}
			return ast.BoolT, nil
		case "-":
			if !ast.Equal(xt, ast.IntT) {
				return nil, errf(e.At, "unary - applied to %s, want int", xt)
			}
			return ast.IntT, nil
		default:
			return nil, errf(e.At, "unknown unary operator %s", e.Op)
		}

	case *ast.Binary:
		return c.checkBinary(e)

	case *ast.Try:
		bt, err := c.checkExpr(e.Body, expected)
		if err != nil {
			return nil, err
		}
		ht, err := c.checkExpr(e.Handler, bt)
		if err != nil {
			return nil, err
		}
		if !ast.Equal(bt, ht) {
			return nil, errf(e.At, "try body has type %s but handler has type %s", bt, ht)
		}
		return bt, nil

	case *ast.Raise:
		mt, err := c.checkExpr(e.Msg, ast.StringT)
		if err != nil {
			return nil, err
		}
		if !ast.Equal(mt, ast.StringT) {
			return nil, errf(e.At, "raise takes a string message, got %s", mt)
		}
		if expected != nil {
			return expected, nil
		}
		return ast.UnitT, nil

	case *ast.Call:
		return c.checkCall(e, expected)

	case *ast.ChanRef:
		return nil, errf(e.At, "channel reference %s outside OnRemote/OnNeighbor", e.Name)

	default:
		return nil, errf(e.Pos(), "unhandled expression kind %T", e)
	}
}

func (c *checker) checkBinary(e *ast.Binary) (ast.Type, error) {
	switch e.Op {
	case "andalso", "orelse":
		lt, err := c.checkExpr(e.L, ast.BoolT)
		if err != nil {
			return nil, err
		}
		rt, err := c.checkExpr(e.R, ast.BoolT)
		if err != nil {
			return nil, err
		}
		if !ast.Equal(lt, ast.BoolT) || !ast.Equal(rt, ast.BoolT) {
			return nil, errSpan(e.At, e.End(), "%s requires bool operands, got %s and %s", e.Op, lt, rt)
		}
		return ast.BoolT, nil

	case "+", "-", "*", "/", "mod":
		lt, err := c.checkExpr(e.L, ast.IntT)
		if err != nil {
			return nil, err
		}
		rt, err := c.checkExpr(e.R, ast.IntT)
		if err != nil {
			return nil, err
		}
		if !ast.Equal(lt, ast.IntT) || !ast.Equal(rt, ast.IntT) {
			return nil, errSpan(e.At, e.End(), "%s requires int operands, got %s and %s", e.Op, lt, rt)
		}
		return ast.IntT, nil

	case "^":
		lt, err := c.checkExpr(e.L, ast.StringT)
		if err != nil {
			return nil, err
		}
		rt, err := c.checkExpr(e.R, ast.StringT)
		if err != nil {
			return nil, err
		}
		if !ast.Equal(lt, ast.StringT) || !ast.Equal(rt, ast.StringT) {
			return nil, errSpan(e.At, e.End(), "^ requires string operands, got %s and %s", lt, rt)
		}
		return ast.StringT, nil

	case "<", "<=", ">", ">=":
		lt, err := c.checkExpr(e.L, nil)
		if err != nil {
			return nil, err
		}
		rt, err := c.checkExpr(e.R, lt)
		if err != nil {
			return nil, err
		}
		if !ast.Equal(lt, rt) {
			return nil, errSpan(e.At, e.End(), "%s requires operands of the same type, got %s and %s", e.Op, lt, rt)
		}
		if !ast.Equal(lt, ast.IntT) && !ast.Equal(lt, ast.StringT) && !ast.Equal(lt, ast.CharT) {
			return nil, errSpan(e.At, e.End(), "%s is not defined on %s", e.Op, lt)
		}
		e.OperandType = lt
		return ast.BoolT, nil

	case "=", "<>":
		lt, err := c.checkExpr(e.L, nil)
		if err != nil {
			return nil, err
		}
		rt, err := c.checkExpr(e.R, lt)
		if err != nil {
			return nil, err
		}
		if !ast.Equal(lt, rt) {
			return nil, errSpan(e.At, e.End(), "%s compares operands of different types: %s vs %s", e.Op, lt, rt)
		}
		if !ast.IsEquality(lt) {
			if _, isTable := lt.(ast.Table); isTable {
				return nil, errSpan(e.At, e.End(), "hash tables cannot be compared with %s", e.Op)
			}
		}
		e.OperandType = lt
		return ast.BoolT, nil

	default:
		return nil, errf(e.At, "unknown operator %s", e.Op)
	}
}

// sendPrims are the network-effecting pseudo-primitives handled directly
// by the checker and the engines.
var sendPrims = map[string]bool{"OnRemote": true, "OnNeighbor": true}

func (c *checker) checkCall(e *ast.Call, expected ast.Type) (ast.Type, error) {
	if sendPrims[e.Name] {
		return c.checkSend(e)
	}

	// User function?
	if fi, ok := c.info.funIdx[e.Name]; ok {
		f := c.info.Funs[fi]
		if len(e.Args) != len(f.Decl.Params) {
			return nil, errf(e.At, "%s expects %d argument(s), got %d", e.Name, len(f.Decl.Params), len(e.Args))
		}
		for i, arg := range e.Args {
			want := f.Decl.Params[i].Type
			got, err := c.checkExpr(arg, want)
			if err != nil {
				return nil, err
			}
			if !ast.Equal(got, want) {
				return nil, errf(e.At, "%s argument %d: expected %s, got %s", e.Name, i+1, want, got)
			}
		}
		e.FunIndex, e.PrimIndex = fi, -1
		return f.Decl.Ret, nil
	}

	// Primitive?
	pi := prims.Lookup(e.Name)
	if pi < 0 {
		if len(c.info.chanIdx[e.Name]) > 0 {
			return nil, errf(e.At, "channel %s cannot be called directly; use OnRemote(%s, pkt)", e.Name, e.Name)
		}
		return nil, errf(e.At, "undefined function %s", e.Name)
	}
	p := prims.Get(pi)
	argTypes := make([]ast.Type, len(e.Args))
	for i, arg := range e.Args {
		var want ast.Type
		if p.TypeFn == nil && i < len(p.Params) {
			want = p.Params[i]
		}
		got, err := c.checkExpr(arg, want)
		if err != nil {
			return nil, err
		}
		argTypes[i] = got
	}
	ret, err := prims.TypeOf(pi, argTypes, expected)
	if err != nil {
		return nil, errf(e.At, "%v", err)
	}
	e.PrimIndex, e.FunIndex = pi, -1
	return ret, nil
}

// checkSend validates OnRemote(chan, pkt) / OnNeighbor(chan, pkt): the
// first argument must name a channel and the packet expression's type
// must match the packet type of (one of) the channel's definitions.
func (c *checker) checkSend(e *ast.Call) (ast.Type, error) {
	if !c.inChannel {
		return nil, errf(e.At, "%s may only be used inside a channel body", e.Name)
	}
	if len(e.Args) != 2 {
		return nil, errf(e.At, "%s expects (channel, packet)", e.Name)
	}
	v, ok := e.Args[0].(*ast.Var)
	var cref *ast.ChanRef
	if ok {
		cref = &ast.ChanRef{Name: v.Name, At: v.At}
	} else if r, isRef := e.Args[0].(*ast.ChanRef); isRef {
		cref = r
	} else {
		return nil, errf(e.At, "%s: first argument must be a channel name", e.Name)
	}
	cands := c.info.chanIdx[cref.Name]
	if len(cands) == 0 {
		return nil, errf(e.At, "%s: %s is not a declared channel", e.Name, cref.Name)
	}
	e.Args[0] = cref

	pktT, err := c.checkExpr(e.Args[1], c.info.Channels[cands[0]].Decl.PacketType())
	if err != nil {
		return nil, err
	}
	matched := false
	for _, ci := range cands {
		if ast.Equal(pktT, c.info.Channels[ci].Decl.PacketType()) {
			matched = true
			break
		}
	}
	if !matched {
		return nil, errSpan(e.At, e.End(), "%s: packet type %s matches no definition of channel %s", e.Name, pktT, cref.Name)
	}
	e.PrimIndex, e.FunIndex = -1, -1
	// Annotate the send with its resolved packet type: signature
	// extraction and the verifier read it instead of re-deriving.
	e.SendPacket = pktT
	return ast.UnitT, nil
}
