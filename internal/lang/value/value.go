// Package value defines the run-time representation of PLAN-P values
// shared by the interpreter, the bytecode VM, and the JIT-specialized
// engine.
//
// Values use a compact tagged struct rather than a Go interface so that
// integers, booleans, characters, and hosts never allocate. Packet headers
// are immutable: primitives such as ipDestSet return a fresh header, which
// lets engines share header structs between packets without defensive
// copies.
package value

import (
	"fmt"
	"strconv"
	"strings"
)

// Kind tags the dynamic type of a Value.
type Kind uint8

// Value kinds.
const (
	KindUnit Kind = iota + 1
	KindInt
	KindBool
	KindString
	KindChar
	KindHost
	KindBlob
	KindTuple
	KindList
	KindTable
	KindIP
	KindTCP
	KindUDP
)

var kindNames = map[Kind]string{
	KindUnit: "unit", KindInt: "int", KindBool: "bool", KindString: "string",
	KindChar: "char", KindHost: "host", KindBlob: "blob", KindTuple: "tuple",
	KindList: "list", KindTable: "hash_table", KindIP: "ip", KindTCP: "tcp",
	KindUDP: "udp",
}

// String returns the kind's type name.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Host is a packed big-endian IPv4 address.
type Host uint32

// String renders the host as a dotted quad.
func (h Host) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(h>>24), byte(h>>16), byte(h>>8), byte(h))
}

// IPHeader mirrors the fields of an IP header that PLAN-P programs can
// observe and rewrite. Values are immutable once constructed.
type IPHeader struct {
	Src   Host
	Dst   Host
	Proto uint8 // 6 = TCP, 17 = UDP
	TTL   uint8
	Len   int // total length including payload, bytes
	ID    uint32
}

// TCPHeader mirrors the TCP header fields visible to PLAN-P programs.
type TCPHeader struct {
	SrcPort uint16
	DstPort uint16
	Seq     uint32
	Ack     uint32
	Flags   uint8 // bit 0 SYN, bit 1 ACK, bit 2 FIN, bit 3 RST, bit 4 PSH
	Window  uint16
}

// TCP header flag bits.
const (
	TCPSyn = 1 << iota
	TCPAck
	TCPFin
	TCPRst
	TCPPsh
)

// UDPHeader mirrors the UDP header fields visible to PLAN-P programs.
type UDPHeader struct {
	SrcPort uint16
	DstPort uint16
	Len     int
}

// Table is a mutable PLAN-P hash table. It is keyed by the canonical
// encoding of any equality value. Tables are reference values: copying a
// Value that holds a Table aliases the same table (matching the paper's
// use of tables as per-channel mutable state).
//
// Tables are not safe for concurrent use; the runtime serializes all
// channel executions on a node.
type Table struct {
	m   map[string]Value
	cap int
}

// NewTable returns an empty table with a capacity hint (the paper's
// mkTable(256) idiom).
func NewTable(capacity int) *Table {
	if capacity < 1 {
		capacity = 1
	}
	return &Table{m: make(map[string]Value, capacity), cap: capacity}
}

// Put stores v under key k, replacing any previous value.
func (t *Table) Put(k Value, v Value) { t.m[EncodeKey(k)] = v }

// Get returns the value stored under k and whether it was present.
func (t *Table) Get(k Value) (Value, bool) {
	v, ok := t.m[EncodeKey(k)]
	return v, ok
}

// Delete removes k from the table (a no-op if absent).
func (t *Table) Delete(k Value) { delete(t.m, EncodeKey(k)) }

// Len returns the number of entries.
func (t *Table) Len() int { return len(t.m) }

// Value is a PLAN-P runtime value.
type Value struct {
	Kind Kind
	I    int64   // int, bool (0/1), char, host
	S    string  // string payload
	B    []byte  // blob payload
	Vs   []Value // tuple or list elements
	Ref  any     // *Table, *IPHeader, *TCPHeader, *UDPHeader
}

// Constructors.

// Unit is the unit value ().
var Unit = Value{Kind: KindUnit}

// Int returns an integer value.
func Int(v int64) Value { return Value{Kind: KindInt, I: v} }

// Bool returns a boolean value.
func Bool(v bool) Value {
	var i int64
	if v {
		i = 1
	}
	return Value{Kind: KindBool, I: i}
}

// Str returns a string value.
func Str(s string) Value { return Value{Kind: KindString, S: s} }

// Char returns a character value.
func Char(c byte) Value { return Value{Kind: KindChar, I: int64(c)} }

// HostV returns a host value.
func HostV(h Host) Value { return Value{Kind: KindHost, I: int64(h)} }

// Blob returns a blob value wrapping b (not copied).
func Blob(b []byte) Value { return Value{Kind: KindBlob, B: b} }

// TupleV returns a tuple of the given elements (not copied).
func TupleV(elems ...Value) Value { return Value{Kind: KindTuple, Vs: elems} }

// ListV returns a list of the given elements (not copied).
func ListV(elems []Value) Value { return Value{Kind: KindList, Vs: elems} }

// TableV wraps a table reference.
func TableV(t *Table) Value { return Value{Kind: KindTable, Ref: t} }

// IP wraps an IP header.
func IP(h *IPHeader) Value { return Value{Kind: KindIP, Ref: h} }

// TCP wraps a TCP header.
func TCP(h *TCPHeader) Value { return Value{Kind: KindTCP, Ref: h} }

// UDP wraps a UDP header.
func UDP(h *UDPHeader) Value { return Value{Kind: KindUDP, Ref: h} }

// Accessors. These trust the type checker: calling them on a value of the
// wrong kind is a bug in an engine, and they panic with a diagnostic.

// AsInt returns the integer payload.
func (v Value) AsInt() int64 {
	if v.Kind != KindInt {
		panic(fmt.Sprintf("planp/value: AsInt on %s", v.Kind))
	}
	return v.I
}

// AsBool returns the boolean payload.
func (v Value) AsBool() bool {
	if v.Kind != KindBool {
		panic(fmt.Sprintf("planp/value: AsBool on %s", v.Kind))
	}
	return v.I != 0
}

// AsStr returns the string payload.
func (v Value) AsStr() string {
	if v.Kind != KindString {
		panic(fmt.Sprintf("planp/value: AsStr on %s", v.Kind))
	}
	return v.S
}

// AsChar returns the character payload.
func (v Value) AsChar() byte {
	if v.Kind != KindChar {
		panic(fmt.Sprintf("planp/value: AsChar on %s", v.Kind))
	}
	return byte(v.I)
}

// AsHost returns the host payload.
func (v Value) AsHost() Host {
	if v.Kind != KindHost {
		panic(fmt.Sprintf("planp/value: AsHost on %s", v.Kind))
	}
	return Host(v.I)
}

// AsBlob returns the blob payload.
func (v Value) AsBlob() []byte {
	if v.Kind != KindBlob {
		panic(fmt.Sprintf("planp/value: AsBlob on %s", v.Kind))
	}
	return v.B
}

// AsTable returns the table reference.
func (v Value) AsTable() *Table {
	t, ok := v.Ref.(*Table)
	if v.Kind != KindTable || !ok {
		panic(fmt.Sprintf("planp/value: AsTable on %s", v.Kind))
	}
	return t
}

// AsIP returns the IP header.
func (v Value) AsIP() *IPHeader {
	h, ok := v.Ref.(*IPHeader)
	if v.Kind != KindIP || !ok {
		panic(fmt.Sprintf("planp/value: AsIP on %s", v.Kind))
	}
	return h
}

// AsTCP returns the TCP header.
func (v Value) AsTCP() *TCPHeader {
	h, ok := v.Ref.(*TCPHeader)
	if v.Kind != KindTCP || !ok {
		panic(fmt.Sprintf("planp/value: AsTCP on %s", v.Kind))
	}
	return h
}

// AsUDP returns the UDP header.
func (v Value) AsUDP() *UDPHeader {
	h, ok := v.Ref.(*UDPHeader)
	if v.Kind != KindUDP || !ok {
		panic(fmt.Sprintf("planp/value: AsUDP on %s", v.Kind))
	}
	return h
}

// Equal reports deep structural equality between two values of the same
// (equality) type. Header values compare by field contents; blobs by
// bytes. Tables are not equality values (rejected by the checker).
func Equal(a, b Value) bool {
	if a.Kind != b.Kind {
		return false
	}
	switch a.Kind {
	case KindUnit:
		return true
	case KindInt, KindBool, KindChar, KindHost:
		return a.I == b.I
	case KindString:
		return a.S == b.S
	case KindBlob:
		return string(a.B) == string(b.B)
	case KindTuple, KindList:
		if len(a.Vs) != len(b.Vs) {
			return false
		}
		for i := range a.Vs {
			if !Equal(a.Vs[i], b.Vs[i]) {
				return false
			}
		}
		return true
	case KindIP:
		x, y := a.AsIP(), b.AsIP()
		return *x == *y
	case KindTCP:
		x, y := a.AsTCP(), b.AsTCP()
		return *x == *y
	case KindUDP:
		x, y := a.AsUDP(), b.AsUDP()
		return *x == *y
	default:
		return false
	}
}

// EncodeKey renders v as a canonical string usable as a hash-table key.
// Distinct values of the same type never collide: each component is
// length- or tag-delimited.
func EncodeKey(v Value) string {
	var sb strings.Builder
	encodeKey(&sb, v)
	return sb.String()
}

func encodeKey(sb *strings.Builder, v Value) {
	switch v.Kind {
	case KindUnit:
		sb.WriteByte('u')
	case KindInt:
		sb.WriteByte('i')
		sb.WriteString(strconv.FormatInt(v.I, 10))
	case KindBool:
		sb.WriteByte('b')
		sb.WriteString(strconv.FormatInt(v.I, 10))
	case KindChar:
		sb.WriteByte('c')
		sb.WriteString(strconv.FormatInt(v.I, 10))
	case KindHost:
		sb.WriteByte('h')
		sb.WriteString(strconv.FormatInt(v.I, 10))
	case KindString:
		sb.WriteByte('s')
		sb.WriteString(strconv.Itoa(len(v.S)))
		sb.WriteByte(':')
		sb.WriteString(v.S)
	case KindBlob:
		sb.WriteByte('B')
		sb.WriteString(strconv.Itoa(len(v.B)))
		sb.WriteByte(':')
		sb.Write(v.B)
	case KindTuple, KindList:
		sb.WriteByte('t')
		sb.WriteString(strconv.Itoa(len(v.Vs)))
		for _, e := range v.Vs {
			sb.WriteByte(',')
			encodeKey(sb, e)
		}
	case KindIP:
		h := v.AsIP()
		fmt.Fprintf(sb, "I%d,%d,%d", uint32(h.Src), uint32(h.Dst), h.Proto)
	case KindTCP:
		h := v.AsTCP()
		fmt.Fprintf(sb, "T%d,%d,%d", h.SrcPort, h.DstPort, h.Seq)
	case KindUDP:
		h := v.AsUDP()
		fmt.Fprintf(sb, "U%d,%d", h.SrcPort, h.DstPort)
	default:
		sb.WriteByte('?')
	}
}

// String renders the value for diagnostics and the print/println
// primitives, in an SML-flavoured notation.
func (v Value) String() string {
	switch v.Kind {
	case KindUnit:
		return "()"
	case KindInt:
		return strconv.FormatInt(v.I, 10)
	case KindBool:
		if v.I != 0 {
			return "true"
		}
		return "false"
	case KindChar:
		return "'" + string(byte(v.I)) + "'"
	case KindHost:
		return Host(v.I).String()
	case KindString:
		return v.S
	case KindBlob:
		return fmt.Sprintf("<blob %dB>", len(v.B))
	case KindTuple:
		parts := make([]string, len(v.Vs))
		for i, e := range v.Vs {
			parts[i] = e.String()
		}
		return "(" + strings.Join(parts, ",") + ")"
	case KindList:
		parts := make([]string, len(v.Vs))
		for i, e := range v.Vs {
			parts[i] = e.String()
		}
		return "[" + strings.Join(parts, ",") + "]"
	case KindTable:
		return fmt.Sprintf("<hash_table %d entries>", v.AsTable().Len())
	case KindIP:
		h := v.AsIP()
		return fmt.Sprintf("<ip %s->%s proto=%d len=%d>", h.Src, h.Dst, h.Proto, h.Len)
	case KindTCP:
		h := v.AsTCP()
		return fmt.Sprintf("<tcp %d->%d seq=%d>", h.SrcPort, h.DstPort, h.Seq)
	case KindUDP:
		h := v.AsUDP()
		return fmt.Sprintf("<udp %d->%d>", h.SrcPort, h.DstPort)
	default:
		return "<invalid>"
	}
}

// Exception is a PLAN-P-level exception. Engines raise it with panic and
// recover it at try/handle boundaries and at the channel-invocation
// boundary, where it is converted to an error. It never crosses the
// public API as a panic.
type Exception struct {
	Msg string
}

// Error implements error so unhandled exceptions surface cleanly.
func (e Exception) Error() string { return "planp exception: " + e.Msg }

// Raise panics with a PLAN-P exception. It is the single raising point
// used by all engines and primitives.
func Raise(format string, args ...any) {
	panic(Exception{Msg: fmt.Sprintf(format, args...)})
}
