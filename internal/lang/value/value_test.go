package value

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestConstructorsAndAccessors(t *testing.T) {
	if Int(42).AsInt() != 42 {
		t.Error("int")
	}
	if !Bool(true).AsBool() || Bool(false).AsBool() {
		t.Error("bool")
	}
	if Str("hi").AsStr() != "hi" {
		t.Error("string")
	}
	if Char('x').AsChar() != 'x' {
		t.Error("char")
	}
	if HostV(0x0A000001).AsHost().String() != "10.0.0.1" {
		t.Error("host")
	}
	if string(Blob([]byte("ab")).AsBlob()) != "ab" {
		t.Error("blob")
	}
	tup := TupleV(Int(1), Str("a"))
	if len(tup.Vs) != 2 || tup.Vs[1].AsStr() != "a" {
		t.Error("tuple")
	}
}

func TestAccessorPanicsOnWrongKind(t *testing.T) {
	cases := []func(){
		func() { Int(1).AsStr() },
		func() { Str("x").AsInt() },
		func() { Unit.AsBool() },
		func() { Int(1).AsTable() },
		func() { Str("x").AsIP() },
		func() { Int(1).AsTCP() },
		func() { Int(1).AsUDP() },
		func() { Str("x").AsBlob() },
		func() { Int(1).AsChar() },
		func() { Int(1).AsHost() },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestEqual(t *testing.T) {
	ip1 := IP(&IPHeader{Src: 1, Dst: 2, Proto: 6, TTL: 64, Len: 40})
	ip2 := IP(&IPHeader{Src: 1, Dst: 2, Proto: 6, TTL: 64, Len: 40})
	ip3 := IP(&IPHeader{Src: 1, Dst: 3, Proto: 6, TTL: 64, Len: 40})
	cases := []struct {
		a, b Value
		want bool
	}{
		{Int(1), Int(1), true},
		{Int(1), Int(2), false},
		{Int(1), Str("1"), false},
		{Unit, Unit, true},
		{Str("a"), Str("a"), true},
		{Blob([]byte("xy")), Blob([]byte("xy")), true},
		{Blob([]byte("xy")), Blob([]byte("xz")), false},
		{TupleV(Int(1), Str("a")), TupleV(Int(1), Str("a")), true},
		{TupleV(Int(1)), TupleV(Int(1), Int(2)), false},
		{ListV([]Value{Int(1)}), ListV([]Value{Int(1)}), true},
		{ip1, ip2, true},
		{ip1, ip3, false},
		{TCP(&TCPHeader{SrcPort: 1}), TCP(&TCPHeader{SrcPort: 1}), true},
		{TCP(&TCPHeader{SrcPort: 1}), TCP(&TCPHeader{SrcPort: 2}), false},
		{UDP(&UDPHeader{DstPort: 5}), UDP(&UDPHeader{DstPort: 5}), true},
	}
	for i, tc := range cases {
		if got := Equal(tc.a, tc.b); got != tc.want {
			t.Errorf("case %d: Equal(%s, %s) = %v", i, tc.a, tc.b, got)
		}
	}
}

// TestEncodeKeyInjective property-checks that distinct scalar values get
// distinct keys and equal values get equal keys.
func TestEncodeKeyInjective(t *testing.T) {
	f := func(a, b int64, s1, s2 string) bool {
		ka := EncodeKey(TupleV(Int(a), Str(s1)))
		kb := EncodeKey(TupleV(Int(b), Str(s2)))
		same := a == b && s1 == s2
		return (ka == kb) == same
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestEncodeKeyNoConcatCollision guards the classic length-prefix bug:
// ("ab","c") must differ from ("a","bc").
func TestEncodeKeyNoConcatCollision(t *testing.T) {
	k1 := EncodeKey(TupleV(Str("ab"), Str("c")))
	k2 := EncodeKey(TupleV(Str("a"), Str("bc")))
	if k1 == k2 {
		t.Error("length-prefix collision")
	}
	k3 := EncodeKey(TupleV(Int(12), Int(3)))
	k4 := EncodeKey(TupleV(Int(1), Int(23)))
	if k3 == k4 {
		t.Error("integer concatenation collision")
	}
	// Different kinds with the same rendering must differ.
	if EncodeKey(Int(1)) == EncodeKey(Bool(true)) {
		t.Error("kind tag collision")
	}
	if EncodeKey(Str("u")) == EncodeKey(Unit) {
		t.Error("unit/string collision")
	}
}

// TestEqualImpliesEqualKeys: Equal values must share a key (soundness of
// table lookups).
func TestEqualImpliesEqualKeys(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 300; i++ {
		v := randValue(rng, 3)
		w := deepCopy(v)
		if !Equal(v, w) {
			t.Fatalf("deep copy not Equal: %s", v)
		}
		if EncodeKey(v) != EncodeKey(w) {
			t.Fatalf("equal values, different keys: %s", v)
		}
	}
}

// randValue builds a random equality value of bounded depth.
func randValue(rng *rand.Rand, depth int) Value {
	choices := 6
	if depth > 0 {
		choices = 8
	}
	switch rng.Intn(choices) {
	case 0:
		return Int(rng.Int63n(1000) - 500)
	case 1:
		return Bool(rng.Intn(2) == 0)
	case 2:
		return Str(randString(rng))
	case 3:
		return Char(byte(rng.Intn(256)))
	case 4:
		return HostV(Host(rng.Uint32()))
	case 5:
		b := make([]byte, rng.Intn(6))
		rng.Read(b)
		return Blob(b)
	case 6:
		n := 1 + rng.Intn(3)
		elems := make([]Value, n)
		for i := range elems {
			elems[i] = randValue(rng, depth-1)
		}
		return TupleV(elems...)
	default:
		n := rng.Intn(3)
		elems := make([]Value, n)
		for i := range elems {
			elems[i] = randValue(rng, depth-1)
		}
		return ListV(elems)
	}
}

func randString(rng *rand.Rand) string {
	b := make([]byte, rng.Intn(6))
	for i := range b {
		b[i] = byte('a' + rng.Intn(26))
	}
	return string(b)
}

func deepCopy(v Value) Value {
	switch v.Kind {
	case KindBlob:
		return Blob(append([]byte(nil), v.B...))
	case KindTuple, KindList:
		elems := make([]Value, len(v.Vs))
		for i, e := range v.Vs {
			elems[i] = deepCopy(e)
		}
		if v.Kind == KindTuple {
			return TupleV(elems...)
		}
		return ListV(elems)
	default:
		return v
	}
}

func TestTableOps(t *testing.T) {
	tbl := NewTable(4)
	k1 := TupleV(HostV(1), Int(80))
	k2 := TupleV(HostV(2), Int(80))
	if _, ok := tbl.Get(k1); ok {
		t.Error("empty table lookup succeeded")
	}
	tbl.Put(k1, Str("a"))
	tbl.Put(k2, Str("b"))
	if v, ok := tbl.Get(k1); !ok || v.AsStr() != "a" {
		t.Error("get after put")
	}
	tbl.Put(k1, Str("a2"))
	if v, _ := tbl.Get(k1); v.AsStr() != "a2" {
		t.Error("overwrite")
	}
	if tbl.Len() != 2 {
		t.Errorf("len = %d", tbl.Len())
	}
	tbl.Delete(k1)
	if _, ok := tbl.Get(k1); ok {
		t.Error("delete did not remove")
	}
	tbl.Delete(k1) // idempotent
	if tbl.Len() != 1 {
		t.Errorf("len after delete = %d", tbl.Len())
	}
	if NewTable(-5).Len() != 0 {
		t.Error("negative capacity should clamp")
	}
}

func TestTableIsReference(t *testing.T) {
	tbl := NewTable(1)
	v1 := TableV(tbl)
	v2 := v1 // copying the Value aliases the table
	v2.AsTable().Put(Int(1), Int(2))
	if got, ok := v1.AsTable().Get(Int(1)); !ok || got.AsInt() != 2 {
		t.Error("table copy does not alias")
	}
}

func TestString(t *testing.T) {
	cases := map[string]Value{
		"()":        Unit,
		"42":        Int(42),
		"-7":        Int(-7),
		"true":      Bool(true),
		"'z'":       Char('z'),
		"10.0.0.1":  HostV(0x0A000001),
		"hello":     Str("hello"),
		"<blob 3B>": Blob([]byte{1, 2, 3}),
		"(1,two)":   TupleV(Int(1), Str("two")),
		"[1,2]":     ListV([]Value{Int(1), Int(2)}),
	}
	for want, v := range cases {
		if got := v.String(); got != want {
			t.Errorf("String(%v) = %q, want %q", v.Kind, got, want)
		}
	}
	if !strings.Contains(TableV(NewTable(1)).String(), "hash_table") {
		t.Error("table rendering")
	}
	if !strings.Contains(IP(&IPHeader{Src: 1, Dst: 2}).String(), "->") {
		t.Error("ip rendering")
	}
}

func TestExceptionAndRaise(t *testing.T) {
	defer func() {
		r := recover()
		ex, ok := r.(Exception)
		if !ok {
			t.Fatalf("recovered %T", r)
		}
		if ex.Msg != "bad index 7" {
			t.Errorf("msg %q", ex.Msg)
		}
		if !strings.Contains(ex.Error(), "planp exception") {
			t.Errorf("Error() = %q", ex.Error())
		}
	}()
	Raise("bad index %d", 7)
}

func TestKindString(t *testing.T) {
	if KindInt.String() != "int" || KindTable.String() != "hash_table" {
		t.Error("kind names")
	}
	if !strings.Contains(Kind(200).String(), "200") {
		t.Error("unknown kind should render numerically")
	}
}

var sinkKey string

func BenchmarkEncodeKeyTuple(b *testing.B) {
	v := TupleV(HostV(0x0A000001), Int(4321))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sinkKey = EncodeKey(v)
	}
}
