package par

import (
	"sync/atomic"
	"testing"
)

func TestForEachCoversAllIndicesOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 4, 100} {
		for _, n := range []int{0, 1, 7, 64} {
			counts := make([]int32, n)
			ForEach(workers, n, func(i int) { atomic.AddInt32(&counts[i], 1) })
			for i, c := range counts {
				if c != 1 {
					t.Errorf("workers=%d n=%d: index %d ran %d times", workers, n, i, c)
				}
			}
		}
	}
}

func TestForEachSequentialRunsInOrder(t *testing.T) {
	var order []int
	ForEach(1, 5, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("sequential mode ran out of order: %v", order)
		}
	}
}

func TestForEachBoundsConcurrency(t *testing.T) {
	const workers, n = 3, 50
	var cur, peak int32
	ForEach(workers, n, func(int) {
		c := atomic.AddInt32(&cur, 1)
		for {
			p := atomic.LoadInt32(&peak)
			if c <= p || atomic.CompareAndSwapInt32(&peak, p, c) {
				break
			}
		}
		atomic.AddInt32(&cur, -1)
	})
	if p := atomic.LoadInt32(&peak); p > workers {
		t.Errorf("observed %d concurrent calls, limit %d", p, workers)
	}
}

func TestGrid2RowMajor(t *testing.T) {
	const rows, cols = 3, 4
	var seen [rows][cols]int32
	Grid2(4, rows, cols, func(i, j int) { atomic.AddInt32(&seen[i][j], 1) })
	for i := range seen {
		for j := range seen[i] {
			if seen[i][j] != 1 {
				t.Errorf("cell (%d,%d) ran %d times", i, j, seen[i][j])
			}
		}
	}
}
