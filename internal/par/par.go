// Package par is the bounded worker pool under the parallel experiment
// driver. A simulation run is single-threaded by construction (one
// goroutine drives one Simulator's event loop), so a grid of
// independent runs — figure 7's load×mode cells, figure 8's
// variant×offered-load sweep — parallelizes by giving each cell its own
// Simulator on its own goroutine. Determinism is preserved by
// construction: every cell derives its seeds from its grid coordinates
// (never from which worker runs it), and callers write results into a
// slot indexed by the cell, assembling output rows in index order after
// the pool drains.
package par

import "sync"

// ForEach runs fn(i) for every i in [0, n), using at most `workers`
// concurrent goroutines. workers <= 1 (or n < 2) runs inline on the
// calling goroutine in index order — the sequential mode the byte-
// identity regression compares against. ForEach returns when all calls
// have completed.
//
// fn must confine itself to state owned by cell i (its own Simulator,
// its own result slot); ForEach provides the happens-before edge
// between fn's writes and the caller's reads after return.
func ForEach(workers, n int, fn func(int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 || n < 2 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	next := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range next {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}

// Grid2 runs fn(i, j) for every cell of an rows×cols grid on the pool,
// flattening row-major (i*cols + j). It exists because the experiment
// grids are two-dimensional (load × adaptation mode, variant × offered
// load) and indexing mistakes in the flattening are easy to make
// locally and hard to see in a diff.
func Grid2(workers, rows, cols int, fn func(i, j int)) {
	ForEach(workers, rows*cols, func(k int) {
		fn(k/cols, k%cols)
	})
}
