// Protocol deployment management — §5's "protocol management
// functionalities, such as ASP deployment". A Deployment installs one
// loaded program across a node set atomically (all nodes or none) and
// can be withdrawn as a unit, which is how the audio experiment pushes
// the router protocol onto every router of the multicast tree.
package planprt

import (
	"fmt"
	"io"

	"planp.dev/planp/internal/substrate"
)

// Uninstall removes this runtime from its node, restoring standard
// packet processing. Idempotent.
func (rt *Runtime) Uninstall() {
	if rt.node.CurrentProcessor() == substrate.Processor(rt) {
		rt.node.SetProcessor(nil)
		rt.prog.installs--
	}
}

// Deployment tracks one program installed across a set of nodes.
type Deployment struct {
	prog     *Program
	runtimes []*Runtime
}

// Deploy installs p on every node, rolling back already-installed nodes
// if any installation fails (a node already running another protocol,
// or a single-node program offered several nodes).
func Deploy(p *Program, out io.Writer, nodes ...substrate.Node) (*Deployment, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("planprt: deployment needs at least one node")
	}
	d := &Deployment{prog: p}
	for _, node := range nodes {
		if node.CurrentProcessor() != nil {
			d.Undeploy()
			return nil, fmt.Errorf("planprt: node %s already runs a protocol", node.Hostname())
		}
		rt, err := Install(node, p, out)
		if err != nil {
			d.Undeploy()
			return nil, fmt.Errorf("planprt: deploying to %s: %w", node.Hostname(), err)
		}
		d.runtimes = append(d.runtimes, rt)
	}
	return d, nil
}

// Undeploy withdraws the protocol from every node it reached.
func (d *Deployment) Undeploy() {
	for _, rt := range d.runtimes {
		rt.Uninstall()
	}
	d.runtimes = nil
}

// Runtimes returns the per-node runtimes in deployment order.
func (d *Deployment) Runtimes() []*Runtime { return d.runtimes }

// TotalStats aggregates runtime statistics across the deployment.
func (d *Deployment) TotalStats() Stats {
	var total Stats
	for _, rt := range d.runtimes {
		s := rt.Stats()
		total.Processed += s.Processed
		total.Unmatched += s.Unmatched
		total.Errors += s.Errors
		total.SentRemote += s.SentRemote
		total.SentLocal += s.SentLocal
		total.SentFlood += s.SentFlood
		total.Delivered += s.Delivered
		total.InvokeTime += s.InvokeTime
	}
	return total
}
