// Package planprt is the ASP runtime: the IP/PLAN-P layer of figure 1,
// implemented against the abstract execution substrate
// (internal/substrate), so the same runtime drives the deterministic
// simulator (internal/netsim) and the real-time concurrent backend
// (internal/rtnet).
//
// A Program is a protocol that has been parsed, type-checked, verified
// (late checking, §2.1), and compiled by one of the engines; Download
// installs it on a node, where it intercepts the node's packet
// processing. The runtime provides the primitive context — OnRemote /
// OnNeighbor routing, local delivery, link-load measurement, substrate
// time — and dispatches incoming packets to channel definitions by tag
// and packet-type decoding.
//
// The runtime deliberately knows nothing about any concrete backend: it
// talks to substrate.Node/Iface/Env only (enforced by a test), which is
// what lets an ASP verified and compiled once run unchanged on the
// simulator or on live traffic.
package planprt

import (
	"crypto/sha256"
	"fmt"
	"io"
	"time"

	"planp.dev/planp/internal/lang/bytecode"
	"planp.dev/planp/internal/lang/engine"
	"planp.dev/planp/internal/lang/interp"
	"planp.dev/planp/internal/lang/jit"
	"planp.dev/planp/internal/lang/parser"
	"planp.dev/planp/internal/lang/prims"
	"planp.dev/planp/internal/lang/typecheck"
	"planp.dev/planp/internal/lang/value"
	"planp.dev/planp/internal/lang/verify"
	"planp.dev/planp/internal/obs"
	"planp.dev/planp/internal/substrate"
)

// EngineKind selects an execution engine.
type EngineKind string

// Engine kinds.
const (
	EngineInterp   EngineKind = "interp"
	EngineBytecode EngineKind = "bytecode"
	EngineJIT      EngineKind = "jit"
)

// VerifyPolicy controls late checking at download time.
type VerifyPolicy int

const (
	// VerifyNetwork requires the full network-wide analyses (protocols
	// that may be installed on any number of nodes).
	VerifyNetwork VerifyPolicy = iota
	// VerifySingleNode verifies under the single-node deployment
	// assumption; the runtime then refuses to install the program on
	// more than one node.
	VerifySingleNode
	// VerifyPrivileged skips rejection (the paper's authenticated
	// download path for protocols like multicast that legitimately fail
	// the conservative analyses). The analyses still run; results are
	// recorded on the Program.
	VerifyPrivileged
)

// Config configures compilation and installation.
type Config struct {
	Engine EngineKind   // default EngineJIT
	Verify VerifyPolicy // default VerifyNetwork
	Output io.Writer    // print/println destination; default io.Discard

	// NoCache bypasses the compiled-program cache (see cache.go). Set it
	// when the point of the Load is to MEASURE the pipeline (figure 3's
	// code-generation timings); leave it unset everywhere else.
	NoCache bool
}

func (c *Config) fill() {
	if c.Engine == "" {
		c.Engine = EngineJIT
	}
	if c.Output == nil {
		c.Output = io.Discard
	}
}

// Program is a protocol ready for download: checked, verified, and
// compiled.
type Program struct {
	Source   string
	Info     *typecheck.Info
	Compiled engine.Compiled
	Verify   *verify.Result
	Policy   VerifyPolicy

	// CodegenTime is the wall-clock time the engine spent compiling
	// (the paper's figure-3 measurement).
	CodegenTime time.Duration

	installs int
}

// Installs reports how many nodes currently run this program: Install
// increments it, Runtime.Uninstall releases it. Deployment rollback is
// auditable through it — a Deploy that failed partway must leave the
// count exactly where it found it.
func (p *Program) Installs() int { return p.installs }

// Signature returns the program's channel-interface signature, as
// extracted by the typechecker. Because the signature lives on the
// shared Info, cache hits return the very same artifact — exposing it
// here costs nothing beyond the compile that already happened.
func (p *Program) Signature() *typecheck.Signature { return p.Info.Sig }

// compileWith returns the engine's compile function.
func compileWith(kind EngineKind) (func(*typecheck.Info) (engine.Compiled, error), error) {
	switch kind {
	case EngineInterp:
		return interp.Compile, nil
	case EngineBytecode:
		return bytecode.Compile, nil
	case EngineJIT, "":
		return jit.Compile, nil
	default:
		return nil, fmt.Errorf("planprt: unknown engine %q", kind)
	}
}

// Load parses, checks, verifies, and compiles a protocol source text.
// Successful results are memoized by (source hash, engine, verify
// policy) — see cache.go — unless cfg.NoCache is set; each call still
// returns a fresh *Program, so install accounting starts at zero.
//
// Load is the compile-without-activate half of the download pipeline:
// the returned Program has passed late checking but touches no node
// until Install places it. The staged phase of a fleet rollout
// (internal/fleet, planpd's POST /asp/stage) is exactly a Load whose
// Install is deferred to the activate phase.
func Load(src string, cfg Config) (*Program, error) {
	cfg.fill()
	key := cacheKey{src: sha256.Sum256([]byte(src)), engine: cfg.Engine, policy: cfg.Verify}
	if !cfg.NoCache {
		if e := cacheGet(key); e != nil {
			compiled, codegen := e.compiled, e.codegenTime
			if !compiled.Shareable() {
				// The artifact keeps execution state outside its
				// instances (the JIT's call-site buffers), so loads that
				// may run on different goroutines each need their own.
				// The cached front-end (parse/check/verify) is still
				// reused; only codegen repeats.
				compile, err := compileWith(cfg.Engine)
				if err != nil {
					return nil, err
				}
				start := time.Now()
				compiled, err = compile(e.info)
				if err != nil {
					return nil, err
				}
				codegen = time.Since(start)
			}
			return &Program{
				Source:      src,
				Info:        e.info,
				Compiled:    compiled,
				Verify:      e.vres,
				Policy:      cfg.Verify,
				CodegenTime: codegen,
			}, nil
		}
	}
	prog, err := parser.Parse(src)
	if err != nil {
		return nil, err
	}
	info, err := typecheck.Check(prog)
	if err != nil {
		return nil, err
	}
	var vres *verify.Result
	switch cfg.Verify {
	case VerifySingleNode:
		vres = verify.VerifyWith(info, verify.Options{SingleNode: true})
	default:
		vres = verify.Verify(info)
	}
	if cfg.Verify != VerifyPrivileged {
		if err := vres.Err(); err != nil {
			return nil, fmt.Errorf("planprt: program rejected by late checking: %w", err)
		}
	}
	compile, err := compileWith(cfg.Engine)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	compiled, err := compile(info)
	if err != nil {
		return nil, err
	}
	codegen := time.Since(start)
	if !cfg.NoCache {
		cachePut(key, &cacheEntry{info: info, compiled: compiled, vres: vres, codegenTime: codegen})
	}
	return &Program{
		Source:      src,
		Info:        info,
		Compiled:    compiled,
		Verify:      vres,
		Policy:      cfg.Verify,
		CodegenTime: codegen,
	}, nil
}

// Download loads src and installs it on node in one step.
func Download(node substrate.Node, src string, cfg Config) (*Runtime, error) {
	cfg.fill()
	p, err := Load(src, cfg)
	if err != nil {
		return nil, err
	}
	return Install(node, p, cfg.Output)
}

// Install places a loaded program onto a node, replacing the node's
// standard packet processing (figure 1). Each installation gets its own
// protocol/channel state instance and fresh "asp.<node>.*" counters in
// the simulation's metrics registry.
func Install(node substrate.Node, p *Program, output io.Writer) (*Runtime, error) {
	env := node.Env()
	if p.Policy == VerifySingleNode && p.installs >= 1 {
		if bus := env.Events(); bus.Active() {
			bus.Publish(obs.Event{
				Kind: obs.KindVerifyReject, At: env.Now(),
				Node: node.Hostname(), Detail: "single-node-limit",
			})
		}
		return nil, fmt.Errorf("planprt: program was verified for single-node deployment and is already installed")
	}
	if output == nil {
		output = io.Discard
	}
	rt := &Runtime{node: node, env: env, name: node.Hostname(), addr: node.Address(),
		prog: p, out: output,
		ct: newRuntimeCounters(env.Metrics(), node.Hostname())}
	inst, err := p.Compiled.NewInstance(rt)
	if err != nil {
		return nil, err
	}
	rt.inst = inst
	node.SetProcessor(rt)
	p.installs++
	return rt, nil
}

// Stats is a point-in-time snapshot of runtime activity on one node,
// returned by Runtime.Stats(). The live counters reside in the
// simulation's metrics registry under "asp.<node>.*"; each installation
// starts from fresh counters.
type Stats struct {
	Processed  int64 // packets handled by a channel
	Unmatched  int64 // packets that matched no channel (default path)
	Errors     int64 // channel invocations ending in an exception
	SentRemote int64
	SentLocal  int64 // OnRemote to self (local delivery)
	SentFlood  int64 // OnNeighbor transmissions
	Delivered  int64 // deliver primitive
	InvokeTime time.Duration
}

// runtimeCounters are the per-installation registry instruments,
// resolved once at install time (no name lookups per packet).
type runtimeCounters struct {
	processed  *obs.Counter
	unmatched  *obs.Counter
	errors     *obs.Counter
	sentRemote *obs.Counter
	sentLocal  *obs.Counter
	sentFlood  *obs.Counter
	delivered  *obs.Counter
	invokeNs   *obs.Counter
}

func newRuntimeCounters(reg *obs.Registry, node string) runtimeCounters {
	pre := "asp." + node + "."
	return runtimeCounters{
		processed:  reg.ResetCounter(pre + "processed"),
		unmatched:  reg.ResetCounter(pre + "unmatched"),
		errors:     reg.ResetCounter(pre + "errors"),
		sentRemote: reg.ResetCounter(pre + "sent_remote"),
		sentLocal:  reg.ResetCounter(pre + "sent_local"),
		sentFlood:  reg.ResetCounter(pre + "sent_flood"),
		delivered:  reg.ResetCounter(pre + "delivered"),
		invokeNs:   reg.ResetCounter(pre + "invoke_ns"),
	}
}

// Runtime is one installed protocol on one node. It implements both the
// substrate's Processor hook and the language's primitive context.
type Runtime struct {
	node substrate.Node
	env  substrate.Env  // node.Env(), resolved once at install time
	name string         // node.Hostname(), ditto (event hot path)
	addr substrate.Addr // node.Address(), ditto (OnRemote self-check)
	prog *Program
	inst *engine.Instance
	out  io.Writer

	// curIn is the interface the packet being processed arrived on and
	// curDst its original destination (split-horizon for OnRemote
	// pass-through forwarding).
	curIn  substrate.Iface
	curDst substrate.Addr

	ct runtimeCounters
}

// Stats returns a snapshot of this installation's activity counters.
func (rt *Runtime) Stats() Stats {
	return Stats{
		Processed:  rt.ct.processed.Value(),
		Unmatched:  rt.ct.unmatched.Value(),
		Errors:     rt.ct.errors.Value(),
		SentRemote: rt.ct.sentRemote.Value(),
		SentLocal:  rt.ct.sentLocal.Value(),
		SentFlood:  rt.ct.sentFlood.Value(),
		Delivered:  rt.ct.delivered.Value(),
		InvokeTime: time.Duration(rt.ct.invokeNs.Value()),
	}
}

// Events returns the event bus of the substrate this runtime is
// installed in (protocol-level subscribers: ASP invokes, rejects).
func (rt *Runtime) Events() *obs.Bus { return rt.env.Events() }

var (
	_ substrate.Processor = (*Runtime)(nil)
	_ prims.Context       = (*Runtime)(nil)
)

// Node returns the node this runtime is installed on.
func (rt *Runtime) Node() substrate.Node { return rt.node }

// Program returns the installed program.
func (rt *Runtime) Program() *Program { return rt.prog }

// Instance exposes the protocol state (tests and monitoring tools).
func (rt *Runtime) Instance() *engine.Instance { return rt.inst }

// Process implements netsim.Processor: dispatch the packet to the first
// matching channel. Untagged packets go to "network" channels; tagged
// packets to channels with the tag's name (§2).
func (rt *Runtime) Process(pkt *substrate.Packet, in substrate.Iface) bool {
	name := pkt.ChanTag
	if name == "" {
		name = "network"
	}
	for _, ch := range rt.prog.Info.ChannelsByName(name) {
		v, ok := Decode(pkt, ch.Decl.PacketType())
		if !ok {
			continue
		}
		if bus := rt.env.Events(); bus.Active() {
			bus.Publish(obs.Event{
				Kind: obs.KindASPInvoke, At: rt.env.Now(),
				Node: rt.name, Src: uint32(pkt.IP.Src), Dst: uint32(pkt.IP.Dst),
				Size: pkt.Size(), Detail: ch.Decl.Name,
			})
		}
		rt.curIn, rt.curDst = in, pkt.IP.Dst
		start := time.Now()
		err := rt.inst.Invoke(ch.Index, rt, v)
		rt.ct.invokeNs.Add(int64(time.Since(start)))
		rt.curIn, rt.curDst = nil, 0
		if err != nil {
			// An unhandled exception drops the packet (the verifier
			// exists to prevent this for checked programs).
			rt.ct.errors.Inc()
			return true
		}
		rt.ct.processed.Inc()
		return true
	}
	rt.ct.unmatched.Inc()
	return false
}

// ---------------------------------------------------------------------------
// prims.Context

// OnRemote implements the send primitive: the packet is routed by its
// (possibly rewritten) destination. Sends addressed to this node are
// delivered locally — the IP rule that a packet addressed to yourself
// does not hit the wire — which is also what makes self-forwarding
// protocols terminate.
func (rt *Runtime) OnRemote(chanName string, pktVal value.Value) {
	pkt, err := Encode(pktVal)
	if err != nil {
		value.Raise("OnRemote: %v", err)
	}
	if chanName != "network" {
		pkt.ChanTag = chanName
	}
	if pkt.IP.Dst == rt.addr {
		rt.ct.sentLocal.Inc()
		rt.node.DeliverLocal(pkt)
		return
	}
	if pkt.IP.TTL <= 1 {
		return // resource backstop, mirrors IP
	}
	pkt.IP.TTL--
	if pkt.IP.ID == 0 {
		pkt.IP.ID = rt.node.NextIPID()
	}
	rt.ct.sentRemote.Inc()
	// Split horizon applies to pass-through forwarding (unchanged
	// destination): never re-transmit a packet onto the segment it
	// arrived from. A program that REWROTE the destination started a
	// new journey, which may legitimately leave the way it came (the
	// MPEG monitor answering queries on its own segment, §3.3).
	in := rt.curIn
	if pkt.IP.Dst != rt.curDst {
		in = nil
	}
	rt.node.TransmitFrom(pkt, in)
}

// OnNeighbor implements link-local flooding: one copy out every
// interface except the one the packet arrived on.
func (rt *Runtime) OnNeighbor(chanName string, pktVal value.Value) {
	pkt, err := Encode(pktVal)
	if err != nil {
		value.Raise("OnNeighbor: %v", err)
	}
	if chanName != "network" {
		pkt.ChanTag = chanName
	}
	if pkt.IP.TTL <= 1 {
		return
	}
	pkt.IP.TTL--
	ifaces := rt.node.Interfaces()
	outs := 0
	for _, ifc := range ifaces {
		if ifc != rt.curIn {
			outs++
		}
	}
	if outs > 1 {
		// Flooding shares one packet pointer across media; it cannot be
		// exclusively owned by any receiver.
		pkt.Disown()
	}
	for _, ifc := range ifaces {
		if ifc == rt.curIn {
			continue
		}
		rt.ct.sentFlood.Inc()
		ifc.Send(pkt)
	}
}

// Deliver implements the deliver primitive.
func (rt *Runtime) Deliver(pktVal value.Value) {
	pkt, err := Encode(pktVal)
	if err != nil {
		value.Raise("deliver: %v", err)
	}
	rt.ct.delivered.Inc()
	rt.node.DeliverLocal(pkt)
}

// Print implements program output.
func (rt *Runtime) Print(s string) { io.WriteString(rt.out, s) }

// ThisHost returns the node address.
func (rt *Runtime) ThisHost() value.Host { return value.Host(rt.addr) }

// Now returns substrate time (virtual on the simulator, wall-clock on
// real-time backends) in milliseconds.
func (rt *Runtime) Now() int64 { return rt.env.Now().Milliseconds() }

// Rand draws from the substrate's seeded random stream.
func (rt *Runtime) Rand(n int64) int64 { return rt.env.Int63n(n) }

// LinkLoadTo reports the utilization of the interface a packet to dst
// would leave through.
func (rt *Runtime) LinkLoadTo(dst value.Host) int64 {
	ifc := rt.node.Route(substrate.Addr(dst))
	if ifc == nil {
		return 0
	}
	return ifc.Load()
}

// LinkBandwidthTo reports the capacity of the route to dst.
func (rt *Runtime) LinkBandwidthTo(dst value.Host) int64 {
	ifc := rt.node.Route(substrate.Addr(dst))
	if ifc == nil {
		return 0
	}
	return ifc.Bandwidth()
}
