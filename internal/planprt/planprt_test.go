package planprt

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"planp.dev/planp/internal/lang/ast"
	"planp.dev/planp/internal/lang/value"
	"planp.dev/planp/internal/netsim"
)

// ---------------------------------------------------------------------------
// Codec

func TestCodecRoundTripTCPBlob(t *testing.T) {
	pkt := netsim.NewTCP(netsim.MustAddr("10.0.0.1"), netsim.MustAddr("10.0.0.2"), 4000, 80, 7, netsim.FlagSyn|netsim.FlagPsh, []byte("GET / HTTP/1.0"))
	typ := ast.Tuple{Elems: []ast.Type{ast.IPT, ast.TCPT, ast.BlobT}}
	v, ok := Decode(pkt, typ)
	if !ok {
		t.Fatal("decode failed")
	}
	back, err := Encode(v)
	if err != nil {
		t.Fatal(err)
	}
	if back.IP != pkt.IP || *back.TCP != *pkt.TCP || string(back.Payload) != string(pkt.Payload) {
		t.Errorf("round trip mismatch:\n%v\nvs\n%v", pkt, back)
	}
}

func TestCodecScalarPayload(t *testing.T) {
	// char + int + bool + host + string, strictly consumed.
	payload := []byte{'A'}
	payload = append(payload, 0x00, 0x00, 0x01, 0x2C) // int 300
	payload = append(payload, 1)                      // bool true
	payload = append(payload, 10, 0, 0, 9)            // host 10.0.0.9
	payload = append(payload, 0, 2, 'h', 'i')         // string "hi"
	pkt := netsim.NewUDP(netsim.MustAddr("10.0.0.1"), netsim.MustAddr("10.0.0.2"), 1, 2, payload)
	typ := ast.Tuple{Elems: []ast.Type{ast.IPT, ast.UDPT, ast.CharT, ast.IntT, ast.BoolT, ast.HostT, ast.StringT}}
	v, ok := Decode(pkt, typ)
	if !ok {
		t.Fatal("decode failed")
	}
	if v.Vs[2].AsChar() != 'A' || v.Vs[3].AsInt() != 300 || !v.Vs[4].AsBool() {
		t.Errorf("scalar decode wrong: %s", v)
	}
	if v.Vs[5].AsHost().String() != "10.0.0.9" || v.Vs[6].AsStr() != "hi" {
		t.Errorf("host/string decode wrong: %s", v)
	}
	back, err := Encode(v)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back.Payload, payload) {
		t.Errorf("re-encoded payload %x, want %x", back.Payload, payload)
	}
}

func TestCodecStrictness(t *testing.T) {
	pkt := netsim.NewUDP(netsim.MustAddr("10.0.0.1"), netsim.MustAddr("10.0.0.2"), 1, 2, []byte{1, 2, 3})
	cases := []ast.Type{
		ast.Tuple{Elems: []ast.Type{ast.IPT, ast.TCPT, ast.BlobT}},           // wrong transport
		ast.Tuple{Elems: []ast.Type{ast.IPT, ast.UDPT, ast.IntT}},            // needs 4 bytes
		ast.Tuple{Elems: []ast.Type{ast.IPT, ast.UDPT, ast.CharT}},           // leftover bytes
		ast.Tuple{Elems: []ast.Type{ast.IPT, ast.UDPT, ast.CharT, ast.IntT}}, // short int
		ast.Tuple{Elems: []ast.Type{ast.IPT, ast.UDPT, ast.StringT}},         // length prefix 0x0102 > len
		ast.IntT, // not a tuple
	}
	for _, typ := range cases {
		if _, ok := Decode(pkt, typ); ok {
			t.Errorf("Decode(%s) matched a 3-byte UDP payload", typ)
		}
	}
	// bool must be 0 or 1.
	pkt2 := netsim.NewUDP(netsim.MustAddr("10.0.0.1"), netsim.MustAddr("10.0.0.2"), 1, 2, []byte{7})
	if _, ok := Decode(pkt2, ast.Tuple{Elems: []ast.Type{ast.IPT, ast.UDPT, ast.BoolT}}); ok {
		t.Error("byte 7 decoded as bool")
	}
}

// TestCodecQuickRoundTrip property-tests Decode∘Encode = id over random
// scalar payloads.
func TestCodecQuickRoundTrip(t *testing.T) {
	typ := ast.Tuple{Elems: []ast.Type{ast.IPT, ast.UDPT, ast.CharT, ast.IntT, ast.BlobT}}
	f := func(c byte, n int32, blob []byte) bool {
		v := value.TupleV(
			value.IP(&value.IPHeader{Src: 0x0A000001, Dst: 0x0A000002, Proto: 17, TTL: 64, ID: 9}),
			value.UDP(&value.UDPHeader{SrcPort: 5, DstPort: 6}),
			value.Char(c), value.Int(int64(n)), value.Blob(blob),
		)
		pkt, err := Encode(v)
		if err != nil {
			return false
		}
		v2, ok := Decode(pkt, typ)
		if !ok {
			return false
		}
		return v2.Vs[2].AsChar() == c && v2.Vs[3].AsInt() == int64(n) &&
			bytes.Equal(v2.Vs[4].AsBlob(), blob)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestEncodeRejectsMalformed(t *testing.T) {
	if _, err := Encode(value.Int(3)); err == nil {
		t.Error("Encode(int) should fail")
	}
	if _, err := Encode(value.TupleV(value.Int(3))); err == nil {
		t.Error("Encode(tuple without ip) should fail")
	}
}

// ---------------------------------------------------------------------------
// Runtime integration

// topo builds client -- gateway(router) -- {srvA, srvB, virtual} with
// host routes, mirroring §3.2's cluster front end.
func topo(t *testing.T) (sim *netsim.Simulator, client, gw, srvA, srvB *netsim.Node) {
	t.Helper()
	sim = netsim.NewSimulator(42)
	client = netsim.NewNode(sim, "client", netsim.MustAddr("10.0.1.1"))
	gw = netsim.NewNode(sim, "gw", netsim.MustAddr("10.0.0.1"))
	srvA = netsim.NewNode(sim, "srvA", netsim.MustAddr("10.0.0.2"))
	srvB = netsim.NewNode(sim, "srvB", netsim.MustAddr("10.0.0.3"))
	gw.Forwarding = true
	lc := netsim.Connect(sim, client, gw, netsim.LinkConfig{Bandwidth: 10_000_000})
	la := netsim.Connect(sim, gw, srvA, netsim.LinkConfig{Bandwidth: 100_000_000})
	lb := netsim.Connect(sim, gw, srvB, netsim.LinkConfig{Bandwidth: 100_000_000})
	client.SetDefaultRoute(lc.Ifaces()[0])
	gw.AddRoute(client.Addr, lc.Ifaces()[1])
	gw.AddRoute(srvA.Addr, la.Ifaces()[0])
	gw.AddRoute(srvB.Addr, lb.Ifaces()[0])
	srvA.SetDefaultRoute(la.Ifaces()[1])
	srvB.SetDefaultRoute(lb.Ifaces()[1])
	return sim, client, gw, srvA, srvB
}

const balancer = `
channel network(ps : int, ss : (host) hash_table, p : ip*tcp*blob)
initstate mkTable(64) is
  if tcpDst(#2 p) = 80 then
    let
      val key : host*int = (ipSrc(#1 p), tcpSrc(#2 p))
      val srv : host =
        if tmem(ss, key) then tget(ss, key)
        else if ps mod 2 = 0 then 10.0.0.2 else 10.0.0.3
    in
      (tput(ss, key, srv);
       OnRemote(network, (ipDestSet(#1 p, srv), #2 p, #3 p));
       (ps + 1, ss))
    end
  else
    (OnRemote(network, p); (ps, ss))
`

func TestGatewayEndToEnd(t *testing.T) {
	for _, eng := range []EngineKind{EngineInterp, EngineBytecode, EngineJIT} {
		t.Run(string(eng), func(t *testing.T) {
			sim, client, gw, srvA, srvB := topo(t)
			rt, err := Download(gw, balancer, Config{Engine: eng, Verify: VerifySingleNode})
			if err != nil {
				t.Fatalf("download: %v", err)
			}
			var gotA, gotB int
			srvA.BindTCP(80, func(*netsim.Packet) { gotA++ })
			srvB.BindTCP(80, func(*netsim.Packet) { gotB++ })

			for i := 0; i < 10; i++ {
				pkt := netsim.NewTCP(client.Addr, netsim.MustAddr("10.0.0.99"), uint16(5000+i), 80, 0, netsim.FlagSyn, []byte("GET /index.html"))
				client.Send(pkt)
			}
			sim.Run()
			if gotA != 5 || gotB != 5 {
				t.Errorf("distribution A=%d B=%d, want 5/5", gotA, gotB)
			}
			if rt.Stats().Processed != 10 {
				t.Errorf("runtime processed %d, want 10", rt.Stats().Processed)
			}
			if got := rt.Instance().Proto.AsInt(); got != 10 {
				t.Errorf("protocol state = %d, want 10", got)
			}
		})
	}
}

func TestStickyConnections(t *testing.T) {
	sim, client, gw, srvA, srvB := topo(t)
	if _, err := Download(gw, balancer, Config{Verify: VerifySingleNode}); err != nil {
		t.Fatal(err)
	}
	var gotA, gotB int
	srvA.BindTCP(80, func(*netsim.Packet) { gotA++ })
	srvB.BindTCP(80, func(*netsim.Packet) { gotB++ })
	// Five packets on ONE connection (same src port) must hit one server.
	for i := 0; i < 5; i++ {
		client.Send(netsim.NewTCP(client.Addr, netsim.MustAddr("10.0.0.99"), 5000, 80, uint32(i), netsim.FlagAck, []byte("segment")))
	}
	sim.Run()
	if gotA != 5 || gotB != 0 {
		t.Errorf("sticky routing broken: A=%d B=%d, want 5/0", gotA, gotB)
	}
}

func TestSingleNodeInstallLimit(t *testing.T) {
	_, _, gw, srvA, _ := topo(t)
	p, err := Load(balancer, Config{Verify: VerifySingleNode})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Install(gw, p, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := Install(srvA, p, nil); err == nil {
		t.Error("second install of single-node program must fail")
	}
}

func TestNetworkVerifyRejectsGateway(t *testing.T) {
	_, err := Load(balancer, Config{Verify: VerifyNetwork})
	if err == nil {
		t.Fatal("network-wide verification must reject the rewriting gateway")
	}
	if !strings.Contains(err.Error(), "rejected by late checking") {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestPrivilegedDownloadBypassesRejection(t *testing.T) {
	_, _, gw, _, _ := topo(t)
	rt, err := Download(gw, balancer, Config{Verify: VerifyPrivileged})
	if err != nil {
		t.Fatalf("privileged download failed: %v", err)
	}
	if rt.Program().Verify.AllOK() {
		t.Error("verification results should still record the failure")
	}
}

func TestDeliverAndPrintln(t *testing.T) {
	sim := netsim.NewSimulator(1)
	a := netsim.NewNode(sim, "a", netsim.MustAddr("10.0.0.1"))
	b := netsim.NewNode(sim, "b", netsim.MustAddr("10.0.0.2"))
	l := netsim.Connect(sim, a, b, netsim.LinkConfig{Bandwidth: 10_000_000})
	a.SetDefaultRoute(l.Ifaces()[0])
	b.SetDefaultRoute(l.Ifaces()[1])

	var out bytes.Buffer
	src := `
channel network(ps : int, ss : unit, p : ip*udp*blob)
is
  (println("seen " ^ itos(blobLen(#3 p)) ^ "B from " ^ hostToString(ipSrc(#1 p)));
   deliver(p);
   (ps + 1, ss))
`
	if _, err := Download(b, src, Config{Output: &out, Verify: VerifyNetwork}); err != nil {
		t.Fatal(err)
	}
	got := 0
	b.BindUDP(9, func(*netsim.Packet) { got++ })
	a.Send(netsim.NewUDP(a.Addr, b.Addr, 1, 9, []byte("hello")))
	sim.Run()
	if got != 1 {
		t.Fatalf("app deliveries = %d, want 1", got)
	}
	if want := "seen 5B from 10.0.0.1\n"; out.String() != want {
		t.Errorf("output %q, want %q", out.String(), want)
	}
}

func TestOnRemoteToSelfDeliversLocally(t *testing.T) {
	sim := netsim.NewSimulator(1)
	a := netsim.NewNode(sim, "a", netsim.MustAddr("10.0.0.1"))
	b := netsim.NewNode(sim, "b", netsim.MustAddr("10.0.0.2"))
	l := netsim.Connect(sim, a, b, netsim.LinkConfig{Bandwidth: 10_000_000})
	a.SetDefaultRoute(l.Ifaces()[0])
	b.SetDefaultRoute(l.Ifaces()[1])
	// b redirects everything to itself: must deliver, not loop.
	src := `
channel network(ps : unit, ss : unit, p : ip*udp*blob)
is
  (OnRemote(network, (ipDestSet(#1 p, thisHost()), #2 p, #3 p)); (ps, ss))
`
	rt, err := Download(b, src, Config{Verify: VerifyNetwork})
	if err != nil {
		t.Fatal(err)
	}
	got := 0
	b.BindUDP(9, func(*netsim.Packet) { got++ })
	a.Send(netsim.NewUDP(a.Addr, b.Addr, 1, 9, []byte("x")))
	sim.Run()
	if got != 1 {
		t.Errorf("deliveries = %d, want 1", got)
	}
	if rt.Stats().SentLocal != 1 || rt.Stats().SentRemote != 0 {
		t.Errorf("stats local=%d remote=%d, want 1/0", rt.Stats().SentLocal, rt.Stats().SentRemote)
	}
}

func TestChannelTagDispatch(t *testing.T) {
	// A tagged send is processed by the named channel at the next hop.
	sim := netsim.NewSimulator(1)
	a := netsim.NewNode(sim, "a", netsim.MustAddr("10.0.0.1"))
	b := netsim.NewNode(sim, "b", netsim.MustAddr("10.0.0.2"))
	l := netsim.Connect(sim, a, b, netsim.LinkConfig{Bandwidth: 10_000_000})
	a.SetDefaultRoute(l.Ifaces()[0])
	b.SetDefaultRoute(l.Ifaces()[1])

	srcA := `
channel special(ps : unit, ss : unit, p : ip*udp*blob)
is (deliver(p); (ps, ss))

channel network(ps : unit, ss : unit, p : ip*udp*blob)
is (OnRemote(special, p); (ps, ss))
`
	// a tags packets for channel "special"; b runs the same protocol, so
	// its special channel (which delivers) handles them.
	if _, err := Download(a, srcA, Config{Verify: VerifyNetwork}); err != nil {
		t.Fatal(err)
	}
	rtB, err := Download(b, srcA, Config{Verify: VerifyNetwork})
	if err != nil {
		t.Fatal(err)
	}
	got := 0
	b.BindUDP(9, func(*netsim.Packet) { got++ })

	// Feed a packet THROUGH a's PLAN-P layer by arriving from b.
	bToA := netsim.NewUDP(b.Addr, a.Addr, 1, 9, []byte("z"))
	_ = bToA
	// Simpler: send from a node c... instead directly invoke a's
	// processor via a received packet from the link: use b sending to a
	// won't help (we want a->b tagged). Use a raw packet handed to a's
	// Receive path.
	pkt := netsim.NewUDP(a.Addr, b.Addr, 1, 9, []byte("z"))
	a.Receive(pkt, nil)
	sim.Run()
	if got != 1 {
		t.Fatalf("tagged delivery = %d, want 1", got)
	}
	if rtB.Stats().Processed != 1 {
		t.Errorf("b processed %d, want 1 (tag dispatch)", rtB.Stats().Processed)
	}
}

func TestUnmatchedFallsThrough(t *testing.T) {
	sim, client, gw, srvA, _ := topo(t)
	// Gateway only treats TCP; UDP passes through standard forwarding.
	if _, err := Download(gw, balancer, Config{Verify: VerifySingleNode}); err != nil {
		t.Fatal(err)
	}
	got := 0
	srvA.BindUDP(53, func(*netsim.Packet) { got++ })
	client.Send(netsim.NewUDP(client.Addr, srvA.Addr, 1, 53, []byte("q")))
	sim.Run()
	if got != 1 {
		t.Errorf("UDP fall-through deliveries = %d, want 1", got)
	}
}

func TestLoadUnknownEngine(t *testing.T) {
	if _, err := Load(balancer, Config{Engine: "llvm", Verify: VerifySingleNode}); err == nil {
		t.Error("unknown engine must fail")
	}
}
