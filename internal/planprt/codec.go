// Packet codec: conversion between simulator packets and the typed
// packet tuples channel functions receive. Decoding implements the
// dispatch rule of §2/§2.3 — a packet matches a channel iff its headers
// and payload decode under the channel's declared packet type — which is
// what makes overloaded channels work on untagged traffic.
//
// Payload component encodings:
//
//	char   1 byte
//	bool   1 byte (0 or 1; anything else fails to decode)
//	int    4 bytes big-endian two's complement
//	host   4 bytes big-endian
//	string 2-byte big-endian length prefix + bytes
//	blob   all remaining bytes (only legal in final position)
//
// A packet matches only if the payload is consumed exactly (strict
// decoding), so overloads with different scalar shapes are disjoint.
package planprt

import (
	"fmt"

	"planp.dev/planp/internal/lang/ast"
	"planp.dev/planp/internal/lang/value"
	"planp.dev/planp/internal/substrate"
)

// Decode attempts to decode pkt as a value of packet type t. The boolean
// reports whether the packet matches; errors are impossible (mismatch is
// the only failure mode).
func Decode(pkt *substrate.Packet, t ast.Type) (value.Value, bool) {
	tup, ok := t.(ast.Tuple)
	if !ok {
		return value.Unit, false
	}
	elems := make([]value.Value, 0, len(tup.Elems))

	ipLen := substrate.IPHeaderLen + len(pkt.Payload)
	switch {
	case pkt.TCP != nil:
		ipLen += substrate.TCPHeaderLen
	case pkt.UDP != nil:
		ipLen += substrate.UDPHeaderLen
	}
	elems = append(elems, value.IP(&value.IPHeader{
		Src:   value.Host(pkt.IP.Src),
		Dst:   value.Host(pkt.IP.Dst),
		Proto: pkt.IP.Proto,
		TTL:   pkt.IP.TTL,
		Len:   ipLen,
		ID:    pkt.IP.ID,
	}))

	rest := tup.Elems[1:]
	if len(rest) > 0 && ast.Equal(rest[0], ast.TCPT) {
		if pkt.TCP == nil {
			return value.Unit, false
		}
		h := *pkt.TCP
		elems = append(elems, value.TCP(&value.TCPHeader{
			SrcPort: h.SrcPort, DstPort: h.DstPort, Seq: h.Seq, Ack: h.Ack,
			Flags: h.Flags, Window: h.Window,
		}))
		rest = rest[1:]
	} else if len(rest) > 0 && ast.Equal(rest[0], ast.UDPT) {
		if pkt.UDP == nil {
			return value.Unit, false
		}
		h := *pkt.UDP
		elems = append(elems, value.UDP(&value.UDPHeader{
			SrcPort: h.SrcPort, DstPort: h.DstPort, Len: substrate.UDPHeaderLen + len(pkt.Payload),
		}))
		rest = rest[1:]
	}

	buf := pkt.Payload
	for i, et := range rest {
		base, ok := et.(ast.Base)
		if !ok {
			return value.Unit, false
		}
		switch base.Kind {
		case ast.TBlob:
			if i != len(rest)-1 {
				return value.Unit, false
			}
			elems = append(elems, value.Blob(buf))
			buf = nil
		case ast.TChar:
			if len(buf) < 1 {
				return value.Unit, false
			}
			elems = append(elems, value.Char(buf[0]))
			buf = buf[1:]
		case ast.TBool:
			if len(buf) < 1 || buf[0] > 1 {
				return value.Unit, false
			}
			elems = append(elems, value.Bool(buf[0] == 1))
			buf = buf[1:]
		case ast.TInt:
			if len(buf) < 4 {
				return value.Unit, false
			}
			v := int32(uint32(buf[0])<<24 | uint32(buf[1])<<16 | uint32(buf[2])<<8 | uint32(buf[3]))
			elems = append(elems, value.Int(int64(v)))
			buf = buf[4:]
		case ast.THost:
			if len(buf) < 4 {
				return value.Unit, false
			}
			h := value.Host(uint32(buf[0])<<24 | uint32(buf[1])<<16 | uint32(buf[2])<<8 | uint32(buf[3]))
			elems = append(elems, value.HostV(h))
			buf = buf[4:]
		case ast.TString:
			if len(buf) < 2 {
				return value.Unit, false
			}
			n := int(buf[0])<<8 | int(buf[1])
			if len(buf) < 2+n {
				return value.Unit, false
			}
			elems = append(elems, value.Str(string(buf[2:2+n])))
			buf = buf[2+n:]
		default:
			return value.Unit, false
		}
	}
	if len(buf) != 0 {
		return value.Unit, false // strict: payload must be consumed
	}
	return value.TupleV(elems...), true
}

// Encode converts a packet tuple value back to a simulator packet. The
// value must have been produced by Decode or constructed under a packet
// type the checker validated; malformed shapes return an error (engine
// bug or adversarial program, never silent corruption).
func Encode(v value.Value) (*substrate.Packet, error) {
	if v.Kind != value.KindTuple || len(v.Vs) == 0 {
		return nil, fmt.Errorf("planprt: packet value must be a tuple, got %s", v.Kind)
	}
	if v.Vs[0].Kind != value.KindIP {
		return nil, fmt.Errorf("planprt: packet tuple must start with an ip header, got %s", v.Vs[0].Kind)
	}
	iph := v.Vs[0].AsIP()
	pkt := &substrate.Packet{IP: substrate.IPHeader{
		Src:   substrate.Addr(iph.Src),
		Dst:   substrate.Addr(iph.Dst),
		Proto: iph.Proto,
		TTL:   iph.TTL,
		ID:    iph.ID,
	}}

	rest := v.Vs[1:]
	if len(rest) > 0 && rest[0].Kind == value.KindTCP {
		h := rest[0].AsTCP()
		pkt.TCP = &substrate.TCPHeader{
			SrcPort: h.SrcPort, DstPort: h.DstPort, Seq: h.Seq, Ack: h.Ack,
			Flags: h.Flags, Window: h.Window,
		}
		pkt.IP.Proto = substrate.ProtoTCP
		rest = rest[1:]
	} else if len(rest) > 0 && rest[0].Kind == value.KindUDP {
		h := rest[0].AsUDP()
		pkt.UDP = &substrate.UDPHeader{SrcPort: h.SrcPort, DstPort: h.DstPort}
		pkt.IP.Proto = substrate.ProtoUDP
		rest = rest[1:]
	}

	var buf []byte
	for _, ev := range rest {
		switch ev.Kind {
		case value.KindBlob:
			buf = append(buf, ev.AsBlob()...)
		case value.KindChar:
			buf = append(buf, ev.AsChar())
		case value.KindBool:
			b := byte(0)
			if ev.AsBool() {
				b = 1
			}
			buf = append(buf, b)
		case value.KindInt:
			u := uint32(int32(ev.AsInt()))
			buf = append(buf, byte(u>>24), byte(u>>16), byte(u>>8), byte(u))
		case value.KindHost:
			u := uint32(ev.AsHost())
			buf = append(buf, byte(u>>24), byte(u>>16), byte(u>>8), byte(u))
		case value.KindString:
			s := ev.AsStr()
			if len(s) > 0xFFFF {
				return nil, fmt.Errorf("planprt: string payload component exceeds 64KiB")
			}
			buf = append(buf, byte(len(s)>>8), byte(len(s)))
			buf = append(buf, s...)
		default:
			return nil, fmt.Errorf("planprt: %s is not encodable as a payload component", ev.Kind)
		}
	}
	pkt.Payload = buf
	// The encoded packet is freshly built and referenced only by the
	// caller, so downstream routers may forward it in place.
	pkt.Own()
	return pkt, nil
}
