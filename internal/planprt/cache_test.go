package planprt

import (
	"sync"
	"testing"

	"planp.dev/planp/internal/netsim"
)

func TestCacheSharesArtifactsAcrossLoads(t *testing.T) {
	ResetCache()
	cfg := Config{Engine: EngineBytecode, Verify: VerifySingleNode}
	p1, err := Load(balancer, cfg)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Load(balancer, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if hits, misses := CacheStats(); hits != 1 || misses != 1 {
		t.Errorf("cache stats = (%d hits, %d misses), want (1, 1)", hits, misses)
	}
	if p1 == p2 {
		t.Error("Load must return a fresh *Program per call")
	}
	if p1.Compiled != p2.Compiled {
		t.Error("cached Load should share a Shareable compiled artifact")
	}
	if p1.Info != p2.Info {
		t.Error("cached Load should share the typechecked Info")
	}
	if p1.Verify != p2.Verify {
		t.Error("cached Load should share the verification result")
	}
}

// TestCacheRecompilesUnshareableArtifacts pins the JIT case: its
// closures keep per-call-site buffers, so a cache hit must hand out a
// fresh artifact (front-end still shared) rather than one that other
// goroutines may be running.
func TestCacheRecompilesUnshareableArtifacts(t *testing.T) {
	ResetCache()
	cfg := Config{Engine: EngineJIT, Verify: VerifySingleNode}
	p1, err := Load(balancer, cfg)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Load(balancer, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if hits, _ := CacheStats(); hits != 1 {
		t.Errorf("second load should hit the cache, got %d hits", hits)
	}
	if p1.Compiled == p2.Compiled {
		t.Error("JIT artifacts must not be shared across loads")
	}
	if p1.Info != p2.Info {
		t.Error("the front-end (Info) should still be shared")
	}
}

func TestCacheKeyDiscriminatesEngineAndPolicy(t *testing.T) {
	ResetCache()
	if _, err := Load(balancer, Config{Engine: EngineJIT, Verify: VerifySingleNode}); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(balancer, Config{Engine: EngineBytecode, Verify: VerifySingleNode}); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(balancer, Config{Engine: EngineJIT, Verify: VerifyPrivileged}); err != nil {
		t.Fatal(err)
	}
	if hits, misses := CacheStats(); hits != 0 || misses != 3 {
		t.Errorf("cache stats = (%d hits, %d misses), want (0, 3): engine and policy must be part of the key", hits, misses)
	}
}

func TestCacheNoCacheBypasses(t *testing.T) {
	ResetCache()
	cfg := Config{Engine: EngineJIT, Verify: VerifySingleNode, NoCache: true}
	for i := 0; i < 2; i++ {
		if _, err := Load(balancer, cfg); err != nil {
			t.Fatal(err)
		}
	}
	if hits, misses := CacheStats(); hits != 0 || misses != 0 {
		t.Errorf("cache stats = (%d hits, %d misses), want (0, 0) with NoCache", hits, misses)
	}
}

// TestCachedLoadKeepsSingleNodeLimitPerLoad pins that install accounting
// is per *Program*: a second Load (cache hit) of a single-node program
// starts at zero installs, so each load may be installed once.
func TestCachedLoadKeepsSingleNodeLimitPerLoad(t *testing.T) {
	ResetCache()
	cfg := Config{Verify: VerifySingleNode}
	_, _, gw1, srv1, _ := topo(t)
	p1, err := Load(balancer, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Install(gw1, p1, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := Install(srv1, p1, nil); err == nil {
		t.Fatal("second install of the same loaded program must fail")
	}
	p2, err := Load(balancer, cfg) // cache hit
	if err != nil {
		t.Fatal(err)
	}
	_, _, gw2, _, _ := topo(t)
	if _, err := Install(gw2, p2, nil); err != nil {
		t.Errorf("cached re-load should start with zero installs: %v", err)
	}
}

// TestCachedRedownloadRebindsFreshCounters pins the invariant that a
// re-download via a cache hit still gets fresh per-node "asp.<node>.*"
// counters and fresh protocol state: caching the compiled artifact must
// not leak runtime state between installations.
func TestCachedRedownloadRebindsFreshCounters(t *testing.T) {
	ResetCache()
	cfg := Config{Verify: VerifySingleNode}
	run := func() (processed int64, state int64) {
		sim, client, gw, srvA, srvB := topo(t)
		rt, err := Download(gw, balancer, cfg)
		if err != nil {
			t.Fatal(err)
		}
		srvA.BindTCP(80, func(*netsim.Packet) {})
		srvB.BindTCP(80, func(*netsim.Packet) {})
		for i := 0; i < 6; i++ {
			client.Send(netsim.NewTCP(client.Addr, netsim.MustAddr("10.0.0.99"), uint16(5000+i), 80, 0, netsim.FlagSyn, []byte("GET /")))
		}
		sim.Run()
		return rt.Stats().Processed, rt.Instance().Proto.AsInt()
	}
	run()
	processed, state := run() // second run downloads via a cache hit
	if hits, _ := CacheStats(); hits == 0 {
		t.Fatal("second download did not hit the cache")
	}
	if processed != 6 {
		t.Errorf("re-download processed %d, want 6 (counters must rebind fresh)", processed)
	}
	if state != 6 {
		t.Errorf("re-download protocol state = %d, want 6 (state must not carry over)", state)
	}
}

func TestCacheConcurrentLoads(t *testing.T) {
	ResetCache()
	cfg := Config{Engine: EngineJIT, Verify: VerifySingleNode}
	var wg sync.WaitGroup
	progs := make([]*Program, 8)
	for i := range progs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p, err := Load(balancer, cfg)
			if err != nil {
				t.Error(err)
				return
			}
			progs[i] = p
		}(i)
	}
	wg.Wait()
	// All loads that hit the cache share the first stored artifact set.
	if _, misses := CacheStats(); misses == 0 {
		t.Error("at least one load should have compiled")
	}
	for _, p := range progs {
		if p == nil || p.Compiled == nil {
			t.Fatal("concurrent load returned nil program")
		}
	}
}
