package planprt

import (
	"testing"

	"planp.dev/planp/internal/netsim"
)

const forwarder = `
channel network(ps : int, ss : unit, p : ip*udp*blob) is
  (OnRemote(network, p); (ps + 1, ss))
`

func chain(t *testing.T) (*netsim.Simulator, []*netsim.Node) {
	t.Helper()
	sim := netsim.NewSimulator(1)
	var nodes []*netsim.Node
	for i, name := range []string{"a", "r1", "r2", "b"} {
		n := netsim.NewNode(sim, name, netsim.Addr(0x0A000001+uint32(i)))
		if name[0] == 'r' {
			n.Forwarding = true
		}
		nodes = append(nodes, n)
	}
	for i := 0; i < 3; i++ {
		l := netsim.Connect(sim, nodes[i], nodes[i+1], netsim.LinkConfig{Bandwidth: 10_000_000})
		nodes[i].AddRoute(nodes[3].Addr, l.Ifaces()[0])
		nodes[i+1].AddRoute(nodes[0].Addr, l.Ifaces()[1])
		if i == 0 {
			nodes[i].SetDefaultRoute(l.Ifaces()[0])
		}
	}
	nodes[1].AddRoute(nodes[3].Addr, nodes[1].Ifaces()[1])
	nodes[2].AddRoute(nodes[3].Addr, nodes[2].Ifaces()[1])
	nodes[3].SetDefaultRoute(nodes[3].Ifaces()[0])
	return sim, nodes
}

func TestDeployAcrossRouters(t *testing.T) {
	sim, nodes := chain(t)
	p, err := Load(forwarder, Config{})
	if err != nil {
		t.Fatal(err)
	}
	d, err := Deploy(p, nil, nodes[1], nodes[2])
	if err != nil {
		t.Fatal(err)
	}
	got := 0
	nodes[3].BindUDP(9, func(*netsim.Packet) { got++ })
	for i := 0; i < 4; i++ {
		nodes[0].Send(netsim.NewUDP(nodes[0].Addr, nodes[3].Addr, 1, 9, []byte("x")))
	}
	sim.Run()
	if got != 4 {
		t.Fatalf("delivered %d, want 4", got)
	}
	total := d.TotalStats()
	if total.Processed != 8 { // 4 packets x 2 routers
		t.Errorf("deployment processed %d, want 8", total.Processed)
	}
	// Each runtime has independent state.
	for i, rt := range d.Runtimes() {
		if got := rt.Instance().Proto.AsInt(); got != 4 {
			t.Errorf("router %d state = %d, want 4", i, got)
		}
	}

	d.Undeploy()
	if nodes[1].Processor != nil || nodes[2].Processor != nil {
		t.Error("undeploy left processors installed")
	}
	// Traffic still flows via standard forwarding after withdrawal.
	nodes[0].Send(netsim.NewUDP(nodes[0].Addr, nodes[3].Addr, 1, 9, []byte("y")))
	sim.Run()
	if got != 5 {
		t.Errorf("post-undeploy delivery failed: %d", got)
	}
}

func TestDeployRollsBackOnConflict(t *testing.T) {
	_, nodes := chain(t)
	p, err := Load(forwarder, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Occupy r2 with another protocol.
	if _, err := Download(nodes[2], forwarder, Config{}); err != nil {
		t.Fatal(err)
	}
	occupied := nodes[2].Processor
	if _, err := Deploy(p, nil, nodes[1], nodes[2]); err == nil {
		t.Fatal("deploy over an occupied node must fail")
	}
	if nodes[1].Processor != nil {
		t.Error("failed deploy left a runtime on r1 (no rollback)")
	}
	if nodes[2].Processor != occupied {
		t.Error("failed deploy disturbed the existing protocol on r2")
	}
}

func TestDeploySingleNodeProgramRefusesFanOut(t *testing.T) {
	_, nodes := chain(t)
	p, err := Load(`
channel network(ps : int, ss : unit, p : ip*tcp*blob) is
  (OnRemote(network, (ipDestSet(#1 p, 10.0.0.99), #2 p, #3 p)); (ps, ss))
`, Config{Verify: VerifySingleNode})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Deploy(p, nil, nodes[1], nodes[2]); err == nil {
		t.Fatal("single-node program must not deploy to two nodes")
	}
	if nodes[1].Processor != nil || nodes[2].Processor != nil {
		t.Error("rollback failed")
	}
	// One node is fine.
	if _, err := Deploy(p, nil, nodes[1]); err != nil {
		t.Fatal(err)
	}
}

func TestDeployEmptyNodeSet(t *testing.T) {
	p, err := Load(forwarder, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Deploy(p, nil); err == nil {
		t.Error("empty deployment should fail")
	}
}

func TestUninstallIdempotent(t *testing.T) {
	_, nodes := chain(t)
	rt, err := Download(nodes[1], forwarder, Config{})
	if err != nil {
		t.Fatal(err)
	}
	rt.Uninstall()
	rt.Uninstall()
	if nodes[1].Processor != nil {
		t.Error("uninstall failed")
	}
	// Reinstalling a single-node program after uninstall works (the
	// install count was released).
	p, err := Load(`
channel network(ps : int, ss : unit, p : ip*tcp*blob) is
  (OnRemote(network, (ipDestSet(#1 p, 10.0.0.99), #2 p, #3 p)); (ps, ss))
`, Config{Verify: VerifySingleNode})
	if err != nil {
		t.Fatal(err)
	}
	rt2, err := Install(nodes[1], p, nil)
	if err != nil {
		t.Fatal(err)
	}
	rt2.Uninstall()
	if _, err := Install(nodes[2], p, nil); err != nil {
		t.Errorf("reinstall after uninstall should succeed: %v", err)
	}
}
