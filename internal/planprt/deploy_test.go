package planprt

import (
	"testing"

	"planp.dev/planp/internal/netsim"
)

const forwarder = `
channel network(ps : int, ss : unit, p : ip*udp*blob) is
  (OnRemote(network, p); (ps + 1, ss))
`

func chain(t *testing.T) (*netsim.Simulator, []*netsim.Node) {
	t.Helper()
	sim := netsim.NewSimulator(1)
	var nodes []*netsim.Node
	for i, name := range []string{"a", "r1", "r2", "b"} {
		n := netsim.NewNode(sim, name, netsim.Addr(0x0A000001+uint32(i)))
		if name[0] == 'r' {
			n.Forwarding = true
		}
		nodes = append(nodes, n)
	}
	for i := 0; i < 3; i++ {
		l := netsim.Connect(sim, nodes[i], nodes[i+1], netsim.LinkConfig{Bandwidth: 10_000_000})
		nodes[i].AddRoute(nodes[3].Addr, l.Ifaces()[0])
		nodes[i+1].AddRoute(nodes[0].Addr, l.Ifaces()[1])
		if i == 0 {
			nodes[i].SetDefaultRoute(l.Ifaces()[0])
		}
	}
	nodes[1].AddRoute(nodes[3].Addr, nodes[1].Ifaces()[1])
	nodes[2].AddRoute(nodes[3].Addr, nodes[2].Ifaces()[1])
	nodes[3].SetDefaultRoute(nodes[3].Ifaces()[0])
	return sim, nodes
}

func TestDeployAcrossRouters(t *testing.T) {
	sim, nodes := chain(t)
	p, err := Load(forwarder, Config{})
	if err != nil {
		t.Fatal(err)
	}
	d, err := Deploy(p, nil, nodes[1], nodes[2])
	if err != nil {
		t.Fatal(err)
	}
	got := 0
	nodes[3].BindUDP(9, func(*netsim.Packet) { got++ })
	for i := 0; i < 4; i++ {
		nodes[0].Send(netsim.NewUDP(nodes[0].Addr, nodes[3].Addr, 1, 9, []byte("x")))
	}
	sim.Run()
	if got != 4 {
		t.Fatalf("delivered %d, want 4", got)
	}
	total := d.TotalStats()
	if total.Processed != 8 { // 4 packets x 2 routers
		t.Errorf("deployment processed %d, want 8", total.Processed)
	}
	// Each runtime has independent state.
	for i, rt := range d.Runtimes() {
		if got := rt.Instance().Proto.AsInt(); got != 4 {
			t.Errorf("router %d state = %d, want 4", i, got)
		}
	}

	d.Undeploy()
	if nodes[1].Processor != nil || nodes[2].Processor != nil {
		t.Error("undeploy left processors installed")
	}
	// Traffic still flows via standard forwarding after withdrawal.
	nodes[0].Send(netsim.NewUDP(nodes[0].Addr, nodes[3].Addr, 1, 9, []byte("y")))
	sim.Run()
	if got != 5 {
		t.Errorf("post-undeploy delivery failed: %d", got)
	}
}

func TestDeployRollsBackOnConflict(t *testing.T) {
	_, nodes := chain(t)
	p, err := Load(forwarder, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Occupy r2 with another protocol.
	if _, err := Download(nodes[2], forwarder, Config{}); err != nil {
		t.Fatal(err)
	}
	occupied := nodes[2].Processor
	if _, err := Deploy(p, nil, nodes[1], nodes[2]); err == nil {
		t.Fatal("deploy over an occupied node must fail")
	}
	if nodes[1].Processor != nil {
		t.Error("failed deploy left a runtime on r1 (no rollback)")
	}
	if nodes[2].Processor != occupied {
		t.Error("failed deploy disturbed the existing protocol on r2")
	}
}

// TestDeployRollsBackOnMidListConflict: the occupied node sits in the
// MIDDLE of the node list, so the deployment has already installed on
// earlier nodes and has later nodes still pending when it hits the
// conflict. Rollback must release every install — the program's install
// accounting returns to zero and no runtime remains anywhere.
func TestDeployRollsBackOnMidListConflict(t *testing.T) {
	_, nodes := chain(t)
	p, err := Load(forwarder, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Occupy r2, then deploy across a, r1, r2, b: two installs succeed
	// before the conflict, one node never gets reached.
	occupiedRT, err := Download(nodes[2], forwarder, Config{})
	if err != nil {
		t.Fatal(err)
	}
	occupied := nodes[2].Processor
	if _, err := Deploy(p, nil, nodes[0], nodes[1], nodes[2], nodes[3]); err == nil {
		t.Fatal("deploy over a mid-list occupied node must fail")
	}
	for _, i := range []int{0, 1, 3} {
		if nodes[i].Processor != nil {
			t.Errorf("rollback left a runtime on %s", nodes[i].Hostname())
		}
	}
	if nodes[2].Processor != occupied {
		t.Error("failed deploy disturbed the occupying protocol")
	}
	if got := p.Installs(); got != 0 {
		t.Errorf("program still accounts %d installs after rollback, want 0", got)
	}
	// The released install slots are reusable: the same program deploys
	// cleanly once the conflict is gone.
	occupiedRT.Uninstall()
	d, err := Deploy(p, nil, nodes[0], nodes[1], nodes[2], nodes[3])
	if err != nil {
		t.Fatalf("redeploy after rollback: %v", err)
	}
	if got := p.Installs(); got != 4 {
		t.Errorf("program accounts %d installs, want 4", got)
	}
	d.Undeploy()
	if got := p.Installs(); got != 0 {
		t.Errorf("undeploy left %d installs accounted", got)
	}
}

func TestDeploySingleNodeProgramRefusesFanOut(t *testing.T) {
	_, nodes := chain(t)
	p, err := Load(`
channel network(ps : int, ss : unit, p : ip*tcp*blob) is
  (OnRemote(network, (ipDestSet(#1 p, 10.0.0.99), #2 p, #3 p)); (ps, ss))
`, Config{Verify: VerifySingleNode})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Deploy(p, nil, nodes[1], nodes[2]); err == nil {
		t.Fatal("single-node program must not deploy to two nodes")
	}
	if nodes[1].Processor != nil || nodes[2].Processor != nil {
		t.Error("rollback failed")
	}
	// The rejected fan-out released its install slot: the single-node
	// accounting is back to zero, so one node is fine.
	if got := p.Installs(); got != 0 {
		t.Fatalf("program accounts %d installs after refused fan-out, want 0", got)
	}
	if _, err := Deploy(p, nil, nodes[1]); err != nil {
		t.Fatal(err)
	}
}

func TestDeployEmptyNodeSet(t *testing.T) {
	p, err := Load(forwarder, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Deploy(p, nil); err == nil {
		t.Error("empty deployment should fail")
	}
}

func TestUninstallIdempotent(t *testing.T) {
	_, nodes := chain(t)
	rt, err := Download(nodes[1], forwarder, Config{})
	if err != nil {
		t.Fatal(err)
	}
	rt.Uninstall()
	rt.Uninstall()
	if nodes[1].Processor != nil {
		t.Error("uninstall failed")
	}
	// Reinstalling a single-node program after uninstall works (the
	// install count was released).
	p, err := Load(`
channel network(ps : int, ss : unit, p : ip*tcp*blob) is
  (OnRemote(network, (ipDestSet(#1 p, 10.0.0.99), #2 p, #3 p)); (ps, ss))
`, Config{Verify: VerifySingleNode})
	if err != nil {
		t.Fatal(err)
	}
	rt2, err := Install(nodes[1], p, nil)
	if err != nil {
		t.Fatal(err)
	}
	rt2.Uninstall()
	if _, err := Install(nodes[2], p, nil); err != nil {
		t.Errorf("reinstall after uninstall should succeed: %v", err)
	}
}
