package planprt

import (
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// TestRuntimeIsBackendNeutral enforces the substrate split: the ASP
// runtime must talk to internal/substrate only, never to a concrete
// backend. A netsim (or rtnet) import creeping back in would silently
// re-couple the runtime to one execution substrate.
func TestRuntimeIsBackendNeutral(t *testing.T) {
	forbidden := []string{
		"planp.dev/planp/internal/netsim",
		"planp.dev/planp/internal/rtnet",
	}
	entries, err := os.ReadDir(".")
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ImportsOnly)
		if err != nil {
			t.Fatalf("parsing %s: %v", name, err)
		}
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				t.Fatalf("%s: bad import literal %s", name, imp.Path.Value)
			}
			for _, bad := range forbidden {
				if path == bad || strings.HasPrefix(path, bad+"/") {
					t.Errorf("%s imports %s: planprt must depend on internal/substrate only",
						filepath.Base(name), path)
				}
			}
		}
	}
}
