// Compiled-program cache: downloading the same protocol source to many
// nodes (the common case — figure 7's grid re-installs the audio ASP on
// every router, figure 8 installs the gateway per variant) repeats the
// parse/check/verify/compile pipeline on identical input. The pipeline
// is deterministic for a given (source, engine, verify policy), so Load
// memoizes its result keyed by the source's SHA-256.
//
// Only the immutable artifacts are shared: the typechecked Info, the
// engine.Compiled program, and the verification result. Every Load still
// returns a FRESH *Program (installs = 0), so the single-node deployment
// limit applies per load, and every Install still creates its own
// engine instance and rebinds fresh per-node "asp.<node>.*" counters —
// caching is invisible to protocol state.
//
// The cache is guarded by a mutex because the parallel experiment
// driver loads programs from several goroutines at once.
package planprt

import (
	"crypto/sha256"
	"sync"
	"time"

	"planp.dev/planp/internal/lang/engine"
	"planp.dev/planp/internal/lang/typecheck"
	"planp.dev/planp/internal/lang/verify"
)

type cacheKey struct {
	src    [sha256.Size]byte
	engine EngineKind
	policy VerifyPolicy
}

type cacheEntry struct {
	info        *typecheck.Info
	compiled    engine.Compiled
	vres        *verify.Result
	codegenTime time.Duration
}

var progCache = struct {
	sync.Mutex
	m      map[cacheKey]*cacheEntry
	hits   int64
	misses int64
}{m: make(map[cacheKey]*cacheEntry)}

// cacheGet returns the memoized pipeline result for key, or nil.
func cacheGet(key cacheKey) *cacheEntry {
	progCache.Lock()
	defer progCache.Unlock()
	e := progCache.m[key]
	if e != nil {
		progCache.hits++
	}
	return e
}

// cachePut memoizes a successful pipeline result. Concurrent loaders may
// race to compile the same source; the first stored entry wins so later
// hits all observe one artifact set.
func cachePut(key cacheKey, e *cacheEntry) {
	progCache.Lock()
	defer progCache.Unlock()
	progCache.misses++
	if _, ok := progCache.m[key]; !ok {
		progCache.m[key] = e
	}
}

// CacheStats reports (hits, misses) since process start or the last
// ResetCache.
func CacheStats() (hits, misses int64) {
	progCache.Lock()
	defer progCache.Unlock()
	return progCache.hits, progCache.misses
}

// ResetCache empties the compiled-program cache and zeroes its counters
// (test isolation; production code never needs it).
func ResetCache() {
	progCache.Lock()
	defer progCache.Unlock()
	progCache.m = make(map[cacheKey]*cacheEntry)
	progCache.hits, progCache.misses = 0, 0
}
