package planprt

import "testing"

// TestSignatureRidesCompileCache pins that the channel-interface
// signature is part of the cached front-end: a cache hit returns the
// identical artifact, not a re-extraction.
func TestSignatureRidesCompileCache(t *testing.T) {
	ResetCache()
	cfg := Config{Engine: EngineBytecode, Verify: VerifySingleNode}
	p1, err := Load(balancer, cfg)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Load(balancer, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if hits, _ := CacheStats(); hits != 1 {
		t.Fatalf("second load should hit the cache, got %d hits", hits)
	}
	s1, s2 := p1.Signature(), p2.Signature()
	if s1 == nil || len(s1.Channels) == 0 {
		t.Fatal("loaded program has no signature")
	}
	if s1 != s2 {
		t.Error("cache hit must share the extracted signature, not rebuild it")
	}
	for _, ch := range s1.Channels {
		if ch.Packet == "" || !ch.Pos.IsValid() {
			t.Errorf("channel %s: incomplete signature entry %+v", ch.Name, ch)
		}
	}
}

// BenchmarkLoadSignature gates the cost of signature extraction on the
// hot path: a cached Load plus a Signature access. Extraction happens
// once at compile time, so this must run at the same speed as a plain
// cached Load (pointer reads only).
func BenchmarkLoadSignature(b *testing.B) {
	ResetCache()
	cfg := Config{Engine: EngineBytecode, Verify: VerifySingleNode}
	if _, err := Load(balancer, cfg); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := Load(balancer, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if sig := p.Signature(); sig == nil || len(sig.Channels) == 0 {
			b.Fatal("missing signature on cached load")
		}
	}
}
