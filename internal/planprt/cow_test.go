package planprt

import (
	"bytes"
	"testing"

	"planp.dev/planp/internal/netsim"
)

// TestGatewayRewriteDoesNotMutateSharedPayload pins the copy-on-write
// packet contract end to end: Clone shares payload bytes, so a
// rewriting ASP (the balancer rewrites the destination address on every
// request) must never be observable through the original packet. All
// requests here deliberately share ONE payload slice — any in-place
// write on any hop would corrupt every other packet in flight.
func TestGatewayRewriteDoesNotMutateSharedPayload(t *testing.T) {
	sim, client, gw, srvA, srvB := topo(t)
	if _, err := Download(gw, balancer, Config{Verify: VerifySingleNode}); err != nil {
		t.Fatal(err)
	}
	shared := []byte("GET /index.html HTTP/1.0")
	want := append([]byte(nil), shared...)

	var delivered []*netsim.Packet
	keep := func(p *netsim.Packet) { delivered = append(delivered, p) }
	srvA.BindTCP(80, keep)
	srvB.BindTCP(80, keep)

	var sent []*netsim.Packet
	for i := 0; i < 8; i++ {
		pkt := netsim.NewTCP(client.Addr, netsim.MustAddr("10.0.0.99"), uint16(5000+i), 80, 0, netsim.FlagSyn, shared)
		sent = append(sent, pkt)
		client.Send(pkt)
	}
	sim.Run()

	if len(delivered) != 8 {
		t.Fatalf("delivered %d of 8", len(delivered))
	}
	if !bytes.Equal(shared, want) {
		t.Fatalf("shared payload mutated in place: %q", shared)
	}
	for i, p := range sent {
		if p.IP.Dst != netsim.MustAddr("10.0.0.99") {
			t.Errorf("sent[%d] destination rewritten in place: %s", i, p.IP.Dst)
		}
		if !bytes.Equal(p.Payload, want) {
			t.Errorf("sent[%d] payload mutated: %q", i, p.Payload)
		}
	}
	for i, p := range delivered {
		if !bytes.Equal(p.Payload, want) {
			t.Errorf("delivered[%d] payload wrong: %q", i, p.Payload)
		}
		if p.IP.Dst != srvA.Addr && p.IP.Dst != srvB.Addr {
			t.Errorf("delivered[%d] not rewritten: %s", i, p.IP.Dst)
		}
	}
}
