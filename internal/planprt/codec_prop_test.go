package planprt

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"

	"planp.dev/planp/internal/lang/ast"
	"planp.dev/planp/internal/lang/value"
	"planp.dev/planp/internal/substrate"
)

// randTupleType draws a random packet type: ip header, optional
// transport header, scalar components, optional trailing blob.
func randTupleType(rng *rand.Rand) ast.Tuple {
	elems := []ast.Type{ast.IPT}
	switch rng.Intn(3) {
	case 0:
		elems = append(elems, ast.TCPT)
	case 1:
		elems = append(elems, ast.UDPT)
	}
	scalars := []ast.Type{ast.IntT, ast.BoolT, ast.CharT, ast.HostT, ast.StringT}
	for n := rng.Intn(5); n > 0; n-- {
		elems = append(elems, scalars[rng.Intn(len(scalars))])
	}
	if rng.Intn(2) == 0 {
		elems = append(elems, ast.BlobT)
	}
	return ast.Tuple{Elems: elems}
}

// randValue draws a random value of type t (t must come from
// randTupleType).
func randValue(rng *rand.Rand, t ast.Tuple) value.Value {
	vs := []value.Value{value.IP(&value.IPHeader{
		Src:   value.Host(rng.Uint32()),
		Dst:   value.Host(rng.Uint32()),
		Proto: uint8(rng.Intn(256)),
		TTL:   uint8(1 + rng.Intn(255)),
		ID:    rng.Uint32(),
	})}
	for _, et := range t.Elems[1:] {
		base := et.(ast.Base)
		switch base.Kind {
		case ast.TTCP:
			vs = append(vs, value.TCP(&value.TCPHeader{
				SrcPort: uint16(rng.Uint32()), DstPort: uint16(rng.Uint32()),
				Seq: rng.Uint32(), Ack: rng.Uint32(),
				Flags: uint8(rng.Intn(256)), Window: uint16(rng.Uint32()),
			}))
		case ast.TUDP:
			vs = append(vs, value.UDP(&value.UDPHeader{
				SrcPort: uint16(rng.Uint32()), DstPort: uint16(rng.Uint32()),
			}))
		case ast.TInt:
			vs = append(vs, value.Int(int64(int32(rng.Uint32()))))
		case ast.TBool:
			vs = append(vs, value.Bool(rng.Intn(2) == 1))
		case ast.TChar:
			vs = append(vs, value.Char(byte(rng.Intn(256))))
		case ast.THost:
			vs = append(vs, value.HostV(value.Host(rng.Uint32())))
		case ast.TString:
			b := make([]byte, rng.Intn(40))
			rng.Read(b)
			vs = append(vs, value.Str(string(b)))
		case ast.TBlob:
			b := make([]byte, rng.Intn(200))
			rng.Read(b)
			vs = append(vs, value.Blob(b))
		}
	}
	return value.TupleV(vs...)
}

// TestCodecRoundTripProperty: for random packet types and random values
// of those types, Encode then Decode under the same type must match,
// and re-encoding the decoded value must reproduce the packet exactly
// (headers and payload). Decode must also be strict: perturbing the
// payload length of a blob-less packet makes the match fail.
func TestCodecRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 2000; trial++ {
		typ := randTupleType(rng)
		v := randValue(rng, typ)
		pkt, err := Encode(v)
		if err != nil {
			t.Fatalf("trial %d (%v): encode: %v", trial, typ, err)
		}
		dec, ok := Decode(pkt, typ)
		if !ok {
			t.Fatalf("trial %d (%v): decode rejected its own encoding", trial, typ)
		}
		pkt2, err := Encode(dec)
		if err != nil {
			t.Fatalf("trial %d (%v): re-encode: %v", trial, typ, err)
		}
		if !reflect.DeepEqual(pkt.IP, pkt2.IP) ||
			!reflect.DeepEqual(pkt.TCP, pkt2.TCP) ||
			!reflect.DeepEqual(pkt.UDP, pkt2.UDP) ||
			!bytes.Equal(pkt.Payload, pkt2.Payload) {
			t.Fatalf("trial %d (%v): round trip changed the packet:\n  %v\n  %v",
				trial, typ, pkt, pkt2)
		}

		hasBlob := ast.Equal(typ.Elems[len(typ.Elems)-1], ast.BlobT)
		if !hasBlob {
			longer := pkt.Clone()
			longer.Payload = append(append([]byte(nil), pkt.Payload...), 0)
			if _, ok := Decode(longer, typ); ok {
				t.Fatalf("trial %d (%v): decode accepted unconsumed payload", trial, typ)
			}
			if len(pkt.Payload) > 0 {
				shorter := pkt.Clone()
				shorter.Payload = shorter.Payload[:len(shorter.Payload)-1]
				if _, ok := Decode(shorter, typ); ok {
					t.Fatalf("trial %d (%v): decode accepted truncated payload", trial, typ)
				}
			}
		}
	}
}

// fuzzTypes is the fixed palette of packet types FuzzDecode probes —
// raw-IP, TCP, and UDP shapes with every payload component kind.
var fuzzTypes = []ast.Tuple{
	{Elems: []ast.Type{ast.IPT, ast.BlobT}},
	{Elems: []ast.Type{ast.IPT, ast.IntT, ast.BoolT, ast.CharT, ast.HostT, ast.StringT}},
	{Elems: []ast.Type{ast.IPT, ast.TCPT, ast.BlobT}},
	{Elems: []ast.Type{ast.IPT, ast.TCPT, ast.IntT, ast.StringT}},
	{Elems: []ast.Type{ast.IPT, ast.UDPT, ast.StringT, ast.BlobT}},
	{Elems: []ast.Type{ast.IPT, ast.UDPT, ast.HostT, ast.IntT}},
}

// FuzzDecode throws arbitrary packets at Decode under every fuzz type:
// it must never panic, and anything it accepts must survive an
// Encode/Decode round trip with headers and payload intact.
func FuzzDecode(f *testing.F) {
	f.Add(uint8(0), uint16(80), uint16(1234), []byte{})
	f.Add(uint8(1), uint16(80), uint16(1234), []byte{0, 0, 0, 42, 1, 'x', 10, 0, 0, 1, 0, 1, 'y'})
	f.Add(uint8(2), uint16(53), uint16(9), []byte{0, 3, 'a', 'b', 'c'})
	f.Add(uint8(3), uint16(0), uint16(0), []byte{255, 255})
	f.Fuzz(func(t *testing.T, shape uint8, sport, dport uint16, payload []byte) {
		pkt := &substrate.Packet{IP: substrate.IPHeader{
			Src: substrate.MustAddr("10.0.0.1"), Dst: substrate.MustAddr("10.0.0.2"),
			TTL: 64, ID: 1,
		}}
		switch shape % 3 {
		case 0: // raw IP
		case 1:
			pkt.IP.Proto = substrate.ProtoTCP
			pkt.TCP = &substrate.TCPHeader{SrcPort: sport, DstPort: dport, Flags: substrate.FlagSyn}
		case 2:
			pkt.IP.Proto = substrate.ProtoUDP
			pkt.UDP = &substrate.UDPHeader{SrcPort: sport, DstPort: dport}
		}
		pkt.Payload = payload

		for _, typ := range fuzzTypes {
			v, ok := Decode(pkt, typ)
			if !ok {
				continue
			}
			enc, err := Encode(v)
			if err != nil {
				t.Fatalf("%v: decoded value does not re-encode: %v", typ, err)
			}
			if !bytes.Equal(enc.Payload, pkt.Payload) {
				t.Fatalf("%v: payload changed: %x -> %x", typ, pkt.Payload, enc.Payload)
			}
			// A type that declares a transport header must carry it
			// through; a type that omits it views the packet at the IP
			// layer and legitimately drops it (§2.3 dispatch).
			declared := false
			for _, et := range typ.Elems[1:] {
				if ast.Equal(et, ast.TCPT) || ast.Equal(et, ast.UDPT) {
					declared = true
				}
			}
			if declared && (!reflect.DeepEqual(enc.TCP, pkt.TCP) || !reflect.DeepEqual(enc.UDP, pkt.UDP)) {
				t.Fatalf("%v: transport header changed", typ)
			}
			if enc.IP.Src != pkt.IP.Src || enc.IP.Dst != pkt.IP.Dst ||
				enc.IP.TTL != pkt.IP.TTL || enc.IP.ID != pkt.IP.ID {
				t.Fatalf("%v: ip header changed: %+v -> %+v", typ, pkt.IP, enc.IP)
			}
			if _, ok := Decode(enc, typ); !ok {
				t.Fatalf("%v: re-encoded packet no longer decodes", typ)
			}
		}
	})
}
