package substrate

import (
	"bytes"
	"reflect"
	"testing"
)

func wireSamples() []*Packet {
	return []*Packet{
		{IP: IPHeader{Src: MustAddr("10.0.0.1"), Dst: MustAddr("10.0.0.2"), TTL: 64, ID: 7},
			Payload: []byte("raw ip")},
		NewUDP(MustAddr("10.0.0.1"), MustAddr("10.0.0.2"), 1234, 80, []byte("udp payload")),
		NewTCP(MustAddr("10.0.0.9"), MustAddr("10.0.0.10"), 40000, 80, 99, FlagSyn|FlagAck, nil),
		{IP: IPHeader{Src: MustAddr("1.2.3.4"), Dst: MustAddr("5.6.7.8"), Proto: 200, TTL: 1, ID: 1 << 30},
			ChanTag: "resize", Payload: bytes.Repeat([]byte{0xAB}, 1500)},
	}
}

// TestWireRoundTrip: AppendWire then ParseWire reproduces the packet.
func TestWireRoundTrip(t *testing.T) {
	for i, p := range wireSamples() {
		b, err := AppendWire(nil, p)
		if err != nil {
			t.Fatalf("sample %d: append: %v", i, err)
		}
		q, err := ParseWire(b)
		if err != nil {
			t.Fatalf("sample %d: parse: %v", i, err)
		}
		if q.IP != p.IP || q.ChanTag != p.ChanTag ||
			!reflect.DeepEqual(q.TCP, p.TCP) || !reflect.DeepEqual(q.UDP, p.UDP) ||
			!bytes.Equal(q.Payload, p.Payload) {
			t.Fatalf("sample %d: round trip changed packet:\n  %v\n  %v", i, p, q)
		}
	}
}

// TestWireParseRejectsTruncation: truncating anywhere inside the
// header region (flags, IP, transport, channel tag) must fail cleanly —
// no panic, no bogus packet. Truncating payload bytes is not an error
// by construction: the payload is "rest of datagram", so a shorter
// datagram is just a shorter valid packet.
func TestWireParseRejectsTruncation(t *testing.T) {
	p := NewTCP(MustAddr("10.0.0.9"), MustAddr("10.0.0.10"), 40000, 80, 99, FlagSyn, []byte("xyz"))
	p.ChanTag = "tag"
	b, err := AppendWire(nil, p)
	if err != nil {
		t.Fatal(err)
	}
	// Header region: flags(1) + ip(14) + tcp(15) + taglen(1) + tag(3).
	headerLen := 1 + 14 + 15 + 1 + 3
	for n := 0; n < headerLen; n++ {
		if _, err := ParseWire(b[:n]); err == nil {
			t.Fatalf("truncation to %d bytes parsed", n)
		}
	}
}

// TestWireParseRejectsGarbage: flag combinations the encoder never
// produces are refused.
func TestWireParseRejectsGarbage(t *testing.T) {
	valid, err := AppendWire(nil, NewUDP(MustAddr("10.0.0.1"), MustAddr("10.0.0.2"), 1, 2, nil))
	if err != nil {
		t.Fatal(err)
	}
	both := append([]byte(nil), valid...)
	both[0] = wireHasTCP | wireHasUDP
	if _, err := ParseWire(both); err == nil {
		t.Fatal("parse accepted a packet claiming both TCP and UDP headers")
	}
	unknown := append([]byte(nil), valid...)
	unknown[0] |= 0x80
	if _, err := ParseWire(unknown); err == nil {
		t.Fatal("parse accepted unknown wire flags")
	}
}

// TestWireLimits: oversized tags and packets are refused on both sides.
func TestWireLimits(t *testing.T) {
	long := &Packet{IP: IPHeader{Src: 1, Dst: 2, TTL: 1}}
	long.ChanTag = string(bytes.Repeat([]byte{'t'}, 256))
	if _, err := AppendWire(nil, long); err == nil {
		t.Fatal("append accepted a 256-byte channel tag")
	}
	big := &Packet{IP: IPHeader{Src: 1, Dst: 2, TTL: 1}, Payload: make([]byte, MaxWirePacket)}
	if _, err := AppendWire(nil, big); err == nil {
		t.Fatal("append accepted an over-limit packet")
	}
	if _, err := ParseWire(make([]byte, MaxWirePacket+1)); err == nil {
		t.Fatal("parse accepted an over-limit datagram")
	}
}
