// Addressing: packed IPv4-style addresses shared by every backend.
package substrate

import (
	"fmt"

	"planp.dev/planp/internal/obs"
)

// Addr is a packed big-endian IPv4-style address.
type Addr uint32

// ParseAddr converts a dotted quad to an Addr. Parsing is strict: four
// decimal octets in 0-255, separated by single dots, nothing else.
func ParseAddr(s string) (Addr, error) {
	var a Addr
	i := 0
	for oct := 0; oct < 4; oct++ {
		if oct > 0 {
			if i >= len(s) || s[i] != '.' {
				return 0, fmt.Errorf("substrate: malformed address %q", s)
			}
			i++
		}
		start := i
		v := 0
		for i < len(s) && s[i] >= '0' && s[i] <= '9' {
			v = v*10 + int(s[i]-'0')
			if v > 255 {
				return 0, fmt.Errorf("substrate: malformed address %q", s)
			}
			i++
		}
		if i == start || i-start > 3 {
			return 0, fmt.Errorf("substrate: malformed address %q", s)
		}
		a = a<<8 | Addr(v)
	}
	if i != len(s) {
		return 0, fmt.Errorf("substrate: malformed address %q", s)
	}
	return a, nil
}

// MustAddr is ParseAddr that panics on malformed input (for literals in
// scenario setup code).
func MustAddr(s string) Addr {
	a, err := ParseAddr(s)
	if err != nil {
		panic(err)
	}
	return a
}

// String renders the address as a dotted quad. The formatter is shared
// with the observability layer (obs.FormatAddr), which renders the same
// packed representation in event traces.
func (a Addr) String() string { return obs.FormatAddr(uint32(a)) }

// IsMulticast reports whether a is in the 224.0.0.0/4 group range.
func (a Addr) IsMulticast() bool { return a>>28 == 0xE }
