// Package subtest is the substrate conformance suite: a single set of
// behavioral tests every execution backend must pass, run against the
// abstract substrate surface only. The deterministic simulator
// (internal/netsim) and the real-time backend (internal/rtnet) both
// wire a Harness into Run from their own test packages, which is what
// keeps "the same ASP runs unchanged on either backend" an enforced
// property instead of an aspiration.
//
// The suite is deliberately written against substrate.Node / Iface /
// Env alone — if a test needs a backend-specific knob, the knob belongs
// in HostSpec or the Harness, not in the test.
package subtest

import (
	"sync/atomic"
	"testing"
	"time"

	"planp.dev/planp/internal/obs"
	"planp.dev/planp/internal/substrate"
)

// HostSpec describes one host in the line topology a Harness builds.
type HostSpec struct {
	Name       string
	Addr       substrate.Addr
	Forwarding bool
}

// Harness adapts one backend to the suite. A fresh harness is built for
// every subtest.
type Harness interface {
	// Build constructs the hosts, links consecutive pairs with a duplex
	// link, and installs static routes so every host can reach every
	// other (traffic between non-adjacent hosts transits the middle).
	// It returns the nodes in spec order.
	Build(t *testing.T, hosts []HostSpec) []substrate.Node

	// Start begins packet processing. Bindings, processors, and event
	// subscribers registered before Start are visible to all traffic.
	Start()

	// Settle processes in-flight traffic until the network is quiescent
	// (the simulator drains its event queue; the real-time backend
	// waits for in-flight packets to finish).
	Settle(t *testing.T)

	// Env returns the backend's substrate environment.
	Env() substrate.Env
}

// procFunc adapts a function to substrate.Processor.
type procFunc func(pkt *substrate.Packet, in substrate.Iface) bool

func (f procFunc) Process(pkt *substrate.Packet, in substrate.Iface) bool { return f(pkt, in) }

// Addresses used by the suite.
var (
	addrA = substrate.MustAddr("10.9.0.1")
	addrR = substrate.MustAddr("10.9.0.2")
	addrB = substrate.MustAddr("10.9.0.3")
)

func twoHosts() []HostSpec {
	return []HostSpec{{Name: "ca", Addr: addrA}, {Name: "cb", Addr: addrB}}
}

func lineWithRouter() []HostSpec {
	return []HostSpec{
		{Name: "ca", Addr: addrA},
		{Name: "cr", Addr: addrR, Forwarding: true},
		{Name: "cb", Addr: addrB},
	}
}

// Run executes the conformance suite, building a fresh harness from mk
// for each subtest.
func Run(t *testing.T, mk func() Harness) {
	t.Run("Delivery", func(t *testing.T) { testDelivery(t, mk()) })
	t.Run("NoBindingDrop", func(t *testing.T) { testNoBindingDrop(t, mk()) })
	t.Run("ForwardTTL", func(t *testing.T) { testForwardTTL(t, mk()) })
	t.Run("ProcessorHook", func(t *testing.T) { testProcessorHook(t, mk()) })
	t.Run("ProcessorFallthrough", func(t *testing.T) { testProcessorFallthrough(t, mk()) })
	t.Run("SplitHorizon", func(t *testing.T) { testSplitHorizon(t, mk()) })
	t.Run("EnvClockTimerRand", func(t *testing.T) { testEnvClockTimerRand(t, mk()) })
	t.Run("MetricsAndEvents", func(t *testing.T) { testMetricsAndEvents(t, mk()) })
}

// testDelivery: a UDP packet sent host-to-host reaches the bound
// application with its payload intact, and the delivery is counted
// under the standard metric name.
func testDelivery(t *testing.T, h Harness) {
	nodes := h.Build(t, twoHosts())
	a, b := nodes[0], nodes[1]

	var got atomic.Pointer[string]
	b.BindUDP(7, func(pkt *substrate.Packet) {
		s := string(pkt.Payload)
		got.Store(&s)
	})
	h.Start()

	a.Send(substrate.NewUDP(a.Address(), b.Address(), 1234, 7, []byte("ping")).Own())
	h.Settle(t)

	if s := got.Load(); s == nil || *s != "ping" {
		t.Fatalf("payload not delivered: got %v", got.Load())
	}
	snap := h.Env().Metrics().Snapshot()
	if snap["node.cb.delivered_pkts"] != 1 {
		t.Fatalf("node.cb.delivered_pkts = %d, want 1", snap["node.cb.delivered_pkts"])
	}
	if snap["node.ca.sent_pkts"] != 1 {
		t.Fatalf("node.ca.sent_pkts = %d, want 1", snap["node.ca.sent_pkts"])
	}
}

// testNoBindingDrop: delivery to a port nobody bound counts a drop, not
// a delivery.
func testNoBindingDrop(t *testing.T, h Harness) {
	nodes := h.Build(t, twoHosts())
	a, b := nodes[0], nodes[1]
	h.Start()

	a.Send(substrate.NewUDP(a.Address(), b.Address(), 1234, 9999, nil).Own())
	h.Settle(t)

	snap := h.Env().Metrics().Snapshot()
	if snap["node.cb.dropped_pkts"] != 1 {
		t.Fatalf("node.cb.dropped_pkts = %d, want 1", snap["node.cb.dropped_pkts"])
	}
}

// testForwardTTL: a router forwards transit traffic (decrementing TTL)
// and drops packets whose TTL would expire.
func testForwardTTL(t *testing.T, h Harness) {
	nodes := h.Build(t, lineWithRouter())
	a, b := nodes[0], nodes[2]

	var ttl atomic.Int32
	b.BindUDP(7, func(pkt *substrate.Packet) { ttl.Store(int32(pkt.IP.TTL)) })
	h.Start()

	p := substrate.NewUDP(a.Address(), b.Address(), 1234, 7, nil)
	p.IP.TTL = 10
	a.Send(p.Own())

	expired := substrate.NewUDP(a.Address(), b.Address(), 1234, 7, nil)
	expired.IP.TTL = 1
	a.Send(expired.Own())
	h.Settle(t)

	if got := ttl.Load(); got != 9 {
		t.Fatalf("delivered TTL = %d, want 9 (router must decrement)", got)
	}
	snap := h.Env().Metrics().Snapshot()
	if snap["node.cr.forwarded_pkts"] != 1 {
		t.Fatalf("node.cr.forwarded_pkts = %d, want 1", snap["node.cr.forwarded_pkts"])
	}
	if snap["node.cr.dropped_pkts"] != 1 {
		t.Fatalf("node.cr.dropped_pkts = %d, want 1 (ttl expiry)", snap["node.cr.dropped_pkts"])
	}
	if snap["node.cb.delivered_pkts"] != 1 {
		t.Fatalf("node.cb.delivered_pkts = %d, want 1", snap["node.cb.delivered_pkts"])
	}
}

// testProcessorHook: an installed processor intercepts traffic
// (returning true consumes the packet); uninstalling restores default
// processing. This is the install/uninstall surface planprt drives.
func testProcessorHook(t *testing.T, h Harness) {
	nodes := h.Build(t, lineWithRouter())
	a, r, b := nodes[0], nodes[1], nodes[2]

	var seen atomic.Int32
	blackhole := procFunc(func(pkt *substrate.Packet, in substrate.Iface) bool {
		seen.Add(1)
		return true // consumed: no forward, no delivery
	})
	if r.CurrentProcessor() != nil {
		t.Fatalf("fresh node has a processor installed")
	}
	r.SetProcessor(blackhole)
	if r.CurrentProcessor() == nil {
		t.Fatalf("CurrentProcessor nil after SetProcessor")
	}
	b.BindUDP(7, func(pkt *substrate.Packet) {})
	h.Start()

	a.Send(substrate.NewUDP(a.Address(), b.Address(), 1234, 7, nil).Own())
	h.Settle(t)
	if seen.Load() != 1 {
		t.Fatalf("processor saw %d packets, want 1", seen.Load())
	}
	snap := h.Env().Metrics().Snapshot()
	if snap["node.cb.delivered_pkts"] != 0 {
		t.Fatalf("packet delivered despite intercepting processor")
	}

	r.SetProcessor(nil)
	a.Send(substrate.NewUDP(a.Address(), b.Address(), 1234, 7, nil).Own())
	h.Settle(t)
	if seen.Load() != 1 {
		t.Fatalf("uninstalled processor still sees packets")
	}
	snap = h.Env().Metrics().Snapshot()
	if snap["node.cb.delivered_pkts"] != 1 {
		t.Fatalf("node.cb.delivered_pkts = %d after uninstall, want 1", snap["node.cb.delivered_pkts"])
	}
}

// testProcessorFallthrough: a processor returning false falls through
// to default processing (the runtime's "not my protocol" path).
func testProcessorFallthrough(t *testing.T, h Harness) {
	nodes := h.Build(t, lineWithRouter())
	a, r, b := nodes[0], nodes[1], nodes[2]

	r.SetProcessor(procFunc(func(pkt *substrate.Packet, in substrate.Iface) bool { return false }))
	b.BindUDP(7, func(pkt *substrate.Packet) {})
	h.Start()

	a.Send(substrate.NewUDP(a.Address(), b.Address(), 1234, 7, nil).Own())
	h.Settle(t)
	snap := h.Env().Metrics().Snapshot()
	if snap["node.cb.delivered_pkts"] != 1 {
		t.Fatalf("node.cb.delivered_pkts = %d, want 1 (fall-through)", snap["node.cb.delivered_pkts"])
	}
}

// testSplitHorizon: TransmitFrom never sends a packet back out the
// interface it arrived on — the OnNeighbor/OnRemote suppression the
// runtime relies on to avoid reflection loops.
func testSplitHorizon(t *testing.T, h Harness) {
	nodes := h.Build(t, twoHosts())
	a, b := nodes[0], nodes[1]

	// On b, the only route back toward anything is the incoming
	// interface; TransmitFrom(pkt, in) must therefore refuse.
	const (
		unset = iota
		sentFalse
		sentTrue
	)
	var verdict atomic.Int32
	b.SetProcessor(procFunc(func(pkt *substrate.Packet, in substrate.Iface) bool {
		if b.TransmitFrom(pkt, in) {
			verdict.Store(sentTrue)
		} else {
			verdict.Store(sentFalse)
		}
		return true
	}))
	h.Start()

	// Address the packet somewhere b can only reach back through a.
	far := substrate.MustAddr("10.99.99.99")
	a.Send(substrate.NewUDP(a.Address(), far, 1234, 7, nil).Own())
	h.Settle(t)

	switch verdict.Load() {
	case unset:
		t.Fatalf("processor never ran")
	case sentTrue:
		t.Fatalf("TransmitFrom sent the packet back out its incoming interface")
	}
}

// testEnvClockTimerRand: Env time is monotone, After fires its
// callback, and Int63n stays in range.
func testEnvClockTimerRand(t *testing.T, h Harness) {
	h.Build(t, twoHosts())
	env := h.Env()

	t0 := env.Now()
	var fired atomic.Bool
	env.After(2*time.Millisecond, func() { fired.Store(true) })
	h.Start()
	h.Settle(t)

	deadline := time.Now().Add(5 * time.Second)
	for !fired.Load() {
		if time.Now().After(deadline) {
			t.Fatalf("After callback never fired")
		}
		time.Sleep(time.Millisecond)
		h.Settle(t)
	}
	if env.Now() < t0 {
		t.Fatalf("Env clock went backwards: %v then %v", t0, env.Now())
	}
	for i := 0; i < 100; i++ {
		if v := env.Int63n(10); v < 0 || v >= 10 {
			t.Fatalf("Int63n(10) = %d out of range", v)
		}
	}
}

// testMetricsAndEvents: packet-granular events reach a subscriber
// attached before Start, with the standard kinds.
func testMetricsAndEvents(t *testing.T, h Harness) {
	nodes := h.Build(t, lineWithRouter())
	a, b := nodes[0], nodes[2]

	sink := &obs.CountingSink{}
	h.Env().Events().Subscribe(sink)
	b.BindUDP(7, func(pkt *substrate.Packet) {})
	h.Start()

	for i := 0; i < 3; i++ {
		a.Send(substrate.NewUDP(a.Address(), b.Address(), 1234, 7, nil).Own())
	}
	h.Settle(t)

	if got := sink.Count(obs.KindDeliver); got != 3 {
		t.Fatalf("deliver events = %d, want 3", got)
	}
	if got := sink.Count(obs.KindForward); got != 3 {
		t.Fatalf("forward events = %d, want 3", got)
	}
}
