// Wire codec: a flat binary encoding of Packet for backends that move
// datagrams over real sockets (rtnet's UDP loopback links) or between
// processes. The simulator never serializes — packets travel by pointer
// — so this format is a transport detail, not the paper's packet model:
// PLAN-P itself still sees the ordinary IP/TCP/UDP fields.
//
// Layout (all multi-byte fields big-endian):
//
//	flags   1 byte   bit0 = has TCP header, bit1 = has UDP header
//	ip      14 bytes src(4) dst(4) proto(1) ttl(1) id(4)
//	tcp     15 bytes srcPort(2) dstPort(2) seq(4) ack(4) flags(1) window(2)   [if bit0]
//	udp     4 bytes  srcPort(2) dstPort(2)                                    [if bit1]
//	chantag 1 byte length + bytes (PLAN-P channel tag option)
//	payload remaining bytes
package substrate

import (
	"encoding/binary"
	"fmt"
)

const (
	wireHasTCP = 1 << 0
	wireHasUDP = 1 << 1
)

// MaxWirePacket is the largest marshalled packet the codec accepts:
// generous for loopback UDP (which fragments transparently) while
// bounding decoder allocations on hostile input.
const MaxWirePacket = 256 << 10

// AppendWire appends the wire encoding of p to dst and returns the
// extended slice (append-style, so senders can reuse buffers).
func AppendWire(dst []byte, p *Packet) ([]byte, error) {
	if p.TCP != nil && p.UDP != nil {
		return dst, fmt.Errorf("substrate: packet has both TCP and UDP headers")
	}
	if len(p.ChanTag) > 255 {
		return dst, fmt.Errorf("substrate: channel tag %q exceeds 255 bytes", p.ChanTag[:32]+"…")
	}
	var flags byte
	if p.TCP != nil {
		flags |= wireHasTCP
	}
	if p.UDP != nil {
		flags |= wireHasUDP
	}
	dst = append(dst, flags)
	dst = binary.BigEndian.AppendUint32(dst, uint32(p.IP.Src))
	dst = binary.BigEndian.AppendUint32(dst, uint32(p.IP.Dst))
	dst = append(dst, p.IP.Proto, p.IP.TTL)
	dst = binary.BigEndian.AppendUint32(dst, p.IP.ID)
	if p.TCP != nil {
		dst = binary.BigEndian.AppendUint16(dst, p.TCP.SrcPort)
		dst = binary.BigEndian.AppendUint16(dst, p.TCP.DstPort)
		dst = binary.BigEndian.AppendUint32(dst, p.TCP.Seq)
		dst = binary.BigEndian.AppendUint32(dst, p.TCP.Ack)
		dst = append(dst, p.TCP.Flags)
		dst = binary.BigEndian.AppendUint16(dst, p.TCP.Window)
	}
	if p.UDP != nil {
		dst = binary.BigEndian.AppendUint16(dst, p.UDP.SrcPort)
		dst = binary.BigEndian.AppendUint16(dst, p.UDP.DstPort)
	}
	dst = append(dst, byte(len(p.ChanTag)))
	dst = append(dst, p.ChanTag...)
	dst = append(dst, p.Payload...)
	if len(dst) > MaxWirePacket {
		return dst, fmt.Errorf("substrate: marshalled packet exceeds %d bytes", MaxWirePacket)
	}
	return dst, nil
}

// ParseWire decodes a wire-encoded packet. The returned packet owns
// fresh header structs and a fresh payload slice (b may be a reused
// receive buffer).
func ParseWire(b []byte) (*Packet, error) {
	if len(b) > MaxWirePacket {
		return nil, fmt.Errorf("substrate: wire packet exceeds %d bytes", MaxWirePacket)
	}
	if len(b) < 1+14+1 {
		return nil, fmt.Errorf("substrate: wire packet truncated (%d bytes)", len(b))
	}
	flags := b[0]
	if flags&wireHasTCP != 0 && flags&wireHasUDP != 0 {
		return nil, fmt.Errorf("substrate: wire packet claims both TCP and UDP headers")
	}
	if flags&^(byte(wireHasTCP|wireHasUDP)) != 0 {
		return nil, fmt.Errorf("substrate: unknown wire flags %#x", flags)
	}
	b = b[1:]
	p := &Packet{IP: IPHeader{
		Src:   Addr(binary.BigEndian.Uint32(b[0:4])),
		Dst:   Addr(binary.BigEndian.Uint32(b[4:8])),
		Proto: b[8],
		TTL:   b[9],
		ID:    binary.BigEndian.Uint32(b[10:14]),
	}}
	b = b[14:]
	if flags&wireHasTCP != 0 {
		if len(b) < 15 {
			return nil, fmt.Errorf("substrate: wire packet truncated in TCP header")
		}
		p.TCP = &TCPHeader{
			SrcPort: binary.BigEndian.Uint16(b[0:2]),
			DstPort: binary.BigEndian.Uint16(b[2:4]),
			Seq:     binary.BigEndian.Uint32(b[4:8]),
			Ack:     binary.BigEndian.Uint32(b[8:12]),
			Flags:   b[12],
			Window:  binary.BigEndian.Uint16(b[13:15]),
		}
		b = b[15:]
	}
	if flags&wireHasUDP != 0 {
		if len(b) < 4 {
			return nil, fmt.Errorf("substrate: wire packet truncated in UDP header")
		}
		p.UDP = &UDPHeader{
			SrcPort: binary.BigEndian.Uint16(b[0:2]),
			DstPort: binary.BigEndian.Uint16(b[2:4]),
		}
		b = b[4:]
	}
	if len(b) < 1 {
		return nil, fmt.Errorf("substrate: wire packet truncated before channel tag")
	}
	tagLen := int(b[0])
	b = b[1:]
	if len(b) < tagLen {
		return nil, fmt.Errorf("substrate: wire packet truncated in channel tag")
	}
	p.ChanTag = string(b[:tagLen])
	b = b[tagLen:]
	if len(b) > 0 {
		p.Payload = make([]byte, len(b))
		copy(p.Payload, b)
	}
	return p, nil
}
