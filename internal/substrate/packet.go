// Packet model: an IP-flavoured header with optional TCP/UDP transport
// headers and a raw payload. PLAN-P operates on existing packet formats
// unchanged (§2), so these mirror the fields the primitive library
// exposes; internal/planprt converts between this wire form and the
// language's header values. The model is substrate-neutral: simulator
// media and real-time channel/socket links carry the same struct.
package substrate

import "fmt"

// IP protocol numbers used by the substrate.
const (
	ProtoTCP = 6
	ProtoUDP = 17
)

// Header byte sizes used for Packet.Size accounting.
const (
	IPHeaderLen  = 20
	TCPHeaderLen = 20
	UDPHeaderLen = 8
)

// TCP flag bits (mirrors value.TCPSyn etc. in the language layer).
const (
	FlagSyn = 1 << iota
	FlagAck
	FlagFin
	FlagRst
	FlagPsh
)

// IPHeader is the network-layer header.
type IPHeader struct {
	Src   Addr
	Dst   Addr
	Proto uint8
	TTL   uint8
	ID    uint32
}

// TCPHeader is the (simplified) TCP transport header.
type TCPHeader struct {
	SrcPort uint16
	DstPort uint16
	Seq     uint32
	Ack     uint32
	Flags   uint8
	Window  uint16
}

// UDPHeader is the UDP transport header.
type UDPHeader struct {
	SrcPort uint16
	DstPort uint16
}

// Packet is one datagram in flight. Packets are passed by pointer but
// treated as immutable once transmitted; rewriting protocols build a
// modified Clone (header rewrites) or CloneMut (payload rewrites).
//
// # Copy-on-write ownership
//
// Because transmitted packets are immutable, Clone is a copy-on-write
// shallow copy: the clone shares the payload bytes and the transport
// header structs with the original. Code that needs to mutate payload
// BYTES in place must use CloneMut (a deep copy); every in-tree rewriter
// (audio degradation, gateway address rewriting) instead builds fresh
// payload slices, which is equally safe.
//
// The unexported owned flag supports the zero-allocation forward path:
// it marks a packet whose ONLY live reference is the delivery chain it
// is currently on (freshly built hop copies and runtime-encoded sends).
// A router receiving an owned packet may reuse it in place for the next
// hop — decrement TTL, retransmit — instead of cloning. Ownership is
// deliberately conservative: it is cleared whenever the pointer becomes
// visible to more than one party (broadcast/multicast fan-out, taps,
// local delivery).
//
// On concurrent backends the same contract doubles as the memory
// model: transmitting a packet hands it to the receiving node's
// goroutine (a channel send establishes the happens-before edge), so a
// sender honoring Own must not touch the packet afterwards, and a
// disowned packet shared by a fan-out is read-only everywhere.
type Packet struct {
	IP      IPHeader
	TCP     *TCPHeader // exactly one of TCP/UDP is set for transport traffic
	UDP     *UDPHeader
	Payload []byte

	// ChanTag identifies the user-defined PLAN-P channel this packet
	// was sent on; empty for ordinary traffic (handled by "network"
	// channels, §2).
	ChanTag string

	// owned marks a packet exclusively referenced by its current
	// delivery chain (see the ownership comment above).
	owned bool
}

// Own asserts that the caller holds the only live reference to p and
// relinquishes it: after transmitting an owned packet the caller must
// not read or write it again. Senders that build a fresh packet per send
// (load generators, sources) call this so downstream routers can forward
// the packet in place without cloning. It returns p for use in send
// expressions.
func (p *Packet) Own() *Packet {
	p.owned = true
	return p
}

// Disown clears exclusive ownership (the pointer is about to be shared
// with more than one party, so nobody may reuse the packet in place).
// The guard makes Disown idempotent without a write: once a packet is
// shared, several parties may disown it concurrently (fan-out receivers
// on different simulator shards), and a read of an already-false flag
// is race-free where an unconditional store is not.
func (p *Packet) Disown() {
	if p.owned {
		p.owned = false
	}
}

// Owned reports whether the packet is exclusively referenced by its
// current delivery chain (backends use this to elide hop copies).
func (p *Packet) Owned() bool { return p.owned }

// Size returns the on-wire size in bytes (headers + payload).
func (p *Packet) Size() int {
	n := IPHeaderLen + len(p.Payload)
	if p.TCP != nil {
		n += TCPHeaderLen
	}
	if p.UDP != nil {
		n += UDPHeaderLen
	}
	if p.ChanTag != "" {
		n += 2 + len(p.ChanTag) // tag option
	}
	return n
}

// Clone returns a copy-on-write shallow copy: a fresh Packet (so the IP
// header — the part rewriting protocols and per-hop forwarding mutate —
// is independent) sharing the payload bytes and transport header structs
// with the original. Transmitted packets are immutable, so sharing is
// never observable; callers that will mutate payload bytes or transport
// header fields must use CloneMut. The clone is exclusively owned by the
// caller.
func (p *Packet) Clone() *Packet {
	q := &Packet{IP: p.IP, TCP: p.TCP, UDP: p.UDP, Payload: p.Payload, ChanTag: p.ChanTag, owned: true}
	return q
}

// CloneMut returns a deep copy (headers and payload): the explicit path
// for protocols that genuinely rewrite bytes or transport headers in
// place rather than building replacement slices.
func (p *Packet) CloneMut() *Packet {
	q := &Packet{IP: p.IP, ChanTag: p.ChanTag, owned: true}
	if p.TCP != nil {
		tcp := *p.TCP
		q.TCP = &tcp
	}
	if p.UDP != nil {
		udp := *p.UDP
		q.UDP = &udp
	}
	if p.Payload != nil {
		q.Payload = make([]byte, len(p.Payload))
		copy(q.Payload, p.Payload)
	}
	return q
}

// String renders the packet for diagnostics.
func (p *Packet) String() string {
	switch {
	case p.TCP != nil:
		return fmt.Sprintf("tcp %s:%d->%s:%d seq=%d flags=%#x len=%d",
			p.IP.Src, p.TCP.SrcPort, p.IP.Dst, p.TCP.DstPort, p.TCP.Seq, p.TCP.Flags, len(p.Payload))
	case p.UDP != nil:
		return fmt.Sprintf("udp %s:%d->%s:%d len=%d",
			p.IP.Src, p.UDP.SrcPort, p.IP.Dst, p.UDP.DstPort, len(p.Payload))
	default:
		return fmt.Sprintf("ip %s->%s proto=%d len=%d", p.IP.Src, p.IP.Dst, p.IP.Proto, len(p.Payload))
	}
}

// NewUDP builds a UDP packet.
func NewUDP(src, dst Addr, srcPort, dstPort uint16, payload []byte) *Packet {
	return &Packet{
		IP:      IPHeader{Src: src, Dst: dst, Proto: ProtoUDP, TTL: 64},
		UDP:     &UDPHeader{SrcPort: srcPort, DstPort: dstPort},
		Payload: payload,
	}
}

// NewTCP builds a TCP packet.
func NewTCP(src, dst Addr, srcPort, dstPort uint16, seq uint32, flags uint8, payload []byte) *Packet {
	return &Packet{
		IP:      IPHeader{Src: src, Dst: dst, Proto: ProtoTCP, TTL: 64},
		TCP:     &TCPHeader{SrcPort: srcPort, DstPort: dstPort, Seq: seq, Flags: flags, Window: 65535},
		Payload: payload,
	}
}
