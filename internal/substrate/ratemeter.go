// RateMeter: sliding-window throughput measurement. Routers running the
// audio-adaptation ASP read link utilization through this (the
// linkLoadTo primitive); §3.1's claim that in-router adaptation reacts
// "immediately" is a claim about this window being short and local.
//
// The meter is time-source-neutral: callers supply "now" on every call,
// so the simulator feeds it virtual time and real-time backends feed it
// the wall clock. It is NOT internally synchronized — the simulator is
// single-threaded, and concurrent backends must serialize access (rtnet
// guards each link's meter with the link lock).
package substrate

import "time"

// DefaultMeterWindow is the default measurement window. 250 ms is short
// enough to react within a few audio packets and long enough to smooth
// packet-scale burstiness.
const DefaultMeterWindow = 250 * time.Millisecond

const meterBuckets = 10

// RateMeter measures bytes per second over a sliding window using a
// bucket ring. The zero value is unusable; use NewRateMeter.
type RateMeter struct {
	window   time.Duration
	bucket   time.Duration
	counts   [meterBuckets]int64
	current  int // index of the bucket covering curStart
	curStart time.Duration
}

// NewRateMeter returns a meter with the given window (DefaultMeterWindow
// if zero).
func NewRateMeter(window time.Duration) *RateMeter {
	if window <= 0 {
		window = DefaultMeterWindow
	}
	return &RateMeter{window: window, bucket: window / meterBuckets}
}

// advance rotates buckets so that the current bucket covers now.
func (m *RateMeter) advance(now time.Duration) {
	for now >= m.curStart+m.bucket {
		m.curStart += m.bucket
		m.current = (m.current + 1) % meterBuckets
		m.counts[m.current] = 0
		if now-m.curStart > m.window {
			// Long idle gap: clear everything and re-anchor.
			for i := range m.counts {
				m.counts[i] = 0
			}
			m.curStart = now - (now % m.bucket)
		}
	}
}

// Add records n bytes transmitted at time now.
func (m *RateMeter) Add(now time.Duration, n int64) {
	m.advance(now)
	m.counts[m.current] += n
}

// BitsPerSecond returns the windowed throughput at time now.
// The current (partially elapsed) bucket is excluded so that steady
// traffic measures without systematic underestimation; the effective
// window is the last window−bucket of completed time.
func (m *RateMeter) BitsPerSecond(now time.Duration) int64 {
	m.advance(now)
	var total int64
	for i, c := range m.counts {
		if i == m.current {
			continue
		}
		total += c
	}
	return total * 8 * int64(time.Second) / int64(m.window-m.bucket)
}

// Utilization returns the load as a percentage of capacity (0-100+,
// clamped at 100).
func (m *RateMeter) Utilization(now time.Duration, capacityBps int64) int64 {
	if capacityBps <= 0 {
		return 0
	}
	pct := m.BitsPerSecond(now) * 100 / capacityBps
	if pct > 100 {
		pct = 100
	}
	return pct
}
