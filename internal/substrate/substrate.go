// Package substrate defines the execution substrate the PLAN-P/ASP
// layer runs on: the small interface set separating the language
// runtime (internal/planprt) from whatever actually moves packets
// underneath it.
//
// The paper's runtime ran on real SUN hosts and routers; this
// reproduction began with a discrete-event simulator standing in for
// that network. The substrate split makes the simulator one
// implementation among several rather than a hard dependency:
//
//   - internal/netsim — the deterministic discrete-event simulator
//     (virtual clock, single-threaded, reproducible from a seed). The
//     reference backend: every paper experiment replays on it
//     byte-identically.
//   - internal/rtnet — the real-time concurrent backend (wall clock,
//     goroutine per node, in-process channel links with optional UDP
//     sockets on loopback). The backend that faces real traffic;
//     cmd/planpd downloads ASPs onto its live nodes.
//
// The interfaces are deliberately narrow: exactly what the runtime's
// primitive set needs (host identity, routing, transmission, local
// delivery, link-load measurement, a clock, timers, and seeded
// randomness) plus the packet-processing hook a downloaded protocol
// installs into. Backends with richer APIs (the simulator's event
// budgets, rtnet's socket links) keep them on their concrete types.
//
// # Determinism contract
//
// A backend is either deterministic or concurrent, and says which:
//
//   - netsim promises bit-identical runs for a fixed seed and workload.
//     Env.Now is virtual time; Env.After schedules on the simulation
//     event queue; Env.Int63n draws from the simulation RNG. On sharded
//     simulations (netsim.WithShards) the Env a node hands out is
//     shard-local: its clock, timers, and RNG stream belong to the
//     event loop executing the node, which is what keeps multi-shard
//     runs deterministic. Code holding an Env must treat it as scoped
//     to the node it came from, never as a global clock.
//   - rtnet promises race-cleanliness, not reproducibility. Env.Now is
//     wall-clock time since the net started; Env.After uses real
//     timers; Env.Int63n draws from a mutex-guarded RNG.
//
// Code meant to run on both (the runtime, ASP programs, conformance
// tests) must therefore never compare exact timestamps across runs.
package substrate

import (
	"time"

	"planp.dev/planp/internal/obs"
)

// Processor is the PLAN-P layer hook. Process sees every packet the
// node receives from the network, before standard IP processing.
// Returning true means the program handled the packet (forwarded,
// delivered, or dropped it); false falls through to the backend's
// standard behavior.
//
// A Processor must not mutate pkt (build a Clone/CloneMut to rewrite)
// and must not retain pkt beyond the call unless it returns true: on
// false the substrate may reuse the packet in place for the next
// forwarding hop. Retaining the payload slice is always safe — payload
// bytes are immutable once transmitted.
//
// On concurrent backends Process is invoked from the owning node's
// goroutine only, so a processor needs no internal locking unless it
// shares state across nodes.
type Processor interface {
	Process(pkt *Packet, in Iface) bool
}

// AppFunc receives packets delivered to a local application binding.
type AppFunc func(pkt *Packet)

// Iface is one attachment point of a node to a transmission medium.
// The runtime uses interfaces as opaque identities (split-horizon
// comparisons), transmission ports, and load probes.
type Iface interface {
	// Send transmits pkt out this interface.
	Send(pkt *Packet)
	// Load returns the utilization percentage (0-100) of this
	// interface's outgoing direction over the backend's measurement
	// window.
	Load() int64
	// Bandwidth returns the attached medium's capacity in bits/s.
	Bandwidth() int64
}

// Node is the substrate-facing view of one host or router: everything
// the ASP runtime needs to install itself and to implement the
// OnRemote/OnNeighbor/deliver primitives. *netsim.Node and *rtnet.Node
// both satisfy it.
type Node interface {
	// Hostname returns the node's unique name (metric and event keys
	// are derived from it: "node.<name>.*", "asp.<name>.*").
	Hostname() string
	// Address returns the node's address.
	Address() Addr
	// Interfaces returns the node's attachment points. The slice is
	// owned by the node; callers must not mutate it.
	Interfaces() []Iface
	// Route resolves the outgoing interface for dst (nil if
	// unroutable).
	Route(dst Addr) Iface
	// Send originates pkt from this node: local destinations deliver
	// directly, everything else routes out an interface.
	Send(pkt *Packet)
	// TransmitFrom routes pkt out of any interface except in,
	// reporting whether it was sent. It is the PLAN-P layer's OnRemote
	// transmission path: the program has already decided the packet's
	// fate, so no TTL handling happens here. in == nil means no
	// exclusion.
	TransmitFrom(pkt *Packet, in Iface) bool
	// DeliverLocal passes pkt up to local application bindings (the
	// deliver primitive).
	DeliverLocal(pkt *Packet)
	// BindUDP delivers local UDP traffic for port to fn.
	BindUDP(port uint16, fn AppFunc)
	// BindTCP delivers local TCP traffic for port to fn.
	BindTCP(port uint16, fn AppFunc)
	// NextIPID returns a fresh IP identification value for originated
	// packets.
	NextIPID() uint32
	// SetProcessor installs (or, with nil, removes) the PLAN-P layer.
	SetProcessor(p Processor)
	// CurrentProcessor returns the installed PLAN-P layer, or nil.
	CurrentProcessor() Processor
	// Env returns the execution environment the node lives in.
	Env() Env
}

// Env is the substrate execution environment shared by a network of
// nodes: the clock, timers, seeded randomness, and the observability
// substrate. *netsim.Simulator and *rtnet.Net both satisfy it.
type Env interface {
	// Now returns the current substrate time: virtual time on the
	// simulator, wall-clock time since start on real-time backends.
	Now() time.Duration
	// After schedules fn to run d after the current time. On the
	// simulator fn runs on the event loop; on real-time backends it
	// runs on its own goroutine and must synchronize like any other
	// concurrent code.
	After(d time.Duration, fn func())
	// Int63n returns a pseudo-random integer in [0, n) from the
	// environment's seeded stream (the rand primitive). n must be > 0.
	Int63n(n int64) int64
	// Events returns the environment's event bus. Both backends emit
	// the same typed events (obs.Kind*) at the same decision points.
	Events() *obs.Bus
	// Metrics returns the environment's metrics registry — the single
	// source node and runtime statistics are read from.
	Metrics() *obs.Registry
}
