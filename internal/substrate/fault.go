// Fault injection: the backend-neutral vocabulary internal/chaos uses
// to degrade a substrate. A backend exposes two capabilities:
//
//   - interfaces that can consult a FaultFunc at transmission time and
//     apply its verdict (FaultPort) — this is where packet loss,
//     corruption, duplication, and delay happen, "on the wire";
//   - nodes that can crash and restart (Crasher) — a crashed node
//     blackholes traffic and loses its installed PLAN-P layer, exactly
//     the state loss a daemon restart causes.
//
// The substrate defines only the hook shapes; all policy (probabilities,
// schedules, seeding) lives in internal/chaos. A nil FaultFunc is the
// permanent fast path: backends must not pay anything for faults that
// are not installed.
package substrate

import "time"

// FaultAction is one transmission's verdict from the fault layer. The
// zero value means "transmit normally". Backends apply the fields in
// this order: Drop wins outright; otherwise Corrupt rewrites the
// payload, Dup extra copies are transmitted alongside the original, and
// Delay is added to the delivery latency of every copy.
type FaultAction struct {
	// Drop discards the packet. The backend counts it separately from
	// queue-overflow drops and publishes obs.KindDrop with Detail
	// "fault".
	Drop bool
	// Corrupt flips one payload bit (chosen by CorruptBit) before
	// transmission. Packets with empty payloads pass unchanged —
	// header corruption would break routing invariants rather than
	// model line noise.
	Corrupt bool
	// CorruptBit selects which payload bit Corrupt flips, reduced
	// modulo the payload's bit length.
	CorruptBit int
	// Dup is the number of extra copies to transmit (0 = none). Copies
	// are clones: independent headers, shared immutable payload.
	Dup int
	// Delay is added to the delivery latency: virtual arrival time on
	// deterministic backends, a real timer on wall-clock ones.
	Delay time.Duration
}

// FaultFunc decides the fate of one transmission. It is consulted once
// per packet before queueing; the same verdict governs the original and
// any duplicates (duplicates are not re-faulted). On concurrent
// backends it is called from whatever goroutine is sending, so
// implementations synchronize internally.
type FaultFunc func(pkt *Packet) FaultAction

// FaultPort is an interface that supports fault injection at
// transmission time. Both netsim interfaces (link and segment
// attachments) and both rtnet interface kinds (channel and loopback-UDP)
// implement it.
type FaultPort interface {
	Iface
	// SetFault installs f as the interface's fault layer (nil removes
	// it). On concurrent backends SetFault is safe while traffic flows.
	SetFault(f FaultFunc)
}

// ClockSkewer is a node whose clock the chaos engine can skew: after
// SetClockSkew(d), every Env.Now reading the node's host makes is
// shifted by d. On rtnet each daemon owns its network, so skewing a
// node skews its whole host's clock — exactly the distributed-testbed
// failure mode (drifting mono_ns stamps distort windowed rates, event
// timestamps disagree across hosts). The deterministic simulator's one
// shared virtual clock cannot drift per node, so netsim nodes do not
// implement this; clock-skew scenarios are rtnet-only and fail fast
// elsewhere.
type ClockSkewer interface {
	// SetClockSkew shifts the node's clock by d (negative skews run it
	// behind). Idempotent set, not cumulative. Safe while traffic flows.
	SetClockSkew(d time.Duration)
	// ClockSkew returns the current skew.
	ClockSkew() time.Duration
}

// Crasher is a node that supports chaos crash/restart. Both backend
// node types implement it.
type Crasher interface {
	// Crash takes the node down: received and originated packets are
	// discarded (counted as drops with Detail "crashed") and the
	// installed PLAN-P processor is removed — the state loss of a
	// killed daemon. Idempotent.
	Crash()
	// Restart brings the node back up, bare: routes and bindings
	// survive (they are configuration), the processor does not (it was
	// downloaded state). A fleet redeploy reinstalls it.
	Restart()
}

// CorruptPayload returns pkt with one payload bit flipped, as a fresh
// deep copy (transmitted payload bytes are immutable, so corruption may
// never write through the original). bit is reduced modulo the
// payload's bit length; packets with no payload are returned unchanged.
func CorruptPayload(pkt *Packet, bit int) *Packet {
	n := len(pkt.Payload) * 8
	if n == 0 {
		return pkt
	}
	bit %= n
	if bit < 0 {
		bit += n
	}
	c := pkt.CloneMut()
	c.Payload[bit/8] ^= 1 << (bit % 8)
	return c
}
