// Package obs is the observability substrate shared by the simulator,
// the ASP runtime, the experiment drivers, and the benchmark harness:
// a typed event bus published to at packet granularity, and a metrics
// registry (counters, gauges, histograms, time series) that is the one
// source experiments and tests read measurements from.
//
// Design constraints, in order:
//
//  1. Determinism. Everything here is driven by virtual time supplied
//     by the caller; subscribers fire in subscription order; nothing
//     reads wall clocks. Two runs with the same seed produce the same
//     event stream and the same metric values.
//  2. A free no-op path. A Bus with no subscribers must cost nothing on
//     the packet hot path: callers guard event construction with
//     Bus.Active(), which inlines to a nil/len check, so an unobserved
//     simulation does not even build the Event value.
//  3. Allocation-light. Event is a small value struct of scalars and
//     static strings; the built-in subscribers (Ring, CountingSink) do
//     not allocate per event.
package obs

import (
	"fmt"
	"io"
	"time"
)

// Kind classifies an Event. The taxonomy is packet-granular: one event
// per decision the network substrate or the ASP layer makes about a
// packet.
type Kind uint8

// Event kinds.
const (
	// KindEnqueue: a medium accepted a packet for serialization (it is
	// now occupying link or segment capacity).
	KindEnqueue Kind = iota
	// KindDrop: a packet was discarded — by a medium's drop-tail queue
	// (Detail "queue") or by a node (Detail "ttl", "no-route",
	// "no-binding").
	KindDrop
	// KindForward: a router forwarded a packet (TTL decremented).
	KindForward
	// KindDeliver: a packet was delivered to a local application.
	KindDeliver
	// KindASPInvoke: an installed PLAN-P protocol handled a packet
	// (Detail is the channel name).
	KindASPInvoke
	// KindVerifyReject: a protocol download was refused by late
	// checking or the single-node deployment limit.
	KindVerifyReject
	// KindDeploy: a fleet rollout step completed on a node (Node is the
	// fleet target name; Detail is "<phase>:<outcome>", e.g.
	// "stage:ok", "activate:failed").
	KindDeploy
	// KindRollback: a fleet rollout reverted a node to the previously
	// active protocol version (Detail is the restored version, or the
	// abort reason for staged-only nodes).
	KindRollback
	// KindFault: the chaos engine degraded the network (Node is the
	// link or node name; Detail says how: "link-down", "crash",
	// "loss=0.10", ...).
	KindFault
	// KindHeal: the chaos engine restored what a KindFault degraded
	// (Detail "link-up", "restart", "clear").
	KindHeal
	// KindCanary: the adaptation controller moved a canary rollout
	// through its lifecycle (Node is the deployment's version label;
	// Detail is "active", "window:<n>:ok", "window:<n>:violation",
	// "promoted", "rolled-back", "unobservable").
	KindCanary
	// KindAdapt: the adaptation policy engine made a protocol-selection
	// decision (Detail is "switch:<from>-><to>" on a redeploy, or
	// "hold:<candidate>" when hysteresis/cooldown suppressed one).
	KindAdapt
	// KindLink: a cross-host rtnet link changed state (Node is the
	// "<local>:<peer>" link name; Detail is "up", "up:reconnect",
	// "down:<reason>" — goodbye, probe-timeout — or
	// "rejected:<reason>" when the handshake refused the peer).
	KindLink

	numKinds
)

// NumKinds is the number of event kinds (sizing per-kind tables).
const NumKinds = int(numKinds)

var kindNames = [numKinds]string{
	"enqueue", "drop", "forward", "deliver", "asp-invoke", "verify-reject",
	"deploy", "rollback", "fault", "heal", "canary", "adapt", "link",
}

// String names the kind.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Event is one observed occurrence. It is a plain value: publishing one
// does not allocate, and subscribers may retain copies freely.
//
// Src and Dst are packed big-endian IPv4-style addresses (the
// simulator's Addr representation); Node is the name of the node or
// medium where the event happened; Detail is a static refinement string
// (drop reason, channel name) — empty on most events.
type Event struct {
	Kind   Kind
	At     time.Duration // virtual time
	Node   string
	Src    uint32
	Dst    uint32
	Size   int // packet size in bytes on the wire
	Detail string
}

// AppendAddr appends a packed big-endian IPv4-style address to dst as a
// dotted quad. Hand-rolled (no fmt) because address rendering sits on
// the per-event String path and the simulator's Addr.String shares it.
func AppendAddr(dst []byte, a uint32) []byte {
	for shift := 24; shift >= 0; shift -= 8 {
		dst = appendOctet(dst, byte(a>>shift))
		if shift > 0 {
			dst = append(dst, '.')
		}
	}
	return dst
}

func appendOctet(dst []byte, o byte) []byte {
	if o >= 100 {
		dst = append(dst, '0'+o/100)
	}
	if o >= 10 {
		dst = append(dst, '0'+o/10%10)
	}
	return append(dst, '0'+o%10)
}

// FormatAddr renders a packed address as a dotted quad.
func FormatAddr(a uint32) string {
	var buf [15]byte
	return string(AppendAddr(buf[:0], a))
}

// String renders the event as one pcap-style text line (no newline).
func (e Event) String() string {
	s := fmt.Sprintf("%10.6f %-13s %-10s %s->%s %dB",
		e.At.Seconds(), e.Kind, e.Node, FormatAddr(e.Src), FormatAddr(e.Dst), e.Size)
	if e.Detail != "" {
		s += " " + e.Detail
	}
	return s
}

// Subscriber consumes events. OnEvent is called synchronously from the
// publishing site, in subscription order, under the simulator's
// single-threaded event loop — implementations need no locking of their
// own unless they are shared across simulations.
type Subscriber interface {
	OnEvent(Event)
}

// Func adapts a function to the Subscriber interface.
type Func func(Event)

// OnEvent implements Subscriber.
func (f Func) OnEvent(ev Event) { f(ev) }

// Bus fans events out to subscribers. The zero value is a valid, inert
// bus. Publishing with no subscribers does nothing; callers on hot
// paths should guard with Active() so the Event value is never built:
//
//	if bus.Active() {
//		bus.Publish(obs.Event{...})
//	}
//
// Bus is not safe for concurrent use; it belongs to a single
// simulation's event loop.
type Bus struct {
	subs []Subscriber
}

// Active reports whether anyone is listening. It is safe on a nil bus
// and cheap enough to guard per-packet call sites.
func (b *Bus) Active() bool { return b != nil && len(b.subs) > 0 }

// Subscribe adds s to the fan-out. Subscribers are invoked in
// subscription order.
func (b *Bus) Subscribe(s Subscriber) { b.subs = append(b.subs, s) }

// Unsubscribe removes the first occurrence of s.
func (b *Bus) Unsubscribe(s Subscriber) {
	for i, cur := range b.subs {
		if cur == s {
			b.subs = append(b.subs[:i], b.subs[i+1:]...)
			return
		}
	}
}

// Publish delivers ev to every subscriber in order.
func (b *Bus) Publish(ev Event) {
	for _, s := range b.subs {
		s.OnEvent(ev)
	}
}

// ---------------------------------------------------------------------------
// Built-in subscribers

// Ring keeps the last N events in a fixed ring buffer ("flight
// recorder"): attach it for a whole run and read the tail after a
// failure without paying for unbounded growth.
type Ring struct {
	buf   []Event
	next  int
	count int
}

// NewRing returns a ring holding the most recent n events.
func NewRing(n int) *Ring {
	if n <= 0 {
		n = 1
	}
	return &Ring{buf: make([]Event, n)}
}

// OnEvent implements Subscriber.
func (r *Ring) OnEvent(ev Event) {
	r.buf[r.next] = ev
	r.next = (r.next + 1) % len(r.buf)
	if r.count < len(r.buf) {
		r.count++
	}
}

// Len returns the number of buffered events.
func (r *Ring) Len() int { return r.count }

// Events returns the buffered events oldest-first (a copy).
func (r *Ring) Events() []Event {
	out := make([]Event, 0, r.count)
	start := r.next - r.count
	if start < 0 {
		start += len(r.buf)
	}
	for i := 0; i < r.count; i++ {
		out = append(out, r.buf[(start+i)%len(r.buf)])
	}
	return out
}

// CountingSink tallies events by kind — the cheapest way to assert on
// aggregate behavior in tests and ablations.
type CountingSink struct {
	counts [numKinds]int64
}

// OnEvent implements Subscriber.
func (c *CountingSink) OnEvent(ev Event) {
	if int(ev.Kind) < len(c.counts) {
		c.counts[ev.Kind]++
	}
}

// Count returns the number of events seen of kind k.
func (c *CountingSink) Count(k Kind) int64 {
	if int(k) < len(c.counts) {
		return c.counts[k]
	}
	return 0
}

// Total returns the number of events seen of any kind.
func (c *CountingSink) Total() int64 {
	var t int64
	for _, n := range c.counts {
		t += n
	}
	return t
}

// TextLog writes one line per event — the pcap-style text trace behind
// planp.WithTraceWriter.
type TextLog struct {
	w io.Writer
}

// NewTextLog returns a subscriber logging to w.
func NewTextLog(w io.Writer) *TextLog { return &TextLog{w: w} }

// OnEvent implements Subscriber.
func (l *TextLog) OnEvent(ev Event) {
	fmt.Fprintln(l.w, ev.String())
}
