// The metrics registry: counters, gauges, fixed-bucket histograms, and
// time series, keyed by name. Instruments are cheap to update (atomic
// or single-mutex) and safe to read from other goroutines — `go test
// -race` over code holding a registry must stay clean even when a
// monitoring goroutine polls it mid-run.
package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing count. The zero value is ready
// to use.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a value that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram accumulates observations into fixed buckets. Bounds are
// inclusive upper bounds in ascending order; an implicit overflow
// bucket catches everything above the last bound.
type Histogram struct {
	mu     sync.Mutex
	bounds []int64
	counts []int64 // len(bounds)+1; last is overflow
	sum    int64
	n      int64
}

// NewHistogram returns a histogram with the given inclusive upper
// bounds (which must be ascending).
func NewHistogram(bounds []int64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram bounds not ascending: %v", bounds))
		}
	}
	b := make([]int64, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, counts: make([]int64, len(bounds)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	h.mu.Lock()
	i := sort.Search(len(h.bounds), func(i int) bool { return h.bounds[i] >= v })
	h.counts[i]++
	h.sum += v
	h.n++
	h.mu.Unlock()
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.n
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Mean returns the mean observation (0 if none).
func (h *Histogram) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.n == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.n)
}

// Buckets returns (bounds, counts) snapshots; counts has one extra
// trailing overflow entry.
func (h *Histogram) Buckets() ([]int64, []int64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	bounds := make([]int64, len(h.bounds))
	counts := make([]int64, len(h.counts))
	copy(bounds, h.bounds)
	copy(counts, h.counts)
	return bounds, counts
}

// Registry is a named collection of instruments. Get-or-create lookups
// are mutex-guarded (cold path: call sites resolve instruments once and
// hold the pointer); updates on the instruments themselves are the hot
// path and do not touch the registry.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	series   map[string]*Series
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
		series:   map[string]*Series{},
	}
}

// Counter returns the named counter, creating it if needed.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// ResetCounter binds a FRESH counter to name, replacing any previous
// one, and returns it. Used for per-installation instruments (an ASP
// re-downloaded onto a node starts its counts from zero while the name
// keeps pointing at the live installation).
func (r *Registry) ResetCounter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c := &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns the named gauge, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bounds if needed. Bounds are ignored on subsequent lookups.
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = NewHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// Series returns the named time series, creating it if needed. The
// series' display name is the registry name.
func (r *Registry) Series(name string) *Series {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.series[name]
	if !ok {
		s = &Series{Name: name}
		r.series[name] = s
	}
	return s
}

// LookupSeries returns the named series or nil (read-only callers that
// must not create).
func (r *Registry) LookupSeries(name string) *Series {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.series[name]
}

// Snapshot returns every counter and gauge value keyed by name — the
// scrape format for tests and dashboards.
func (r *Registry) Snapshot() map[string]int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]int64, len(r.counters)+len(r.gauges))
	for name, c := range r.counters {
		out[name] = c.Value()
	}
	for name, g := range r.gauges {
		out[name] = g.Value()
	}
	return out
}

// Render writes all counters and gauges as sorted "name value" lines —
// deterministic output for golden tests.
func (r *Registry) Render() string {
	snap := r.Snapshot()
	names := make([]string, 0, len(snap))
	for name := range snap {
		names = append(names, name)
	}
	sort.Strings(names)
	var sb strings.Builder
	for _, name := range names {
		fmt.Fprintf(&sb, "%s %d\n", name, snap[name])
	}
	return sb.String()
}
