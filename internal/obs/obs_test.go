package obs

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

// recorder notes which subscriber saw which event, for ordering tests.
type recorder struct {
	id  string
	log *[]string
}

func (r *recorder) OnEvent(ev Event) {
	*r.log = append(*r.log, r.id+":"+ev.Kind.String())
}

func TestBusSubscriberOrdering(t *testing.T) {
	tests := []struct {
		name string
		subs []string // subscription order
		drop string   // unsubscribe this one before publishing ("" = none)
		want []string
	}{
		{"single", []string{"a"}, "", []string{"a:drop"}},
		{"two-in-order", []string{"a", "b"}, "", []string{"a:drop", "b:drop"}},
		{"three-in-order", []string{"x", "y", "z"}, "", []string{"x:drop", "y:drop", "z:drop"}},
		{"unsubscribe-middle", []string{"a", "b", "c"}, "b", []string{"a:drop", "c:drop"}},
		{"unsubscribe-first", []string{"a", "b"}, "a", []string{"b:drop"}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			var log []string
			bus := &Bus{}
			byID := map[string]*recorder{}
			for _, id := range tt.subs {
				r := &recorder{id: id, log: &log}
				byID[id] = r
				bus.Subscribe(r)
			}
			if tt.drop != "" {
				bus.Unsubscribe(byID[tt.drop])
			}
			bus.Publish(Event{Kind: KindDrop})
			if got := strings.Join(log, ","); got != strings.Join(tt.want, ",") {
				t.Errorf("delivery order %q, want %q", got, strings.Join(tt.want, ","))
			}
		})
	}
}

func TestBusActive(t *testing.T) {
	var nilBus *Bus
	if nilBus.Active() {
		t.Error("nil bus must be inactive")
	}
	bus := &Bus{}
	if bus.Active() {
		t.Error("empty bus must be inactive")
	}
	r := &recorder{id: "a", log: new([]string)}
	bus.Subscribe(r)
	if !bus.Active() {
		t.Error("subscribed bus must be active")
	}
	bus.Unsubscribe(r)
	if bus.Active() {
		t.Error("bus active after last unsubscribe")
	}
	// Publishing on an inert bus must be a no-op, not a panic.
	bus.Publish(Event{Kind: KindDeliver})
}

func TestRingWraparound(t *testing.T) {
	tests := []struct {
		name     string
		capacity int
		publish  int
		wantLen  int
		wantFrom int // first retained event index
	}{
		{"under-capacity", 4, 3, 3, 0},
		{"exact-capacity", 4, 4, 4, 0},
		{"wrap-once", 4, 6, 4, 2},
		{"wrap-many", 3, 10, 3, 7},
		{"capacity-clamped", 0, 2, 1, 1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			r := NewRing(tt.capacity)
			for i := 0; i < tt.publish; i++ {
				r.OnEvent(Event{Kind: KindForward, Size: i})
			}
			if r.Len() != tt.wantLen {
				t.Fatalf("Len = %d, want %d", r.Len(), tt.wantLen)
			}
			evs := r.Events()
			if len(evs) != tt.wantLen {
				t.Fatalf("len(Events) = %d, want %d", len(evs), tt.wantLen)
			}
			for i, ev := range evs {
				if ev.Size != tt.wantFrom+i {
					t.Errorf("event %d has Size %d, want %d (oldest-first)", i, ev.Size, tt.wantFrom+i)
				}
			}
		})
	}
}

func TestCountingSink(t *testing.T) {
	var c CountingSink
	for i := 0; i < 3; i++ {
		c.OnEvent(Event{Kind: KindDrop})
	}
	c.OnEvent(Event{Kind: KindDeliver})
	if got := c.Count(KindDrop); got != 3 {
		t.Errorf("drops = %d", got)
	}
	if got := c.Count(KindDeliver); got != 1 {
		t.Errorf("delivers = %d", got)
	}
	if got := c.Count(KindEnqueue); got != 0 {
		t.Errorf("enqueues = %d", got)
	}
	if got := c.Total(); got != 4 {
		t.Errorf("total = %d", got)
	}
}

func TestTextLogFormat(t *testing.T) {
	var sb strings.Builder
	l := NewTextLog(&sb)
	l.OnEvent(Event{
		Kind: KindDrop, At: 1500 * time.Millisecond, Node: "r1",
		Src: 0x0A000101, Dst: 0x0A000201, Size: 64, Detail: "queue",
	})
	want := "  1.500000 drop          r1         10.0.1.1->10.0.2.1 64B queue\n"
	if sb.String() != want {
		t.Errorf("log line %q, want %q", sb.String(), want)
	}
}

func TestEventKindString(t *testing.T) {
	names := map[Kind]string{
		KindEnqueue: "enqueue", KindDrop: "drop", KindForward: "forward",
		KindDeliver: "deliver", KindASPInvoke: "asp-invoke", KindVerifyReject: "verify-reject",
		KindDeploy: "deploy", KindRollback: "rollback",
		KindFault: "fault", KindHeal: "heal",
		KindCanary: "canary", KindAdapt: "adapt", KindLink: "link",
	}
	if len(names) != NumKinds {
		t.Fatalf("test covers %d kinds, NumKinds = %d", len(names), NumKinds)
	}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, k.String(), want)
		}
	}
	if got := Kind(200).String(); got != "kind(200)" {
		t.Errorf("out-of-range kind renders %q", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	tests := []struct {
		name       string
		bounds     []int64
		observe    []int64
		wantCounts []int64 // len(bounds)+1, last = overflow
	}{
		{
			name:       "basic-placement",
			bounds:     []int64{10, 100, 1000},
			observe:    []int64{5, 10, 11, 100, 500, 1001},
			wantCounts: []int64{2, 2, 1, 1}, // bounds are inclusive upper
		},
		{
			name:       "all-overflow",
			bounds:     []int64{1},
			observe:    []int64{2, 3, 4},
			wantCounts: []int64{0, 3},
		},
		{
			name:       "negative-values",
			bounds:     []int64{0, 10},
			observe:    []int64{-5, 0, 10},
			wantCounts: []int64{2, 1, 0},
		},
		{
			name:       "empty",
			bounds:     []int64{10},
			observe:    nil,
			wantCounts: []int64{0, 0},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			h := NewHistogram(tt.bounds)
			var sum int64
			for _, v := range tt.observe {
				h.Observe(v)
				sum += v
			}
			_, counts := h.Buckets()
			if len(counts) != len(tt.wantCounts) {
				t.Fatalf("len(counts) = %d, want %d", len(counts), len(tt.wantCounts))
			}
			for i := range counts {
				if counts[i] != tt.wantCounts[i] {
					t.Errorf("bucket %d = %d, want %d", i, counts[i], tt.wantCounts[i])
				}
			}
			if h.Count() != int64(len(tt.observe)) {
				t.Errorf("Count = %d, want %d", h.Count(), len(tt.observe))
			}
			if h.Sum() != sum {
				t.Errorf("Sum = %d, want %d", h.Sum(), sum)
			}
			wantMean := 0.0
			if len(tt.observe) > 0 {
				wantMean = float64(sum) / float64(len(tt.observe))
			}
			if h.Mean() != wantMean {
				t.Errorf("Mean = %g, want %g", h.Mean(), wantMean)
			}
		})
	}
}

func TestHistogramRejectsUnorderedBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non-ascending bounds must panic")
		}
	}()
	NewHistogram([]int64{10, 10})
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x")
	c.Add(5)
	if r.Counter("x") != c {
		t.Error("second lookup returned a different counter")
	}
	if got := r.Counter("x").Value(); got != 5 {
		t.Errorf("value = %d", got)
	}
	g := r.Gauge("y")
	g.Set(-3)
	if r.Gauge("y").Value() != -3 {
		t.Error("gauge identity lost across lookups")
	}
	h := r.Histogram("z", []int64{1, 2})
	if r.Histogram("z", []int64{99}) != h {
		t.Error("histogram identity lost across lookups")
	}
	s := r.Series("w")
	if s.Name != "w" {
		t.Errorf("series name %q", s.Name)
	}
	if r.Series("w") != s {
		t.Error("series identity lost across lookups")
	}
	if r.LookupSeries("nonesuch") != nil {
		t.Error("LookupSeries must not create")
	}
	if r.LookupSeries("w") != s {
		t.Error("LookupSeries missed existing series")
	}
}

func TestRegistryResetCounter(t *testing.T) {
	r := NewRegistry()
	old := r.Counter("asp.r.processed")
	old.Add(7)
	fresh := r.ResetCounter("asp.r.processed")
	if fresh == old {
		t.Fatal("ResetCounter returned the stale counter")
	}
	if fresh.Value() != 0 {
		t.Errorf("fresh counter starts at %d", fresh.Value())
	}
	// The registry name now resolves to the fresh instrument; the old
	// pointer still works for anyone holding it.
	if r.Counter("asp.r.processed") != fresh {
		t.Error("name still bound to stale counter")
	}
	if old.Value() != 7 {
		t.Error("stale counter mutated by reset")
	}
}

func TestRegistrySnapshotAndRender(t *testing.T) {
	r := NewRegistry()
	r.Counter("b.count").Add(2)
	r.Counter("a.count").Add(1)
	r.Gauge("c.gauge").Set(9)
	snap := r.Snapshot()
	if len(snap) != 3 || snap["a.count"] != 1 || snap["b.count"] != 2 || snap["c.gauge"] != 9 {
		t.Errorf("snapshot = %v", snap)
	}
	want := "a.count 1\nb.count 2\nc.gauge 9\n"
	if got := r.Render(); got != want {
		t.Errorf("Render:\n%s\nwant:\n%s", got, want)
	}
}

func TestSeriesAtAndAggregates(t *testing.T) {
	s := &Series{Name: "bw"}
	for i, v := range []float64{100, 200, 300} {
		s.Add(time.Duration(i+1)*time.Second, v)
	}
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	atTests := []struct {
		t    time.Duration
		want float64
	}{
		{0, 0},                        // before first sample
		{time.Second, 100},            // exactly on a sample
		{1500 * time.Millisecond, 10}, // placeholder, fixed below
	}
	atTests[2].want = 100 // step function holds until next sample
	for _, tt := range atTests {
		if got := s.At(tt.t); got != tt.want {
			t.Errorf("At(%v) = %g, want %g", tt.t, got, tt.want)
		}
	}
	if got := s.At(10 * time.Second); got != 300 {
		t.Errorf("At(past end) = %g", got)
	}
	if got := s.Mean(0, 4*time.Second); got != 200 {
		t.Errorf("Mean = %g", got)
	}
	if got := s.Max(0, 4*time.Second); got != 300 {
		t.Errorf("Max = %g", got)
	}
	// Half-open interval: the to bound is excluded.
	if got := s.Mean(time.Second, 3*time.Second); got != 150 {
		t.Errorf("Mean[1s,3s) = %g", got)
	}
}

func TestSeriesRenderFormat(t *testing.T) {
	s := &Series{Name: "audio-wire-bps"}
	s.Add(1*time.Second, 176000)
	s.Add(2*time.Second, 88000)
	got := s.Render(time.Second)
	want := "# audio-wire-bps\n" +
		"     0.0         0.0\n" +
		"     1.0    176000.0\n" +
		"     2.0     88000.0\n"
	if got != want {
		t.Errorf("Render:\n%q\nwant:\n%q", got, want)
	}
	empty := &Series{Name: "empty"}
	if got := empty.Render(time.Second); got != "# empty\n" {
		t.Errorf("empty Render = %q", got)
	}
}

func TestGapDetector(t *testing.T) {
	tests := []struct {
		name        string
		budget      time.Duration
		arrivals    []time.Duration
		finish      time.Duration
		wantGaps    int
		wantGapTime time.Duration
	}{
		{
			name:     "steady-stream",
			budget:   150 * time.Millisecond,
			arrivals: []time.Duration{0, 50 * time.Millisecond, 100 * time.Millisecond},
			finish:   200 * time.Millisecond,
			wantGaps: 0,
		},
		{
			name:        "one-mid-gap",
			budget:      150 * time.Millisecond,
			arrivals:    []time.Duration{0, 400 * time.Millisecond},
			finish:      500 * time.Millisecond,
			wantGaps:    1,
			wantGapTime: 250 * time.Millisecond,
		},
		{
			name:        "trailing-gap-at-finish",
			budget:      150 * time.Millisecond,
			arrivals:    []time.Duration{0},
			finish:      time.Second,
			wantGaps:    1,
			wantGapTime: 850 * time.Millisecond,
		},
		{
			name:     "no-packets-no-gaps",
			budget:   150 * time.Millisecond,
			arrivals: nil,
			finish:   time.Second,
			wantGaps: 0,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			g := NewGapDetector(tt.budget)
			for _, at := range tt.arrivals {
				g.Packet(at)
			}
			g.Finish(tt.finish)
			if g.Gaps() != tt.wantGaps {
				t.Errorf("Gaps = %d, want %d", g.Gaps(), tt.wantGaps)
			}
			if g.GapTime() != tt.wantGapTime {
				t.Errorf("GapTime = %v, want %v", g.GapTime(), tt.wantGapTime)
			}
			if g.Received() != len(tt.arrivals) {
				t.Errorf("Received = %d, want %d", g.Received(), len(tt.arrivals))
			}
		})
	}
}

func TestTableRendering(t *testing.T) {
	tb := &Table{Headers: []string{"name", "value", "ratio"}}
	tb.AddRow("alpha", 42, 1.5)
	tb.AddRow("b", "x", 0.25)
	got := tb.String()
	lines := strings.Split(strings.TrimRight(got, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table has %d lines:\n%s", len(lines), got)
	}
	if !strings.Contains(lines[0], "name") || !strings.Contains(lines[0], "ratio") {
		t.Errorf("header %q", lines[0])
	}
	if !strings.Contains(got, "1.50") || !strings.Contains(got, "0.25") {
		t.Errorf("floats not rendered with two decimals:\n%s", got)
	}
	// Columns must stay aligned: every row the same rendered width.
	for i := 1; i < len(lines); i++ {
		if len(lines[i]) != len(lines[1]) {
			t.Errorf("ragged table:\n%s", got)
		}
	}
}

func TestCounterGaugeConcurrency(t *testing.T) {
	// Exercised under -race in the verify path: concurrent updates and
	// reads must be clean.
	r := NewRegistry()
	c := r.Counter("n")
	g := r.Gauge("g")
	done := make(chan struct{})
	for w := 0; w < 4; w++ {
		go func() {
			for i := 0; i < 1000; i++ {
				c.Inc()
				g.Add(1)
			}
			done <- struct{}{}
		}()
	}
	for i := 0; i < 100; i++ {
		_ = c.Value()
		_ = r.Snapshot()
	}
	for w := 0; w < 4; w++ {
		<-done
	}
	if c.Value() != 4000 {
		t.Errorf("counter = %d", c.Value())
	}
	if g.Value() != 4000 {
		t.Errorf("gauge = %d", g.Value())
	}
}

func ExampleEvent_String() {
	ev := Event{
		Kind: KindForward, At: 2 * time.Second, Node: "router",
		Src: 0x0A000101, Dst: 0x0A000201, Size: 1500,
	}
	fmt.Println(ev.String())
	// Output:   2.000000 forward       router     10.0.1.1->10.0.2.1 1500B
}
