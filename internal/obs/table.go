// Fixed-width result tables in the style of the paper's figures,
// rendered by the benchmark harness and the ablation drivers.
package obs

import (
	"fmt"
	"strings"
)

// Table renders fixed-width result tables in the style of the paper.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends a row of cells (stringified with %v; float64 as %.2f).
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch c := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", c)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var sb strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&sb, "== %s ==\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], cell)
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Headers)
	for i, w := range widths {
		if i > 0 {
			sb.WriteString("  ")
		}
		sb.WriteString(strings.Repeat("-", w))
	}
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	return sb.String()
}
