// Time series and playback-gap detection, absorbed from the old
// experiment-only internal/trace package so that experiments, tests,
// and the bench harness read measurements from the same registry the
// simulator writes to (figure-6 bandwidth curves, figure-7 gaps).
package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Point is one sample of a time series.
type Point struct {
	At    time.Duration
	Value float64
}

// Series is a named time series. Samples are appended in virtual-time
// order by the single-threaded simulation; reads may come from other
// goroutines (monitoring, tests), so access is mutex-guarded.
type Series struct {
	Name string

	mu     sync.Mutex
	points []Point
}

// Add appends a sample.
func (s *Series) Add(at time.Duration, v float64) {
	s.mu.Lock()
	s.points = append(s.points, Point{At: at, Value: v})
	s.mu.Unlock()
}

// Len returns the number of samples.
func (s *Series) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.points)
}

// Points returns a snapshot copy of all samples.
func (s *Series) Points() []Point {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Point, len(s.points))
	copy(out, s.points)
	return out
}

// At returns the last sample value at or before t (0 if none).
func (s *Series) At(t time.Duration) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	idx := sort.Search(len(s.points), func(i int) bool { return s.points[i].At > t })
	if idx == 0 {
		return 0
	}
	return s.points[idx-1].Value
}

// Mean returns the mean value of samples in [from, to).
func (s *Series) Mean(from, to time.Duration) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var sum float64
	var n int
	for _, p := range s.points {
		if p.At >= from && p.At < to {
			sum += p.Value
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Max returns the maximum sample value in [from, to).
func (s *Series) Max(from, to time.Duration) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var m float64
	for _, p := range s.points {
		if p.At >= from && p.At < to && p.Value > m {
			m = p.Value
		}
	}
	return m
}

// Render prints the series as "t value" rows with the given sample
// stride, the same shape as the paper's figures.
func (s *Series) Render(stride time.Duration) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "# %s\n", s.Name)
	s.mu.Lock()
	n := len(s.points)
	var end time.Duration
	if n > 0 {
		end = s.points[n-1].At
	}
	s.mu.Unlock()
	if n == 0 {
		return sb.String()
	}
	for t := time.Duration(0); t <= end; t += stride {
		fmt.Fprintf(&sb, "%8.1f  %10.1f\n", t.Seconds(), s.At(t))
	}
	return sb.String()
}

// GapDetector counts playback gaps ("silent periods", figure 7): spans
// where the inter-arrival time of audio packets exceeds the playout
// budget, or packets are lost.
type GapDetector struct {
	// Budget is the playout slack: a gap is declared when the time
	// since the previous packet exceeds Budget.
	Budget time.Duration

	last     time.Duration
	started  bool
	gaps     int
	gapTime  time.Duration
	received int
}

// NewGapDetector returns a detector with the given playout budget.
func NewGapDetector(budget time.Duration) *GapDetector {
	return &GapDetector{Budget: budget}
}

// Packet records an audio packet arrival at virtual time now.
func (g *GapDetector) Packet(now time.Duration) {
	g.received++
	if g.started && now-g.last > g.Budget {
		g.gaps++
		g.gapTime += now - g.last - g.Budget
	}
	g.last = now
	g.started = true
}

// Finish closes the stream at virtual time end, accounting a trailing
// gap if the stream went silent early.
func (g *GapDetector) Finish(end time.Duration) {
	if g.started && end-g.last > g.Budget {
		g.gaps++
		g.gapTime += end - g.last - g.Budget
	}
}

// Gaps returns the number of silent periods detected.
func (g *GapDetector) Gaps() int { return g.gaps }

// GapTime returns the total silent time.
func (g *GapDetector) GapTime() time.Duration { return g.gapTime }

// Received returns the number of packets seen.
func (g *GapDetector) Received() int { return g.received }
