// The adaptation policy engine: pick which protocol variant should run
// from observed metric trends, and redeploy when the pick changes.
//
// This is the paper's §5 promise made closed-loop: the gateway's
// round-robin / least-connections / failover variants differ by one
// downloadable ASP, so *choosing* between them is a control decision,
// not an upgrade project. The decision itself (DecideFunc) and the
// debouncing state machine (Selector) are pure over metric Windows and
// an explicit clock, so a sequence of snapshots replays to the same
// sequence of switches every time. The Controller's RunPolicy loop adds
// the impure shell: poll /stats, decide, and drive internal/fleet when
// the selector commits to a change.
package adapt

import (
	"context"
	"errors"
	"fmt"
	"time"

	"planp.dev/planp/internal/fleet"
	"planp.dev/planp/internal/obs"
)

// Candidate is one deployable protocol variant the policy engine may
// select — a name plus everything fleet needs to roll it out.
type Candidate struct {
	Name   string
	Source string
	Engine string
	Verify string
}

// DecideFunc inspects one round's windows (keyed by node name) and
// returns the name of the candidate that should be running, or "" for
// no opinion. It must be pure: no clocks, no I/O, no retained state —
// the Selector owns all memory between rounds.
type DecideFunc func(windows map[string]Window) string

// Selector is the anti-flapping state machine between raw per-window
// preferences and actual redeploys. A switch requires the same
// non-current candidate to be preferred for Hysteresis consecutive
// windows, and at least Cooldown to have passed since the last
// committed switch. Time enters only through the explicit now
// arguments, never a clock, so tests replay decisions deterministically.
//
// Observe proposes; Commit disposes: Observe never mutates the current
// candidate, so a failed redeploy leaves the selector still demanding
// the switch on the next round instead of believing a deploy that
// never happened.
type Selector struct {
	Hysteresis int
	Cooldown   time.Duration

	current    string
	streakFor  string
	streakLen  int
	lastSwitch time.Time
	switched   bool // lastSwitch is meaningful
}

// NewSelector returns a selector currently running `initial`, requiring
// hysteresis consecutive windows (min 1) and cooldown between switches.
func NewSelector(initial string, hysteresis int, cooldown time.Duration) *Selector {
	if hysteresis < 1 {
		hysteresis = 1
	}
	return &Selector{Hysteresis: hysteresis, Cooldown: cooldown, current: initial}
}

// Current returns the candidate the selector believes is running.
func (s *Selector) Current() string { return s.current }

// Streak returns how many consecutive windows have preferred the same
// non-current candidate (for reports and logs).
func (s *Selector) Streak() (candidate string, length int) {
	return s.streakFor, s.streakLen
}

// Observe feeds one window's preference at time now and returns the
// candidate to switch to, or "" to hold. A preference for the current
// candidate (or no opinion) resets the streak — hysteresis counts
// *consecutive* dissent. The cooldown gates the commit, not the
// streak: dissent keeps accumulating during cooldown and the switch
// fires on the first eligible observation after it expires.
func (s *Selector) Observe(pref string, now time.Time) (switchTo string) {
	if pref == "" || pref == s.current {
		s.streakFor, s.streakLen = "", 0
		return ""
	}
	if pref != s.streakFor {
		s.streakFor, s.streakLen = pref, 0
	}
	s.streakLen++
	if s.streakLen < s.Hysteresis {
		return ""
	}
	if s.switched && now.Sub(s.lastSwitch) < s.Cooldown {
		return ""
	}
	return pref
}

// Commit records that the switch to name took effect at now. The
// caller invokes it only after the redeploy succeeded.
func (s *Selector) Commit(name string, now time.Time) {
	s.current = name
	s.streakFor, s.streakLen = "", 0
	s.lastSwitch, s.switched = now, true
}

// PolicyPlan configures one RunPolicy loop.
type PolicyPlan struct {
	// Candidates the policy may select among. Decide must return one of
	// their names (or "").
	Candidates []Candidate
	Decide     DecideFunc
	// Current names the candidate running before the loop starts.
	Current string

	// Targets receive the redeploy when the selection changes.
	Targets []fleet.Target
	// Stats lists the nodes whose GET /stats feed each round's windows;
	// defaults to Targets. (In clusters sharing one registry, a single
	// entry suffices — per-node counters are name-prefixed.)
	Stats []fleet.Target

	// Interval is the window length (default 2s); Rounds bounds the loop
	// (0: run until the context is canceled).
	Interval time.Duration
	Rounds   int

	// Hysteresis (default 2) and Cooldown (default 2*Interval) debounce
	// switches; see Selector.
	Hysteresis int
	Cooldown   time.Duration
}

// Switch records one committed variant change.
type Switch struct {
	Round      int    `json:"round"`
	From       string `json:"from"`
	To         string `json:"to"`
	Deployment int    `json:"deployment"`
}

// PolicyReport summarizes a finished RunPolicy loop.
type PolicyReport struct {
	Rounds   int      `json:"rounds"`
	Final    string   `json:"final"`
	Switches []Switch `json:"switches"`
}

// RunPolicy runs the observe→decide→redeploy loop until Rounds rounds
// have run or ctx is canceled (which is a normal exit, not an error).
// Each committed switch is recorded in the fleet history as a
// deployment of kind "adapt" whose reason names the trend that caused
// it; holds and switches are published as KindAdapt events.
func (c *Controller) RunPolicy(ctx context.Context, plan PolicyPlan) (*PolicyReport, error) {
	if len(plan.Candidates) == 0 || plan.Decide == nil {
		return nil, errors.New("adapt: policy needs candidates and a decide function")
	}
	if len(plan.Targets) == 0 {
		return nil, errors.New("adapt: policy needs redeploy targets")
	}
	byName := make(map[string]Candidate, len(plan.Candidates))
	for _, cand := range plan.Candidates {
		byName[cand.Name] = cand
	}
	if plan.Interval <= 0 {
		plan.Interval = 2 * time.Second
	}
	if plan.Hysteresis <= 0 {
		plan.Hysteresis = 2
	}
	if plan.Cooldown <= 0 {
		plan.Cooldown = 2 * plan.Interval
	}
	stats := plan.Stats
	if len(stats) == 0 {
		stats = plan.Targets
	}

	sel := NewSelector(plan.Current, plan.Hysteresis, plan.Cooldown)
	report := &PolicyReport{Final: plan.Current}
	prev, err := c.snapshotAll(ctx, stats)
	if err != nil {
		return nil, fmt.Errorf("adapt: policy baseline snapshot: %w", err)
	}

	for round := 1; plan.Rounds == 0 || round <= plan.Rounds; round++ {
		c.sleep(ctx, plan.Interval)
		if ctx.Err() != nil {
			break
		}
		cur, err := c.snapshotAll(ctx, stats)
		if err != nil {
			// A blind round: keep the loop alive, but feed the selector
			// "no opinion" so blindness never accumulates toward a switch.
			c.logf("adapt: policy round %d: stats poll failed: %v", round, err)
			sel.Observe("", c.now())
			report.Rounds = round
			continue
		}
		windows := pairWindows(prev, cur)
		prev = cur

		pref := plan.Decide(windows)
		report.Rounds = round
		switchTo := sel.Observe(pref, c.now())
		if switchTo == "" {
			c.ctHolds.Inc()
			c.publish(obs.KindAdapt, "", "hold:"+sel.Current())
			continue
		}
		cand, ok := byName[switchTo]
		if !ok {
			c.logf("adapt: policy preferred unknown candidate %q; holding", switchTo)
			continue
		}
		from := sel.Current()
		_, streak := sel.Streak()
		spec := fleet.Spec{
			Version: fmt.Sprintf("%s-r%d", cand.Name, round),
			Source:  cand.Source, Engine: cand.Engine, Verify: cand.Verify,
			Kind:   "adapt",
			Reason: fmt.Sprintf("policy preferred %s over %s for %d consecutive window(s)", cand.Name, from, streak),
		}
		d, deployErr := c.fleet.Deploy(ctx, spec, plan.Targets)
		if deployErr != nil {
			// The fleet converged back to the old variant; the selector
			// still holds `from` and will re-demand the switch next round.
			c.logf("adapt: policy switch %s->%s failed: %v", from, cand.Name, deployErr)
			continue
		}
		sel.Commit(cand.Name, c.now())
		c.ctSwitches.Inc()
		c.publish(obs.KindAdapt, "", fmt.Sprintf("switch:%s->%s", from, cand.Name))
		c.logf("adapt: policy switched %s -> %s (deployment %d)", from, cand.Name, d.ID)
		report.Switches = append(report.Switches, Switch{
			Round: round, From: from, To: cand.Name, Deployment: d.ID,
		})
	}
	report.Final = sel.Current()
	return report, nil
}

// snapshotAll polls every stats target once; any failure fails the
// round (partial windows would silently bias cohort means).
func (c *Controller) snapshotAll(ctx context.Context, targets []fleet.Target) (map[string]Snapshot, error) {
	out := make(map[string]Snapshot, len(targets))
	for _, t := range targets {
		s, err := FetchStats(ctx, c.client, t.URL)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", t.Name, err)
		}
		out[t.Name] = s
	}
	return out, nil
}

// pairWindows matches two snapshot rounds into per-node windows,
// dropping nodes missing from either round.
func pairWindows(prev, cur map[string]Snapshot) map[string]Window {
	windows := make(map[string]Window, len(cur))
	for name, after := range cur {
		before, ok := prev[name]
		if !ok {
			continue
		}
		windows[name] = Window{Before: before, After: after}
	}
	return windows
}
