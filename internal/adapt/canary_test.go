// Canary integration tests: real planpd servers over netsim nodes, the
// fleet controller doing real two-phase rollouts over real HTTP, and a
// scripted /stats feed plus the fault-injecting RoundTripper making
// every failure deterministic. The adaptation controller's clocks are
// injected, so whole canary lifecycles run in microseconds of wall
// time.
package adapt

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"planp.dev/planp/internal/fleet"
	"planp.dev/planp/internal/netsim"
	"planp.dev/planp/internal/obs"
	"planp.dev/planp/internal/planpd"
)

// Two textually distinct forwarders: the incumbent and the candidate.
const fwdV1 = `
channel network(ps : int, ss : unit, p : ip*udp*blob) is
  (OnRemote(network, p); (ps + 1, ss))
`

const fwdV2 = `
channel network(ps : int, ss : unit, p : ip*udp*blob) is
  (OnRemote(network, p); (ps + 2, ss))
`

// statsScript overrides one node's GET /stats with a canned snapshot
// sequence (served in order, last repeats), putting window rates fully
// under test control.
type statsScript struct {
	mu    sync.Mutex
	snaps []Snapshot
	i     int
}

func (s *statsScript) set(snaps ...Snapshot) {
	s.mu.Lock()
	s.snaps, s.i = snaps, 0
	s.mu.Unlock()
}

func (s *statsScript) serve(w http.ResponseWriter) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.snaps) == 0 {
		return false
	}
	snap := s.snaps[min(s.i, len(s.snaps)-1)]
	s.i++
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(snap)
	return true
}

// fakeClock drives the controller's now/sleep hooks: sleeping advances
// the clock instead of waiting.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Sleep(_ context.Context, d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// rig is a fleet of planpd-managed netsim nodes plus an adaptation
// controller wired for determinism: injector on the HTTP path, scripted
// stats, fake clock.
type rig struct {
	targets []fleet.Target
	nodes   map[string]*netsim.Node
	scripts map[string]*statsScript
	inj     *fleet.Injector
	reg     *obs.Registry
	events  *eventLog
	fleet   *fleet.Controller
	ctl     *Controller
	clock   *fakeClock
}

type eventLog struct {
	mu  sync.Mutex
	got map[string]int
}

func (l *eventLog) count(key string) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.got[key]
}

func newRig(t *testing.T, n int) *rig {
	t.Helper()
	sim := netsim.NewSimulator(1)
	r := &rig{
		nodes:   map[string]*netsim.Node{},
		scripts: map[string]*statsScript{},
		inj:     fleet.NewInjector(nil),
		reg:     obs.NewRegistry(),
		events:  &eventLog{got: map[string]int{}},
		clock:   &fakeClock{t: time.Unix(1_000_000, 0)},
	}
	names := []string{"alpha", "beta", "gamma", "delta"}
	for i := 0; i < n; i++ {
		name := names[i]
		node := netsim.NewNode(sim, name, netsim.Addr(0x0A000001+uint32(i)))
		script := &statsScript{}
		ph := planpd.NewServer(node, nil).Handler()
		srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
			if req.URL.Path == "/stats" && script.serve(w) {
				return
			}
			ph.ServeHTTP(w, req)
		}))
		t.Cleanup(srv.Close)
		r.nodes[name] = node
		r.scripts[name] = script
		r.targets = append(r.targets, fleet.Target{Name: name, URL: srv.URL})
	}

	bus := &obs.Bus{}
	bus.Subscribe(obs.Func(func(e obs.Event) {
		r.events.mu.Lock()
		r.events.got[e.Kind.String()+":"+e.Detail]++
		r.events.mu.Unlock()
	}))
	client := &http.Client{Transport: r.inj}
	r.fleet = fleet.New(fleet.Config{
		Client:  client,
		Metrics: r.reg,
		Retry:   fleet.RetryPolicy{Attempts: 2, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond},
	})
	r.ctl = New(Config{Fleet: r.fleet, Client: client, Bus: bus, Metrics: r.reg, Logf: t.Logf})
	r.ctl.now = r.clock.Now
	r.ctl.sleepFn = r.clock.Sleep
	return r
}

// host returns the host:port of a target, for fault rules.
func (r *rig) host(name string) string {
	for _, tgt := range r.targets {
		if tgt.Name == name {
			return strings.TrimPrefix(tgt.URL, "http://")
		}
	}
	return ""
}

// active reads one node's running version straight from its /asp.
func (r *rig) active(t *testing.T, name string) string {
	t.Helper()
	for _, tgt := range r.targets {
		if tgt.Name != name {
			continue
		}
		resp, err := http.Get(tgt.URL + "/asp")
		if err != nil {
			t.Fatalf("GET /asp on %s: %v", name, err)
		}
		defer resp.Body.Close()
		var body struct {
			Active string `json:"active"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatal(err)
		}
		return body.Active
	}
	t.Fatalf("no target named %s", name)
	return ""
}

// flatline scripts a node's stats as a flat counter over polls polls —
// a perfectly healthy cohort member.
func (r *rig) flatline(name string, polls int) {
	snaps := make([]Snapshot, polls)
	for i := range snaps {
		snaps[i] = snapAt(name, time.Duration(i+1)*time.Second, "drops", 0)
	}
	r.scripts[name].set(snaps...)
}

// deployV1 installs the incumbent on every target.
func (r *rig) deployV1(t *testing.T) {
	t.Helper()
	if _, err := r.fleet.Deploy(context.Background(), fleet.Spec{Version: "v1", Source: fwdV1}, r.targets); err != nil {
		t.Fatalf("baseline deploy: %v", err)
	}
}

func kinds(views []fleet.View) []string {
	out := make([]string, len(views))
	for i, v := range views {
		out[i] = v.Kind
	}
	return out
}

// TestCanarySelfPromotes is the acceptance path: deploy to the canary
// cohort, observe healthy windows, auto-promote fleet-wide — all of it
// recorded in the fleet history as canary + promote records.
func TestCanarySelfPromotes(t *testing.T) {
	r := newRig(t, 3)
	r.deployV1(t)
	for _, name := range []string{"alpha", "beta", "gamma"} {
		r.flatline(name, 4)
	}

	out, err := r.ctl.Canary(context.Background(), CanaryPlan{
		Spec:     fleet.Spec{Version: "v2", Source: fwdV2},
		Canary:   r.targets[:1],
		Baseline: r.targets[1:],
		Guards:   []Guard{{Metric: "drops", Max: 5}},
		Windows:  2,
		Interval: 5 * time.Second,
	})
	if err != nil {
		t.Fatalf("canary: %v", err)
	}
	if out.Verdict != VerdictPromoted {
		t.Fatalf("verdict = %s (%s), want promoted", out.Verdict, out.Reason)
	}
	for _, name := range []string{"alpha", "beta", "gamma"} {
		if got := r.active(t, name); got != "v2" {
			t.Errorf("node %s runs %q after promotion, want v2", name, got)
		}
	}

	// The history tells the whole story: operator deploy, canary,
	// promote — the latter two carrying their kinds and reasons.
	views := r.fleet.Deployments()
	if got := kinds(views); len(got) != 3 || got[0] != "" || got[1] != "canary" || got[2] != "promote" {
		t.Fatalf("history kinds = %v, want [, canary, promote]", got)
	}
	if views[1].State != fleet.StateActive || views[2].State != fleet.StateActive {
		t.Errorf("canary/promote states = %s/%s, want Active/Active", views[1].State, views[2].State)
	}
	if !strings.Contains(views[2].Reason, "healthy") {
		t.Errorf("promote reason %q does not explain the promotion", views[2].Reason)
	}

	snap := r.reg.Snapshot()
	if snap["adapt.promoted"] != 1 || snap["adapt.windows_ok"] != 2 || snap["adapt.rolled_back"] != 0 {
		t.Errorf("metrics = promoted %d, windows_ok %d, rolled_back %d; want 1, 2, 0",
			snap["adapt.promoted"], snap["adapt.windows_ok"], snap["adapt.rolled_back"])
	}
	if r.events.count("canary:active") != 1 || r.events.count("canary:promoted") != 1 {
		t.Errorf("canary events: active %d, promoted %d; want 1 each",
			r.events.count("canary:active"), r.events.count("canary:promoted"))
	}
	// No real time passed: observation advanced the injected clock only.
	if got := r.clock.Now().Sub(time.Unix(1_000_000, 0)); got != 10*time.Second {
		t.Errorf("injected clock advanced %v, want 10s (2 windows x 5s)", got)
	}
}

// TestCanaryGuardViolationRollsBack: the candidate misbehaves inside
// the observation window; the controller revokes it and the canary node
// converges back, with the violation spelled out in the history.
func TestCanaryGuardViolationRollsBack(t *testing.T) {
	r := newRig(t, 3)
	r.deployV1(t)
	// alpha's drop counter explodes in the first window: 100 drops over
	// one scripted second.
	r.scripts["alpha"].set(
		snapAt("alpha", 1*time.Second, "drops", 0),
		snapAt("alpha", 2*time.Second, "drops", 100),
	)
	r.flatline("beta", 4)
	r.flatline("gamma", 4)

	out, err := r.ctl.Canary(context.Background(), CanaryPlan{
		Spec:     fleet.Spec{Version: "v2", Source: fwdV2},
		Canary:   r.targets[:1],
		Baseline: r.targets[1:],
		Guards:   []Guard{{Metric: "drops", Max: 5}},
		Windows:  3,
		Interval: time.Second,
	})
	if err != nil {
		t.Fatalf("a rollback verdict is not an error: %v", err)
	}
	if out.Verdict != VerdictRolledBack {
		t.Fatalf("verdict = %s (%s), want rolled-back", out.Verdict, out.Reason)
	}
	if len(out.Violations) != 1 || out.Violations[0].Node != "alpha" {
		t.Fatalf("violations = %+v, want one on alpha", out.Violations)
	}
	if got := r.active(t, "alpha"); got != "v1" {
		t.Errorf("canary node runs %q after rollback, want v1", got)
	}
	for _, name := range []string{"beta", "gamma"} {
		if got := r.active(t, name); got != "v1" {
			t.Errorf("baseline node %s runs %q, want v1 untouched", name, got)
		}
	}

	views := r.fleet.Deployments()
	last := views[len(views)-1]
	if last.Kind != "rollback" || last.State != fleet.StateRolledBack {
		t.Fatalf("last record = kind %q state %s, want rollback/RolledBack", last.Kind, last.State)
	}
	if !strings.Contains(last.Reason, "guard violated in window 1") {
		t.Errorf("rollback reason %q does not name the violated window", last.Reason)
	}
	snap := r.reg.Snapshot()
	if snap["adapt.rolled_back"] != 1 || snap["adapt.windows_violation"] != 1 {
		t.Errorf("metrics rolled_back %d, windows_violation %d; want 1, 1",
			snap["adapt.rolled_back"], snap["adapt.windows_violation"])
	}
	if r.events.count("canary:window:1:violation") != 1 || r.events.count("canary:rolled-back") != 1 {
		t.Errorf("violation/rollback events missing: %v", r.events.got)
	}
}

// TestCanaryStatsFailureRollsBack: the canary's stats endpoint starts
// 500ing mid-observation. A canary that cannot be watched cannot be
// promoted — the controller rolls it back.
func TestCanaryStatsFailureRollsBack(t *testing.T) {
	r := newRig(t, 2)
	r.deployV1(t)
	r.flatline("alpha", 4)
	r.flatline("beta", 4)
	// The initial snapshot succeeds; every later poll of alpha 500s.
	r.inj.Inject(fleet.Fault{
		Method: http.MethodGet, Host: r.host("alpha"), Path: "/stats",
		Action: fleet.FaultStatus, Status: http.StatusInternalServerError, After: 1,
	})

	out, err := r.ctl.Canary(context.Background(), CanaryPlan{
		Spec:     fleet.Spec{Version: "v2", Source: fwdV2},
		Canary:   r.targets[:1],
		Baseline: r.targets[1:],
		Guards:   []Guard{{Metric: "drops", Max: 5}},
		Windows:  2,
		Interval: time.Second,
	})
	if err != nil {
		t.Fatalf("unobservable canary should roll back cleanly: %v", err)
	}
	if out.Verdict != VerdictRolledBack {
		t.Fatalf("verdict = %s (%s), want rolled-back", out.Verdict, out.Reason)
	}
	if !strings.Contains(out.Reason, "unobservable") {
		t.Errorf("reason %q does not say the canary was unobservable", out.Reason)
	}
	if got := r.active(t, "alpha"); got != "v1" {
		t.Errorf("canary runs %q after rollback, want v1", got)
	}
	if r.events.count("canary:unobservable") == 0 {
		t.Error("no unobservable event published")
	}
}

// TestCanaryDiesMidObserve: the canary node vanishes entirely during
// observation. The rollback cannot reach it, so the run reports Failed
// honestly — and once the node returns, a replayed rollback converges
// it (the node-side protocol is idempotent).
func TestCanaryDiesMidObserve(t *testing.T) {
	r := newRig(t, 2)
	r.deployV1(t)
	r.flatline("alpha", 4)
	r.flatline("beta", 4)
	// First window poll kills the node: request applied, response lost,
	// host dead from then on.
	r.inj.Inject(fleet.Fault{
		Method: http.MethodGet, Host: r.host("alpha"), Path: "/stats",
		Action: fleet.FaultKill, After: 1, Count: 1,
	})

	out, err := r.ctl.Canary(context.Background(), CanaryPlan{
		Spec:    fleet.Spec{Version: "v2", Source: fwdV2},
		Canary:  r.targets[:1],
		Guards:  []Guard{{Metric: "drops", Max: 5}},
		Windows: 2, Interval: time.Second,
	})
	if err == nil || out.Verdict != VerdictFailed {
		t.Fatalf("verdict = %v err %v, want failed with error (rollback unreachable)", out, err)
	}
	views := r.fleet.Deployments()
	last := views[len(views)-1]
	if last.Kind != "rollback" || last.State != fleet.StateFailed {
		t.Fatalf("last record = kind %q state %s, want rollback/Failed", last.Kind, last.State)
	}

	// The node comes back: replaying the rollback converges it.
	r.inj.Revive(r.host("alpha"))
	if _, err := r.fleet.RollbackDeployment(context.Background(), out.Canary, "node revived; converging"); err != nil {
		t.Fatalf("replayed rollback after revival: %v", err)
	}
	if got := r.active(t, "alpha"); got != "v1" {
		t.Errorf("revived canary runs %q, want v1", got)
	}
}

// TestCanaryPromoteInterrupted: the canary is healthy but the promote
// rollout fails partway. The fleet converges the baseline cohort back
// by itself, and the controller revokes the canary too — a clean
// all-incumbent fleet instead of a wedged mixed one.
func TestCanaryPromoteInterrupted(t *testing.T) {
	r := newRig(t, 3)
	r.deployV1(t)
	for _, name := range []string{"alpha", "beta", "gamma"} {
		r.flatline(name, 4)
	}
	// beta persistently refuses activation during the promote phase.
	r.inj.Inject(fleet.Fault{
		Method: http.MethodPost, Host: r.host("beta"), Path: "/asp/activate",
		Action: fleet.FaultStatus, Status: http.StatusServiceUnavailable,
	})

	out, err := r.ctl.Canary(context.Background(), CanaryPlan{
		Spec:     fleet.Spec{Version: "v2", Source: fwdV2},
		Canary:   r.targets[:1],
		Baseline: r.targets[1:],
		Guards:   []Guard{{Metric: "drops", Max: 5}},
		Windows:  1,
		Interval: time.Second,
	})
	if err != nil {
		t.Fatalf("interrupted promotion should converge cleanly: %v", err)
	}
	if out.Verdict != VerdictRolledBack {
		t.Fatalf("verdict = %s (%s), want rolled-back", out.Verdict, out.Reason)
	}
	if !strings.Contains(out.Reason, "promotion failed") {
		t.Errorf("reason %q does not blame the promotion", out.Reason)
	}
	// Everything converged back to the incumbent.
	for _, name := range []string{"alpha", "beta", "gamma"} {
		if got := r.active(t, name); got != "v1" {
			t.Errorf("node %s runs %q after interrupted promotion, want v1", name, got)
		}
	}
	// History: baseline deploy, canary, the promote that rolled itself
	// back, and the canary's revocation.
	if got := kinds(r.fleet.Deployments()); len(got) != 4 ||
		got[1] != "canary" || got[2] != "promote" || got[3] != "rollback" {
		t.Fatalf("history kinds = %v, want [, canary, promote, rollback]", got)
	}
}

// TestAdaptHTTPAPI: the POST /adapt + GET /adapt surface — a run
// started over HTTP proceeds in the background and its whole story is
// queryable.
func TestAdaptHTTPAPI(t *testing.T) {
	r := newRig(t, 1)
	r.deployV1(t)
	r.flatline("alpha", 4)
	api := httptest.NewServer(r.ctl.Handler())
	defer api.Close()

	// Malformed guard: rejected up front, no run started.
	resp, err := http.Post(api.URL+"/adapt", "application/json",
		strings.NewReader(`{"source":"x","canary":[{"Name":"alpha","URL":"u"}],"guards":["nonsense"]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("bad guard: got %d, want 422", resp.StatusCode)
	}

	body, _ := json.Marshal(CanaryRequest{
		Version: "v2", Source: fwdV2,
		Canary:     []fleet.Target{r.targets[0]},
		Guards:     []string{"drops<=5"},
		Windows:    1,
		IntervalMS: 10,
	})
	resp, err = http.Post(api.URL+"/adapt", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	var started struct {
		ID      int  `json:"id"`
		Started bool `json:"started"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&started); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || !started.Started || started.ID == 0 {
		t.Fatalf("POST /adapt = %d %+v, want 202 with run id", resp.StatusCode, started)
	}

	// The background run finishes (its sleeps advance the fake clock, so
	// this is fast); GET /adapt reports the full record.
	deadline := time.Now().Add(5 * time.Second)
	for {
		var runs struct {
			Runs []RunView `json:"runs"`
		}
		resp, err := http.Get(api.URL + "/adapt")
		if err != nil {
			t.Fatal(err)
		}
		if err := json.NewDecoder(resp.Body).Decode(&runs); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if len(runs.Runs) == 1 && runs.Runs[0].Phase == "done" {
			run := runs.Runs[0]
			if run.Verdict != VerdictPromoted {
				t.Fatalf("run = %+v, want promoted", run)
			}
			if run.CanaryDeployment == 0 || run.Version != "v2" || run.Canary != "alpha" {
				t.Errorf("run record incomplete: %+v", run)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("run never finished: %+v", runs.Runs)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := r.active(t, "alpha"); got != "v2" {
		t.Errorf("node runs %q after HTTP-started canary, want v2", got)
	}
}
