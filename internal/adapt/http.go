// The adaptation control API: start a canary run over HTTP and watch
// it (and every past run) converge. Mounted by cmd/planpd next to the
// fleet endpoints — POST /adapt is the self-promoting sibling of
// POST /deploy.
package adapt

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"planp.dev/planp/internal/fleet"
)

// maxAdaptBody bounds a canary request (the embedded protocol source
// dominates; the largest in-tree ASP is ~5 KB).
const maxAdaptBody = 2 << 20

// CanaryRequest is the POST /adapt body: a canary plan in JSON, with
// guards in their operator string form.
type CanaryRequest struct {
	Version string `json:"version"`
	Source  string `json:"source"`
	Engine  string `json:"engine,omitempty"`
	Verify  string `json:"verify,omitempty"`
	Reason  string `json:"reason,omitempty"`

	Canary   []fleet.Target `json:"canary"`
	Baseline []fleet.Target `json:"baseline,omitempty"`

	Guards     []string `json:"guards"`
	Windows    int      `json:"windows,omitempty"`
	IntervalMS int      `json:"interval_ms,omitempty"`

	// TimeoutMS bounds the whole run (default: windows*interval plus a
	// minute of deploy slack).
	TimeoutMS int `json:"timeout_ms,omitempty"`
}

// Plan compiles the request into a CanaryPlan.
func (req *CanaryRequest) Plan() (CanaryPlan, error) {
	if req.Source == "" {
		return CanaryPlan{}, errors.New("adapt: request needs source")
	}
	if len(req.Canary) == 0 {
		return CanaryPlan{}, errors.New("adapt: request needs at least one canary target")
	}
	guards, err := ParseGuards(req.Guards)
	if err != nil {
		return CanaryPlan{}, err
	}
	return CanaryPlan{
		Spec: fleet.Spec{
			Version: req.Version, Source: req.Source,
			Engine: req.Engine, Verify: req.Verify, Reason: req.Reason,
		},
		Canary:   req.Canary,
		Baseline: req.Baseline,
		Guards:   guards,
		Windows:  req.Windows,
		Interval: time.Duration(req.IntervalMS) * time.Millisecond,
	}, nil
}

// timeout returns the run's overall deadline.
func (req *CanaryRequest) timeout(plan CanaryPlan) time.Duration {
	if req.TimeoutMS > 0 {
		return time.Duration(req.TimeoutMS) * time.Millisecond
	}
	return time.Duration(plan.Windows)*plan.Interval + time.Minute
}

// Handler returns the adaptation API:
//
//	POST /adapt   start a canary run (CanaryRequest body); responds
//	              immediately with {"id": N, "started": true} — the run
//	              proceeds in the background and lands in the fleet
//	              history either way
//	GET  /adapt   every run's status, oldest first
func (c *Controller) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/adapt", func(w http.ResponseWriter, r *http.Request) {
		switch r.Method {
		case http.MethodGet:
			writeJSON(w, http.StatusOK, map[string]any{"runs": c.Runs()})
		case http.MethodPost:
			c.startRun(w, r)
		default:
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		}
	})
	return mux
}

func (c *Controller) startRun(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxAdaptBody+1))
	if err != nil {
		http.Error(w, fmt.Sprintf("reading body: %v", err), http.StatusBadRequest)
		return
	}
	if len(body) > maxAdaptBody {
		http.Error(w, "request too large", http.StatusRequestEntityTooLarge)
		return
	}
	var req CanaryRequest
	if err := json.Unmarshal(body, &req); err != nil {
		http.Error(w, fmt.Sprintf("decoding request: %v", err), http.StatusBadRequest)
		return
	}
	plan, err := req.Plan()
	if err != nil {
		http.Error(w, err.Error(), http.StatusUnprocessableEntity)
		return
	}
	// Canary validates and defaults the plan too, but the HTTP caller
	// has already been answered by then; re-run the cheap defaulting
	// here so the timeout and the accepted response are honest.
	if plan.Windows <= 0 {
		plan.Windows = 3
	}
	if plan.Interval <= 0 {
		plan.Interval = 2 * time.Second
	}

	// The run outlives the request: it is detached from the request
	// context and bounded by its own deadline instead.
	ctx, cancel := context.WithTimeout(context.WithoutCancel(r.Context()), req.timeout(plan))
	idc := make(chan int, 1)
	untrack := c.trackBackground(cancel)
	go func() {
		defer untrack()
		defer cancel()
		out, err := c.CanaryWithID(ctx, plan, idc)
		if err != nil {
			c.logf("adapt: run failed: %v", err)
			return
		}
		c.logf("adapt: run finished: %s (%s)", out.Verdict, out.Reason)
	}()
	writeJSON(w, http.StatusAccepted, map[string]any{"id": <-idc, "started": true})
}

// CanaryWithID is Canary, reporting the run's ID on idc as soon as the
// run record exists (the HTTP handler answers with it while the run
// continues in the background).
func (c *Controller) CanaryWithID(ctx context.Context, plan CanaryPlan, idc chan<- int) (*Outcome, error) {
	if plan.Windows <= 0 {
		plan.Windows = 3
	}
	if plan.Interval <= 0 {
		plan.Interval = 2 * time.Second
	}
	run := c.newRun(plan.Spec.Version, plan)
	if idc != nil {
		idc <- run.View().ID
	}
	return c.canaryRun(ctx, plan, run)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}
