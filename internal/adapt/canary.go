// The self-promoting canary: stage a candidate on a small cohort, watch
// operator-declared guard metrics for a few windows against the
// baseline cohort, then promote fleet-wide or roll back — the full §4
// "adapt a running network" story with the judgment call automated.
//
// The loop's shape keeps every verdict explainable: deploys and
// rollbacks are ordinary fleet history records (kinds "canary",
// "promote", "rollback"), each window's judgment is a pure EvalGuards
// call over snapshots, and the final Outcome carries the violations
// that decided it.
package adapt

import (
	"context"
	"fmt"
	"strings"
	"time"

	"planp.dev/planp/internal/fleet"
	"planp.dev/planp/internal/obs"
)

// Canary verdicts.
const (
	// VerdictPromoted: every window passed and the candidate now runs
	// fleet-wide.
	VerdictPromoted = "promoted"
	// VerdictRolledBack: a guard violated (or the canary went
	// unobservable, or promotion failed) and the canary cohort was
	// returned to its previous version.
	VerdictRolledBack = "rolled-back"
	// VerdictFailed: the run could not reach a clean end state — the
	// canary deploy itself failed, or a rollback did not converge.
	VerdictFailed = "failed"
)

// CanaryPlan configures one canary run.
type CanaryPlan struct {
	// Spec is the candidate rollout; its Kind is forced to "canary".
	Spec fleet.Spec
	// Canary is the cohort that stages the candidate; Baseline is the
	// comparison cohort (it keeps running the incumbent and receives the
	// promote rollout on success). Baseline may be empty: guards then
	// have no relative comparison and promotion is canary-only.
	Canary   []fleet.Target
	Baseline []fleet.Target
	// Guards declare what "healthy" means; an empty list auto-promotes
	// after the observation windows (useful only for drills).
	Guards []Guard
	// Windows (default 3) observation windows of Interval (default 2s)
	// each.
	Windows  int
	Interval time.Duration
}

// Outcome is a finished canary run.
type Outcome struct {
	Verdict    string
	Reason     string
	Violations []Violation
	// Canary is the cohort rollout record; Final is the follow-up record
	// (the promote deploy or the rollback), nil when there was none.
	Canary *fleet.Deployment
	Final  *fleet.Deployment
}

// Canary runs one self-promoting canary rollout to completion. The
// returned error is non-nil only for VerdictFailed — a rollback verdict
// is the controller doing its job, not an error.
func (c *Controller) Canary(ctx context.Context, plan CanaryPlan) (*Outcome, error) {
	if plan.Windows <= 0 {
		plan.Windows = 3
	}
	if plan.Interval <= 0 {
		plan.Interval = 2 * time.Second
	}
	return c.canaryRun(ctx, plan, c.newRun(plan.Spec.Version, plan))
}

// canaryRun drives one run against an already-registered run record
// (plan defaults are resolved by the callers so the record is honest).
func (c *Controller) canaryRun(ctx context.Context, plan CanaryPlan, run *Run) (*Outcome, error) {
	defer c.finishRun(run)
	if len(plan.Canary) == 0 {
		out := &Outcome{Verdict: VerdictFailed, Reason: "canary needs at least one canary target"}
		run.setOutcome(out)
		return nil, fmt.Errorf("adapt: %s", out.Reason)
	}
	spec := plan.Spec
	spec.Kind = "canary"
	if spec.Reason == "" {
		spec.Reason = fmt.Sprintf("canary on %d of %d node(s), %d window(s) of %s",
			len(plan.Canary), len(plan.Canary)+len(plan.Baseline), plan.Windows, plan.Interval)
	}

	// Stage + activate on the canary cohort. A failure here is already
	// converged by fleet's own in-flight rollback.
	run.setPhase("deploying")
	c.ctCanaries.Inc()
	canaryDep, err := c.fleet.Deploy(ctx, spec, plan.Canary)
	run.setCanary(canaryDep)
	if err != nil {
		c.ctFailed.Inc()
		out := &Outcome{Verdict: VerdictFailed, Reason: fmt.Sprintf("canary deploy failed: %v", err), Canary: canaryDep}
		run.setOutcome(out)
		return out, fmt.Errorf("adapt: %s", out.Reason)
	}
	for _, t := range plan.Canary {
		c.publish(obs.KindCanary, t.Name, "active")
	}
	c.logf("adapt: canary %s active on %s; observing %d window(s) of %s",
		spec.Version, targetNames(plan.Canary), plan.Windows, plan.Interval)

	// Observe: consecutive windows of (canary, baseline) snapshots,
	// judged by the pure guard evaluator. An unobservable canary node is
	// itself a violation — a canary that cannot be watched cannot be
	// promoted.
	run.setPhase("observing")
	prevCanary, prevBase, err := c.snapshotCohorts(ctx, plan)
	if err != nil {
		return c.revoke(ctx, run, canaryDep, nil, fmt.Sprintf("canary unobservable: %v", err))
	}
	for w := 1; w <= plan.Windows; w++ {
		c.sleep(ctx, plan.Interval)
		if err := ctx.Err(); err != nil {
			return c.revoke(ctx, run, canaryDep, nil, fmt.Sprintf("canceled during window %d: %v", w, err))
		}
		curCanary, curBase, err := c.snapshotCohorts(ctx, plan)
		if err != nil {
			for _, t := range plan.Canary {
				c.publish(obs.KindCanary, t.Name, "unobservable")
			}
			return c.revoke(ctx, run, canaryDep, nil, fmt.Sprintf("canary unobservable in window %d: %v", w, err))
		}
		canaryWin := pairWindows(prevCanary, curCanary)
		baseWin := pairWindows(prevBase, curBase)
		prevCanary, prevBase = curCanary, curBase

		viols := EvalGuards(plan.Guards, canaryWin, baseWin)
		if len(viols) > 0 {
			c.ctWindowsViolation.Inc()
			for _, t := range plan.Canary {
				c.publish(obs.KindCanary, t.Name, fmt.Sprintf("window:%d:violation", w))
			}
			reasons := make([]string, len(viols))
			for i, v := range viols {
				reasons[i] = v.String()
			}
			return c.revoke(ctx, run, canaryDep, viols,
				fmt.Sprintf("guard violated in window %d/%d: %s", w, plan.Windows, strings.Join(reasons, "; ")))
		}
		c.ctWindowsOK.Inc()
		run.setWindowsDone(w)
		for _, t := range plan.Canary {
			c.publish(obs.KindCanary, t.Name, fmt.Sprintf("window:%d:ok", w))
		}
		c.logf("adapt: canary %s window %d/%d ok", spec.Version, w, plan.Windows)
	}

	// Promote: extend the candidate to the baseline cohort. The canary
	// cohort already runs it, so convergence is the whole fleet on one
	// version. A failed promotion revokes the canary too — a clean
	// all-old fleet beats a wedged mixed one.
	reason := fmt.Sprintf("canary %s healthy for %d window(s) on %s", spec.Version, plan.Windows, targetNames(plan.Canary))
	var finalDep *fleet.Deployment
	if len(plan.Baseline) > 0 {
		run.setPhase("promoting")
		promote := spec
		promote.Kind = "promote"
		promote.Reason = reason
		finalDep, err = c.fleet.Deploy(ctx, promote, plan.Baseline)
		run.setFinal(finalDep)
		if err != nil {
			return c.revoke(ctx, run, canaryDep, nil, fmt.Sprintf("promotion failed, revoking canary: %v", err))
		}
	}
	c.ctPromoted.Inc()
	for _, t := range plan.Canary {
		c.publish(obs.KindCanary, t.Name, "promoted")
	}
	c.logf("adapt: canary %s promoted (%s)", spec.Version, reason)
	out := &Outcome{Verdict: VerdictPromoted, Reason: reason, Canary: canaryDep, Final: finalDep}
	run.setOutcome(out)
	return out, nil
}

// revoke rolls the canary cohort back and closes the run with a
// rolled-back (or, if even the rollback failed, failed) outcome.
func (c *Controller) revoke(ctx context.Context, run *Run, canaryDep *fleet.Deployment, viols []Violation, reason string) (*Outcome, error) {
	run.setPhase("rolling-back")
	c.logf("adapt: canary %s: %s", canaryDep.Version, reason)
	// The deadline that canceled the observation must not also doom the
	// rollback; revocation gets its own context.
	rbCtx := ctx
	if rbCtx.Err() != nil {
		rbCtx = context.WithoutCancel(ctx)
	}
	rb, err := c.fleet.RollbackDeployment(rbCtx, canaryDep, reason)
	out := &Outcome{Reason: reason, Violations: viols, Canary: canaryDep, Final: rb}
	if err != nil {
		c.ctFailed.Inc()
		out.Verdict = VerdictFailed
		out.Reason = fmt.Sprintf("%s; rollback did not converge: %v", reason, err)
		run.setOutcome(out)
		return out, fmt.Errorf("adapt: %s", out.Reason)
	}
	c.ctRolledBack.Inc()
	for _, t := range cohortOf(canaryDep) {
		c.publish(obs.KindCanary, t, "rolled-back")
	}
	out.Verdict = VerdictRolledBack
	run.setOutcome(out)
	return out, nil
}

// snapshotCohorts polls both cohorts' stats. Canary failures are fatal
// to the run (reported as the returned error); a baseline node that
// cannot be polled merely drops out of the comparison mean.
func (c *Controller) snapshotCohorts(ctx context.Context, plan CanaryPlan) (canary, baseline map[string]Snapshot, err error) {
	canary = make(map[string]Snapshot, len(plan.Canary))
	for _, t := range plan.Canary {
		s, err := FetchStats(ctx, c.client, t.URL)
		if err != nil {
			return nil, nil, fmt.Errorf("%s: %w", t.Name, err)
		}
		canary[t.Name] = s
	}
	baseline = make(map[string]Snapshot, len(plan.Baseline))
	for _, t := range plan.Baseline {
		s, err := FetchStats(ctx, c.client, t.URL)
		if err != nil {
			c.logf("adapt: baseline %s unobservable, dropped from comparison: %v", t.Name, err)
			continue
		}
		baseline[t.Name] = s
	}
	return canary, baseline, nil
}

func targetNames(ts []fleet.Target) string {
	names := make([]string, len(ts))
	for i, t := range ts {
		names[i] = t.Name
	}
	return strings.Join(names, ",")
}

// cohortOf lists a deployment's node names from its public view.
func cohortOf(d *fleet.Deployment) []string {
	v := d.View()
	names := make([]string, len(v.Nodes))
	for i, n := range v.Nodes {
		names[i] = n.Name
	}
	return names
}
