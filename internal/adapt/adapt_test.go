// Pure-function tests: windows, guards, and the selector state machine.
// Nothing here sleeps, polls, or deploys — every verdict is a function
// of snapshots and explicit clocks, which is the package's core design
// claim.
package adapt

import (
	"reflect"
	"testing"
	"time"
)

// snapAt builds a single-counter snapshot at mono offset.
func snapAt(node string, mono time.Duration, name string, val int64) Snapshot {
	return Snapshot{Node: node, MonoNS: int64(mono), Stats: map[string]int64{name: val}}
}

func TestWindowRates(t *testing.T) {
	w := Window{
		Before: Snapshot{MonoNS: int64(1 * time.Second), Stats: map[string]int64{"drops": 10}},
		After:  Snapshot{MonoNS: int64(3 * time.Second), Stats: map[string]int64{"drops": 30, "new": 4}},
	}
	if got := w.Duration(); got != 2*time.Second {
		t.Errorf("Duration = %v, want 2s", got)
	}
	if got := w.Delta("drops"); got != 20 {
		t.Errorf("Delta(drops) = %d, want 20", got)
	}
	if got := w.Rate("drops"); got != 10 {
		t.Errorf("Rate(drops) = %g, want 10/s", got)
	}
	// A counter that appeared mid-window deltas from zero.
	if got := w.Rate("new"); got != 2 {
		t.Errorf("Rate(new) = %g, want 2/s", got)
	}
	// Unknown counters rate 0; windows never panic on missing names.
	if got := w.Rate("absent"); got != 0 {
		t.Errorf("Rate(absent) = %g, want 0", got)
	}

	// Degenerate window (daemon restarted; mono went backwards): rate 0,
	// not negative or infinite.
	back := Window{
		Before: Snapshot{MonoNS: int64(5 * time.Second), Stats: map[string]int64{"drops": 100}},
		After:  Snapshot{MonoNS: int64(1 * time.Second), Stats: map[string]int64{"drops": 3}},
	}
	if got := back.Rate("drops"); got != 0 {
		t.Errorf("backwards window Rate = %g, want 0", got)
	}
	var zero Window
	if zero.Rate("anything") != 0 || zero.Delta("anything") != 0 {
		t.Error("zero window must rate and delta as 0")
	}
}

func TestParseGuard(t *testing.T) {
	cases := []struct {
		in   string
		want Guard
	}{
		{"node.{node}.drops<=5", Guard{Metric: "node.{node}.drops", Max: 5}},
		{"asp.gw.faults<=0.25", Guard{Metric: "asp.gw.faults", Max: 0.25}},
		{"errs<=2x", Guard{Metric: "errs", Relative: true, Ratio: 2}},
		{"errs<=1.5x+0.5", Guard{Metric: "errs", Relative: true, Ratio: 1.5, Slack: 0.5}},
		{" errs <= 3 ", Guard{Metric: "errs", Max: 3}},
	}
	for _, c := range cases {
		got, err := ParseGuard(c.in)
		if err != nil {
			t.Errorf("ParseGuard(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseGuard(%q) = %+v, want %+v", c.in, got, c.want)
		}
	}
	for _, bad := range []string{"", "noequals", "m<=", "<=5", "m<=abc", "m<=2x-1", "m<=2x+z"} {
		if _, err := ParseGuard(bad); err == nil {
			t.Errorf("ParseGuard(%q) accepted", bad)
		}
	}
	// Round trip: the rendered form re-parses to the same guard.
	for _, c := range cases {
		re, err := ParseGuard(c.want.String())
		if err != nil || re != c.want {
			t.Errorf("ParseGuard(%q) round trip = %+v, %v", c.want.String(), re, err)
		}
	}
}

func TestEvalGuardsAbsolute(t *testing.T) {
	g := []Guard{{Metric: "drops", Max: 5}}
	healthy := map[string]Window{"a": {
		Before: snapAt("a", 0, "drops", 0),
		After:  snapAt("a", time.Second, "drops", 4), // 4/s <= 5
	}}
	if v := EvalGuards(g, healthy, nil); len(v) != 0 {
		t.Errorf("healthy canary violated: %v", v)
	}
	sick := map[string]Window{"a": {
		Before: snapAt("a", 0, "drops", 0),
		After:  snapAt("a", time.Second, "drops", 9), // 9/s > 5
	}}
	v := EvalGuards(g, sick, nil)
	if len(v) != 1 || v[0].Node != "a" || v[0].Rate != 9 || v[0].Limit != 5 {
		t.Fatalf("violations = %+v, want one on a at 9/s vs 5", v)
	}
	if v[0].String() == "" {
		t.Error("violation renders empty")
	}
}

func TestEvalGuardsRelativeAndPlaceholder(t *testing.T) {
	// Per-node counters in a shared registry: the {node} placeholder
	// points each cohort member at its own counter.
	g := []Guard{{Metric: "node.{node}.errs", Relative: true, Ratio: 2, Slack: 1}}
	mk := func(node string, before, after int64) Window {
		return Window{
			Before: Snapshot{MonoNS: 0, Stats: map[string]int64{"node." + node + ".errs": before}},
			After:  Snapshot{MonoNS: int64(time.Second), Stats: map[string]int64{"node." + node + ".errs": after}},
		}
	}
	baseline := map[string]Window{
		"b1": mk("b1", 0, 2), // 2/s
		"b2": mk("b2", 0, 4), // 4/s -> mean 3/s, limit 2*3+1 = 7/s
	}
	if v := EvalGuards(g, map[string]Window{"c": mk("c", 0, 7)}, baseline); len(v) != 0 {
		t.Errorf("canary at the limit violated: %v", v)
	}
	v := EvalGuards(g, map[string]Window{"c": mk("c", 0, 8)}, baseline)
	if len(v) != 1 || v[0].Limit != 7 || v[0].Rate != 8 {
		t.Fatalf("violations = %+v, want one at 8/s vs limit 7/s", v)
	}
	// No baseline: a relative limit degrades to its slack.
	v = EvalGuards(g, map[string]Window{"c": mk("c", 0, 2)}, nil)
	if len(v) != 1 || v[0].Limit != 1 {
		t.Fatalf("baseline-less violations = %+v, want one with limit 1 (the slack)", v)
	}
}

// TestEvalGuardsDeterministic: same snapshots, same verdict, same order
// — the acceptance requirement that decisions are reproducible from
// their inputs.
func TestEvalGuardsDeterministic(t *testing.T) {
	g := []Guard{{Metric: "drops", Max: 1}, {Metric: "reqs", Max: 2}}
	canary := map[string]Window{}
	for _, n := range []string{"z", "a", "m"} {
		canary[n] = Window{
			Before: Snapshot{MonoNS: 0, Stats: map[string]int64{"drops": 0, "reqs": 0}},
			After:  Snapshot{MonoNS: int64(time.Second), Stats: map[string]int64{"drops": 5, "reqs": 5}},
		}
	}
	first := EvalGuards(g, canary, nil)
	if len(first) != 6 {
		t.Fatalf("want 2 guards x 3 nodes = 6 violations, got %d", len(first))
	}
	for i := 0; i < 50; i++ {
		if again := EvalGuards(g, canary, nil); !reflect.DeepEqual(first, again) {
			t.Fatalf("run %d differs: %v vs %v", i, first, again)
		}
	}
}

func TestSelectorHysteresis(t *testing.T) {
	t0 := time.Unix(1000, 0)
	s := NewSelector("rr", 3, 0)
	// Two windows of dissent, one agreement, two more dissent: the
	// streak restarts, so no switch until three in a row.
	for i, step := range []struct {
		pref string
		want string
	}{
		{"lc", ""}, {"lc", ""}, {"rr", ""}, {"lc", ""}, {"lc", ""}, {"lc", "lc"},
	} {
		got := s.Observe(step.pref, t0.Add(time.Duration(i)*time.Second))
		if got != step.want {
			t.Fatalf("step %d: Observe(%q) = %q, want %q", i, step.pref, got, step.want)
		}
	}
	// Observe proposes, Commit disposes: current is unchanged until the
	// caller commits (a failed redeploy keeps demanding the switch).
	if s.Current() != "rr" {
		t.Fatalf("Current = %q before commit, want rr", s.Current())
	}
	if got := s.Observe("lc", t0.Add(10*time.Second)); got != "lc" {
		t.Fatalf("uncommitted switch not re-demanded: got %q", got)
	}
	s.Commit("lc", t0.Add(11*time.Second))
	if s.Current() != "lc" {
		t.Fatalf("Current = %q after commit, want lc", s.Current())
	}
	// Preference for the new current is a hold.
	if got := s.Observe("lc", t0.Add(12*time.Second)); got != "" {
		t.Fatalf("agreement proposed a switch: %q", got)
	}
}

func TestSelectorCooldown(t *testing.T) {
	t0 := time.Unix(2000, 0)
	s := NewSelector("rr", 1, 10*time.Second)
	if got := s.Observe("lc", t0); got != "lc" {
		t.Fatalf("first dissent with hysteresis 1 must switch, got %q", got)
	}
	s.Commit("lc", t0)
	// Dissent during cooldown accumulates but cannot commit...
	if got := s.Observe("rr", t0.Add(3*time.Second)); got != "" {
		t.Fatalf("switch inside cooldown: %q", got)
	}
	if got := s.Observe("rr", t0.Add(6*time.Second)); got != "" {
		t.Fatalf("switch inside cooldown: %q", got)
	}
	// ...and fires on the first eligible observation after it expires.
	if got := s.Observe("rr", t0.Add(10*time.Second)); got != "rr" {
		t.Fatalf("switch after cooldown = %q, want rr", got)
	}
}

// TestSelectorReproducible: an identical observation sequence replays to
// the identical switch sequence — time enters only via the explicit
// argument.
func TestSelectorReproducible(t *testing.T) {
	prefs := []string{"lc", "lc", "rr", "lc", "lc", "lc", "lc", "rr", "rr", "rr", "rr", "rr"}
	run := func() []string {
		t0 := time.Unix(3000, 0)
		s := NewSelector("rr", 2, 4*time.Second)
		var switches []string
		for i, p := range prefs {
			now := t0.Add(time.Duration(i) * time.Second)
			if to := s.Observe(p, now); to != "" {
				s.Commit(to, now)
				switches = append(switches, to)
			}
		}
		return switches
	}
	first := run()
	if len(first) == 0 {
		t.Fatal("sequence produced no switches; test is vacuous")
	}
	for i := 0; i < 20; i++ {
		if again := run(); !reflect.DeepEqual(first, again) {
			t.Fatalf("replay %d: %v vs %v", i, first, again)
		}
	}
}
