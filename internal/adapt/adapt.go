// Package adapt is the closed-loop adaptation controller: the layer
// that turns the paper's downloadable protocols from an operator tool
// into a feedback system. It watches running nodes through planpd's
// GET /stats, judges what it sees with pure functions over metric
// windows, and acts through the internal/fleet rollout machinery —
// never touching a node except via the same two-phase deploys an
// operator would issue.
//
// Two loops share the machinery:
//
//   - Canary (canary.go): stage a candidate on a cohort, watch
//     operator-declared guard metrics for a few windows against the
//     baseline cohort, then self-promote fleet-wide or roll back.
//   - RunPolicy (policy.go): continuously select among registered
//     protocol variants (the §3.2 gateway round-robin / least-conn /
//     failover family) from metric trends, redeploying when the choice
//     changes — debounced by hysteresis and cooldown so the fleet
//     never flaps.
//
// Every decision input is a Window (two mono_ns-stamped snapshots) and
// every decision function is pure with an injected clock, so verdicts
// are reproducible from the snapshots that produced them and the whole
// controller unit-tests without sleeping. Every action lands in the
// fleet history (kinds "canary", "promote", "rollback", "adapt") and on
// the obs bus (KindCanary/KindAdapt), so GET /deployments tells the
// complete adaptation story after the fact. See docs/ADAPTATION.md.
package adapt

import (
	"context"
	"net/http"
	"sync"
	"time"

	"planp.dev/planp/internal/fleet"
	"planp.dev/planp/internal/obs"
)

// Config configures a Controller. Fleet is required; everything else
// defaults sanely.
type Config struct {
	// Fleet executes every deploy/promote/rollback this controller
	// decides on (and records them in its history).
	Fleet *fleet.Controller
	// Client polls GET /stats; wrap its Transport in a fleet.Injector
	// for fault testing. Defaults to http.DefaultClient.
	Client *http.Client
	// Bus, when set, receives KindCanary/KindAdapt events.
	Bus *obs.Bus
	// Metrics, when set, receives the "adapt.*" counters.
	Metrics *obs.Registry
	// Logf, when set, receives one line per decision.
	Logf func(format string, args ...any)
}

// Controller runs canary and policy loops against one fleet.
type Controller struct {
	fleet  *fleet.Controller
	client *http.Client
	bus    *obs.Bus
	busMu  sync.Mutex
	logf   func(string, ...any)
	start  time.Time

	// Injected clocks: tests replace these to run the loops without
	// real time passing.
	now     func() time.Time
	sleepFn func(context.Context, time.Duration)

	ctCanaries, ctPromoted, ctRolledBack, ctFailed *obs.Counter
	ctWindowsOK, ctWindowsViolation                *obs.Counter
	ctSwitches, ctHolds                            *obs.Counter

	mu     sync.Mutex
	runs   []*Run
	nextID int

	// Background-run bookkeeping for graceful shutdown: every detached
	// HTTP-started run registers here so Drain can wait for (or cancel)
	// it. Guarded by bgMu, not mu — Drain must not contend with the
	// run-record lock.
	bgMu      sync.Mutex
	bgWG      sync.WaitGroup
	bgCancels map[int]context.CancelFunc
	bgNext    int
}

// New returns a Controller driving cfg.Fleet.
func New(cfg Config) *Controller {
	c := &Controller{
		fleet:   cfg.Fleet,
		client:  cfg.Client,
		bus:     cfg.Bus,
		logf:    cfg.Logf,
		start:   time.Now(),
		now:     time.Now,
		sleepFn: sleepCtx,
		nextID:  1,
	}
	if c.fleet == nil {
		panic("adapt: Config.Fleet is required")
	}
	if c.client == nil {
		c.client = http.DefaultClient
	}
	if c.logf == nil {
		c.logf = func(string, ...any) {}
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	c.ctCanaries = reg.Counter("adapt.canaries")
	c.ctPromoted = reg.Counter("adapt.promoted")
	c.ctRolledBack = reg.Counter("adapt.rolled_back")
	c.ctFailed = reg.Counter("adapt.failed")
	c.ctWindowsOK = reg.Counter("adapt.windows_ok")
	c.ctWindowsViolation = reg.Counter("adapt.windows_violation")
	c.ctSwitches = reg.Counter("adapt.switches")
	c.ctHolds = reg.Counter("adapt.holds")
	return c
}

// sleepCtx is the default sleep: context-aware real time.
func sleepCtx(ctx context.Context, d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
	case <-t.C:
	}
}

// sleep routes through the controller's hook (tests replace it).
func (c *Controller) sleep(ctx context.Context, d time.Duration) { c.sleepFn(ctx, d) }

// trackBackground registers a detached run's cancel for Drain and
// returns its deregistration. The HTTP handler wraps each background
// canary in this so shutdown can account for it.
func (c *Controller) trackBackground(cancel context.CancelFunc) (done func()) {
	c.bgMu.Lock()
	if c.bgCancels == nil {
		c.bgCancels = map[int]context.CancelFunc{}
	}
	c.bgNext++
	id := c.bgNext
	c.bgCancels[id] = cancel
	c.bgWG.Add(1)
	c.bgMu.Unlock()
	return func() {
		c.bgMu.Lock()
		delete(c.bgCancels, id)
		c.bgMu.Unlock()
		c.bgWG.Done()
	}
}

// Drain waits for every background canary run to finish. When ctx
// expires first, the remaining runs are canceled (their own rollback
// paths run under their detached contexts) and Drain waits for them to
// exit. It reports whether every run completed without being cut short
// — the graceful-shutdown path: stop accepting requests, Drain, then
// close the substrate.
func (c *Controller) Drain(ctx context.Context) bool {
	done := make(chan struct{})
	go func() {
		c.bgWG.Wait()
		close(done)
	}()
	select {
	case <-done:
		return true
	case <-ctx.Done():
	}
	c.bgMu.Lock()
	for _, cancel := range c.bgCancels {
		cancel()
	}
	c.bgMu.Unlock()
	<-done
	return false
}

// publish serializes adaptation events onto the bus (obs.Bus is not
// internally synchronized).
func (c *Controller) publish(kind obs.Kind, node, detail string) {
	if !c.bus.Active() {
		return
	}
	c.busMu.Lock()
	c.bus.Publish(obs.Event{Kind: kind, At: time.Since(c.start), Node: node, Detail: detail})
	c.busMu.Unlock()
}

// ---------------------------------------------------------------------------
// Run records: what GET /adapt reports.

// RunView is a consistent snapshot of one canary run.
type RunView struct {
	ID      int    `json:"id"`
	Version string `json:"version"`
	Canary  string `json:"canary"`
	Phase   string `json:"phase"` // deploying, observing, promoting, rolling-back, done
	// WindowsDone counts fully judged healthy windows of WindowsTotal.
	WindowsDone  int `json:"windows_done"`
	WindowsTotal int `json:"windows_total"`
	// Verdict and Reason are set once the run is done.
	Verdict    string   `json:"verdict,omitempty"`
	Reason     string   `json:"reason,omitempty"`
	Violations []string `json:"violations,omitempty"`
	// Deployment IDs in the fleet history: the canary rollout and the
	// follow-up (promote or rollback) record.
	CanaryDeployment int `json:"canary_deployment,omitempty"`
	FinalDeployment  int `json:"final_deployment,omitempty"`
}

// Run is one canary run's live record.
type Run struct {
	mu   sync.Mutex
	view RunView
}

// View snapshots the run.
func (r *Run) View() RunView {
	r.mu.Lock()
	defer r.mu.Unlock()
	v := r.view
	v.Violations = append([]string(nil), r.view.Violations...)
	return v
}

func (r *Run) setPhase(p string) {
	r.mu.Lock()
	r.view.Phase = p
	r.mu.Unlock()
}

func (r *Run) setWindowsDone(n int) {
	r.mu.Lock()
	r.view.WindowsDone = n
	r.mu.Unlock()
}

func (r *Run) setCanary(d *fleet.Deployment) {
	if d == nil {
		return
	}
	r.mu.Lock()
	r.view.CanaryDeployment = d.ID
	// The fleet may have auto-assigned the version label.
	r.view.Version = d.Version
	r.mu.Unlock()
}

func (r *Run) setFinal(d *fleet.Deployment) {
	if d == nil {
		return
	}
	r.mu.Lock()
	r.view.FinalDeployment = d.ID
	r.mu.Unlock()
}

func (r *Run) setOutcome(out *Outcome) {
	r.mu.Lock()
	r.view.Verdict = out.Verdict
	r.view.Reason = out.Reason
	for _, v := range out.Violations {
		r.view.Violations = append(r.view.Violations, v.String())
	}
	if out.Final != nil {
		r.view.FinalDeployment = out.Final.ID
	}
	r.mu.Unlock()
}

func (c *Controller) newRun(version string, plan CanaryPlan) *Run {
	r := &Run{view: RunView{
		Version:      version,
		Canary:       targetNames(plan.Canary),
		Phase:        "deploying",
		WindowsTotal: plan.Windows,
	}}
	c.mu.Lock()
	r.view.ID = c.nextID
	c.nextID++
	c.runs = append(c.runs, r)
	c.mu.Unlock()
	return r
}

func (c *Controller) finishRun(r *Run) { r.setPhase("done") }

// Runs returns snapshots of every canary run, oldest first.
func (c *Controller) Runs() []RunView {
	c.mu.Lock()
	runs := append([]*Run(nil), c.runs...)
	c.mu.Unlock()
	views := make([]RunView, len(runs))
	for i, r := range runs {
		views[i] = r.View()
	}
	return views
}
