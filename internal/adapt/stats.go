// Metric snapshots and windows: the adaptation controller's eyes.
//
// planpd's GET /stats stamps every counter snapshot with mono_ns — a
// monotonic timestamp taken on the node at snapshot time. A Window is
// two such snapshots from the same node; its rates divide counter
// deltas by the *node's* elapsed time, so a rate is internally
// consistent no matter how long the poll responses spent in flight or
// how the controller's own clock drifts. All decision logic downstream
// (guards, policies) consumes Windows, never raw timestamps.
package adapt

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// maxStatsBody bounds a /stats response.
const maxStatsBody = 1 << 20

// Snapshot is one node's counter registry at one instant, as served by
// planpd's GET /stats.
type Snapshot struct {
	Node   string           `json:"node"`
	MonoNS int64            `json:"mono_ns"`
	Stats  map[string]int64 `json:"stats"`
}

// Window is two snapshots of the same node's registry, Before taken
// earlier than After. The zero value is empty (all deltas and rates 0).
type Window struct {
	Before, After Snapshot
}

// Duration is the node-measured time between the snapshots.
func (w Window) Duration() time.Duration {
	return time.Duration(w.After.MonoNS - w.Before.MonoNS)
}

// Delta returns how much the named counter grew across the window
// (missing counters count as 0 — registries only ever add names).
func (w Window) Delta(name string) int64 {
	return w.After.Stats[name] - w.Before.Stats[name]
}

// Rate returns the counter's growth in events per second, computed
// entirely from node-side measurements. A degenerate window (zero or
// negative duration — e.g. the daemon restarted between polls and
// mono_ns went backwards) rates as 0.
func (w Window) Rate(name string) float64 {
	d := w.Duration()
	if d <= 0 {
		return 0
	}
	return float64(w.Delta(name)) / d.Seconds()
}

// FetchStats polls one planpd node's GET /stats. baseURL is the node's
// control API base (a fleet.Target URL); "/stats" is appended.
func FetchStats(ctx context.Context, client *http.Client, baseURL string) (Snapshot, error) {
	u := strings.TrimRight(baseURL, "/") + "/stats"
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return Snapshot{}, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return Snapshot{}, err
	}
	body, _ := io.ReadAll(io.LimitReader(resp.Body, maxStatsBody))
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return Snapshot{}, fmt.Errorf("GET %s: HTTP %d: %s", u, resp.StatusCode, strings.TrimSpace(string(body)))
	}
	var s Snapshot
	if err := json.Unmarshal(body, &s); err != nil {
		return Snapshot{}, fmt.Errorf("GET %s: decoding: %w", u, err)
	}
	return s, nil
}
