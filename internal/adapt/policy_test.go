// Policy-engine integration tests: scripted load trends drive the
// observe→decide→redeploy loop against real planpd nodes, asserting the
// acceptance property directly — a shifting load switches the variant
// exactly once, and the same snapshots replay to the same decisions.
package adapt

import (
	"context"
	"net/http"
	"reflect"
	"strings"
	"testing"
	"time"

	"planp.dev/planp/internal/fleet"
)

// policyCandidates is the two-variant catalogue the tests select among:
// "rr" is the incumbent, "lc" the alternative.
func policyCandidates() []Candidate {
	return []Candidate{
		{Name: "rr", Source: fwdV1},
		{Name: "lc", Source: fwdV2},
	}
}

// loadAbove prefers "lc" whenever alpha's load counter rises faster
// than threshold/s, "rr" otherwise — a minimal trend-following policy.
func loadAbove(threshold float64) DecideFunc {
	return func(windows map[string]Window) string {
		if windows["alpha"].Rate("load") > threshold {
			return "lc"
		}
		return "rr"
	}
}

// scriptLoad scripts alpha's stats as one baseline poll plus one poll
// per round, with the given per-round load rates (counter deltas over
// 1-second windows).
func (r *rig) scriptLoad(rates ...int64) {
	snaps := []Snapshot{snapAt("alpha", time.Second, "load", 0)}
	total := int64(0)
	for i, rate := range rates {
		total += rate
		snaps = append(snaps, snapAt("alpha", time.Duration(i+2)*time.Second, "load", total))
	}
	r.scripts["alpha"].set(snaps...)
}

func (r *rig) deployInitial(t *testing.T, version string) {
	t.Helper()
	if _, err := r.fleet.Deploy(context.Background(), fleet.Spec{Version: version, Source: fwdV1}, r.targets); err != nil {
		t.Fatalf("initial deploy: %v", err)
	}
}

// TestPolicySwitchesExactlyOnce is the acceptance test: load shifts up
// and stays up, the policy switches round-robin → least-connections
// after the hysteresis is met, and when load later falls the cooldown
// holds the fleet steady — one switch total, no flapping.
func TestPolicySwitchesExactlyOnce(t *testing.T) {
	r := newRig(t, 1)
	r.deployInitial(t, "rr-v0")
	// Rounds 1-4: load rising at 100/s; rounds 5-8: flat.
	r.scriptLoad(100, 100, 100, 100, 0, 0, 0, 0)

	report, err := r.ctl.RunPolicy(context.Background(), PolicyPlan{
		Candidates: policyCandidates(),
		Decide:     loadAbove(10),
		Current:    "rr",
		Targets:    r.targets,
		Interval:   time.Second,
		Rounds:     8,
		Hysteresis: 2,
		Cooldown:   100 * time.Second, // longer than the run: one switch max
	})
	if err != nil {
		t.Fatalf("RunPolicy: %v", err)
	}
	if len(report.Switches) != 1 {
		t.Fatalf("switches = %+v, want exactly one", report.Switches)
	}
	sw := report.Switches[0]
	if sw.Round != 2 || sw.From != "rr" || sw.To != "lc" {
		t.Errorf("switch = %+v, want round 2 rr->lc (hysteresis 2)", sw)
	}
	if report.Final != "lc" || report.Rounds != 8 {
		t.Errorf("report = final %q after %d rounds, want lc after 8", report.Final, report.Rounds)
	}
	if got := r.active(t, "alpha"); got != "lc-r2" {
		t.Errorf("node runs %q, want lc-r2", got)
	}

	// The switch is one kind-"adapt" history record explaining the trend.
	var adapts []fleet.View
	for _, v := range r.fleet.Deployments() {
		if v.Kind == "adapt" {
			adapts = append(adapts, v)
		}
	}
	if len(adapts) != 1 || adapts[0].State != fleet.StateActive {
		t.Fatalf("adapt history records = %+v, want one active", adapts)
	}
	if !strings.Contains(adapts[0].Reason, "preferred lc over rr for 2 consecutive") {
		t.Errorf("adapt reason %q does not explain the trend", adapts[0].Reason)
	}

	snap := r.reg.Snapshot()
	if snap["adapt.switches"] != 1 || snap["adapt.holds"] != 7 {
		t.Errorf("metrics switches %d, holds %d; want 1, 7", snap["adapt.switches"], snap["adapt.holds"])
	}
	if r.events.count("adapt:switch:rr->lc") != 1 {
		t.Error("no switch event published")
	}
}

// TestPolicyFailedSwitchRetries: the redeploy behind a switch decision
// fails (the fleet converges back); because Observe proposes and only a
// successful deploy Commits, the selector keeps demanding the switch
// and the next round lands it.
func TestPolicyFailedSwitchRetries(t *testing.T) {
	r := newRig(t, 1)
	r.deployInitial(t, "rr-v0")
	r.scriptLoad(100, 100, 100, 100, 100, 100)
	// The first switch attempt's activation 503s through all fleet
	// retries (2 attempts); the second attempt sails through.
	r.inj.Inject(fleet.Fault{
		Method: http.MethodPost, Host: r.host("alpha"), Path: "/asp/activate",
		Action: fleet.FaultStatus, Status: http.StatusServiceUnavailable, Count: 2,
	})

	report, err := r.ctl.RunPolicy(context.Background(), PolicyPlan{
		Candidates: policyCandidates(),
		Decide:     loadAbove(10),
		Current:    "rr",
		Targets:    r.targets,
		Interval:   time.Second,
		Rounds:     4,
		Hysteresis: 2,
	})
	if err != nil {
		t.Fatalf("RunPolicy: %v", err)
	}
	if len(report.Switches) != 1 || report.Switches[0].Round != 3 {
		t.Fatalf("switches = %+v, want exactly one at round 3 (round 2's deploy failed)", report.Switches)
	}
	if got := r.active(t, "alpha"); got != "lc-r3" {
		t.Errorf("node runs %q, want lc-r3", got)
	}
	// History shows both the failed attempt (converged back by fleet's
	// own rollback) and the successful one.
	var states []fleet.State
	for _, v := range r.fleet.Deployments() {
		if v.Kind == "adapt" {
			states = append(states, v.State)
		}
	}
	if len(states) != 2 || states[0] != fleet.StateRolledBack || states[1] != fleet.StateActive {
		t.Fatalf("adapt record states = %v, want [RolledBack, Active]", states)
	}
}

// TestPolicyBlindRoundHolds: a failed stats poll is a blind round — it
// feeds the selector "no opinion", so blindness resets the streak and
// can never accumulate toward a switch.
func TestPolicyBlindRoundHolds(t *testing.T) {
	r := newRig(t, 1)
	r.deployInitial(t, "rr-v0")
	r.scriptLoad(100, 100, 100, 100)
	// Round 2's poll fails (After skips the baseline poll and round 1).
	r.inj.Inject(fleet.Fault{
		Method: http.MethodGet, Host: r.host("alpha"), Path: "/stats",
		Action: fleet.FaultStatus, Status: http.StatusInternalServerError, After: 2, Count: 1,
	})

	report, err := r.ctl.RunPolicy(context.Background(), PolicyPlan{
		Candidates: policyCandidates(),
		Decide:     loadAbove(10),
		Current:    "rr",
		Targets:    r.targets,
		Interval:   time.Second,
		Rounds:     4,
		Hysteresis: 2,
	})
	if err != nil {
		t.Fatalf("RunPolicy: %v", err)
	}
	// Dissent at round 1, blind at round 2 (streak reset), dissent at
	// rounds 3 and 4 → the switch lands at round 4, not 2.
	if len(report.Switches) != 1 || report.Switches[0].Round != 4 {
		t.Fatalf("switches = %+v, want exactly one at round 4 (blind round reset the streak)", report.Switches)
	}
}

// TestPolicyReproducible: two fresh rigs fed the identical snapshot
// script produce the identical switch sequence — the decision path is a
// function of its inputs.
func TestPolicyReproducible(t *testing.T) {
	run := func() []Switch {
		r := newRig(t, 1)
		r.deployInitial(t, "rr-v0")
		r.scriptLoad(100, 100, 0, 100, 100, 100, 0, 0)
		report, err := r.ctl.RunPolicy(context.Background(), PolicyPlan{
			Candidates: policyCandidates(),
			Decide:     loadAbove(10),
			Current:    "rr",
			Targets:    r.targets,
			Interval:   time.Second,
			Rounds:     8,
			Hysteresis: 2,
			Cooldown:   3 * time.Second,
		})
		if err != nil {
			t.Fatalf("RunPolicy: %v", err)
		}
		// Deployment IDs vary with rig internals; the decisions must not.
		out := make([]Switch, len(report.Switches))
		for i, s := range report.Switches {
			s.Deployment = 0
			out[i] = s
		}
		return out
	}
	first := run()
	if len(first) == 0 {
		t.Fatal("script produced no switches; test is vacuous")
	}
	for i := 0; i < 3; i++ {
		if again := run(); !reflect.DeepEqual(first, again) {
			t.Fatalf("replay %d: %v vs %v", i, first, again)
		}
	}
}
