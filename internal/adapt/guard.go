// Guard metrics: the operator's declaration of what "healthy" means
// for a canary. A guard bounds the windowed rate of one counter on
// every canary node, either absolutely or relative to the baseline
// cohort. Evaluation is a pure function over Windows — no clocks, no
// I/O — so every verdict is reproducible from the snapshots that
// produced it.
package adapt

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Guard bounds one counter's windowed rate on every canary node.
// Exactly one of the two forms is active:
//
//   - absolute:  rate <= Max                      (Relative false)
//   - relative:  rate <= baseline*Ratio + Slack   (Relative true)
//
// where baseline is the mean rate of the same (expanded) counter
// across the baseline cohort's windows. Metric may contain the
// placeholder "{node}", expanded to each node's name — so one guard
// like "node.{node}.drops<=5" reads each node's own counter even when
// the cohorts share a registry.
type Guard struct {
	Metric   string
	Relative bool
	Max      float64 // absolute ceiling, events/sec
	Ratio    float64 // relative: baseline multiplier
	Slack    float64 // relative: additive allowance, events/sec
}

func (g Guard) String() string {
	if g.Relative {
		return fmt.Sprintf("%s<=%gx+%g", g.Metric, g.Ratio, g.Slack)
	}
	return fmt.Sprintf("%s<=%g", g.Metric, g.Max)
}

// ParseGuard decodes the operator string form:
//
//	metric<=N        absolute: rate at most N events/sec
//	metric<=Rx       relative: at most R times the baseline rate
//	metric<=Rx+S     relative with additive slack S events/sec
//
// e.g. "node.{node}.drops<=0.5", "asp.{node}.faults<=2x+1".
func ParseGuard(s string) (Guard, error) {
	metric, bound, ok := strings.Cut(s, "<=")
	metric, bound = strings.TrimSpace(metric), strings.TrimSpace(bound)
	if !ok || metric == "" || bound == "" {
		return Guard{}, fmt.Errorf("adapt: guard %q: want metric<=bound", s)
	}
	g := Guard{Metric: metric}
	ratio, rest, relative := strings.Cut(bound, "x")
	if !relative {
		max, err := strconv.ParseFloat(bound, 64)
		if err != nil {
			return Guard{}, fmt.Errorf("adapt: guard %q: bad bound: %w", s, err)
		}
		g.Max = max
		return g, nil
	}
	g.Relative = true
	r, err := strconv.ParseFloat(ratio, 64)
	if err != nil {
		return Guard{}, fmt.Errorf("adapt: guard %q: bad ratio: %w", s, err)
	}
	g.Ratio = r
	if rest != "" {
		slack, ok := strings.CutPrefix(rest, "+")
		if !ok {
			return Guard{}, fmt.Errorf("adapt: guard %q: want Rx+S after ratio", s)
		}
		sl, err := strconv.ParseFloat(slack, 64)
		if err != nil {
			return Guard{}, fmt.Errorf("adapt: guard %q: bad slack: %w", s, err)
		}
		g.Slack = sl
	}
	return g, nil
}

// ParseGuards decodes a list of guard strings.
func ParseGuards(specs []string) ([]Guard, error) {
	guards := make([]Guard, 0, len(specs))
	for _, s := range specs {
		g, err := ParseGuard(s)
		if err != nil {
			return nil, err
		}
		guards = append(guards, g)
	}
	return guards, nil
}

// expandMetric substitutes the node name into a guard's counter name.
func expandMetric(metric, node string) string {
	return strings.ReplaceAll(metric, "{node}", node)
}

// Violation is one guard exceeded on one canary node in one window.
type Violation struct {
	Guard Guard
	Node  string
	Rate  float64 // observed canary rate, events/sec
	Limit float64 // the bound it exceeded
}

func (v Violation) String() string {
	return fmt.Sprintf("%s on %s: %.3g/s > limit %.3g/s", v.Guard, v.Node, v.Rate, v.Limit)
}

// EvalGuards evaluates every guard against every canary node's window.
// baseline supplies the comparison cohort for relative guards (its mean
// rate; an empty baseline means relative limits reduce to their slack).
// Pure: same windows, same verdict. Violations are ordered by guard
// then node name, so reports are deterministic too.
func EvalGuards(guards []Guard, canary, baseline map[string]Window) []Violation {
	var out []Violation
	for _, g := range guards {
		limitBase := 0.0
		if g.Relative {
			limitBase = g.Ratio*meanRate(g.Metric, baseline) + g.Slack
		} else {
			limitBase = g.Max
		}
		for _, node := range sortedNodes(canary) {
			rate := canary[node].Rate(expandMetric(g.Metric, node))
			if rate > limitBase {
				out = append(out, Violation{Guard: g, Node: node, Rate: rate, Limit: limitBase})
			}
		}
	}
	return out
}

// meanRate averages the expanded counter's rate across a cohort.
func meanRate(metric string, cohort map[string]Window) float64 {
	if len(cohort) == 0 {
		return 0
	}
	var sum float64
	for node, w := range cohort {
		sum += w.Rate(expandMetric(metric, node))
	}
	return sum / float64(len(cohort))
}

func sortedNodes(cohort map[string]Window) []string {
	nodes := make([]string, 0, len(cohort))
	for n := range cohort {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	return nodes
}
