// Package fleet is the deployment control plane: it installs one
// compiled ASP across a set of planpd-managed nodes as a unit, the way
// planprt.Deploy does across in-process nodes — all nodes end up on the
// new protocol version, or every reachable node is returned to the
// version it ran before.
//
// The paper's operators adapt a *running* network (§4: protocols are
// downloaded into live routers); once more than one router is involved,
// the switch becomes a coordination problem — a half-upgraded fleet
// runs two protocol versions against each other. The controller
// therefore drives a two-phase protocol over planpd's HTTP API:
//
//	phase 0  GET  /healthz      every target is alive (and its current
//	                            version is recorded as rollback target)
//	phase 1  POST /asp/stage    verify + compile on every node; all the
//	                            rejectable work happens while the old
//	                            version still serves traffic; any
//	                            failure aborts with DELETE /asp/stage
//	                            and nothing has changed anywhere
//	phase 2  POST /asp/activate every node swaps atomically; any
//	                            failure rolls every activated node back
//	                            to its previous version
//
// Fan-out is concurrent and bounded (internal/par), every request
// retries with exponential backoff + jitter, ambiguous activations
// (lost responses, nodes dying mid-phase) are reconciled against
// GET /asp, and the whole history is queryable via GET /deployments.
// Failure paths are deterministically testable through the pluggable
// fault-injecting RoundTripper (fault.go). Rollout progress is
// published as obs events (KindDeploy/KindRollback) and metrics.
package fleet

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"planp.dev/planp/internal/obs"
	"planp.dev/planp/internal/par"
	"planp.dev/planp/internal/planprt"
)

// NodeStatus is one target's position in the rollout state machine.
type NodeStatus string

// Node statuses.
const (
	// NodePending: not yet staged (or stage was aborted — the node
	// still runs whatever it ran before the rollout).
	NodePending NodeStatus = "Pending"
	// NodeStaged: the new version is verified and compiled on the node
	// but not yet processing packets.
	NodeStaged NodeStatus = "Staged"
	// NodeActive: the new version is processing packets.
	NodeActive NodeStatus = "Active"
	// NodeRolledBack: the rollout failed elsewhere and this node was
	// returned to its previously active version.
	NodeRolledBack NodeStatus = "RolledBack"
	// NodeFailed: the node failed a phase (or died) and could not be
	// confirmed converged.
	NodeFailed NodeStatus = "Failed"
)

// State is the deployment-level outcome.
type State string

// Deployment states.
const (
	StatePending    State = "Pending"
	StateActive     State = "Active"
	StateRolledBack State = "RolledBack"
	StateFailed     State = "Failed"
)

// Target names one planpd control endpoint, e.g.
// {Name: "gw0", URL: "http://10.0.0.1:8377"} or a path-mounted node
// ("http://host:8377/node/gw0").
type Target struct {
	Name string
	URL  string
}

// Spec describes what to roll out. Engine and Verify use planpd's
// query vocabulary ("jit"/"bytecode"/"interp", "network"/"single"/
// "privileged"); empty means the daemon default. An empty Version gets
// an auto-assigned "v<id>" label.
type Spec struct {
	Version string
	Source  string
	Engine  string
	Verify  string

	// SourceName labels Source in compatibility diagnostics (a file
	// name, typically); empty falls back to "staged:<version>".
	SourceName string

	// AllowIncompatible lets an intentionally breaking rollout proceed
	// past the compatibility gate. The gate still runs; its findings
	// are recorded on the deployment (CompatWarnings) and in the
	// persisted history instead of rejecting the rollout.
	AllowIncompatible bool

	// Kind classifies the rollout in the deployment history: "" for a
	// plain operator deploy, or one of the adaptation controller's
	// decision kinds — "canary" (staged on a canary cohort), "promote"
	// (canary verdict extended fleet-wide), "adapt" (the policy engine
	// switched protocol variants). Rollback records written by
	// RollbackDeployment carry kind "rollback".
	Kind string
	// Reason is a free-form explanation recorded alongside Kind — which
	// guard promoted the canary, which metric trend switched variants.
	Reason string
}

// Node is one target's record within a deployment. Fields are guarded
// by the owning Deployment's mutex; read them through View.
type Node struct {
	Name        string
	URL         string
	Status      NodeStatus
	PrevVersion string // active version observed at health time
	Attempts    int    // HTTP attempts spent on this node
	Error       string // last error, if any
}

// Deployment is one rollout's record: live while the rollout runs,
// then retained in the controller history.
type Deployment struct {
	ID        int
	Version   string
	SourceSHA string
	Engine    string
	Verify    string
	Kind      string
	Reason    string

	mu       sync.Mutex
	state    State
	err      string
	nodes    []*Node
	started  time.Time
	finished time.Time

	// compatOverride records that the compatibility gate found
	// mismatches and AllowIncompatible forced the rollout through;
	// compatWarnings holds the gate's findings either way.
	compatOverride bool
	compatWarnings []string

	// sigDiff is what this version changes relative to what the peers
	// ran at health-probe time (typecheck.Diff lines) — the operator's
	// preview of an upgrade, recorded whether or not it shipped.
	sigDiff []string
}

// NodeView is a consistent copy of one node record.
type NodeView struct {
	Name        string     `json:"name"`
	URL         string     `json:"url"`
	Status      NodeStatus `json:"status"`
	PrevVersion string     `json:"prev_version,omitempty"`
	Attempts    int        `json:"attempts"`
	Error       string     `json:"error,omitempty"`
}

// View is a consistent copy of a deployment record.
type View struct {
	ID        int        `json:"id"`
	Version   string     `json:"version"`
	State     State      `json:"state"`
	SourceSHA string     `json:"source_sha256"`
	Engine    string     `json:"engine,omitempty"`
	Verify    string     `json:"verify,omitempty"`
	Error     string     `json:"error,omitempty"`
	Kind      string     `json:"kind,omitempty"`
	Reason    string     `json:"reason,omitempty"`
	Nodes     []NodeView `json:"nodes"`

	// CompatOverride marks a rollout that the compatibility gate
	// flagged as breaking but AllowIncompatible forced through;
	// CompatWarnings lists what the gate found.
	CompatOverride bool     `json:"compat_override,omitempty"`
	CompatWarnings []string `json:"compat_warnings,omitempty"`

	// SigDiff is the channel-signature diff between this version and
	// what the peers ran when the rollout started — what the upgrade
	// changes, surfaced in GET /deployments before (and after) it ships.
	SigDiff []string `json:"signature_diff,omitempty"`
}

// View snapshots the deployment under its lock.
func (d *Deployment) View() View {
	d.mu.Lock()
	defer d.mu.Unlock()
	v := View{
		ID: d.ID, Version: d.Version, State: d.state,
		SourceSHA: d.SourceSHA, Engine: d.Engine, Verify: d.Verify, Error: d.err,
		Kind: d.Kind, Reason: d.Reason,
		CompatOverride: d.compatOverride,
		CompatWarnings: append([]string(nil), d.compatWarnings...),
		SigDiff:        append([]string(nil), d.sigDiff...),
	}
	for _, n := range d.nodes {
		v.Nodes = append(v.Nodes, NodeView{
			Name: n.Name, URL: n.URL, Status: n.Status,
			PrevVersion: n.PrevVersion, Attempts: n.Attempts, Error: n.Error,
		})
	}
	return v
}

// State returns the deployment-level state.
func (d *Deployment) State() State {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.state
}

func (d *Deployment) setStatus(n *Node, st NodeStatus) {
	d.mu.Lock()
	n.Status = st
	d.mu.Unlock()
}

func (d *Deployment) setNodeError(n *Node, st NodeStatus, err error) {
	d.mu.Lock()
	n.Status = st
	n.Error = err.Error()
	d.mu.Unlock()
}

func (d *Deployment) setPrev(n *Node, version string) {
	d.mu.Lock()
	n.PrevVersion = version
	d.mu.Unlock()
}

func (d *Deployment) bumpAttempts(n *Node) {
	d.mu.Lock()
	n.Attempts++
	d.mu.Unlock()
}

func (d *Deployment) finish(st State, err error) {
	d.mu.Lock()
	d.state = st
	if err != nil {
		d.err = err.Error()
	}
	d.finished = time.Now()
	d.mu.Unlock()
}

// Config configures a Controller. The zero value works: default
// transport, default retry policy, fan-out 4.
type Config struct {
	// Client issues the control-plane requests; wrap its Transport in
	// an Injector for fault testing. Defaults to http.DefaultClient.
	Client *http.Client
	// Retry is the per-request retry policy.
	Retry RetryPolicy
	// Concurrency bounds the fan-out worker pool (default 4).
	Concurrency int
	// Bus, when set, receives KindDeploy/KindRollback events. The
	// controller serializes its publishes; subscribers see events from
	// one goroutine at a time but interleaved across nodes.
	Bus *obs.Bus
	// Metrics, when set, receives the "fleet.*" counters.
	Metrics *obs.Registry
	// Seed fixes the jitter stream (default 1).
	Seed int64
	// Logf, when set, receives one line per rollout step.
	Logf func(format string, args ...any)
	// HistoryPath, when set, persists every finished rollout as one
	// JSON line appended to this file and loads prior records on New —
	// the deployment history survives daemon restarts and crashes, and
	// IDs continue where the previous process stopped. Empty keeps the
	// history in memory only.
	HistoryPath string
}

// Controller orchestrates rollouts and retains their history.
type Controller struct {
	client  *http.Client
	retry   RetryPolicy
	conc    int
	bus     *obs.Bus
	busMu   sync.Mutex
	logf    func(string, ...any)
	start   time.Time
	sleepFn func(context.Context, time.Duration)

	rngMu sync.Mutex
	rng   *rand.Rand

	ctDeploys, ctActive, ctRolledBack, ctFailed *obs.Counter
	ctRetries, ctNodeRollbacks                  *obs.Counter

	mu          sync.Mutex
	deployments []*Deployment
	nextID      int

	historyPath string
	history     []View     // records loaded from historyPath at startup
	fileMu      sync.Mutex // serializes appends to historyPath
}

// New returns a Controller.
func New(cfg Config) *Controller {
	c := &Controller{
		client:  cfg.Client,
		retry:   cfg.Retry.withDefaults(),
		conc:    cfg.Concurrency,
		bus:     cfg.Bus,
		logf:    cfg.Logf,
		start:   time.Now(),
		sleepFn: sleep,
		nextID:  1,
	}
	if c.client == nil {
		c.client = http.DefaultClient
	}
	if c.conc <= 0 {
		c.conc = 4
	}
	if c.logf == nil {
		c.logf = func(string, ...any) {}
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	c.rng = rand.New(rand.NewSource(seed))
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	c.ctDeploys = reg.Counter("fleet.deployments")
	c.ctActive = reg.Counter("fleet.deployments_active")
	c.ctRolledBack = reg.Counter("fleet.deployments_rolled_back")
	c.ctFailed = reg.Counter("fleet.deployments_failed")
	c.ctRetries = reg.Counter("fleet.http_retries")
	c.ctNodeRollbacks = reg.Counter("fleet.node_rollbacks")
	if cfg.HistoryPath != "" {
		c.historyPath = cfg.HistoryPath
		c.history = loadHistory(cfg.HistoryPath, c.logf)
		for _, v := range c.history {
			if v.ID >= c.nextID {
				c.nextID = v.ID + 1
			}
		}
	}
	return c
}

// loadHistory reads the append-only JSONL history. A missing file is an
// empty history; a torn final line (the daemon died mid-append) or any
// other corrupt record is skipped with a log line rather than poisoning
// the records around it.
func loadHistory(path string, logf func(string, ...any)) []View {
	data, err := os.ReadFile(path)
	if err != nil {
		if !errors.Is(err, os.ErrNotExist) {
			logf("fleet: history %s: %v", path, err)
		}
		return nil
	}
	var out []View
	for i, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		var v View
		if err := json.Unmarshal([]byte(line), &v); err != nil {
			logf("fleet: history %s: skipping corrupt record on line %d: %v", path, i+1, err)
			continue
		}
		out = append(out, v)
	}
	return out
}

// persist appends the finished deployment to the history file. Failures
// are logged, not fatal: losing one history record must not fail a
// rollout that already converged.
func (c *Controller) persist(d *Deployment) {
	if c.historyPath == "" {
		return
	}
	line, err := json.Marshal(d.View())
	if err != nil {
		c.logf("fleet: history %s: %v", c.historyPath, err)
		return
	}
	c.fileMu.Lock()
	defer c.fileMu.Unlock()
	f, err := os.OpenFile(c.historyPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		c.logf("fleet: history %s: %v", c.historyPath, err)
		return
	}
	defer f.Close()
	if _, err := f.Write(append(line, '\n')); err != nil {
		c.logf("fleet: history %s: %v", c.historyPath, err)
	}
}

func (c *Controller) rand() float64 {
	c.rngMu.Lock()
	defer c.rngMu.Unlock()
	return c.rng.Float64()
}

func (c *Controller) countRetry() { c.ctRetries.Inc() }

// publish serializes rollout events onto the bus (obs.Bus is not
// internally synchronized and fleet fan-out is concurrent).
func (c *Controller) publish(kind obs.Kind, node, detail string) {
	if !c.bus.Active() {
		return
	}
	c.busMu.Lock()
	c.bus.Publish(obs.Event{Kind: kind, At: time.Since(c.start), Node: node, Detail: detail})
	c.busMu.Unlock()
}

// Deployments returns snapshots of every rollout, oldest first —
// records loaded from the history file (previous daemon lives) first,
// then this process's rollouts.
func (c *Controller) Deployments() []View {
	c.mu.Lock()
	hist := c.history
	ds := append([]*Deployment(nil), c.deployments...)
	c.mu.Unlock()
	views := make([]View, 0, len(hist)+len(ds))
	views = append(views, hist...)
	for _, d := range ds {
		views = append(views, d.View())
	}
	return views
}

// Handler returns the controller's query API:
//
//	GET /deployments        all rollouts, oldest first
//	GET /deployments?id=N   one rollout
func (c *Controller) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/deployments", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		views := c.Deployments()
		if idStr := r.URL.Query().Get("id"); idStr != "" {
			for _, v := range views {
				if fmt.Sprint(v.ID) == idStr {
					writeJSON(w, v)
					return
				}
			}
			http.Error(w, "no such deployment", http.StatusNotFound)
			return
		}
		writeJSON(w, map[string]any{"deployments": views})
	})
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

func (c *Controller) newDeployment(spec *Spec, targets []Target) *Deployment {
	c.mu.Lock()
	id := c.nextID
	c.nextID++
	if spec.Version == "" {
		spec.Version = fmt.Sprintf("v%d", id)
	}
	sum := sha256.Sum256([]byte(spec.Source))
	d := &Deployment{
		ID: id, Version: spec.Version,
		SourceSHA: hex.EncodeToString(sum[:]),
		Engine:    spec.Engine, Verify: spec.Verify,
		Kind: spec.Kind, Reason: spec.Reason,
		state: StatePending, started: time.Now(),
	}
	for _, t := range targets {
		d.nodes = append(d.nodes, &Node{Name: t.Name, URL: t.URL, Status: NodePending})
	}
	c.deployments = append(c.deployments, d)
	c.mu.Unlock()
	return d
}

// specConfig maps the Spec's engine/verify vocabulary onto planprt's
// for the controller-side precheck.
func specConfig(spec Spec) (planprt.Config, error) {
	var cfg planprt.Config
	switch spec.Engine {
	case "", "jit":
		cfg.Engine = planprt.EngineJIT
	case "bytecode":
		cfg.Engine = planprt.EngineBytecode
	case "interp":
		cfg.Engine = planprt.EngineInterp
	default:
		return cfg, fmt.Errorf("fleet: unknown engine %q", spec.Engine)
	}
	switch spec.Verify {
	case "", "network":
		cfg.Verify = planprt.VerifyNetwork
	case "single":
		cfg.Verify = planprt.VerifySingleNode
	case "privileged":
		cfg.Verify = planprt.VerifyPrivileged
	default:
		return cfg, fmt.Errorf("fleet: unknown verify policy %q", spec.Verify)
	}
	return cfg, nil
}

// forEach runs fn once per node on the bounded pool and returns the
// per-node errors (nil entries for successes).
func (c *Controller) forEach(d *Deployment, fn func(nc *nodeClient) error) []error {
	d.mu.Lock()
	nodes := append([]*Node(nil), d.nodes...)
	d.mu.Unlock()
	errs := make([]error, len(nodes))
	par.ForEach(c.conc, len(nodes), func(i int) {
		errs[i] = fn(&nodeClient{c: c, d: d, n: nodes[i]})
	})
	return errs
}

// failedNames summarizes which nodes errored.
func failedNames(d *Deployment, errs []error) string {
	d.mu.Lock()
	defer d.mu.Unlock()
	var names []string
	for i, err := range errs {
		if err != nil {
			names = append(names, d.nodes[i].Name)
		}
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}

func firstErr(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Deploy rolls spec out to targets: health-probe, stage everywhere,
// activate everywhere, roll back on partial failure. It returns the
// deployment record (also retained in the controller history) and a
// non-nil error unless every node activated. Deploy is synchronous;
// run it on its own goroutine to overlap rollouts.
func (c *Controller) Deploy(ctx context.Context, spec Spec, targets []Target) (*Deployment, error) {
	if len(targets) == 0 {
		return nil, errors.New("fleet: deployment needs at least one target")
	}
	seen := map[string]bool{}
	for _, t := range targets {
		if t.Name == "" || t.URL == "" {
			return nil, fmt.Errorf("fleet: target needs both name and URL (got %+v)", t)
		}
		if seen[t.Name] {
			return nil, fmt.Errorf("fleet: duplicate target name %q", t.Name)
		}
		seen[t.Name] = true
	}
	cfg, err := specConfig(spec)
	if err != nil {
		return nil, err
	}

	c.ctDeploys.Inc()
	d := c.newDeployment(&spec, targets)
	c.logf("fleet: deployment %d: version %s to %d node(s)", d.ID, spec.Version, len(targets))

	// Controller-side precheck: compile-without-activate locally so a
	// program that cannot pass late checking — or was verified under
	// the single-node assumption and cannot legally fan out — fails
	// before any node is touched.
	prog, err := planprt.Load(spec.Source, cfg)
	if err != nil {
		return d, c.fail(d, fmt.Errorf("fleet: program rejected before rollout: %w", err))
	}
	if prog.Policy == planprt.VerifySingleNode && len(targets) > 1 {
		return d, c.fail(d, fmt.Errorf("fleet: program verified for single-node deployment offered %d nodes", len(targets)))
	}

	// Phase 0: health. Nothing is staged on a fleet with a dead member.
	// The probe also collects each peer's active channel signature for
	// the compatibility gate below.
	peers := make(map[string]peerSig, len(targets))
	var peersMu sync.Mutex
	errs := c.forEach(d, func(nc *nodeClient) error {
		v, sig, err := nc.health(ctx)
		if err != nil {
			d.setNodeError(nc.n, NodeFailed, err)
			c.publish(obs.KindDeploy, nc.n.Name, "health:failed")
			return err
		}
		d.setPrev(nc.n, v)
		peersMu.Lock()
		peers[nc.n.Name] = peerSig{version: v, sig: sig}
		peersMu.Unlock()
		return nil
	})
	if err := firstErr(errs); err != nil {
		return d, c.fail(d, fmt.Errorf("fleet: health probe failed on [%s]: %w", failedNames(d, errs), err))
	}

	// Record what this upgrade changes: the channel-signature diff
	// against each running peer version, surfaced in GET /deployments
	// so operators see the interface shift before it ships (and, in the
	// history, what each past rollout shifted). Recorded even when the
	// rollout is later rejected — the diff explains the rejection.
	d.mu.Lock()
	d.sigDiff = signatureDiff(prog.Signature(), peers)
	d.mu.Unlock()

	// Compatibility gate: before anything is staged, check the new
	// version's channel signature against what every peer currently
	// runs. A mixed-version rollout in which the fleet's in-flight
	// sends and the new program's channels disagree is rejected here —
	// with diagnostics pointing into the staged source — unless the
	// spec explicitly allows the break (recorded in the history).
	if err := c.compatGate(d, spec, prog.Signature(), peers); err != nil {
		return d, c.fail(d, err)
	}

	// Phase 1: stage everywhere. A failure anywhere aborts the stage
	// everywhere; no node's packet processing has changed.
	errs = c.forEach(d, func(nc *nodeClient) error {
		if err := nc.stage(ctx, spec); err != nil {
			d.setNodeError(nc.n, NodeFailed, err)
			c.publish(obs.KindDeploy, nc.n.Name, "stage:failed")
			return err
		}
		d.setStatus(nc.n, NodeStaged)
		c.publish(obs.KindDeploy, nc.n.Name, "stage:ok")
		return nil
	})
	if err := firstErr(errs); err != nil {
		stageErr := fmt.Errorf("fleet: stage failed on [%s]: %w", failedNames(d, errs), err)
		c.forEach(d, func(nc *nodeClient) error {
			if nc.status() != NodeStaged {
				return nil
			}
			if err := nc.abortStage(ctx, spec.Version); err != nil {
				d.setNodeError(nc.n, NodeFailed, fmt.Errorf("aborting stage: %w", err))
				return err
			}
			d.setStatus(nc.n, NodePending)
			c.publish(obs.KindRollback, nc.n.Name, "stage-aborted")
			return nil
		})
		return d, c.fail(d, stageErr)
	}

	// Phase 2: activate everywhere. An activation whose response was
	// lost is reconciled against GET /asp before being declared failed.
	errs = c.forEach(d, func(nc *nodeClient) error {
		actErr := nc.activate(ctx, spec.Version)
		if actErr == nil {
			d.setStatus(nc.n, NodeActive)
			c.publish(obs.KindDeploy, nc.n.Name, "activate:ok")
			return nil
		}
		active, staged, stErr := nc.aspStatus(ctx)
		switch {
		case stErr == nil && active == spec.Version:
			// The swap committed; only the response was lost.
			d.setStatus(nc.n, NodeActive)
			c.publish(obs.KindDeploy, nc.n.Name, "activate:ok-reconciled")
			return nil
		case stErr == nil && staged == spec.Version:
			// Still staged: the activation never committed.
			d.setNodeError(nc.n, NodeStaged, actErr)
			c.publish(obs.KindDeploy, nc.n.Name, "activate:failed")
			return actErr
		default:
			// Unreachable or in an unexpected state: its convergence
			// cannot be confirmed.
			d.setNodeError(nc.n, NodeFailed, actErr)
			c.publish(obs.KindDeploy, nc.n.Name, "activate:unknown")
			return actErr
		}
	})
	if err := firstErr(errs); err != nil {
		c.rollback(ctx, d, spec.Version)
		c.ctRolledBack.Inc()
		rbErr := fmt.Errorf("fleet: activate failed on [%s], fleet rolled back to previous versions: %w",
			failedNames(d, errs), err)
		d.finish(StateRolledBack, rbErr)
		c.persist(d)
		c.logf("fleet: deployment %d: rolled back: %v", d.ID, rbErr)
		return d, rbErr
	}

	d.finish(StateActive, nil)
	c.persist(d)
	c.ctActive.Inc()
	c.logf("fleet: deployment %d: version %s active on all %d node(s)", d.ID, spec.Version, len(targets))
	return d, nil
}

// rollback converges every reachable node back to its pre-rollout
// version: activated nodes are rolled back, staged nodes aborted.
func (c *Controller) rollback(ctx context.Context, d *Deployment, version string) {
	c.forEach(d, func(nc *nodeClient) error {
		switch nc.status() {
		case NodeActive:
			restored, err := nc.rollback(ctx, version)
			if err != nil {
				d.setNodeError(nc.n, NodeFailed, fmt.Errorf("rollback: %w", err))
				c.publish(obs.KindRollback, nc.n.Name, "failed")
				return err
			}
			d.setStatus(nc.n, NodeRolledBack)
			c.ctNodeRollbacks.Inc()
			c.publish(obs.KindRollback, nc.n.Name, "restored:"+restored)
			return nil
		case NodeStaged:
			if err := nc.abortStage(ctx, version); err != nil {
				d.setNodeError(nc.n, NodeFailed, fmt.Errorf("aborting stage: %w", err))
				c.publish(obs.KindRollback, nc.n.Name, "failed")
				return err
			}
			// The node never activated the new version: aborting the
			// stage leaves it converged on its previous version.
			d.setStatus(nc.n, NodeRolledBack)
			c.publish(obs.KindRollback, nc.n.Name, "stage-aborted")
			return nil
		default:
			return nil
		}
	})
}

func (nc *nodeClient) status() NodeStatus {
	nc.d.mu.Lock()
	defer nc.d.mu.Unlock()
	return nc.n.Status
}

func (c *Controller) fail(d *Deployment, err error) error {
	d.finish(StateFailed, err)
	c.persist(d)
	c.ctFailed.Inc()
	c.logf("fleet: deployment %d: failed: %v", d.ID, err)
	return err
}

// sleep routes through the controller's hook (tests replace it).
func (c *Controller) sleep(ctx context.Context, d time.Duration) { c.sleepFn(ctx, d) }
