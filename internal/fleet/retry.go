// Retry policy: exponential backoff with a cap and symmetric jitter.
// The delay schedule is a pure function of (policy, attempt, random
// draw), so tests assert exact schedules without sleeping; the
// controller injects the draws from its own seeded stream.
package fleet

import (
	"context"
	"net/http"
	"time"
)

// RetryPolicy controls per-request retries against one node.
type RetryPolicy struct {
	// Attempts is the total number of tries per request, including the
	// first (default 4).
	Attempts int
	// BaseDelay is the backoff before the first retry (default 50ms).
	BaseDelay time.Duration
	// MaxDelay caps the exponential growth (default 1s).
	MaxDelay time.Duration
	// Multiplier is the per-retry growth factor (default 2).
	Multiplier float64
	// Jitter spreads each delay by ±Jitter fraction (default 0.2, i.e.
	// a delay lands uniformly in [0.8d, 1.2d]). Zero disables jitter
	// only when JitterSet is true — the zero policy gets the default.
	Jitter float64
	// JitterSet marks Jitter as explicitly configured, so a zero value
	// means "no jitter" rather than "default".
	JitterSet bool
}

// withDefaults fills zero fields.
func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.Attempts <= 0 {
		p.Attempts = 4
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 50 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = time.Second
	}
	if p.Multiplier < 1 {
		p.Multiplier = 2
	}
	if p.Jitter == 0 && !p.JitterSet {
		p.Jitter = 0.2
	}
	return p
}

// Delay returns the backoff before retry number retry (1-based: the
// delay after the first failed attempt is Delay(1, ·)). rnd is a
// uniform draw from [0, 1) supplying the jitter.
func (p RetryPolicy) Delay(retry int, rnd float64) time.Duration {
	d := float64(p.BaseDelay)
	for i := 1; i < retry; i++ {
		d *= p.Multiplier
		if d >= float64(p.MaxDelay) {
			break
		}
	}
	if d > float64(p.MaxDelay) {
		d = float64(p.MaxDelay)
	}
	d *= 1 + p.Jitter*(2*rnd-1)
	if d < 0 {
		d = 0
	}
	return time.Duration(d)
}

// retryableStatus reports whether an HTTP status is worth retrying:
// server-side trouble and throttling are; client errors (including 409
// conflicts and 422 verification rejections) are permanent.
func retryableStatus(code int) bool {
	return code >= 500 || code == http.StatusTooManyRequests || code == http.StatusRequestTimeout
}

// sleep waits for d or until ctx is done. The controller's sleep hook
// replaces it in tests so retry storms run without wall-clock cost.
func sleep(ctx context.Context, d time.Duration) {
	if d <= 0 {
		return
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
	case <-t.C:
	}
}
