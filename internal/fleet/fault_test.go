package fleet

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
)

// countingServer records how many requests actually reached it.
func countingServer(t *testing.T) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		io.WriteString(w, "real response")
	}))
	t.Cleanup(srv.Close)
	return srv, &hits
}

func get(t *testing.T, c *http.Client, url string) (*http.Response, error) {
	t.Helper()
	resp, err := c.Get(url)
	if err == nil {
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body)
	}
	return resp, err
}

// TestInjectorTransparent: with no rules the injector forwards
// everything untouched.
func TestInjectorTransparent(t *testing.T) {
	srv, hits := countingServer(t)
	c := &http.Client{Transport: NewInjector(nil)}
	resp, err := get(t, c, srv.URL)
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("transparent injector broke the request: %v %v", resp, err)
	}
	if hits.Load() != 1 {
		t.Fatalf("server saw %d requests, want 1", hits.Load())
	}
}

// TestInjectorAfterCount: a rule skips its first After matches, fires
// Count times, then retires — purely by occurrence, never by timing.
func TestInjectorAfterCount(t *testing.T) {
	srv, hits := countingServer(t)
	in := NewInjector(nil)
	in.Inject(Fault{Action: FaultDrop, After: 1, Count: 2})
	c := &http.Client{Transport: in}

	var outcomes []string
	for i := 0; i < 5; i++ {
		if _, err := get(t, c, srv.URL); err != nil {
			outcomes = append(outcomes, "drop")
		} else {
			outcomes = append(outcomes, "ok")
		}
	}
	want := "ok drop drop ok ok"
	if got := strings.Join(outcomes, " "); got != want {
		t.Errorf("outcomes = %q, want %q", got, want)
	}
	if hits.Load() != 3 {
		t.Errorf("server saw %d requests, want 3 (dropped requests never arrive)", hits.Load())
	}
}

// TestInjectorMatch: method, host substring, and path substring all
// restrict a rule.
func TestInjectorMatch(t *testing.T) {
	srv, _ := countingServer(t)
	in := NewInjector(nil)
	in.Inject(Fault{Method: http.MethodPost, Path: "/asp/activate", Action: FaultDrop})
	c := &http.Client{Transport: in}

	if _, err := get(t, c, srv.URL+"/asp/activate"); err != nil {
		t.Error("GET matched a POST-only rule")
	}
	resp, err := c.Post(srv.URL+"/healthz", "text/plain", nil)
	if err != nil {
		t.Error("POST to a different path matched")
	} else {
		resp.Body.Close()
	}
	if _, err := c.Post(srv.URL+"/asp/activate", "text/plain", nil); err == nil {
		t.Error("matching POST was not dropped")
	}
	// Host matching: a rule scoped to a host that is not the server's
	// never fires.
	in2 := NewInjector(nil)
	in2.Inject(Fault{Host: "10.99.99.99", Action: FaultDrop})
	c2 := &http.Client{Transport: in2}
	if _, err := get(t, c2, srv.URL); err != nil {
		t.Error("host-scoped rule fired on the wrong host")
	}
}

// TestInjectorStatus: FaultStatus synthesizes the response without
// reaching the node.
func TestInjectorStatus(t *testing.T) {
	srv, hits := countingServer(t)
	in := NewInjector(nil)
	in.Inject(Fault{Action: FaultStatus, Status: http.StatusServiceUnavailable, Count: 1})
	c := &http.Client{Transport: in}

	resp, err := c.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("status = %d, want 503", resp.StatusCode)
	}
	if string(body) != "injected fault" {
		t.Errorf("body = %q", body)
	}
	if hits.Load() != 0 {
		t.Errorf("server saw %d requests, want 0 (short-circuited)", hits.Load())
	}
}

// TestInjectorKill: the request commits server-side, the response is
// lost, and the host is dead afterwards — until revived.
func TestInjectorKill(t *testing.T) {
	srv, hits := countingServer(t)
	in := NewInjector(nil)
	in.Inject(Fault{Action: FaultKill, Count: 1})
	c := &http.Client{Transport: in}

	if _, err := get(t, c, srv.URL); err == nil {
		t.Fatal("killed request returned a response")
	}
	if hits.Load() != 1 {
		t.Fatalf("server saw %d requests, want 1 (the kill commits server-side)", hits.Load())
	}
	// The host is now dead: requests fail without reaching it.
	if _, err := get(t, c, srv.URL); err == nil {
		t.Fatal("dead host answered")
	}
	if hits.Load() != 1 {
		t.Fatalf("dead host saw a request (hits=%d)", hits.Load())
	}
	in.Revive(strings.TrimPrefix(srv.URL, "http://"))
	if _, err := get(t, c, srv.URL); err != nil {
		t.Fatalf("revived host unreachable: %v", err)
	}
}

// TestInjectorLoseResponse: the request commits, the reply is lost, but
// the host stays reachable — the ambiguous-commit case.
func TestInjectorLoseResponse(t *testing.T) {
	srv, hits := countingServer(t)
	in := NewInjector(nil)
	in.Inject(Fault{Action: FaultLoseResponse, Count: 1})
	c := &http.Client{Transport: in}

	if _, err := get(t, c, srv.URL); err == nil {
		t.Fatal("lost response still arrived")
	}
	if _, err := get(t, c, srv.URL); err != nil {
		t.Fatalf("host should remain reachable: %v", err)
	}
	if hits.Load() != 2 {
		t.Fatalf("server saw %d requests, want 2 (both committed)", hits.Load())
	}
}

// TestInjectorFirstRuleWins: rules are consulted in insertion order and
// only the first eligible one fires per request.
func TestInjectorFirstRuleWins(t *testing.T) {
	srv, _ := countingServer(t)
	in := NewInjector(nil)
	in.Inject(Fault{Action: FaultStatus, Status: http.StatusBadGateway, Count: 1})
	in.Inject(Fault{Action: FaultStatus, Status: http.StatusServiceUnavailable, Count: 1})
	c := &http.Client{Transport: in}

	resp1, err := c.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp1.Body)
	resp1.Body.Close()
	resp2, err := c.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if resp1.StatusCode != http.StatusBadGateway || resp2.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("statuses = %d, %d; want 502 then 503", resp1.StatusCode, resp2.StatusCode)
	}
}

// TestFaultActionString: the actions name themselves for logs.
func TestFaultActionString(t *testing.T) {
	for a, want := range map[FaultAction]string{
		FaultDrop: "drop", FaultDelay: "delay", FaultStatus: "status",
		FaultKill: "kill", FaultLoseResponse: "lose-response",
		FaultAction(99): "action(99)",
	} {
		if got := a.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(a), got, want)
		}
	}
}
