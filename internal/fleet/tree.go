// Multicast-tree rollouts. The paper's audio experiment (§3.1) deploys
// a router protocol onto every router of a multicast distribution tree;
// fleet mirrors that shape for live fleets: a Tree names the root and
// its per-hop children, DeployTree flattens it root-first and runs the
// standard two-phase rollout over the members — including the
// compatibility gate, applied per recipient, so one stale leaf rejects
// the rollout before any tree node is touched.
package fleet

import (
	"context"
	"fmt"
)

// Tree is a distribution tree of deployment targets.
type Tree struct {
	Node     Target
	Children []*Tree
}

// Targets flattens the tree in preorder (root first, then each child
// subtree in order) — parents are staged and activated no later than
// their children appear in the fan-out sequence.
func (t *Tree) Targets() []Target {
	if t == nil {
		return nil
	}
	out := []Target{t.Node}
	for _, ch := range t.Children {
		out = append(out, ch.Targets()...)
	}
	return out
}

// Edges renders the tree's parent→child links, for logs and rollout
// records.
func (t *Tree) Edges() []string {
	if t == nil {
		return nil
	}
	var out []string
	for _, ch := range t.Children {
		out = append(out, t.Node.Name+"->"+ch.Node.Name)
		out = append(out, ch.Edges()...)
	}
	return out
}

// DeployTree rolls spec out to every member of a multicast tree. The
// members go through the same pipeline as a flat Deploy — health probe,
// per-recipient compatibility gate, stage everywhere, activate
// everywhere with rollback on partial failure — so either the whole
// tree ends up on the new version or every reachable member is restored.
// Duplicate membership (a node reachable through two branches) is
// rejected, as it would double-activate.
func (c *Controller) DeployTree(ctx context.Context, spec Spec, root *Tree) (*Deployment, error) {
	if root == nil {
		return nil, fmt.Errorf("fleet: tree deployment needs a root")
	}
	targets := root.Targets()
	for _, e := range root.Edges() {
		c.logf("fleet: tree edge %s", e)
	}
	return c.Deploy(ctx, spec, targets)
}
