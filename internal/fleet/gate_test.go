package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"planp.dev/planp/internal/obs"
)

// gatewayV1 is the running fleet's protocol: a gateway channel with two
// packet variants (plain and tagged) and a network channel that routes
// tagged traffic to the gateway. Its signature therefore records a send
// of ip*udp*char*blob to gateway.
const gatewayV1 = `
channel gateway(ps : int, ss : unit, p : ip*udp*blob) is
  (deliver(p); (ps + 1, ss))

channel gateway(ps : int, ss : unit, p : ip*udp*char*blob) is
  (deliver(p); (ps + 1, ss))

channel network(ps : int, ss : unit, p : ip*udp*char*blob) is
  (OnRemote(gateway, p); (ps, ss))
`

// gatewayV2DropsVariant drops the tagged gateway variant that v1 peers
// still send: a breaking upgrade the compatibility gate must reject.
// The gateway header sits on line 2 of the source.
const gatewayV2DropsVariant = `channel gateway(ps : int, ss : unit, p : ip*udp*blob) is
  (deliver(p); (ps + 2, ss))

channel network(ps : int, ss : unit, p : ip*udp*char*blob) is
  (deliver(p); (ps, ss))
`

// gatewayV1Base is a reduced running protocol whose gateway only knows
// the plain variant and that never sends.
const gatewayV1Base = `
channel gateway(ps : int, ss : unit, p : ip*udp*blob) is
  (deliver(p); (ps + 1, ss))
`

// gatewayV2NewSend is self-consistent but introduces a send of the
// tagged variant, which a peer still running gatewayV1Base cannot
// dispatch — the gate must reject it at the send site.
const gatewayV2NewSend = `
channel gateway(ps : int, ss : unit, p : ip*udp*blob) is
  (deliver(p); (ps + 1, ss))

channel gateway(ps : int, ss : unit, p : ip*udp*char*blob) is
  (deliver(p); (ps + 1, ss))

channel network(ps : int, ss : unit, p : ip*udp*char*blob) is
  (OnRemote(gateway, p); (ps, ss))
`

// TestFleetCompatGateRejectsDroppedVariant is the acceptance scenario:
// staging an ASP whose gateway channel drops a message variant a running
// peer still sends is rejected at stage time, with a diagnostic naming
// the staged source's file and line, and no node is touched.
func TestFleetCompatGateRejectsDroppedVariant(t *testing.T) {
	tf := newTestFleet(t, 3)
	bus := &obs.Bus{}
	events := newEventCounter(bus)
	c := tf.controller(Config{Bus: bus})

	if _, err := c.Deploy(context.Background(), Spec{Version: "v1", Source: gatewayV1}, tf.targets); err != nil {
		t.Fatalf("baseline deploy: %v", err)
	}

	d, err := c.Deploy(context.Background(), Spec{
		Version: "v2", Source: gatewayV2DropsVariant, SourceName: "gateway_v2.planp",
	}, tf.targets)
	if err == nil {
		t.Fatal("dropping a variant a running peer still sends must be rejected")
	}
	var ce *CompatError
	if !errors.As(err, &ce) {
		t.Fatalf("error is %T, want *CompatError: %v", err, err)
	}
	if len(ce.Nodes) != 3 {
		t.Errorf("gate flagged %d nodes, want all 3: %v", len(ce.Nodes), ce.Nodes)
	}
	// The rejection names the staged source's file and line: the dropped
	// variant is reported at the staged gateway channel's header (line 1
	// of gatewayV2DropsVariant).
	if !strings.Contains(err.Error(), "gateway_v2.planp:1:1:") {
		t.Errorf("rejection does not name the offending source line:\n%v", err)
	}
	if !strings.Contains(err.Error(), "ip*udp*char*blob") {
		t.Errorf("rejection does not name the dropped packet variant:\n%v", err)
	}
	// The diagnostics survive errors.As-style extraction for rendering.
	if ds := ce.Diagnostics(); len(ds) == 0 || !ds[0].Pos.IsValid() {
		t.Errorf("CompatError carries no span diagnostics: %+v", ds)
	}

	if got := d.State(); got != StateFailed {
		t.Errorf("deployment state = %s, want Failed", got)
	}
	// Rejected before phase 1: nothing was staged anywhere, every node
	// still runs v1.
	for _, tgt := range tf.targets {
		active, staged := tf.nodeState(t, tgt.Name)
		if active != "v1" || staged != "" {
			t.Errorf("node %s: active %q staged %q, want v1 untouched", tgt.Name, active, staged)
		}
	}
	if got := events.count("deploy:compat:mismatch"); got != 3 {
		t.Errorf("deploy:compat:mismatch events = %d, want 3", got)
	}
	if got := events.count("deploy:stage:ok"); got != 3 {
		t.Errorf("deploy:stage:ok events = %d, want 3 (baseline only)", got)
	}
}

// TestFleetCompatGateRejectsNewSend covers the other direction of the
// mixed-version window: the staged program emits a packet variant the
// running peers cannot dispatch. The rejection is anchored at the send
// site in the staged source.
func TestFleetCompatGateRejectsNewSend(t *testing.T) {
	tf := newTestFleet(t, 2)
	c := tf.controller(Config{})
	if _, err := c.Deploy(context.Background(), Spec{Version: "v1", Source: gatewayV1Base}, tf.targets); err != nil {
		t.Fatalf("baseline deploy: %v", err)
	}
	_, err := c.Deploy(context.Background(), Spec{
		Version: "v2", Source: gatewayV2NewSend, SourceName: "gateway_v2.planp",
	}, tf.targets)
	if err == nil {
		t.Fatal("a send no running peer can receive must be rejected")
	}
	var ce *CompatError
	if !errors.As(err, &ce) {
		t.Fatalf("error is %T, want *CompatError: %v", err, err)
	}
	// The OnRemote(gateway, p) send sits on line 9 of gatewayV2NewSend.
	if !strings.Contains(err.Error(), "gateway_v2.planp:9:4:") {
		t.Errorf("rejection does not point at the send site:\n%v", err)
	}
}

// TestFleetCompatOverride: the same breaking rollout with the override
// set proceeds — and both the live record and the persisted history
// carry the override flag and the gate's findings.
func TestFleetCompatOverride(t *testing.T) {
	histPath := filepath.Join(t.TempDir(), "history.jsonl")
	tf := newTestFleet(t, 3)
	c := tf.controller(Config{HistoryPath: histPath})
	if _, err := c.Deploy(context.Background(), Spec{Version: "v1", Source: gatewayV1}, tf.targets); err != nil {
		t.Fatalf("baseline deploy: %v", err)
	}
	d, err := c.Deploy(context.Background(), Spec{
		Version: "v2", Source: gatewayV2DropsVariant,
		SourceName: "gateway_v2.planp", AllowIncompatible: true,
	}, tf.targets)
	if err != nil {
		t.Fatalf("override deploy: %v", err)
	}
	if got := d.State(); got != StateActive {
		t.Fatalf("deployment state = %s, want Active", got)
	}
	for _, tgt := range tf.targets {
		if active, _ := tf.nodeState(t, tgt.Name); active != "v2" {
			t.Errorf("node %s runs %q, want v2", tgt.Name, active)
		}
	}
	v := d.View()
	if !v.CompatOverride {
		t.Error("override rollout not marked CompatOverride")
	}
	if len(v.CompatWarnings) == 0 || !strings.Contains(v.CompatWarnings[0], "gateway_v2.planp:1:1:") {
		t.Errorf("gate findings not recorded: %v", v.CompatWarnings)
	}

	// The persisted history record carries the same evidence.
	raw, err := os.ReadFile(histPath)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	if len(lines) != 2 {
		t.Fatalf("history has %d records, want 2", len(lines))
	}
	var rec View
	if err := json.Unmarshal([]byte(lines[1]), &rec); err != nil {
		t.Fatal(err)
	}
	if !rec.CompatOverride || len(rec.CompatWarnings) == 0 {
		t.Errorf("persisted record lost the override evidence: %+v", rec)
	}
}

// TestFleetDeployTree: a multicast distribution tree deploys through the
// same pipeline as a flat fleet — including the compatibility gate,
// applied per recipient, so one stale leaf rejects the whole tree.
func TestFleetDeployTree(t *testing.T) {
	tf := newTestFleet(t, 3)
	c := tf.controller(Config{})
	root := &Tree{
		Node: tf.targets[0],
		Children: []*Tree{
			{Node: tf.targets[1]},
			{Node: tf.targets[2]},
		},
	}
	if got := root.Edges(); len(got) != 2 || got[0] != "alpha->beta" || got[1] != "alpha->gamma" {
		t.Fatalf("tree edges = %v, want [alpha->beta alpha->gamma]", got)
	}

	d, err := c.DeployTree(context.Background(), Spec{Version: "v1", Source: gatewayV1}, root)
	if err != nil {
		t.Fatalf("tree deploy: %v", err)
	}
	if got := d.State(); got != StateActive {
		t.Fatalf("deployment state = %s, want Active", got)
	}
	for _, tgt := range root.Targets() {
		if active, _ := tf.nodeState(t, tgt.Name); active != "v1" {
			t.Errorf("tree member %s runs %q, want v1", tgt.Name, active)
		}
	}

	// A breaking upgrade is gated per recipient: the leaves still send
	// the variant the new root version drops.
	_, err = c.DeployTree(context.Background(), Spec{
		Version: "v2", Source: gatewayV2DropsVariant,
	}, root)
	var ce *CompatError
	if !errors.As(err, &ce) {
		t.Fatalf("breaking tree rollout: error is %T, want *CompatError: %v", err, err)
	}

	if _, err := c.DeployTree(context.Background(), Spec{Version: "v2", Source: gatewayV1}, nil); err == nil {
		t.Error("nil tree root must be rejected")
	}
	dup := &Tree{Node: tf.targets[0], Children: []*Tree{{Node: tf.targets[0]}}}
	if _, err := c.DeployTree(context.Background(), Spec{Version: "v2", Source: gatewayV1}, dup); err == nil {
		t.Error("duplicate tree membership must be rejected")
	}
}

// TestDiagErrorDecoding: a planpd 422 body with structured diagnostics
// decodes into a DiagError that keeps the spans; a non-JSON rejection
// degrades to the plain-text form.
func TestDiagErrorDecoding(t *testing.T) {
	r := &httpResult{
		status: http.StatusUnprocessableEntity,
		body: []byte(`{"error":"stage rejected: type error",` +
			`"diagnostics":[{"pos":{"line":3,"col":7},"end":{"line":3,"col":12},"msg":"boom"}]}`),
	}
	err := r.err("stage")
	var de *DiagError
	if !errors.As(err, &de) {
		t.Fatalf("error is %T, want *DiagError: %v", err, err)
	}
	if de.Status != http.StatusUnprocessableEntity || de.Message != "stage rejected: type error" {
		t.Errorf("decoded %+v", de)
	}
	ds := de.Diagnostics()
	if len(ds) != 1 || ds[0].Pos.Line != 3 || ds[0].Pos.Col != 7 || ds[0].Msg != "boom" {
		t.Errorf("diagnostics = %+v", ds)
	}

	plain := &httpResult{status: http.StatusBadGateway, body: []byte("upstream sad")}
	if err := plain.err("stage"); errors.As(err, &de) {
		t.Errorf("plain-text rejection decoded as DiagError: %v", err)
	} else if !strings.Contains(err.Error(), "upstream sad") {
		t.Errorf("plain-text body lost: %v", err)
	}
}

// eventCounter tallies bus events by kind:detail.
type eventCounter struct {
	mu  sync.Mutex
	got map[string]int
}

func newEventCounter(bus *obs.Bus) *eventCounter {
	ec := &eventCounter{got: map[string]int{}}
	bus.Subscribe(obs.Func(func(e obs.Event) {
		ec.mu.Lock()
		ec.got[e.Kind.String()+":"+e.Detail]++
		ec.mu.Unlock()
	}))
	return ec
}

func (ec *eventCounter) count(key string) int {
	ec.mu.Lock()
	defer ec.mu.Unlock()
	return ec.got[key]
}
