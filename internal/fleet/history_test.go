package fleet

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
)

// TestFleetHistoryPersists: rollout records written by one controller
// are visible to a fresh controller over the same history file — the
// "daemon restarted" case — with IDs continuing where the previous
// process stopped, and GET /deployments serving the merged history.
func TestFleetHistoryPersists(t *testing.T) {
	tf := newTestFleet(t, 2)
	path := filepath.Join(t.TempDir(), "deployments.jsonl")
	ctx := context.Background()

	c1 := tf.controller(Config{HistoryPath: path})
	if _, err := c1.Deploy(ctx, Spec{Version: "v1", Source: forwarder}, tf.targets); err != nil {
		t.Fatal(err)
	}
	if _, err := c1.Deploy(ctx, Spec{Version: "v2", Source: brokenASP}, tf.targets); err == nil {
		t.Fatal("broken program must fail to deploy")
	}

	// "Restart": a brand-new controller over the same file. Both
	// rollouts — including the failed one — must be there, states and
	// node records intact.
	c2 := tf.controller(Config{HistoryPath: path})
	views := c2.Deployments()
	if len(views) != 2 {
		t.Fatalf("restarted controller sees %d deployments, want 2", len(views))
	}
	if views[0].Version != "v1" || views[0].State != StateActive {
		t.Errorf("record 0 = %s/%s, want v1/Active", views[0].Version, views[0].State)
	}
	if views[1].Version != "v2" || views[1].State != StateFailed {
		t.Errorf("record 1 = %s/%s, want v2/Failed", views[1].Version, views[1].State)
	}
	if got := statuses(views[0]); got["alpha"] != NodeActive || got["beta"] != NodeActive {
		t.Errorf("restored node statuses = %v, want both Active", got)
	}

	// IDs continue across the restart.
	d, err := c2.Deploy(ctx, Spec{Version: "v3", Source: forwarderV2}, tf.targets)
	if err != nil {
		t.Fatal(err)
	}
	if d.ID != 3 {
		t.Errorf("post-restart deployment ID = %d, want 3", d.ID)
	}

	// The query API serves history and live rollouts together.
	api := httptest.NewServer(c2.Handler())
	defer api.Close()
	resp, err := http.Get(api.URL + "/deployments")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body struct {
		Deployments []View `json:"deployments"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if len(body.Deployments) != 3 {
		t.Fatalf("GET /deployments returned %d records, want 3", len(body.Deployments))
	}
	for i, want := range []int{1, 2, 3} {
		if body.Deployments[i].ID != want {
			t.Errorf("deployments[%d].ID = %d, want %d", i, body.Deployments[i].ID, want)
		}
	}
}

// TestFleetHistoryTornRecord: a torn final line (daemon died
// mid-append) is skipped without losing the intact records before it.
func TestFleetHistoryTornRecord(t *testing.T) {
	tf := newTestFleet(t, 2)
	path := filepath.Join(t.TempDir(), "deployments.jsonl")

	c1 := tf.controller(Config{HistoryPath: path})
	if _, err := c1.Deploy(context.Background(), Spec{Version: "v1", Source: forwarder}, tf.targets); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"id":2,"version":"v2","sta`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	c2 := tf.controller(Config{HistoryPath: path})
	views := c2.Deployments()
	if len(views) != 1 {
		t.Fatalf("controller sees %d deployments after torn append, want 1", len(views))
	}
	if views[0].Version != "v1" || views[0].State != StateActive {
		t.Errorf("surviving record = %s/%s, want v1/Active", views[0].Version, views[0].State)
	}
	// The torn line never carried a committed ID; numbering resumes
	// after the last intact record.
	d, err := c2.Deploy(context.Background(), Spec{Source: forwarderV2}, tf.targets)
	if err != nil {
		t.Fatal(err)
	}
	if d.ID != 2 {
		t.Errorf("next ID after torn record = %d, want 2", d.ID)
	}
}

// TestFleetRestartMidActivate: a node whose activation response is lost
// and which then crashes and restarts bare — its planpd state empty —
// cannot be confirmed converged: reconciliation finds the new version
// neither active nor staged, the node is Failed, and the fleet rolls
// back to the previous version.
func TestFleetRestartMidActivate(t *testing.T) {
	tf := newTestFleet(t, 3)
	c := tf.controller(Config{Retry: RetryPolicy{Attempts: 1}})
	if _, err := c.Deploy(context.Background(), Spec{Version: "v1", Source: forwarder}, tf.targets); err != nil {
		t.Fatal(err)
	}

	// beta's activation commits server-side but the response is lost;
	// before the controller's reconciliation query arrives, the node
	// process crashes and restarts with empty protocol state.
	tf.inj.Inject(Fault{
		Method: http.MethodPost, Host: tf.host("beta"), Path: "/asp/activate",
		Action: FaultLoseResponse, Count: 1,
	})
	tf.crashBeforeReconcile("beta")

	d, err := c.Deploy(context.Background(), Spec{Version: "v2", Source: forwarderV2}, tf.targets)
	if err == nil {
		t.Fatal("deploy with a node restarting mid-activate must fail")
	}
	if got := d.State(); got != StateRolledBack {
		t.Fatalf("deployment state = %s, want RolledBack", got)
	}
	st := statuses(d.View())
	if st["beta"] != NodeFailed {
		t.Errorf("restarted node = %s, want Failed (empty state is unconfirmable)", st["beta"])
	}
	for _, name := range []string{"alpha", "gamma"} {
		if st[name] != NodeRolledBack {
			t.Errorf("node %s = %s, want RolledBack", name, st[name])
		}
		if active, _ := tf.nodeState(t, name); active != "v1" {
			t.Errorf("node %s runs %q, want v1 restored", name, active)
		}
	}
	// The restarted node is bare: neither version present — redeploying
	// is the operator's (or a fresh rollout's) job.
	active, staged := tf.nodeState(t, "beta")
	if active != "" || staged != "" {
		t.Errorf("restarted node state = active %q staged %q, want empty", active, staged)
	}
}
