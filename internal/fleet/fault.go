// Fault injection: a pluggable http.RoundTripper that makes every
// failure path of the rollout protocol deterministically testable —
// dropped requests, slow nodes, 5xx storms, and nodes that die in the
// middle of a phase (the request is applied server-side but the
// response never arrives, the classic ambiguous-commit failure).
//
// Rules match requests by method/host/path and fire by occurrence
// count, never by randomness or timing, so a test that injects "drop
// the 2nd activate to node B" replays identically under -race and CI
// load.
package fleet

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"
)

// FaultAction is what an injected fault does to a matched request.
type FaultAction int

// Fault actions.
const (
	// FaultDrop fails the request with a transport error; the request
	// never reaches the node.
	FaultDrop FaultAction = iota
	// FaultDelay forwards the request after sleeping Fault.Delay.
	FaultDelay
	// FaultStatus short-circuits with an HTTP response of Fault.Status
	// (e.g. 503) without reaching the node.
	FaultStatus
	// FaultKill forwards the request — the node applies it — then
	// discards the response, returns a transport error, and marks the
	// node dead: every later request to the same host fails. This is
	// "node killed mid-phase": the controller cannot know whether the
	// operation committed.
	FaultKill
	// FaultLoseResponse forwards the request — the node applies it —
	// then discards the response and returns a transport error, but the
	// node stays reachable. This is the ambiguous-commit case a lost
	// network reply produces: the operation may have happened, and only
	// a later query (or an idempotent replay) can tell.
	FaultLoseResponse
)

// String names the action.
func (a FaultAction) String() string {
	switch a {
	case FaultDrop:
		return "drop"
	case FaultDelay:
		return "delay"
	case FaultStatus:
		return "status"
	case FaultKill:
		return "kill"
	case FaultLoseResponse:
		return "lose-response"
	default:
		return fmt.Sprintf("action(%d)", int(a))
	}
}

// Fault is one injection rule. Zero match fields match everything;
// Host and Path match by substring, Method exactly.
type Fault struct {
	Method string
	Host   string
	Path   string

	// After skips the first After matching requests (0 = fire from the
	// first match).
	After int
	// Count bounds how many times the rule fires (0 = every match).
	Count int

	Action FaultAction
	Status int           // FaultStatus: the response code
	Delay  time.Duration // FaultDelay: how long to stall
}

func (f Fault) matches(req *http.Request) bool {
	if f.Method != "" && f.Method != req.Method {
		return false
	}
	if f.Host != "" && !strings.Contains(req.URL.Host, f.Host) {
		return false
	}
	if f.Path != "" && !strings.Contains(req.URL.Path, f.Path) {
		return false
	}
	return true
}

// faultState tracks one rule's match and fire counts.
type faultState struct {
	Fault
	seen  int
	fired int
}

// Injector is the fault-injecting RoundTripper. Wrap a real transport,
// hand the resulting http.Client to the fleet controller, and add
// rules; with no rules it is transparent.
type Injector struct {
	base http.RoundTripper

	mu     sync.Mutex
	faults []*faultState
	dead   map[string]struct{}
}

// NewInjector wraps base (http.DefaultTransport when nil).
func NewInjector(base http.RoundTripper) *Injector {
	if base == nil {
		base = http.DefaultTransport
	}
	return &Injector{base: base, dead: map[string]struct{}{}}
}

// Inject adds a rule. Rules are consulted in insertion order; the
// first eligible rule fires.
func (in *Injector) Inject(f Fault) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.faults = append(in.faults, &faultState{Fault: f})
}

// Kill marks a host dead immediately (as if the node's process
// vanished between phases).
func (in *Injector) Kill(host string) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.dead[host] = struct{}{}
}

// Revive clears a host's dead marker.
func (in *Injector) Revive(host string) {
	in.mu.Lock()
	defer in.mu.Unlock()
	delete(in.dead, host)
}

// RoundTrip implements http.RoundTripper.
func (in *Injector) RoundTrip(req *http.Request) (*http.Response, error) {
	in.mu.Lock()
	if _, dead := in.dead[req.URL.Host]; dead {
		in.mu.Unlock()
		return nil, fmt.Errorf("fault: node %s is dead", req.URL.Host)
	}
	var act *faultState
	for _, f := range in.faults {
		if !f.matches(req) {
			continue
		}
		f.seen++
		if f.seen > f.After && (f.Count == 0 || f.fired < f.Count) {
			f.fired++
			act = f
			break
		}
	}
	in.mu.Unlock()

	if act == nil {
		return in.base.RoundTrip(req)
	}
	switch act.Action {
	case FaultDrop:
		if req.Body != nil {
			req.Body.Close()
		}
		return nil, fmt.Errorf("fault: dropped %s %s", req.Method, req.URL.Path)
	case FaultDelay:
		time.Sleep(act.Delay)
		return in.base.RoundTrip(req)
	case FaultStatus:
		if req.Body != nil {
			io.Copy(io.Discard, req.Body)
			req.Body.Close()
		}
		code := act.Status
		if code == 0 {
			code = http.StatusInternalServerError
		}
		return &http.Response{
			Status:     fmt.Sprintf("%d %s", code, http.StatusText(code)),
			StatusCode: code,
			Proto:      "HTTP/1.1", ProtoMajor: 1, ProtoMinor: 1,
			Header:        http.Header{"Content-Type": []string{"text/plain"}},
			Body:          io.NopCloser(strings.NewReader("injected fault")),
			ContentLength: -1,
			Request:       req,
		}, nil
	case FaultKill:
		resp, err := in.base.RoundTrip(req)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		in.mu.Lock()
		in.dead[req.URL.Host] = struct{}{}
		in.mu.Unlock()
		return nil, fmt.Errorf("fault: node %s died mid-request (%s %s)", req.URL.Host, req.Method, req.URL.Path)
	case FaultLoseResponse:
		resp, err := in.base.RoundTrip(req)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		return nil, fmt.Errorf("fault: response lost (%s %s)", req.Method, req.URL.Path)
	default:
		return in.base.RoundTrip(req)
	}
}

var _ http.RoundTripper = (*Injector)(nil)
