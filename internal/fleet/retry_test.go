package fleet

import (
	"context"
	"net/http"
	"testing"
	"time"
)

// TestRetryDelaySchedule: the backoff schedule is a pure function of
// (policy, retry, draw) — asserted exactly, no clock involved.
func TestRetryDelaySchedule(t *testing.T) {
	p := RetryPolicy{
		Attempts: 5, BaseDelay: 50 * time.Millisecond, MaxDelay: time.Second,
		Multiplier: 2, JitterSet: true, // Jitter 0: deterministic midpoints
	}.withDefaults()
	want := []time.Duration{
		50 * time.Millisecond,  // retry 1
		100 * time.Millisecond, // retry 2
		200 * time.Millisecond, // retry 3
		400 * time.Millisecond, // retry 4
		800 * time.Millisecond, // retry 5
		time.Second,            // retry 6: capped
		time.Second,            // retry 7: stays capped
	}
	for i, w := range want {
		if got := p.Delay(i+1, 0.5); got != w {
			t.Errorf("Delay(%d) = %v, want %v", i+1, got, w)
		}
	}
}

// TestRetryDelayJitterBounds: jitter spreads each delay symmetrically
// and never past the configured fraction.
func TestRetryDelayJitterBounds(t *testing.T) {
	p := RetryPolicy{BaseDelay: 100 * time.Millisecond, Jitter: 0.2, JitterSet: true}.withDefaults()
	if got := p.Delay(1, 0); got != 80*time.Millisecond {
		t.Errorf("rnd=0: %v, want 80ms (-20%%)", got)
	}
	if got := p.Delay(1, 0.5); got != 100*time.Millisecond {
		t.Errorf("rnd=0.5: %v, want 100ms (midpoint)", got)
	}
	// rnd draws are in [0,1): the top of the band is approached, never
	// exceeded.
	if got := p.Delay(1, 0.999999); got > 120*time.Millisecond {
		t.Errorf("rnd→1: %v exceeds +20%% band", got)
	}
}

// TestRetryDefaults: the zero policy is fully usable.
func TestRetryDefaults(t *testing.T) {
	p := RetryPolicy{}.withDefaults()
	if p.Attempts != 4 || p.BaseDelay != 50*time.Millisecond ||
		p.MaxDelay != time.Second || p.Multiplier != 2 || p.Jitter != 0.2 {
		t.Errorf("unexpected defaults: %+v", p)
	}
	// An explicitly zero jitter survives defaulting.
	pz := RetryPolicy{JitterSet: true}.withDefaults()
	if pz.Jitter != 0 {
		t.Errorf("JitterSet zero jitter was overridden to %v", pz.Jitter)
	}
}

// TestRetryableStatus: 5xx and throttling retry; client errors are
// permanent (a 409 conflict or 422 rejection never resolves by
// retrying).
func TestRetryableStatus(t *testing.T) {
	for code, want := range map[int]bool{
		http.StatusInternalServerError:   true,
		http.StatusBadGateway:            true,
		http.StatusServiceUnavailable:    true,
		http.StatusTooManyRequests:       true,
		http.StatusRequestTimeout:        true,
		http.StatusOK:                    false,
		http.StatusBadRequest:            false,
		http.StatusNotFound:              false,
		http.StatusConflict:              false,
		http.StatusUnprocessableEntity:   false,
		http.StatusRequestEntityTooLarge: false,
	} {
		if got := retryableStatus(code); got != want {
			t.Errorf("retryableStatus(%d) = %v, want %v", code, got, want)
		}
	}
}

// TestSleepCancel: a cancelled context cuts a pending backoff short.
func TestSleepCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	sleep(ctx, time.Minute)
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("sleep ignored cancellation (took %v)", elapsed)
	}
	sleep(ctx, 0) // no-op, must not panic
}
