// The deploy-time compatibility gate.
//
// PLAN-P channels are first-order: a program's external interface is
// the finite set of (channel, packet type) pairs it can receive and the
// finite set it sends (typecheck.Signature). During a rollout the fleet
// inevitably runs two versions at once — nodes that have activated the
// new program exchange packets with nodes still on the old one — so
// before staging anything the controller checks the new version's
// signature against what every peer currently runs, in both directions
// of that mixed-version window: the peers' sends must still land on a
// staged channel definition, and the staged program's sends must still
// land on the peers'. A mismatch rejects the rollout before any node is
// touched, with diagnostics anchored in the staged source;
// Spec.AllowIncompatible downgrades the rejection to recorded warnings
// for intentionally breaking upgrades.
//
// The peers' signatures ride the phase-0 health probe (planpd serves
// the active signature on /healthz), so the gate costs no extra
// round-trip.
package fleet

import (
	"fmt"
	"sort"
	"strings"

	"planp.dev/planp/internal/lang/diag"
	"planp.dev/planp/internal/lang/typecheck"
	"planp.dev/planp/internal/obs"
)

// CompatError is a rollout rejected by the compatibility gate: the
// staged version cannot coexist with what one or more peers run. It
// carries the span diagnostics (anchored in the staged program's
// source) so the deploy CLI can render the offending lines.
type CompatError struct {
	Version string   // the staged version that was rejected
	Nodes   []string // peers whose running version conflicts, sorted
	Msgs    []string // one rendered "<source>:<line>:<col>: ..." per finding
	Diags   diag.List
}

func (e *CompatError) Error() string {
	return fmt.Sprintf("fleet: version %s rejected by compatibility gate on [%s]: %s (set the compatibility override to force a breaking rollout)",
		e.Version, strings.Join(e.Nodes, ", "), strings.Join(e.Msgs, "; "))
}

// Diagnostics implements diag.Provider.
func (e *CompatError) Diagnostics() diag.List { return e.Diags }

// peerSig is what the health probe learned about one target: the
// version it runs and that version's channel-interface signature (nil
// when the node is bare, or its daemon predates signatures).
type peerSig struct {
	version string
	sig     *typecheck.Signature
}

// signatureDiff renders what the staged signature changes relative to
// what the peers run (typecheck.Diff), deduplicated across peers on the
// same version: a homogeneous fleet yields one plain diff, a
// mixed-version fleet prefixes each block with the version it compares
// against. Bare peers (no signature) are skipped — there is no
// interface to diff against.
func signatureDiff(staged *typecheck.Signature, peers map[string]peerSig) []string {
	if staged == nil {
		return nil
	}
	// One representative signature per distinct running version.
	byVersion := map[string]*typecheck.Signature{}
	for _, p := range peers {
		if p.sig != nil {
			byVersion[p.version] = p.sig
		}
	}
	versions := make([]string, 0, len(byVersion))
	for v := range byVersion {
		versions = append(versions, v)
	}
	sort.Strings(versions)

	var out []string
	for _, v := range versions {
		lines := typecheck.Diff(byVersion[v], staged)
		if len(versions) == 1 {
			return lines
		}
		for _, line := range lines {
			out = append(out, fmt.Sprintf("vs %s: %s", v, line))
		}
	}
	return out
}

// compatGate checks the staged signature against every peer's active
// signature, as collected during the health phase. Peers without a
// signature have no interface to break and are skipped. On mismatch it
// returns a *CompatError — unless spec.AllowIncompatible, in which case
// the findings are recorded on the deployment (and its persisted
// history record) and the rollout proceeds.
func (c *Controller) compatGate(d *Deployment, spec Spec, staged *typecheck.Signature, peers map[string]peerSig) error {
	if staged == nil {
		return nil
	}
	label := spec.SourceName
	if label == "" {
		label = "staged:" + spec.Version
	}
	names := make([]string, 0, len(peers))
	for name := range peers {
		names = append(names, name)
	}
	sort.Strings(names)

	var badNodes, msgs []string
	var all diag.List
	// Per-node messages keep every peer's evidence, but the span
	// diagnostics dedup across peers: N nodes running the same stale
	// version would otherwise underline the same source line N times.
	seenDiag := map[diag.Diagnostic]bool{}
	for _, name := range names {
		p := peers[name]
		if p.sig == nil {
			c.publish(obs.KindDeploy, name, "compat:no-signature")
			continue
		}
		diags := staged.CompatibleWith(p.sig)
		if len(diags) == 0 {
			c.publish(obs.KindDeploy, name, "compat:ok")
			continue
		}
		badNodes = append(badNodes, name)
		for _, dg := range diags {
			if dg.Pos.IsValid() {
				msgs = append(msgs, fmt.Sprintf("%s:%s: %s [node %s runs %s]", label, dg.Pos, dg.Msg, name, p.version))
			} else {
				msgs = append(msgs, fmt.Sprintf("%s: %s [node %s runs %s]", label, dg.Msg, name, p.version))
			}
		}
		for _, dg := range diags {
			if !seenDiag[dg] {
				seenDiag[dg] = true
				all = append(all, dg)
			}
		}
		c.publish(obs.KindDeploy, name, "compat:mismatch")
	}
	if len(badNodes) == 0 {
		return nil
	}
	if spec.AllowIncompatible {
		d.mu.Lock()
		d.compatOverride = true
		d.compatWarnings = msgs
		d.mu.Unlock()
		c.logf("fleet: deployment %d: compatibility override: proceeding past %d mismatch(es) on [%s]",
			d.ID, len(msgs), strings.Join(badNodes, ", "))
		return nil
	}
	return &CompatError{Version: spec.Version, Nodes: badNodes, Msgs: msgs, Diags: all}
}
