// Post-deployment rollback: undoing a rollout that already converged.
//
// The rollback paths inside Deploy handle rollouts that fail while in
// flight. A canary rollout fails differently: the deployment converged
// — every canary node activated — and only later, after windows of
// guard metrics, does the adaptation controller decide the new version
// must go. RollbackDeployment drives every Active node of a finished
// deployment back to its previous version and records the decision as
// its own history entry (kind "rollback"), so GET /deployments shows
// the full canary story: the canary deploy, then the rollback that
// revoked it, each with its reason.
package fleet

import (
	"context"
	"fmt"

	"planp.dev/planp/internal/obs"
)

// RollbackDeployment returns every node that deployment d activated to
// its previously active version (POST /asp/rollback — idempotent on the
// node, so retries and replays are safe). It appends a new record of
// kind "rollback" to the controller history, carrying reason, and
// returns it. Nodes that cannot be rolled back are marked Failed on the
// record and an error is returned; the remaining nodes still converge.
func (c *Controller) RollbackDeployment(ctx context.Context, d *Deployment, reason string) (*Deployment, error) {
	if d == nil {
		return nil, fmt.Errorf("fleet: rollback of a nil deployment")
	}
	targets := make([]Target, 0, len(d.nodes))
	d.mu.Lock()
	version := d.Version
	for _, n := range d.nodes {
		targets = append(targets, Target{Name: n.Name, URL: n.URL})
	}
	d.mu.Unlock()
	if len(targets) == 0 {
		return nil, fmt.Errorf("fleet: deployment %d has no nodes to roll back", d.ID)
	}

	spec := Spec{Version: version, Kind: "rollback", Reason: reason}
	rb := c.newDeployment(&spec, targets)
	c.logf("fleet: rollback %d: revoking version %s from deployment %d (%s)", rb.ID, version, d.ID, reason)

	errs := c.forEach(rb, func(nc *nodeClient) error {
		restored, err := nc.rollback(ctx, version)
		if err != nil {
			rb.setNodeError(nc.n, NodeFailed, fmt.Errorf("rollback: %w", err))
			c.publish(obs.KindRollback, nc.n.Name, "failed")
			return err
		}
		rb.setStatus(nc.n, NodeRolledBack)
		rb.setPrev(nc.n, restored)
		c.ctNodeRollbacks.Inc()
		c.publish(obs.KindRollback, nc.n.Name, "restored:"+restored)
		return nil
	})
	if err := firstErr(errs); err != nil {
		rbErr := fmt.Errorf("fleet: rollback of version %s failed on [%s]: %w", version, failedNames(rb, errs), err)
		rb.finish(StateFailed, rbErr)
		c.persist(rb)
		c.ctFailed.Inc()
		return rb, rbErr
	}
	rb.finish(StateRolledBack, nil)
	c.persist(rb)
	c.ctRolledBack.Inc()
	c.logf("fleet: rollback %d: version %s revoked on all %d node(s)", rb.ID, version, len(targets))
	return rb, nil
}
