package fleet

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestRollbackDeploymentRevokes: RollbackDeployment undoes a rollout
// that already converged — the adaptation controller's primitive for
// revoking a canary after its guards trip. The revocation is its own
// history record, kind and reason intact, and the node protocol is
// idempotent so a replay converges too.
func TestRollbackDeploymentRevokes(t *testing.T) {
	tf := newTestFleet(t, 2)
	c := tf.controller(Config{})
	ctx := context.Background()

	if _, err := c.Deploy(ctx, Spec{Version: "v1", Source: forwarder}, tf.targets); err != nil {
		t.Fatalf("v1: %v", err)
	}
	d2, err := c.Deploy(ctx, Spec{
		Version: "v2", Source: forwarderV2,
		Kind: "canary", Reason: "canary on 2 nodes",
	}, tf.targets)
	if err != nil {
		t.Fatalf("v2: %v", err)
	}

	rb, err := c.RollbackDeployment(ctx, d2, "guard violated in window 1")
	if err != nil {
		t.Fatalf("rollback: %v", err)
	}
	if got := rb.State(); got != StateRolledBack {
		t.Fatalf("rollback record state = %s, want RolledBack", got)
	}
	for name, st := range statuses(rb.View()) {
		if st != NodeRolledBack {
			t.Errorf("node %s: status %s on rollback record, want RolledBack", name, st)
		}
	}
	for _, tgt := range tf.targets {
		if active, _ := tf.nodeState(t, tgt.Name); active != "v1" {
			t.Errorf("node %s runs %q after revocation, want v1", tgt.Name, active)
		}
	}

	// The history is the whole story: plain deploy, canary, rollback —
	// kinds and reasons round-tripped.
	views := c.Deployments()
	if len(views) != 3 {
		t.Fatalf("history has %d records, want 3", len(views))
	}
	if views[1].Kind != "canary" || views[1].Reason != "canary on 2 nodes" {
		t.Errorf("canary record = kind %q reason %q", views[1].Kind, views[1].Reason)
	}
	if views[2].Kind != "rollback" || views[2].Reason != "guard violated in window 1" {
		t.Errorf("rollback record = kind %q reason %q", views[2].Kind, views[2].Reason)
	}
	if views[2].Version != "v2" {
		t.Errorf("rollback record names version %q, want the revoked v2", views[2].Version)
	}

	// Replaying the revocation is safe: the node-side rollback of an
	// already-revoked version is a no-op that reports success.
	if _, err := c.RollbackDeployment(ctx, d2, "replay after ambiguous failure"); err != nil {
		t.Fatalf("replayed rollback: %v", err)
	}
	if active, _ := tf.nodeState(t, "alpha"); active != "v1" {
		t.Errorf("alpha runs %q after replay, want v1", active)
	}

	if _, err := c.RollbackDeployment(ctx, nil, "nothing"); err == nil {
		t.Error("rollback of a nil deployment must error")
	}
}

// TestRollbackDeploymentPartialFailure: a canary node that died before
// its revocation leaves the rollback record Failed (the controller
// cannot know the node converged), while the reachable nodes still
// converge.
func TestRollbackDeploymentPartialFailure(t *testing.T) {
	tf := newTestFleet(t, 2)
	c := tf.controller(Config{})
	ctx := context.Background()

	if _, err := c.Deploy(ctx, Spec{Version: "v1", Source: forwarder}, tf.targets); err != nil {
		t.Fatalf("v1: %v", err)
	}
	d2, err := c.Deploy(ctx, Spec{Version: "v2", Source: forwarderV2}, tf.targets)
	if err != nil {
		t.Fatalf("v2: %v", err)
	}

	tf.inj.Kill(tf.host("beta"))
	rb, err := c.RollbackDeployment(ctx, d2, "revoking with beta dark")
	if err == nil {
		t.Fatal("rollback with a dead node must error")
	}
	if got := rb.State(); got != StateFailed {
		t.Fatalf("rollback record state = %s, want Failed", got)
	}
	st := statuses(rb.View())
	if st["alpha"] != NodeRolledBack || st["beta"] != NodeFailed {
		t.Errorf("node statuses = %v, want alpha RolledBack, beta Failed", st)
	}
	if active, _ := tf.nodeState(t, "alpha"); active != "v1" {
		t.Errorf("alpha runs %q, want v1 (healthy nodes converge regardless)", active)
	}
}

// sigDiffV2 extends the forwarder with a receive-only admin channel — a
// compatible upgrade whose interface nonetheless changed, which is
// exactly what the signature diff should surface.
const sigDiffV2 = `
channel network(ps : int, ss : unit, p : ip*udp*blob) is
  (OnRemote(network, p); (ps + 1, ss))

channel admin(ps : int, ss : unit, p : ip*udp*int) is
  (deliver(p); (ps, ss))
`

// TestDeploymentsSigDiff: an interface-changing upgrade's deployment
// record carries the channel-signature diff, and GET /deployments
// serves it.
func TestDeploymentsSigDiff(t *testing.T) {
	tf := newTestFleet(t, 2)
	c := tf.controller(Config{})
	ctx := context.Background()

	if _, err := c.Deploy(ctx, Spec{Version: "v1", Source: forwarder}, tf.targets); err != nil {
		t.Fatalf("v1: %v", err)
	}
	if _, err := c.Deploy(ctx, Spec{Version: "v2", Source: sigDiffV2}, tf.targets); err != nil {
		t.Fatalf("v2: %v", err)
	}

	views := c.Deployments()
	if len(views[0].SigDiff) != 0 {
		t.Errorf("first rollout (bare peers) diff = %v, want none recorded", views[0].SigDiff)
	}
	want := "+ receive admin(ip*udp*int)"
	var found bool
	for _, line := range views[1].SigDiff {
		if line == want {
			found = true
		}
	}
	if !found {
		t.Fatalf("upgrade SigDiff = %v, want it to include %q", views[1].SigDiff, want)
	}

	// And over the wire: the JSON the operator actually reads.
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/deployments")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body struct {
		Deployments []struct {
			Version string   `json:"version"`
			SigDiff []string `json:"signature_diff"`
		} `json:"deployments"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if len(body.Deployments) != 2 {
		t.Fatalf("GET /deployments returned %d records, want 2", len(body.Deployments))
	}
	if got := strings.Join(body.Deployments[1].SigDiff, "\n"); !strings.Contains(got, want) {
		t.Errorf("served signature_diff = %q, want it to include %q", got, want)
	}
}
