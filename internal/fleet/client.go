// The per-node control-plane client: typed wrappers over planpd's HTTP
// API with retry, exponential backoff, and attempt accounting. One
// nodeClient serves one target within one rollout; all its calls run on
// that target's fan-out worker, so per-node bookkeeping needs no
// locking beyond the deployment record's.
package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"

	"planp.dev/planp/internal/lang/diag"
	"planp.dev/planp/internal/lang/typecheck"
)

// maxErrBody bounds how much of an error response is kept for messages.
const maxErrBody = 1 << 16

// httpResult is one completed (possibly non-2xx) HTTP exchange.
type httpResult struct {
	status int
	body   []byte
}

func (r *httpResult) ok() bool { return r.status >= 200 && r.status < 300 }

// DiagError is a control-plane rejection whose response body carried
// structured diagnostics (planpd's 422 bodies). It keeps the individual
// span-carrying records so deploy tooling can point at source lines
// instead of echoing the node's rendered string.
type DiagError struct {
	Op      string
	Status  int
	Message string
	Diags   diag.List
}

func (e *DiagError) Error() string {
	return fmt.Sprintf("%s: HTTP %d: %s", e.Op, e.Status, e.Message)
}

// Diagnostics implements diag.Provider.
func (e *DiagError) Diagnostics() diag.List { return e.Diags }

func (r *httpResult) err(op string) error {
	if r.ok() {
		return nil
	}
	// planpd rejections are JSON {"error": ..., "diagnostics": [...]};
	// anything else (plain-text errors, proxies) degrades to the body.
	var rej struct {
		Error       string    `json:"error"`
		Diagnostics diag.List `json:"diagnostics"`
	}
	if jsonErr := json.Unmarshal(r.body, &rej); jsonErr == nil && rej.Error != "" {
		return &DiagError{Op: op, Status: r.status, Message: rej.Error, Diags: rej.Diagnostics}
	}
	return fmt.Errorf("%s: HTTP %d: %s", op, r.status, strings.TrimSpace(string(r.body)))
}

// nodeClient talks to one planpd node for one deployment.
type nodeClient struct {
	c *Controller
	d *Deployment
	n *Node
}

// do performs method path?query against the node, retrying transport
// errors and retryable statuses under the controller's policy. A
// non-retryable HTTP status is a successful exchange (the caller
// inspects it); exhausted retries return the last error.
func (nc *nodeClient) do(ctx context.Context, method, path string, query url.Values, body []byte) (*httpResult, error) {
	u := strings.TrimRight(nc.n.URL, "/") + path
	if len(query) > 0 {
		u += "?" + query.Encode()
	}
	p := nc.c.retry
	var lastErr error
	for attempt := 1; attempt <= p.Attempts; attempt++ {
		if attempt > 1 {
			nc.c.countRetry()
			nc.c.sleep(ctx, p.Delay(attempt-1, nc.c.rand()))
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		req, err := http.NewRequestWithContext(ctx, method, u, rd)
		if err != nil {
			return nil, err
		}
		if body != nil {
			req.Header.Set("Content-Type", "text/plain")
		}
		nc.d.bumpAttempts(nc.n)
		resp, err := nc.c.client.Do(req)
		if err != nil {
			lastErr = err
			continue
		}
		b, _ := io.ReadAll(io.LimitReader(resp.Body, maxErrBody))
		resp.Body.Close()
		if retryableStatus(resp.StatusCode) {
			lastErr = fmt.Errorf("%s %s: HTTP %d: %s", method, path, resp.StatusCode, strings.TrimSpace(string(b)))
			continue
		}
		return &httpResult{status: resp.StatusCode, body: b}, nil
	}
	return nil, fmt.Errorf("%s %s: giving up after %d attempts: %w", method, path, p.Attempts, lastErr)
}

// health probes GET /healthz and returns the node's active protocol
// version (empty if none) plus that version's channel-interface
// signature (nil when the node is bare or its daemon predates
// signatures) — the input to the deploy-time compatibility gate.
func (nc *nodeClient) health(ctx context.Context) (version string, sig *typecheck.Signature, err error) {
	res, err := nc.do(ctx, http.MethodGet, "/healthz", nil, nil)
	if err != nil {
		return "", nil, err
	}
	if err := res.err("healthz"); err != nil {
		return "", nil, err
	}
	var h struct {
		OK        bool                 `json:"ok"`
		Version   string               `json:"version"`
		Signature *typecheck.Signature `json:"signature"`
	}
	if err := json.Unmarshal(res.body, &h); err != nil {
		return "", nil, fmt.Errorf("healthz: decoding: %w", err)
	}
	if !h.OK {
		return "", nil, fmt.Errorf("healthz: node reports not ok")
	}
	return h.Version, h.Signature, nil
}

// stage runs phase 1 on the node.
func (nc *nodeClient) stage(ctx context.Context, spec Spec) error {
	q := url.Values{"version": {spec.Version}}
	if spec.Engine != "" {
		q.Set("engine", spec.Engine)
	}
	if spec.Verify != "" {
		q.Set("verify", spec.Verify)
	}
	res, err := nc.do(ctx, http.MethodPost, "/asp/stage", q, []byte(spec.Source))
	if err != nil {
		return err
	}
	return res.err("stage")
}

// abortStage discards a staged version (idempotent).
func (nc *nodeClient) abortStage(ctx context.Context, version string) error {
	res, err := nc.do(ctx, http.MethodDelete, "/asp/stage", url.Values{"version": {version}}, nil)
	if err != nil {
		return err
	}
	return res.err("abort stage")
}

// activate runs phase 2 on the node.
func (nc *nodeClient) activate(ctx context.Context, version string) error {
	res, err := nc.do(ctx, http.MethodPost, "/asp/activate", url.Values{"version": {version}}, nil)
	if err != nil {
		return err
	}
	return res.err("activate")
}

// rollback undoes an activation of version, returning the version the
// node runs afterwards (possibly empty: a bare node).
func (nc *nodeClient) rollback(ctx context.Context, version string) (restored string, err error) {
	res, err := nc.do(ctx, http.MethodPost, "/asp/rollback", url.Values{"version": {version}}, nil)
	if err != nil {
		return "", err
	}
	if err := res.err("rollback"); err != nil {
		return "", err
	}
	var body struct {
		Active string `json:"active"`
	}
	if err := json.Unmarshal(res.body, &body); err != nil {
		return "", fmt.Errorf("rollback: decoding: %w", err)
	}
	return body.Active, nil
}

// aspStatus reads GET /asp — the reconciliation source after an
// ambiguous activation (lost response, node death mid-phase).
func (nc *nodeClient) aspStatus(ctx context.Context) (active, staged string, err error) {
	res, err := nc.do(ctx, http.MethodGet, "/asp", nil, nil)
	if err != nil {
		return "", "", err
	}
	if err := res.err("status"); err != nil {
		return "", "", err
	}
	var body struct {
		Active string `json:"active"`
		Staged string `json:"staged"`
	}
	if err := json.Unmarshal(res.body, &body); err != nil {
		return "", "", fmt.Errorf("status: decoding: %w", err)
	}
	return body.Active, body.Staged, nil
}
