package fleet

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"planp.dev/planp/internal/netsim"
	"planp.dev/planp/internal/obs"
	"planp.dev/planp/internal/planpd"
)

// forwarder is the minimal deployable protocol.
const forwarder = `
channel network(ps : int, ss : unit, p : ip*udp*blob) is
  (OnRemote(network, p); (ps + 1, ss))
`

// forwarderV2 is behaviourally identical but textually distinct, so an
// upgrade is a real source change.
const forwarderV2 = `
channel network(ps : int, ss : unit, p : ip*udp*blob) is
  (OnRemote(network, p); (ps + 2, ss))
`

// brokenASP fails late checking (unknown identifier).
const brokenASP = `
channel network(ps : int, ss : unit, p : ip*udp*blob) is
  (nonsense(p); (ps, ss))
`

// singleNodeASP only passes verification under the single-node policy
// (it rewrites the destination address).
const singleNodeASP = `
channel network(ps : int, ss : unit, p : ip*tcp*blob) is
  (OnRemote(network, (ipDestSet(#1 p, 10.0.0.99), #2 p, #3 p)); (ps, ss))
`

// testFleet is a fleet of real planpd servers, each managing its own
// netsim node, fronted by real HTTP servers.
type testFleet struct {
	targets []Target
	nodes   map[string]*netsim.Node
	servers map[string]*swapServer
	inj     *Injector
	slept   *sleepRecorder
}

// swapServer fronts one node's planpd handler and can simulate the node
// process crashing and restarting with empty protocol state at a
// deterministic point: just before the next GET /asp (the controller's
// reconciliation query). A crash replaces the planpd server with a
// fresh one — all downloaded ASP state is gone, exactly like
// netsim.Node.Crash loses the installed processor.
type swapServer struct {
	mu             sync.Mutex
	h              http.Handler
	node           *netsim.Node
	crashBeforeGet bool
}

func (s *swapServer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	if s.crashBeforeGet && r.Method == http.MethodGet && r.URL.Path == "/asp" {
		s.crashBeforeGet = false
		s.node.Crash()
		s.node.Restart()
		s.h = planpd.NewServer(s.node, nil).Handler()
	}
	h := s.h
	s.mu.Unlock()
	h.ServeHTTP(w, r)
}

// crashBeforeReconcile arms the named node to crash-and-restart just
// before the controller's next GET /asp.
func (tf *testFleet) crashBeforeReconcile(name string) {
	s := tf.servers[name]
	s.mu.Lock()
	s.crashBeforeGet = true
	s.mu.Unlock()
}

type sleepRecorder struct {
	mu     sync.Mutex
	delays []time.Duration
}

func (s *sleepRecorder) sleep(_ context.Context, d time.Duration) {
	s.mu.Lock()
	s.delays = append(s.delays, d)
	s.mu.Unlock()
}

func (s *sleepRecorder) all() []time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]time.Duration(nil), s.delays...)
}

// newTestFleet boots n planpd-managed nodes behind httptest servers and
// returns a fleet handle whose injector sits on the controller's path.
func newTestFleet(t *testing.T, n int) *testFleet {
	t.Helper()
	sim := netsim.NewSimulator(1)
	tf := &testFleet{
		nodes:   map[string]*netsim.Node{},
		servers: map[string]*swapServer{},
		inj:     NewInjector(nil),
		slept:   &sleepRecorder{},
	}
	names := []string{"alpha", "beta", "gamma", "delta", "epsilon"}
	for i := 0; i < n; i++ {
		name := names[i]
		node := netsim.NewNode(sim, name, netsim.Addr(0x0A000001+uint32(i)))
		sw := &swapServer{h: planpd.NewServer(node, nil).Handler(), node: node}
		srv := httptest.NewServer(sw)
		t.Cleanup(srv.Close)
		tf.nodes[name] = node
		tf.servers[name] = sw
		tf.targets = append(tf.targets, Target{Name: name, URL: srv.URL})
	}
	return tf
}

// host returns the host:port of the named target, for fault rules.
func (tf *testFleet) host(name string) string {
	for _, tgt := range tf.targets {
		if tgt.Name == name {
			return strings.TrimPrefix(tgt.URL, "http://")
		}
	}
	return ""
}

// controller builds a Controller over the fleet's injector with retry
// sleeps recorded instead of slept (tests never wait on backoff).
func (tf *testFleet) controller(cfg Config) *Controller {
	cfg.Client = &http.Client{Transport: tf.inj}
	c := New(cfg)
	c.sleepFn = tf.slept.sleep
	return c
}

// nodeState reads one planpd node's /asp status directly.
func (tf *testFleet) nodeState(t *testing.T, name string) (active, staged string) {
	t.Helper()
	for _, tgt := range tf.targets {
		if tgt.Name != name {
			continue
		}
		resp, err := http.Get(tgt.URL + "/asp")
		if err != nil {
			t.Fatalf("GET /asp on %s: %v", name, err)
		}
		defer resp.Body.Close()
		var body struct {
			Active string `json:"active"`
			Staged string `json:"staged"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatal(err)
		}
		return body.Active, body.Staged
	}
	t.Fatalf("no target named %s", name)
	return "", ""
}

func statuses(v View) map[string]NodeStatus {
	out := map[string]NodeStatus{}
	for _, n := range v.Nodes {
		out[n.Name] = n.Status
	}
	return out
}

// TestFleetRolloutAllActive: the no-fault path. Every node activates,
// the deployment reports Active, and an upgrade rollout records the
// displaced version per node.
func TestFleetRolloutAllActive(t *testing.T) {
	tf := newTestFleet(t, 3)
	c := tf.controller(Config{})

	d, err := c.Deploy(context.Background(), Spec{Version: "v1", Source: forwarder}, tf.targets)
	if err != nil {
		t.Fatalf("deploy: %v", err)
	}
	if got := d.State(); got != StateActive {
		t.Fatalf("deployment state = %s, want Active", got)
	}
	for name, st := range statuses(d.View()) {
		if st != NodeActive {
			t.Errorf("node %s: status %s, want Active", name, st)
		}
	}
	for _, tgt := range tf.targets {
		active, staged := tf.nodeState(t, tgt.Name)
		if active != "v1" || staged != "" {
			t.Errorf("node %s runs %q (staged %q), want v1 active, nothing staged", tgt.Name, active, staged)
		}
		if tf.nodes[tgt.Name].Processor == nil {
			t.Errorf("node %s has no processor installed", tgt.Name)
		}
	}

	// Upgrade: v2 over v1. The stage/activate cycle replaces the running
	// version without an uninstall window and records v1 as the previous
	// version on every node.
	d2, err := c.Deploy(context.Background(), Spec{Version: "v2", Source: forwarderV2}, tf.targets)
	if err != nil {
		t.Fatalf("upgrade: %v", err)
	}
	for _, n := range d2.View().Nodes {
		if n.Status != NodeActive {
			t.Errorf("node %s: status %s after upgrade, want Active", n.Name, n.Status)
		}
		if n.PrevVersion != "v1" {
			t.Errorf("node %s: prev version %q, want v1", n.Name, n.PrevVersion)
		}
	}
	for _, tgt := range tf.targets {
		if active, _ := tf.nodeState(t, tgt.Name); active != "v2" {
			t.Errorf("node %s runs %q after upgrade, want v2", tgt.Name, active)
		}
	}
}

// TestFleetRollbackOnActivateFailure is the acceptance scenario: a
// 3-node fleet where one node fails during activation must converge
// every healthy node back to the previously active version, with the
// deployment reporting RolledBack.
func TestFleetRollbackOnActivateFailure(t *testing.T) {
	tf := newTestFleet(t, 3)
	c := tf.controller(Config{})

	if _, err := c.Deploy(context.Background(), Spec{Version: "v1", Source: forwarder}, tf.targets); err != nil {
		t.Fatalf("baseline deploy: %v", err)
	}

	// gamma's activate endpoint 503s persistently: retries exhaust, the
	// reconciliation query finds v2 still staged, and the fleet must
	// roll back.
	tf.inj.Inject(Fault{
		Method: http.MethodPost, Host: tf.host("gamma"), Path: "/asp/activate",
		Action: FaultStatus, Status: http.StatusServiceUnavailable,
	})

	d, err := c.Deploy(context.Background(), Spec{Version: "v2", Source: forwarderV2}, tf.targets)
	if err == nil {
		t.Fatal("deploy with a failing activation must return an error")
	}
	if got := d.State(); got != StateRolledBack {
		t.Fatalf("deployment state = %s, want RolledBack", got)
	}
	v := d.View()
	st := statuses(v)
	if st["alpha"] != NodeRolledBack || st["beta"] != NodeRolledBack {
		t.Errorf("healthy nodes = %s/%s, want RolledBack/RolledBack", st["alpha"], st["beta"])
	}
	// The failing node also converges (its stage is aborted, so it never
	// left v1) but keeps the activation error for diagnosis.
	if st["gamma"] != NodeRolledBack {
		t.Errorf("failing node = %s, want RolledBack (stage aborted)", st["gamma"])
	}
	for _, n := range v.Nodes {
		if n.Name == "gamma" && n.Error == "" {
			t.Error("failing node lost its activation error")
		}
	}
	// Convergence: every node is back on v1.
	for _, name := range []string{"alpha", "beta", "gamma"} {
		if active, _ := tf.nodeState(t, name); active != "v1" {
			t.Errorf("node %s runs %q after rollback, want v1", name, active)
		}
	}
	// The controller retried the 503s before giving up, without real
	// sleeps longer than the policy cap.
	delays := tf.slept.all()
	if len(delays) == 0 {
		t.Error("no retries recorded for a persistently failing endpoint")
	}
	for _, d := range delays {
		if d > 2*time.Second {
			t.Errorf("retry delay %v exceeds policy bounds", d)
		}
	}
}

// TestFleetRollbackQueryable: after the rollback, GET /deployments
// reports the full history with per-node statuses.
func TestFleetRollbackQueryable(t *testing.T) {
	tf := newTestFleet(t, 3)
	c := tf.controller(Config{})
	if _, err := c.Deploy(context.Background(), Spec{Version: "v1", Source: forwarder}, tf.targets); err != nil {
		t.Fatal(err)
	}
	tf.inj.Inject(Fault{
		Method: http.MethodPost, Host: tf.host("beta"), Path: "/asp/activate",
		Action: FaultStatus, Status: http.StatusInternalServerError,
	})
	if _, err := c.Deploy(context.Background(), Spec{Version: "v2", Source: forwarderV2}, tf.targets); err == nil {
		t.Fatal("want rollout failure")
	}

	api := httptest.NewServer(c.Handler())
	defer api.Close()
	resp, err := http.Get(api.URL + "/deployments")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body struct {
		Deployments []View `json:"deployments"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if len(body.Deployments) != 2 {
		t.Fatalf("history has %d deployments, want 2", len(body.Deployments))
	}
	if body.Deployments[0].State != StateActive || body.Deployments[1].State != StateRolledBack {
		t.Fatalf("history states = %s, %s; want Active, RolledBack",
			body.Deployments[0].State, body.Deployments[1].State)
	}
	rolled := 0
	for _, n := range body.Deployments[1].Nodes {
		if n.Status == NodeRolledBack {
			rolled++
		}
	}
	if rolled != 3 {
		t.Errorf("%d nodes report RolledBack, want 3 (failing node's stage was aborted)", rolled)
	}

	// Single-deployment query.
	resp2, err := http.Get(api.URL + "/deployments?id=2")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var one View
	if err := json.NewDecoder(resp2.Body).Decode(&one); err != nil {
		t.Fatal(err)
	}
	if one.ID != 2 || one.State != StateRolledBack {
		t.Errorf("GET ?id=2 = %+v, want ID 2 RolledBack", one)
	}
	if resp3, _ := http.Get(api.URL + "/deployments?id=99"); resp3.StatusCode != http.StatusNotFound {
		t.Errorf("GET ?id=99 = %d, want 404", resp3.StatusCode)
	}
}

// TestFleetKillMidActivate: a node that dies mid-activation (request
// applied, response lost, node gone) cannot be confirmed and is marked
// Failed; every reachable node still converges back.
func TestFleetKillMidActivate(t *testing.T) {
	tf := newTestFleet(t, 3)
	c := tf.controller(Config{})
	if _, err := c.Deploy(context.Background(), Spec{Version: "v1", Source: forwarder}, tf.targets); err != nil {
		t.Fatal(err)
	}
	tf.inj.Inject(Fault{
		Method: http.MethodPost, Host: tf.host("gamma"), Path: "/asp/activate",
		Action: FaultKill, Count: 1,
	})
	d, err := c.Deploy(context.Background(), Spec{Version: "v2", Source: forwarderV2}, tf.targets)
	if err == nil {
		t.Fatal("deploy with a dying node must fail")
	}
	if got := d.State(); got != StateRolledBack {
		t.Fatalf("deployment state = %s, want RolledBack", got)
	}
	st := statuses(d.View())
	if st["gamma"] != NodeFailed {
		t.Errorf("killed node = %s, want Failed (state unconfirmable)", st["gamma"])
	}
	for _, name := range []string{"alpha", "beta"} {
		if st[name] != NodeRolledBack {
			t.Errorf("node %s = %s, want RolledBack", name, st[name])
		}
		if active, _ := tf.nodeState(t, name); active != "v1" {
			t.Errorf("node %s runs %q, want v1", name, active)
		}
	}
}

// TestFleetLostResponseReconciled: an activation whose response is lost
// but which committed on the node is reconciled via GET /asp — the
// rollout still succeeds, exercising the idempotent node state machine.
func TestFleetLostResponseReconciled(t *testing.T) {
	tf := newTestFleet(t, 3)
	c := tf.controller(Config{Retry: RetryPolicy{Attempts: 3}})
	if _, err := c.Deploy(context.Background(), Spec{Version: "v1", Source: forwarder}, tf.targets); err != nil {
		t.Fatal(err)
	}
	// All 3 activate attempts against beta commit server-side but lose
	// their responses; the reconciliation query then observes v2 active.
	tf.inj.Inject(Fault{
		Method: http.MethodPost, Host: tf.host("beta"), Path: "/asp/activate",
		Action: FaultLoseResponse, Count: 3,
	})
	d, err := c.Deploy(context.Background(), Spec{Version: "v2", Source: forwarderV2}, tf.targets)
	if err != nil {
		t.Fatalf("deploy should reconcile the committed activation: %v", err)
	}
	if got := d.State(); got != StateActive {
		t.Fatalf("deployment state = %s, want Active", got)
	}
	for _, tgt := range tf.targets {
		if active, _ := tf.nodeState(t, tgt.Name); active != "v2" {
			t.Errorf("node %s runs %q, want v2", tgt.Name, active)
		}
	}
}

// TestFleetStageFailureAborts: a stage rejection anywhere aborts the
// stage everywhere; no node's packet processing changes.
func TestFleetStageFailureAborts(t *testing.T) {
	tf := newTestFleet(t, 3)
	c := tf.controller(Config{})
	if _, err := c.Deploy(context.Background(), Spec{Version: "v1", Source: forwarder}, tf.targets); err != nil {
		t.Fatal(err)
	}
	tf.inj.Inject(Fault{
		Method: http.MethodPost, Host: tf.host("beta"), Path: "/asp/stage",
		Action: FaultStatus, Status: http.StatusUnprocessableEntity,
	})
	d, err := c.Deploy(context.Background(), Spec{Version: "v2", Source: forwarderV2}, tf.targets)
	if err == nil {
		t.Fatal("deploy with a failing stage must fail")
	}
	if got := d.State(); got != StateFailed {
		t.Fatalf("deployment state = %s, want Failed", got)
	}
	st := statuses(d.View())
	if st["beta"] != NodeFailed {
		t.Errorf("beta = %s, want Failed", st["beta"])
	}
	for _, name := range []string{"alpha", "gamma"} {
		if st[name] != NodePending {
			t.Errorf("node %s = %s, want Pending (stage aborted)", name, st[name])
		}
	}
	for _, tgt := range tf.targets {
		active, staged := tf.nodeState(t, tgt.Name)
		if active != "v1" {
			t.Errorf("node %s runs %q, want v1 untouched", tgt.Name, active)
		}
		if staged != "" {
			t.Errorf("node %s still holds staged %q after abort", tgt.Name, staged)
		}
	}
}

// TestFleetHealthGate: a dead member fails the rollout before anything
// is staged anywhere.
func TestFleetHealthGate(t *testing.T) {
	tf := newTestFleet(t, 3)
	c := tf.controller(Config{Retry: RetryPolicy{Attempts: 2}})
	tf.inj.Kill(tf.host("beta"))
	d, err := c.Deploy(context.Background(), Spec{Version: "v1", Source: forwarder}, tf.targets)
	if err == nil {
		t.Fatal("deploy against a dead node must fail")
	}
	if got := d.State(); got != StateFailed {
		t.Fatalf("deployment state = %s, want Failed", got)
	}
	st := statuses(d.View())
	if st["beta"] != NodeFailed {
		t.Errorf("beta = %s, want Failed", st["beta"])
	}
	for _, name := range []string{"alpha", "gamma"} {
		if st[name] != NodePending {
			t.Errorf("node %s = %s, want Pending", name, st[name])
		}
		active, staged := tf.nodeState(t, name)
		if active != "" || staged != "" {
			t.Errorf("node %s was touched (active %q, staged %q) despite the health gate", name, active, staged)
		}
	}
}

// TestFleetLocalPrecheck: a broken program, or a single-node-verified
// program offered several nodes, fails on the controller before any
// HTTP request.
func TestFleetLocalPrecheck(t *testing.T) {
	tf := newTestFleet(t, 2)
	c := tf.controller(Config{})

	d, err := c.Deploy(context.Background(), Spec{Version: "v1", Source: brokenASP}, tf.targets)
	if err == nil {
		t.Fatal("broken program must fail")
	}
	if got := d.State(); got != StateFailed {
		t.Fatalf("state = %s, want Failed", got)
	}
	for _, n := range d.View().Nodes {
		if n.Attempts != 0 {
			t.Errorf("node %s saw %d HTTP attempts for a locally rejected program", n.Name, n.Attempts)
		}
	}

	if _, err := c.Deploy(context.Background(),
		Spec{Version: "v1", Source: singleNodeASP, Verify: "single"}, tf.targets); err == nil {
		t.Fatal("single-node program must not fan out to 2 nodes")
	}
	// The same program against one node is fine.
	d3, err := c.Deploy(context.Background(),
		Spec{Version: "v1", Source: singleNodeASP, Verify: "single"}, tf.targets[:1])
	if err != nil {
		t.Fatalf("single-node deploy to one node: %v", err)
	}
	if got := d3.State(); got != StateActive {
		t.Errorf("state = %s, want Active", got)
	}
}

// TestFleetTransientFaultsRetried: 5xx bursts and dropped requests are
// absorbed by the retry policy; the rollout still converges and the
// retry metric counts the extra attempts.
func TestFleetTransientFaultsRetried(t *testing.T) {
	tf := newTestFleet(t, 3)
	reg := obs.NewRegistry()
	c := tf.controller(Config{Metrics: reg})
	// Two 503s on the first stage request anywhere, one dropped activate.
	tf.inj.Inject(Fault{
		Method: http.MethodPost, Path: "/asp/stage",
		Action: FaultStatus, Status: http.StatusServiceUnavailable, Count: 2,
	})
	tf.inj.Inject(Fault{
		Method: http.MethodPost, Path: "/asp/activate",
		Action: FaultDrop, Count: 1,
	})
	d, err := c.Deploy(context.Background(), Spec{Version: "v1", Source: forwarder}, tf.targets)
	if err != nil {
		t.Fatalf("deploy through transient faults: %v", err)
	}
	if got := d.State(); got != StateActive {
		t.Fatalf("state = %s, want Active", got)
	}
	snap := reg.Snapshot()
	if got := snap["fleet.http_retries"]; got != 3 {
		t.Errorf("fleet.http_retries = %d, want 3", got)
	}
	if got := snap["fleet.deployments_active"]; got != 1 {
		t.Errorf("fleet.deployments_active = %d, want 1", got)
	}
	// Recorded backoff schedule respects the (defaulted) policy bounds.
	for _, delay := range tf.slept.all() {
		if delay <= 0 || delay > 1200*time.Millisecond {
			t.Errorf("backoff delay %v outside (0, 1.2s]", delay)
		}
	}
}

// TestFleetEvents: the rollout publishes deploy/rollback events on the
// bus.
func TestFleetEvents(t *testing.T) {
	tf := newTestFleet(t, 2)
	bus := &obs.Bus{}
	var mu sync.Mutex
	got := map[string]int{}
	bus.Subscribe(obs.Func(func(e obs.Event) {
		mu.Lock()
		got[e.Kind.String()+":"+e.Detail]++
		mu.Unlock()
	}))
	c := tf.controller(Config{Bus: bus})
	if _, err := c.Deploy(context.Background(), Spec{Version: "v1", Source: forwarder}, tf.targets); err != nil {
		t.Fatal(err)
	}
	tf.inj.Inject(Fault{
		Method: http.MethodPost, Host: tf.host("beta"), Path: "/asp/activate",
		Action: FaultStatus, Status: http.StatusBadGateway,
	})
	if _, err := c.Deploy(context.Background(), Spec{Version: "v2", Source: forwarderV2}, tf.targets); err == nil {
		t.Fatal("want failure")
	}
	mu.Lock()
	defer mu.Unlock()
	if got["deploy:stage:ok"] != 4 {
		t.Errorf("deploy:stage:ok = %d, want 4 (2 nodes x 2 rollouts)", got["deploy:stage:ok"])
	}
	if got["deploy:activate:failed"] != 1 {
		t.Errorf("deploy:activate:failed = %d, want 1", got["deploy:activate:failed"])
	}
	if got["rollback:restored:v1"] != 1 {
		t.Errorf("rollback:restored:v1 = %d, want 1", got["rollback:restored:v1"])
	}
}

// TestFleetValidation: malformed requests fail fast, before a record is
// even created.
func TestFleetValidation(t *testing.T) {
	tf := newTestFleet(t, 1)
	c := tf.controller(Config{})
	if _, err := c.Deploy(context.Background(), Spec{Source: forwarder}, nil); err == nil {
		t.Error("empty target list must fail")
	}
	dup := []Target{{Name: "x", URL: "http://a"}, {Name: "x", URL: "http://b"}}
	if _, err := c.Deploy(context.Background(), Spec{Source: forwarder}, dup); err == nil {
		t.Error("duplicate target names must fail")
	}
	if _, err := c.Deploy(context.Background(),
		Spec{Source: forwarder, Engine: "quantum"}, tf.targets); err == nil {
		t.Error("unknown engine must fail")
	}
	if len(c.Deployments()) != 0 {
		t.Errorf("validation failures left %d records", len(c.Deployments()))
	}
	// An empty version gets an auto-assigned label.
	d, err := c.Deploy(context.Background(), Spec{Source: forwarder}, tf.targets)
	if err != nil {
		t.Fatal(err)
	}
	if d.Version == "" {
		t.Error("no version label auto-assigned")
	}
}
