package testbed

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"
)

// forwarder is a minimal ASP that forwards everything; it passes the
// default network verification policy on any node.
const forwarder = `
channel network(ps : int, ss : unit, p : ip*udp*blob) is
  (OnRemote(network, p); (ps + 1, ss))
`

// forwarderV2 is behaviourally identical but textually distinct, so an
// upgrade is a real source change.
const forwarderV2 = `
channel network(ps : int, ss : unit, p : ip*udp*blob) is
  (OnRemote(network, p); (ps + 2, ss))
`

// bed is a running in-process 3-daemon testbed: three separate rtnet
// networks in one test process, joined only by real loopback UDP — the
// single-machine stand-in for three hosts.
type bed struct {
	topo    *Topology
	daemons map[string]*Daemon
	base    map[string]string // daemon name -> http://control
}

// freeUDPPorts reserves n distinct loopback UDP ports by binding and
// closing; the remote links rebind them immediately after.
func freeUDPPorts(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := range addrs {
		c, err := net.ListenPacket("udp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = c.LocalAddr().String()
		c.Close()
	}
	return addrs
}

// newBed builds and starts the reference topology: gw on d1, s0 on d2,
// s1 on d3, cross-daemon links gw-s0 and gw-s1. Control APIs listen on
// real TCP sockets so fleet targets resolve through the topology.
func newBed(t *testing.T) *bed {
	t.Helper()
	lns := make(map[string]net.Listener, 3)
	for _, name := range []string{"d1", "d2", "d3"} {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { ln.Close() })
		lns[name] = ln
	}
	udp := freeUDPPorts(t, 4)
	topo, err := ParseTopology([]byte(fmt.Sprintf(`{
	  "name": "bed",
	  "daemons": [
	    {"name": "d1", "control": %q},
	    {"name": "d2", "control": %q},
	    {"name": "d3", "control": %q}
	  ],
	  "nodes": [
	    {"name": "gw", "addr": "10.0.0.1", "daemon": "d1", "forwarding": true},
	    {"name": "s0", "addr": "10.0.0.2", "daemon": "d2"},
	    {"name": "s1", "addr": "10.0.0.3", "daemon": "d3"}
	  ],
	  "links": [
	    {"a": "gw", "b": "s0", "a_udp": %q, "b_udp": %q},
	    {"a": "gw", "b": "s1", "a_udp": %q, "b_udp": %q}
	  ]
	}`, lns["d1"].Addr(), lns["d2"].Addr(), lns["d3"].Addr(),
		udp[0], udp[1], udp[2], udp[3])))
	if err != nil {
		t.Fatal(err)
	}

	b := &bed{topo: topo, daemons: map[string]*Daemon{}, base: map[string]string{}}
	for name, ln := range lns {
		d, err := NewDaemon(topo, name, Options{
			Logf:          t.Logf,
			ProbeInterval: 25 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(d.Close)
		d.Start()
		srv := &http.Server{Handler: d.Handler()}
		go srv.Serve(ln)
		t.Cleanup(func() { srv.Close() })
		b.daemons[name] = d
		b.base[name] = "http://" + ln.Addr().String()
	}
	for name, d := range b.daemons {
		if down := d.WaitLinksUp(5 * time.Second); len(down) > 0 {
			t.Fatalf("daemon %s links still down: %v", name, down)
		}
	}
	return b
}

// getJSON decodes a GET response, failing on transport errors.
func getJSON(t *testing.T, url string) map[string]any {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	return body
}

// postJSON posts a body and returns (status, decoded response).
func postJSON(t *testing.T, url, body string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	var decoded map[string]any
	json.Unmarshal(raw, &decoded)
	return resp.StatusCode, decoded
}

// stat reads one metric from a node's /stats on the given daemon.
func (b *bed) stat(t *testing.T, daemon, node, metric string) float64 {
	t.Helper()
	body := getJSON(t, b.base[daemon]+"/node/"+node+"/stats")
	stats, _ := body["stats"].(map[string]any)
	v, _ := stats[metric].(float64)
	return v
}

// inject originates n probe packets from a node toward another node's
// discard port.
func (b *bed) inject(t *testing.T, daemon, from, to string, n int) {
	t.Helper()
	status, body := postJSON(t,
		fmt.Sprintf("%s/inject?from=%s&to=%s&n=%d", b.base[daemon], from, to, n), "")
	if status != http.StatusOK {
		t.Fatalf("inject %s->%s: HTTP %d %v", from, to, status, body)
	}
}

// waitStat polls until the metric satisfies ok or the deadline passes.
func (b *bed) waitStat(t *testing.T, daemon, node, metric string, ok func(float64) bool) float64 {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	var v float64
	for time.Now().Before(deadline) {
		v = b.stat(t, daemon, node, metric)
		if ok(v) {
			return v
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("%s/%s %s stuck at %v", daemon, node, metric, v)
	return v
}

// TestBedTrafficAndHealth: the assembled testbed routes real packets
// across daemons (s0 -> gw -> s1 transits two UDP links), and the
// control surfaces report the topology truthfully.
func TestBedTrafficAndHealth(t *testing.T) {
	b := newBed(t)

	// gw -> s0: one cross-daemon hop.
	b.inject(t, "d1", "gw", "s0", 20)
	b.waitStat(t, "d2", "s0", "testbed.s0.rx_pkts", func(v float64) bool { return v >= 20 })

	// s0 -> s1: transits gw, two cross-daemon links, three daemons.
	b.inject(t, "d2", "s0", "s1", 15)
	b.waitStat(t, "d3", "s1", "testbed.s1.rx_pkts", func(v float64) bool { return v >= 15 })

	// /healthz and /links tell the truth about identity and link state.
	h := getJSON(t, b.base["d2"]+"/healthz")
	if h["daemon"] != "d2" || h["testbed"] != "bed" {
		t.Fatalf("healthz identity: %v", h)
	}
	links := getJSON(t, b.base["d1"]+"/links")
	raw, _ := json.Marshal(links["links"])
	var statuses []LinkStatus
	json.Unmarshal(raw, &statuses)
	if len(statuses) != 2 {
		t.Fatalf("d1 should own 2 remote endpoints: %v", links)
	}
	for _, s := range statuses {
		if s.State != "up" || s.Node != "gw" {
			t.Fatalf("link %v not up", s)
		}
	}
}

// TestBedFleetDeployAcrossDaemons: one daemon's /deploy resolves bare
// node names through the topology and runs the two-phase rollout
// against all three daemons' nodes; the deployment history records it.
func TestBedFleetDeployAcrossDaemons(t *testing.T) {
	b := newBed(t)

	resp, err := http.Post(
		b.base["d1"]+"/deploy?version=v1&nodes=gw,s0,s1",
		"text/plain", strings.NewReader(forwarder))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("deploy: HTTP %d: %s", resp.StatusCode, raw)
	}
	if !bytes.Contains(raw, []byte(`"activated"`)) && !bytes.Contains(raw, []byte(`"ok"`)) &&
		!bytes.Contains(raw, []byte(`"v1"`)) {
		t.Fatalf("deploy response lacks version: %s", raw)
	}

	// Every node on every daemon now runs v1.
	for daemon, node := range map[string]string{"d1": "gw", "d2": "s0", "d3": "s1"} {
		body := getJSON(t, b.base[daemon]+"/node/"+node+"/asp")
		if body["active"] != "v1" {
			t.Fatalf("%s/%s active = %v, want v1", daemon, node, body["active"])
		}
	}

	// The rollout landed in the coordinating daemon's history.
	hist := getJSON(t, b.base["d1"]+"/deployments")
	raw, _ = json.Marshal(hist)
	if !bytes.Contains(raw, []byte(`"v1"`)) {
		t.Fatalf("deployment history missing v1: %s", raw)
	}
}

// TestBedRemoteChaosPartition: a chaos timeline staged and started
// over HTTP on one daemon blackholes its outbound link direction; the
// far side stops receiving, the sender's fault-drop counter climbs,
// and stop?clear=1 heals it — the remote chaos control plane end to
// end.
func TestBedRemoteChaosPartition(t *testing.T) {
	b := newBed(t)

	timeline := `{"name": "cut", "steps": [{"at_ms": 0, "op": "down", "link": "gw-s0"}]}`
	status, body := postJSON(t, b.base["d1"]+"/chaos/stage", timeline)
	if status != http.StatusOK || body["staged"] != "cut" {
		t.Fatalf("stage: HTTP %d %v", status, body)
	}
	status, body = postJSON(t, b.base["d1"]+"/chaos/start?name=cut", "")
	if status != http.StatusOK || body["started"] != "cut" {
		t.Fatalf("start: HTTP %d %v", status, body)
	}

	// The partition is data-plane only: injected packets die at the
	// faulted interface while the handshake stays up.
	before := b.stat(t, "d2", "s0", "testbed.s0.rx_pkts")
	b.inject(t, "d1", "gw", "s0", 25)
	b.waitStat(t, "d1", "gw", "link.gw:s0.fault_dropped_pkts",
		func(v float64) bool { return v >= 25 })
	if after := b.stat(t, "d2", "s0", "testbed.s0.rx_pkts"); after != before {
		t.Fatalf("partitioned link delivered packets: %v -> %v", before, after)
	}

	// Status reports the run as done (single immediate step).
	st := getJSON(t, b.base["d1"]+"/chaos/status")
	raw, _ := json.Marshal(st)
	if !bytes.Contains(raw, []byte(`"cut"`)) {
		t.Fatalf("chaos status missing run: %s", raw)
	}

	// stop?clear=1 heals: traffic flows again.
	status, _ = postJSON(t, b.base["d1"]+"/chaos/stop?clear=1", "")
	if status != http.StatusOK {
		t.Fatalf("stop: HTTP %d", status)
	}
	b.inject(t, "d1", "gw", "s0", 10)
	b.waitStat(t, "d2", "s0", "testbed.s0.rx_pkts",
		func(v float64) bool { return v >= before+10 })
}

// TestBedCanaryPromoteAndChaosRollback is the issue's acceptance
// scenario in-process: a healthy canary on the gateway self-promotes;
// a second canary under a remotely-injected partition trips its guard
// and auto-rolls-back, all recorded in the fleet history.
func TestBedCanaryPromoteAndChaosRollback(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-window canary run")
	}
	b := newBed(t)

	// Baseline: v1 everywhere.
	resp, err := http.Post(b.base["d1"]+"/deploy?version=v1&nodes=gw,s0,s1",
		"text/plain", strings.NewReader(forwarder))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("baseline deploy: HTTP %d", resp.StatusCode)
	}

	// Background probe traffic gw -> s0 keeps the guarded link metric
	// live through both canary runs.
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		for {
			select {
			case <-stop:
				return
			case <-time.After(20 * time.Millisecond):
				http.Post(b.base["d1"]+"/inject?from=gw&to=s0&n=5", "", nil)
			}
		}
	}()

	canary := func(version, source string) map[string]any {
		req := map[string]any{
			"version": version,
			"source":  source,
			"canary":  []map[string]string{{"name": "gw", "url": b.base["d1"] + "/node/gw"}},
			"baseline": []map[string]string{
				{"name": "s0", "url": b.base["d2"] + "/node/s0"},
				{"name": "s1", "url": b.base["d3"] + "/node/s1"},
			},
			"guards":      []string{"link.gw:s0.fault_dropped_pkts<=0.5"},
			"windows":     2,
			"interval_ms": 250,
			"timeout_ms":  20000,
		}
		raw, _ := json.Marshal(req)
		status, body := postJSON(t, b.base["d1"]+"/adapt", string(raw))
		if status != http.StatusAccepted {
			t.Fatalf("adapt %s: HTTP %d %v", version, status, body)
		}
		// Poll GET /adapt until this run reports a verdict.
		deadline := time.Now().Add(25 * time.Second)
		for time.Now().Before(deadline) {
			runs, _ := getJSON(t, b.base["d1"]+"/adapt")["runs"].([]any)
			for _, r := range runs {
				run, _ := r.(map[string]any)
				if run["version"] == version && run["verdict"] != nil && run["verdict"] != "" {
					return run
				}
			}
			time.Sleep(50 * time.Millisecond)
		}
		t.Fatalf("canary %s never finished", version)
		return nil
	}

	// Healthy canary: clean link, guard passes, v2 self-promotes.
	run := canary("v2", forwarderV2)
	if run["verdict"] != "promoted" {
		t.Fatalf("healthy canary verdict = %v (%v)", run["verdict"], run["reason"])
	}
	gw := getJSON(t, b.base["d1"]+"/node/gw/asp")
	if gw["active"] != "v2" {
		t.Fatalf("gw active = %v after promotion, want v2", gw["active"])
	}

	// Remote partition during the second canary: the guard watches the
	// gw->s0 link's fault drops, chaos blackholes that exact direction,
	// and the controller rolls the canary back on its own.
	timeline := `{"name": "part", "steps": [{"at_ms": 0, "op": "down", "link": "gw-s0"}]}`
	if status, body := postJSON(t, b.base["d1"]+"/chaos/start", timeline); status != http.StatusOK {
		t.Fatalf("chaos start: HTTP %d %v", status, body)
	}
	run = canary("v3", forwarder)
	if run["verdict"] != "rolled-back" {
		t.Fatalf("partitioned canary verdict = %v (%v)", run["verdict"], run["reason"])
	}
	gw = getJSON(t, b.base["d1"]+"/node/gw/asp")
	if gw["active"] != "v2" {
		t.Fatalf("gw active = %v after rollback, want v2", gw["active"])
	}

	// Heal and confirm the history holds the whole story: deploy,
	// canary, promote, canary, rollback.
	postJSON(t, b.base["d1"]+"/chaos/stop?clear=1", "")
	hist, _ := json.Marshal(getJSON(t, b.base["d1"]+"/deployments"))
	for _, want := range []string{`"v1"`, `"v2"`, `"v3"`} {
		if !bytes.Contains(hist, []byte(want)) {
			t.Fatalf("history missing %s: %s", want, hist)
		}
	}
}

// TestBedReconnectKeepsHistory: restarting one daemon brings its links
// back (the peers log a reconnect, not a timeout-limbo), and the
// surviving coordinator's deployment history is untouched — a
// redeploy to the restarted node succeeds against the same topology
// file.
func TestBedReconnectKeepsHistory(t *testing.T) {
	b := newBed(t)

	// v1 on s0 via d1's coordinator.
	resp, err := http.Post(b.base["d1"]+"/deploy?version=v1&nodes=s0",
		"text/plain", strings.NewReader(forwarder))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("deploy: HTTP %d", resp.StatusCode)
	}

	// Restart d3 (s1's daemon): close it, then rebuild from the same
	// topology. The gw-s1 link must come back up on its own; the UDP
	// port is fixed by the topology file, so retry construction while
	// the kernel releases it.
	b.daemons["d3"].Close()
	var d3 *Daemon
	deadline := time.Now().Add(5 * time.Second)
	for {
		d3, err = NewDaemon(b.topo, "d3", Options{Logf: t.Logf, ProbeInterval: 25 * time.Millisecond})
		if err == nil || time.Now().After(deadline) {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("rebuild d3: %v", err)
	}
	t.Cleanup(d3.Close)
	d3.Start()
	if down := d3.WaitLinksUp(5 * time.Second); len(down) > 0 {
		t.Fatalf("links did not re-handshake after restart: %v", down)
	}
	// The surviving side counted a reconnect (new session, same peer).
	b.waitStat(t, "d1", "gw", "rtnet.reconnects", func(v float64) bool { return v >= 1 })

	// d1's history survived and still coordinates: v2 to s0 again.
	hist, _ := json.Marshal(getJSON(t, b.base["d1"]+"/deployments"))
	if !bytes.Contains(hist, []byte(`"v1"`)) {
		t.Fatalf("history lost v1 across peer restart: %s", hist)
	}
	resp, err = http.Post(b.base["d1"]+"/deploy?version=v2&nodes=s0",
		"text/plain", strings.NewReader(forwarderV2))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("redeploy after restart: HTTP %d", resp.StatusCode)
	}
	body := getJSON(t, b.base["d2"]+"/node/s0/asp")
	if body["active"] != "v2" || body["prev"] != "v1" {
		t.Fatalf("s0 state after upgrade = %v", body)
	}
}
