package testbed

import (
	"strings"
	"testing"
)

// validTopo is the reference 3-daemon topology used across the tests:
// a gateway on one daemon and a server on each of two others, with the
// two cross-daemon links on loopback UDP.
const validTopo = `{
  "name": "t",
  "daemons": [
    {"name": "d1", "control": "127.0.0.1:18001"},
    {"name": "d2", "control": "127.0.0.1:18002"},
    {"name": "d3", "control": "127.0.0.1:18003"}
  ],
  "nodes": [
    {"name": "gw", "addr": "10.0.0.1", "daemon": "d1", "forwarding": true},
    {"name": "s0", "addr": "10.0.0.2", "daemon": "d2"},
    {"name": "s1", "addr": "10.0.0.3", "daemon": "d3"}
  ],
  "links": [
    {"a": "gw", "b": "s0", "a_udp": "127.0.0.1:18101", "b_udp": "127.0.0.1:18102"},
    {"a": "gw", "b": "s1", "a_udp": "127.0.0.1:18103", "b_udp": "127.0.0.1:18104"}
  ]
}`

func TestParseTopology(t *testing.T) {
	topo, err := ParseTopology([]byte(validTopo))
	if err != nil {
		t.Fatal(err)
	}
	if topo.Name != "t" || len(topo.Daemons) != 3 || len(topo.Nodes) != 3 || len(topo.Links) != 2 {
		t.Fatalf("unexpected shape: %+v", topo)
	}
	if name := topo.Links[0].Name(); name != "gw-s0" {
		t.Fatalf("link name = %q, want gw-s0", name)
	}
	if bw := topo.Links[0].Bandwidth(); bw != DefaultBandwidth {
		t.Fatalf("defaulted bandwidth = %d", bw)
	}
	if url, ok := topo.NodeURL("s1"); !ok || url != "http://127.0.0.1:18003/node/s1" {
		t.Fatalf("NodeURL(s1) = %q, %v", url, ok)
	}
}

// TestTopologyValidation: every malformed topology is a structured
// parse-time error naming the offending element.
func TestTopologyValidation(t *testing.T) {
	mutate := func(from, to string) string {
		s := strings.Replace(validTopo, from, to, 1)
		if s == validTopo {
			t.Fatalf("mutation %q not applied", from)
		}
		return s
	}
	cases := []struct {
		name, topo, want string
	}{
		{"unknown-field", mutate(`"name": "t"`, `"name": "t", "nmae": "x"`), "unknown field"},
		{"dup-daemon", mutate(`"name": "d2"`, `"name": "d1"`), "duplicate daemon"},
		{"unknown-daemon", mutate(`"daemon": "d2"`, `"daemon": "dX"`), "unknown daemon"},
		{"dup-node", mutate(`"name": "s0"`, `"name": "gw"`), "duplicate node"},
		{"dup-addr", mutate(`"addr": "10.0.0.2"`, `"addr": "10.0.0.1"`), "share address"},
		{"bad-addr", mutate(`"addr": "10.0.0.2"`, `"addr": "banana"`), "s0"},
		{"unknown-link-node", mutate(`"a": "gw", "b": "s0"`, `"a": "gw", "b": "sX"`), "unknown node"},
		{"self-link", mutate(`"a": "gw", "b": "s0"`, `"a": "gw", "b": "gw"`), "itself"},
		{"missing-udp", mutate(`"a_udp": "127.0.0.1:18101", `, ``), "needs a_udp and b_udp"},
		{"no-daemons", `{"name":"t","daemons":[],"nodes":[],"links":[]}`, "no daemons"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseTopology([]byte(tc.topo))
			if err == nil {
				t.Fatalf("accepted invalid topology")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestNextHops: shortest-path derivation over a line topology routes
// the far ends through the middle.
func TestNextHops(t *testing.T) {
	topo, err := ParseTopology([]byte(validTopo))
	if err != nil {
		t.Fatal(err)
	}
	// Star around gw: the servers reach each other via gw.
	hops := topo.NextHops("s0")
	if hops["gw"] != "gw" || hops["s1"] != "gw" {
		t.Fatalf("s0 next hops = %v", hops)
	}
	hops = topo.NextHops("gw")
	if hops["s0"] != "s0" || hops["s1"] != "s1" {
		t.Fatalf("gw next hops = %v", hops)
	}
}
