// The testbed daemon: one planpd process's share of the distributed
// testbed. From the shared topology and its own name it assembles the
// local rtnet network — its nodes, the in-process links between them,
// and the UDP endpoints of every cross-daemon link — then mounts the
// full control plane over them: per-node protocol management, the
// fleet rollout controller, the adaptation loop, and the remote chaos
// API.
package testbed

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	"planp.dev/planp/internal/adapt"
	"planp.dev/planp/internal/chaos"
	"planp.dev/planp/internal/fleet"
	"planp.dev/planp/internal/lang/diag"
	"planp.dev/planp/internal/planpd"
	"planp.dev/planp/internal/rtnet"
	"planp.dev/planp/internal/substrate"
)

// discardPort is the testbed's traffic sink: every node binds it with
// a delivery counter, so injected probe traffic is observable at the
// far end through /stats.
const discardPort = 7

// Options tunes a daemon. The zero value works.
type Options struct {
	// Out receives installed protocols' print output (nil discards).
	Out io.Writer
	// Logf receives the fleet/adapt controllers' decision log.
	Logf func(format string, args ...any)
	// HistoryPath persists this daemon's deployment history.
	HistoryPath string
	// ProbeInterval overrides the cross-host links' liveness cadence
	// (tests shrink it to detect partitions fast).
	ProbeInterval time.Duration
}

// Daemon is one planpd process's slice of the testbed.
type Daemon struct {
	Topo *Topology
	Spec DaemonSpec

	// Net is the daemon's local real-time substrate.
	Net *rtnet.Net
	// Chaos is the daemon's fault engine: every local link direction is
	// wired under its topology-wide name, every local node adopted.
	Chaos *chaos.Engine
	// Fleet and Adapt are this daemon's rollout and adaptation
	// controllers; their targets may live on any daemon in the testbed.
	Fleet *fleet.Controller
	Adapt *adapt.Controller

	nodes   map[string]*rtnet.Node
	remotes []*rtnet.RemoteIface
	chs     *planpd.ChaosServer
	out     io.Writer
}

// NewDaemon assembles daemon name's share of topo: local nodes,
// daemon-local links, the local endpoints of cross-daemon links
// (sockets bind immediately; handshakes start at Start), derived plus
// explicit routes, and the chaos wiring. The returned daemon is built
// but not running — call Start.
func NewDaemon(topo *Topology, name string, opts Options) (*Daemon, error) {
	spec, err := topo.Daemon(name)
	if err != nil {
		return nil, err
	}
	if opts.Out == nil {
		opts.Out = io.Discard
	}
	if opts.Logf == nil {
		opts.Logf = func(string, ...any) {}
	}

	// Deterministic per-daemon seed: position in the shared file.
	seed := int64(1)
	for i, d := range topo.Daemons {
		if d.Name == name {
			seed = int64(i + 1)
		}
	}

	nw := rtnet.New(seed)
	d := &Daemon{
		Topo: topo, Spec: spec, Net: nw,
		Chaos: chaos.New(nw, seed*7919+3),
		nodes: map[string]*rtnet.Node{},
	}
	ok := false
	defer func() {
		if !ok {
			nw.Close()
		}
	}()

	// Local nodes. Every node answers the discard port with a counter
	// (`testbed.<node>.rx_pkts`), so /inject traffic is observable end
	// to end through GET /stats without any protocol installed — the
	// bare-network baseline an ASP download then changes.
	for _, n := range topo.Nodes {
		if n.Daemon != name {
			continue
		}
		node := rtnet.NewNode(nw, n.Name, substrate.MustAddr(n.Addr))
		node.Forwarding = n.Forwarding
		rx := nw.Metrics().Counter("testbed." + n.Name + ".rx_pkts")
		node.BindUDP(discardPort, func(*substrate.Packet) { rx.Add(1) })
		d.nodes[n.Name] = node
		d.Chaos.Adopt(node)
	}
	if len(d.nodes) == 0 {
		return nil, fmt.Errorf("testbed: daemon %q owns no nodes in topology %q", name, topo.Name)
	}

	// Links: in-process between two local nodes, a UDP endpoint when the
	// far node belongs to another daemon. outIface[n][peer] retains node
	// n's interface toward neighbor peer for route installation.
	outIface := map[string]map[string]substrate.Iface{}
	retain := func(node, peer string, ifc substrate.Iface) {
		if outIface[node] == nil {
			outIface[node] = map[string]substrate.Iface{}
		}
		outIface[node][peer] = ifc
	}
	for _, l := range topo.Links {
		la, aLocal := d.nodes[l.A]
		lb, bLocal := d.nodes[l.B]
		switch {
		case aLocal && bLocal:
			ab, ba := rtnet.NewLink(nw, la, lb, l.Bandwidth())
			retain(l.A, l.B, ab)
			retain(l.B, l.A, ba)
			d.Chaos.WireDuplex(l.Name(),
				[]substrate.FaultPort{ab}, []substrate.FaultPort{ba})
		case aLocal || bLocal:
			// This daemon owns one end: open its socket, expect the peer
			// daemon's node on the other. The link keeps its topology-wide
			// name on both sides (the handshake enforces agreement), and
			// the chaos wiring claims only the locally-owned direction —
			// fwd is always the first-named node's outbound, so the two
			// daemons' /chaos surfaces compose into one duplex link.
			local, localName, peerName := la, l.A, l.B
			listen, peer := l.AUDP, l.BUDP
			if bLocal {
				local, localName, peerName = lb, l.B, l.A
				listen, peer = l.BUDP, l.AUDP
			}
			pn, _ := topo.NodeSpecOf(peerName)
			ri, err := rtnet.NewRemoteLink(nw, local, rtnet.RemoteSpec{
				LinkName:      l.Name(),
				Listen:        listen,
				Peer:          peer,
				PeerNode:      peerName,
				PeerAddr:      substrate.MustAddr(pn.Addr),
				BandwidthBps:  l.Bandwidth(),
				ProbeInterval: opts.ProbeInterval,
			})
			if err != nil {
				return nil, err
			}
			d.remotes = append(d.remotes, ri)
			retain(localName, peerName, ri)
			if aLocal {
				d.Chaos.WireDuplex(l.Name(), []substrate.FaultPort{ri}, nil)
			} else {
				d.Chaos.WireDuplex(l.Name(), nil, []substrate.FaultPort{ri})
			}
		}
	}

	// Routes: shortest-path next hops derived from the shared link
	// graph (identical on every daemon), explicit extras layered on
	// top, and a default route for single-homed nodes so traffic to
	// virtual addresses heads into the network.
	for nodeName, node := range d.nodes {
		hops := topo.NextHops(nodeName)
		for dst, via := range hops {
			ds, _ := topo.NodeSpecOf(dst)
			node.AddRoute(substrate.MustAddr(ds.Addr), outIface[nodeName][via])
		}
		if len(outIface[nodeName]) == 1 {
			for _, ifc := range outIface[nodeName] {
				node.SetDefaultRoute(ifc)
			}
		}
	}
	for _, r := range topo.Routes {
		node, local := d.nodes[r.Node]
		if !local {
			continue
		}
		ifc := outIface[r.Node][r.Via]
		if ifc == nil {
			return nil, fmt.Errorf("testbed: route on %q via %q: no local interface", r.Node, r.Via)
		}
		node.AddRoute(substrate.MustAddr(r.Dst), ifc)
	}

	d.Fleet = fleet.New(fleet.Config{Logf: opts.Logf, HistoryPath: opts.HistoryPath})
	d.Adapt = adapt.New(adapt.Config{Fleet: d.Fleet, Logf: opts.Logf})
	d.chs = planpd.NewChaosServer(d.Chaos)
	d.out = opts.Out
	ok = true
	return d, nil
}

// Node returns a local node by name (nil when the node lives on
// another daemon).
func (d *Daemon) Node(name string) *rtnet.Node { return d.nodes[name] }

// Remotes returns the daemon's cross-host link endpoints.
func (d *Daemon) Remotes() []*rtnet.RemoteIface { return d.remotes }

// Start launches the local node goroutines; cross-daemon handshakes
// proceed as soon as the peer daemons come up.
func (d *Daemon) Start() { d.Net.Start() }

// Drain waits for this daemon's background adaptation runs (ctx bounds
// the wait; expiry cancels the stragglers). Part of graceful shutdown:
// stop accepting HTTP, Drain, then Close.
func (d *Daemon) Drain(ctx context.Context) bool { return d.Adapt.Drain(ctx) }

// Close shuts the daemon's substrate down. Remote links send BYE on
// the way out, so peers log link-down immediately.
func (d *Daemon) Close() { d.Net.Close() }

// WaitLinksUp blocks until every cross-daemon link endpoint reports
// up, or the timeout expires. Returns the names of links still not up.
func (d *Daemon) WaitLinksUp(timeout time.Duration) []string {
	deadline := time.Now().Add(timeout)
	for {
		var down []string
		for _, ri := range d.remotes {
			if !ri.Up() {
				down = append(down, ri.LinkName())
			}
		}
		if len(down) == 0 || time.Now().After(deadline) {
			sort.Strings(down)
			return down
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// Handler returns the daemon's full control API:
//
//	/node/<name>/...  per-node protocol management (planpd.Server) for
//	                  every locally-owned node
//	/deployments      fleet rollout history and control
//	/deploy           POST: two-phase rollout; bare node names resolve
//	                  through the topology to ANY daemon's node mounts
//	/adapt            self-promoting canary runs
//	/chaos/...        remote chaos control plane (stage/start/stop/
//	                  status) over this daemon's links and nodes
//	/links            cross-daemon link states (handshake, liveness,
//	                  last structured rejection)
//	/healthz          daemon identity, owned nodes, link summary
func (d *Daemon) Handler() http.Handler {
	mux := http.NewServeMux()
	for name, node := range d.nodes {
		prefix := "/node/" + name
		mux.Handle(prefix+"/", http.StripPrefix(prefix, planpd.NewServer(node, d.out).Handler()))
	}
	mux.Handle("/deployments", d.Fleet.Handler())
	mux.Handle("/adapt", d.Adapt.Handler())
	mux.Handle("/chaos/", d.chs.Handler())
	mux.HandleFunc("/deploy", d.handleDeploy)
	mux.HandleFunc("/inject", d.handleInject)
	mux.HandleFunc("/links", d.handleLinks)
	mux.HandleFunc("/healthz", d.handleHealth)
	return mux
}

// handleInject originates probe traffic: POST /inject?from=<local
// node>&to=<node>&n=N sends N UDP datagrams to the destination's
// discard port, whose rx counter then climbs in the destination
// daemon's /stats. The testbed's traffic generator: enough to light up
// link metrics, exercise chaos faults, and feed adaptation guards
// without any application protocol.
func (d *Daemon) handleInject(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	q := r.URL.Query()
	from := d.nodes[q.Get("from")]
	if from == nil {
		http.Error(w, fmt.Sprintf("no local node %q", q.Get("from")), http.StatusBadRequest)
		return
	}
	to, ok := d.Topo.NodeSpecOf(q.Get("to"))
	if !ok {
		http.Error(w, fmt.Sprintf("no node %q in topology", q.Get("to")), http.StatusBadRequest)
		return
	}
	n := 1
	if s := q.Get("n"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil || v <= 0 || v > 1<<16 {
			http.Error(w, "n must be in [1, 65536]", http.StatusBadRequest)
			return
		}
		n = v
	}
	dst := substrate.MustAddr(to.Addr)
	for i := 0; i < n; i++ {
		pkt := substrate.NewUDP(from.Address(), dst, discardPort, discardPort, []byte("probe"))
		from.Send(pkt.Own())
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"from": q.Get("from"), "to": to.Name, "sent": n,
	})
}

// ResolveTargets decodes a comma-separated target list against the
// WHOLE testbed: name=url entries pass through, bare node names
// resolve through the topology to the owning daemon's /node mount —
// including nodes owned by other daemons.
func (d *Daemon) ResolveTargets(spec string) ([]fleet.Target, error) {
	if spec == "" {
		return nil, errors.New("no target nodes given")
	}
	var targets []fleet.Target
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		if name, url, ok := strings.Cut(entry, "="); ok {
			targets = append(targets, fleet.Target{Name: name, URL: url})
			continue
		}
		url, ok := d.Topo.NodeURL(entry)
		if !ok {
			return nil, fmt.Errorf("no node %q in topology %q", entry, d.Topo.Name)
		}
		targets = append(targets, fleet.Target{Name: entry, URL: url})
	}
	return targets, nil
}

func (d *Daemon) handleDeploy(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	targets, err := d.ResolveTargets(r.URL.Query().Get("nodes"))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20+1))
	if err != nil || len(body) > 1<<20 {
		http.Error(w, "bad protocol source", http.StatusBadRequest)
		return
	}
	spec := fleet.Spec{
		Version:           r.URL.Query().Get("version"),
		Source:            string(body),
		Engine:            r.URL.Query().Get("engine"),
		Verify:            r.URL.Query().Get("verify"),
		SourceName:        r.URL.Query().Get("src_name"),
		AllowIncompatible: r.URL.Query().Get("allow_incompatible") == "true",
	}
	dep, deployErr := d.Fleet.Deploy(r.Context(), spec, targets)
	status := http.StatusOK
	resp := map[string]any{}
	if deployErr != nil {
		status = http.StatusConflict
		resp["error"] = deployErr.Error()
		if ds := diag.Of(deployErr); len(ds) > 0 {
			status = http.StatusUnprocessableEntity
			resp["diagnostics"] = ds
		}
	}
	if dep != nil {
		resp["deployment"] = dep.View()
	}
	writeJSON(w, status, resp)
}

// LinkStatus is one cross-daemon link endpoint's state as /links
// reports it.
type LinkStatus struct {
	Link  string `json:"link"`
	Node  string `json:"node"`
	Peer  string `json:"peer"`
	State string `json:"state"`
	// Reject is the most recent structured handshake rejection received
	// from the peer, when there is one.
	Reject *rtnet.RejectError `json:"reject,omitempty"`
}

func (d *Daemon) linkStatuses() []LinkStatus {
	statuses := make([]LinkStatus, 0, len(d.remotes))
	for _, ri := range d.remotes {
		label := ri.Label()
		node, _, _ := strings.Cut(label, ":")
		statuses = append(statuses, LinkStatus{
			Link:   ri.LinkName(),
			Node:   node,
			Peer:   ri.PeerNode(),
			State:  ri.State(),
			Reject: ri.LastReject(),
		})
	}
	sort.Slice(statuses, func(i, j int) bool { return statuses[i].Link < statuses[j].Link })
	return statuses
}

func (d *Daemon) handleLinks(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"daemon": d.Spec.Name,
		"links":  d.linkStatuses(),
	})
}

func (d *Daemon) handleHealth(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	nodes := make([]string, 0, len(d.nodes))
	for name := range d.nodes {
		nodes = append(nodes, name)
	}
	sort.Strings(nodes)
	writeJSON(w, http.StatusOK, map[string]any{
		"ok":      true,
		"testbed": d.Topo.Name,
		"daemon":  d.Spec.Name,
		"control": d.Spec.Control,
		"nodes":   nodes,
		"links":   d.linkStatuses(),
	})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}
