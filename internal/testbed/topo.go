// Package testbed assembles a DISTRIBUTED extensible network from
// planpd daemons on separate hosts: the configuration layer that turns
// "one daemon, one in-process cluster" into the paper's real shape —
// every host runs a protocol-management daemon over its own live
// nodes, and the network between them is real wire.
//
// A topology file (JSON) declares the daemons (one per host), the
// nodes each daemon owns, and the links between nodes. Links whose two
// endpoints live on the same daemon are ordinary in-process rtnet
// links; links that cross daemons become addressed UDP links
// (rtnet.NewRemoteLink) fronted by the versioned handshake, so a
// mis-deployed or version-skewed host is a structured rejection at
// link-establishment time, not a silent blackhole.
//
// Each daemon derives everything it needs from the one shared file and
// its own name: which nodes to create, which link halves to open,
// which routes to install (shortest-path next-hops over the declared
// link graph, plus explicit extras), and how to address its peers. Run
// all daemons in one process (`planpd up -topo f.json`) for a
// single-machine stand-in, or one per host (`-daemon <name>`) for the
// real thing — the file is identical in both.
package testbed

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"planp.dev/planp/internal/substrate"
)

// Topology is the parsed testbed description shared by every daemon.
type Topology struct {
	// Name labels the testbed in logs and health responses.
	Name string `json:"name"`
	// Daemons are the participating planpd processes, one per host.
	Daemons []DaemonSpec `json:"daemons"`
	// Nodes are the substrate nodes, each owned by exactly one daemon.
	Nodes []NodeSpec `json:"nodes"`
	// Links are the duplex links between nodes; cross-daemon links need
	// UDP endpoints.
	Links []LinkSpec `json:"links"`
	// Routes are explicit extra routes layered over the derived
	// shortest-path ones — virtual addresses, policy detours.
	Routes []RouteSpec `json:"routes,omitempty"`
}

// DaemonSpec is one planpd process.
type DaemonSpec struct {
	// Name is the daemon's topology-wide identity (handshakes and
	// `planpd up -daemon` select by it).
	Name string `json:"name"`
	// Control is the daemon's HTTP control endpoint ("host:port") — the
	// address the other hosts' operators and the fleet controller use.
	Control string `json:"control"`
}

// NodeSpec is one substrate node.
type NodeSpec struct {
	// Name is the node's unique hostname.
	Name string `json:"name"`
	// Addr is the node's network address ("10.0.0.1").
	Addr string `json:"addr"`
	// Daemon names the owning daemon.
	Daemon string `json:"daemon"`
	// Forwarding marks a router (packets not addressed to the node are
	// forwarded instead of dropped).
	Forwarding bool `json:"forwarding,omitempty"`
}

// LinkSpec is one duplex link. The link's topology-wide name is
// "<a>-<b>", which is also its chaos-timeline name and, for
// cross-daemon links, its handshake-validated identity.
type LinkSpec struct {
	// A and B name the endpoints.
	A string `json:"a"`
	B string `json:"b"`
	// BandwidthBps is the link capacity (default 100 Mbps). Both ends
	// of a cross-daemon link validate agreement in the handshake.
	BandwidthBps int64 `json:"bandwidth_bps,omitempty"`
	// AUDP/BUDP are the link's UDP endpoints ("host:port"), one per
	// side. Required iff the endpoints live on different daemons.
	AUDP string `json:"a_udp,omitempty"`
	BUDP string `json:"b_udp,omitempty"`
}

// RouteSpec is one explicit route: on Node, traffic to Dst leaves via
// the link to neighbor Via.
type RouteSpec struct {
	Node string `json:"node"`
	Dst  string `json:"dst"`
	Via  string `json:"via"`
}

// DefaultBandwidth is a link's capacity when the topology does not
// say.
const DefaultBandwidth int64 = 100_000_000

// Name returns the link's topology-wide name ("a-b").
func (l *LinkSpec) Name() string { return l.A + "-" + l.B }

// Bandwidth returns the link's capacity, defaulted.
func (l *LinkSpec) Bandwidth() int64 {
	if l.BandwidthBps > 0 {
		return l.BandwidthBps
	}
	return DefaultBandwidth
}

// ParseTopology decodes and validates a topology. Strict JSON: unknown
// fields are errors.
func ParseTopology(b []byte) (*Topology, error) {
	var topo Topology
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&topo); err != nil {
		return nil, fmt.Errorf("testbed: topology: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("testbed: topology: trailing data after document")
	}
	if err := topo.validate(); err != nil {
		return nil, err
	}
	return &topo, nil
}

// LoadTopology reads and parses a topology file.
func LoadTopology(path string) (*Topology, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("testbed: %w", err)
	}
	return ParseTopology(b)
}

func (t *Topology) validate() error {
	if len(t.Daemons) == 0 {
		return fmt.Errorf("testbed: topology %q has no daemons", t.Name)
	}
	if len(t.Nodes) == 0 {
		return fmt.Errorf("testbed: topology %q has no nodes", t.Name)
	}
	daemons := map[string]bool{}
	for _, d := range t.Daemons {
		if d.Name == "" || d.Control == "" {
			return fmt.Errorf("testbed: daemon needs name and control endpoint (got %q, %q)", d.Name, d.Control)
		}
		if daemons[d.Name] {
			return fmt.Errorf("testbed: duplicate daemon %q", d.Name)
		}
		daemons[d.Name] = true
	}
	nodes := map[string]NodeSpec{}
	addrs := map[string]string{}
	for _, n := range t.Nodes {
		if n.Name == "" {
			return fmt.Errorf("testbed: node needs a name")
		}
		if _, dup := nodes[n.Name]; dup {
			return fmt.Errorf("testbed: duplicate node %q", n.Name)
		}
		if !daemons[n.Daemon] {
			return fmt.Errorf("testbed: node %q names unknown daemon %q", n.Name, n.Daemon)
		}
		if _, err := substrate.ParseAddr(n.Addr); err != nil {
			return fmt.Errorf("testbed: node %q: %w", n.Name, err)
		}
		if prev, dup := addrs[n.Addr]; dup {
			return fmt.Errorf("testbed: nodes %q and %q share address %s", prev, n.Name, n.Addr)
		}
		addrs[n.Addr] = n.Name
		nodes[n.Name] = n
	}
	links := map[string]bool{}
	for _, l := range t.Links {
		a, okA := nodes[l.A]
		b, okB := nodes[l.B]
		if !okA || !okB {
			return fmt.Errorf("testbed: link %q references unknown node", l.Name())
		}
		if l.A == l.B {
			return fmt.Errorf("testbed: link %q connects a node to itself", l.Name())
		}
		if links[l.Name()] || links[l.B+"-"+l.A] {
			return fmt.Errorf("testbed: duplicate link %q", l.Name())
		}
		links[l.Name()] = true
		cross := a.Daemon != b.Daemon
		if cross && (l.AUDP == "" || l.BUDP == "") {
			return fmt.Errorf("testbed: cross-daemon link %q needs a_udp and b_udp endpoints", l.Name())
		}
		if !cross && (l.AUDP != "" || l.BUDP != "") {
			return fmt.Errorf("testbed: link %q is daemon-local; drop its UDP endpoints", l.Name())
		}
	}
	for _, r := range t.Routes {
		if _, ok := nodes[r.Node]; !ok {
			return fmt.Errorf("testbed: route on unknown node %q", r.Node)
		}
		if _, ok := nodes[r.Via]; !ok {
			return fmt.Errorf("testbed: route via unknown node %q", r.Via)
		}
		if _, err := substrate.ParseAddr(r.Dst); err != nil {
			return fmt.Errorf("testbed: route on %q: %w", r.Node, err)
		}
		if !t.adjacent(r.Node, r.Via) {
			return fmt.Errorf("testbed: route on %q via %q: not adjacent", r.Node, r.Via)
		}
	}
	return nil
}

// Daemon returns the named daemon spec, or an error listing the valid
// names.
func (t *Topology) Daemon(name string) (DaemonSpec, error) {
	for _, d := range t.Daemons {
		if d.Name == name {
			return d, nil
		}
	}
	var names []string
	for _, d := range t.Daemons {
		names = append(names, d.Name)
	}
	sort.Strings(names)
	return DaemonSpec{}, fmt.Errorf("testbed: no daemon %q in topology %q (have %v)", name, t.Name, names)
}

// NodeSpecOf returns the named node's spec.
func (t *Topology) NodeSpecOf(name string) (NodeSpec, bool) {
	for _, n := range t.Nodes {
		if n.Name == name {
			return n, true
		}
	}
	return NodeSpec{}, false
}

// DaemonOf returns the control endpoint of the daemon owning node —
// how bare node names in deploy/adapt requests resolve to per-node
// control URLs across the whole testbed.
func (t *Topology) DaemonOf(node string) (DaemonSpec, bool) {
	n, ok := t.NodeSpecOf(node)
	if !ok {
		return DaemonSpec{}, false
	}
	for _, d := range t.Daemons {
		if d.Name == n.Daemon {
			return d, true
		}
	}
	return DaemonSpec{}, false
}

// NodeURL returns the cluster-wide control URL for a node's planpd
// API ("http://<control>/node/<name>").
func (t *Topology) NodeURL(node string) (string, bool) {
	d, ok := t.DaemonOf(node)
	if !ok {
		return "", false
	}
	return "http://" + d.Control + "/node/" + node, true
}

// adjacent reports whether a and b share a link.
func (t *Topology) adjacent(a, b string) bool {
	for _, l := range t.Links {
		if (l.A == a && l.B == b) || (l.A == b && l.B == a) {
			return true
		}
	}
	return false
}

// neighbors returns each node's link-adjacent peers, sorted for
// deterministic route derivation.
func (t *Topology) neighbors() map[string][]string {
	adj := map[string][]string{}
	for _, l := range t.Links {
		adj[l.A] = append(adj[l.A], l.B)
		adj[l.B] = append(adj[l.B], l.A)
	}
	for _, peers := range adj {
		sort.Strings(peers)
	}
	return adj
}

// NextHops computes node from's shortest-path next hop toward every
// other reachable node (BFS over the link graph; ties break on sorted
// neighbor order, so every daemon derives identical tables from the
// shared file). The returned map is destination node → neighbor name.
func (t *Topology) NextHops(from string) map[string]string {
	adj := t.neighbors()
	next := map[string]string{}
	// BFS rooted at from; the first hop toward each discovered node is
	// inherited from its BFS parent.
	type item struct{ node, first string }
	visited := map[string]bool{from: true}
	var queue []item
	for _, nb := range adj[from] {
		visited[nb] = true
		queue = append(queue, item{nb, nb})
		next[nb] = nb
	}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, nb := range adj[cur.node] {
			if visited[nb] {
				continue
			}
			visited[nb] = true
			next[nb] = cur.first
			queue = append(queue, item{nb, cur.first})
		}
	}
	return next
}
