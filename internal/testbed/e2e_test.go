// Multi-process end-to-end test: three planpd daemons as SEPARATE OS
// processes (`planpd up -topo f.json -daemon dN`), joined only by real
// UDP sockets and driven only through their HTTP control planes — the
// localhost stand-in for the multi-machine testbed. The flow is the
// issue's acceptance scenario: cluster bootstrap, a crafted
// version-mismatched handshake answered with a structured REJECT,
// fleet deploy across daemons, canary promotion, a remotely-injected
// chaos partition that auto-rolls the next canary back, and a SIGTERM
// goodbye the surviving peers log as link-down.
package testbed

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"planp.dev/planp/internal/substrate"
)

// buildPlanpd compiles the daemon binary once into the test's temp
// dir.
func buildPlanpd(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "planpd")
	cmd := exec.Command("go", "build", "-o", bin, "planp.dev/planp/cmd/planpd")
	cmd.Dir = repoRoot(t)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build planpd: %v\n%s", err, out)
	}
	return bin
}

func repoRoot(t *testing.T) string {
	t.Helper()
	out, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		t.Fatalf("go env GOMOD: %v", err)
	}
	return filepath.Dir(strings.TrimSpace(string(out)))
}

// freeTCPPorts reserves n loopback TCP ports by binding and closing.
func freeTCPPorts(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = ln.Addr().String()
		ln.Close()
	}
	return addrs
}

// proc is one spawned daemon process. done closes when the process
// exits, so both term and the cleanup can wait on it.
type proc struct {
	cmd  *exec.Cmd
	err  error
	done chan struct{}
}

func spawn(t *testing.T, bin, topoPath, daemon string) *proc {
	t.Helper()
	cmd := exec.Command(bin, "up", "-topo", topoPath, "-daemon", daemon, "-probe", "50ms")
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	p := &proc{cmd: cmd, done: make(chan struct{})}
	go func() {
		p.err = cmd.Wait()
		close(p.done)
	}()
	t.Cleanup(func() {
		cmd.Process.Signal(syscall.SIGKILL)
		select {
		case <-p.done:
		case <-time.After(10 * time.Second):
			t.Errorf("daemon %s did not die on SIGKILL", daemon)
		}
	})
	return p
}

// term SIGTERMs the process and asserts a clean exit.
func (p *proc) term(t *testing.T) {
	t.Helper()
	p.cmd.Process.Signal(syscall.SIGTERM)
	select {
	case <-p.done:
		if p.err != nil {
			t.Fatalf("daemon exit after SIGTERM: %v", p.err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not exit after SIGTERM")
	}
}

// waitHTTP polls a URL until it answers 200.
func waitHTTP(t *testing.T, url string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(url)
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(25 * time.Millisecond)
	}
	t.Fatalf("%s never came up", url)
}

// linkStates fetches a daemon's /links as link-name -> state.
func linkStates(t *testing.T, base string) map[string]string {
	t.Helper()
	var body struct {
		Links []LinkStatus `json:"links"`
	}
	resp, err := http.Get(base + "/links")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	states := map[string]string{}
	for _, l := range body.Links {
		states[l.Link] = l.State
	}
	return states
}

func waitLinkState(t *testing.T, base, link, want string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	var got string
	for time.Now().Before(deadline) {
		got = linkStates(t, base)[link]
		if got == want {
			return
		}
		time.Sleep(25 * time.Millisecond)
	}
	t.Fatalf("link %s on %s stuck in %q, want %q", link, base, got, want)
}

func nodeStat(t *testing.T, base, node, metric string) float64 {
	t.Helper()
	resp, err := http.Get(base + "/node/" + node + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body struct {
		Stats map[string]float64 `json:"stats"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	return body.Stats[metric]
}

func waitNodeStat(t *testing.T, base, node, metric string, ok func(float64) bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	var v float64
	for time.Now().Before(deadline) {
		v = nodeStat(t, base, node, metric)
		if ok(v) {
			return
		}
		time.Sleep(25 * time.Millisecond)
	}
	t.Fatalf("%s/%s %s stuck at %v", base, node, metric, v)
}

// badVersionHello encodes a HELLO frame claiming protocol version
// current+1 with otherwise-correct identity — the version-skew probe.
func badVersionHello(node string, addr substrate.Addr, link string, bw int64) []byte {
	b := []byte{0x02} // frameHello
	b = binary.BigEndian.AppendUint16(b, 2)
	b = binary.BigEndian.AppendUint64(b, 0xdecafbad)
	b = binary.BigEndian.AppendUint32(b, uint32(addr))
	b = binary.BigEndian.AppendUint64(b, uint64(bw))
	b = append(b, byte(len(node)))
	b = append(b, node...)
	b = append(b, byte(len(link)))
	b = append(b, link...)
	return b
}

// TestMultiProcessTestbedE2E is the distributed acceptance run. Slow
// (builds the binary, real canary windows); skipped under -short.
func TestMultiProcessTestbedE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process e2e")
	}
	bin := buildPlanpd(t)

	ctrl := freeTCPPorts(t, 3)
	udp := freeUDPPorts(t, 4)
	topoJSON := fmt.Sprintf(`{
	  "name": "e2e",
	  "daemons": [
	    {"name": "d1", "control": %q},
	    {"name": "d2", "control": %q},
	    {"name": "d3", "control": %q}
	  ],
	  "nodes": [
	    {"name": "gw", "addr": "10.0.0.1", "daemon": "d1", "forwarding": true},
	    {"name": "s0", "addr": "10.0.0.2", "daemon": "d2"},
	    {"name": "s1", "addr": "10.0.0.3", "daemon": "d3"}
	  ],
	  "links": [
	    {"a": "gw", "b": "s0", "a_udp": %q, "b_udp": %q},
	    {"a": "gw", "b": "s1", "a_udp": %q, "b_udp": %q}
	  ]
	}`, ctrl[0], ctrl[1], ctrl[2], udp[0], udp[1], udp[2], udp[3])
	topoPath := filepath.Join(t.TempDir(), "testbed.json")
	if err := os.WriteFile(topoPath, []byte(topoJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	base1 := "http://" + ctrl[0]
	base2 := "http://" + ctrl[1]
	base3 := "http://" + ctrl[2]

	// Phase 1: d1 and d3 come up; gw-s1 handshakes, gw-s0 waits for its
	// absent peer.
	d1 := spawn(t, bin, topoPath, "d1")
	d3 := spawn(t, bin, topoPath, "d3")
	waitHTTP(t, base1+"/healthz")
	waitHTTP(t, base3+"/healthz")
	waitLinkState(t, base1, "gw-s1", "up")

	// Phase 2: before d2 exists, impersonate it from its own UDP
	// endpoint with a version-skewed HELLO. The daemon must answer with
	// a structured REJECT (code 1 = version), not silence.
	raw, err := net.ListenPacket("udp", udp[1])
	if err != nil {
		t.Fatal(err)
	}
	peer, _ := net.ResolveUDPAddr("udp", udp[0])
	hello := badVersionHello("s0", substrate.MustAddr("10.0.0.2"), "gw-s0", DefaultBandwidth)
	gotReject := false
	deadline := time.Now().Add(10 * time.Second)
	buf := make([]byte, 2048)
	for !gotReject && time.Now().Before(deadline) {
		if _, err := raw.WriteTo(hello, peer); err != nil {
			t.Fatal(err)
		}
		raw.SetReadDeadline(time.Now().Add(250 * time.Millisecond))
		for {
			n, _, err := raw.ReadFrom(buf)
			if err != nil {
				break
			}
			if n >= 2 && buf[0] == 0x04 { // frameReject
				if code := buf[1]; code != 1 {
					t.Fatalf("reject code = %d, want 1 (version)", code)
				}
				msg := string(buf[5:n])
				if !strings.Contains(msg, "version") {
					t.Fatalf("reject message %q does not mention version", msg)
				}
				gotReject = true
				break
			}
		}
	}
	raw.Close()
	if !gotReject {
		t.Fatal("version-skewed HELLO never drew a REJECT")
	}
	waitNodeStat(t, base1, "gw", "rtnet.handshake_rejected",
		func(v float64) bool { return v >= 1 })

	// Phase 3: the real d2 arrives on the same endpoint; the full
	// 3-daemon cluster converges.
	d2 := spawn(t, bin, topoPath, "d2")
	waitHTTP(t, base2+"/healthz")
	waitLinkState(t, base1, "gw-s0", "up")
	waitLinkState(t, base2, "gw-s0", "up")

	// Traffic crosses daemons before any protocol is installed.
	resp, err := http.Post(base1+"/inject?from=gw&to=s0&n=20", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	waitNodeStat(t, base2, "s0", "testbed.s0.rx_pkts",
		func(v float64) bool { return v >= 20 })

	// Phase 4: fleet deploy v1 to all three nodes through d1's
	// coordinator; every daemon's node reports it active.
	resp, err = http.Post(base1+"/deploy?version=v1&nodes=gw,s0,s1",
		"text/plain", strings.NewReader(forwarder))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("deploy: HTTP %d: %s", resp.StatusCode, body)
	}
	for base, node := range map[string]string{base1: "gw", base2: "s0", base3: "s1"} {
		r, err := http.Get(base + "/node/" + node + "/asp")
		if err != nil {
			t.Fatal(err)
		}
		var st struct {
			Active string `json:"active"`
		}
		json.NewDecoder(r.Body).Decode(&st)
		r.Body.Close()
		if st.Active != "v1" {
			t.Fatalf("%s/%s active = %q, want v1", base, node, st.Active)
		}
	}

	// Background probe traffic keeps the guarded link metric live.
	stopTraffic := make(chan struct{})
	defer close(stopTraffic)
	go func() {
		for {
			select {
			case <-stopTraffic:
				return
			case <-time.After(20 * time.Millisecond):
				if r, err := http.Post(base1+"/inject?from=gw&to=s0&n=5", "", nil); err == nil {
					r.Body.Close()
				}
			}
		}
	}()

	// Phase 5: healthy canary promotes v2 from gw to the servers.
	runCanary := func(version, source string) string {
		req := map[string]any{
			"version": version,
			"source":  source,
			"canary":  []map[string]string{{"name": "gw", "url": base1 + "/node/gw"}},
			"baseline": []map[string]string{
				{"name": "s0", "url": base2 + "/node/s0"},
				{"name": "s1", "url": base3 + "/node/s1"},
			},
			"guards":      []string{"link.gw:s0.fault_dropped_pkts<=0.5"},
			"windows":     2,
			"interval_ms": 250,
			"timeout_ms":  20000,
		}
		reqBody, _ := json.Marshal(req)
		resp, err := http.Post(base1+"/adapt", "application/json", bytes.NewReader(reqBody))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("adapt %s: HTTP %d", version, resp.StatusCode)
		}
		deadline := time.Now().Add(25 * time.Second)
		for time.Now().Before(deadline) {
			r, err := http.Get(base1 + "/adapt")
			if err != nil {
				t.Fatal(err)
			}
			var runs struct {
				Runs []struct {
					Version string `json:"version"`
					Verdict string `json:"verdict"`
				} `json:"runs"`
			}
			json.NewDecoder(r.Body).Decode(&runs)
			r.Body.Close()
			for _, run := range runs.Runs {
				if run.Version == version && run.Verdict != "" {
					return run.Verdict
				}
			}
			time.Sleep(50 * time.Millisecond)
		}
		t.Fatalf("canary %s never finished", version)
		return ""
	}
	if v := runCanary("v2", forwarderV2); v != "promoted" {
		t.Fatalf("healthy canary verdict = %q, want promoted", v)
	}

	// Phase 6: remotely-injected partition (HTTP one-shot /chaos/start
	// on d1) blackholes gw->s0; the v3 canary's guard trips and the
	// controller rolls it back on its own.
	timeline := `{"name": "part", "steps": [{"at_ms": 0, "op": "down", "link": "gw-s0"}]}`
	resp, err = http.Post(base1+"/chaos/start", "application/json", strings.NewReader(timeline))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("chaos start: HTTP %d", resp.StatusCode)
	}
	if v := runCanary("v3", forwarder); v != "rolled-back" {
		t.Fatalf("partitioned canary verdict = %q, want rolled-back", v)
	}
	r, err := http.Get(base1 + "/node/gw/asp")
	if err != nil {
		t.Fatal(err)
	}
	var st struct {
		Active string `json:"active"`
	}
	json.NewDecoder(r.Body).Decode(&st)
	r.Body.Close()
	if st.Active != "v2" {
		t.Fatalf("gw active = %q after rollback, want v2", st.Active)
	}

	// Heal via the chaos CLI (exercises `planpd chaos stop`).
	out, err := exec.Command(bin, "chaos", "stop", "-daemon", base1, "-clear").CombinedOutput()
	if err != nil {
		t.Fatalf("planpd chaos stop: %v\n%s", err, out)
	}
	out, err = exec.Command(bin, "chaos", "status", "-daemon", base1).CombinedOutput()
	if err != nil || !bytes.Contains(out, []byte(`"part"`)) {
		t.Fatalf("planpd chaos status: %v\n%s", err, out)
	}

	// Phase 7: graceful shutdown. SIGTERM d3: its links BYE their peers,
	// so d1 logs goodbye-down instead of waiting out a probe timeout.
	d3.term(t)
	waitLinkState(t, base1, "gw-s1", "down")
	waitNodeStat(t, base1, "gw", "rtnet.goodbyes",
		func(v float64) bool { return v >= 1 })

	d2.term(t)
	d1.term(t)
}
