package experiments

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

// deterministic lists the drivers whose output is a pure function of
// their seeds — everything except fig3 and engines, which print
// wall-clock measurements.
var deterministic = []string{
	"fig6", "fig7", "fig8", "mpeg", "ablation-locus", "ablation-policy", "failover",
	"chaos-audio", "chaos-gateway", "scale",
}

// slow marks the experiments skipped under the race detector (each is
// tens of seconds at -race; the remaining grids cover the same sharing
// surfaces).
var slow = map[string]bool{"fig8": true, "ablation-policy": true, "fig7": true, "scale": true}

func find(t *testing.T, name string) Experiment {
	t.Helper()
	for _, e := range All() {
		if e.Name == name {
			return e
		}
	}
	t.Fatalf("experiment %q not registered", name)
	return Experiment{}
}

// TestParallelOutputMatchesSequential is the driver-level acceptance
// gate: for every deterministic experiment, a 4-worker run must be
// byte-identical to the sequential run. (cmd/aspbench adds only the
// per-experiment banner and the wall-clock footer around these bytes,
// so this is `aspbench -exp all -parallel 4` vs `-parallel 1` modulo
// the footer.)
func TestParallelOutputMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every deterministic experiment twice")
	}
	for _, name := range deterministic {
		if raceEnabled && slow[name] {
			continue
		}
		name := name
		t.Run(name, func(t *testing.T) {
			e := find(t, name)
			var seq, par bytes.Buffer
			if err := e.Run(&seq, Options{Parallel: 1}); err != nil {
				t.Fatalf("sequential: %v", err)
			}
			if err := e.Run(&par, Options{Parallel: 4}); err != nil {
				t.Fatalf("parallel: %v", err)
			}
			if seq.String() != par.String() {
				t.Errorf("output differs between -parallel 1 and -parallel 4:\n%s", firstDiff(seq.String(), par.String()))
			}
		})
	}
}

// firstDiff returns the first differing line pair for a readable
// failure message.
func firstDiff(a, b string) string {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := 0; i < len(al) && i < len(bl); i++ {
		if al[i] != bl[i] {
			return "line " + string(rune('0'+i%10)) + ":\n  seq: " + al[i] + "\n  par: " + bl[i]
		}
	}
	return "length mismatch"
}

// TestExperimentRegistry pins the canonical names cmd/aspbench exposes.
func TestExperimentRegistry(t *testing.T) {
	want := []string{"fig3", "fig6", "fig7", "fig8", "mpeg", "engines", "ablation-locus", "ablation-policy", "failover", "chaos-audio", "chaos-gateway", "scale"}
	all := All()
	if len(all) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(all), len(want))
	}
	for i, e := range all {
		if e.Name != want[i] {
			t.Errorf("registry[%d] = %q, want %q", i, e.Name, want[i])
		}
		if e.Desc == "" || e.Run == nil {
			t.Errorf("registry[%d] %q incomplete", i, e.Name)
		}
	}
}

// TestDriversWriteOnlyToWriter ensures a driver never prints to
// process-global stdout: run one cheap experiment and require
// everything to land in the passed writer (non-empty output).
func TestDriversWriteOnlyToWriter(t *testing.T) {
	var buf bytes.Buffer
	if err := find(t, "ablation-locus").Run(&buf, Options{}); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("driver produced no output on the provided writer")
	}
	if err := find(t, "failover").Run(io.Discard, Options{}); err != nil {
		t.Fatal(err)
	}
}

// TestShardOutputMatchesSingle is the sharding acceptance gate at the
// driver level: every deterministic experiment must produce
// byte-identical output at Shards=1 and Shards=4. For the paper
// experiments the topologies declare no boundaries and the engine
// collapses to one shard, proving the option is inert there; for scale
// the city actually splits into four event loops.
func TestShardOutputMatchesSingle(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every deterministic experiment twice")
	}
	for _, name := range deterministic {
		if raceEnabled && slow[name] {
			continue
		}
		name := name
		t.Run(name, func(t *testing.T) {
			e := find(t, name)
			var one, four bytes.Buffer
			if err := e.Run(&one, Options{Shards: 1}); err != nil {
				t.Fatalf("shards=1: %v", err)
			}
			if err := e.Run(&four, Options{Shards: 4}); err != nil {
				t.Fatalf("shards=4: %v", err)
			}
			if one.String() != four.String() {
				t.Errorf("output differs between -shards 1 and -shards 4:\n%s", firstDiff(one.String(), four.String()))
			}
		})
	}
}
