package experiments

import (
	"fmt"
	"io"

	"planp.dev/planp/internal/apps/city"
)

// runScale runs the city-scale sharded scenario (internal/apps/city):
// regional clusters — each a §3.2 ASP gateway cluster plus a §3.1 audio
// multicast tree — joined by a backbone ring of shard-boundary links.
// Options.Shards picks the number of parallel event loops; ScaleFull
// switches from the CI-sized city to the full metropolitan deployment.
//
// Everything written here is shard-count-independent by construction
// (per-region traffic counters, event and packet totals — never the
// effective shard count or any wall-clock measurement): the CI scale
// job diffs this output between -shards 1 and -shards 4, and the
// benchmarks in bench_test.go own the throughput numbers.
func runScale(w io.Writer, opts Options) error {
	opts.fill()
	cfg := city.CI
	label := "CI-sized"
	if opts.ScaleFull {
		cfg = city.Full
		label = "full metropolitan"
	}
	cfg.Shards = opts.Shards
	cfg.Engine = opts.Engine
	res, err := city.Run(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "city scale experiment (%s): %d regions, %d nodes, %d modeled clients\n",
		label, cfg.Regions, res.Nodes, res.Clients)
	fmt.Fprintf(w, "deterministic counters (identical at any shard count):\n")
	fmt.Fprint(w, res.Output)
	fmt.Fprintf(w, "city.packets %d\n", res.Packets)
	return nil
}
