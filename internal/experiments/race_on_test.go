//go:build race

package experiments

// raceEnabled gates the slowest byte-identity cases: under the race
// detector a full figure-8 sweep takes minutes, and one representative
// grid per driver family is enough to catch cross-cell sharing.
const raceEnabled = true
