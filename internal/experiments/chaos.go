// Robustness experiments: the §3.1 audio application and the §3.2
// load-balancing gateway re-run under injected faults (internal/chaos).
// The paper argues ASPs let applications adapt to network conditions;
// these drivers check the claim holds when the network misbehaves —
// loss, duplication, flapping links, partitions, node crashes — and
// that recovery follows heal.
//
// Every cell builds its own netsim Simulator and its own chaos Engine
// with a seed derived from the grid coordinates, so the tables are
// byte-identical across runs and across -parallel widths, like every
// other deterministic experiment.
//
// Each row carries a "safety" verdict asserting the envelope the
// drivers exist to check: receipt bounded by emission plus injected
// duplicates (no unbounded duplication), and traffic flowing again in
// the tail window after the last heal (service recovers).
package experiments

import (
	"fmt"
	"io"
	"time"

	"planp.dev/planp/asp"
	"planp.dev/planp/internal/apps/audio"
	"planp.dev/planp/internal/apps/httpd"
	"planp.dev/planp/internal/chaos"
	"planp.dev/planp/internal/netsim"
	"planp.dev/planp/internal/netsim/loadgen"
	"planp.dev/planp/internal/obs"
	"planp.dev/planp/internal/par"
	"planp.dev/planp/internal/planprt"
)

// ---------------------------------------------------------------------------
// chaos-audio: §3.1 under degraded uplink and router crash

// chaosAudioDur is one audio cell's virtual duration; the tail window
// (last 10 s) must carry audio for scenarios that heal.
const chaosAudioDur = 60 * time.Second

// chaosAudioLoad keeps the client segment in figure 7's interesting
// band, so the rows show chaos faults and congestion adaptation at
// once — with their drops counted separately (fault vs queue).
const chaosAudioLoad = 9_900_000

// audioScenario is one fault schedule for the audio testbed.
type audioScenario struct {
	name  string
	heals bool // the network is whole again before the tail window
	play  func(tb *audio.Testbed, eng *chaos.Engine, engine planprt.EngineKind)
}

func audioScenarios() []audioScenario {
	return []audioScenario{
		{"clean", true, func(*audio.Testbed, *chaos.Engine, planprt.EngineKind) {}},
		{"loss 10% uplink", false, func(_ *audio.Testbed, eng *chaos.Engine, _ planprt.EngineKind) {
			eng.Apply(chaos.Loss("uplink", 0.10))
		}},
		{"dup 30% uplink", false, func(_ *audio.Testbed, eng *chaos.Engine, _ planprt.EngineKind) {
			eng.Apply(chaos.Duplicate("uplink", 0.30))
		}},
		{"flap 1s every 10s", true, func(_ *audio.Testbed, eng *chaos.Engine, _ planprt.EngineKind) {
			eng.Play(chaos.NewScenario().
				Every(10*time.Second, 40*time.Second, chaos.Flap("uplink", time.Second)))
		}},
		{"partition 20-30s", true, func(_ *audio.Testbed, eng *chaos.Engine, _ planprt.EngineKind) {
			eng.Play(chaos.NewScenario().
				At(20*time.Second, chaos.Down("uplink")).
				At(30*time.Second, chaos.Up("uplink")))
		}},
		{"crash 20s, redeploy 25s", true, func(tb *audio.Testbed, eng *chaos.Engine, engine planprt.EngineKind) {
			eng.Play(chaos.NewScenario().
				At(20*time.Second, chaos.Crash("router")).
				At(25*time.Second, chaos.Restart("router"),
					chaos.Call("redeploy audio-router", func() {
						if tb.RouterRT == nil {
							return // no ASP was installed; restart restores plain forwarding
						}
						rt, err := planprt.Download(tb.Router, asp.AudioRouter, planprt.Config{Engine: engine})
						if err != nil {
							panic(fmt.Sprintf("chaos-audio: redeploy: %v", err))
						}
						tb.RouterRT = rt
					})))
		}},
	}
}

// chaosAudioRow is one (scenario, adaptation) measurement.
type chaosAudioRow struct {
	scenario   string
	mode       audio.Adaptation
	sent       int
	received   int
	lost       int
	silent     int
	segDrops   int64
	faultDrops int64
	dups       int64
	tail       int // packets received in the final 10 s
	safety     string
}

func runChaosAudioCell(sc audioScenario, mode audio.Adaptation, opts Options, seed int64) (*chaosAudioRow, error) {
	engine := opts.Engine
	tb, err := audio.NewTestbed(audio.Options{Adaptation: mode, Engine: engine, Seed: seed, Shards: opts.Shards})
	if err != nil {
		return nil, err
	}
	eng := chaos.New(tb.Sim, seed*7919+13)
	eng.Wire("uplink", tb.Uplink.Ifaces()[0], tb.Uplink.Ifaces()[1])
	eng.Adopt(tb.Router)
	sc.play(tb, eng, engine)

	// Background load in the adaptation band, as in figure 7.
	const payload = 1000
	startPoissonLoad(tb, chaosAudioLoad, payload, chaosAudioDur)
	tb.Source.Start(tb.Sim, chaosAudioDur)

	recvNow := func() int { return tb.Client.Gaps.Received() + tb.Client.Unplayable }
	tailStart := 0
	tb.Sim.At(chaosAudioDur-10*time.Second, func() { tailStart = recvNow() })
	tb.Sim.RunUntil(chaosAudioDur)
	tb.Client.Finish(chaosAudioDur)

	reg := tb.Sim.Metrics()
	row := &chaosAudioRow{
		scenario:   sc.name,
		mode:       mode,
		sent:       tb.Source.Sent,
		received:   recvNow(),
		lost:       tb.Client.LostPackets,
		silent:     tb.Client.SilentPeriods,
		segDrops:   tb.Segment.Dropped(),
		faultDrops: reg.Counter("chaos.fault_drops").Value(),
		dups:       reg.Counter("chaos.duplicated_pkts").Value(),
		tail:       recvNow() - tailStart,
	}
	row.safety = "ok"
	if int64(row.received) > int64(row.sent)+row.dups {
		row.safety = fmt.Sprintf("VIOLATED: received %d > sent %d + dups %d", row.received, row.sent, row.dups)
	} else if sc.heals && row.tail == 0 {
		row.safety = "VIOLATED: no audio after heal"
	}
	return row, nil
}

// startPoissonLoad drives the audio testbed's load generator the same
// way figure 7 does.
func startPoissonLoad(tb *audio.Testbed, bps int64, payload int, dur time.Duration) {
	wire := int64(payload + netsim.IPHeaderLen + netsim.UDPHeaderLen)
	p := &loadgen.Poisson{Node: tb.LoadGen, Rate: float64(bps) / float64(wire*8), Emit: func() {
		tb.LoadGen.Send(netsim.NewUDP(tb.LoadGen.Addr, tb.SinkAddr(), 40000, 40000, make([]byte, payload)).Own())
	}}
	p.Start(tb.Sim, 0, dur)
}

func runChaosAudio(w io.Writer, opts Options) error {
	opts.fill()
	scenarios := audioScenarios()
	modes := []audio.Adaptation{audio.AdaptNone, audio.AdaptASP}
	rows := make([]*chaosAudioRow, len(scenarios)*len(modes))
	errs := make([]error, len(rows))
	par.Grid2(opts.Parallel, len(scenarios), len(modes), func(i, j int) {
		k := i*len(modes) + j
		rows[k], errs[k] = runChaosAudioCell(scenarios[i], modes[j], opts, int64(100+k))
	})
	if err := firstErr(errs); err != nil {
		return err
	}
	tbl := &obs.Table{
		Title:   fmt.Sprintf("Robustness: §3.1 audio under injected faults (%.1f Mb/s background)", float64(chaosAudioLoad)/1e6),
		Headers: []string{"scenario", "adaptation", "sent", "received", "lost", "silent periods", "queue drops", "fault drops", "dup pkts", "tail recv", "safety"},
	}
	for _, r := range rows {
		tbl.AddRow(r.scenario, r.mode.String(), r.sent, r.received, r.lost, r.silent,
			r.segDrops, r.faultDrops, r.dups, r.tail, r.safety)
	}
	fmt.Fprint(w, tbl)
	fmt.Fprintln(w, "safety envelope: receipt never exceeds emission plus injected duplicates,")
	fmt.Fprintln(w, "and every scenario that heals carries audio again in the final 10 s —")
	fmt.Fprintln(w, "including the router crash, where the ASP is gone until redeployed.")
	fmt.Fprintln(w, "note: fault drops (chaos) and queue drops (congestion) are distinct")
	fmt.Fprintln(w, "counters; adaptation shrinks the latter, never the former.")
	return nil
}

// ---------------------------------------------------------------------------
// chaos-gateway: §3.2 under server-LAN faults and gateway crash

const (
	chaosGwDur     = 20 * time.Second // request issuance window
	chaosGwDrain   = 2 * time.Second
	chaosGwFaultAt = 8 * time.Second
	chaosGwHealAt  = 12 * time.Second
	chaosGwRate    = 100.0 // offered req/s per client
)

// gwScenario is one fault schedule for the gateway cluster.
type gwScenario struct {
	name  string
	heals bool
	play  func(tb *httpd.Testbed, eng *chaos.Engine, engine planprt.EngineKind)
}

func gwScenarios() []gwScenario {
	return []gwScenario{
		{"clean", true, func(*httpd.Testbed, *chaos.Engine, planprt.EngineKind) {}},
		{"loss 20% server LAN", false, func(_ *httpd.Testbed, eng *chaos.Engine, _ planprt.EngineKind) {
			eng.Apply(chaos.Loss("server-lan", 0.20))
		}},
		{"dup 30% server LAN", false, func(_ *httpd.Testbed, eng *chaos.Engine, _ planprt.EngineKind) {
			eng.Apply(chaos.Duplicate("server-lan", 0.30))
		}},
		{"partition 8-12s", true, func(_ *httpd.Testbed, eng *chaos.Engine, _ planprt.EngineKind) {
			eng.Play(chaos.NewScenario().
				At(chaosGwFaultAt, chaos.Down("server-lan")).
				At(chaosGwHealAt, chaos.Up("server-lan")))
		}},
		{"crash 8s, redeploy 12s", true, func(tb *httpd.Testbed, eng *chaos.Engine, engine planprt.EngineKind) {
			eng.Play(chaos.NewScenario().
				At(chaosGwFaultAt, chaos.Crash("gateway")).
				At(chaosGwHealAt, chaos.Restart("gateway"),
					chaos.Call("redeploy http-gateway", func() {
						rt, err := planprt.Download(tb.Gateway, asp.HTTPGateway, planprt.Config{
							Engine: engine,
							Verify: planprt.VerifySingleNode,
						})
						if err != nil {
							panic(fmt.Sprintf("chaos-gateway: redeploy: %v", err))
						}
						tb.GwRT = rt
					})))
		}},
	}
}

// chaosGwRow is one gateway scenario's measurement.
type chaosGwRow struct {
	scenario    string
	issued      int64
	beforeFault int64 // completions by the fault instant
	during      int64 // completions inside the fault window
	afterHeal   int64 // completions after the heal instant (incl. drain)
	faultDrops  int64
	gwDrops     int64
	safety      string
}

func runChaosGatewayCell(sc gwScenario, opts Options, seed int64) (*chaosGwRow, error) {
	engine := opts.Engine
	tb, err := httpd.NewTestbed(httpd.Config{Variant: httpd.VariantASPGW, Engine: engine, Seed: seed, Shards: opts.Shards})
	if err != nil {
		return nil, err
	}
	eng := chaos.New(tb.Sim, seed*7919+17)
	eng.Wire("server-lan", tb.GwServerIf, tb.ServerAIf, tb.ServerBIf)
	eng.Adopt(tb.Gateway)
	sc.play(tb, eng, engine)

	tr1 := httpd.NewTrace(httpd.TraceConfig{Accesses: 20000, Documents: 2000, ZipfS: 1.2, MeanSize: 6000, Seed: seed})
	tr2 := httpd.NewTrace(httpd.TraceConfig{Accesses: 20000, Documents: 2000, ZipfS: 1.2, MeanSize: 6000, Seed: seed + 1})
	c1 := httpd.NewClient(tb.Clients[0], httpd.VirtualAddr, chaosGwRate, tr1)
	c2 := httpd.NewClient(tb.Clients[1], httpd.VirtualAddr, chaosGwRate, tr2)
	completed := func() int64 { return c1.Completed + c2.Completed }

	var atFault, atHeal int64
	tb.Sim.At(chaosGwFaultAt, func() { atFault = completed() })
	tb.Sim.At(chaosGwHealAt, func() { atHeal = completed() })
	c1.Start(chaosGwDur, 0)
	c2.Start(chaosGwDur, 0)
	tb.Sim.RunUntil(chaosGwDur + chaosGwDrain)

	row := &chaosGwRow{
		scenario:    sc.name,
		issued:      c1.Issued + c2.Issued,
		beforeFault: atFault,
		during:      atHeal - atFault,
		afterHeal:   completed() - atHeal,
		faultDrops:  tb.Sim.Metrics().Counter("chaos.fault_drops").Value(),
		gwDrops:     tb.Gateway.Stats().DroppedPkts,
	}
	row.safety = "ok"
	if completed() > row.issued {
		row.safety = fmt.Sprintf("VIOLATED: completed %d > issued %d", completed(), row.issued)
	} else if sc.heals && row.afterHeal == 0 {
		row.safety = "VIOLATED: no completions after heal"
	}
	return row, nil
}

func runChaosGateway(w io.Writer, opts Options) error {
	opts.fill()
	scenarios := gwScenarios()
	rows := make([]*chaosGwRow, len(scenarios))
	errs := make([]error, len(rows))
	par.ForEach(opts.Parallel, len(scenarios), func(i int) {
		rows[i], errs[i] = runChaosGatewayCell(scenarios[i], opts, int64(200+i))
	})
	if err := firstErr(errs); err != nil {
		return err
	}
	tbl := &obs.Table{
		Title: fmt.Sprintf("Robustness: §3.2 ASP gateway under injected faults (%.0f req/s offered, fault at %s, heal at %s)",
			2*chaosGwRate, chaosGwFaultAt, chaosGwHealAt),
		Headers: []string{"scenario", "issued", "done@fault", "done in window", "done after heal", "fault drops", "gw drops", "safety"},
	}
	for _, r := range rows {
		tbl.AddRow(r.scenario, r.issued, r.beforeFault, r.during, r.afterHeal, r.faultDrops, r.gwDrops, r.safety)
	}
	fmt.Fprint(w, tbl)
	fmt.Fprintln(w, "safety envelope: duplicated packets never double-count a request")
	fmt.Fprintln(w, "(completions stay bounded by issuance), and requests complete again")
	fmt.Fprintln(w, "after the heal — for the crash row that requires re-downloading the")
	fmt.Fprintln(w, "gateway ASP, since a crash loses all downloaded protocol state.")
	return nil
}
