// Package experiments holds the drivers that regenerate every table and
// figure of the paper's evaluation (§3). cmd/aspbench is a thin flag
// wrapper around this package; the drivers live here, behind an
// io.Writer, so the regression suite can run them in-process and
// compare sequential against parallel output byte for byte.
//
// # Parallelism
//
// Each grid cell (one load level × one adaptation mode, one variant ×
// one offered load, ...) builds its own Simulator and runs to
// completion independently, so cells parallelize across a bounded
// worker pool (internal/par). Determinism is preserved: per-cell seeds
// are functions of the grid coordinates, results land in slots indexed
// by cell, and table rows are assembled in index order after the pool
// drains — Options.Parallel changes wall-clock time, never bytes.
//
// The two experiments that MEASURE wall-clock time (fig3's
// code-generation table, the engines microbenchmarks) stay sequential:
// running timing probes while sibling cells saturate the CPU would
// perturb the numbers they exist to report.
package experiments

import (
	"fmt"
	"io"
	"strings"
	"testing"
	"time"

	"planp.dev/planp/asp"
	"planp.dev/planp/internal/apps/audio"
	"planp.dev/planp/internal/apps/httpd"
	"planp.dev/planp/internal/apps/mpeg"
	"planp.dev/planp/internal/lang/langtest"
	"planp.dev/planp/internal/lang/parser"
	"planp.dev/planp/internal/lang/typecheck"
	"planp.dev/planp/internal/lang/value"
	"planp.dev/planp/internal/obs"
	"planp.dev/planp/internal/par"
	"planp.dev/planp/internal/planprt"
)

// Options configures a driver run.
type Options struct {
	// Engine is the ASP engine the experiments run with (default JIT).
	Engine planprt.EngineKind
	// Parallel is the worker-pool width for grid experiments; <= 1 runs
	// every cell sequentially on the calling goroutine.
	Parallel int
	// Shards caps each simulation's parallel event loops (default 1).
	// Drivers pass it through to every topology they build; only
	// topologies that declare shard boundaries (the scale experiment's
	// city) actually split, and outputs are byte-identical at any
	// value — the regression suite diffs Shards=1 against Shards=4.
	Shards int
	// ScaleFull switches the scale experiment from the CI-sized city
	// to the full metropolitan deployment (10k+ routers, ~1M modeled
	// clients). Minutes of CPU; off by default.
	ScaleFull bool
}

func (o *Options) fill() {
	if o.Engine == "" {
		o.Engine = planprt.EngineJIT
	}
	if o.Parallel < 1 {
		o.Parallel = 1
	}
	if o.Shards < 1 {
		o.Shards = 1
	}
}

// Experiment is one runnable table/figure driver.
type Experiment struct {
	Name string
	Desc string
	Run  func(w io.Writer, opts Options) error
}

// All returns the experiment list in canonical (aspbench -exp all)
// order.
func All() []Experiment {
	return []Experiment{
		{"fig3", "code-generation time for the five ASPs (paper figure 3)", runFig3},
		{"fig6", "audio bandwidth under stepped load (paper figure 6)", runFig6},
		{"fig7", "silent periods with/without adaptation (paper figure 7)", runFig7},
		{"fig8", "HTTP cluster throughput vs offered load (paper figure 8)", runFig8},
		{"mpeg", "server load vs viewers for the MPEG experiment (§3.3)", runMPEG},
		{"engines", "per-packet engine cost: interp/bytecode/jit/native (§2.4)", runEngines},
		{"ablation-locus", "in-router vs end-to-end feedback adaptation (§3.1 claim)", runAblationLocus},
		{"ablation-policy", "load-balancing policies: modulo/random/least-conn (§5)", runAblationPolicy},
		{"failover", "gateway fault tolerance: server crash + admin removal (§5)", runFailover},
		{"chaos-audio", "§3.1 audio under loss/dup/flap/partition/crash (robustness)", runChaosAudio},
		{"chaos-gateway", "§3.2 gateway under server-LAN faults + crash-redeploy (robustness)", runChaosGateway},
		{"scale", "sharded city simulation, shard-invariant counters (-scale-full: 10k+ routers)", runScale},
	}
}

// firstErr returns the first non-nil error of a cell-indexed slice.
func firstErr(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// lineCount counts non-empty source lines.
func lineCount(src string) int {
	n := 0
	for _, line := range strings.Split(src, "\n") {
		if strings.TrimSpace(line) != "" {
			n++
		}
	}
	return n
}

// paperFig3 holds the paper's reported numbers for comparison columns.
var paperFig3 = map[string]struct {
	lines int
	ms    float64
}{
	"audio-router": {68, 11.0},
	"audio-client": {28, 6.2},
	"http-gateway": {91, 15.3},
	"mpeg-monitor": {161, 33.9},
	"mpeg-client":  {53, 6.1},
}

// runFig3 measures code-generation time per program per engine. The
// paper's absolute numbers are 1998 hardware with Tempo's template
// assembly; what must hold is the ordering (more lines, more time) and
// that generation is far below any per-download budget. Sequential and
// uncached by design: it times the compiler.
func runFig3(w io.Writer, opts Options) error {
	opts.fill()
	tbl := &obs.Table{
		Title:   "Figure 3: code generation time",
		Headers: []string{"program", "lines", "paper-lines", "paper-ms", "jit-us", "bytecode-us", "check-us"},
	}
	for _, p := range asp.All() {
		prog, err := parser.Parse(p.Source)
		if err != nil {
			return err
		}
		checkStart := time.Now()
		if _, err := typecheck.Check(prog); err != nil {
			return err
		}
		checkTime := time.Since(checkStart)

		median := func(engine planprt.EngineKind) time.Duration {
			const reps = 51
			times := make([]time.Duration, 0, reps)
			for i := 0; i < reps; i++ {
				pl, err := planprt.Load(p.Source, planprt.Config{Engine: engine, Verify: planprt.VerifyPrivileged, NoCache: true})
				if err != nil {
					panic(err)
				}
				times = append(times, pl.CodegenTime)
			}
			for i := 1; i < len(times); i++ {
				for j := i; j > 0 && times[j] < times[j-1]; j-- {
					times[j], times[j-1] = times[j-1], times[j]
				}
			}
			return times[len(times)/2]
		}
		ref := paperFig3[p.Name]
		tbl.AddRow(p.Name, lineCount(p.Source), ref.lines, ref.ms,
			float64(median(planprt.EngineJIT).Nanoseconds())/1000,
			float64(median(planprt.EngineBytecode).Nanoseconds())/1000,
			float64(checkTime.Nanoseconds())/1000)
	}
	fmt.Fprint(w, tbl)
	fmt.Fprintln(w, "shape check: generation time grows with program size, and all times are")
	fmt.Fprintln(w, "orders of magnitude below a per-download budget (the paper's point).")
	return nil
}

func runFig6(w io.Writer, opts Options) error {
	opts.fill()
	tb, err := audio.NewTestbed(audio.Options{Adaptation: audio.AdaptASP, Engine: opts.Engine, Shards: opts.Shards})
	if err != nil {
		return err
	}
	res := tb.RunFigure6()
	fmt.Fprintln(w, "audio data rate at the client, one sample per 10 s of virtual time:")
	fmt.Fprint(w, res.Series.Render(10*time.Second))
	tbl := &obs.Table{
		Title:   "Figure 6 phases (paper: 176 -> 44 -> oscillating 44-88 -> 88 kb/s)",
		Headers: []string{"phase", "load", "measured kb/s", "paper kb/s"},
	}
	tbl.AddRow("0-100s", "none", res.QuietKbps, 176)
	tbl.AddRow("100-220s", "large", res.LargeKbps, 44)
	tbl.AddRow("220-340s", "medium", res.MediumKbps, "44-88 (oscillates)")
	tbl.AddRow("340-460s", "small", res.SmallKbps, 88)
	fmt.Fprint(w, tbl)
	fmt.Fprintf(w, "medium phase oscillates between 8- and 16-bit mono: %v\n", res.MediumOscillates)
	return nil
}

func runFig7(w io.Writer, opts Options) error {
	opts.fill()
	loads := audio.Figure7Loads
	modes := []audio.Adaptation{audio.AdaptNone, audio.AdaptASP}
	rows := make([]*audio.Figure7Row, len(loads)*len(modes))
	errs := make([]error, len(rows))
	par.Grid2(opts.Parallel, len(loads), len(modes), func(i, j int) {
		k := i*len(modes) + j
		rows[k], errs[k] = audio.RunFigure7(loads[i], 60*time.Second, audio.Options{Adaptation: modes[j], Engine: opts.Engine, Seed: 11, Shards: opts.Shards})
	})
	if err := firstErr(errs); err != nil {
		return err
	}
	tbl := &obs.Table{
		Title:   "Figure 7: silent periods during 60 s of playback",
		Headers: []string{"background load", "adaptation", "silent periods", "lost packets", "stalls", "packets", "segment drops"},
	}
	for i, load := range loads {
		for j, mode := range modes {
			row := rows[i*len(modes)+j]
			tbl.AddRow(fmt.Sprintf("%.1f Mb/s", float64(load)/1e6), mode.String(),
				row.SilentPeriods, row.LostPackets, row.Stalls, row.Received, row.SegDrops)
		}
	}
	fmt.Fprint(w, tbl)
	fmt.Fprintln(w, "shape check: without adaptation, gaps appear once the segment saturates;")
	fmt.Fprintln(w, "with the ASP the audio shrinks to fit and playback stays continuous.")
	return nil
}

func runFig8(w io.Writer, opts Options) error {
	opts.fill()
	variants := []httpd.Variant{httpd.VariantSingle, httpd.VariantNativeGW, httpd.VariantASPGW, httpd.VariantDisjoint}
	sweep := httpd.DefaultSweep
	pts := make([]*httpd.Point, len(variants)*len(sweep))
	errs := make([]error, len(pts))
	par.Grid2(opts.Parallel, len(variants), len(sweep), func(i, j int) {
		k := i*len(sweep) + j
		pts[k], errs[k] = httpd.RunPoint(httpd.Config{Variant: variants[i], Engine: opts.Engine, Shards: opts.Shards}, sweep[j], 12*time.Second, 3*time.Second)
	})
	if err := firstErr(errs); err != nil {
		return err
	}
	tbl := &obs.Table{
		Title:   "Figure 8: served throughput (req/s) vs offered load",
		Headers: []string{"offered", "(d) single", "(b) native gw", "(c) ASP gw", "(a) 2 disjoint"},
	}
	for j, offered := range sweep {
		tbl.AddRow(offered, pts[0*len(sweep)+j].ServedRPS, pts[1*len(sweep)+j].ServedRPS,
			pts[2*len(sweep)+j].ServedRPS, pts[3*len(sweep)+j].ServedRPS)
	}
	fmt.Fprint(w, tbl)

	sat := make([]float64, len(variants))
	satErrs := make([]error, len(variants))
	par.ForEach(opts.Parallel, len(variants), func(i int) {
		sat[i], satErrs[i] = httpd.Saturation(httpd.Config{Variant: variants[i], Engine: opts.Engine, Shards: opts.Shards}, 20*time.Second)
	})
	if err := firstErr(satErrs); err != nil {
		return err
	}
	fmt.Fprintf(w, "\nsaturation: single=%.0f  native-gw=%.0f  asp-gw=%.0f  disjoint=%.0f req/s\n",
		sat[0], sat[1], sat[2], sat[3])
	fmt.Fprintf(w, "paper claims:  ASP==native: %.2fx   cluster/single: %.2fx (paper 1.75)   cluster/disjoint: %.2f (paper ~0.85)\n",
		sat[2]/sat[1], sat[2]/sat[0], sat[2]/sat[3])
	return nil
}

func runMPEG(w io.Writer, opts Options) error {
	opts.fill()
	viewerCounts := []int{1, 2, 4, 8}
	aspModes := []bool{false, true}
	results := make([]*mpeg.Result, len(viewerCounts)*len(aspModes))
	errs := make([]error, len(results))
	par.Grid2(opts.Parallel, len(viewerCounts), len(aspModes), func(i, j int) {
		k := i*len(aspModes) + j
		results[k], errs[k] = mpeg.Run(mpeg.Options{Viewers: viewerCounts[i], UseASPs: aspModes[j], Engine: opts.Engine, Shards: opts.Shards}, 20*time.Second)
	})
	if err := firstErr(errs); err != nil {
		return err
	}
	tbl := &obs.Table{
		Title:   "MPEG experiment (§3.3): server load vs viewers on one segment",
		Headers: []string{"viewers", "ASPs", "server connections", "server frames", "min viewer frames"},
	}
	for i, viewers := range viewerCounts {
		for j, useASPs := range aspModes {
			res := results[i*len(aspModes)+j]
			minFrames := res.ViewerFrames[0]
			for _, f := range res.ViewerFrames {
				if f < minFrames {
					minFrames = f
				}
			}
			tbl.AddRow(viewers, useASPs, res.ServerConnections, res.ServerFrames, minFrames)
		}
	}
	fmt.Fprint(w, tbl)
	fmt.Fprintln(w, "shape check: with the ASPs, server connections and frames stay flat as")
	fmt.Fprintln(w, "viewers multiply; every viewer still receives the stream.")
	return nil
}

// runEngines microbenchmarks the per-packet cost of one load-balancer
// invocation under each engine plus a native Go handler — the §2.4
// claim: the JIT removes interpretation overhead. Sequential by design
// (wall-clock measurements).
func runEngines(w io.Writer, opts Options) error {
	opts.fill()
	info, err := loadGatewayInfo()
	if err != nil {
		return err
	}
	pkt := langtest.TCPPacket("10.0.1.1", "10.0.0.100", 4001, 80, []byte("GET /index.html"))

	tbl := &obs.Table{
		Title:   "Per-packet channel invocation cost (load-balancer ASP)",
		Headers: []string{"engine", "ns/op", "vs native", "allocs/op"},
	}
	native := testing.Benchmark(func(b *testing.B) {
		benchNative(b, pkt)
	})
	nativeNs := float64(native.NsPerOp())
	for _, eng := range []planprt.EngineKind{planprt.EngineInterp, planprt.EngineBytecode, planprt.EngineJIT} {
		r, err := benchEngine(eng, info, pkt)
		if err != nil {
			return err
		}
		tbl.AddRow(string(eng), r.NsPerOp(), float64(r.NsPerOp())/nativeNs, r.AllocsPerOp())
	}
	tbl.AddRow("native-go", native.NsPerOp(), 1.0, native.AllocsPerOp())
	fmt.Fprint(w, tbl)
	fmt.Fprintln(w, "note: the gateway's cost is dominated by hash-table primitives shared by")
	fmt.Fprintln(w, "all engines, which compresses the spread. The kernel below isolates pure")
	fmt.Fprintln(w, "language execution, where specialization pays in full:")
	fmt.Fprintln(w)

	tbl2 := &obs.Table{
		Title:   "Per-packet cost, compute-bound classification kernel",
		Headers: []string{"engine", "ns/op", "vs jit", "allocs/op"},
	}
	pktU := langtest.UDPPacket("10.0.1.1", "10.0.2.9", 4001, 9, []byte("abcdefgh"))
	type res struct {
		eng string
		r   testing.BenchmarkResult
	}
	var rows []res
	for _, eng := range []planprt.EngineKind{planprt.EngineInterp, planprt.EngineBytecode, planprt.EngineJIT} {
		r, err := benchProgram(eng, asp.BenchCompute, pktU)
		if err != nil {
			return err
		}
		rows = append(rows, res{string(eng), r})
	}
	jitNs := float64(rows[2].r.NsPerOp())
	for _, row := range rows {
		tbl2.AddRow(row.eng, row.r.NsPerOp(), float64(row.r.NsPerOp())/jitNs, row.r.AllocsPerOp())
	}
	fmt.Fprint(w, tbl2)
	fmt.Fprintln(w, "shape check: interp >> bytecode > jit (the paper: JIT output is as fast")
	fmt.Fprintln(w, "as in-kernel C; here the jit engine approaches the hand-written handler).")
	return nil
}

// benchProgram measures one engine's invoke cost on an arbitrary
// protocol source.
func benchProgram(eng planprt.EngineKind, src string, pkt value.Value) (testing.BenchmarkResult, error) {
	p, err := planprt.Load(src, planprt.Config{Engine: eng, Verify: planprt.VerifyPrivileged})
	if err != nil {
		return testing.BenchmarkResult{}, err
	}
	ctx := langtest.NewCtx()
	inst, err := p.Compiled.NewInstance(ctx)
	if err != nil {
		return testing.BenchmarkResult{}, err
	}
	ci := p.Info.ChannelsByName("network")[0].Index
	return testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ctx.Sent = ctx.Sent[:0]
			if err := inst.Invoke(ci, ctx, pkt); err != nil {
				b.Fatal(err)
			}
		}
	}), nil
}

// loadGatewayInfo type-checks the HTTP gateway for the microbench.
func loadGatewayInfo() (*typecheck.Info, error) {
	prog, err := parser.Parse(asp.HTTPGateway)
	if err != nil {
		return nil, err
	}
	return typecheck.Check(prog)
}

// benchEngine measures one engine's invoke cost.
func benchEngine(eng planprt.EngineKind, info *typecheck.Info, pkt value.Value) (testing.BenchmarkResult, error) {
	p, err := planprt.Load(asp.HTTPGateway, planprt.Config{Engine: eng, Verify: planprt.VerifyPrivileged})
	if err != nil {
		return testing.BenchmarkResult{}, err
	}
	ctx := langtest.NewCtx()
	inst, err := p.Compiled.NewInstance(ctx)
	if err != nil {
		return testing.BenchmarkResult{}, err
	}
	ci := p.Info.ChannelsByName("network")[0].Index
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ctx.Sent = ctx.Sent[:0]
			if err := inst.Invoke(ci, ctx, pkt); err != nil {
				b.Fatal(err)
			}
		}
	})
	return res, nil
}

// benchNative measures the hand-written Go equivalent of the gateway's
// per-packet work.
func benchNative(b *testing.B, pkt value.Value) {
	b.ReportAllocs()
	ctx := langtest.NewCtx()
	conns := map[string]value.Host{}
	count := int64(0)
	serverA := langtest.MustHost("10.0.0.81")
	serverB := langtest.MustHost("10.0.0.109")
	virtual := langtest.MustHost("10.0.0.100")
	for i := 0; i < b.N; i++ {
		ctx.Sent = ctx.Sent[:0]
		iph := pkt.Vs[0].AsIP()
		tcph := pkt.Vs[1].AsTCP()
		if iph.Dst == virtual && tcph.DstPort == 80 {
			key := value.EncodeKey(value.TupleV(value.HostV(iph.Src), value.Int(int64(tcph.SrcPort))))
			srv, ok := conns[key]
			if !ok {
				if count%2 == 0 {
					srv = serverA
				} else {
					srv = serverB
				}
				conns[key] = srv
			}
			if tcph.Flags&value.TCPSyn != 0 {
				count++
			}
			h := *iph
			h.Dst = srv
			ctx.OnRemote("network", value.TupleV(value.IP(&h), pkt.Vs[1], pkt.Vs[2]))
		} else {
			ctx.OnRemote("network", pkt)
		}
	}
}
