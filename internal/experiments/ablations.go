// Ablation experiments: design choices DESIGN.md calls out.
package experiments

import (
	"fmt"
	"io"
	"time"

	"planp.dev/planp/asp"
	"planp.dev/planp/internal/apps/audio"
	"planp.dev/planp/internal/apps/httpd"
	"planp.dev/planp/internal/obs"
	"planp.dev/planp/internal/par"
)

// runAblationLocus compares in-router adaptation against end-to-end
// feedback: §3.1's argument that router-local measurement reacts
// immediately while feedback waits for a distributed computation.
func runAblationLocus(w io.Writer, opts Options) error {
	opts.fill()
	mechs := []string{"router", "feedback"}
	results := make([]*audio.LocusResult, len(mechs))
	errs := make([]error, len(mechs))
	par.ForEach(opts.Parallel, len(mechs), func(i int) {
		results[i], errs[i] = audio.RunLocus(mechs[i], audio.Options{Seed: 5, Shards: opts.Shards})
	})
	if err := firstErr(errs); err != nil {
		return err
	}
	tbl := &obs.Table{
		Title:   "Adaptation locus: reaction to a heavy load step",
		Headers: []string{"mechanism", "reaction time", "gaps in transition", "segment drops after step"},
	}
	for _, res := range results {
		reaction := "never"
		if res.ReactionTime > 0 {
			reaction = res.ReactionTime.Round(time.Millisecond).String()
		}
		tbl.AddRow(res.Mechanism, reaction, res.GapsDuringTransition, res.DropsDuringTransition)
	}
	fmt.Fprint(w, tbl)
	fmt.Fprintln(w, "shape check: the router reacts within its load-measurement window")
	fmt.Fprintln(w, "(~250 ms). Feedback waits out its 2 s reporting interval — and its loss")
	fmt.Fprintln(w, "reports themselves cross the congested segment, so reaction stretches")
	fmt.Fprintln(w, "to multiple intervals. This is §3.1's case for in-router adaptation.")
	return nil
}

// runFailover demonstrates §5's fault-tolerance extension: a server
// crash followed by administrator removal, with service continuing on
// the survivor.
func runFailover(w io.Writer, opts Options) error {
	opts.fill()
	res, err := httpd.RunFailover(httpd.Config{Engine: opts.Engine, Seed: 3, Shards: opts.Shards})
	if err != nil {
		return err
	}
	tbl := &obs.Table{
		Title:   "Gateway failover: A crashes at t=8s, admin removes it at t=10s",
		Headers: []string{"metric", "value"},
	}
	tbl.AddRow("completed before crash", res.CompletedBefore)
	tbl.AddRow("lost in the 2s blackout", res.LostDuring)
	tbl.AddRow("completed after admin action", res.CompletedAfter)
	tbl.AddRow("served by A (total)", res.ServedByA)
	tbl.AddRow("served by B (total)", res.ServedByB)
	fmt.Fprint(w, tbl)
	fmt.Fprintln(w, "shape check: losses are confined to connections stuck to the dead")
	fmt.Fprintln(w, "server during the blackout; one admin datagram restores full service.")
	return nil
}

// runAblationPolicy swaps the gateway ASP between balancing policies on
// a heterogeneous cluster (server B at half capacity): §5's proposal
// that strategies are evaluated by editing the ASP.
func runAblationPolicy(w io.Writer, opts Options) error {
	opts.fill()
	policies := []struct {
		name string
		src  string
	}{
		{"modulo", asp.HTTPGateway},
		{"random", asp.HTTPGatewayRandom},
		{"least-conn", asp.HTTPGatewayLeastConn},
	}

	type policyRow struct {
		served  float64
		servedA int64
		servedB int64
		lat     time.Duration
	}
	rows := make([]policyRow, len(policies))
	errs := make([]error, len(policies))
	par.ForEach(opts.Parallel, len(policies), func(i int) {
		slowB := httpd.ServerConfig{Workers: 4} // half the workers of server A
		cfg := httpd.Config{
			Variant:       httpd.VariantASPGW,
			Engine:        opts.Engine,
			ServerB:       &slowB,
			GatewaySource: policies[i].src,
			Shards:        opts.Shards,
		}
		tb, err := httpd.NewTestbed(cfg)
		if err != nil {
			errs[i] = err
			return
		}
		tr1 := httpd.NewTrace(httpd.TraceConfig{Accesses: 20000, Documents: 2000, ZipfS: 1.2, MeanSize: 6000, Seed: 5})
		tr2 := httpd.NewTrace(httpd.TraceConfig{Accesses: 20000, Documents: 2000, ZipfS: 1.2, MeanSize: 6000, Seed: 6})
		c1 := httpd.NewClient(tb.Clients[0], httpd.VirtualAddr, 200, tr1)
		c2 := httpd.NewClient(tb.Clients[1], httpd.VirtualAddr, 200, tr2)
		const dur, warmup = 20 * time.Second, 5 * time.Second
		c1.Start(dur, warmup)
		c2.Start(dur, warmup)
		tb.Sim.RunUntil(dur + 2*time.Second)

		rows[i] = policyRow{
			served:  float64(c1.WarmedCompleted+c2.WarmedCompleted) / (dur - warmup).Seconds(),
			servedA: tb.ServerA.Served,
			servedB: tb.ServerB.Served,
			lat:     (c1.Latency + c2.Latency) / time.Duration(c1.Completed+c2.Completed),
		}
	})
	if err := firstErr(errs); err != nil {
		return err
	}

	tbl := &obs.Table{
		Title:   "Load-balancing policy on a heterogeneous cluster (B at half capacity)",
		Headers: []string{"policy", "served req/s @400 offered", "A served", "B served", "mean latency"},
	}
	for i, pol := range policies {
		tbl.AddRow(pol.name, rows[i].served, rows[i].servedA, rows[i].servedB, rows[i].lat.Round(time.Millisecond))
	}
	fmt.Fprint(w, tbl)
	fmt.Fprintln(w, "shape check: modulo and random overload the slow half; least-conn")
	fmt.Fprintln(w, "shifts work toward the fast server and serves more at lower latency.")
	return nil
}
