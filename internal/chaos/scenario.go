// The scenario timeline: a small declarative schedule of fault and heal
// actions played against an engine. Scenarios are data — build one with
// At/Every, then Play it; the engine schedules every step through
// substrate.Env.After, so the same scenario runs in virtual time on
// netsim (deterministically, including the actions' interleaving with
// traffic) and on real timers on rtnet.
//
//	sc := chaos.NewScenario().
//		At(2*time.Second, chaos.Loss("uplink", 0.2)).
//		At(5*time.Second, chaos.Partition("uplink")).
//		At(8*time.Second, chaos.Heal()).
//		Every(10*time.Second, 60*time.Second, chaos.Flap("lan", time.Second))
//	engine.Play(sc)
package chaos

import (
	"fmt"
	"time"
)

// Action is one scheduled intervention. Actions are built by the
// package-level constructors below and applied by Engine.Apply or a
// scenario step.
type Action struct {
	// Desc names the action for logs and failure messages.
	Desc string
	run  func(e *Engine)
}

// Apply runs a single action immediately (tests and ad-hoc drills; for
// schedules use a Scenario).
func (e *Engine) Apply(a Action) { a.run(e) }

// Down cuts a link until Up.
func Down(link string) Action {
	return Action{Desc: "down " + link, run: func(e *Engine) { e.link(link).Down() }}
}

// Up restores a downed link.
func Up(link string) Action {
	return Action{Desc: "up " + link, run: func(e *Engine) { e.link(link).Up() }}
}

// Flap cuts a link and schedules its restoration downFor later — one
// flap; combine with Scenario.Every for periodic flapping.
func Flap(link string, downFor time.Duration) Action {
	return Action{Desc: fmt.Sprintf("flap %s for %s", link, downFor), run: func(e *Engine) {
		l := e.link(link)
		l.Down()
		e.env.After(downFor, l.Up)
	}}
}

// Partition cuts a set of links at once.
func Partition(links ...string) Action {
	return Action{Desc: fmt.Sprintf("partition %v", links), run: func(e *Engine) {
		e.PartitionLinks(links...)
	}}
}

// Heal restores the named links — all wired links when called with no
// names.
func Heal(links ...string) Action {
	desc := "heal all"
	if len(links) > 0 {
		desc = fmt.Sprintf("heal %v", links)
	}
	return Action{Desc: desc, run: func(e *Engine) { e.HealLinks(links...) }}
}

// Loss sets a link's per-packet drop probability.
func Loss(link string, p float64) Action {
	return Action{Desc: fmt.Sprintf("loss %s %.2f", link, p), run: func(e *Engine) {
		e.link(link).SetLoss(p)
	}}
}

// Corrupt sets a link's per-packet bit-flip probability.
func Corrupt(link string, p float64) Action {
	return Action{Desc: fmt.Sprintf("corrupt %s %.2f", link, p), run: func(e *Engine) {
		e.link(link).SetCorrupt(p)
	}}
}

// Duplicate sets a link's per-packet duplication probability.
func Duplicate(link string, p float64) Action {
	return Action{Desc: fmt.Sprintf("duplicate %s %.2f", link, p), run: func(e *Engine) {
		e.link(link).SetDup(p)
	}}
}

// Delay adds fixed latency to every packet on a link.
func Delay(link string, d time.Duration) Action {
	return Action{Desc: fmt.Sprintf("delay %s %s", link, d), run: func(e *Engine) {
		e.link(link).SetDelay(d)
	}}
}

// Jitter adds uniform [0, d) latency per packet on a link — the
// reordering primitive.
func Jitter(link string, d time.Duration) Action {
	return Action{Desc: fmt.Sprintf("jitter %s %s", link, d), run: func(e *Engine) {
		e.link(link).SetJitter(d)
	}}
}

// Clear resets every fault on a link.
func Clear(link string) Action {
	return Action{Desc: "clear " + link, run: func(e *Engine) { e.link(link).Clear() }}
}

// Crash takes a node down with ASP state loss.
func Crash(node string) Action {
	return Action{Desc: "crash " + node, run: func(e *Engine) { e.node(node).Crash() }}
}

// Restart brings a crashed node back up, bare.
func Restart(node string) Action {
	return Action{Desc: "restart " + node, run: func(e *Engine) { e.node(node).Restart() }}
}

// Call runs arbitrary code on the timeline (drive a fleet redeploy,
// flip application state). fn runs on the environment's timer context:
// the event loop on netsim, a timer goroutine on rtnet.
func Call(desc string, fn func()) Action {
	return Action{Desc: desc, run: func(*Engine) { fn() }}
}

// ---------------------------------------------------------------------------
// Scenario

// step is one scheduled action.
type step struct {
	at     time.Duration
	action Action
}

// Scenario is a declarative fault schedule. The zero value is empty;
// build with At/Every (both return the scenario for chaining).
type Scenario struct {
	steps []step
}

// NewScenario returns an empty scenario.
func NewScenario() *Scenario { return &Scenario{} }

// At schedules actions at offset t from Play time. Actions at equal
// times run in the order they were added.
func (s *Scenario) At(t time.Duration, actions ...Action) *Scenario {
	for _, a := range actions {
		s.steps = append(s.steps, step{at: t, action: a})
	}
	return s
}

// Every schedules a at period, 2*period, ... up to and including until
// — the periodic form (Every(10s, 60s, Flap("lan", 1s)) flaps six
// times). The expansion happens at build time, so the schedule is plain
// data and replays identically.
func (s *Scenario) Every(period, until time.Duration, a Action) *Scenario {
	if period <= 0 {
		panic("chaos: Every period must be positive")
	}
	for t := period; t <= until; t += period {
		s.steps = append(s.steps, step{at: t, action: a})
	}
	return s
}

// Steps returns the number of scheduled steps.
func (s *Scenario) Steps() int { return len(s.steps) }

// Play schedules every step through the environment's timer, offsets
// relative to now. It returns immediately; on netsim the actions fire
// as the simulation runs, on rtnet as wall-clock time passes.
func (e *Engine) Play(s *Scenario) {
	for _, st := range s.steps {
		action := st.action
		e.env.After(st.at, func() { action.run(e) })
	}
}
