// The scenario timeline: a small declarative schedule of fault and heal
// actions played against an engine. Scenarios are data — build one with
// At/Every, then Play it; the engine schedules every step through
// substrate.Env.After, so the same scenario runs in virtual time on
// netsim (deterministically, including the actions' interleaving with
// traffic) and on real timers on rtnet.
//
//	sc := chaos.NewScenario().
//		At(2*time.Second, chaos.Loss("uplink", 0.2)).
//		At(5*time.Second, chaos.Partition("uplink")).
//		At(8*time.Second, chaos.Heal()).
//		Every(10*time.Second, 60*time.Second, chaos.Flap("lan", time.Second))
//	engine.Play(sc)
package chaos

import (
	"fmt"
	"sync"
	"time"
)

// Action is one scheduled intervention. Actions are built by the
// package-level constructors below and applied by Engine.Apply or a
// scenario step.
type Action struct {
	// Desc names the action for logs and failure messages.
	Desc string
	run  func(e *Engine)
}

// Apply runs a single action immediately (tests and ad-hoc drills; for
// schedules use a Scenario).
func (e *Engine) Apply(a Action) { a.run(e) }

// Down cuts a link until Up.
func Down(link string) Action {
	return Action{Desc: "down " + link, run: func(e *Engine) { e.link(link).Down() }}
}

// Up restores a downed link.
func Up(link string) Action {
	return Action{Desc: "up " + link, run: func(e *Engine) { e.link(link).Up() }}
}

// Flap cuts a link and schedules its restoration downFor later — one
// flap; combine with Scenario.Every for periodic flapping.
func Flap(link string, downFor time.Duration) Action {
	return Action{Desc: fmt.Sprintf("flap %s for %s", link, downFor), run: func(e *Engine) {
		l := e.link(link)
		l.Down()
		e.env.After(downFor, l.Up)
	}}
}

// Partition cuts a set of links at once.
func Partition(links ...string) Action {
	return Action{Desc: fmt.Sprintf("partition %v", links), run: func(e *Engine) {
		e.PartitionLinks(links...)
	}}
}

// Heal restores the named links — all wired links when called with no
// names.
func Heal(links ...string) Action {
	desc := "heal all"
	if len(links) > 0 {
		desc = fmt.Sprintf("heal %v", links)
	}
	return Action{Desc: desc, run: func(e *Engine) { e.HealLinks(links...) }}
}

// Loss sets a link's per-packet drop probability.
func Loss(link string, p float64) Action {
	return Action{Desc: fmt.Sprintf("loss %s %.2f", link, p), run: func(e *Engine) {
		e.link(link).SetLoss(p)
	}}
}

// Corrupt sets a link's per-packet bit-flip probability.
func Corrupt(link string, p float64) Action {
	return Action{Desc: fmt.Sprintf("corrupt %s %.2f", link, p), run: func(e *Engine) {
		e.link(link).SetCorrupt(p)
	}}
}

// Duplicate sets a link's per-packet duplication probability.
func Duplicate(link string, p float64) Action {
	return Action{Desc: fmt.Sprintf("duplicate %s %.2f", link, p), run: func(e *Engine) {
		e.link(link).SetDup(p)
	}}
}

// Delay adds fixed latency to every packet on a link.
func Delay(link string, d time.Duration) Action {
	return Action{Desc: fmt.Sprintf("delay %s %s", link, d), run: func(e *Engine) {
		e.link(link).SetDelay(d)
	}}
}

// Jitter adds uniform [0, d) latency per packet on a link — the
// reordering primitive.
func Jitter(link string, d time.Duration) Action {
	return Action{Desc: fmt.Sprintf("jitter %s %s", link, d), run: func(e *Engine) {
		e.link(link).SetJitter(d)
	}}
}

// Clear resets every fault on a link.
func Clear(link string) Action {
	return Action{Desc: "clear " + link, run: func(e *Engine) { e.link(link).Clear() }}
}

// ---------------------------------------------------------------------------
// Per-direction actions (links wired with WireDuplex; dir is "fwd" or
// "rev", "" for the whole link)

func dirDesc(verb, link, dir string) string {
	if dir == "" {
		return verb + " " + link
	}
	return verb + " " + link + ":" + dir
}

// DownDir cuts one direction of a duplex link — the half-broken-link
// fault; the opposite direction still carries traffic.
func DownDir(link, dir string) Action {
	return Action{Desc: dirDesc("down", link, dir), run: func(e *Engine) {
		e.surface(link, dir).Down()
	}}
}

// UpDir restores one direction of a duplex link.
func UpDir(link, dir string) Action {
	return Action{Desc: dirDesc("up", link, dir), run: func(e *Engine) {
		e.surface(link, dir).Up()
	}}
}

// LossDir sets one direction's per-packet drop probability — the
// asymmetric-loss fault (requests arrive, responses drown).
func LossDir(link, dir string, p float64) Action {
	return Action{Desc: fmt.Sprintf("%s %.2f", dirDesc("loss", link, dir), p), run: func(e *Engine) {
		e.surface(link, dir).SetLoss(p)
	}}
}

// CorruptDir sets one direction's per-packet bit-flip probability.
func CorruptDir(link, dir string, p float64) Action {
	return Action{Desc: fmt.Sprintf("%s %.2f", dirDesc("corrupt", link, dir), p), run: func(e *Engine) {
		e.surface(link, dir).SetCorrupt(p)
	}}
}

// DuplicateDir sets one direction's per-packet duplication probability.
func DuplicateDir(link, dir string, p float64) Action {
	return Action{Desc: fmt.Sprintf("%s %.2f", dirDesc("duplicate", link, dir), p), run: func(e *Engine) {
		e.surface(link, dir).SetDup(p)
	}}
}

// DelayDir adds fixed latency to one direction of a duplex link.
func DelayDir(link, dir string, d time.Duration) Action {
	return Action{Desc: fmt.Sprintf("%s %s", dirDesc("delay", link, dir), d), run: func(e *Engine) {
		e.surface(link, dir).SetDelay(d)
	}}
}

// JitterDir adds reordering jitter to one direction of a duplex link.
func JitterDir(link, dir string, d time.Duration) Action {
	return Action{Desc: fmt.Sprintf("%s %s", dirDesc("jitter", link, dir), d), run: func(e *Engine) {
		e.surface(link, dir).SetJitter(d)
	}}
}

// ClearDir resets every fault on one direction of a duplex link.
func ClearDir(link, dir string) Action {
	return Action{Desc: dirDesc("clear", link, dir), run: func(e *Engine) {
		e.surface(link, dir).Clear()
	}}
}

// ClockSkew shifts a node's host clock by d (0 heals) — rtnet only;
// see NodeHandle.SetClockSkew.
func ClockSkew(node string, d time.Duration) Action {
	return Action{Desc: fmt.Sprintf("clockskew %s %s", node, d), run: func(e *Engine) {
		e.node(node).SetClockSkew(d)
	}}
}

// Crash takes a node down with ASP state loss.
func Crash(node string) Action {
	return Action{Desc: "crash " + node, run: func(e *Engine) { e.node(node).Crash() }}
}

// Restart brings a crashed node back up, bare.
func Restart(node string) Action {
	return Action{Desc: "restart " + node, run: func(e *Engine) { e.node(node).Restart() }}
}

// Call runs arbitrary code on the timeline (drive a fleet redeploy,
// flip application state). fn runs on the environment's timer context:
// the event loop on netsim, a timer goroutine on rtnet.
func Call(desc string, fn func()) Action {
	return Action{Desc: desc, run: func(*Engine) { fn() }}
}

// ---------------------------------------------------------------------------
// Scenario

// step is one scheduled action.
type step struct {
	at     time.Duration
	action Action
}

// Scenario is a declarative fault schedule. The zero value is empty;
// build with At/Every (both return the scenario for chaining).
type Scenario struct {
	steps []step
}

// NewScenario returns an empty scenario.
func NewScenario() *Scenario { return &Scenario{} }

// At schedules actions at offset t from Play time. Actions at equal
// times run in the order they were added.
func (s *Scenario) At(t time.Duration, actions ...Action) *Scenario {
	for _, a := range actions {
		s.steps = append(s.steps, step{at: t, action: a})
	}
	return s
}

// Every schedules a at period, 2*period, ... up to and including until
// — the periodic form (Every(10s, 60s, Flap("lan", 1s)) flaps six
// times). The expansion happens at build time, so the schedule is plain
// data and replays identically.
func (s *Scenario) Every(period, until time.Duration, a Action) *Scenario {
	if period <= 0 {
		panic("chaos: Every period must be positive")
	}
	for t := period; t <= until; t += period {
		s.steps = append(s.steps, step{at: t, action: a})
	}
	return s
}

// Steps returns the number of scheduled steps.
func (s *Scenario) Steps() int { return len(s.steps) }

// Play schedules every step through the environment's timer, offsets
// relative to now. It returns immediately; on netsim the actions fire
// as the simulation runs, on rtnet as wall-clock time passes.
func (e *Engine) Play(s *Scenario) { e.PlayRun(s) }

// PlayRun is Play returning a handle: the run tracks how many steps
// have fired and can be stopped, suppressing every step that has not —
// the remote /chaos control plane's stop semantics. Faults already
// injected are NOT reverted by Stop (pair with Engine.ClearAll for a
// full heal).
func (e *Engine) PlayRun(s *Scenario) *Run {
	r := &Run{total: len(s.steps)}
	for _, st := range s.steps {
		action := st.action
		e.env.After(st.at, func() {
			r.mu.Lock()
			if r.stopped {
				r.mu.Unlock()
				return
			}
			r.fired++
			r.mu.Unlock()
			action.run(e)
		})
	}
	return r
}

// Run is one playing scenario: a countdown of pending steps with a
// stop switch.
type Run struct {
	total int

	mu      sync.Mutex
	fired   int
	stopped bool
}

// Stop suppresses every step that has not fired yet. Idempotent; steps
// already applied stay applied.
func (r *Run) Stop() {
	r.mu.Lock()
	r.stopped = true
	r.mu.Unlock()
}

// Status reports how many steps have fired, the total scheduled, and
// whether the run was stopped.
func (r *Run) Status() (fired, total int, stopped bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.fired, r.total, r.stopped
}

// Done reports whether the run will fire no further steps — every step
// ran or the run was stopped.
func (r *Run) Done() bool {
	fired, total, stopped := r.Status()
	return stopped || fired == total
}
