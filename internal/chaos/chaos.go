// Package chaos is the deterministic fault-injection and scenario
// engine for both substrate backends. It degrades a running network —
// packet loss, corruption, duplication, reordering jitter, fixed
// latency, link down/up/flap, partitions, asymmetric (per-direction)
// faults, node crash/restart, clock skew — through the backend-neutral
// hooks internal/substrate defines (substrate.FaultPort,
// substrate.Crasher, substrate.ClockSkewer), so the same scenario runs
// unchanged on internal/netsim and internal/rtnet.
//
// # Determinism
//
// Every per-packet decision draws from one seeded RNG owned by the
// Engine. On netsim the event loop is single-threaded and packet order
// is reproducible, so a fixed seed replays the exact same faults on the
// exact same packets — chaos experiments are byte-identical across
// runs, like every other netsim experiment. On rtnet the same engine
// runs race-clean (the RNG is mutex-guarded) but concurrent senders
// interleave nondeterministically, so runs are statistically similar,
// not identical — the backend's own contract.
//
// # Time
//
// Scenario timelines execute through substrate.Env.After: virtual time
// on netsim (a 10-minute scenario replays in milliseconds), wall-clock
// timers on rtnet.
//
// # Observability
//
// State transitions publish obs.KindFault / obs.KindHeal events
// (Node is the link or node name, Detail says what changed), and the
// engine counts its interventions in the environment's registry under
// chaos.* — so experiments can correlate injected faults with
// bandwidth gaps and recovery.
package chaos

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"planp.dev/planp/internal/obs"
	"planp.dev/planp/internal/substrate"
)

// Engine owns the fault state for one substrate environment: the seeded
// RNG, the wired links, the adopted nodes, and the chaos.* counters.
// All mutation goes through the engine's mutex, so scenario actions may
// fire from rtnet timer goroutines while node goroutines transmit.
type Engine struct {
	env substrate.Env

	mu    sync.Mutex
	rng   *rand.Rand
	links map[string]*Link
	nodes map[string]*NodeHandle

	ct counters
}

// counters are the engine's registry-backed instruments, resolved once.
type counters struct {
	drops, corrupted, duplicated, delayed *obs.Counter
	linkDown, linkUp                      *obs.Counter
	crashes, restarts, skews              *obs.Counter
}

// New returns an engine for env whose every random decision flows from
// seed. Use a fresh engine (and a fresh seed) per experiment cell.
func New(env substrate.Env, seed int64) *Engine {
	reg := env.Metrics()
	return &Engine{
		env:   env,
		rng:   rand.New(rand.NewSource(seed)),
		links: map[string]*Link{},
		nodes: map[string]*NodeHandle{},
		ct: counters{
			drops:      reg.Counter("chaos.fault_drops"),
			corrupted:  reg.Counter("chaos.corrupted_pkts"),
			duplicated: reg.Counter("chaos.duplicated_pkts"),
			delayed:    reg.Counter("chaos.delayed_pkts"),
			linkDown:   reg.Counter("chaos.link_down"),
			linkUp:     reg.Counter("chaos.link_up"),
			crashes:    reg.Counter("chaos.node_crashes"),
			restarts:   reg.Counter("chaos.node_restarts"),
			skews:      reg.Counter("chaos.clock_skews"),
		},
	}
}

// emit publishes one chaos state-transition event. Called outside the
// engine mutex (subscribers are arbitrary code).
func (e *Engine) emit(kind obs.Kind, name, detail string) {
	if bus := e.env.Events(); bus.Active() {
		bus.Publish(obs.Event{Kind: kind, At: e.env.Now(), Node: name, Detail: detail})
	}
}

// ---------------------------------------------------------------------------
// Links

// Directions of a duplex link (WireDuplex). For a link named "a-b",
// DirFwd is a→b and DirRev is b→a.
const (
	DirFwd = 0
	DirRev = 1
)

// dirFaults is the fault state of one direction of a link.
type dirFaults struct {
	down    bool
	loss    float64       // P(drop) per packet
	corrupt float64       // P(one payload bit flips) per packet
	dup     float64       // P(one extra copy) per packet
	delay   time.Duration // fixed extra latency per packet
	jitter  time.Duration // uniform [0, jitter) extra latency — reorders
}

// Link is the engine's handle on one faultable link: a named set of
// fault ports sharing the link's fault state. A link wired with Wire
// is symmetric — both directions degrade together, which is what cable
// damage and congested paths look like. A link wired with WireDuplex
// keeps per-direction state: the whole-link methods below still apply
// to both directions at once, and Fwd/Rev address one direction — the
// asymmetric-fault grain (a path congested one way, a half-broken
// transceiver, a cross-host link whose far half lives in another
// process).
type Link struct {
	e      *Engine
	name   string
	duplex bool
	ports  [2][]substrate.FaultPort

	// Per-direction fault state, guarded by e.mu. Symmetric links use
	// only state[DirFwd]; the whole-link setters write both so a link
	// upgraded to duplex behaves identically.
	state [2]dirFaults
}

// Wire attaches the engine to a named link: every given port consults
// (and shares) the link's fault state on each transmission — symmetric
// faults. Pass a duplex link's two directional interfaces; for
// independent per-direction state use WireDuplex. Panics on a
// duplicate name — scenarios address links by name, so collisions are
// author errors.
func (e *Engine) Wire(name string, ports ...substrate.FaultPort) *Link {
	if len(ports) == 0 {
		panic("chaos: Wire needs at least one port")
	}
	l := &Link{e: e, name: name}
	l.ports[DirFwd] = ports
	e.addLink(l)
	for _, p := range ports {
		p.SetFault(func(pkt *substrate.Packet) substrate.FaultAction {
			return l.fault(DirFwd, pkt)
		})
	}
	return l
}

// WireDuplex attaches the engine to a named link with independent
// per-direction fault state: fwd ports carry the a→b direction of a
// link named "a-b", rev ports b→a. Either side may be empty when only
// one direction is locally owned — the cross-host case, where each
// daemon wires its outbound half and the peer daemon wires the other.
func (e *Engine) WireDuplex(name string, fwd, rev []substrate.FaultPort) *Link {
	if len(fwd)+len(rev) == 0 {
		panic("chaos: WireDuplex needs at least one port")
	}
	l := &Link{e: e, name: name, duplex: true}
	l.ports[DirFwd], l.ports[DirRev] = fwd, rev
	e.addLink(l)
	for dir, ports := range l.ports {
		dir := dir
		for _, p := range ports {
			p.SetFault(func(pkt *substrate.Packet) substrate.FaultAction {
				return l.fault(dir, pkt)
			})
		}
	}
	return l
}

func (e *Engine) addLink(l *Link) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.links[l.name] != nil {
		panic(fmt.Sprintf("chaos: link %q wired twice", l.name))
	}
	e.links[l.name] = l
}

// link resolves a wired link by name; scenarios that reference unknown
// links fail fast.
func (e *Engine) link(name string) *Link {
	l, ok := e.LookupLink(name)
	if !ok {
		panic(fmt.Sprintf("chaos: no link wired as %q", name))
	}
	return l
}

// LookupLink resolves a wired link by name without panicking — the
// control-plane (remote /chaos API) validation path.
func (e *Engine) LookupLink(name string) (*Link, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	l := e.links[name]
	return l, l != nil
}

// LinkNames returns the names of every wired link (sorted by map
// iteration — callers sort if they care).
func (e *Engine) LinkNames() []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]string, 0, len(e.links))
	for name := range e.links {
		out = append(out, name)
	}
	return out
}

// node resolves an adopted node by name.
func (e *Engine) node(name string) *NodeHandle {
	h, ok := e.LookupNode(name)
	if !ok {
		panic(fmt.Sprintf("chaos: no node adopted as %q", name))
	}
	return h
}

// LookupNode resolves an adopted node by name without panicking.
func (e *Engine) LookupNode(name string) (*NodeHandle, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	h := e.nodes[name]
	return h, h != nil
}

// NodeNames returns the names of every adopted node.
func (e *Engine) NodeNames() []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]string, 0, len(e.nodes))
	for name := range e.nodes {
		out = append(out, name)
	}
	return out
}

// fault is the substrate.FaultFunc every wired port runs: one verdict
// per transmission, every random draw from the engine's seeded RNG.
func (l *Link) fault(dir int, _ *substrate.Packet) substrate.FaultAction {
	e := l.e
	e.mu.Lock()
	defer e.mu.Unlock()
	st := &l.state[dir]
	var act substrate.FaultAction
	if st.down {
		e.ct.drops.Inc()
		act.Drop = true
		return act
	}
	if st.loss > 0 && e.rng.Float64() < st.loss {
		e.ct.drops.Inc()
		act.Drop = true
		return act
	}
	if st.corrupt > 0 && e.rng.Float64() < st.corrupt {
		act.Corrupt = true
		act.CorruptBit = int(e.rng.Int63n(1 << 30))
		e.ct.corrupted.Inc()
	}
	if st.dup > 0 && e.rng.Float64() < st.dup {
		act.Dup = 1
		e.ct.duplicated.Inc()
	}
	act.Delay = st.delay
	if st.jitter > 0 {
		// Uniform extra latency: packets drawn different jitter values
		// overtake each other — this is the reordering primitive.
		act.Delay += time.Duration(e.rng.Int63n(int64(st.jitter)))
	}
	if act.Delay > 0 {
		e.ct.delayed.Inc()
	}
	return act
}

// Name returns the link's scenario name.
func (l *Link) Name() string { return l.name }

// Duplex reports whether the link was wired with per-direction state.
func (l *Link) Duplex() bool { return l.duplex }

// Fwd returns the handle on the link's forward (a→b) direction.
// Panics unless the link was wired with WireDuplex — a symmetric link
// has no directions to address.
func (l *Link) Fwd() *LinkDir { return l.dirHandle(DirFwd) }

// Rev returns the handle on the link's reverse (b→a) direction.
func (l *Link) Rev() *LinkDir { return l.dirHandle(DirRev) }

func (l *Link) dirHandle(dir int) *LinkDir {
	if !l.duplex {
		panic(fmt.Sprintf("chaos: link %q is symmetric (use WireDuplex for per-direction faults)", l.name))
	}
	return &LinkDir{l: l, dir: dir}
}

// eachDir applies fn to every direction's state under the engine lock.
func (l *Link) eachDir(fn func(st *dirFaults)) {
	l.e.mu.Lock()
	fn(&l.state[DirFwd])
	fn(&l.state[DirRev])
	l.e.mu.Unlock()
}

// Down cuts the link — both directions: every transmission drops until
// Up. Idempotent; only the transition emits KindFault and counts.
func (l *Link) Down() {
	var was bool
	l.eachDir(func(st *dirFaults) { was = was || st.down; st.down = true })
	if !was {
		l.e.ct.linkDown.Inc()
		l.e.emit(obs.KindFault, l.name, "link-down")
	}
}

// Up restores a downed link (both directions). Idempotent.
func (l *Link) Up() {
	var was bool
	l.eachDir(func(st *dirFaults) { was = was || st.down; st.down = false })
	if was {
		l.e.ct.linkUp.Inc()
		l.e.emit(obs.KindHeal, l.name, "link-up")
	}
}

// IsDown reports whether any direction of the link is cut.
func (l *Link) IsDown() bool {
	l.e.mu.Lock()
	defer l.e.mu.Unlock()
	return l.state[DirFwd].down || l.state[DirRev].down
}

// SetLoss sets the per-packet drop probability (both directions).
func (l *Link) SetLoss(p float64) {
	l.eachDir(func(st *dirFaults) { st.loss = p })
	l.e.emit(obs.KindFault, l.name, fmt.Sprintf("loss=%.2f", p))
}

// SetCorrupt sets the per-packet probability of flipping one payload
// bit (both directions).
func (l *Link) SetCorrupt(p float64) {
	l.eachDir(func(st *dirFaults) { st.corrupt = p })
	l.e.emit(obs.KindFault, l.name, fmt.Sprintf("corrupt=%.2f", p))
}

// SetDup sets the per-packet probability of transmitting one extra
// copy (both directions).
func (l *Link) SetDup(p float64) {
	l.eachDir(func(st *dirFaults) { st.dup = p })
	l.e.emit(obs.KindFault, l.name, fmt.Sprintf("dup=%.2f", p))
}

// SetDelay sets the fixed extra latency added to every packet (both
// directions).
func (l *Link) SetDelay(d time.Duration) {
	l.eachDir(func(st *dirFaults) { st.delay = d })
	l.e.emit(obs.KindFault, l.name, fmt.Sprintf("delay=%s", d))
}

// SetJitter sets the bound of the uniform [0, d) extra latency drawn
// per packet — the reordering primitive (both directions).
func (l *Link) SetJitter(d time.Duration) {
	l.eachDir(func(st *dirFaults) { st.jitter = d })
	l.e.emit(obs.KindFault, l.name, fmt.Sprintf("jitter=%s", d))
}

// Clear resets every fault on the link (including down, in both
// directions) and emits KindHeal.
func (l *Link) Clear() {
	l.eachDir(func(st *dirFaults) { *st = dirFaults{} })
	l.e.emit(obs.KindHeal, l.name, "clear")
}

// LinkDir is the handle on one direction of a duplex-wired link — the
// asymmetric-fault surface. It mirrors Link's fault setters, scoped to
// its direction; events carry a ":fwd"/":rev" suffix.
type LinkDir struct {
	l   *Link
	dir int
}

// Name returns the direction's scenario name ("<link>:fwd").
func (d *LinkDir) Name() string { return d.l.name + ":" + d.label() }

func (d *LinkDir) label() string {
	if d.dir == DirFwd {
		return "fwd"
	}
	return "rev"
}

func (d *LinkDir) set(fn func(st *dirFaults), kind obs.Kind, detail string) {
	d.l.e.mu.Lock()
	fn(&d.l.state[d.dir])
	d.l.e.mu.Unlock()
	d.l.e.emit(kind, d.l.name, detail+":"+d.label())
}

// Down cuts this direction only; the opposite direction still carries
// traffic — the half-broken-link fault.
func (d *LinkDir) Down() {
	var was bool
	d.l.e.mu.Lock()
	st := &d.l.state[d.dir]
	was, st.down = st.down, true
	d.l.e.mu.Unlock()
	if !was {
		d.l.e.ct.linkDown.Inc()
		d.l.e.emit(obs.KindFault, d.l.name, "link-down:"+d.label())
	}
}

// Up restores this direction. Idempotent.
func (d *LinkDir) Up() {
	var was bool
	d.l.e.mu.Lock()
	st := &d.l.state[d.dir]
	was, st.down = st.down, false
	d.l.e.mu.Unlock()
	if was {
		d.l.e.ct.linkUp.Inc()
		d.l.e.emit(obs.KindHeal, d.l.name, "link-up:"+d.label())
	}
}

// IsDown reports whether this direction is cut.
func (d *LinkDir) IsDown() bool {
	d.l.e.mu.Lock()
	defer d.l.e.mu.Unlock()
	return d.l.state[d.dir].down
}

// SetLoss sets this direction's per-packet drop probability.
func (d *LinkDir) SetLoss(p float64) {
	d.set(func(st *dirFaults) { st.loss = p }, obs.KindFault, fmt.Sprintf("loss=%.2f", p))
}

// SetCorrupt sets this direction's per-packet bit-flip probability.
func (d *LinkDir) SetCorrupt(p float64) {
	d.set(func(st *dirFaults) { st.corrupt = p }, obs.KindFault, fmt.Sprintf("corrupt=%.2f", p))
}

// SetDup sets this direction's per-packet duplication probability.
func (d *LinkDir) SetDup(p float64) {
	d.set(func(st *dirFaults) { st.dup = p }, obs.KindFault, fmt.Sprintf("dup=%.2f", p))
}

// SetDelay sets this direction's fixed extra latency.
func (d *LinkDir) SetDelay(dur time.Duration) {
	d.set(func(st *dirFaults) { st.delay = dur }, obs.KindFault, fmt.Sprintf("delay=%s", dur))
}

// SetJitter sets this direction's reordering jitter bound.
func (d *LinkDir) SetJitter(dur time.Duration) {
	d.set(func(st *dirFaults) { st.jitter = dur }, obs.KindFault, fmt.Sprintf("jitter=%s", dur))
}

// Clear resets every fault on this direction.
func (d *LinkDir) Clear() {
	d.set(func(st *dirFaults) { *st = dirFaults{} }, obs.KindHeal, "clear")
}

// faultSurface is the setter surface shared by a whole link and one
// direction of it — what scenario actions and the timeline codec
// address.
type faultSurface interface {
	Down()
	Up()
	SetLoss(p float64)
	SetCorrupt(p float64)
	SetDup(p float64)
	SetDelay(d time.Duration)
	SetJitter(d time.Duration)
	Clear()
}

var (
	_ faultSurface = (*Link)(nil)
	_ faultSurface = (*LinkDir)(nil)
)

// surface resolves a link (dir == "") or one direction of it (dir
// "fwd"/"rev") to its fault surface. Panics on unknown links, unknown
// directions, and directions of symmetric links — the fail-fast
// scenario contract; the timeline codec validates first.
func (e *Engine) surface(link, dir string) faultSurface {
	l := e.link(link)
	switch dir {
	case "":
		return l
	case "fwd":
		return l.Fwd()
	case "rev":
		return l.Rev()
	default:
		panic(fmt.Sprintf("chaos: link direction %q (want \"fwd\", \"rev\", or empty)", dir))
	}
}

// PartitionLinks cuts the named set of links at once — the partition
// primitive (a partition IS a set of downed links).
func (e *Engine) PartitionLinks(names ...string) {
	for _, name := range names {
		e.link(name).Down()
	}
}

// HealLinks restores the named links, or every wired link when called
// with no names.
func (e *Engine) HealLinks(names ...string) {
	if len(names) == 0 {
		names = e.LinkNames()
	}
	for _, name := range names {
		e.link(name).Up()
	}
}

// ClearAll resets every fault the engine has injected: all link state
// (both directions), and clock skew on every adopted node that
// supports it. Crashed nodes stay crashed — recovering a node is a
// deliberate Restart, not a side effect of stopping a timeline.
func (e *Engine) ClearAll() {
	for _, name := range e.LinkNames() {
		e.link(name).Clear()
	}
	for _, name := range e.NodeNames() {
		if h := e.node(name); h.CanSkew() && h.sk.ClockSkew() != 0 {
			h.SetClockSkew(0)
		}
	}
}

// ---------------------------------------------------------------------------
// Nodes

// NodeHandle is the engine's handle on one crashable (and possibly
// clock-skewable) node.
type NodeHandle struct {
	e    *Engine
	name string
	cr   substrate.Crasher
	sk   substrate.ClockSkewer // nil when the backend can't skew
}

// Adopt registers a node for crash/restart (and, where the backend
// supports it, clock-skew) scenarios. The node must implement
// substrate.Crasher (both backends do); substrate.ClockSkewer is
// optional (rtnet only). Panics on a duplicate name.
func (e *Engine) Adopt(n substrate.Node) *NodeHandle {
	cr, ok := n.(substrate.Crasher)
	if !ok {
		panic(fmt.Sprintf("chaos: node %q does not support crash/restart", n.Hostname()))
	}
	sk, _ := n.(substrate.ClockSkewer)
	h := &NodeHandle{e: e, name: n.Hostname(), cr: cr, sk: sk}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.nodes[h.name] != nil {
		panic(fmt.Sprintf("chaos: node %q adopted twice", h.name))
	}
	e.nodes[h.name] = h
	return h
}

// Name returns the node's scenario name (its hostname).
func (h *NodeHandle) Name() string { return h.name }

// Crash takes the node down: traffic through it blackholes and its
// installed PLAN-P processor is gone (see substrate.Crasher).
func (h *NodeHandle) Crash() {
	h.cr.Crash()
	h.e.ct.crashes.Inc()
	h.e.emit(obs.KindFault, h.name, "crash")
}

// Restart brings the node back up, bare — reinstalling the protocol is
// the fleet's job, which is exactly what the crash-redeploy scenarios
// exercise.
func (h *NodeHandle) Restart() {
	h.cr.Restart()
	h.e.ct.restarts.Inc()
	h.e.emit(obs.KindHeal, h.name, "restart")
}

// CanSkew reports whether the node's backend supports clock skew
// (substrate.ClockSkewer — rtnet yes, netsim no).
func (h *NodeHandle) CanSkew() bool { return h.sk != nil }

// SetClockSkew shifts the node's host clock by d — observations drift,
// timers do not (see substrate.ClockSkewer). d = 0 heals. Panics on
// backends without clock-skew support; scenarios targeting netsim must
// not schedule skew, and the timeline codec rejects them up front.
func (h *NodeHandle) SetClockSkew(d time.Duration) {
	if h.sk == nil {
		panic(fmt.Sprintf("chaos: node %q does not support clock skew (rtnet only)", h.name))
	}
	h.sk.SetClockSkew(d)
	h.e.ct.skews.Inc()
	if d == 0 {
		h.e.emit(obs.KindHeal, h.name, "clockskew=0s")
	} else {
		h.e.emit(obs.KindFault, h.name, fmt.Sprintf("clockskew=%s", d))
	}
}

// ---------------------------------------------------------------------------
// Helpers

// FaultPorts returns the node's interfaces that support fault
// injection — a convenience for wiring every attachment of a node
// ("cut this host off") without naming each interface.
func FaultPorts(n substrate.Node) []substrate.FaultPort {
	var out []substrate.FaultPort
	for _, ifc := range n.Interfaces() {
		if p, ok := ifc.(substrate.FaultPort); ok {
			out = append(out, p)
		}
	}
	return out
}
