// Package chaos is the deterministic fault-injection and scenario
// engine for both substrate backends. It degrades a running network —
// packet loss, corruption, duplication, reordering jitter, fixed
// latency, link down/up/flap, partitions, node crash/restart — through
// the backend-neutral hooks internal/substrate defines
// (substrate.FaultPort, substrate.Crasher), so the same scenario runs
// unchanged on internal/netsim and internal/rtnet.
//
// # Determinism
//
// Every per-packet decision draws from one seeded RNG owned by the
// Engine. On netsim the event loop is single-threaded and packet order
// is reproducible, so a fixed seed replays the exact same faults on the
// exact same packets — chaos experiments are byte-identical across
// runs, like every other netsim experiment. On rtnet the same engine
// runs race-clean (the RNG is mutex-guarded) but concurrent senders
// interleave nondeterministically, so runs are statistically similar,
// not identical — the backend's own contract.
//
// # Time
//
// Scenario timelines execute through substrate.Env.After: virtual time
// on netsim (a 10-minute scenario replays in milliseconds), wall-clock
// timers on rtnet.
//
// # Observability
//
// State transitions publish obs.KindFault / obs.KindHeal events
// (Node is the link or node name, Detail says what changed), and the
// engine counts its interventions in the environment's registry under
// chaos.* — so experiments can correlate injected faults with
// bandwidth gaps and recovery.
package chaos

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"planp.dev/planp/internal/obs"
	"planp.dev/planp/internal/substrate"
)

// Engine owns the fault state for one substrate environment: the seeded
// RNG, the wired links, the adopted nodes, and the chaos.* counters.
// All mutation goes through the engine's mutex, so scenario actions may
// fire from rtnet timer goroutines while node goroutines transmit.
type Engine struct {
	env substrate.Env

	mu    sync.Mutex
	rng   *rand.Rand
	links map[string]*Link
	nodes map[string]*NodeHandle

	ct counters
}

// counters are the engine's registry-backed instruments, resolved once.
type counters struct {
	drops, corrupted, duplicated, delayed *obs.Counter
	linkDown, linkUp                      *obs.Counter
	crashes, restarts                     *obs.Counter
}

// New returns an engine for env whose every random decision flows from
// seed. Use a fresh engine (and a fresh seed) per experiment cell.
func New(env substrate.Env, seed int64) *Engine {
	reg := env.Metrics()
	return &Engine{
		env:   env,
		rng:   rand.New(rand.NewSource(seed)),
		links: map[string]*Link{},
		nodes: map[string]*NodeHandle{},
		ct: counters{
			drops:      reg.Counter("chaos.fault_drops"),
			corrupted:  reg.Counter("chaos.corrupted_pkts"),
			duplicated: reg.Counter("chaos.duplicated_pkts"),
			delayed:    reg.Counter("chaos.delayed_pkts"),
			linkDown:   reg.Counter("chaos.link_down"),
			linkUp:     reg.Counter("chaos.link_up"),
			crashes:    reg.Counter("chaos.node_crashes"),
			restarts:   reg.Counter("chaos.node_restarts"),
		},
	}
}

// emit publishes one chaos state-transition event. Called outside the
// engine mutex (subscribers are arbitrary code).
func (e *Engine) emit(kind obs.Kind, name, detail string) {
	if bus := e.env.Events(); bus.Active() {
		bus.Publish(obs.Event{Kind: kind, At: e.env.Now(), Node: name, Detail: detail})
	}
}

// ---------------------------------------------------------------------------
// Links

// Link is the engine's handle on one faultable link: a named set of
// fault ports (typically a duplex link's two directions) sharing one
// fault state. Faults are symmetric — both directions degrade together,
// which is what cable damage and congested paths look like.
type Link struct {
	e     *Engine
	name  string
	ports []substrate.FaultPort

	// Fault state, guarded by e.mu.
	down    bool
	loss    float64       // P(drop) per packet
	corrupt float64       // P(one payload bit flips) per packet
	dup     float64       // P(one extra copy) per packet
	delay   time.Duration // fixed extra latency per packet
	jitter  time.Duration // uniform [0, jitter) extra latency — reorders
}

// Wire attaches the engine to a named link: every given port consults
// (and shares) the link's fault state on each transmission. Pass a
// duplex link's two directional interfaces for symmetric faults, or a
// single direction for asymmetric ones. Panics on a duplicate name —
// scenarios address links by name, so collisions are author errors.
func (e *Engine) Wire(name string, ports ...substrate.FaultPort) *Link {
	if len(ports) == 0 {
		panic("chaos: Wire needs at least one port")
	}
	l := &Link{e: e, name: name, ports: ports}
	e.mu.Lock()
	if e.links[name] != nil {
		e.mu.Unlock()
		panic(fmt.Sprintf("chaos: link %q wired twice", name))
	}
	e.links[name] = l
	e.mu.Unlock()
	for _, p := range ports {
		p.SetFault(l.fault)
	}
	return l
}

// link resolves a wired link by name; scenarios that reference unknown
// links fail fast.
func (e *Engine) link(name string) *Link {
	e.mu.Lock()
	l := e.links[name]
	e.mu.Unlock()
	if l == nil {
		panic(fmt.Sprintf("chaos: no link wired as %q", name))
	}
	return l
}

// node resolves an adopted node by name.
func (e *Engine) node(name string) *NodeHandle {
	e.mu.Lock()
	h := e.nodes[name]
	e.mu.Unlock()
	if h == nil {
		panic(fmt.Sprintf("chaos: no node adopted as %q", name))
	}
	return h
}

// fault is the substrate.FaultFunc every wired port runs: one verdict
// per transmission, every random draw from the engine's seeded RNG.
func (l *Link) fault(*substrate.Packet) substrate.FaultAction {
	e := l.e
	e.mu.Lock()
	defer e.mu.Unlock()
	var act substrate.FaultAction
	if l.down {
		e.ct.drops.Inc()
		act.Drop = true
		return act
	}
	if l.loss > 0 && e.rng.Float64() < l.loss {
		e.ct.drops.Inc()
		act.Drop = true
		return act
	}
	if l.corrupt > 0 && e.rng.Float64() < l.corrupt {
		act.Corrupt = true
		act.CorruptBit = int(e.rng.Int63n(1 << 30))
		e.ct.corrupted.Inc()
	}
	if l.dup > 0 && e.rng.Float64() < l.dup {
		act.Dup = 1
		e.ct.duplicated.Inc()
	}
	act.Delay = l.delay
	if l.jitter > 0 {
		// Uniform extra latency: packets drawn different jitter values
		// overtake each other — this is the reordering primitive.
		act.Delay += time.Duration(e.rng.Int63n(int64(l.jitter)))
	}
	if act.Delay > 0 {
		e.ct.delayed.Inc()
	}
	return act
}

// Name returns the link's scenario name.
func (l *Link) Name() string { return l.name }

// Down cuts the link: every transmission drops until Up. Idempotent;
// only the transition emits KindFault and counts.
func (l *Link) Down() {
	l.e.mu.Lock()
	was := l.down
	l.down = true
	l.e.mu.Unlock()
	if !was {
		l.e.ct.linkDown.Inc()
		l.e.emit(obs.KindFault, l.name, "link-down")
	}
}

// Up restores a downed link. Idempotent.
func (l *Link) Up() {
	l.e.mu.Lock()
	was := l.down
	l.down = false
	l.e.mu.Unlock()
	if was {
		l.e.ct.linkUp.Inc()
		l.e.emit(obs.KindHeal, l.name, "link-up")
	}
}

// IsDown reports whether the link is cut.
func (l *Link) IsDown() bool {
	l.e.mu.Lock()
	defer l.e.mu.Unlock()
	return l.down
}

// SetLoss sets the per-packet drop probability.
func (l *Link) SetLoss(p float64) {
	l.set(func() { l.loss = p }, obs.KindFault, fmt.Sprintf("loss=%.2f", p))
}

// SetCorrupt sets the per-packet probability of flipping one payload
// bit.
func (l *Link) SetCorrupt(p float64) {
	l.set(func() { l.corrupt = p }, obs.KindFault, fmt.Sprintf("corrupt=%.2f", p))
}

// SetDup sets the per-packet probability of transmitting one extra
// copy.
func (l *Link) SetDup(p float64) {
	l.set(func() { l.dup = p }, obs.KindFault, fmt.Sprintf("dup=%.2f", p))
}

// SetDelay sets the fixed extra latency added to every packet.
func (l *Link) SetDelay(d time.Duration) {
	l.set(func() { l.delay = d }, obs.KindFault, fmt.Sprintf("delay=%s", d))
}

// SetJitter sets the bound of the uniform [0, d) extra latency drawn
// per packet — the reordering primitive.
func (l *Link) SetJitter(d time.Duration) {
	l.set(func() { l.jitter = d }, obs.KindFault, fmt.Sprintf("jitter=%s", d))
}

// Clear resets every fault on the link (including down) and emits
// KindHeal.
func (l *Link) Clear() {
	l.e.mu.Lock()
	l.down = false
	l.loss, l.corrupt, l.dup = 0, 0, 0
	l.delay, l.jitter = 0, 0
	l.e.mu.Unlock()
	l.e.emit(obs.KindHeal, l.name, "clear")
}

func (l *Link) set(apply func(), kind obs.Kind, detail string) {
	l.e.mu.Lock()
	apply()
	l.e.mu.Unlock()
	l.e.emit(kind, l.name, detail)
}

// PartitionLinks cuts the named set of links at once — the partition
// primitive (a partition IS a set of downed links).
func (e *Engine) PartitionLinks(names ...string) {
	for _, name := range names {
		e.link(name).Down()
	}
}

// HealLinks restores the named links, or every wired link when called
// with no names.
func (e *Engine) HealLinks(names ...string) {
	if len(names) == 0 {
		e.mu.Lock()
		for _, l := range e.links {
			names = append(names, l.name)
		}
		e.mu.Unlock()
	}
	for _, name := range names {
		e.link(name).Up()
	}
}

// ---------------------------------------------------------------------------
// Nodes

// NodeHandle is the engine's handle on one crashable node.
type NodeHandle struct {
	e    *Engine
	name string
	cr   substrate.Crasher
}

// Adopt registers a node for crash/restart scenarios. The node must
// implement substrate.Crasher (both backends do). Panics on a duplicate
// name.
func (e *Engine) Adopt(n substrate.Node) *NodeHandle {
	cr, ok := n.(substrate.Crasher)
	if !ok {
		panic(fmt.Sprintf("chaos: node %q does not support crash/restart", n.Hostname()))
	}
	h := &NodeHandle{e: e, name: n.Hostname(), cr: cr}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.nodes[h.name] != nil {
		panic(fmt.Sprintf("chaos: node %q adopted twice", h.name))
	}
	e.nodes[h.name] = h
	return h
}

// Name returns the node's scenario name (its hostname).
func (h *NodeHandle) Name() string { return h.name }

// Crash takes the node down: traffic through it blackholes and its
// installed PLAN-P processor is gone (see substrate.Crasher).
func (h *NodeHandle) Crash() {
	h.cr.Crash()
	h.e.ct.crashes.Inc()
	h.e.emit(obs.KindFault, h.name, "crash")
}

// Restart brings the node back up, bare — reinstalling the protocol is
// the fleet's job, which is exactly what the crash-redeploy scenarios
// exercise.
func (h *NodeHandle) Restart() {
	h.cr.Restart()
	h.e.ct.restarts.Inc()
	h.e.emit(obs.KindHeal, h.name, "restart")
}

// ---------------------------------------------------------------------------
// Helpers

// FaultPorts returns the node's interfaces that support fault
// injection — a convenience for wiring every attachment of a node
// ("cut this host off") without naming each interface.
func FaultPorts(n substrate.Node) []substrate.FaultPort {
	var out []substrate.FaultPort
	for _, ifc := range n.Interfaces() {
		if p, ok := ifc.(substrate.FaultPort); ok {
			out = append(out, p)
		}
	}
	return out
}
