package chaos_test

import (
	"testing"
	"time"

	"planp.dev/planp/internal/chaos"
	"planp.dev/planp/internal/netsim"
	"planp.dev/planp/internal/obs"
	"planp.dev/planp/internal/substrate"
)

// bed is a minimal netsim chaos testbed: a — r — b over two links, a
// chaos engine wired to both, a delivery counter at b.
type bed struct {
	sim       *netsim.Simulator
	eng       *chaos.Engine
	a, r, b   *netsim.Node
	delivered *int
}

func mkBed(t *testing.T, seed int64) *bed {
	t.Helper()
	sim := netsim.NewSimulator(seed)
	a := netsim.NewNode(sim, "a", netsim.MustAddr("10.0.0.1"))
	r := netsim.NewNode(sim, "r", netsim.MustAddr("10.0.0.254"))
	b := netsim.NewNode(sim, "b", netsim.MustAddr("10.0.1.1"))
	r.Forwarding = true
	la := netsim.Connect(sim, a, r, netsim.LinkConfig{Bandwidth: 10_000_000})
	lb := netsim.Connect(sim, r, b, netsim.LinkConfig{Bandwidth: 10_000_000})
	a.SetDefaultRoute(la.Ifaces()[0])
	r.AddRoute(a.Addr, la.Ifaces()[1])
	r.AddRoute(b.Addr, lb.Ifaces()[0])
	b.SetDefaultRoute(lb.Ifaces()[1])

	eng := chaos.New(sim, seed+1000)
	eng.Wire("uplink", la.Ifaces()[0], la.Ifaces()[1])
	eng.Wire("downlink", lb.Ifaces()[0], lb.Ifaces()[1])
	eng.Adopt(r)

	delivered := 0
	b.BindUDP(9, func(*netsim.Packet) { delivered++ })
	return &bed{sim: sim, eng: eng, a: a, r: r, b: b, delivered: &delivered}
}

// stream schedules n packets from a to b at the given spacing, starting
// at start.
func (bd *bed) stream(n int, start, spacing time.Duration) {
	for i := 0; i < n; i++ {
		bd.sim.At(start+time.Duration(i)*spacing, func() {
			bd.a.Send(netsim.NewUDP(bd.a.Addr, bd.b.Addr, 1000, 9, []byte("pkt")).Own())
		})
	}
}

func TestLossDropsSomeNotAll(t *testing.T) {
	bd := mkBed(t, 7)
	bd.eng.Apply(chaos.Loss("uplink", 0.3))
	bd.stream(200, 0, time.Millisecond)
	bd.sim.Run()

	drops := bd.sim.Metrics().Counter("chaos.fault_drops").Value()
	if drops == 0 || drops == 200 {
		t.Fatalf("loss 0.3 dropped %d of 200 — want some, not all", drops)
	}
	if got := int64(*bd.delivered) + drops; got != 200 {
		t.Errorf("delivered %d + dropped %d != 200", *bd.delivered, drops)
	}
}

func TestDeterminismSameSeed(t *testing.T) {
	run := func(seed int64) (int, int64, int64) {
		bd := mkBed(t, seed)
		bd.eng.Apply(chaos.Loss("uplink", 0.2))
		bd.eng.Apply(chaos.Jitter("downlink", 5*time.Millisecond))
		bd.eng.Apply(chaos.Duplicate("downlink", 0.1))
		bd.stream(500, 0, time.Millisecond)
		bd.sim.Run()
		reg := bd.sim.Metrics()
		return *bd.delivered,
			reg.Counter("chaos.fault_drops").Value(),
			reg.Counter("chaos.duplicated_pkts").Value()
	}
	d1, drop1, dup1 := run(42)
	d2, drop2, dup2 := run(42)
	if d1 != d2 || drop1 != drop2 || dup1 != dup2 {
		t.Errorf("same seed diverged: delivered %d/%d drops %d/%d dups %d/%d",
			d1, d2, drop1, drop2, dup1, dup2)
	}
	d3, drop3, _ := run(43)
	if d1 == d3 && drop1 == drop3 {
		t.Logf("note: seeds 42 and 43 coincided (possible but unlikely)")
	}
}

func TestScenarioPartitionAndHeal(t *testing.T) {
	bd := mkBed(t, 11)
	var faults, heals []string
	bd.sim.Events().Subscribe(obs.Func(func(ev obs.Event) {
		switch ev.Kind {
		case obs.KindFault:
			faults = append(faults, ev.Node+"/"+ev.Detail)
		case obs.KindHeal:
			heals = append(heals, ev.Node+"/"+ev.Detail)
		}
	}))

	// 300ms of traffic; the partition window is [100ms, 200ms).
	bd.stream(300, 0, time.Millisecond)
	bd.eng.Play(chaos.NewScenario().
		At(100*time.Millisecond, chaos.Partition("uplink", "downlink")).
		At(200*time.Millisecond, chaos.Heal()))
	bd.sim.Run()

	// ~100 packets fell in the window (the uplink eats them first).
	drops := bd.sim.Metrics().Counter("chaos.fault_drops").Value()
	if drops < 80 || drops > 120 {
		t.Errorf("partition window dropped %d packets, want ~100", drops)
	}
	if *bd.delivered < 180 || *bd.delivered > 220 {
		t.Errorf("delivered %d, want ~200 (outside the window)", *bd.delivered)
	}
	if len(faults) != 2 {
		t.Errorf("fault events %v, want uplink+downlink link-down", faults)
	}
	if len(heals) != 2 {
		t.Errorf("heal events %v, want uplink+downlink link-up", heals)
	}
}

func TestScenarioEveryFlap(t *testing.T) {
	bd := mkBed(t, 13)
	// Flap the uplink for 10ms every 50ms over 200ms: 4 flaps.
	bd.eng.Play(chaos.NewScenario().
		Every(50*time.Millisecond, 200*time.Millisecond, chaos.Flap("uplink", 10*time.Millisecond)))
	bd.stream(300, 0, time.Millisecond)
	bd.sim.Run()

	reg := bd.sim.Metrics()
	if down := reg.Counter("chaos.link_down").Value(); down != 4 {
		t.Errorf("link_down = %d, want 4 flaps", down)
	}
	if up := reg.Counter("chaos.link_up").Value(); up != 4 {
		t.Errorf("link_up = %d, want 4 recoveries", up)
	}
	// ~40ms of 300ms was dark.
	if *bd.delivered < 220 || *bd.delivered > 290 {
		t.Errorf("delivered %d of 300 under flapping, want ~260", *bd.delivered)
	}
}

func TestCrashRestartOnTimeline(t *testing.T) {
	bd := mkBed(t, 17)
	bd.r.SetProcessor(passProc{})
	bd.stream(300, 0, time.Millisecond)
	bd.eng.Play(chaos.NewScenario().
		At(100*time.Millisecond, chaos.Crash("r")).
		At(200*time.Millisecond, chaos.Restart("r")))
	bd.sim.Run()

	if bd.r.CurrentProcessor() != nil {
		t.Error("crash did not remove the installed processor")
	}
	if *bd.delivered < 180 || *bd.delivered > 220 {
		t.Errorf("delivered %d, want ~200 (router dark for 100ms of 300ms)", *bd.delivered)
	}
	reg := bd.sim.Metrics()
	if reg.Counter("chaos.node_crashes").Value() != 1 || reg.Counter("chaos.node_restarts").Value() != 1 {
		t.Error("crash/restart counters wrong")
	}
}

func TestCorruptionFlipsExactlyOneBit(t *testing.T) {
	bd := mkBed(t, 19)
	bd.eng.Apply(chaos.Corrupt("uplink", 1.0))
	var got [][]byte
	bd.b.BindUDP(7, func(p *netsim.Packet) { got = append(got, p.Payload) })
	orig := []byte{0xAA, 0xBB, 0xCC, 0xDD}
	bd.a.Send(netsim.NewUDP(bd.a.Addr, bd.b.Addr, 1, 7, append([]byte(nil), orig...)).Own())
	bd.sim.Run()

	if len(got) != 1 {
		t.Fatalf("delivered %d, want 1", len(got))
	}
	diff := 0
	for i := range orig {
		x := got[0][i] ^ orig[i]
		for ; x != 0; x &= x - 1 {
			diff++
		}
	}
	if diff != 1 {
		t.Errorf("corruption flipped %d bits, want exactly 1", diff)
	}
	if bd.sim.Metrics().Counter("chaos.corrupted_pkts").Value() != 1 {
		t.Error("corrupted_pkts counter wrong")
	}
}

func TestWireUnknownLinkPanics(t *testing.T) {
	bd := mkBed(t, 23)
	defer func() {
		if recover() == nil {
			t.Error("addressing an unwired link did not panic")
		}
	}()
	bd.eng.Apply(chaos.Down("no-such-link"))
}

// passProc is a pass-through processor standing in for a downloaded ASP
// (its presence/absence is what crash tests assert on).
type passProc struct{}

func (passProc) Process(*substrate.Packet, substrate.Iface) bool { return false }
