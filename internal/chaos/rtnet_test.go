package chaos_test

import (
	"sync/atomic"
	"testing"
	"time"

	"planp.dev/planp/internal/chaos"
	"planp.dev/planp/internal/rtnet"
	"planp.dev/planp/internal/substrate"
)

// TestChaosOnRTNet runs the same primitives against the real-time
// backend: live goroutine-per-node traffic under loss, a hard
// partition, and a heal. Wall clocks make exact counts
// timing-dependent, so assertions are directional — the conformance
// style the rtnet smoke tests use.
func TestChaosOnRTNet(t *testing.T) {
	nw := rtnet.New(1)
	defer nw.Close()

	a := rtnet.NewNode(nw, "a", substrate.MustAddr("10.1.0.1"))
	r := rtnet.NewNode(nw, "r", substrate.MustAddr("10.1.0.254"))
	b := rtnet.NewNode(nw, "b", substrate.MustAddr("10.1.1.1"))
	r.Forwarding = true
	ar, ra := rtnet.NewLink(nw, a, r, 100_000_000)
	rb, br := rtnet.NewLink(nw, r, b, 100_000_000)
	a.SetDefaultRoute(ar)
	r.AddRoute(a.Address(), ra)
	r.AddRoute(b.Address(), rb)
	b.SetDefaultRoute(br)

	var delivered atomic.Int64
	b.BindUDP(9, func(*substrate.Packet) { delivered.Add(1) })

	eng := chaos.New(nw, 99)
	uplink := eng.Wire("uplink", ar, ra)
	eng.Wire("downlink", rb, br)

	nw.Start()

	send := func(n int) {
		for i := 0; i < n; i++ {
			a.Send(substrate.NewUDP(a.Address(), b.Address(), 1000, 9, []byte("pkt")).Own())
			time.Sleep(200 * time.Microsecond)
		}
		if !nw.Quiesce(5 * time.Second) {
			t.Fatal("network did not quiesce")
		}
	}

	// Phase 1: clean network.
	send(100)
	clean := delivered.Load()
	if clean != 100 {
		t.Fatalf("clean phase delivered %d of 100", clean)
	}

	// Phase 2: 50% loss — some but not all arrive.
	eng.Apply(chaos.Loss("uplink", 0.5))
	send(200)
	lossy := delivered.Load() - clean
	if lossy == 0 || lossy == 200 {
		t.Errorf("loss 0.5 delivered %d of 200 — want some, not all", lossy)
	}
	drops := nw.Metrics().Counter("chaos.fault_drops").Value()
	if drops == 0 {
		t.Error("no chaos.fault_drops counted under loss")
	}

	// Phase 3: partition — nothing arrives.
	eng.Apply(chaos.Clear("uplink"))
	uplink.Down()
	before := delivered.Load()
	send(50)
	if got := delivered.Load() - before; got != 0 {
		t.Errorf("%d packets crossed a downed link", got)
	}

	// Phase 4: heal — traffic resumes.
	eng.HealLinks()
	before = delivered.Load()
	send(50)
	if got := delivered.Load() - before; got != 50 {
		t.Errorf("healed link delivered %d of 50", got)
	}
}

// TestChaosScenarioWallClock plays a short timeline on real timers: a
// 60ms partition inside a 200ms traffic window must open a delivery
// gap and then close it.
func TestChaosScenarioWallClock(t *testing.T) {
	nw := rtnet.New(1)
	defer nw.Close()

	a := rtnet.NewNode(nw, "a", substrate.MustAddr("10.2.0.1"))
	b := rtnet.NewNode(nw, "b", substrate.MustAddr("10.2.0.2"))
	ab, ba := rtnet.NewLink(nw, a, b, 100_000_000)
	a.SetDefaultRoute(ab)
	b.SetDefaultRoute(ba)

	var delivered atomic.Int64
	b.BindUDP(9, func(*substrate.Packet) { delivered.Add(1) })

	eng := chaos.New(nw, 7)
	eng.Wire("wire", ab, ba)
	nw.Start()

	eng.Play(chaos.NewScenario().
		At(50*time.Millisecond, chaos.Down("wire")).
		At(110*time.Millisecond, chaos.Up("wire")))

	for i := 0; i < 200; i++ {
		a.Send(substrate.NewUDP(a.Address(), b.Address(), 1, 9, []byte("x")).Own())
		time.Sleep(time.Millisecond)
	}
	if !nw.Quiesce(5 * time.Second) {
		t.Fatal("network did not quiesce")
	}

	got := delivered.Load()
	if got == 200 {
		t.Error("partition window dropped nothing")
	}
	if got < 100 {
		t.Errorf("delivered only %d of 200 — the heal never took effect", got)
	}
	if nw.Metrics().Counter("chaos.link_down").Value() != 1 {
		t.Error("link_down counter wrong")
	}
}

// TestClockSkewOnRTNet injects clock skew through the chaos engine and
// asserts the node's Env clock steps by it — and that zero heals.
func TestClockSkewOnRTNet(t *testing.T) {
	nw := rtnet.New(1)
	defer nw.Close()
	n := rtnet.NewNode(nw, "host", substrate.MustAddr("10.2.0.1"))
	eng := chaos.New(nw, 7)
	h := eng.Adopt(n)
	if !h.CanSkew() {
		t.Fatalf("rtnet nodes must support clock skew")
	}

	base := nw.Now()
	h.SetClockSkew(10 * time.Second)
	if d := nw.Now() - base; d < 10*time.Second {
		t.Fatalf("clock advanced only %s after +10s skew", d)
	}
	h.SetClockSkew(0)
	if d := nw.Now() - base; d >= 10*time.Second {
		t.Fatalf("clock still skewed (%s) after heal", d)
	}
	if nw.Metrics().Snapshot()["chaos.clock_skews"] != 2 {
		t.Fatalf("chaos.clock_skews not counted")
	}
}
