package chaos_test

import (
	"strings"
	"testing"
	"time"

	"planp.dev/planp/internal/chaos"
	"planp.dev/planp/internal/netsim"
	"planp.dev/planp/internal/substrate"
)

// duplexBed is a netsim bed with the uplink wired per-direction: fwd is
// a→r, rev is r→a. Request/response traffic exercises both directions.
type duplexBed struct {
	*bed
	uplink *chaos.Link
	echoed *int
}

func mkDuplexBed(t *testing.T, seed int64) *duplexBed {
	t.Helper()
	sim := netsim.NewSimulator(seed)
	a := netsim.NewNode(sim, "a", netsim.MustAddr("10.0.0.1"))
	r := netsim.NewNode(sim, "r", netsim.MustAddr("10.0.0.254"))
	la := netsim.Connect(sim, a, r, netsim.LinkConfig{Bandwidth: 10_000_000})
	a.SetDefaultRoute(la.Ifaces()[0])
	r.AddRoute(a.Addr, la.Ifaces()[1])

	eng := chaos.New(sim, seed+1000)
	uplink := eng.WireDuplex("uplink",
		[]substrate.FaultPort{la.Ifaces()[0]}, // a→r
		[]substrate.FaultPort{la.Ifaces()[1]}, // r→a
	)

	delivered, echoed := 0, 0
	r.BindUDP(9, func(pkt *netsim.Packet) {
		delivered++
		r.Send(netsim.NewUDP(r.Addr, a.Addr, 9, 1000, []byte("echo")).Own())
	})
	a.BindUDP(1000, func(*netsim.Packet) { echoed++ })
	return &duplexBed{
		bed:    &bed{sim: sim, eng: eng, a: a, r: r, delivered: &delivered},
		uplink: uplink,
		echoed: &echoed,
	}
}

func (bd *duplexBed) requests(n int) {
	for i := 0; i < n; i++ {
		bd.sim.At(time.Duration(i)*time.Millisecond, func() {
			bd.a.Send(netsim.NewUDP(bd.a.Addr, bd.r.Addr, 1000, 9, []byte("req")).Own())
		})
	}
}

// TestAsymmetricDownRev cuts only the response direction: every request
// arrives, no response comes back.
func TestAsymmetricDownRev(t *testing.T) {
	bd := mkDuplexBed(t, 11)
	bd.uplink.Rev().Down()
	bd.requests(50)
	bd.sim.Run()
	if *bd.delivered != 50 {
		t.Fatalf("requests delivered %d/50 — forward direction should be clean", *bd.delivered)
	}
	if *bd.echoed != 0 {
		t.Fatalf("echoes delivered %d/50 — reverse direction should be cut", *bd.echoed)
	}
	if !bd.uplink.IsDown() {
		t.Fatalf("link with one cut direction should report IsDown")
	}

	bd.uplink.Rev().Up()
	bd.requests(10)
	bd.sim.Run()
	if *bd.echoed != 10 {
		t.Fatalf("echoes after heal %d/10", *bd.echoed)
	}
}

// TestAsymmetricLossFwd degrades only the request direction.
func TestAsymmetricLossFwd(t *testing.T) {
	bd := mkDuplexBed(t, 13)
	bd.uplink.Fwd().SetLoss(1.0)
	bd.requests(30)
	bd.sim.Run()
	if *bd.delivered != 0 {
		t.Fatalf("requests delivered %d/30 through a fully lossy forward direction", *bd.delivered)
	}
	bd.uplink.Fwd().Clear()
	bd.requests(30)
	bd.sim.Run()
	if *bd.delivered != 30 || *bd.echoed != 30 {
		t.Fatalf("after clear: delivered %d/30, echoed %d/30", *bd.delivered, *bd.echoed)
	}
}

// TestSymmetricSettersCoverBothDirections asserts whole-link setters on
// a duplex-wired link degrade both directions at once.
func TestSymmetricSettersCoverBothDirections(t *testing.T) {
	bd := mkDuplexBed(t, 17)
	bd.uplink.Down()
	bd.requests(20)
	bd.sim.Run()
	if *bd.delivered != 0 || *bd.echoed != 0 {
		t.Fatalf("downed duplex link carried traffic: delivered %d, echoed %d", *bd.delivered, *bd.echoed)
	}
	bd.uplink.Up()
	bd.requests(20)
	bd.sim.Run()
	if *bd.delivered != 20 || *bd.echoed != 20 {
		t.Fatalf("after up: delivered %d/20, echoed %d/20", *bd.delivered, *bd.echoed)
	}
}

// TestDirOnSymmetricLinkPanics: Fwd/Rev on a Wire'd (symmetric) link is
// an author error and must fail fast.
func TestDirOnSymmetricLinkPanics(t *testing.T) {
	bd := mkBed(t, 19)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("Fwd() on a symmetric link did not panic")
		}
		if !strings.Contains(r.(string), "WireDuplex") {
			t.Fatalf("panic %q does not point at WireDuplex", r)
		}
	}()
	l, _ := bd.eng.LookupLink("uplink")
	l.Fwd()
}

// TestPlayRunStop stops a playing scenario midway: fired steps stay
// applied, pending steps are suppressed.
func TestPlayRunStop(t *testing.T) {
	bd := mkBed(t, 23)
	sc := chaos.NewScenario().
		At(10*time.Millisecond, chaos.Down("uplink")).
		At(50*time.Millisecond, chaos.Up("uplink"))
	run := bd.eng.PlayRun(sc)

	// A stopper on the timeline between the two steps — netsim virtual
	// time, so ordering is exact.
	bd.sim.At(30*time.Millisecond, run.Stop)
	bd.stream(1, 60*time.Millisecond, 0)
	bd.sim.Run()

	fired, total, stopped := run.Status()
	if fired != 1 || total != 2 || !stopped {
		t.Fatalf("run status fired=%d total=%d stopped=%v, want 1/2 stopped", fired, total, stopped)
	}
	if !run.Done() {
		t.Fatalf("stopped run should be done")
	}
	if *bd.delivered != 0 {
		t.Fatalf("the suppressed heal step appears to have run (delivered %d)", *bd.delivered)
	}
}

// TestTimelineCompileAndPlay round-trips a JSON timeline through parse
// → compile → play on netsim.
func TestTimelineCompileAndPlay(t *testing.T) {
	bd := mkBed(t, 29)
	tl, err := chaos.ParseTimeline([]byte(`{
		"name": "cut-then-heal",
		"steps": [
			{"at_ms": 10, "op": "partition", "links": ["uplink", "downlink"]},
			{"at_ms": 50, "op": "heal"}
		]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	sc, err := bd.eng.Compile(tl)
	if err != nil {
		t.Fatal(err)
	}
	bd.eng.Play(sc)
	bd.stream(10, 20*time.Millisecond, time.Microsecond) // inside the partition
	bd.stream(10, 60*time.Millisecond, time.Microsecond) // after the heal
	bd.sim.Run()
	if *bd.delivered != 10 {
		t.Fatalf("delivered %d, want exactly the 10 post-heal packets", *bd.delivered)
	}
}

// TestTimelineValidation: every class of bad timeline is a structured
// error at compile time, not a panic at play time.
func TestTimelineValidation(t *testing.T) {
	bd := mkBed(t, 31)
	cases := []struct {
		name, json, wantErr string
	}{
		{"unknown-op", `{"steps":[{"op":"explode","link":"uplink"}]}`, "unknown op"},
		{"unknown-link", `{"steps":[{"op":"down","link":"nope"}]}`, "unknown link"},
		{"unknown-node", `{"steps":[{"op":"crash","node":"nope"}]}`, "unknown node"},
		{"bad-prob", `{"steps":[{"op":"loss","link":"uplink","p":1.5}]}`, "probability"},
		{"bad-dir", `{"steps":[{"op":"down","link":"uplink","dir":"sideways"}]}`, "direction"},
		{"dir-on-symmetric", `{"steps":[{"op":"down","link":"uplink","dir":"fwd"}]}`, "symmetric"},
		{"skew-on-netsim", `{"steps":[{"op":"clockskew","node":"r","skew_ms":100}]}`, "clock skew"},
		{"typoed-field", `{"steps":[{"op":"loss","link":"uplink","prob":0.5}]}`, "unknown field"},
		{"no-steps", `{"steps":[]}`, "no steps"},
		{"negative-at", `{"steps":[{"at_ms":-5,"op":"down","link":"uplink"}]}`, "negative at_ms"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tl, err := chaos.ParseTimeline([]byte(tc.json))
			if err == nil {
				_, err = bd.eng.Compile(tl)
			}
			if err == nil {
				t.Fatalf("bad timeline accepted")
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not contain %q", err, tc.wantErr)
			}
		})
	}
}
